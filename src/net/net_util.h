#ifndef KGEVAL_NET_NET_UTIL_H_
#define KGEVAL_NET_NET_UTIL_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace kgeval {

/// A bound, listening TCP socket plus the port it actually bound (the
/// interesting case is requesting port 0 and letting the kernel pick).
struct Listener {
  int fd = -1;
  uint16_t port = 0;
};

/// Creates a non-blocking IPv4 listening socket on `host:port` with
/// SO_REUSEADDR. `port == 0` binds an ephemeral port; the resolved port is
/// returned either way.
Result<Listener> CreateTcpListener(const std::string& host, uint16_t port,
                                   int backlog = 128);

/// Blocking IPv4 connect — the client side used by tests and the load
/// bench; the server never calls this.
Result<int> ConnectTcp(const std::string& host, uint16_t port);

/// Sets O_NONBLOCK on `fd`.
Status SetNonBlocking(int fd);

/// Disables Nagle's algorithm. Request/response protocols with small
/// frames want the reply on the wire immediately, not after a 40 ms
/// delayed-ACK dance.
Status SetTcpNoDelay(int fd);

}  // namespace kgeval

#endif  // KGEVAL_NET_NET_UTIL_H_

#include "core/guided_negatives.h"

#include "util/logging.h"

namespace kgeval {

NegativeSamplerFn MakeGuidedNegativeSampler(const CandidateSets* sets,
                                            double guided_rate) {
  KGEVAL_CHECK(sets != nullptr);
  KGEVAL_CHECK(guided_rate >= 0.0 && guided_rate <= 1.0);
  const int32_t num_r = sets->num_slots() / 2;
  return [sets, guided_rate, num_r](int32_t relation,
                                    QueryDirection direction,
                                    Rng* rng) -> int32_t {
    if (rng->NextDouble() >= guided_rate) return -1;  // Uniform fallback.
    const int32_t slot = DomainRangeIndex(relation, direction, num_r);
    const std::vector<int32_t>& members = sets->sets[slot];
    if (members.empty()) return -1;
    if (slot < static_cast<int32_t>(sets->weights.size()) &&
        !sets->weights[slot].empty()) {
      // Weighted draw via inverse-CDF on a per-call prefix walk would be
      // O(n); a cheap alternative with the right bias: pick two uniformly,
      // keep the higher-scored one (tournament selection).
      const std::vector<float>& weights = sets->weights[slot];
      const size_t a = rng->NextBounded(members.size());
      const size_t b = rng->NextBounded(members.size());
      return weights[a] >= weights[b] ? members[a] : members[b];
    }
    return members[rng->NextBounded(members.size())];
  };
}

}  // namespace kgeval

#include "eval/auc.h"

#include <algorithm>

#include "util/logging.h"

namespace kgeval {

AucResult ComputeAuc(const std::vector<float>& positive_scores,
                     const std::vector<float>& negative_scores) {
  AucResult result;
  result.num_positives = static_cast<int64_t>(positive_scores.size());
  result.num_negatives = static_cast<int64_t>(negative_scores.size());
  if (positive_scores.empty() || negative_scores.empty()) return result;

  // Merge-sort based ROC-AUC: P(pos > neg) + 0.5 P(pos == neg), computed
  // by walking both sorted arrays once — O((P+N) log(P+N)).
  std::vector<float> pos = positive_scores;
  std::vector<float> neg = negative_scores;
  std::sort(pos.begin(), pos.end());
  std::sort(neg.begin(), neg.end());
  double wins = 0.0;
  size_t below = 0;   // Negatives strictly below the current positive.
  size_t equal = 0;   // Negatives equal to the current positive's score.
  size_t cursor = 0;
  for (float p : pos) {
    while (cursor < neg.size() && neg[cursor] < p) {
      ++cursor;
    }
    below = cursor;
    size_t eq_cursor = cursor;
    while (eq_cursor < neg.size() && neg[eq_cursor] == p) ++eq_cursor;
    equal = eq_cursor - cursor;
    wins += static_cast<double>(below) + 0.5 * static_cast<double>(equal);
  }
  result.roc_auc = wins / (static_cast<double>(pos.size()) *
                           static_cast<double>(neg.size()));

  // PR-AUC: sweep thresholds over the merged scores (descending), summing
  // precision * recall-increment (step-wise interpolation).
  struct Scored {
    float score;
    bool positive;
  };
  std::vector<Scored> merged;
  merged.reserve(pos.size() + neg.size());
  for (float s : pos) merged.push_back({s, true});
  for (float s : neg) merged.push_back({s, false});
  std::sort(merged.begin(), merged.end(),
            [](const Scored& a, const Scored& b) { return a.score > b.score; });
  double true_positives = 0.0, false_positives = 0.0;
  double previous_recall = 0.0;
  double area = 0.0;
  size_t i = 0;
  while (i < merged.size()) {
    // Consume a tie block at once so ties do not order-bias the curve.
    size_t j = i;
    while (j < merged.size() && merged[j].score == merged[i].score) ++j;
    for (size_t k = i; k < j; ++k) {
      if (merged[k].positive) {
        true_positives += 1.0;
      } else {
        false_positives += 1.0;
      }
    }
    const double recall = true_positives / static_cast<double>(pos.size());
    const double precision =
        true_positives / (true_positives + false_positives);
    area += precision * (recall - previous_recall);
    previous_recall = recall;
    i = j;
  }
  result.pr_auc = area;
  return result;
}

AucResult ComputeTripleClassificationAuc(
    const KgeModel& model, const Dataset& dataset, Split split,
    const TripleAucOptions& options,
    const std::vector<std::vector<int32_t>>* pools) {
  Rng rng(options.seed);
  const std::vector<Triple>& triples = dataset.split(split);
  const int64_t count =
      options.max_triples > 0
          ? std::min<int64_t>(options.max_triples,
                              static_cast<int64_t>(triples.size()))
          : static_cast<int64_t>(triples.size());
  const int32_t num_r = dataset.num_relations();

  // Draw every corruption first (same RNG order as the scalar scorer), then
  // score positives and negatives through the relation-grouped batched path.
  std::vector<Triple> negatives;
  negatives.reserve(count * options.negatives_per_positive);
  for (int64_t i = 0; i < count; ++i) {
    const Triple& t = triples[i];
    for (int32_t k = 0; k < options.negatives_per_positive; ++k) {
      int32_t corrupt = -1;
      if (pools != nullptr) {
        const std::vector<int32_t>& pool = (*pools)[t.relation + num_r];
        if (!pool.empty()) {
          corrupt = pool[rng.NextBounded(pool.size())];
        }
      }
      if (corrupt < 0) {
        corrupt =
            static_cast<int32_t>(rng.NextBounded(dataset.num_entities()));
      }
      if (corrupt == t.tail) {
        corrupt = static_cast<int32_t>((corrupt + 1) %
                                       dataset.num_entities());
      }
      negatives.push_back({t.head, t.relation, corrupt});
    }
  }
  std::vector<float> positive_scores(count);
  std::vector<float> negative_scores(negatives.size());
  // Fused path: each positive's query representation is built once and
  // scores the true tail plus all of its corruptions (scores are
  // bit-identical to two independent ScoreTriples passes).
  ScoreTriplesWithNegatives(
      model, triples.data(), count, negatives.data(),
      static_cast<size_t>(options.negatives_per_positive),
      positive_scores.data(), negative_scores.data());
  return ComputeAuc(positive_scores, negative_scores);
}

}  // namespace kgeval

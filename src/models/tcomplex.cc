#include "models/tcomplex.h"

#include <algorithm>
#include <vector>

#include "la/vector_ops.h"
#include "util/logging.h"

namespace kgeval {
namespace {

/// A time-aware model must know its timestamp vocabulary up front; 0 (the
/// static default) means one timestamp, under which TComplEx degenerates
/// to ComplEx with an extra learned per-"time" scale.
int32_t NormalizeTimestamps(int32_t num_timestamps) {
  return std::max<int32_t>(1, num_timestamps);
}

ModelOptions NormalizeOptions(ModelOptions options) {
  options.num_timestamps = NormalizeTimestamps(options.num_timestamps);
  return options;
}

}  // namespace

TComplEx::TComplEx(int32_t num_entities, int32_t num_relations,
                   ModelOptions options)
    : KgeModel(ModelType::kTComplEx, num_entities, num_relations,
               NormalizeOptions(options)),
      half_(options.dim / 2),
      num_timestamps_(NormalizeTimestamps(options.num_timestamps)),
      entities_(num_entities, options.dim),
      relations_(num_relations, options.dim),
      timestamps_(num_timestamps_, options.dim),
      entity_adam_(num_entities, options.dim, options.adam),
      relation_adam_(num_relations, options.dim, options.adam),
      timestamp_adam_(num_timestamps_, options.dim, options.adam) {
  Rng rng(options.seed);
  entities_.InitXavier(&rng, options.dim, options.dim);
  relations_.InitXavier(&rng, options.dim, options.dim);
  timestamps_.InitXavier(&rng, options.dim, options.dim);
}

void TComplEx::BuildKernelQueries(const int32_t* anchors, size_t num_queries,
                                  int32_t relation, QueryDirection direction,
                                  Matrix* queries) const {
  const int32_t m = half_;
  // Decode the virtual kernel id into (relation, timestamp).
  const int32_t r = relation % num_relations_;
  const int32_t tau = relation / num_relations_;
  KGEVAL_DCHECK(tau < num_timestamps_);
  const float* rv = relations_.Row(r);
  const float* wv = timestamps_.Row(tau);
  // Like ComplEx with the composed relation r' = r (.) w_tau: fold anchor
  // and r' into a single query vector (q_re, q_im) per anchor.
  queries->Resize(num_queries, static_cast<size_t>(2 * m));
  for (size_t q = 0; q < num_queries; ++q) {
    const float* av = entities_.Row(anchors[q]);
    float* row = queries->Row(q);
    if (direction == QueryDirection::kTail) {
      // score = e.(ac' - bd') + f.(bc' + ad') with h=(a,b), r'=(c',d'),
      // t=(e,f).
      for (int32_t i = 0; i < m; ++i) {
        const float a = av[i], b = av[m + i];
        const float c = rv[i], d = rv[m + i];
        const float u = wv[i], w = wv[m + i];
        const float cp = c * u - d * w;
        const float dp = c * w + d * u;
        row[i] = a * cp - b * dp;
        row[m + i] = b * cp + a * dp;
      }
    } else {
      // score = a.(c'e + d'f) + b.(c'f - d'e) with t=(e,f) as anchor.
      for (int32_t i = 0; i < m; ++i) {
        const float e = av[i], f = av[m + i];
        const float c = rv[i], d = rv[m + i];
        const float u = wv[i], w = wv[m + i];
        const float cp = c * u - d * w;
        const float dp = c * w + d * u;
        row[i] = cp * e + dp * f;
        row[m + i] = cp * f - dp * e;
      }
    }
  }
}

void TComplEx::UpdateTriple(int32_t head, int32_t relation, int32_t tail,
                            QueryDirection /*direction*/, float dscore) {
  const int32_t m = half_;
  const int32_t r = relation % num_relations_;
  const int32_t tau = relation / num_relations_;
  KGEVAL_DCHECK(tau < num_timestamps_);
  const float* h = entities_.Row(head);
  const float* rv = relations_.Row(r);
  const float* wv = timestamps_.Row(tau);
  const float* t = entities_.Row(tail);
  std::vector<float> gh(2 * m), gr(2 * m), gw(2 * m), gt(2 * m);
  const float l2 = options_.l2;
  for (int32_t i = 0; i < m; ++i) {
    const float a = h[i], b = h[m + i];
    const float c = rv[i], d = rv[m + i];
    const float u = wv[i], w = wv[m + i];
    const float e = t[i], f = t[m + i];
    // Composed relation r' = r (.) w_tau; the h/t gradients are ComplEx's
    // with (c,d) -> (c',d').
    const float cp = c * u - d * w;
    const float dp = c * w + d * u;
    gh[i] = dscore * (cp * e + dp * f) + l2 * a;
    gh[m + i] = dscore * (cp * f - dp * e) + l2 * b;
    gt[i] = dscore * (a * cp - b * dp) + l2 * e;
    gt[m + i] = dscore * (b * cp + a * dp) + l2 * f;
    // Gradient w.r.t. the composed relation, then the complex chain rule:
    // g_r = g_r' . conj(w_tau), g_w = g_r' . conj(r).
    const float gcp = dscore * (a * e + b * f);
    const float gdp = dscore * (a * f - b * e);
    gr[i] = gcp * u + gdp * w + l2 * c;
    gr[m + i] = -gcp * w + gdp * u + l2 * d;
    gw[i] = gcp * c + gdp * d + l2 * u;
    gw[m + i] = -gcp * d + gdp * c + l2 * w;
  }
  entity_adam_.UpdateRow(&entities_, head, gh.data());
  relation_adam_.UpdateRow(&relations_, r, gr.data());
  timestamp_adam_.UpdateRow(&timestamps_, tau, gw.data());
  entity_adam_.UpdateRow(&entities_, tail, gt.data());
}

void TComplEx::CollectParameters(std::vector<NamedParameter>* out) {
  out->push_back({"entities", &entities_});
  out->push_back({"relations", &relations_});
  out->push_back({"timestamps", &timestamps_});
}

}  // namespace kgeval

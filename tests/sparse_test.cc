#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sparse/csr.h"
#include "util/rng.h"

namespace kgeval {
namespace {

// Dense reference helpers -----------------------------------------------------

std::vector<std::vector<float>> ToDense(const CsrMatrix& m) {
  std::vector<std::vector<float>> dense(
      m.rows(), std::vector<float>(m.cols(), 0.0f));
  for (int64_t r = 0; r < m.rows(); ++r) {
    for (int64_t k = m.RowBegin(r); k < m.RowEnd(r); ++k) {
      dense[r][m.col_idx()[k]] += m.values()[k];
    }
  }
  return dense;
}

CsrMatrix RandomSparse(int64_t rows, int64_t cols, double density,
                       Rng* rng) {
  CooBuilder builder(rows, cols);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      if (rng->NextDouble() < density) {
        builder.Add(r, c, static_cast<float>(rng->NextUniform(0.1, 2.0)));
      }
    }
  }
  return builder.Build();
}

TEST(CooBuilderTest, BuildsSortedRows) {
  CooBuilder builder(3, 4);
  builder.Add(2, 3, 1.0f);
  builder.Add(0, 1, 2.0f);
  builder.Add(2, 0, 3.0f);
  CsrMatrix m = builder.Build();
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_EQ(m.RowNnz(0), 1);
  EXPECT_EQ(m.RowNnz(1), 0);
  EXPECT_EQ(m.RowNnz(2), 2);
  // Columns sorted within row 2.
  EXPECT_EQ(m.col_idx()[m.RowBegin(2)], 0);
  EXPECT_EQ(m.col_idx()[m.RowBegin(2) + 1], 3);
}

TEST(CooBuilderTest, SumsDuplicates) {
  CooBuilder builder(2, 2);
  builder.Add(1, 1, 1.5f);
  builder.Add(1, 1, 2.5f);
  builder.Add(1, 1, 1.0f);
  CsrMatrix m = builder.Build();
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_FLOAT_EQ(m.At(1, 1), 5.0f);
}

TEST(CsrMatrixTest, AtReturnsZeroForAbsent) {
  CooBuilder builder(2, 3);
  builder.Add(0, 2, 7.0f);
  CsrMatrix m = builder.Build();
  EXPECT_FLOAT_EQ(m.At(0, 2), 7.0f);
  EXPECT_FLOAT_EQ(m.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(m.At(1, 2), 0.0f);
}

TEST(CsrMatrixTest, EmptyMatrix) {
  CsrMatrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.nnz(), 0);
}

TEST(CsrMatrixTest, NormalizeRowsMakesRowSumsOne) {
  Rng rng(4);
  CsrMatrix m = RandomSparse(20, 30, 0.2, &rng);
  m.NormalizeRows();
  for (int64_t r = 0; r < m.rows(); ++r) {
    if (m.RowNnz(r) == 0) continue;
    EXPECT_NEAR(m.RowSum(r), 1.0, 1e-5);
  }
}

TEST(CsrMatrixTest, NormalizeRowsLeavesEmptyRows) {
  CooBuilder builder(3, 3);
  builder.Add(0, 0, 4.0f);
  CsrMatrix m = builder.Build();
  m.NormalizeRows();
  EXPECT_FLOAT_EQ(m.At(0, 0), 1.0f);
  EXPECT_EQ(m.RowNnz(1), 0);
}

TEST(CsrMatrixTest, TransposeMatchesDense) {
  Rng rng(9);
  CsrMatrix m = RandomSparse(13, 7, 0.3, &rng);
  CsrMatrix t = m.Transpose();
  EXPECT_EQ(t.rows(), m.cols());
  EXPECT_EQ(t.cols(), m.rows());
  EXPECT_EQ(t.nnz(), m.nnz());
  const auto dense = ToDense(m);
  const auto dense_t = ToDense(t);
  for (int64_t r = 0; r < m.rows(); ++r) {
    for (int64_t c = 0; c < m.cols(); ++c) {
      EXPECT_FLOAT_EQ(dense[r][c], dense_t[c][r]);
    }
  }
}

TEST(CsrMatrixTest, TransposeTwiceIsIdentity) {
  Rng rng(10);
  CsrMatrix m = RandomSparse(9, 11, 0.25, &rng);
  CsrMatrix tt = m.Transpose().Transpose();
  const auto a = ToDense(m);
  const auto b = ToDense(tt);
  EXPECT_EQ(a, b);
}

TEST(SpGemmTest, MatchesDenseReference) {
  Rng rng(21);
  CsrMatrix a = RandomSparse(8, 12, 0.3, &rng);
  CsrMatrix b = RandomSparse(12, 6, 0.3, &rng);
  CsrMatrix c = SpGemm(a, b);
  const auto da = ToDense(a);
  const auto db = ToDense(b);
  const auto dc = ToDense(c);
  for (int64_t i = 0; i < 8; ++i) {
    for (int64_t j = 0; j < 6; ++j) {
      float expected = 0.0f;
      for (int64_t k = 0; k < 12; ++k) expected += da[i][k] * db[k][j];
      EXPECT_NEAR(dc[i][j], expected, 1e-4) << "at " << i << "," << j;
    }
  }
}

TEST(SpGemmTest, IdentityIsNeutral) {
  Rng rng(22);
  CsrMatrix a = RandomSparse(10, 10, 0.3, &rng);
  CooBuilder eye_builder(10, 10);
  for (int i = 0; i < 10; ++i) eye_builder.Add(i, i, 1.0f);
  CsrMatrix eye = eye_builder.Build();
  CsrMatrix product = SpGemm(a, eye);
  EXPECT_EQ(ToDense(product), ToDense(a));
}

TEST(SpGemmTest, LargeRandomAgainstDense) {
  Rng rng(23);
  CsrMatrix a = RandomSparse(120, 80, 0.05, &rng);
  CsrMatrix b = RandomSparse(80, 60, 0.05, &rng);
  CsrMatrix c = SpGemm(a, b);
  const auto da = ToDense(a);
  const auto db = ToDense(b);
  const auto dc = ToDense(c);
  double max_err = 0.0;
  for (int64_t i = 0; i < 120; ++i) {
    for (int64_t j = 0; j < 60; ++j) {
      float expected = 0.0f;
      for (int64_t k = 0; k < 80; ++k) expected += da[i][k] * db[k][j];
      max_err = std::max(max_err,
                         static_cast<double>(std::fabs(dc[i][j] - expected)));
    }
  }
  EXPECT_LT(max_err, 1e-4);
}

TEST(SpGemmTest, GramMatrixIsSymmetric) {
  Rng rng(24);
  CsrMatrix b = RandomSparse(40, 15, 0.2, &rng);
  CsrMatrix gram = SpGemm(b.Transpose(), b);  // The L-WD W matrix.
  const auto dense = ToDense(gram);
  for (int64_t i = 0; i < gram.rows(); ++i) {
    for (int64_t j = 0; j < gram.cols(); ++j) {
      EXPECT_NEAR(dense[i][j], dense[j][i], 1e-4);
    }
  }
}

}  // namespace
}  // namespace kgeval

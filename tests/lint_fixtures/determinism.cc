// Fixture: violates exactly `determinism` (linted as src/eval/bad.cc).
#include <cstdlib>

int Fixture() { return rand(); }

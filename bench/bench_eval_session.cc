// Concurrent multi-model evaluation through EvalSession::EstimateMany
// against the same models estimated one at a time: both score the session's
// pinned pools, so the concurrent pass must reproduce the sequential ranks
// bit-for-bit while beating its wall time (each model's chunks interleave
// on the shared workers instead of serializing behind a global barrier —
// the multi-checkpoint monitoring / model-comparison workload the paper
// motivates). Prints PARITY MISMATCH if any rank differs, which CI greps
// for. --json writes BENCH_eval_session.json with the thread count and
// pool mode so artifacts are comparable across runners.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/eval_session.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

struct SessionRow {
  std::string dataset;
  int64_t models = 0;
  int64_t threads = 0;
  std::string pool_mode;
  double sequential_s = 0.0;
  double concurrent_s = 0.0;
  double speedup = 0.0;
  bool parity = false;
};

void WriteJson(const SessionRow& r) {
  const char* path = "BENCH_eval_session.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(
      f,
      "{\n  \"eval_session\": {\"dataset\": \"%s\", \"models\": %lld, "
      "\"threads\": %lld, \"pool_mode\": \"%s\", \"sequential_wall_s\": "
      "%.6f, \"concurrent_wall_s\": %.6f, \"speedup\": %.4f, "
      "\"rank_parity\": %s}\n}\n",
      r.dataset.c_str(), static_cast<long long>(r.models),
      static_cast<long long>(r.threads), r.pool_mode.c_str(), r.sequential_s,
      r.concurrent_s, r.speedup, r.parity ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kgeval;
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  std::string preset = args.fast ? "codex-s" : "codex-m";
  if (!args.only_dataset.empty()) preset = args.only_dataset;
  constexpr size_t kModels = 4;
  const int reps = args.fast ? 2 : 3;

  const SynthOutput synth = bench::LoadPreset(preset, args);
  const Dataset& dataset = synth.dataset;
  const FilterIndex filter(dataset);

  // Four independently seeded checkpoints of the same architecture — the
  // "compare my candidate models on one benchmark" workload.
  std::vector<std::unique_ptr<KgeModel>> owned;
  std::vector<const KgeModel*> models;
  for (size_t m = 0; m < kModels; ++m) {
    bench::TrainSpec spec;
    spec.epochs = args.epochs > 0 ? args.epochs : (args.fast ? 1 : 3);
    spec.seed = 11 + 101 * m;
    owned.push_back(bench::TrainModel(dataset, spec));
    models.push_back(owned.back().get());
  }

  FrameworkOptions options;
  options.strategy = SamplingStrategy::kProbabilistic;
  options.recommender = RecommenderType::kLwd;
  options.sample_fraction = 0.1;
  auto session = EvalSession::Create(&dataset, &filter, options, Split::kTest)
                     .ValueOrDie();

  bench::PrintHeader(StrFormat(
      "EvalSession: %zu models, sequential vs concurrent on pinned pools "
      "(%s, %zu worker threads)",
      kModels, preset.c_str(), GlobalThreadPool()->num_threads()));

  // Burst-timed min-of-N on both schedules, warm-up pass first so neither
  // side pays first-touch costs.
  std::vector<SampledEvalResult> sequential(kModels);
  std::vector<SampledEvalResult> concurrent;
  double best_sequential = 0.0, best_concurrent = 0.0;
  (void)session->EstimateMany(models);
  for (int rep = 0; rep < reps; ++rep) {
    WallTimer seq_timer;
    for (size_t m = 0; m < kModels; ++m) {
      sequential[m] = session->Estimate(*models[m]);
    }
    const double seq_s = seq_timer.Seconds();
    WallTimer conc_timer;
    concurrent = session->EstimateMany(models);
    const double conc_s = conc_timer.Seconds();
    if (rep == 0 || seq_s < best_sequential) best_sequential = seq_s;
    if (rep == 0 || conc_s < best_concurrent) best_concurrent = conc_s;
  }

  bool parity = true;
  for (size_t m = 0; m < kModels; ++m) {
    parity = parity && concurrent[m].ranks == sequential[m].ranks &&
             concurrent[m].metrics.mrr == sequential[m].metrics.mrr &&
             concurrent[m].scored_candidates == sequential[m].scored_candidates;
  }

  SessionRow row;
  row.dataset = preset;
  row.models = static_cast<int64_t>(kModels);
  row.threads = static_cast<int64_t>(GlobalThreadPool()->num_threads());
  row.pool_mode = "pinned";
  row.sequential_s = best_sequential;
  row.concurrent_s = best_concurrent;
  row.speedup = best_concurrent > 0.0 ? best_sequential / best_concurrent : 0.0;
  row.parity = parity;

  TextTable table({"Schedule", "Wall (s)", "MRR (model 0..3)", "Ranks"});
  const auto mrrs = [](const std::vector<SampledEvalResult>& results) {
    std::string out;
    for (size_t m = 0; m < results.size(); ++m) {
      out += (m > 0 ? " " : "") + bench::F(results[m].metrics.mrr, 4);
    }
    return out;
  };
  table.AddRow({"sequential", bench::F(best_sequential, 3), mrrs(sequential),
                "reference"});
  table.AddRow({"concurrent", bench::F(best_concurrent, 3), mrrs(concurrent),
                parity ? "bit-identical" : "PARITY MISMATCH"});
  std::printf("%s", table.ToString().c_str());
  bench::PrintNote(StrFormat(
      "concurrent/sequential speedup %.2fx on %lld worker threads "
      "(single-core machines run both schedules on one core, so the "
      "speedup only shows with threads > 1); both schedules score the "
      "session's pinned pool draw, so ranks must match bit-for-bit",
      row.speedup, static_cast<long long>(row.threads)));
  if (args.json) WriteJson(row);
  return parity ? 0 : 1;
}

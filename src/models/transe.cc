#include "models/transe.h"

#include <vector>

#include "la/vector_ops.h"

namespace kgeval {

TransE::TransE(int32_t num_entities, int32_t num_relations,
               ModelOptions options)
    : KgeModel(ModelType::kTransE, num_entities, num_relations, options),
      entities_(num_entities, options.dim),
      relations_(num_relations, options.dim),
      entity_adam_(num_entities, options.dim, options.adam),
      relation_adam_(num_relations, options.dim, options.adam) {
  Rng rng(options.seed);
  entities_.InitXavier(&rng, options.dim, options.dim);
  relations_.InitXavier(&rng, options.dim, options.dim);
}

void TransE::BuildKernelQueries(const int32_t* anchors, size_t num_queries,
                                int32_t relation, QueryDirection direction,
                                Matrix* queries) const {
  const size_t d = entities_.cols();
  const float* r = relations_.Row(relation);
  queries->Resize(num_queries, d);
  for (size_t q = 0; q < num_queries; ++q) {
    const float* a = entities_.Row(anchors[q]);
    float* row = queries->Row(q);
    if (direction == QueryDirection::kTail) {
      // score = -|| (h + r) - t ||_1
      for (size_t i = 0; i < d; ++i) row[i] = a[i] + r[i];
    } else {
      // score = -|| h - (t - r) ||_1
      for (size_t i = 0; i < d; ++i) row[i] = a[i] - r[i];
    }
  }
}

void TransE::UpdateTriple(int32_t head, int32_t relation, int32_t tail,
                          QueryDirection /*direction*/, float dscore) {
  const size_t d = entities_.cols();
  const float* h = entities_.Row(head);
  const float* r = relations_.Row(relation);
  const float* t = entities_.Row(tail);
  std::vector<float> gh(d), gr(d), gt(d);
  const float l2 = options_.l2;
  for (size_t i = 0; i < d; ++i) {
    const float delta = h[i] + r[i] - t[i];
    // d(score)/d(h_i) = -sign(delta); chain with dscore.
    const float sign = delta > 0.0f ? 1.0f : (delta < 0.0f ? -1.0f : 0.0f);
    gh[i] = -dscore * sign + l2 * h[i];
    gr[i] = -dscore * sign + l2 * r[i];
    gt[i] = dscore * sign + l2 * t[i];
  }
  entity_adam_.UpdateRow(&entities_, head, gh.data());
  relation_adam_.UpdateRow(&relations_, relation, gr.data());
  entity_adam_.UpdateRow(&entities_, tail, gt.data());
}

void TransE::CollectParameters(std::vector<NamedParameter>* out) {
  out->push_back({"entities", &entities_});
  out->push_back({"relations", &relations_});
}

}  // namespace kgeval

#include "core/eval_session.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace kgeval {
namespace {

/// Runs job(i) for every i in [0, n) concurrently on caller-side *job*
/// threads (one per in-flight evaluation request), not workers — each job
/// fans its chunks out to the shared worker pool through its own
/// TaskGroups and helps drain them while it waits, so in-flight jobs
/// interleave on the workers instead of serializing behind each other.
/// In-flight jobs are capped at the worker count: job threads compute
/// (help-first waits), so a 100-checkpoint sweep on 8 workers runs 8 jobs
/// at a time instead of oversubscribing the machine with 100 compute
/// threads (and 100 jobs' scratch alive at once). Jobs are claimed from a
/// shared counter, so the cap changes scheduling only — never results.
void RunJobsConcurrently(size_t n, const std::function<void(size_t)>& job) {
  if (n == 0) return;
  const size_t width = std::min(
      n, std::max<size_t>(1, GlobalThreadPool()->num_threads()));
  std::atomic<size_t> next{0};
  const auto run_jobs = [&next, n, &job] {
    for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      job(i);
    }
  };
  if (width == 1) {
    run_jobs();
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(width - 1);
  for (size_t t = 1; t < width; ++t) {
    threads.emplace_back(run_jobs);
  }
  run_jobs();
  for (std::thread& thread : threads) thread.join();
}

}  // namespace

EvalSession::EvalSession(std::unique_ptr<EvaluationFramework> framework,
                         const FilterIndex* filter, Split split)
    : framework_(std::move(framework)), filter_(filter), split_(split) {
  KGEVAL_CHECK(framework_ != nullptr);
  KGEVAL_CHECK(filter_ != nullptr);
  pools_ = framework_->DrawPools(split_);
}

Result<std::unique_ptr<EvalSession>> EvalSession::Create(
    const Dataset* dataset, const FilterIndex* filter,
    const FrameworkOptions& options, Split split) {
  if (filter == nullptr) {
    return Status::InvalidArgument("filter is null");
  }
  auto framework = EvaluationFramework::Build(dataset, options);
  if (!framework.ok()) return framework.status();
  return {std::unique_ptr<EvalSession>(new EvalSession(
      std::move(framework).ValueOrDie(), filter, split))};
}

std::unique_ptr<EvalSession> EvalSession::Adopt(
    std::unique_ptr<EvaluationFramework> framework, const FilterIndex* filter,
    Split split) {
  return std::unique_ptr<EvalSession>(
      new EvalSession(std::move(framework), filter, split));
}

SampledEvalResult EvalSession::Estimate(const KgeModel& model,
                                        int64_t max_triples) const {
  return framework_->EstimateOnPools(model, *filter_, split_, pools_,
                                     max_triples);
}

std::vector<SampledEvalResult> EvalSession::EstimateMany(
    const std::vector<const KgeModel*>& models, int64_t max_triples) const {
  std::vector<SampledEvalResult> results(models.size());
  RunJobsConcurrently(models.size(), [&](size_t i) {
    KGEVAL_CHECK(models[i] != nullptr);
    results[i] = Estimate(*models[i], max_triples);
  });
  return results;
}

AdaptiveEvalResult EvalSession::EstimateAdaptive(
    const KgeModel& model, const AdaptiveEvalOptions& adaptive) const {
  return framework_->EstimateAdaptiveOnPools(model, *filter_, split_, pools_,
                                             adaptive);
}

std::vector<AdaptiveEvalResult> EvalSession::EstimateAdaptiveMany(
    const std::vector<const KgeModel*>& models,
    const AdaptiveEvalOptions& adaptive) const {
  std::vector<AdaptiveEvalResult> results(models.size());
  RunJobsConcurrently(models.size(), [&](size_t i) {
    KGEVAL_CHECK(models[i] != nullptr);
    results[i] = EstimateAdaptive(*models[i], adaptive);
  });
  return results;
}

void EvalSession::RedrawPools() { pools_ = framework_->DrawPools(split_); }

}  // namespace kgeval

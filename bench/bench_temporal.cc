// Temporal-protocol gate: evaluates a trained TComplEx model under the
// TemporalFilteredProtocol three ways — exhaustive full ranking, the
// sampled estimator on exhaustive pools (which must reproduce the full
// ranks *bit for bit*, the protocol seam's correctness invariant), and the
// sampled + adaptive estimators on random pools (the paper's fast path,
// now running unchanged on the second protocol family). A rank mismatch
// prints PARITY MISMATCH and exits nonzero, which is what CI keys on.
// Also reports how many test queries the time-sliced filter actually
// changes versus static filtering — the semantic difference that makes
// temporal evaluation a protocol of its own. --json writes
// BENCH_temporal.json with the same numbers.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/adaptive_evaluator.h"
#include "core/sampled_evaluator.h"
#include "core/samplers.h"
#include "eval/full_evaluator.h"
#include "eval/protocol.h"
#include "models/trainer.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace kgeval;

constexpr int32_t kNumTimestamps = 8;

/// Deterministically stamps timestamps onto a static synthetic preset:
/// time = f(h, r, t) % T populates every slice and lets the same fact
/// recur at several timestamps across splits (the case the time-sliced
/// filter exists for).
Dataset StampTimestamps(const Dataset& base, int32_t num_timestamps) {
  auto stamp = [num_timestamps](std::vector<Triple> triples) {
    for (Triple& t : triples) {
      t.time = (t.head * 31 + t.tail * 7 + t.relation) % num_timestamps;
    }
    return triples;
  };
  return Dataset(base.name() + "-temporal", base.num_entities(),
                 base.num_relations(), num_timestamps, stamp(base.train()),
                 stamp(base.valid()), stamp(base.test()), base.types());
}

struct TemporalRow {
  std::string dataset;
  int64_t num_timestamps = 0;
  int64_t threads = 0;
  bool parity_ok = false;
  int64_t parity_queries = 0;
  int64_t divergent_filter_queries = 0;
  int64_t total_queries = 0;
  double full_s = 0.0;
  double full_mrr = 0.0;
  double sampled_s = 0.0;
  double sampled_mrr = 0.0;
  double adaptive_s = 0.0;
  double adaptive_mrr = 0.0;
  double ci_half_width = 0.0;
  int64_t adaptive_queries = 0;
  int64_t rounds = 0;
  bool converged = false;
  bool within_ci = false;
};

void WriteJson(const TemporalRow& r) {
  const char* path = "BENCH_temporal.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(
      f,
      "{\n  \"temporal\": {\n"
      "    \"dataset\": \"%s\", \"num_timestamps\": %lld, "
      "\"threads\": %lld,\n"
      "    \"parity\": \"%s\", \"parity_queries\": %lld,\n"
      "    \"divergent_filter_queries\": %lld, \"total_queries\": %lld,\n"
      "    \"full_wall_s\": %.6f, \"full_mrr\": %.6f,\n"
      "    \"sampled_wall_s\": %.6f, \"sampled_mrr\": %.6f,\n"
      "    \"adaptive_wall_s\": %.6f, \"adaptive_mrr\": %.6f, "
      "\"ci_half_width\": %.6f,\n"
      "    \"adaptive_queries\": %lld, \"rounds\": %lld, "
      "\"converged\": %s, \"within_ci\": %s\n"
      "  }\n}\n",
      r.dataset.c_str(), static_cast<long long>(r.num_timestamps),
      static_cast<long long>(r.threads), r.parity_ok ? "ok" : "mismatch",
      static_cast<long long>(r.parity_queries),
      static_cast<long long>(r.divergent_filter_queries),
      static_cast<long long>(r.total_queries), r.full_s, r.full_mrr,
      r.sampled_s, r.sampled_mrr, r.adaptive_s, r.adaptive_mrr,
      r.ci_half_width, static_cast<long long>(r.adaptive_queries),
      static_cast<long long>(r.rounds), r.converged ? "true" : "false",
      r.within_ci ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  std::string preset = "codex-s";
  if (!args.only_dataset.empty()) preset = args.only_dataset;

  const SynthOutput synth = bench::LoadPreset(preset, args);
  const Dataset dataset = StampTimestamps(synth.dataset, kNumTimestamps);
  const TemporalFilterIndex temporal_filter(dataset);
  const TemporalFilteredProtocol protocol(dataset, &temporal_filter);

  // TComplEx folds the timestamp into its kernel relation id, so the
  // temporal schedule's (relation, timestamp) blocks are exactly its
  // kernel-homogeneity requirement.
  ModelOptions model_options;
  model_options.dim = 32;
  model_options.num_timestamps = dataset.num_timestamps();
  model_options.adam.learning_rate = 3e-3f;
  model_options.seed = 11;
  auto model = CreateModel(ModelType::kTComplEx, dataset.num_entities(),
                           dataset.num_relations(), model_options)
                   .ValueOrDie();
  TrainerOptions trainer_options;
  trainer_options.epochs =
      args.epochs > 0 ? args.epochs : (args.fast ? 2 : 5);
  trainer_options.negatives_per_positive = 8;
  trainer_options.seed = 11 * 7919;
  Trainer trainer(&dataset, trainer_options);
  KGEVAL_CHECK(trainer.Train(model.get()).ok());

  bench::PrintHeader(StrFormat(
      "Temporal protocol gate (%s + %d timestamps, TComplEx dim %d)",
      preset.c_str(), kNumTimestamps, model_options.dim));

  const int64_t max_triples = args.fast ? 200 : 0;

  // Ground truth: exhaustive filtered ranking under the temporal protocol.
  FullEvalOptions full_options;
  full_options.max_triples = max_triples;
  WallTimer full_timer;
  const FullEvalResult full =
      EvaluateFullRanking(*model, dataset, protocol, Split::kTest,
                          full_options);
  const double full_s = full_timer.Seconds();

  // Parity gate: the sampled estimator on exhaustive pools must reproduce
  // the full ranks bit for bit.
  SampledCandidates exhaustive;
  {
    std::vector<int32_t> all(dataset.num_entities());
    for (int32_t e = 0; e < dataset.num_entities(); ++e) all[e] = e;
    exhaustive.pools.assign(2 * dataset.num_relations(), all);
  }
  SampledEvalOptions parity_options;
  parity_options.max_triples = max_triples;
  const SampledEvalResult parity = EvaluateSampled(
      *model, dataset, protocol, Split::kTest, exhaustive, parity_options);
  bool parity_ok = parity.ranks.size() == full.ranks.size();
  int64_t first_bad = -1;
  if (parity_ok) {
    for (size_t i = 0; i < full.ranks.size(); ++i) {
      if (parity.ranks[i] != full.ranks[i]) {
        parity_ok = false;
        first_bad = static_cast<int64_t>(i);
        break;
      }
    }
  }

  // How often the time-sliced filter actually differs from static
  // filtering on this split (it only can when a fact recurs at another
  // timestamp).
  const FilterIndex static_filter(dataset);
  const int64_t parity_triples =
      max_triples > 0 && max_triples < static_cast<int64_t>(
                                           dataset.test().size())
          ? max_triples
          : static_cast<int64_t>(dataset.test().size());
  int64_t divergent = 0;
  for (int64_t i = 0; i < parity_triples; ++i) {
    const Triple& t = dataset.test()[i];
    for (QueryDirection dir :
         {QueryDirection::kTail, QueryDirection::kHead}) {
      const std::vector<int32_t>* sliced = temporal_filter.AnswersFor(t, dir);
      const std::vector<int32_t>* flat = static_filter.AnswersFor(t, dir);
      if (sliced->size() != flat->size()) ++divergent;
    }
  }

  // The fast path on the second protocol family: random pools, sampled and
  // adaptive estimates with their CIs.
  Rng rng(13);
  const int64_t n_s =
      std::max<int64_t>(50, dataset.num_entities() / 10);
  const SampledCandidates pools = DrawCandidates(
      SamplingStrategy::kRandom, nullptr, dataset.num_entities(), n_s,
      NeededSlots(dataset, Split::kTest), 2 * dataset.num_relations(), &rng);
  SampledEvalOptions sampled_options;
  sampled_options.max_triples = max_triples;
  WallTimer sampled_timer;
  const SampledEvalResult sampled = EvaluateSampled(
      *model, dataset, protocol, Split::kTest, pools, sampled_options);
  const double sampled_s = sampled_timer.Seconds();

  AdaptiveEvalOptions adaptive_options;
  adaptive_options.target_half_width = args.half_width;
  adaptive_options.max_triples = max_triples;
  WallTimer adaptive_timer;
  const AdaptiveEvalResult adaptive = EvaluateAdaptive(
      *model, dataset, protocol, Split::kTest, pools, adaptive_options);
  const double adaptive_s = adaptive_timer.Seconds();

  TemporalRow row;
  row.dataset = preset;
  row.num_timestamps = kNumTimestamps;
  row.threads = static_cast<int64_t>(GlobalThreadPool()->num_threads());
  row.parity_ok = parity_ok;
  row.parity_queries = static_cast<int64_t>(full.ranks.size());
  row.divergent_filter_queries = divergent;
  row.total_queries = 2 * parity_triples;
  row.full_s = full_s;
  row.full_mrr = full.metrics.mrr;
  row.sampled_s = sampled_s;
  row.sampled_mrr = sampled.metrics.mrr;
  row.adaptive_s = adaptive_s;
  row.adaptive_mrr = adaptive.metrics.mrr;
  row.ci_half_width = adaptive.ci.mrr;
  row.adaptive_queries = adaptive.evaluated_queries;
  row.rounds = adaptive.rounds;
  row.converged = adaptive.converged;
  row.within_ci = std::fabs(adaptive.metrics.mrr - sampled.metrics.mrr) <=
                  adaptive.ci.mrr + 1e-9;

  TextTable table({"Engine", "Pools", "Queries", "Wall (s)", "MRR", "Note"});
  table.AddRow({"full", "all entities",
                FormatWithCommas(row.parity_queries), bench::F(full_s, 3),
                bench::F(full.metrics.mrr, 4), "ground truth"});
  table.AddRow({"sampled", "all entities",
                FormatWithCommas(static_cast<int64_t>(parity.ranks.size())),
                "-", bench::F(parity.metrics.mrr, 4),
                parity_ok ? "bit-exact vs full" : "PARITY MISMATCH"});
  table.AddRow({"sampled", StrFormat("random n_s=%lld",
                                     static_cast<long long>(n_s)),
                FormatWithCommas(static_cast<int64_t>(sampled.ranks.size())),
                bench::F(sampled_s, 3), bench::F(sampled.metrics.mrr, 4),
                "fast path"});
  table.AddRow(
      {"adaptive", StrFormat("random n_s=%lld", static_cast<long long>(n_s)),
       FormatWithCommas(row.adaptive_queries), bench::F(adaptive_s, 3),
       StrFormat("%.4f +/- %.4f", adaptive.metrics.mrr, adaptive.ci.mrr),
       StrFormat("%s/%lld rounds%s",
                 adaptive.converged ? "converged" : "budget",
                 static_cast<long long>(adaptive.rounds),
                 row.within_ci ? "" : " (SAMPLED MRR OUTSIDE CI)")});
  std::printf("%s", table.ToString().c_str());
  bench::PrintNote(StrFormat(
      "time-sliced filtering changed the answer set of %lld of %lld test "
      "queries vs static filtering; the estimators and their intervals ran "
      "unchanged on the temporal protocol",
      static_cast<long long>(divergent),
      static_cast<long long>(row.total_queries)));

  if (parity_ok) {
    std::printf("PARITY OK: %lld sampled ranks bit-match full ranking\n",
                static_cast<long long>(full.ranks.size()));
  } else {
    std::printf("PARITY MISMATCH: first divergent query index %lld\n",
                static_cast<long long>(first_bad));
  }
  if (args.json) WriteJson(row);
  return parity_ok ? 0 : 1;
}

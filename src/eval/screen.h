#ifndef KGEVAL_EVAL_SCREEN_H_
#define KGEVAL_EVAL_SCREEN_H_

#include <cstdint>
#include <vector>

#include "eval/metrics.h"
#include "la/matrix.h"
#include "models/kge_model.h"

namespace kgeval {

/// Two-pass quantized screening over prepared candidate pools.
///
/// Pass 1 scores every candidate against an int8 copy of the pool tile —
/// 4x smaller, and for the dot family the query row is itself quantized so
/// the sweep is a pure integer dot (VNNI / 16-bit madd, exact in int32).
/// Pass 2 re-scores, with the exact fp32 reduction, only the *band* of
/// candidates whose
/// approximate score plus a conservative error bound reaches the query's
/// exact truth score. Candidates outside the band provably score strictly
/// below the truth, so they can contribute neither a "higher" nor a "tied"
/// count to FilteredRank — which is the whole input the rank (and every
/// metric derived from it) depends on. Screened ranks are therefore
/// bit-identical to full exact scoring, at a fraction of the fp32 work
/// whenever most of the pool sits clearly below the truth.
///
/// The error bound folds the measured per-dim quantization error
/// (CandidateBlock::q8_err — the actual max |exact - dequantized| of the
/// tile, tighter than the worst-case half-step) and, for the dot family,
/// the measured rounding of the query row's own quantization, with a
/// generous per-term floating-point slack covering both the exact
/// reference accumulation order and whatever order the quantized kernels
/// use. Conservative in the only direction that matters: a loose bound
/// re-scores a few extra candidates; it never skips one that counts.

/// Counters describing how much work screening did and saved. Local
/// accumulation is unsynchronized; call AddGlobalScreenStats once per
/// thread/pass to fold into the process-wide counters served by STATS.
struct ScreenStats {
  int64_t queries = 0;    // Queries ranked through the screen.
  int64_t screened = 0;   // Pool entries scored with the int8 kernel.
  int64_t rescored = 0;   // Band entries re-scored with the exact kernel.
  /// Full evaluator only: whole entity tiles skipped by the truth-threshold
  /// test — every query of the block bounded strictly below its truth
  /// score, so neither the int8 sweep nor any re-scoring touched the tile.
  int64_t tiles_skipped = 0;

  void Merge(const ScreenStats& other) {
    queries += other.queries;
    screened += other.screened;
    rescored += other.rescored;
    tiles_skipped += other.tiles_skipped;
  }
};

/// Folds local counters into the process-wide totals (relaxed atomics).
void AddGlobalScreenStats(const ScreenStats& stats);

/// Snapshot of the process-wide totals (the service's STATS verb).
ScreenStats GlobalScreenStats();

/// Attaches the int8 sidecar to a prepared block: per-dim symmetric
/// quantization of the gathered tile (q8[k*n+c] = round(tile/scale_k),
/// scale_k = row-max/127) in both the transposed layout (distance kernels)
/// and the quad-interleaved layout + column sums (integer dot kernel),
/// plus the per-dim reconstruction-error and magnitude bounds the band
/// test needs. Costs one pass over the tile; amortized over every block
/// scored against the pool, exactly like the gather itself. Idempotent per
/// prepare; FillCandidateIds resets it.
void QuantizeCandidateBlock(CandidateBlock* block);

/// Conservative bound on |approx - exact| for one query row against every
/// candidate of a quantized block (the block's q8_bias_amp covers the
/// per-entity bias when the model adds one). Exposed for the property
/// tests.
float ScreenErrorBound(BatchKernel kind, const float* qrow, size_t dim,
                       const CandidateBlock& block);

/// Upper bound on the exact score of ANY candidate of a quantized block for
/// one query row, from the tile's per-dim [q8_lo, q8_hi] envelope alone —
/// no per-candidate work. When this falls strictly below the query's truth
/// score, the whole tile can contribute neither a higher nor a tied count
/// and is skipped outright (the full evaluator's truth-threshold early
/// termination). `eps` is the model's batch_kernel_eps() (kNegComplexDist
/// only; ignored otherwise).
float TileScoreUpperBound(BatchKernel kind, const float* qrow, size_t dim,
                          const CandidateBlock& block, float eps);

/// Reusable buffers for ScreenRankBlock (one per thread).
struct ScreenScratch {
  Matrix queries;
  std::vector<uint8_t> q8_queries;  // kDot: quantized (+128 offset) rows.
  std::vector<float> q8_query_scale;  // kDot: per-row dequantization scale.
  std::vector<int32_t> iapprox;       // kDot: raw integer dots.
  std::vector<float> approx;          // num_queries x n int8-path scores.
  std::vector<float> truth_scores;
  std::vector<int32_t> band_ids;      // Entity ids of one query's band.
  std::vector<float> band_scores;     // Their exact scores.
};

/// Pass 1 of the screen: approximate scores of `num_queries` query rows
/// (from `queries`, as BuildKernelQueries laid them out) against every
/// candidate of a quantized block, through the active int8 kernels, into
/// scratch->approx (num_queries x block.size(), row-major). Adds the
/// per-candidate bias when the block carries one. Shared by
/// ScreenRankBlock and the full evaluator's tile sweep.
void ScreenApproxBlock(const KgeModel& model, const Matrix& queries,
                       size_t num_queries, const CandidateBlock& block,
                       ScreenScratch* scratch);

/// Screened replacement for the fused ScoreBlock + FilteredRank pair over
/// one kernel-homogeneous query block: writes ranks[q] (1-based, tie-
/// resolved like FilteredRank) for each of the num_queries queries.
/// answers[q] is query q's sorted filtered-answer list (never null).
/// Requires a prepared AND quantized block. Ranks are bit-identical to
/// scoring the whole pool exactly and calling FilteredRank.
void ScreenRankBlock(const KgeModel& model, const int32_t* anchors,
                     const int32_t* truths, size_t num_queries,
                     int32_t relation, QueryDirection direction,
                     const CandidateBlock& block,
                     const std::vector<int32_t>* const* answers, TieBreak tie,
                     ScreenScratch* scratch, double* ranks,
                     ScreenStats* stats);

}  // namespace kgeval

#endif  // KGEVAL_EVAL_SCREEN_H_

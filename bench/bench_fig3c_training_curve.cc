// Reproduces Figure 3c: the estimated validation MRR across training on
// wikikg2 — the practical use case of the framework: monitoring a model
// during training without paying for full evaluations.
//
// Each sampling strategy monitors through an EvalSession: its candidate
// pools are drawn once and pinned, so (a) the per-epoch estimate pays no
// sampling cost and (b) every epoch ranks against identical pools — the
// curve's movement is training progress, not pool-draw noise.
//
// --from-disk switches to the checkpoint-streaming variant of the same
// figure: train once writing per-epoch snapshots, then sweep the files with
// EstimateCheckpoints — the curve a monitoring service reconstructs from a
// finished run's checkpoint directory instead of riding inside the trainer.

#include <cstdio>
#include <filesystem>
#include <map>
#include <vector>

#include "bench/bench_common.h"
#include "core/eval_session.h"
#include "eval/full_evaluator.h"
#include "models/trainer.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace kgeval;
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  const std::string preset =
      args.only_dataset.empty() ? "wikikg2" : args.only_dataset;
  const int32_t epochs = args.epochs > 0 ? args.epochs : (args.fast ? 3 : 8);

  const SynthOutput synth = bench::LoadPreset(preset, args);
  const Dataset& dataset = synth.dataset;
  const FilterIndex filter(dataset);

  std::map<SamplingStrategy, std::unique_ptr<EvalSession>> sessions;
  double pinned_sample_seconds = 0.0;
  for (SamplingStrategy strategy :
       {SamplingStrategy::kRandom, SamplingStrategy::kStatic,
        SamplingStrategy::kProbabilistic}) {
    FrameworkOptions options;
    options.strategy = strategy;
    options.recommender = RecommenderType::kLwd;
    // ~ the paper's n_s = 200,000 on 2.5M entities (~8%).
    options.sample_fraction = 0.08;
    sessions[strategy] =
        EvalSession::Create(&dataset, &filter, options, Split::kValid)
            .ValueOrDie();
    pinned_sample_seconds += sessions[strategy]->pools().sample_seconds;
  }

  ModelOptions model_options;
  model_options.dim = 32;
  model_options.adam.learning_rate = 3e-3f;
  auto model = CreateModel(ModelType::kComplEx, dataset.num_entities(),
                           dataset.num_relations(), model_options)
                   .ValueOrDie();
  TrainerOptions trainer_options;
  trainer_options.epochs = epochs;
  trainer_options.negatives_per_positive = 8;

  bench::PrintHeader(StrFormat(
      "Figure 3c: estimated validation MRR across training (%s, ComplEx%s)",
      preset.c_str(), args.from_disk ? ", from-disk checkpoints" : ""));
  TextTable table({"Step (triples seen)", "Probabilistic", "Random",
                   "Static", "True MRR"});
  FullEvalOptions full_options;
  full_options.max_triples = 3000;

  if (args.from_disk) {
    // Checkpoint-streaming mode: the trainer only writes snapshots; every
    // estimate happens afterwards, from the files, on the pinned pools.
    const std::string ckpt_dir = bench::MakeScratchDir("kgeval_fig3c_ckpt");
    trainer_options.checkpoint_dir = ckpt_dir;
    Trainer trainer(&dataset, trainer_options);
    KGEVAL_CHECK(trainer.Train(model.get()).ok());
    std::vector<std::string> paths;
    for (int32_t epoch = 0; epoch < epochs; ++epoch) {
      paths.push_back(CheckpointPath(ckpt_dir, epoch));
    }

    std::map<SamplingStrategy, std::vector<CheckpointEstimate>> curves;
    double sweep_seconds = 0.0;
    for (auto& [strategy, session] : sessions) {
      CheckpointSweepStats stats;
      curves[strategy] = session->EstimateCheckpoints(
          paths, full_options.max_triples, nullptr, &stats);
      sweep_seconds += stats.wall_seconds;
    }
    for (int32_t epoch = 0; epoch < epochs; ++epoch) {
      auto truth_model =
          sessions.begin()->second->framework().LoadCheckpoint(paths[epoch]);
      KGEVAL_CHECK(truth_model.ok());
      const double truth =
          EvaluateFullRanking(*truth_model.ValueOrDie(), dataset, filter,
                              Split::kValid, full_options)
              .metrics.mrr;
      const auto mrr_at = [&](SamplingStrategy strategy) {
        const CheckpointEstimate& outcome = curves[strategy][epoch];
        KGEVAL_CHECK(outcome.status.ok());
        return outcome.result.metrics.mrr;
      };
      table.AddRow({FormatWithCommas(static_cast<long long>(epoch + 1) *
                                     dataset.train().size()),
                    bench::F(mrr_at(SamplingStrategy::kProbabilistic), 4),
                    bench::F(mrr_at(SamplingStrategy::kRandom), 4),
                    bench::F(mrr_at(SamplingStrategy::kStatic), 4),
                    bench::F(truth, 4)});
    }
    std::printf("%s", table.ToString().c_str());
    bench::PrintNote(StrFormat(
        "from-disk: the 3 sessions swept %d snapshots in %.3fs total "
        "(bounded-resident concurrent loads), reconstructing the same "
        "monitoring curve a per-epoch callback would have produced",
        epochs, sweep_seconds));
    std::filesystem::remove_all(ckpt_dir);
  } else {
    Trainer trainer(&dataset, trainer_options);
    const Status status = trainer.Train(
        model.get(), [&](int32_t epoch, const KgeModel& m) {
          const double truth =
              EvaluateFullRanking(m, dataset, filter, Split::kValid,
                                  full_options)
                  .metrics.mrr;
          const double prob =
              sessions[SamplingStrategy::kProbabilistic]
                  ->Estimate(m, full_options.max_triples)
                  .metrics.mrr;
          const double random = sessions[SamplingStrategy::kRandom]
                                    ->Estimate(m, full_options.max_triples)
                                    .metrics.mrr;
          const double station = sessions[SamplingStrategy::kStatic]
                                     ->Estimate(m, full_options.max_triples)
                                     .metrics.mrr;
          table.AddRow({FormatWithCommas(static_cast<long long>(epoch + 1) *
                                         dataset.train().size()),
                        bench::F(prob, 4), bench::F(random, 4),
                        bench::F(station, 4), bench::F(truth, 4)});
        });
    KGEVAL_CHECK(status.ok());
    std::printf("%s", table.ToString().c_str());
  }
  bench::PrintNote(
      "paper shape: the Probabilistic curve coincides with the true MRR "
      "across training; Random tracks the trend but at a large upward "
      "offset — fine for early stopping, useless as an absolute number");
  bench::PrintNote(StrFormat(
      "pinned pools: the 3 sessions drew their 2|R| pools once (%.3fs "
      "total), amortized to %.4fs per epoch over %d epochs — a per-epoch "
      "redraw would pay the full %.3fs every epoch and decorrelate "
      "consecutive points",
      pinned_sample_seconds, pinned_sample_seconds / epochs, epochs,
      pinned_sample_seconds));
  return 0;
}

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/framework.h"
#include "core/sampled_evaluator.h"
#include "core/samplers.h"
#include "eval/auc.h"
#include "eval/full_evaluator.h"
#include "models/kge_model.h"
#include "synth/config.h"
#include "synth/generator.h"
#include "util/rng.h"

namespace kgeval {
namespace {

constexpr ModelType kAllModels[] = {
    ModelType::kTransE, ModelType::kDistMult, ModelType::kComplEx,
    ModelType::kRescal, ModelType::kRotatE,   ModelType::kTuckEr,
    ModelType::kConvE};

ModelOptions SmallOptions() {
  ModelOptions options;
  options.dim = 16;
  options.seed = 7;
  return options;
}

class ScoreBatchTest : public ::testing::TestWithParam<ModelType> {
 protected:
  std::unique_ptr<KgeModel> Make() {
    return CreateModel(GetParam(), /*num_entities=*/40, /*num_relations=*/6,
                       SmallOptions())
        .ValueOrDie();
  }
};

TEST_P(ScoreBatchTest, MatchesPerQueryScoreCandidates) {
  auto model = Make();
  // Unsorted candidates with a duplicate: ScoreBatch makes no ordering
  // assumptions about the pool.
  const std::vector<int32_t> candidates = {11, 3, 27, 3, 0, 39, 18};
  const std::vector<int32_t> anchors = {0, 5, 5, 17, 39, 2, 8, 21, 30};
  const size_t n = candidates.size();
  const size_t q = anchors.size();
  std::vector<float> batched(q * n), scalar(n);
  for (int32_t relation : {0, 5}) {
    for (QueryDirection dir :
         {QueryDirection::kTail, QueryDirection::kHead}) {
      model->ScoreBatch(anchors.data(), q, relation, dir, candidates.data(),
                        n, batched.data());
      for (size_t i = 0; i < q; ++i) {
        model->ScoreCandidates(anchors[i], relation, dir, candidates.data(),
                               n, scalar.data());
        for (size_t c = 0; c < n; ++c) {
          EXPECT_NEAR(batched[i * n + c], scalar[c], 1e-5)
              << ModelTypeName(GetParam()) << " query " << i << " candidate "
              << c;
        }
      }
    }
  }
}

TEST_P(ScoreBatchTest, ScorePairsMatchesSingleCandidateCalls) {
  auto model = Make();
  const std::vector<int32_t> anchors = {1, 4, 4, 19, 33, 0};
  const std::vector<int32_t> candidates = {7, 7, 2, 38, 0, 12};
  std::vector<float> batched(anchors.size());
  for (int32_t relation : {2, 4}) {
    for (QueryDirection dir :
         {QueryDirection::kTail, QueryDirection::kHead}) {
      model->ScorePairs(anchors.data(), candidates.data(), anchors.size(),
                        relation, dir, batched.data());
      for (size_t i = 0; i < anchors.size(); ++i) {
        float scalar = 0.0f;
        model->ScoreCandidates(anchors[i], relation, dir, &candidates[i], 1,
                               &scalar);
        EXPECT_NEAR(batched[i], scalar, 1e-5)
            << ModelTypeName(GetParam()) << " pair " << i;
      }
    }
  }
}

TEST_P(ScoreBatchTest, EmptyBatchAndEmptyPoolAreNoops) {
  auto model = Make();
  const int32_t candidate = 3;
  const int32_t anchor = 1;
  // No queries: must not touch out.
  model->ScoreBatch(nullptr, 0, 0, QueryDirection::kTail, &candidate, 1,
                    nullptr);
  // No candidates: must not touch out.
  model->ScoreBatch(&anchor, 1, 0, QueryDirection::kTail, nullptr, 0,
                    nullptr);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ScoreBatchTest,
                         ::testing::ValuesIn(kAllModels),
                         [](const ::testing::TestParamInfo<ModelType>& info) {
                           return ModelTypeName(info.param);
                         });

Dataset SynthDataset() {
  SynthConfig config;
  config.num_entities = 500;
  config.num_relations = 12;
  config.num_types = 8;
  config.num_train = 6000;
  config.num_valid = 400;
  config.num_test = 400;
  config.seed = 42;
  return GenerateDataset(config).ValueOrDie().dataset;
}

TEST(SlotMajorEvaluatorTest, RanksIdenticalToScalarTripleMajorOrder) {
  const Dataset dataset = SynthDataset();
  const FilterIndex filter(dataset);
  Rng rng(13);
  const SampledCandidates pools = DrawCandidates(
      SamplingStrategy::kRandom, nullptr, dataset.num_entities(),
      /*n_s=*/60, NeededSlots(dataset, Split::kTest),
      2 * dataset.num_relations(), &rng);
  for (ModelType type : kAllModels) {
    auto model = CreateModel(type, dataset.num_entities(),
                             dataset.num_relations(), SmallOptions())
                     .ValueOrDie();
    const SampledEvalResult batched =
        EvaluateSampled(*model, dataset, filter, Split::kTest, pools);
    const SampledEvalResult scalar =
        EvaluateSampledScalar(*model, dataset, filter, Split::kTest, pools);
    ASSERT_EQ(batched.ranks.size(), scalar.ranks.size());
    for (size_t i = 0; i < batched.ranks.size(); ++i) {
      EXPECT_EQ(batched.ranks[i], scalar.ranks[i])
          << ModelTypeName(type) << " query " << i;
    }
    EXPECT_EQ(batched.scored_candidates, scalar.scored_candidates);
    EXPECT_DOUBLE_EQ(batched.metrics.mrr, scalar.metrics.mrr);
  }
}

TEST(SlotMajorEvaluatorTest, MaxTriplesPrefixMatchesScalar) {
  const Dataset dataset = SynthDataset();
  const FilterIndex filter(dataset);
  Rng rng(29);
  const SampledCandidates pools = DrawCandidates(
      SamplingStrategy::kRandom, nullptr, dataset.num_entities(),
      /*n_s=*/40, NeededSlots(dataset, Split::kTest),
      2 * dataset.num_relations(), &rng);
  auto model = CreateModel(ModelType::kDistMult, dataset.num_entities(),
                           dataset.num_relations(), SmallOptions())
                   .ValueOrDie();
  SampledEvalOptions options;
  options.max_triples = 57;
  const SampledEvalResult batched = EvaluateSampled(
      *model, dataset, filter, Split::kTest, pools, options);
  const SampledEvalResult scalar = EvaluateSampledScalar(
      *model, dataset, filter, Split::kTest, pools, options);
  EXPECT_EQ(batched.ranks, scalar.ranks);
  EXPECT_EQ(batched.ranks.size(), 2u * 57u);
}

TEST(SlotMajorEvaluatorTest, FullRankingUsesBatchedTilingConsistently) {
  // The tiled slot-major full evaluator must agree with a direct ScoreAll
  // walk; DistMult + RotatE cover the dot-product and distance kernels.
  const Dataset dataset = SynthDataset();
  const FilterIndex filter(dataset);
  for (ModelType type : {ModelType::kDistMult, ModelType::kRotatE}) {
    auto model = CreateModel(type, dataset.num_entities(),
                             dataset.num_relations(), SmallOptions())
                     .ValueOrDie();
    FullEvalOptions options;
    options.max_triples = 40;
    const FullEvalResult result =
        EvaluateFullRanking(*model, dataset, filter, Split::kTest, options);
    std::vector<float> scores(dataset.num_entities());
    for (int64_t i = 0; i < options.max_triples; ++i) {
      const Triple& triple = dataset.test()[i];
      for (QueryDirection dir :
           {QueryDirection::kTail, QueryDirection::kHead}) {
        const bool tail_dir = dir == QueryDirection::kTail;
        const int32_t anchor = tail_dir ? triple.head : triple.tail;
        const int32_t truth = tail_dir ? triple.tail : triple.head;
        model->ScoreAll(anchor, triple.relation, dir, scores.data());
        const std::vector<int32_t>* answers = filter.AnswersFor(triple, dir);
        ASSERT_NE(answers, nullptr);
        int64_t higher = 0, tied = 0;
        size_t cursor = 0;
        for (int32_t e = 0; e < dataset.num_entities(); ++e) {
          while (cursor < answers->size() && (*answers)[cursor] < e) {
            ++cursor;
          }
          if (cursor < answers->size() && (*answers)[cursor] == e) continue;
          if (scores[e] > scores[truth]) {
            ++higher;
          } else if (scores[e] == scores[truth]) {
            ++tied;
          }
        }
        EXPECT_EQ(result.ranks[i * 2 + (tail_dir ? 0 : 1)],
                  RankFromCounts(higher, tied, options.tie))
            << ModelTypeName(type) << " triple " << i;
      }
    }
  }
}

TEST(ScoreTriplesTest, MatchesScoreTriple) {
  const Dataset dataset = SynthDataset();
  auto model = CreateModel(ModelType::kComplEx, dataset.num_entities(),
                           dataset.num_relations(), SmallOptions())
                   .ValueOrDie();
  const size_t n = 100;
  std::vector<float> batched(n);
  ScoreTriples(*model, dataset.test().data(), n, batched.data());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(batched[i], model->ScoreTriple(dataset.test()[i]), 1e-5)
        << "triple " << i;
  }
}

}  // namespace
}  // namespace kgeval

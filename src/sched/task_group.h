#ifndef KGEVAL_SCHED_TASK_GROUP_H_
#define KGEVAL_SCHED_TASK_GROUP_H_

#include <cstddef>
#include <functional>
#include <memory>

#include "util/thread_pool.h"

namespace kgeval {

/// A group of tasks scheduled onto a shared worker pool, with a *per-group*
/// wait: Wait() blocks only until this group's tasks finish, so any number
/// of concurrent jobs (evaluations, training epochs, sessions) interleave
/// their work on the same workers without ever waiting on each other —
/// there is no process-wide barrier anywhere in the scheduler.
///
/// Scheduling model:
///  - Submitted tasks land in the group's own queue; each submission posts
///    one drain ticket to the worker pool, so workers pull group tasks in
///    submission order while the pool stays a plain FIFO of tickets.
///  - Wait() is help-first: the waiting thread drains its own group's
///    remaining queue before blocking on in-flight tasks, so a blocked
///    producer is never idle while its work sits queued (and a 1-worker
///    pool still gets two threads of progress).
///  - A task submitted *from a pool worker* runs inline on that worker (the
///    PR 3 nested-submit rule): a worker that queued sub-tasks and waited
///    on them would occupy one of the only threads able to drain them, so
///    nesting would deadlock once every worker is inside such a wait.
///
/// The group's shared state outlives the object via shared_ptr: drain
/// tickets still queued in the pool after Wait() returns find an empty
/// queue and no-op instead of touching a destroyed group.
class TaskGroup {
 public:
  /// `pool == nullptr` targets GlobalThreadPool().
  explicit TaskGroup(ThreadPool* pool = nullptr);
  /// Waits for any unfinished tasks (a group never abandons work).
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues a task; runs it inline when called from a pool worker.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted to *this group* has completed.
  /// Tasks from other groups sharing the pool are not waited on. Safe to
  /// call repeatedly; Submit()/Wait() cycles may be interleaved.
  void Wait();

  ThreadPool* pool() const { return pool_; }

 private:
  struct State;
  /// Pops and runs one task of the group, completing it (decrement +
  /// notify); false if the queue was already empty. The single drain
  /// protocol behind both worker tickets and Wait()'s help loop.
  static bool RunOne(const std::shared_ptr<State>& state);

  ThreadPool* pool_;
  std::shared_ptr<State> state_;
};

/// Splits [begin, end) into contiguous chunks and runs
/// `fn(chunk_begin, chunk_end)` as one TaskGroup on the global pool,
/// blocking until the group drains. Concurrent calls interleave on the
/// shared workers and wait only on their own chunks. Runs inline when the
/// range is small, the pool has one thread, or the caller is itself a pool
/// worker (the nested rule above).
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t, size_t)>& fn,
                 size_t min_chunk = 256);

/// Runs job(i) for every i in [0, n) concurrently on caller-side *job*
/// threads (one per in-flight request), not pool workers — each job fans
/// its chunks out to the shared worker pool through its own TaskGroups and
/// helps drain them while it waits, so in-flight jobs interleave on the
/// workers instead of serializing behind each other. In-flight jobs are
/// capped at the worker count: job threads compute (help-first waits), so a
/// 100-checkpoint sweep on 8 workers runs 8 jobs at a time instead of
/// oversubscribing the machine with 100 compute threads (and 100 jobs'
/// working state alive at once — the resident-model bound the checkpoint
/// sweep relies on). Jobs are claimed from a shared counter, so the cap
/// changes scheduling only — never results. Blocks until every job ran.
void RunJobsConcurrently(size_t n, const std::function<void(size_t)>& job);

}  // namespace kgeval

#endif  // KGEVAL_SCHED_TASK_GROUP_H_

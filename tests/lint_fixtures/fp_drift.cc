// Fixture: violates exactly `fp-drift` (linted as src/la/bad.cc).
#pragma STDC FP_CONTRACT ON

float Fixture(float a, float b, float c) { return a * b + c; }

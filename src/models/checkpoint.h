#ifndef KGEVAL_MODELS_CHECKPOINT_H_
#define KGEVAL_MODELS_CHECKPOINT_H_

#include <memory>
#include <string>

#include "models/kge_model.h"
#include "util/status.h"

namespace kgeval {

/// Writes a binary checkpoint of `model`'s parameters (not optimizer state)
/// to `path`. Format: magic, version, a fixed field-by-field header (model
/// type, shapes, seed, parameter count — serialized explicitly, so the same
/// model always produces byte-identical files regardless of ABI), then the
/// named parameter matrices in CollectParameters order. The stream is
/// flushed and closed before returning, so a full disk surfaces as IoError
/// here rather than as a silently truncated file.
Status SaveModel(KgeModel* model, const std::string& path);

/// Reconstructs a model from a checkpoint: the stored type/shapes drive
/// CreateModel, then the parameters are restored. Fails with IoError on
/// unreadable/truncated files and InvalidArgument on format/shape
/// mismatches; every header field is validated before any allocation, so a
/// corrupt file yields a Status, never a crash.
Result<std::unique_ptr<KgeModel>> LoadModel(const std::string& path);

/// Restores a checkpoint into an existing model of matching type and shape
/// (entities, relations, and both embedding dimensions are all checked up
/// front, so mismatches are diagnosed against the header, not against
/// whichever parameter matrix happens to differ first).
Status LoadModelInto(KgeModel* model, const std::string& path);

}  // namespace kgeval

#endif  // KGEVAL_MODELS_CHECKPOINT_H_

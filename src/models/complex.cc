#include "models/complex.h"

#include <vector>

#include "la/vector_ops.h"

namespace kgeval {

ComplEx::ComplEx(int32_t num_entities, int32_t num_relations,
                 ModelOptions options)
    : KgeModel(ModelType::kComplEx, num_entities, num_relations, options),
      half_(options.dim / 2),
      entities_(num_entities, options.dim),
      relations_(num_relations, options.dim),
      entity_adam_(num_entities, options.dim, options.adam),
      relation_adam_(num_relations, options.dim, options.adam) {
  Rng rng(options.seed);
  entities_.InitXavier(&rng, options.dim, options.dim);
  relations_.InitXavier(&rng, options.dim, options.dim);
}

void ComplEx::BuildKernelQueries(const int32_t* anchors, size_t num_queries,
                                 int32_t relation, QueryDirection direction,
                                 Matrix* queries) const {
  const int32_t m = half_;
  const float* rv = relations_.Row(relation);
  // The score is linear in the candidate embedding: fold anchor and
  // relation into a single query vector (q_re, q_im) per anchor.
  queries->Resize(num_queries, static_cast<size_t>(2 * m));
  for (size_t q = 0; q < num_queries; ++q) {
    const float* av = entities_.Row(anchors[q]);
    float* row = queries->Row(q);
    if (direction == QueryDirection::kTail) {
      // score = e.(ac - bd) + f.(bc + ad) with h=(a,b), r=(c,d), t=(e,f).
      for (int32_t i = 0; i < m; ++i) {
        const float a = av[i], b = av[m + i];
        const float c = rv[i], d = rv[m + i];
        row[i] = a * c - b * d;
        row[m + i] = b * c + a * d;
      }
    } else {
      // score = a.(ce + df) + b.(cf - de) with t=(e,f) as anchor.
      for (int32_t i = 0; i < m; ++i) {
        const float e = av[i], f = av[m + i];
        const float c = rv[i], d = rv[m + i];
        row[i] = c * e + d * f;
        row[m + i] = c * f - d * e;
      }
    }
  }
}

void ComplEx::UpdateTriple(int32_t head, int32_t relation, int32_t tail,
                           QueryDirection /*direction*/, float dscore) {
  const int32_t m = half_;
  const float* h = entities_.Row(head);
  const float* r = relations_.Row(relation);
  const float* t = entities_.Row(tail);
  std::vector<float> gh(2 * m), gr(2 * m), gt(2 * m);
  const float l2 = options_.l2;
  for (int32_t i = 0; i < m; ++i) {
    const float a = h[i], b = h[m + i];
    const float c = r[i], d = r[m + i];
    const float e = t[i], f = t[m + i];
    gh[i] = dscore * (c * e + d * f) + l2 * a;
    gh[m + i] = dscore * (c * f - d * e) + l2 * b;
    gr[i] = dscore * (a * e + b * f) + l2 * c;
    gr[m + i] = dscore * (a * f - b * e) + l2 * d;
    gt[i] = dscore * (a * c - b * d) + l2 * e;
    gt[m + i] = dscore * (b * c + a * d) + l2 * f;
  }
  entity_adam_.UpdateRow(&entities_, head, gh.data());
  relation_adam_.UpdateRow(&relations_, relation, gr.data());
  entity_adam_.UpdateRow(&entities_, tail, gt.data());
}

void ComplEx::CollectParameters(std::vector<NamedParameter>* out) {
  out->push_back({"entities", &entities_});
  out->push_back({"relations", &relations_});
}

}  // namespace kgeval

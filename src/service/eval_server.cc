#include "service/eval_server.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <deque>
#include <future>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "net/net_util.h"
#include "service/command.h"
#include "util/cancel.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/string_util.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace kgeval {

/// The protocol version in the connect banner. Bump rules are in
/// docs/PROTOCOL.md ("Versioning").
static constexpr int kProtocolVersion = 1;

/// Per-connection server state. Owned by the loop thread; executor jobs
/// only touch the Connection (thread-safe) and post everything else home.
struct EvalServer::Client {
  struct Request {
    std::string line;
    bool overflow = false;
  };

  std::shared_ptr<Connection> conn;
  std::deque<Request> pending;
  bool busy = false;           // An executor job is running for this client.
  bool paused = false;         // Reads paused by queue-depth flow control.
  bool quitting = false;       // QUIT seen: drain replies, then close.
  /// Cancellation token of the in-flight blocking command, shared with the
  /// executor job (and the deadline timer, when armed). Reset by the
  /// completion post; Shutdown trips it to drain in-flight work bounded.
  std::shared_ptr<CancelToken> active;
  /// Pending RunAfter id of the in-flight command's deadline (0 = none).
  uint64_t deadline_timer = 0;
  /// Last traffic or command completion; drives the idle reaper.
  std::chrono::steady_clock::time_point last_activity;
};

/// The command executor pool: plain worker threads draining a FIFO of
/// command closures. Deliberately *not* the shared scoring pool — an
/// executor thread is a job thread that blocks (on streamed-reply
/// backpressure, on WATCH polls), and the scoring workers must never
/// block on a slow client. The evaluation inside a command fans out to
/// the shared pool through TaskGroups and helps drain its own chunks
/// while waiting, exactly like RunJobsConcurrently's job threads.
class EvalServer::Executor {
 public:
  // The executor pool is the service's documented job-thread layer
  // (blocking command threads, distinct from the scoring workers); these
  // threads are joined in Shutdown().
  explicit Executor(size_t threads) {
    for (size_t i = 0; i < threads; ++i) {
      threads_.emplace_back([this] { Loop(); });
    }
  }

  ~Executor() { Shutdown(); }

  void Submit(std::function<void()> fn) KGEVAL_EXCLUDES(mutex_) {
    {
      MutexLock lock(&mutex_);
      KGEVAL_CHECK(!stopping_) << "Submit after Executor::Shutdown";
      queue_.push(std::move(fn));
    }
    work_.NotifyOne();
  }

  /// Commands waiting for an executor thread (not the ones running). The
  /// load shedder's signal: a deep backlog means every executor is pinned
  /// and new work would only wait.
  size_t QueuedDepth() const KGEVAL_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return queue_.size();
  }

  /// Runs every queued job (they fail fast once connections are closed),
  /// then joins. Idempotent.
  void Shutdown() KGEVAL_EXCLUDES(mutex_) {
    {
      MutexLock lock(&mutex_);
      stopping_ = true;
    }
    work_.NotifyAll();
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

 private:
  void Loop() KGEVAL_EXCLUDES(mutex_) {
    while (true) {
      std::function<void()> fn;
      {
        MutexLock lock(&mutex_);
        while (!stopping_ && queue_.empty()) work_.Wait(lock);
        if (queue_.empty()) return;  // stopping_ and drained.
        fn = std::move(queue_.front());
        queue_.pop();
      }
      fn();
    }
  }

  // kgeval-lint: allow(thread-containment): see the constructor note.
  std::vector<std::thread> threads_;
  mutable Mutex mutex_;
  CondVar work_;
  std::queue<std::function<void()>> queue_ KGEVAL_GUARDED_BY(mutex_);
  bool stopping_ KGEVAL_GUARDED_BY(mutex_) = false;
};

EvalServer::EvalServer(Options options) : options_(std::move(options)) {}

EvalServer::~EvalServer() { Shutdown(); }

Result<std::unique_ptr<EvalServer>> EvalServer::Start(Options options) {
  std::unique_ptr<EvalServer> server(new EvalServer(std::move(options)));
  Status status = server->Init();
  if (!status.ok()) return status;
  return server;
}

Status EvalServer::Init() {
  // The loop thread does not exist yet, so this thread may claim the
  // loop-thread capability for the pre-Run registrations below.
  loop_.AssertOnLoopThread();
  service_ = std::make_unique<EvalService>(options_.service);
  auto listener = CreateTcpListener(options_.host, options_.port);
  if (!listener.ok()) return listener.status();
  listen_fd_ = listener.ValueOrDie().fd;
  port_ = listener.ValueOrDie().port;
  if (!options_.preload_dataset.empty()) {
    // The loop thread does not exist yet, so the port is bound but nothing
    // accepts: the preload genuinely precedes all traffic (clients gate on
    // the LISTENING line, printed after Start() returns).
    ParsedCommand cmd;
    cmd.spec = FindCommand("LOAD");
    cmd.args = {options_.preload_dataset};
    std::string reply;
    service_->Execute(cmd, [&reply](const std::string& line) {
      reply = line;
      return true;
    });
    if (reply.rfind("OK", 0) != 0) {
      return Status::FailedPrecondition(
          StrFormat("preload LOAD %s: %s", options_.preload_dataset.c_str(),
                    reply.c_str()));
    }
    KGEVAL_LOG(Info) << "preload " << reply;
  }
  // Registered before the loop thread exists, so no concurrent map access.
  loop_.Add(listen_fd_, kEventRead, [this](uint32_t) {
    loop_.AssertOnLoopThread();
    HandleAccept();
  });
  size_t executors = options_.executor_threads;
  if (executors == 0) {
    executors = std::max<size_t>(2, GlobalThreadPool()->num_threads());
  }
  executor_ = std::make_unique<Executor>(executors);
  // kgeval-lint: allow(thread-containment): owned here, joined by Shutdown().
  loop_thread_ = std::thread([this] { loop_.Run(); });
  if (options_.idle_timeout_s > 0) {
    // Timers are loop-thread state; arm the first sweep from the loop.
    loop_.Post([this] {
      loop_.AssertOnLoopThread();
      ScheduleIdleSweep();
    });
  }
  KGEVAL_LOG(Info) << "kgeval-server listening on " << options_.host << ":"
                   << port_ << " (" << executors << " executors)";
  return Status::OK();
}

void EvalServer::HandleAccept() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      KGEVAL_LOG(Warning) << "accept: " << ::strerror(errno);
      return;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    (void)SetTcpNoDelay(fd);
    auto& counters = service_->counters();
    counters.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    counters.connections_open.fetch_add(1, std::memory_order_relaxed);
    auto client = std::make_shared<Client>();
    client->conn =
        std::make_shared<Connection>(&loop_, fd, options_.connection);
    client->last_activity = std::chrono::steady_clock::now();
    clients_.insert(client);
    // Both callbacks capture the Client weakly: Client::conn owns the
    // Connection, and the Connection stores these callbacks for its whole
    // life, so a shared capture here would be a shared_ptr cycle that
    // leaks the pair (and its buffers) on every disconnect. clients_
    // keeps the Client alive while the connection is open.
    std::weak_ptr<Client> weak = client;
    client->conn->Start(
        [this, weak](std::string_view line, bool overflow) {
          loop_.AssertOnLoopThread();
          if (auto c = weak.lock()) OnLine(c, line, overflow);
        },
        [this, weak] {
          loop_.AssertOnLoopThread();
          if (auto c = weak.lock()) OnClose(c);
        });
    client->conn->Send(StrFormat("KGEVAL %d\n", kProtocolVersion));
  }
}

void EvalServer::OnClose(const std::shared_ptr<Client>& client) {
  service_->counters().connections_open.fetch_sub(1,
                                                  std::memory_order_relaxed);
  client->pending.clear();
  clients_.erase(client);
}

void EvalServer::UpdateClientFlowControl(
    const std::shared_ptr<Client>& client) {
  if (client->conn->closed()) return;
  if (!client->paused &&
      client->pending.size() >= options_.max_pending_per_connection) {
    client->paused = true;
    client->conn->PauseReads();
  } else if (client->paused &&
             client->pending.size() <=
                 options_.max_pending_per_connection / 2) {
    client->paused = false;
    client->conn->ResumeReads();
  }
}

void EvalServer::OnLine(const std::shared_ptr<Client>& client,
                        std::string_view line, bool overflow) {
  if (client->quitting || client->conn->closed()) return;
  client->last_activity = std::chrono::steady_clock::now();
  client->pending.push_back(Client::Request{std::string(line), overflow});
  UpdateClientFlowControl(client);
  PumpClient(client);
}

void EvalServer::PumpClient(const std::shared_ptr<Client>& client) {
  auto& counters = service_->counters();
  while (!client->busy && !client->pending.empty() &&
         !client->conn->closed()) {
    Client::Request request = std::move(client->pending.front());
    client->pending.pop_front();
    UpdateClientFlowControl(client);

    if (request.overflow) {
      counters.errors.fetch_add(1, std::memory_order_relaxed);
      client->conn->Send("ERR line-too-long request line exceeds limit\n");
      continue;
    }
    auto parsed = ParseCommandLine(request.line);
    if (!parsed.ok()) {
      counters.commands.fetch_add(1, std::memory_order_relaxed);
      counters.errors.fetch_add(1, std::memory_order_relaxed);
      client->conn->Send(
          StrFormat("ERR %s\n", parsed.status().message().c_str()));
      continue;
    }
    ParsedCommand cmd = std::move(parsed).ValueOrDie();
    if (cmd.spec == nullptr) continue;  // Blank line.

    if (cmd.spec->verb == Verb::kQuit) {
      counters.commands.fetch_add(1, std::memory_order_relaxed);
      client->quitting = true;
      client->conn->Send("OK bye\n");
      client->conn->CloseWhenDrained();
      return;
    }
    if (cmd.spec->verb == Verb::kPing || cmd.spec->verb == Verb::kStats) {
      // Non-blocking verbs answer from the loop thread itself: they stay
      // fast while every executor is deep in a sweep, which is exactly
      // when an operator wants STATS to answer.
      auto conn = client->conn;
      service_->Execute(cmd, [&conn](const std::string& reply) {
        conn->Send(reply + "\n");
        return !conn->closed();
      });
      continue;
    }

    // Load shedding happens here, at dispatch — when the request reaches
    // the head of its connection's queue — never at enqueue: an enqueue-
    // time ERR busy would jump ahead of the replies to requests queued
    // before it and break the per-connection reply-order guarantee. A shed
    // is an in-order terminal reply like any other.
    if (options_.max_queued_commands > 0 &&
        executor_->QueuedDepth() >= options_.max_queued_commands) {
      counters.commands.fetch_add(1, std::memory_order_relaxed);
      counters.shed.fetch_add(1, std::memory_order_relaxed);
      client->conn->Send(
          "ERR busy server overloaded, retry later\n");
      continue;
    }

    // Blocking verb: at most one in flight per connection, so pipelined
    // replies keep request order; the next request starts from the
    // completion post.
    client->busy = true;
    client->active = std::make_shared<CancelToken>();
    // LOAD is deadline-exempt: dataset builds are not cancellation-
    // threaded, so a timer could only fire spuriously after the fact.
    if (options_.service.default_deadline_s > 0 &&
        cmd.spec->verb != Verb::kLoad) {
      auto token = client->active;
      client->deadline_timer =
          loop_.RunAfter(options_.service.default_deadline_s, [token] {
            token->Cancel(CancelToken::Reason::kDeadline);
          });
    }
    auto conn = client->conn;
    auto token = client->active;
    executor_->Submit([this, client, conn, token, cmd = std::move(cmd)] {
      service_->Execute(
          cmd,
          [&conn](const std::string& reply) {
            return conn->BlockingSend(reply + "\n");
          },
          token.get());
      loop_.Post([this, client] {
        loop_.AssertOnLoopThread();
        if (client->deadline_timer != 0) {
          loop_.CancelTimer(client->deadline_timer);
          client->deadline_timer = 0;
        }
        client->active.reset();
        client->busy = false;
        client->last_activity = std::chrono::steady_clock::now();
        if (!client->conn->closed()) PumpClient(client);
      });
    });
    return;
  }
}

void EvalServer::ScheduleIdleSweep() {
  loop_.RunAfter(std::max(0.01, options_.idle_timeout_s / 2), [this] {
    loop_.AssertOnLoopThread();
    ReapIdleClients();
    ScheduleIdleSweep();
  });
}

void EvalServer::ReapIdleClients() {
  const auto now = std::chrono::steady_clock::now();
  // Close() mutates clients_ through OnClose; iterate a copy.
  const std::vector<std::shared_ptr<Client>> open(clients_.begin(),
                                                  clients_.end());
  for (const auto& client : open) {
    // Only truly quiescent connections are reaped: nothing in flight,
    // nothing queued, not already draining a QUIT.
    if (client->busy || client->quitting || !client->pending.empty()) {
      continue;
    }
    if (client->conn->closed()) continue;
    const double idle_s =
        std::chrono::duration<double>(now - client->last_activity).count();
    if (idle_s < options_.idle_timeout_s) continue;
    service_->counters().idle_closed.fetch_add(1, std::memory_order_relaxed);
    client->conn->Close();
  }
}

void EvalServer::Shutdown() {
  if (shut_down_.exchange(true)) return;
  if (service_) service_->RequestShutdown();
  if (!loop_thread_.joinable()) {
    // Init failed before the loop thread started (e.g. the bind): no
    // thread will ever service a Post, so waiting on one would deadlock
    // the error return. Nothing runs concurrently — clean up inline (the
    // capability is claimable because no loop ever ran).
    loop_.AssertOnLoopThread();
    if (listen_fd_ >= 0) {
      loop_.Remove(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    if (executor_) executor_->Shutdown();
    return;
  }
  // Close the listener and every connection from the loop thread, which
  // owns them; closing wakes any executor blocked in BlockingSend.
  std::promise<void> closed;
  loop_.Post([this, &closed] {
    loop_.AssertOnLoopThread();
    loop_.Remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
    // Close() mutates clients_ through OnClose; iterate a copy.
    const std::vector<std::shared_ptr<Client>> open(clients_.begin(),
                                                    clients_.end());
    // Trip every in-flight command's token first: executors wind down at
    // their next block boundary instead of finishing hours of sweep into
    // sockets about to vanish — that is what bounds the drain below.
    for (const auto& client : open) {
      if (client->active != nullptr) {
        client->active->Cancel(CancelToken::Reason::kCancelled);
      }
    }
    for (const auto& client : open) client->conn->Close();
    closed.set_value();
  });
  closed.get_future().wait();
  // Executors drain (their emits fail fast now), then stop posting.
  executor_->Shutdown();
  loop_.Stop();
  loop_thread_.join();
}

}  // namespace kgeval

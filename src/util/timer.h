#ifndef KGEVAL_UTIL_TIMER_H_
#define KGEVAL_UTIL_TIMER_H_

#include <chrono>

namespace kgeval {

/// Monotonic wall-clock stopwatch. Started on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace kgeval

#endif  // KGEVAL_UTIL_TIMER_H_

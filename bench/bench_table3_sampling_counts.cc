// Reproduces Table 3: the number of negative samplings an evaluation needs
// with a query-dependent candidate generator (one per distinct (h,r)/(r,t)
// pair) versus a relational recommender (one per test relation and
// direction), at a sampling rate of 2.5% of |E|.

#include <cstdio>

#include "bench/bench_common.h"
#include "graph/stats.h"
#include "util/string_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace kgeval;
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  constexpr double kFraction = 0.025;

  bench::PrintHeader("Table 3: sampling counts at f_s = 2.5%");
  TextTable table({"Dataset", "(h,r)&(r,t) pairs", "# samples (query)",
                   "(.,r,.) instances", "# samples (relational)",
                   "reduction"});
  // The paper shows YAGO3-10, CoDEx-L and ogbl-wikikg2; the appendix has the
  // rest. We print all presets.
  for (const std::string& name : PresetNames()) {
    if (!args.only_dataset.empty() && name != args.only_dataset) continue;
    const SynthOutput synth = bench::LoadPreset(name, args);
    const SamplingComplexity sc =
        ComputeSamplingComplexity(synth.dataset, kFraction);
    table.AddRow({name, FormatWithCommas(sc.query_pairs),
                  FormatWithCommas(sc.query_samples),
                  FormatWithCommas(sc.relation_instances),
                  FormatWithCommas(sc.relation_samples),
                  StrFormat("x%.1f", sc.reduction_factor)});
  }
  std::printf("%s", table.ToString().c_str());
  bench::PrintNote(
      "paper reports x62.7 (YAGO3-10), x142.5 (CoDEx-L), x439.7 "
      "(ogbl-wikikg2); the reduction grows with the ratio of test pairs to "
      "test relations, as here");
  return 0;
}

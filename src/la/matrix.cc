#include "la/matrix.h"

#include <cmath>

namespace kgeval {

void Matrix::InitXavier(Rng* rng, size_t fan_in, size_t fan_out) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  InitUniform(rng, -bound, bound);
}

void Matrix::InitUniform(Rng* rng, float lo, float hi) {
  for (auto& v : data_) v = lo + (hi - lo) * rng->NextFloat();
}

void Matrix::InitGaussian(Rng* rng, float stddev) {
  for (auto& v : data_) {
    v = static_cast<float>(rng->NextGaussian()) * stddev;
  }
}

}  // namespace kgeval

// Fixture: violates exactly `simd-containment` (linted as src/eval/bad.cc).
#include <immintrin.h>

int Fixture() { return 0; }

#ifndef KGEVAL_KP_KP_METRIC_H_
#define KGEVAL_KP_KP_METRIC_H_

#include "core/samplers.h"
#include "graph/dataset.h"
#include "models/kge_model.h"
#include "util/rng.h"

namespace kgeval {

/// Options for the Knowledge Persistence proxy metric (Bastos et al., 2023),
/// the non-ranking baseline of Tables 7–9.
struct KpOptions {
  /// Number of triples sampled from the evaluation split for KP+ / KP-.
  int64_t num_samples = 2000;
  int32_t num_slices = 16;
  uint64_t seed = 55;
};

/// Result: the KP score (sliced-Wasserstein distance between the positive
/// and negative score-graph persistence diagrams) and its wall time.
struct KpResult {
  double score = 0.0;
  double seconds = 0.0;
  int64_t positive_edges = 0;
  int64_t negative_edges = 0;
};

/// Computes KP for `model` on `split`. `pools`, when non-null, supplies the
/// negative corruptions per slot (the paper's KP-P / KP-S variants: KP
/// boosted with recommender-guided negatives); when null, corruptions are
/// uniform over all entities (KP-R).
KpResult ComputeKp(const KgeModel& model, const Dataset& dataset, Split split,
                   const KpOptions& options,
                   const SampledCandidates* pools = nullptr);

}  // namespace kgeval

#endif  // KGEVAL_KP_KP_METRIC_H_

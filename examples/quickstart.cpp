// Quickstart: generate a typed KG, train a ComplEx model, and compare the
// paper's fast estimate of the filtered MRR against the exact full ranking.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/framework.h"
#include "eval/full_evaluator.h"
#include "models/trainer.h"
#include "synth/config.h"
#include "synth/generator.h"
#include "util/timer.h"

int main() {
  using namespace kgeval;

  // 1. A CoDEx-S-shaped synthetic KG (see DESIGN.md for the substitution).
  SynthConfig config = GetPreset("codex-s", PresetScale::kScaled).ValueOrDie();
  SynthOutput synth = GenerateDataset(config).ValueOrDie();
  const Dataset& dataset = synth.dataset;
  std::printf("dataset: %s  |E|=%d |R|=%d train=%zu test=%zu\n",
              dataset.name().c_str(), dataset.num_entities(),
              dataset.num_relations(), dataset.train().size(),
              dataset.test().size());

  // 2. Train a KGC model.
  ModelOptions model_options;
  model_options.dim = 32;
  auto model = CreateModel(ModelType::kComplEx, dataset.num_entities(),
                           dataset.num_relations(), model_options)
                   .ValueOrDie();
  TrainerOptions trainer_options;
  trainer_options.epochs = 10;
  Trainer trainer(&dataset, trainer_options);
  trainer.Train(model.get()).ok();

  // 3. Exact filtered ranking (the expensive O(|E|^2) baseline)...
  FilterIndex filter(dataset);
  WallTimer full_timer;
  FullEvalResult full =
      EvaluateFullRanking(*model, dataset, filter, Split::kTest);
  const double full_seconds = full_timer.Seconds();
  std::printf("full ranking : %s  (%.3fs)\n",
              full.metrics.ToString().c_str(), full_seconds);

  // 4. ...vs the framework's estimate with L-WD-guided probabilistic
  // sampling of 10%% of the entities.
  FrameworkOptions fw_options;
  fw_options.recommender = RecommenderType::kLwd;
  fw_options.strategy = SamplingStrategy::kProbabilistic;
  fw_options.sample_fraction = 0.1;
  auto framework = EvaluationFramework::Build(&dataset, fw_options)
                       .ValueOrDie();
  SampledEvalResult estimate =
      framework->Estimate(*model, filter, Split::kTest);
  std::printf("framework    : %s  (%.3fs eval + %.3fs sampling)\n",
              estimate.metrics.ToString().c_str(), estimate.eval_seconds,
              estimate.sample_seconds);
  std::printf("MRR abs error: %.4f\n",
              std::abs(estimate.metrics.mrr - full.metrics.mrr));
  return 0;
}

#include "recommenders/heuristics.h"

#include <unordered_set>
#include <vector>

#include "util/timer.h"

namespace kgeval {
namespace {

int64_t NumSets(const Dataset& dataset) {
  return 2LL * dataset.num_relations();
}

}  // namespace

Result<RecommenderScores> PtRecommender::Fit(const Dataset& dataset) {
  WallTimer timer;
  CooBuilder builder(dataset.num_entities(), NumSets(dataset));
  builder.Reserve(dataset.train().size() * 2);
  const int32_t num_r = dataset.num_relations();
  for (const Triple& t : dataset.train()) {
    builder.Add(t.head, t.relation, 1.0f);
    builder.Add(t.tail, t.relation + num_r, 1.0f);
  }
  CsrMatrix scores = builder.Build();
  // Duplicate (entity, slot) observations summed to counts; PT is binary.
  for (float& v : scores.mutable_values()) v = 1.0f;
  return internal::FinalizeScores(RecommenderType::kPt, std::move(scores),
                                  timer.Seconds());
}

Result<RecommenderScores> DbhRecommender::Fit(const Dataset& dataset) {
  if (use_types_ && !dataset.has_types()) {
    return Status::FailedPrecondition("DBH-T needs entity types");
  }
  WallTimer timer;
  const int32_t num_r = dataset.num_relations();
  const TypeStore& types = dataset.types();

  CooBuilder builder(dataset.num_entities(), NumSets(dataset));
  builder.Reserve(dataset.train().size() * 2);
  // DBH core: per-slot occurrence counts.
  for (const Triple& t : dataset.train()) {
    builder.Add(t.head, t.relation, 1.0f);
    builder.Add(t.tail, t.relation + num_r, 1.0f);
  }
  if (use_types_) {
    // DBH-T: types observed per slot, then +1 to every member of the type.
    // Collected as sets first so a frequent (type, slot) combination counts
    // once, matching "is seen as a head" in the paper's description.
    std::vector<std::unordered_set<int32_t>> slot_types(NumSets(dataset));
    for (const Triple& t : dataset.train()) {
      for (int32_t type : types.TypesOf(t.head)) {
        slot_types[t.relation].insert(type);
      }
      for (int32_t type : types.TypesOf(t.tail)) {
        slot_types[t.relation + num_r].insert(type);
      }
    }
    for (int64_t slot = 0; slot < NumSets(dataset); ++slot) {
      for (int32_t type : slot_types[slot]) {
        for (int32_t entity : types.EntitiesOf(type)) {
          builder.Add(entity, slot, 1.0f);
        }
      }
    }
  }
  return internal::FinalizeScores(type(), builder.Build(), timer.Seconds());
}

Result<RecommenderScores> OntoSimRecommender::Fit(const Dataset& dataset) {
  if (!dataset.has_types()) {
    return Status::FailedPrecondition("OntoSim needs entity types");
  }
  WallTimer timer;
  const int32_t num_r = dataset.num_relations();
  const TypeStore& types = dataset.types();

  std::vector<std::unordered_set<int32_t>> slot_types(NumSets(dataset));
  for (const Triple& t : dataset.train()) {
    for (int32_t type : types.TypesOf(t.head)) {
      slot_types[t.relation].insert(type);
    }
    for (int32_t type : types.TypesOf(t.tail)) {
      slot_types[t.relation + num_r].insert(type);
    }
  }
  CooBuilder builder(dataset.num_entities(), NumSets(dataset));
  for (int64_t slot = 0; slot < NumSets(dataset); ++slot) {
    for (int32_t type : slot_types[slot]) {
      for (int32_t entity : types.EntitiesOf(type)) {
        builder.Add(entity, slot, 1.0f);
      }
    }
  }
  // Entities seen in a slot always belong to it, types or not.
  for (const Triple& t : dataset.train()) {
    builder.Add(t.head, t.relation, 1.0f);
    builder.Add(t.tail, t.relation + num_r, 1.0f);
  }
  CsrMatrix scores = builder.Build();
  for (float& v : scores.mutable_values()) v = 1.0f;
  return internal::FinalizeScores(RecommenderType::kOntoSim,
                                  std::move(scores), timer.Seconds());
}

}  // namespace kgeval

#include "core/samplers.h"

#include <algorithm>
#include <unordered_set>

#include "stats/sampling.h"
#include "util/logging.h"
#include "util/timer.h"

namespace kgeval {

const char* SamplingStrategyName(SamplingStrategy strategy) {
  switch (strategy) {
    case SamplingStrategy::kRandom:
      return "Random";
    case SamplingStrategy::kStatic:
      return "Static";
    case SamplingStrategy::kProbabilistic:
      return "Probabilistic";
  }
  return "?";
}

std::vector<int32_t> NeededSlots(const Dataset& dataset, Split split) {
  const int32_t num_r = dataset.num_relations();
  std::unordered_set<int32_t> slots;
  for (const Triple& t : dataset.split(split)) {
    slots.insert(t.relation);            // Head queries sample the domain.
    slots.insert(t.relation + num_r);    // Tail queries sample the range.
  }
  std::vector<int32_t> out(slots.begin(), slots.end());
  std::sort(out.begin(), out.end());
  return out;
}

SampledCandidates DrawCandidates(SamplingStrategy strategy,
                                 const CandidateSets* sets,
                                 int32_t num_entities, int64_t n_s,
                                 const std::vector<int32_t>& slots,
                                 int32_t num_slots_total, Rng* rng) {
  WallTimer timer;
  SampledCandidates out;
  out.pools.resize(num_slots_total);
  if (strategy != SamplingStrategy::kRandom) {
    KGEVAL_CHECK(sets != nullptr);
    KGEVAL_CHECK_EQ(sets->num_slots(), num_slots_total);
  }
  for (int32_t slot : slots) {
    std::vector<int32_t> pool;
    switch (strategy) {
      case SamplingStrategy::kRandom:
        pool = SampleWithoutReplacement(num_entities, n_s, rng);
        break;
      case SamplingStrategy::kStatic:
        // Theorem 1's restriction: n_s,r = min(n_s, |set|).
        pool = SampleFrom(sets->sets[slot], n_s, rng);
        break;
      case SamplingStrategy::kProbabilistic:
        pool = WeightedSampleWithoutReplacement(
            sets->sets[slot], sets->weights[slot], n_s, rng);
        break;
    }
    std::sort(pool.begin(), pool.end());
    pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
    out.total_sampled += static_cast<int64_t>(pool.size());
    out.pools[slot] = std::move(pool);
  }
  out.sample_seconds = timer.Seconds();
  return out;
}

}  // namespace kgeval

#include "net/event_loop.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <chrono>
#include <thread>
#include <utility>

#include "util/fault.h"
#include "util/logging.h"

#if defined(__linux__) && !defined(KGEVAL_FORCE_POLL)
#include <sys/epoll.h>
#define KGEVAL_NET_EPOLL 1
#endif

namespace kgeval {

namespace {

void SetNonBlockingOrDie(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  KGEVAL_CHECK(flags >= 0) << "fcntl(F_GETFL): errno " << errno;
  KGEVAL_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0)
      << "fcntl(F_SETFL): errno " << errno;
}

#ifdef KGEVAL_NET_EPOLL
uint32_t ToEpoll(uint32_t events) {
  uint32_t e = 0;
  if (events & kEventRead) e |= EPOLLIN;
  if (events & kEventWrite) e |= EPOLLOUT;
  return e;
}

uint32_t FromEpoll(uint32_t e) {
  uint32_t events = 0;
  if (e & EPOLLIN) events |= kEventRead;
  if (e & EPOLLOUT) events |= kEventWrite;
  // Hangup/error are reported by epoll regardless of the subscription and
  // carried on their own bit, so dispatch can deliver them to a paused fd
  // without force-delivering reads (see kEventHangup in event_loop.h).
  if (e & (EPOLLHUP | EPOLLERR)) events |= kEventHangup;
  return events;
}

/// epoll's user-data word carries both halves of the dispatch key: the fd
/// and the registration generation that was live when it was armed.
uint64_t PackKey(int fd, uint32_t generation) {
  return (static_cast<uint64_t>(generation) << 32) |
         static_cast<uint32_t>(fd);
}
#endif

}  // namespace

EventLoop::EventLoop() {
  // Construction happens before any Run(): the loop-thread capability is
  // trivially claimable (the Debug check passes while no loop runs).
  AssertOnLoopThread();
  int pipe_fds[2];
  KGEVAL_CHECK(::pipe(pipe_fds) == 0) << "pipe: errno " << errno;
  wakeup_read_ = pipe_fds[0];
  wakeup_write_ = pipe_fds[1];
  SetNonBlockingOrDie(wakeup_read_);
  SetNonBlockingOrDie(wakeup_write_);
#ifdef KGEVAL_NET_EPOLL
  epoll_fd_ = ::epoll_create1(0);
  KGEVAL_CHECK(epoll_fd_ >= 0) << "epoll_create1: errno " << errno;
#endif
  // The wakeup pipe's read end drains itself; Post()ed tasks run from
  // RunPosted() after the dispatch pass.
  Add(wakeup_read_, kEventRead, [this](uint32_t) {
    char buf[64];
    while (::read(wakeup_read_, buf, sizeof(buf)) > 0) {
    }
  });
}

EventLoop::~EventLoop() {
  // Destruction mirrors construction: Run() has returned by now, so the
  // capability is claimable from whichever thread tears the loop down.
  AssertOnLoopThread();
  Remove(wakeup_read_);
#ifdef KGEVAL_NET_EPOLL
  ::close(epoll_fd_);
#endif
  ::close(wakeup_read_);
  ::close(wakeup_write_);
}

void EventLoop::Add(int fd, uint32_t events, FdCallback callback) {
  KGEVAL_CHECK(fds_.find(fd) == fds_.end()) << "fd " << fd << " registered twice";
  fds_[fd] = Registration{events, ++next_generation_, std::move(callback)};
#ifdef KGEVAL_NET_EPOLL
  struct epoll_event ev = {};
  ev.events = ToEpoll(events);
  ev.data.u64 = PackKey(fd, next_generation_);
  KGEVAL_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0)
      << "epoll_ctl(ADD): errno " << errno;
#endif
}

void EventLoop::SetEvents(int fd, uint32_t events) {
  auto it = fds_.find(fd);
  KGEVAL_CHECK(it != fds_.end()) << "fd " << fd << " not registered";
  if (it->second.events == events) return;
  it->second.events = events;
#ifdef KGEVAL_NET_EPOLL
  struct epoll_event ev = {};
  ev.events = ToEpoll(events);
  ev.data.u64 = PackKey(fd, it->second.generation);
  KGEVAL_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0)
      << "epoll_ctl(MOD): errno " << errno;
#endif
}

void EventLoop::Remove(int fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return;
  fds_.erase(it);
#ifdef KGEVAL_NET_EPOLL
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
#endif
}

void EventLoop::Run() {
  loop_thread_.store(std::this_thread::get_id(), std::memory_order_release);
  // This thread just *became* the loop thread; claim the capability for
  // the dispatch loop below.
  AssertOnLoopThread();
  stop_ = false;
  while (!stop_) {
    PollOnce(NextTimeoutMs(/*cap_ms=*/200));
    FireDueTimers();
    RunPosted();
    if (stop_requested_.exchange(false)) stop_ = true;
  }
  loop_thread_.store(std::thread::id(), std::memory_order_release);
}

uint64_t EventLoop::RunAfter(double delay_s, std::function<void()> fn) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(delay_s < 0 ? 0 : delay_s));
  const uint64_t id = ++next_timer_id_;
  timers_.emplace(std::make_pair(deadline, id), std::move(fn));
  return id;
}

void EventLoop::CancelTimer(uint64_t id) {
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->first.second == id) {
      timers_.erase(it);
      return;
    }
  }
}

int EventLoop::NextTimeoutMs(int cap_ms) const {
  if (timers_.empty()) return cap_ms;
  const auto now = std::chrono::steady_clock::now();
  const auto first = timers_.begin()->first.first;
  if (first <= now) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(first - now)
          .count() +
      1;  // Round up: waking a hair early would spin until the deadline.
  return ms < cap_ms ? static_cast<int>(ms) : cap_ms;
}

void EventLoop::FireDueTimers() {
  // Extract-then-run, one at a time: a timer callback may arm new timers
  // or cancel pending ones, so no iterator survives the call.
  const auto now = std::chrono::steady_clock::now();
  while (!timers_.empty() && timers_.begin()->first.first <= now) {
    std::function<void()> fn = std::move(timers_.begin()->second);
    timers_.erase(timers_.begin());
    fn();
  }
}

bool EventLoop::InLoopThread() const {
  return loop_thread_.load(std::memory_order_acquire) ==
         std::this_thread::get_id();
}

void EventLoop::AssertOnLoopThread() const {
#ifndef NDEBUG
  // "May touch loop state" means: the loop thread itself, or no loop is
  // running at all (single-threaded construction, pre-Run() registration,
  // post-Run() teardown — Run() publishes/clears loop_thread_ at entry and
  // exit, and callers of those phases are externally serialized).
  const std::thread::id loop = loop_thread_.load(std::memory_order_acquire);
  KGEVAL_CHECK(loop == std::thread::id() || loop == std::this_thread::get_id())
      << "loop-thread-only EventLoop state touched from another thread "
      << "while the loop is running";
#endif
}

void EventLoop::Stop() {
  stop_requested_.store(true);
  Wakeup();
}

void EventLoop::Post(std::function<void()> task) {
  {
    MutexLock lock(&posted_mutex_);
    posted_.push_back(std::move(task));
  }
  Wakeup();
}

void EventLoop::Wakeup() {
  const char byte = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is fine.
  (void)!::write(wakeup_write_, &byte, 1);
}

void EventLoop::RunPosted() {
  std::vector<std::function<void()>> tasks;
  {
    MutexLock lock(&posted_mutex_);
    tasks.swap(posted_);
  }
  for (auto& task : tasks) task();
}

namespace {

/// Shared errno policy of both poll backends. EINTR is routine. EBADF and
/// EINVAL mean the loop's own bookkeeping handed the kernel a broken fd set
/// — a programmer error worth dying loudly for. Everything else (ENOMEM
/// under pressure being the documented case) is transient: one failed poll
/// must degrade to a logged retry, not take the whole server down with it.
/// Returns true when the caller should return and let Run() retry.
bool HandlePollError(const char* call) {
  if (errno == EINTR) return true;
  KGEVAL_CHECK(errno != EBADF && errno != EINVAL)
      << call << ": errno " << errno;
  KGEVAL_LOG(Warning) << call << ": transient errno " << errno
                      << ", retrying";
  // A brief nap so a persistent transient error cannot hot-spin the loop;
  // posted tasks and timers still run each retry iteration.
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  return true;
}

/// The injectable poller failure (fault point "net.loop.poll"): when it
/// fires, the poll is skipped and errno comes from the fault spec, exactly
/// as if the syscall had failed.
bool InjectPollFailure() {
  int injected = 0;
  if (!FaultPoint("net.loop.poll", &injected)) return false;
  errno = injected;
  return true;
}

}  // namespace

void EventLoop::PollOnce(int timeout_ms) {
#ifdef KGEVAL_NET_EPOLL
  struct epoll_event ready[64];
  const int n = InjectPollFailure()
                    ? -1
                    : ::epoll_wait(epoll_fd_, ready, 64, timeout_ms);
  if (n < 0) {
    HandlePollError("epoll_wait");
    return;
  }
  for (int i = 0; i < n; ++i) {
    const int fd = static_cast<int>(static_cast<uint32_t>(ready[i].data.u64));
    const uint32_t generation =
        static_cast<uint32_t>(ready[i].data.u64 >> 32);
    // The callback for an earlier fd may have Remove()d a later one — or
    // Remove()d+closed it and accepted a new connection reusing the same
    // fd number, in which case the generation no longer matches and this
    // entry's readiness belongs to the dead registration, not the new one.
    auto it = fds_.find(fd);
    if (it == fds_.end() || it->second.generation != generation) continue;
    const uint32_t events =
        FromEpoll(ready[i].events) & (it->second.events | kEventHangup);
    if (events == 0) continue;
    // Invoked through a copy: the callback may Remove() its own fd (a
    // connection closing on read error does), which erases the map entry
    // holding the std::function currently executing.
    const FdCallback callback = it->second.callback;
    callback(events);
  }
#else
  std::vector<struct pollfd> poll_fds;
  std::vector<uint32_t> generations;
  poll_fds.reserve(fds_.size());
  generations.reserve(fds_.size());
  for (const auto& [fd, reg] : fds_) {
    struct pollfd p = {};
    p.fd = fd;
    if (reg.events & kEventRead) p.events |= POLLIN;
    if (reg.events & kEventWrite) p.events |= POLLOUT;
    poll_fds.push_back(p);
    generations.push_back(reg.generation);
  }
  const int n = InjectPollFailure()
                    ? -1
                    : ::poll(poll_fds.data(), poll_fds.size(), timeout_ms);
  if (n < 0) {
    HandlePollError("poll");
    return;
  }
  if (n == 0) return;
  for (size_t i = 0; i < poll_fds.size(); ++i) {
    const struct pollfd& p = poll_fds[i];
    if (p.revents == 0) continue;
    // Same stale-entry hazards as the epoll branch: the fd may have been
    // Remove()d by an earlier callback, or recycled into a brand-new
    // registration (generation mismatch) within this batch.
    auto it = fds_.find(p.fd);
    if (it == fds_.end() || it->second.generation != generations[i]) {
      continue;
    }
    uint32_t events = 0;
    if (p.revents & POLLIN) events |= kEventRead;
    if (p.revents & POLLOUT) events |= kEventWrite;
    if (p.revents & (POLLHUP | POLLERR | POLLNVAL)) events |= kEventHangup;
    events &= (it->second.events | kEventHangup);
    if (events == 0) continue;
    // Same self-Remove() hazard as the epoll branch: invoke a copy.
    const FdCallback callback = it->second.callback;
    callback(events);
  }
#endif
}

}  // namespace kgeval

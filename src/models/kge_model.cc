#include "models/kge_model.h"

#include <algorithm>
#include <numeric>

#include "la/vector_ops.h"
#include "models/complex.h"
#include "models/conve.h"
#include "models/tcomplex.h"
#include "models/distmult.h"
#include "models/rescal.h"
#include "models/rotate.h"
#include "models/transe.h"
#include "models/tucker.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace kgeval {

const char* ModelTypeName(ModelType type) {
  switch (type) {
    case ModelType::kTransE:
      return "TransE";
    case ModelType::kDistMult:
      return "DistMult";
    case ModelType::kComplEx:
      return "ComplEx";
    case ModelType::kRescal:
      return "RESCAL";
    case ModelType::kRotatE:
      return "RotatE";
    case ModelType::kTuckEr:
      return "TuckER";
    case ModelType::kConvE:
      return "ConvE";
    case ModelType::kTComplEx:
      return "TComplEx";
  }
  return "?";
}

Result<ModelType> ParseModelType(const std::string& name) {
  for (ModelType type :
       {ModelType::kTransE, ModelType::kDistMult, ModelType::kComplEx,
        ModelType::kRescal, ModelType::kRotatE, ModelType::kTuckEr,
        ModelType::kConvE, ModelType::kTComplEx}) {
    if (name == ModelTypeName(type)) return type;
  }
  return Status::NotFound(StrFormat("unknown model '%s'", name.c_str()));
}

KgeModel::KgeModel(ModelType type, int32_t num_entities,
                   int32_t num_relations, ModelOptions options)
    : type_(type),
      num_entities_(num_entities),
      num_relations_(num_relations),
      options_(options) {}

void KgeModel::BuildKernelQueries(const int32_t*, size_t, int32_t,
                                  QueryDirection, Matrix*) const {
  KGEVAL_CHECK(false) << name()
                      << " has no kernel surface (candidate_embeddings() is "
                         "null) yet BuildKernelQueries was reached";
}

void KgeModel::ScoreWithQuery(const Matrix& queries, size_t q,
                              const int32_t* candidates, size_t n,
                              float* out) const {
  const Matrix* entities = candidate_embeddings();
  KGEVAL_DCHECK(entities != nullptr);
  const Matrix* bias = candidate_bias();
  const float* qrow = queries.Row(q);
  const size_t dim = queries.cols();
  KGEVAL_DCHECK(dim == entities->cols());
  switch (batch_kernel()) {
    case BatchKernel::kDot:
      for (size_t c = 0; c < n; ++c) {
        const int32_t id = candidates[c];
        out[c] = Dot(qrow, entities->Row(static_cast<size_t>(id)), dim);
        if (bias != nullptr) out[c] += bias->At(static_cast<size_t>(id), 0);
      }
      return;
    case BatchKernel::kNegL1:
      for (size_t c = 0; c < n; ++c) {
        out[c] = -L1Distance(
            qrow, entities->Row(static_cast<size_t>(candidates[c])), dim);
      }
      return;
    case BatchKernel::kNegComplexDist: {
      const float eps = batch_kernel_eps();
      for (size_t c = 0; c < n; ++c) {
        out[c] = NegComplexDistance(
            qrow, entities->Row(static_cast<size_t>(candidates[c])), dim / 2,
            eps);
      }
      return;
    }
  }
}

void KgeModel::ScorePool(const Matrix& queries, const CandidateBlock& block,
                         float* pool_scores) const {
  KGEVAL_DCHECK(block.prepared);
  const size_t n = block.size();
  switch (batch_kernel()) {
    case BatchKernel::kDot:
      DotScoreBatch(queries, block.gathered_t, pool_scores);
      if (!block.bias.empty()) {
        for (size_t q = 0; q < queries.rows(); ++q) {
          float* row = pool_scores + q * n;
          for (size_t c = 0; c < n; ++c) row[c] += block.bias[c];
        }
      }
      return;
    case BatchKernel::kNegL1:
      NegL1ScoreBatch(queries, block.gathered_t, pool_scores);
      return;
    case BatchKernel::kNegComplexDist:
      NegComplexDistScoreBatch(queries, block.gathered_t, batch_kernel_eps(),
                               pool_scores);
      return;
  }
}

void KgeModel::ScoreCandidates(int32_t anchor, int32_t relation,
                               QueryDirection direction,
                               const int32_t* candidates, size_t n,
                               float* out) const {
  KGEVAL_CHECK(candidate_embeddings() != nullptr)
      << name() << " must override ScoreCandidates or expose a kernel surface";
  Matrix queries;
  BuildKernelQueries(&anchor, 1, relation, direction, &queries);
  ScoreWithQuery(queries, 0, candidates, n, out);
}

void KgeModel::ScoreBatch(const int32_t* anchors, size_t num_queries,
                          int32_t relation, QueryDirection direction,
                          const int32_t* candidates, size_t n,
                          float* out) const {
  if (candidate_embeddings() == nullptr) {
    for (size_t q = 0; q < num_queries; ++q) {
      ScoreCandidates(anchors[q], relation, direction, candidates, n,
                      out + q * n);
    }
    return;
  }
  CandidateBlock block;
  PrepareCandidates(candidates, n, &block);
  ScoreBlock(anchors, nullptr, num_queries, relation, direction, block, out,
             nullptr);
}

void KgeModel::ScorePairs(const int32_t* anchors, const int32_t* candidates,
                          size_t num_queries, size_t candidates_per_query,
                          int32_t relation, QueryDirection direction,
                          float* out) const {
  if (candidate_embeddings() == nullptr) {
    for (size_t q = 0; q < num_queries; ++q) {
      ScoreCandidates(anchors[q], relation, direction,
                      candidates + q * candidates_per_query,
                      candidates_per_query, out + q * candidates_per_query);
    }
    return;
  }
  // One query construction per anchor, reused across its k candidates — the
  // fusion that matters for ConvE/TuckER, whose query construction dominates
  // per-triple cost.
  Matrix queries;
  BuildKernelQueries(anchors, num_queries, relation, direction, &queries);
  for (size_t q = 0; q < num_queries; ++q) {
    ScoreWithQuery(queries, q, candidates + q * candidates_per_query,
                   candidates_per_query, out + q * candidates_per_query);
  }
}

void KgeModel::FillCandidateIds(const int32_t* candidates, size_t n,
                                CandidateBlock* block) {
  block->ids.assign(candidates, candidates + n);
  block->sorted = std::is_sorted(candidates, candidates + n);
  block->prepared = false;
  block->bias.clear();
  block->quantized = false;
  block->q8.clear();
  block->q8i.clear();
  block->q8_colsum.clear();
  block->q8_scale.clear();
  block->q8_err.clear();
  block->q8_amp.clear();
  block->q8_lo.clear();
  block->q8_hi.clear();
  block->q8_bias_amp = 0.0f;
}

void KgeModel::PrepareCandidates(const int32_t* candidates, size_t n,
                                 CandidateBlock* block) const {
  FillCandidateIds(candidates, n, block);
  const Matrix* entities = candidate_embeddings();
  if (entities == nullptr) return;
  GatherRowsT(*entities, candidates, n, &block->gathered_t);
  const Matrix* bias = candidate_bias();
  if (bias != nullptr) {
    block->bias.resize(n);
    for (size_t c = 0; c < n; ++c) {
      block->bias[c] = bias->At(static_cast<size_t>(candidates[c]), 0);
    }
  }
  block->prepared = true;
}

void KgeModel::ScoreBlock(const int32_t* anchors, const int32_t* truths,
                          size_t num_queries, int32_t relation,
                          QueryDirection direction,
                          const CandidateBlock& block, float* pool_scores,
                          float* truth_scores) const {
  if (!block.prepared) {
    // Unfused fallback for blocks without a model-specific layout: pays one
    // query construction per requested output, like the pre-fusion engine.
    if (pool_scores != nullptr) {
      ScoreBatch(anchors, num_queries, relation, direction, block.ids.data(),
                 block.ids.size(), pool_scores);
    }
    if (truth_scores != nullptr) {
      ScorePairs(anchors, truths, num_queries, 1, relation, direction,
                 truth_scores);
    }
    return;
  }
  // Fused path: one query construction feeds both the batched pool kernel
  // and the per-query truth reduction.
  Matrix queries;
  BuildKernelQueries(anchors, num_queries, relation, direction, &queries);
  if (pool_scores != nullptr) ScorePool(queries, block, pool_scores);
  if (truth_scores != nullptr) {
    for (size_t q = 0; q < num_queries; ++q) {
      ScoreWithQuery(queries, q, &truths[q], 1, &truth_scores[q]);
    }
  }
}

void ScoreTriples(const KgeModel& model, const Triple* triples, size_t n,
                  float* out) {
  // Bucket triple indices by kernel relation (the plain relation for
  // static models, the virtual (relation, time) id for time-aware ones),
  // then score each bucket in one ScorePairs call. Scatter back so out[i]
  // still matches triples[i].
  std::vector<std::vector<int32_t>> by_relation(
      model.num_kernel_relations());
  for (size_t i = 0; i < n; ++i) {
    by_relation[model.KernelRelation(triples[i])].push_back(
        static_cast<int32_t>(i));
  }
  std::vector<int32_t> anchors, cands;
  std::vector<float> scores;
  for (int32_t r = 0; r < model.num_kernel_relations(); ++r) {
    const std::vector<int32_t>& idx = by_relation[r];
    if (idx.empty()) continue;
    anchors.resize(idx.size());
    cands.resize(idx.size());
    scores.resize(idx.size());
    for (size_t i = 0; i < idx.size(); ++i) {
      anchors[i] = triples[idx[i]].head;
      cands[i] = triples[idx[i]].tail;
    }
    model.ScorePairs(anchors.data(), cands.data(), idx.size(), 1, r,
                     QueryDirection::kTail, scores.data());
    for (size_t i = 0; i < idx.size(); ++i) out[idx[i]] = scores[i];
  }
}

void ScoreTriplesWithNegatives(const KgeModel& model, const Triple* positives,
                               size_t n, const Triple* negatives, size_t k,
                               float* pos_out, float* neg_out) {
  if (k == 0) {
    ScoreTriples(model, positives, n, pos_out);
    return;
  }
  // Group by the positives' kernel relation; each positive's k corruptions
  // share its head, relation, and timestamp, so one ScorePairs row of
  // k + 1 candidates ([truth, corruptions...]) scores them all off one
  // query construction.
  std::vector<std::vector<int32_t>> by_relation(
      model.num_kernel_relations());
  for (size_t i = 0; i < n; ++i) {
    by_relation[model.KernelRelation(positives[i])].push_back(
        static_cast<int32_t>(i));
  }
  const size_t stride = k + 1;
  std::vector<int32_t> anchors, cands;
  std::vector<float> scores;
  for (int32_t r = 0; r < model.num_kernel_relations(); ++r) {
    const std::vector<int32_t>& idx = by_relation[r];
    if (idx.empty()) continue;
    anchors.resize(idx.size());
    cands.resize(idx.size() * stride);
    scores.resize(idx.size() * stride);
    for (size_t i = 0; i < idx.size(); ++i) {
      const size_t p = static_cast<size_t>(idx[i]);
      anchors[i] = positives[p].head;
      cands[i * stride] = positives[p].tail;
      for (size_t j = 0; j < k; ++j) {
        const Triple& neg = negatives[p * k + j];
        KGEVAL_DCHECK(neg.head == positives[p].head &&
                      neg.relation == positives[p].relation);
        cands[i * stride + 1 + j] = neg.tail;
      }
    }
    model.ScorePairs(anchors.data(), cands.data(), idx.size(), stride, r,
                     QueryDirection::kTail, scores.data());
    for (size_t i = 0; i < idx.size(); ++i) {
      const size_t p = static_cast<size_t>(idx[i]);
      pos_out[p] = scores[i * stride];
      for (size_t j = 0; j < k; ++j) {
        neg_out[p * k + j] = scores[i * stride + 1 + j];
      }
    }
  }
}

void KgeModel::ScoreAll(int32_t anchor, int32_t relation,
                        QueryDirection direction, float* out) const {
  std::vector<int32_t> all(num_entities_);
  std::iota(all.begin(), all.end(), 0);
  ScoreCandidates(anchor, relation, direction, all.data(), all.size(), out);
}

float KgeModel::ScoreTriple(const Triple& t) const {
  float score = 0.0f;
  ScoreCandidates(t.head, KernelRelation(t), QueryDirection::kTail, &t.tail,
                  1, &score);
  return score;
}

Result<std::unique_ptr<KgeModel>> CreateModel(ModelType type,
                                              int32_t num_entities,
                                              int32_t num_relations,
                                              const ModelOptions& options) {
  if (num_entities <= 0 || num_relations <= 0) {
    return Status::InvalidArgument("entity/relation counts must be positive");
  }
  if (options.dim <= 0) {
    return Status::InvalidArgument("embedding dim must be positive");
  }
  switch (type) {
    case ModelType::kTransE:
      return {std::unique_ptr<KgeModel>(
          new TransE(num_entities, num_relations, options))};
    case ModelType::kDistMult:
      return {std::unique_ptr<KgeModel>(
          new DistMult(num_entities, num_relations, options))};
    case ModelType::kComplEx:
      if (options.dim % 2 != 0) {
        return Status::InvalidArgument("ComplEx needs an even dim");
      }
      return {std::unique_ptr<KgeModel>(
          new ComplEx(num_entities, num_relations, options))};
    case ModelType::kRescal:
      return {std::unique_ptr<KgeModel>(
          new Rescal(num_entities, num_relations, options))};
    case ModelType::kRotatE:
      if (options.dim % 2 != 0) {
        return Status::InvalidArgument("RotatE needs an even dim");
      }
      return {std::unique_ptr<KgeModel>(
          new RotatE(num_entities, num_relations, options))};
    case ModelType::kTuckEr:
      return {std::unique_ptr<KgeModel>(
          new TuckEr(num_entities, num_relations, options))};
    case ModelType::kConvE:
      return ConvE::Create(num_entities, num_relations, options);
    case ModelType::kTComplEx:
      if (options.dim % 2 != 0) {
        return Status::InvalidArgument("TComplEx needs an even dim");
      }
      return {std::unique_ptr<KgeModel>(
          new TComplEx(num_entities, num_relations, options))};
  }
  return Status::InvalidArgument("unhandled model type");
}

}  // namespace kgeval

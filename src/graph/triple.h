#ifndef KGEVAL_GRAPH_TRIPLE_H_
#define KGEVAL_GRAPH_TRIPLE_H_

#include <cstdint>
#include <functional>

namespace kgeval {

/// A single (head, relation, tail) fact. Entity and relation ids are dense
/// 32-bit indices assigned by the dataset vocabularies. `time` is the
/// timestamp id for temporal datasets (4-column TSV); static datasets leave
/// it 0, and the static evaluation protocol never reads it. Equality and
/// ordering deliberately ignore `time`: the static filter semantics ("any
/// known (h, r, t) fact is filtered, whenever it held") depend on temporal
/// duplicates of a fact collapsing to one identity, and the time-sliced
/// semantics live in TemporalFilterIndex, not in the triple itself.
struct Triple {
  int32_t head = 0;
  int32_t relation = 0;
  int32_t tail = 0;
  int32_t time = 0;

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.head == b.head && a.relation == b.relation && a.tail == b.tail;
  }
  friend bool operator<(const Triple& a, const Triple& b) {
    if (a.head != b.head) return a.head < b.head;
    if (a.relation != b.relation) return a.relation < b.relation;
    return a.tail < b.tail;
  }
};

/// Direction of a ranking query derived from a test triple: kTail ranks
/// candidates for (h, r, ?); kHead ranks candidates for (?, r, t).
enum class QueryDirection { kTail = 0, kHead = 1 };

/// Index of a relation's domain (head side) or range (tail side) column in
/// the |E| x 2|R| recommender score matrix. Domains occupy columns
/// [0, |R|), ranges occupy [|R|, 2|R|) — the layout of Algorithm 1.
inline int32_t DomainRangeIndex(int32_t relation, QueryDirection direction,
                                int32_t num_relations) {
  // A tail query samples candidate *tails*, i.e., from the range column.
  return direction == QueryDirection::kTail ? relation + num_relations
                                            : relation;
}

/// Packs (a, b) into one 64-bit key for pair-index hash maps.
inline uint64_t PackPair(int32_t a, int32_t b) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

struct TripleHash {
  size_t operator()(const Triple& t) const {
    uint64_t x = PackPair(t.head, t.tail) ^
                 (static_cast<uint64_t>(static_cast<uint32_t>(t.relation))
                  << 13);
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    return static_cast<size_t>(x);
  }
};

}  // namespace kgeval

#endif  // KGEVAL_GRAPH_TRIPLE_H_

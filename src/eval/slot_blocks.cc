#include "eval/slot_blocks.h"

#include <algorithm>

namespace kgeval {

std::vector<std::vector<int32_t>> GroupByRelation(
    const std::vector<Triple>& triples, int64_t num_triples,
    int32_t num_relations) {
  std::vector<std::vector<int32_t>> by_relation(num_relations);
  for (int64_t i = 0; i < num_triples; ++i) {
    by_relation[triples[i].relation].push_back(static_cast<int32_t>(i));
  }
  return by_relation;
}

std::vector<SlotBlock> BuildSlotBlocks(
    const std::vector<std::vector<int32_t>>& by_relation,
    size_t query_block) {
  std::vector<SlotBlock> blocks;
  for (size_t r = 0; r < by_relation.size(); ++r) {
    const std::vector<int32_t>& idx = by_relation[r];
    if (idx.empty()) continue;
    for (QueryDirection dir :
         {QueryDirection::kTail, QueryDirection::kHead}) {
      for (size_t lo = 0; lo < idx.size(); lo += query_block) {
        blocks.push_back({static_cast<int32_t>(r), dir, &idx, lo,
                          std::min(idx.size(), lo + query_block)});
      }
    }
  }
  return blocks;
}

}  // namespace kgeval

#ifndef KGEVAL_CORE_EVAL_SESSION_H_
#define KGEVAL_CORE_EVAL_SESSION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/framework.h"

namespace kgeval {

/// Per-checkpoint outcome of a sweep: the load/evaluate Status plus the
/// estimate, which is meaningful iff status.ok(). A failed path (missing,
/// corrupt, truncated, or mismatched checkpoint) carries the error here
/// instead of aborting the sweep.
struct CheckpointEstimate {
  Status status;
  SampledEvalResult result;
};

/// Adaptive counterpart of CheckpointEstimate.
struct CheckpointAdaptiveEstimate {
  Status status;
  AdaptiveEvalResult result;
};

/// Aggregate instrumentation of one checkpoint sweep.
struct CheckpointSweepStats {
  /// High-water mark of models resident in memory at once. Bounded by the
  /// worker-pool width: a 100-epoch sweep never holds 100 embedding tables.
  size_t max_resident_models = 0;
  /// Paths whose outcome carries a non-OK Status.
  size_t failed = 0;
  double wall_seconds = 0.0;
};

/// A multi-model evaluation session: one EvaluationFramework plus one
/// *pinned* pool draw for one split. Every Estimate*/EstimateMany* call
/// scores against the same pinned pools, which buys two things the
/// one-shot EvaluationFramework::Estimate cannot give:
///
///  - Comparability. All models/checkpoints rank against identical
///    candidate pools, so metric differences are model differences — the
///    pool-draw noise that separates two Estimate() calls is gone. This is
///    the paper's monitoring use case (Fig. 3c): per-epoch estimates on a
///    pinned draw form a curve whose movement is training progress.
///  - Amortization. The 2|R| pool samplings are paid once per session (or
///    per RedrawPools()), not once per checkpoint.
///
/// EstimateMany/EstimateAdaptiveMany evaluate N models *concurrently*: each
/// model's pass runs as its own job on the shared worker pool (its own
/// TaskGroups, waiting only on its own chunks — no global barrier), so the
/// session behaves like a small evaluation service absorbing N requests at
/// once. Per-model results are bit-identical to a sequential Estimate()
/// call on the same pinned pools, whatever the interleaving: ranks land in
/// disjoint per-model vectors and are reduced in deterministic index order.
///
/// The session pins pools, not models: models arrive per call and are only
/// read, so one session can outlive any number of checkpoints. Pinning
/// trades the across-draw variance estimate for comparability — metrics
/// still carry the query-sampling CI, but a fresh draw (RedrawPools) is the
/// only way to see pool-draw noise.
class EvalSession {
 public:
  /// Builds a framework for `dataset` and pins its first pool draw for
  /// `split`. `dataset` and `filter` must outlive the session. `protocol`
  /// (optional, must outlive the session when given) selects the
  /// evaluation protocol every estimate runs under; by default the session
  /// builds a StaticFilteredProtocol over `filter` — the classic filtered
  /// ranking protocol, bit-identical to the pre-protocol session.
  static Result<std::unique_ptr<EvalSession>> Create(
      const Dataset* dataset, const FilterIndex* filter,
      const FrameworkOptions& options, Split split = Split::kTest,
      const EvalProtocol* protocol = nullptr);

  /// Wraps an already-built framework (taking ownership) and pins its next
  /// pool draw. Lets callers reuse an expensive recommender fit across
  /// sessions on different splits. `protocol` as in Create().
  static std::unique_ptr<EvalSession> Adopt(
      std::unique_ptr<EvaluationFramework> framework,
      const FilterIndex* filter, Split split,
      const EvalProtocol* protocol = nullptr);

  /// Estimates `model` on the pinned pools. Repeated calls score identical
  /// pools; `max_triples` (0 = all) as in EvaluationFramework::Estimate.
  /// `cancel` (optional, must outlive the call) aborts the pass at the next
  /// block boundary; the result comes back flagged `cancelled`.
  SampledEvalResult Estimate(const KgeModel& model, int64_t max_triples = 0,
                             const CancelToken* cancel = nullptr) const;

  /// Estimates every model concurrently against the pinned pools; result i
  /// is bit-identical (rank-for-rank) to Estimate(*models[i], max_triples).
  std::vector<SampledEvalResult> EstimateMany(
      const std::vector<const KgeModel*>& models,
      int64_t max_triples = 0) const;

  /// Confidence-bounded estimate on the pinned pools (deterministic given
  /// `adaptive.shuffle_seed`; the framework's tie-break overrides
  /// `adaptive.tie`).
  AdaptiveEvalResult EstimateAdaptive(
      const KgeModel& model, const AdaptiveEvalOptions& adaptive = {},
      const CancelToken* cancel = nullptr) const;

  /// Adaptive counterpart of EstimateMany: per-model results bit-identical
  /// to sequential EstimateAdaptive calls with the same options.
  std::vector<AdaptiveEvalResult> EstimateAdaptiveMany(
      const std::vector<const KgeModel*>& models,
      const AdaptiveEvalOptions& adaptive = {}) const;

  /// Streams the outcome of checkpoint `index` as soon as it is recorded.
  /// Invoked from the sweep's job threads in completion order (not input
  /// order), serialized — two callbacks never overlap.
  using CheckpointProgressFn =
      std::function<void(size_t index, const CheckpointEstimate&)>;
  using CheckpointAdaptiveProgressFn =
      std::function<void(size_t index, const CheckpointAdaptiveEstimate&)>;

  /// Sweeps checkpoint files on disk against the pinned pools — the
  /// "evaluate every epoch snapshot" loop the paper's monitoring workload
  /// needs. Each path is loaded on a job thread (LoadCheckpoint), estimated
  /// exactly like Estimate(), and freed as soon as its result is recorded,
  /// so at most worker-count models are ever resident (stats reports the
  /// observed high-water mark). Outcome i is rank-for-rank identical to a
  /// sequential LoadModel + Estimate on paths[i]; a path that fails to load
  /// carries its Status in the outcome without disturbing the rest of the
  /// sweep. `progress` (optional) streams outcomes as they complete;
  /// `stats` (optional) receives sweep-level instrumentation. A `cancel`
  /// token fired mid-sweep stops new work cooperatively: paths not yet
  /// loaded record Status(kCancelled) without loading, in-flight passes
  /// wind down at their next block boundary and record kCancelled too, and
  /// already-finished outcomes keep their results. Cancelled outcomes count
  /// into stats->failed and still stream through `progress`.
  std::vector<CheckpointEstimate> EstimateCheckpoints(
      const std::vector<std::string>& paths, int64_t max_triples = 0,
      const CheckpointProgressFn& progress = nullptr,
      CheckpointSweepStats* stats = nullptr,
      const CancelToken* cancel = nullptr) const;

  /// Adaptive counterpart of EstimateCheckpoints: each snapshot is
  /// evaluated with EstimateAdaptive's confidence-bounded pass, same
  /// bounded-resident loading, per-path error semantics, and cancellation
  /// contract.
  std::vector<CheckpointAdaptiveEstimate> EstimateAdaptiveCheckpoints(
      const std::vector<std::string>& paths,
      const AdaptiveEvalOptions& adaptive = {},
      const CheckpointAdaptiveProgressFn& progress = nullptr,
      CheckpointSweepStats* stats = nullptr,
      const CancelToken* cancel = nullptr) const;

  /// Replaces the pinned pools with a fresh draw (advancing the framework's
  /// RNG). Estimates before and after are *not* comparable draw-wise — call
  /// between checkpoint sweeps, not inside one. Not thread-safe against
  /// in-flight Estimate* calls.
  void RedrawPools();

  /// The pinned pools (sample_seconds is the one-time draw cost the
  /// session amortizes across its estimates).
  const SampledCandidates& pools() const { return pools_; }
  Split split() const { return split_; }
  /// The protocol every estimate of this session runs under.
  const EvalProtocol& protocol() const { return *protocol_; }
  EvaluationFramework& framework() { return *framework_; }
  const EvaluationFramework& framework() const { return *framework_; }

 private:
  EvalSession(std::unique_ptr<EvaluationFramework> framework,
              const FilterIndex* filter, Split split,
              const EvalProtocol* protocol);

  std::unique_ptr<EvaluationFramework> framework_;
  const FilterIndex* filter_;
  Split split_;
  /// Owned default protocol (when the caller supplied none).
  std::unique_ptr<StaticFilteredProtocol> owned_protocol_;
  /// The protocol in effect: `owned_protocol_` or the caller's.
  const EvalProtocol* protocol_;
  SampledCandidates pools_;
};

}  // namespace kgeval

#endif  // KGEVAL_CORE_EVAL_SESSION_H_

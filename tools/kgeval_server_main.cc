// kgeval-server: the evaluation service daemon. Binds the port, prints
// "LISTENING <port>" (scripts parse this — with --port=0 it is the only
// way to learn the bound port), then serves until SIGINT/SIGTERM.
//
// The wire protocol is documented in docs/PROTOCOL.md; the architecture in
// docs/ARCHITECTURE.md. Smallest useful session:
//
//   $ kgeval-server --port=7471 --preload=codex-s &
//   $ printf 'EVAL /tmp/ckpt/epoch_00003.ckpt\nQUIT\n' | nc 127.0.0.1 7471

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "la/kernels/kernels.h"
#include "service/eval_server.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace {

using namespace kgeval;

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host=ADDR] [--port=N] [--threads=N] "
               "[--executors=N] [--preload=DATASET] [--deadline=S]\n"
               "       [--idle-timeout=S] [--max-queued=N] "
               "[--kernels=NAME] [--screening]\n"
               "  --host=ADDR       bind address (default 127.0.0.1)\n"
               "  --port=N          TCP port; 0 picks an ephemeral one "
               "(default 7471)\n"
               "  --threads=N       worker-pool width (default: "
               "KGEVAL_THREADS, then hardware)\n"
               "  --executors=N     concurrent command cap (default: "
               "max(2, threads))\n"
               "  --preload=NAME    run LOAD <NAME> before accepting "
               "traffic\n"
               "  --deadline=S      per-command deadline for EVAL/SWEEP/"
               "WATCH, seconds (default 0 = none)\n"
               "  --idle-timeout=S  close connections idle this long "
               "(default 0 = never)\n"
               "  --max-queued=N    executor backlog before ERR busy "
               "(default 256, 0 = unlimited)\n"
               "  --kernels=NAME    force a score-kernel implementation "
               "(scalar|avx2|avx512|neon|auto;\n"
               "                    default: auto-probe, or "
               "KGEVAL_KERNELS)\n"
               "  --screening       int8 screening for every pass (served "
               "values are bit-identical)\n"
               "\n"
               "KGEVAL_FAULTS=<spec> arms fault-injection points at "
               "startup (testing only; see docs/ARCHITECTURE.md).\n",
               argv0);
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  EvalServer::Options options;
  options.port = 7471;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--host", &value)) {
      options.host = value;
    } else if (ParseFlag(argv[i], "--port", &value)) {
      options.port = static_cast<uint16_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "--threads", &value)) {
      SetGlobalThreadPoolThreads(
          static_cast<size_t>(std::atoll(value.c_str())));
    } else if (ParseFlag(argv[i], "--executors", &value)) {
      options.executor_threads =
          static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(argv[i], "--preload", &value)) {
      options.preload_dataset = value;
    } else if (ParseFlag(argv[i], "--deadline", &value)) {
      options.service.default_deadline_s = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--idle-timeout", &value)) {
      options.idle_timeout_s = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--max-queued", &value)) {
      options.max_queued_commands =
          static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(argv[i], "--kernels", &value)) {
      Status selected = SelectScoreKernels(value);
      if (!selected.ok()) {
        std::fprintf(stderr, "kgeval-server: --kernels: %s\n",
                     selected.ToString().c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--screening") == 0) {
      options.service.screening = true;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  // Chaos harnesses arm fault points through the environment; a typo in
  // the spec must fail loudly at startup, not silently inject nothing.
  {
    Status faults = ArmFaultsFromEnv();
    if (!faults.ok()) {
      std::fprintf(stderr, "kgeval-server: KGEVAL_FAULTS: %s\n",
                   faults.ToString().c_str());
      return 2;
    }
  }

  // Block the termination signals before any thread exists, so every
  // thread inherits the mask and sigwait below is the one consumer.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);
  signal(SIGPIPE, SIG_IGN);  // Broken clients must not kill the server.

  // --preload runs inside Start(), before the accept loop exists, so a
  // client connecting after LISTENING can never see a no-dataset window.
  auto server = EvalServer::Start(options);
  if (!server.ok()) {
    std::fprintf(stderr, "kgeval-server: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  EvalServer& s = *server.ValueOrDie();

  // The selected dispatch path, logged once at startup: benchmark logs and
  // bug reports need to say which ISA actually scored.
  KGEVAL_LOG(Info) << "score kernels: " << ActiveScoreKernelName()
                   << (options.service.screening ? " (screening on)"
                                                 : " (screening off)");
  std::printf("LISTENING %u\n", s.port());
  std::fflush(stdout);

  int sig = 0;
  sigwait(&sigs, &sig);
  KGEVAL_LOG(Info) << "signal " << sig << ": shutting down";
  s.Shutdown();
  return 0;
}

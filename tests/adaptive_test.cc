#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <numeric>

#include "core/adaptive_evaluator.h"
#include "core/framework.h"
#include "core/sampled_evaluator.h"
#include "eval/slot_blocks.h"
#include "models/trainer.h"
#include "stats/confidence.h"
#include "synth/config.h"
#include "synth/generator.h"

namespace kgeval {
namespace {

// --- Confidence helpers -------------------------------------------------------

TEST(ConfidenceTest, NormalQuantileMatchesKnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(NormalQuantile(0.995), 2.575829, 1e-5);
  EXPECT_NEAR(NormalQuantile(0.025), -1.959964, 1e-5);
  // Tail region of the approximation.
  EXPECT_NEAR(NormalQuantile(0.001), -3.090232, 1e-4);
}

TEST(ConfidenceTest, TwoSidedZ) {
  EXPECT_NEAR(TwoSidedZ(0.95), 1.959964, 1e-5);
  EXPECT_NEAR(TwoSidedZ(0.99), 2.575829, 1e-5);
}

TEST(ConfidenceTest, NormalCiHalfWidth) {
  // sd 2, n 100 -> 1.96 * 2 / 10.
  EXPECT_NEAR(NormalCiHalfWidth(4.0, 100, 1.96), 0.392, 1e-12);
  EXPECT_EQ(NormalCiHalfWidth(4.0, 1, 1.96), 0.0);
  EXPECT_EQ(NormalCiHalfWidth(-1.0, 100, 1.96), 0.0);  // Clamped.
}

TEST(ConfidenceTest, FinitePopulationCorrection) {
  EXPECT_DOUBLE_EQ(FinitePopulationCorrection(1, 101), 1.0);
  EXPECT_DOUBLE_EQ(FinitePopulationCorrection(101, 101), 0.0);
  EXPECT_NEAR(FinitePopulationCorrection(51, 101), std::sqrt(0.5), 1e-12);
  EXPECT_DOUBLE_EQ(FinitePopulationCorrection(5, 1), 1.0);  // Degenerate.
}

// --- RankingAccumulator -------------------------------------------------------

TEST(RankingAccumulatorTest, MatchesFromRanks) {
  const std::vector<double> ranks = {1, 2, 4, 10, 100, 3, 1, 7};
  RankingAccumulator acc;
  for (double r : ranks) acc.Add(r);
  const RankingMetrics direct = RankingMetrics::FromRanks(ranks);
  const RankingMetrics incremental = acc.Metrics();
  EXPECT_EQ(incremental.num_queries, direct.num_queries);
  EXPECT_NEAR(incremental.mrr, direct.mrr, 1e-12);
  EXPECT_NEAR(incremental.hits1, direct.hits1, 1e-12);
  EXPECT_NEAR(incremental.hits3, direct.hits3, 1e-12);
  EXPECT_NEAR(incremental.hits10, direct.hits10, 1e-12);
  EXPECT_NEAR(incremental.mean_rank, direct.mean_rank, 1e-9);
}

TEST(RankingAccumulatorTest, VarianceMatchesTwoPass) {
  const std::vector<double> ranks = {1, 2, 4, 10, 100, 3, 1, 7, 2, 5};
  RankingAccumulator acc;
  std::vector<double> rr;
  for (double r : ranks) {
    acc.Add(r);
    rr.push_back(1.0 / r);
  }
  const double mean =
      std::accumulate(rr.begin(), rr.end(), 0.0) / rr.size();
  double ss = 0.0;
  for (double x : rr) ss += (x - mean) * (x - mean);
  const double expected = ss / (rr.size() - 1);
  EXPECT_NEAR(acc.SampleVariance(MetricKind::kMrr), expected, 1e-12);
}

TEST(RankingAccumulatorTest, MergeEqualsSequential) {
  const std::vector<double> ranks = {1, 3, 9, 2, 50, 4, 1, 12, 6, 2, 8, 30};
  RankingAccumulator whole;
  for (double r : ranks) whole.Add(r);
  RankingAccumulator a, b;
  for (size_t i = 0; i < ranks.size(); ++i) {
    (i < 5 ? a : b).Add(ranks[i]);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  for (MetricKind kind : {MetricKind::kMrr, MetricKind::kHits1,
                          MetricKind::kHits3, MetricKind::kHits10}) {
    EXPECT_NEAR(a.Mean(kind), whole.Mean(kind), 1e-12);
    EXPECT_NEAR(a.SampleVariance(kind), whole.SampleVariance(kind), 1e-12);
  }
  // Merging into an empty accumulator copies; merging an empty is a noop.
  RankingAccumulator empty;
  empty.Merge(whole);
  EXPECT_EQ(empty.count(), whole.count());
  whole.Merge(RankingAccumulator());
  EXPECT_EQ(whole.count(), static_cast<int64_t>(ranks.size()));
}

TEST(RankingAccumulatorTest, CiShrinksWithSampleSize) {
  // Feed a fixed-dispersion stream; the half-width must shrink ~1/sqrt(n)
  // and never grow between batches of identical data.
  RankingAccumulator acc;
  double previous = 1e9;
  for (int batch = 0; batch < 20; ++batch) {
    for (double r : {1.0, 2.0, 5.0, 10.0, 50.0}) acc.Add(r);
    const double hw = acc.CiHalfWidth(MetricKind::kMrr, 1.96);
    EXPECT_GT(hw, 0.0);
    EXPECT_LT(hw, previous);
    previous = hw;
  }
  const RankingCi ci = acc.Ci(1.96);
  EXPECT_DOUBLE_EQ(ci.mrr, acc.CiHalfWidth(MetricKind::kMrr, 1.96));
  EXPECT_EQ(ci.num_queries, 100);
  EXPECT_DOUBLE_EQ(ci.z, 1.96);
}

// --- Slot-block schedules -----------------------------------------------------

TEST(SlotBlocksTest, ShuffledQueryOrderIsAPermutationOfAllQueries) {
  Rng rng(5);
  const std::vector<int64_t> order = ShuffledQueryOrder(100, &rng);
  ASSERT_EQ(order.size(), 200u);
  std::vector<int64_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (int64_t q = 0; q < 200; ++q) EXPECT_EQ(sorted[q], q);
  // Deterministic per seed, different across seeds.
  Rng same(5), other(6);
  EXPECT_EQ(ShuffledQueryOrder(100, &same), order);
  EXPECT_NE(ShuffledQueryOrder(100, &other), order);
}

TEST(SlotBlocksTest, PartitionBoundariesAlignToSlots) {
  // Three relations with 5, 1, and 3 blocks per direction.
  std::vector<std::vector<int32_t>> by_relation(3);
  by_relation[0].resize(5 * 16);
  by_relation[1].resize(1 * 16);
  by_relation[2].resize(3 * 16);
  const std::vector<SlotBlock> blocks = BuildSlotBlocks(by_relation, 3, 16);
  ASSERT_EQ(blocks.size(), 18u);  // (5 + 1 + 3) * 2 directions.
  for (size_t max_chunks : {1u, 2u, 4u, 7u, 100u}) {
    const auto chunks = PartitionAtSlotBoundaries(blocks, max_chunks);
    // Chunks tile [0, blocks.size()) contiguously.
    ASSERT_FALSE(chunks.empty());
    size_t expected_lo = 0;
    for (const auto& [lo, hi] : chunks) {
      EXPECT_EQ(lo, expected_lo);
      EXPECT_GT(hi, lo);
      expected_lo = hi;
    }
    EXPECT_EQ(expected_lo, blocks.size());
    // No slot run of fewer than 8 blocks (2 * the split floor) may ever be
    // split: every boundary must sit on a slot change here, where the
    // longest run is 5 blocks.
    for (size_t c = 0; c + 1 < chunks.size(); ++c) {
      const size_t edge = chunks[c].second;
      EXPECT_NE(blocks[edge - 1].pool_slot, blocks[edge].pool_slot)
          << "max_chunks=" << max_chunks << " split a slot at " << edge;
    }
  }
}

TEST(SlotBlocksTest, PartitionSplitsOversizedRuns) {
  // One relation with 64 blocks per direction: load balance must win and
  // cut the runs, in pieces of at least the 4-block floor.
  std::vector<std::vector<int32_t>> by_relation(1);
  by_relation[0].resize(64 * 16);
  const std::vector<SlotBlock> blocks = BuildSlotBlocks(by_relation, 1, 16);
  ASSERT_EQ(blocks.size(), 128u);
  const auto chunks = PartitionAtSlotBoundaries(blocks, 16);
  EXPECT_GT(chunks.size(), 2u);
  size_t expected_lo = 0;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_EQ(lo, expected_lo);
    EXPECT_GE(hi - lo, 4u);  // Never below the prepare-amortization floor.
    expected_lo = hi;
  }
  EXPECT_EQ(expected_lo, blocks.size());
}

// --- Fake-model evaluator behavior --------------------------------------------

/// A scoring-oracle model (same idea as eval_test's FakeModel) that also
/// counts PrepareCandidates calls, to pin the prepare-once-per-slot
/// guarantee of the chunk partitioning.
class FakeModel : public KgeModel {
 public:
  using ScoreFn = std::function<float(int32_t, int32_t, int32_t)>;

  FakeModel(int32_t num_entities, int32_t num_relations, ScoreFn fn)
      : KgeModel(ModelType::kDistMult, num_entities, num_relations,
                 ModelOptions()),
        fn_(std::move(fn)) {}

  void ScoreCandidates(int32_t anchor, int32_t relation,
                       QueryDirection direction, const int32_t* candidates,
                       size_t n, float* out) const override {
    for (size_t i = 0; i < n; ++i) {
      const int32_t h =
          direction == QueryDirection::kTail ? anchor : candidates[i];
      const int32_t t =
          direction == QueryDirection::kTail ? candidates[i] : anchor;
      out[i] = fn_(h, relation, t);
    }
  }

  void PrepareCandidates(const int32_t* candidates, size_t n,
                         CandidateBlock* block) const override {
    prepare_calls.fetch_add(1);
    KgeModel::PrepareCandidates(candidates, n, block);
  }

  void UpdateTriple(int32_t, int32_t, int32_t, QueryDirection,
                    float) override {}

  void CollectParameters(std::vector<NamedParameter>*) override {}

  mutable std::atomic<int> prepare_calls{0};

 private:
  ScoreFn fn_;
};

/// 50 entities, 2 relations, 600 test triples per relation: 3 blocks of
/// 256 per (relation, direction) slot, so chunking behavior is observable.
Dataset TwoRelationDataset() {
  std::vector<Triple> train, test;
  for (int32_t i = 0; i < 40; ++i) {
    train.push_back({i % 50, i % 2, (i * 3 + 1) % 50});
  }
  for (int32_t r = 0; r < 2; ++r) {
    for (int32_t i = 0; i < 600; ++i) {
      test.push_back({i % 50, r, (i * 7 + r) % 50});
    }
  }
  return Dataset("two-rel", 50, 2, std::move(train), {}, std::move(test),
                 TypeStore());
}

SampledCandidates PoolsForAllSlots(const Dataset& d, int64_t n_s,
                                   uint64_t seed) {
  Rng rng(seed);
  return DrawCandidates(SamplingStrategy::kRandom, nullptr,
                        d.num_entities(), n_s, NeededSlots(d, Split::kTest),
                        2 * d.num_relations(), &rng);
}

TEST(SampledEvaluatorTest, PreparesEachSlotPoolOnce) {
  const Dataset d = TwoRelationDataset();
  const FilterIndex filter(d);
  FakeModel model(50, 2, [](int32_t h, int32_t r, int32_t t) {
    return static_cast<float>(h * 31 + r * 7 + t);
  });
  const SampledCandidates pools = PoolsForAllSlots(d, 20, 3);
  const SampledEvalResult result =
      EvaluateSampled(model, d, filter, Split::kTest, pools);
  EXPECT_EQ(result.ranks.size(), 2400u);
  // 4 queried slots, 3 blocks each, all runs far below the split floor:
  // exactly one PrepareCandidates per slot, however many threads ran.
  EXPECT_EQ(model.prepare_calls.load(), 4);
}

TEST(SampledEvaluatorTest, ResultCarriesCi) {
  const Dataset d = TwoRelationDataset();
  const FilterIndex filter(d);
  FakeModel model(50, 2, [](int32_t h, int32_t r, int32_t t) {
    return static_cast<float>((h * 13 + r * 5 + t * 29) % 101);
  });
  const SampledCandidates pools = PoolsForAllSlots(d, 20, 4);
  const SampledEvalResult result =
      EvaluateSampled(model, d, filter, Split::kTest, pools);
  EXPECT_EQ(result.ci.num_queries,
            static_cast<int64_t>(result.ranks.size()));
  EXPECT_NEAR(result.ci.z, 1.959964, 1e-5);
  EXPECT_GT(result.ci.mrr, 0.0);
  // The half-width must match the two-pass computation over the ranks.
  RankingAccumulator acc;
  for (double r : result.ranks) acc.Add(r);
  EXPECT_DOUBLE_EQ(result.ci.mrr,
                   acc.CiHalfWidth(MetricKind::kMrr, result.ci.z));
  // The scalar engine reports the same interval.
  const SampledEvalResult scalar =
      EvaluateSampledScalar(model, d, filter, Split::kTest, pools);
  EXPECT_DOUBLE_EQ(scalar.ci.mrr, result.ci.mrr);
}

TEST(SampledEvaluatorDeathTest, EmptyQueriedPoolDiesLoudly) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Dataset d = TwoRelationDataset();
  const FilterIndex filter(d);
  FakeModel model(50, 2, [](int32_t, int32_t, int32_t) { return 1.0f; });
  SampledCandidates pools;
  pools.pools.resize(4);
  pools.pools[0] = {1, 2, 3};  // Head slot of relation 0.
  pools.pools[1] = {1, 2, 3};  // Head slot of relation 1.
  pools.pools[2] = {1, 2, 3};  // Tail slot of relation 0.
  // Tail slot of relation 1 left empty although relation 1 is queried:
  // scoring would silently report rank 1 for all its tail queries.
  EXPECT_DEATH(EvaluateSampled(model, d, filter, Split::kTest, pools),
               "empty candidate pool");
  EXPECT_DEATH(EvaluateSampledScalar(model, d, filter, Split::kTest, pools),
               "empty candidate pool");
  EXPECT_DEATH(EvaluateAdaptive(model, d, filter, Split::kTest, pools),
               "empty candidate pool");
}

TEST(SampledEvaluatorTest, EmptyUnqueriedPoolIsFine) {
  // Only relation 0 in the test split: relation 1's pools may be empty
  // (they are never ranked against) and must not inflate score buffers or
  // trip the validation.
  std::vector<Triple> train = {{0, 0, 1}, {2, 1, 3}};
  std::vector<Triple> test = {{0, 0, 2}, {1, 0, 3}};
  Dataset d("one-rel", 50, 2, std::move(train), {}, std::move(test),
            TypeStore());
  const FilterIndex filter(d);
  FakeModel model(50, 2, [](int32_t h, int32_t, int32_t t) {
    return static_cast<float>(h + t);
  });
  SampledCandidates pools;
  pools.pools.resize(4);
  pools.pools[0] = {1, 2, 3, 4};   // Head slot, relation 0.
  pools.pools[2] = {5, 6, 7, 8};   // Tail slot, relation 0.
  const SampledEvalResult result =
      EvaluateSampled(model, d, filter, Split::kTest, pools);
  EXPECT_EQ(result.ranks.size(), 4u);
  for (double rank : result.ranks) EXPECT_GE(rank, 1.0);
}

// --- Adaptive evaluation on a trained model -----------------------------------

/// Shared across the adaptive tests: one trained model on a synthetic
/// dataset whose test split is large enough (16k queries) for a 0.01
/// half-width to be reachable below 50% coverage even at the worst-case
/// reciprocal-rank dispersion (sd 0.5 crosses at ~37.5% of 16k).
class AdaptiveFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SynthConfig config;
    config.num_entities = 800;
    config.num_relations = 16;
    config.num_types = 12;
    config.num_train = 12000;
    config.num_valid = 400;
    config.num_test = 8000;
    config.seed = 77;
    dataset_ = new Dataset(GenerateDataset(config).ValueOrDie().dataset);
    filter_ = new FilterIndex(*dataset_);
    ModelOptions options;
    options.dim = 24;
    options.adam.learning_rate = 3e-3f;
    auto model = CreateModel(ModelType::kComplEx, dataset_->num_entities(),
                             dataset_->num_relations(), options)
                     .ValueOrDie();
    TrainerOptions trainer_options;
    trainer_options.epochs = 6;
    Trainer trainer(dataset_, trainer_options);
    ASSERT_TRUE(trainer.Train(model.get()).ok());
    model_ = model.release();
    pools_ = new SampledCandidates(PoolsForAllSlots(*dataset_, 80, 9));
  }
  static void TearDownTestSuite() {
    delete pools_;
    delete model_;
    delete filter_;
    delete dataset_;
  }

  static Dataset* dataset_;
  static FilterIndex* filter_;
  static KgeModel* model_;
  static SampledCandidates* pools_;
};

Dataset* AdaptiveFixture::dataset_ = nullptr;
FilterIndex* AdaptiveFixture::filter_ = nullptr;
KgeModel* AdaptiveFixture::model_ = nullptr;
SampledCandidates* AdaptiveFixture::pools_ = nullptr;

TEST_F(AdaptiveFixture, DeterministicUnderFixedSeed) {
  AdaptiveEvalOptions options;
  options.target_half_width = 0.02;
  const AdaptiveEvalResult a =
      EvaluateAdaptive(*model_, *dataset_, *filter_, Split::kTest, *pools_,
                       options);
  const AdaptiveEvalResult b =
      EvaluateAdaptive(*model_, *dataset_, *filter_, Split::kTest, *pools_,
                       options);
  EXPECT_EQ(a.evaluated_queries, b.evaluated_queries);
  EXPECT_EQ(a.scored_candidates, b.scored_candidates);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.metrics.mrr, b.metrics.mrr);  // Bitwise: same fold order.
  EXPECT_EQ(a.ci.mrr, b.ci.mrr);
  EXPECT_EQ(a.ranks, b.ranks);
  // A different shuffle seed evaluates a different prefix.
  AdaptiveEvalOptions other = options;
  other.shuffle_seed = 12345;
  const AdaptiveEvalResult c =
      EvaluateAdaptive(*model_, *dataset_, *filter_, Split::kTest, *pools_,
                       other);
  EXPECT_NE(a.ranks, c.ranks);
}

TEST_F(AdaptiveFixture, HalfWidthShrinksMonotonically) {
  AdaptiveEvalOptions options;
  options.target_half_width = 1e-9;  // Run the whole schedule.
  options.batch_queries = 512;
  const AdaptiveEvalResult result =
      EvaluateAdaptive(*model_, *dataset_, *filter_, Split::kTest, *pools_,
                       options);
  ASSERT_EQ(result.half_width_history.size(),
            static_cast<size_t>(result.rounds));
  ASSERT_GT(result.rounds, 10);
  // After the variance estimate has support, the interval must tighten
  // round over round (small tolerance for the variance estimate moving).
  for (size_t i = 2; i < result.half_width_history.size(); ++i) {
    EXPECT_LE(result.half_width_history[i],
              result.half_width_history[i - 1] * 1.05)
        << "round " << i;
  }
  EXPECT_LT(result.half_width_history.back(),
            result.half_width_history[2] * 0.5);
}

TEST_F(AdaptiveFixture, EarlyStopWithinCiOfFullPass) {
  // The acceptance scenario: at target half-width 0.01 the adaptive pass
  // must stop at <= 50% of the full sampled pass's scored candidates while
  // its MRR estimate traps the full-pass MRR inside the reported interval.
  const SampledEvalResult full =
      EvaluateSampled(*model_, *dataset_, *filter_, Split::kTest, *pools_);
  AdaptiveEvalOptions options;
  options.target_half_width = 0.01;
  options.batch_queries = 1024;  // Stop within ~6% of the exact crossing.
  const AdaptiveEvalResult adaptive =
      EvaluateAdaptive(*model_, *dataset_, *filter_, Split::kTest, *pools_,
                       options);
  EXPECT_TRUE(adaptive.converged);
  EXPECT_LE(adaptive.ci.mrr, 0.01);
  EXPECT_LE(adaptive.scored_candidates, full.scored_candidates / 2)
      << "scored " << adaptive.scored_candidates << " of "
      << full.scored_candidates;
  EXPECT_LE(std::fabs(adaptive.metrics.mrr - full.metrics.mrr),
            adaptive.ci.mrr)
      << "adaptive " << adaptive.metrics.mrr << " full " << full.metrics.mrr
      << " +/- " << adaptive.ci.mrr;
  // Every rank the adaptive pass did score is bit-identical to the full
  // pass's rank for that query.
  ASSERT_EQ(adaptive.ranks.size(), full.ranks.size());
  int64_t evaluated = 0;
  for (size_t i = 0; i < adaptive.ranks.size(); ++i) {
    if (adaptive.ranks[i] == 0.0) continue;
    EXPECT_DOUBLE_EQ(adaptive.ranks[i], full.ranks[i]) << "query " << i;
    ++evaluated;
  }
  EXPECT_EQ(evaluated, adaptive.evaluated_queries);
}

TEST_F(AdaptiveFixture, ExhaustiveScheduleMatchesFullPass) {
  // An unreachable target forces full coverage; the estimate then *is* the
  // full sampled pass (same ranks, same metrics up to fold order).
  const SampledEvalResult full =
      EvaluateSampled(*model_, *dataset_, *filter_, Split::kTest, *pools_);
  AdaptiveEvalOptions options;
  options.target_half_width = 0.0;
  const AdaptiveEvalResult adaptive =
      EvaluateAdaptive(*model_, *dataset_, *filter_, Split::kTest, *pools_,
                       options);
  EXPECT_EQ(adaptive.evaluated_queries, adaptive.total_queries);
  EXPECT_EQ(adaptive.scored_candidates, full.scored_candidates);
  EXPECT_EQ(adaptive.ranks, full.ranks);
  EXPECT_NEAR(adaptive.metrics.mrr, full.metrics.mrr, 1e-12);
  EXPECT_NEAR(adaptive.metrics.hits10, full.metrics.hits10, 1e-12);
  // Full coverage: the finite-population-corrected interval collapses.
  EXPECT_DOUBLE_EQ(adaptive.ci.mrr, 0.0);
  EXPECT_TRUE(adaptive.converged);
}

TEST_F(AdaptiveFixture, BudgetsForceUnconvergedStop) {
  AdaptiveEvalOptions options;
  options.target_half_width = 1e-9;
  options.finite_population_correction = false;  // Keep 1e-9 unreachable.
  options.max_triples = 500;
  const AdaptiveEvalResult result =
      EvaluateAdaptive(*model_, *dataset_, *filter_, Split::kTest, *pools_,
                       options);
  EXPECT_FALSE(result.converged);
  // The query budget is exact: 2 queries per budgeted triple.
  EXPECT_EQ(result.evaluated_queries, 2 * options.max_triples);

  AdaptiveEvalOptions candidate_budget;
  candidate_budget.target_half_width = 1e-9;
  candidate_budget.finite_population_correction = false;
  candidate_budget.max_candidates = 20000;
  const AdaptiveEvalResult capped =
      EvaluateAdaptive(*model_, *dataset_, *filter_, Split::kTest, *pools_,
                       candidate_budget);
  EXPECT_FALSE(capped.converged);
  EXPECT_LT(capped.evaluated_queries, capped.total_queries);
}

TEST_F(AdaptiveFixture, FrameworkEstimateAdaptive) {
  FrameworkOptions options;
  options.strategy = SamplingStrategy::kProbabilistic;
  options.recommender = RecommenderType::kLwd;
  options.sample_fraction = 0.1;
  auto framework =
      EvaluationFramework::Build(dataset_, options).ValueOrDie();
  AdaptiveEvalOptions adaptive_options;
  adaptive_options.target_half_width = 0.02;
  const AdaptiveEvalResult result = framework->EstimateAdaptive(
      *model_, *filter_, Split::kTest, adaptive_options);
  EXPECT_GT(result.evaluated_queries, 0);
  EXPECT_GT(result.metrics.mrr, 0.0);
  EXPECT_GT(result.ci.num_queries, 0);
  if (result.converged) {
    EXPECT_LE(result.ci.mrr, 0.02);
  }
}

}  // namespace
}  // namespace kgeval

#include <algorithm>
#include <cmath>

#include "la/kernels/kernels.h"

namespace kgeval {
namespace {

/// The portable reference. The exact kernels below are the pre-dispatch
/// matrix.cc loops verbatim: candidates are independent lanes and each lane
/// accumulates over the dim axis sequentially, which is the per-cell
/// ordering every SIMD implementation reproduces. The build keeps
/// -ffp-contract=off, so the compiler may vectorize across lanes but cannot
/// fuse a lane's multiply and add into an FMA — that is what makes this TU
/// the bit-exact reference regardless of autovectorization.

void DotScalar(const float* queries, size_t nq, size_t dim, const float* tile,
               size_t n, float* out) {
  for (size_t q = 0; q < nq; ++q) {
    const float* a = queries + q * dim;
    float* __restrict o = out + q * n;
    std::fill(o, o + n, 0.0f);
    for (size_t k = 0; k < dim; ++k) {
      const float ak = a[k];
      const float* __restrict g = tile + k * n;
      for (size_t c = 0; c < n; ++c) o[c] += ak * g[c];
    }
  }
}

void NegL1Scalar(const float* queries, size_t nq, size_t dim,
                 const float* tile, size_t n, float* out) {
  for (size_t q = 0; q < nq; ++q) {
    const float* a = queries + q * dim;
    float* __restrict o = out + q * n;
    std::fill(o, o + n, 0.0f);
    for (size_t k = 0; k < dim; ++k) {
      const float ak = a[k];
      const float* __restrict g = tile + k * n;
      for (size_t c = 0; c < n; ++c) o[c] += std::fabs(ak - g[c]);
    }
    for (size_t c = 0; c < n; ++c) o[c] = -o[c];
  }
}

void NegComplexDistScalar(const float* queries, size_t nq, size_t dim,
                          const float* tile, size_t n, float eps, float* out) {
  const size_t m = dim / 2;
  for (size_t q = 0; q < nq; ++q) {
    const float* a = queries + q * dim;
    float* __restrict o = out + q * n;
    std::fill(o, o + n, 0.0f);
    for (size_t j = 0; j < m; ++j) {
      const float qre = a[j], qim = a[m + j];
      const float* __restrict gre = tile + j * n;
      const float* __restrict gim = tile + (m + j) * n;
      for (size_t c = 0; c < n; ++c) {
        const float dre = qre - gre[c];
        const float dim_ = qim - gim[c];
        o[c] += std::sqrt(dre * dre + dim_ * dim_ + eps);
      }
    }
    for (size_t c = 0; c < n; ++c) o[c] = -o[c];
  }
}

void DotQ8Scalar(const uint8_t* queries, size_t nq, size_t dim_quads,
                 const int8_t* tile4, size_t n, int32_t* out) {
  for (size_t q = 0; q < nq; ++q) {
    const uint8_t* a = queries + q * dim_quads * 4;
    int32_t* __restrict o = out + q * n;
    std::fill(o, o + n, 0);
    for (size_t g = 0; g < dim_quads; ++g) {
      const int32_t a0 = a[g * 4 + 0], a1 = a[g * 4 + 1];
      const int32_t a2 = a[g * 4 + 2], a3 = a[g * 4 + 3];
      const int8_t* __restrict t = tile4 + g * n * 4;
      for (size_t c = 0; c < n; ++c) {
        o[c] += a0 * t[c * 4 + 0] + a1 * t[c * 4 + 1] + a2 * t[c * 4 + 2] +
                a3 * t[c * 4 + 3];
      }
    }
  }
}

void NegL1Q8Scalar(const float* queries, size_t nq, size_t dim,
                   const int8_t* tile, const float* scale, size_t n,
                   float* out) {
  for (size_t q = 0; q < nq; ++q) {
    const float* a = queries + q * dim;
    float* __restrict o = out + q * n;
    std::fill(o, o + n, 0.0f);
    for (size_t k = 0; k < dim; ++k) {
      const float ak = a[k];
      const float sk = scale[k];
      const int8_t* __restrict g = tile + k * n;
      for (size_t c = 0; c < n; ++c) {
        o[c] += std::fabs(ak - sk * static_cast<float>(g[c]));
      }
    }
    for (size_t c = 0; c < n; ++c) o[c] = -o[c];
  }
}

void NegComplexDistQ8Scalar(const float* queries, size_t nq, size_t dim,
                            const int8_t* tile, const float* scale, size_t n,
                            float eps, float* out) {
  const size_t m = dim / 2;
  for (size_t q = 0; q < nq; ++q) {
    const float* a = queries + q * dim;
    float* __restrict o = out + q * n;
    std::fill(o, o + n, 0.0f);
    for (size_t j = 0; j < m; ++j) {
      const float qre = a[j], qim = a[m + j];
      const float sre = scale[j], sim = scale[m + j];
      const int8_t* __restrict gre = tile + j * n;
      const int8_t* __restrict gim = tile + (m + j) * n;
      for (size_t c = 0; c < n; ++c) {
        const float dre = qre - sre * static_cast<float>(gre[c]);
        const float dim_ = qim - sim * static_cast<float>(gim[c]);
        o[c] += std::sqrt(dre * dre + dim_ * dim_ + eps);
      }
    }
    for (size_t c = 0; c < n; ++c) o[c] = -o[c];
  }
}

}  // namespace

const ScoreKernels& ScalarScoreKernels() {
  static const ScoreKernels kScalar = {
      "scalar",          DotScalar,   NegL1Scalar,
      NegComplexDistScalar, DotQ8Scalar, NegL1Q8Scalar,
      NegComplexDistQ8Scalar,
  };
  return kScalar;
}

}  // namespace kgeval

#include "eval/metrics.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace kgeval {

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kMrr:
      return "MRR";
    case MetricKind::kHits1:
      return "Hits@1";
    case MetricKind::kHits3:
      return "Hits@3";
    case MetricKind::kHits10:
      return "Hits@10";
  }
  return "?";
}

double RankFromCounts(int64_t num_higher, int64_t num_tied, TieBreak tie) {
  KGEVAL_DCHECK(num_higher >= 0 && num_tied >= 0);
  switch (tie) {
    case TieBreak::kMean:
      return 1.0 + static_cast<double>(num_higher) +
             static_cast<double>(num_tied) / 2.0;
    case TieBreak::kOptimistic:
      return 1.0 + static_cast<double>(num_higher);
    case TieBreak::kPessimistic:
      return 1.0 + static_cast<double>(num_higher) +
             static_cast<double>(num_tied);
  }
  return 1.0;
}

double RankingMetrics::Get(MetricKind kind) const {
  switch (kind) {
    case MetricKind::kMrr:
      return mrr;
    case MetricKind::kHits1:
      return hits1;
    case MetricKind::kHits3:
      return hits3;
    case MetricKind::kHits10:
      return hits10;
  }
  return 0.0;
}

std::string RankingMetrics::ToString() const {
  return StrFormat(
      "MRR=%.4f Hits@1=%.4f Hits@3=%.4f Hits@10=%.4f MR=%.1f (n=%lld)", mrr,
      hits1, hits3, hits10, mean_rank,
      static_cast<long long>(num_queries));
}

RankingMetrics RankingMetrics::FromRanks(const std::vector<double>& ranks) {
  RankingMetrics m;
  m.num_queries = static_cast<int64_t>(ranks.size());
  if (ranks.empty()) return m;
  for (double rank : ranks) {
    m.mrr += 1.0 / rank;
    m.hits1 += rank <= 1.0 ? 1.0 : 0.0;
    m.hits3 += rank <= 3.0 ? 1.0 : 0.0;
    m.hits10 += rank <= 10.0 ? 1.0 : 0.0;
    m.mean_rank += rank;
  }
  const double n = static_cast<double>(ranks.size());
  m.mrr /= n;
  m.hits1 /= n;
  m.hits3 /= n;
  m.hits10 /= n;
  m.mean_rank /= n;
  return m;
}

}  // namespace kgeval

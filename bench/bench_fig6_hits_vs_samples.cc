// Reproduces Figure 6 (a-c): filtered Hits@1 / Hits@3 / Hits@10 estimates
// against the sample size on wikikg2, mirroring the Figure 3b sweep.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/framework.h"
#include "eval/full_evaluator.h"
#include "util/string_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace kgeval;
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  const std::string preset =
      args.only_dataset.empty() ? "wikikg2" : args.only_dataset;

  const SynthOutput synth = bench::LoadPreset(preset, args);
  const Dataset& dataset = synth.dataset;
  const FilterIndex filter(dataset);
  bench::TrainSpec spec;
  spec.epochs = args.epochs > 0 ? args.epochs : (args.fast ? 2 : 6);
  auto model = bench::TrainModel(dataset, spec);

  const FullEvalResult full =
      EvaluateFullRanking(*model, dataset, filter, Split::kTest);

  const std::vector<double> fractions =
      args.fast ? std::vector<double>{0.02, 0.1}
                : std::vector<double>{0.005, 0.01, 0.02, 0.05, 0.1, 0.2};

  const std::pair<MetricKind, const char*> panels[] = {
      {MetricKind::kHits1, "Figure 6a: Hits@1 vs sample size"},
      {MetricKind::kHits3, "Figure 6b: Hits@3 vs sample size"},
      {MetricKind::kHits10, "Figure 6c: Hits@10 vs sample size"}};

  // One sweep, all metrics recorded at once.
  struct Row {
    double fraction;
    double values[3][4];  // [strategy][metric incl. placeholder]
  };
  std::vector<Row> rows;
  for (double fraction : fractions) {
    Row row;
    row.fraction = fraction;
    int s = 0;
    for (SamplingStrategy strategy :
         {SamplingStrategy::kProbabilistic, SamplingStrategy::kStatic,
          SamplingStrategy::kRandom}) {
      FrameworkOptions options;
      options.strategy = strategy;
      options.recommender = RecommenderType::kLwd;
      options.sample_fraction = fraction;
      auto framework =
          EvaluationFramework::Build(&dataset, options).ValueOrDie();
      const RankingMetrics m =
          framework->Estimate(*model, filter, Split::kTest).metrics;
      row.values[s][0] = m.hits1;
      row.values[s][1] = m.hits3;
      row.values[s][2] = m.hits10;
      ++s;
    }
    rows.push_back(row);
  }

  int metric_index = 0;
  for (const auto& [metric, title] : panels) {
    bench::PrintHeader(StrFormat("%s (%s); true value %.4f", title,
                                 preset.c_str(),
                                 full.metrics.Get(metric)));
    TextTable table({"Sample size (% of |E|)", "Probabilistic", "Static",
                     "Random", "True"});
    for (const Row& row : rows) {
      table.AddRow({bench::F(100.0 * row.fraction, 1),
                    bench::F(row.values[0][metric_index], 4),
                    bench::F(row.values[1][metric_index], 4),
                    bench::F(row.values[2][metric_index], 4),
                    bench::F(full.metrics.Get(metric), 4)});
    }
    std::printf("%s", table.ToString().c_str());
    ++metric_index;
  }
  bench::PrintNote(
      "paper shape: identical pattern to the filtered MRR — Random "
      "saturates towards 1 at small samples, the guided strategies track "
      "the true values");
  return 0;
}

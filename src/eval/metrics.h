#ifndef KGEVAL_EVAL_METRICS_H_
#define KGEVAL_EVAL_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace kgeval {

/// Ranking metrics the paper reports: filtered MRR and Hits@{1,3,10}.
enum class MetricKind { kMrr = 0, kHits1, kHits3, kHits10 };

const char* MetricKindName(MetricKind kind);

/// How the rank of the true answer is resolved among score ties.
/// kMean is the LibKGE "realistic" convention used as this library's default;
/// the alternatives exist for the tie-handling ablation bench.
enum class TieBreak { kMean = 0, kOptimistic, kPessimistic };

/// Converts tie/higher counts into a (possibly fractional) 1-based rank.
double RankFromCounts(int64_t num_higher, int64_t num_tied, TieBreak tie);

/// Aggregated results of a ranking evaluation.
struct RankingMetrics {
  double mrr = 0.0;
  double hits1 = 0.0;
  double hits3 = 0.0;
  double hits10 = 0.0;
  double mean_rank = 0.0;
  int64_t num_queries = 0;

  double Get(MetricKind kind) const;
  std::string ToString() const;

  /// Aggregates a vector of per-query ranks.
  static RankingMetrics FromRanks(const std::vector<double>& ranks);
};

}  // namespace kgeval

#endif  // KGEVAL_EVAL_METRICS_H_

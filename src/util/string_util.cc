#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace kgeval {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> SplitString(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string FormatDouble(double value, int digits) {
  return StrFormat("%.*f", digits, value);
}

std::string FormatWithCommas(long long value) {
  const bool negative = value < 0;
  unsigned long long magnitude =
      negative ? 0ULL - static_cast<unsigned long long>(value)
               : static_cast<unsigned long long>(value);
  std::string raw = std::to_string(magnitude);
  std::string out;
  int count = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

}  // namespace kgeval

#ifndef KGEVAL_RECOMMENDERS_EASY_NEGATIVES_H_
#define KGEVAL_RECOMMENDERS_EASY_NEGATIVES_H_

#include <cstdint>
#include <vector>

#include "graph/triple.h"
#include "recommenders/recommender.h"

namespace kgeval {

/// One test triple contradicted by a zero score (a "false easy negative",
/// Table 10): the slot the recommender ruled out, and whether the head or
/// tail side triggered it.
struct FalseEasyNegative {
  Triple triple;
  QueryDirection direction = QueryDirection::kTail;
};

/// Section 4 / Table 2: how much of the |E| x 2|R| score space a
/// recommender rules out entirely (score exactly 0), and how often a test
/// triple lands on a ruled-out cell.
struct EasyNegativeReport {
  int64_t total_cells = 0;      // |E| * 2|R|
  int64_t easy_negatives = 0;   // zero-score cells
  double easy_fraction = 0.0;   // easy_negatives / total_cells
  int64_t false_easy = 0;       // test slots hitting a zero cell
  std::vector<FalseEasyNegative> examples;
};

/// Mines the zero cells of `scores` against `dataset`'s test split.
/// `max_examples` caps the collected qualitative examples (0 = collect all).
EasyNegativeReport MineEasyNegatives(const RecommenderScores& scores,
                                     const Dataset& dataset,
                                     int64_t max_examples = 64);

}  // namespace kgeval

#endif  // KGEVAL_RECOMMENDERS_EASY_NEGATIVES_H_

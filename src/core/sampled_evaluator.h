#ifndef KGEVAL_CORE_SAMPLED_EVALUATOR_H_
#define KGEVAL_CORE_SAMPLED_EVALUATOR_H_

#include "core/samplers.h"
#include "eval/full_evaluator.h"
#include "eval/metrics.h"
#include "graph/dataset.h"
#include "models/kge_model.h"

namespace kgeval {

/// Options for a sampled evaluation pass.
struct SampledEvalOptions {
  TieBreak tie = TieBreak::kMean;
  /// Cap on evaluated triples (0 = all); deterministic prefix of the split.
  int64_t max_triples = 0;
  /// Prepare each slot's candidate pool once (PrepareCandidates) and score
  /// every query block through the fused ScoreBlock kernel. false falls
  /// back to the per-block gather engine (ScoreBatch + ScorePairs), kept so
  /// benches can measure the prepared path against it; ranks are
  /// bit-identical either way.
  bool prepared_pools = true;
};

/// Result of estimating the ranking metrics from sampled candidate pools.
struct SampledEvalResult {
  RankingMetrics metrics;
  /// Per-query estimated ranks (tail query, then head query, per triple).
  std::vector<double> ranks;
  double eval_seconds = 0.0;    // Scoring + ranking time.
  double sample_seconds = 0.0;  // Copied from the SampledCandidates.
  int64_t scored_candidates = 0;
};

/// Ranks each test query's true answer against its slot's sampled pool
/// (filtered; the true answer is always included). The estimated metrics
/// aggregate these pool-ranks directly — no rescaling — which is exactly why
/// uniform Random pools are optimistic and recommender-guided pools are not
/// (Section 4).
/// The hot path is slot-major: queries are grouped by (relation, direction)
/// so each group ranks against one shared pool. Each slot's pool is
/// prepared (gathered + transposed) once, at its first query block, and
/// reused by the rest of the slot's blocks; every block is scored through
/// the fused ScoreBlock kernel — one query construction per block emitting
/// pool and truth scores together — parallelized over blocks.
SampledEvalResult EvaluateSampled(const KgeModel& model,
                                  const Dataset& dataset,
                                  const FilterIndex& filter, Split split,
                                  const SampledCandidates& candidates,
                                  const SampledEvalOptions& options = {});

/// Reference triple-major implementation scoring one query at a time through
/// ScoreCandidates. Kept as the baseline the batched path is benchmarked and
/// parity-tested against; produces bit-identical ranks to EvaluateSampled.
SampledEvalResult EvaluateSampledScalar(const KgeModel& model,
                                        const Dataset& dataset,
                                        const FilterIndex& filter, Split split,
                                        const SampledCandidates& candidates,
                                        const SampledEvalOptions& options = {});

}  // namespace kgeval

#endif  // KGEVAL_CORE_SAMPLED_EVALUATOR_H_

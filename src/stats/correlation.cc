#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace kgeval {

double Mean(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  return std::accumulate(x.begin(), x.end(), 0.0) /
         static_cast<double>(x.size());
}

double StdDev(const std::vector<double>& x) {
  if (x.size() < 2) return 0.0;
  const double mu = Mean(x);
  double acc = 0.0;
  for (double v : x) acc += (v - mu) * (v - mu);
  return std::sqrt(acc / static_cast<double>(x.size() - 1));
}

double NormalCi95HalfWidth(const std::vector<double>& x) {
  if (x.size() < 2) return 0.0;
  return 1.96 * StdDev(x) / std::sqrt(static_cast<double>(x.size()));
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  KGEVAL_CHECK_EQ(x.size(), y.size());
  const size_t n = x.size();
  if (n < 2) return 0.0;
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> AverageRanks(const std::vector<double>& x) {
  const size_t n = x.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&x](size_t a, size_t b) { return x[a] < x[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i + 1;
    while (j < n && x[order[j]] == x[order[i]]) ++j;
    // Ranks are 1-based; a tie block spanning positions [i, j) gets the mean.
    const double mean_rank = (static_cast<double>(i + 1) +
                              static_cast<double>(j)) / 2.0;
    for (size_t k = i; k < j; ++k) ranks[order[k]] = mean_rank;
    i = j;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  KGEVAL_CHECK_EQ(x.size(), y.size());
  return PearsonCorrelation(AverageRanks(x), AverageRanks(y));
}

double KendallTau(const std::vector<double>& x, const std::vector<double>& y) {
  KGEVAL_CHECK_EQ(x.size(), y.size());
  const size_t n = x.size();
  if (n < 2) return 0.0;
  long long concordant = 0, discordant = 0, ties_x = 0, ties_y = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      if (dx == 0.0 && dy == 0.0) {
        ++ties_x;
        ++ties_y;
      } else if (dx == 0.0) {
        ++ties_x;
      } else if (dy == 0.0) {
        ++ties_y;
      } else if ((dx > 0) == (dy > 0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const long long total = static_cast<long long>(n) * (n - 1) / 2;
  const double denom = std::sqrt(static_cast<double>(total - ties_x)) *
                       std::sqrt(static_cast<double>(total - ties_y));
  if (denom <= 0.0) return 0.0;
  return static_cast<double>(concordant - discordant) / denom;
}

double MeanAbsoluteError(const std::vector<double>& estimate,
                         const std::vector<double>& truth) {
  KGEVAL_CHECK_EQ(estimate.size(), truth.size());
  if (estimate.empty()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < estimate.size(); ++i) {
    acc += std::fabs(estimate[i] - truth[i]);
  }
  return acc / static_cast<double>(estimate.size());
}

double MeanAbsolutePercentageError(const std::vector<double>& estimate,
                                   const std::vector<double>& truth) {
  KGEVAL_CHECK_EQ(estimate.size(), truth.size());
  double acc = 0.0;
  size_t count = 0;
  for (size_t i = 0; i < estimate.size(); ++i) {
    if (truth[i] == 0.0) continue;
    acc += std::fabs(estimate[i] - truth[i]) / std::fabs(truth[i]);
    ++count;
  }
  if (count == 0) return 0.0;
  return 100.0 * acc / static_cast<double>(count);
}

}  // namespace kgeval

// Fixture: violates exactly `suppression-reason` — the allow comment names a
// rule but gives no reason (linted as src/eval/bad.cc).

// kgeval-lint: allow(determinism)
int Fixture() { return 0; }

// Compares the three candidate-sampling strategies of the paper (uniform
// Random, Static, Probabilistic) against the exact full ranking, across a
// sweep of sample sizes — a miniature of Figure 3b.
//
// Usage: compare_samplers [preset] [epochs]
//   preset  one of fb15k, fb15k237, yago310, wikikg2, codex-s/m/l
//           (default codex-m)
//   epochs  training epochs for the ComplEx model (default 25)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/framework.h"
#include "eval/full_evaluator.h"
#include "models/trainer.h"
#include "synth/config.h"
#include "synth/generator.h"
#include "util/string_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace kgeval;
  const std::string preset = argc > 1 ? argv[1] : "codex-m";
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 25;

  SynthConfig config = GetPreset(preset, PresetScale::kScaled).ValueOrDie();
  SynthOutput synth = GenerateDataset(config).ValueOrDie();
  const Dataset& dataset = synth.dataset;
  std::printf("dataset %s: |E|=%d |R|=%d train=%zu\n",
              dataset.name().c_str(), dataset.num_entities(),
              dataset.num_relations(), dataset.train().size());

  ModelOptions model_options;
  model_options.dim = 32;
  auto model = CreateModel(ModelType::kComplEx, dataset.num_entities(),
                           dataset.num_relations(), model_options)
                   .ValueOrDie();
  TrainerOptions trainer_options;
  trainer_options.epochs = epochs;
  Trainer trainer(&dataset, trainer_options);
  (void)trainer.Train(model.get());

  FilterIndex filter(dataset);
  FullEvalResult full =
      EvaluateFullRanking(*model, dataset, filter, Split::kTest);
  std::printf("true (full ranking): %s\n\n", full.metrics.ToString().c_str());

  TextTable table({"fraction", "Random MRR", "Static MRR", "Prob. MRR",
                   "|err| R", "|err| S", "|err| P"});
  for (double fraction : {0.01, 0.02, 0.05, 0.1, 0.2}) {
    double mrr[3] = {0, 0, 0};
    for (SamplingStrategy strategy :
         {SamplingStrategy::kRandom, SamplingStrategy::kStatic,
          SamplingStrategy::kProbabilistic}) {
      FrameworkOptions options;
      options.strategy = strategy;
      options.recommender = RecommenderType::kLwd;
      options.sample_fraction = fraction;
      auto framework =
          EvaluationFramework::Build(&dataset, options).ValueOrDie();
      SampledEvalResult estimate =
          framework->Estimate(*model, filter, Split::kTest);
      mrr[static_cast<int>(strategy)] = estimate.metrics.mrr;
    }
    table.AddRow({StrFormat("%.2f", fraction), StrFormat("%.4f", mrr[0]),
                  StrFormat("%.4f", mrr[1]), StrFormat("%.4f", mrr[2]),
                  StrFormat("%.4f", std::abs(mrr[0] - full.metrics.mrr)),
                  StrFormat("%.4f", std::abs(mrr[1] - full.metrics.mrr)),
                  StrFormat("%.4f", std::abs(mrr[2] - full.metrics.mrr))});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}

#ifndef KGEVAL_CORE_TRIPLE_CLASSIFIER_H_
#define KGEVAL_CORE_TRIPLE_CLASSIFIER_H_

#include "graph/triple.h"
#include "recommenders/recommender.h"

namespace kgeval {

/// Verdict of the zero-score triple screen.
enum class TripleVerdict {
  /// Both slots have positive recommender scores: structurally plausible.
  kPlausible = 0,
  /// The head scores 0 for the relation's domain.
  kHeadImplausible,
  /// The tail scores 0 for the relation's range.
  kTailImplausible,
  /// Both slots score 0.
  kBothImplausible,
};

const char* TripleVerdictName(TripleVerdict verdict);

/// A near-closed-world triple screen built on the easy negatives of a
/// relation recommender (Section 7's "one can also investigate the use of
/// easy negatives from scores being 0 in L-WD ... to, for example, build a
/// triplet classifier"). A triple is flagged when its head/tail has score
/// exactly 0 for the relation's domain/range — on the paper's data that
/// rules out millions of candidate facts with a handful of false alarms
/// (Table 2).
class TripleClassifier {
 public:
  /// The scores must outlive the classifier.
  explicit TripleClassifier(const RecommenderScores* scores);

  TripleVerdict Classify(const Triple& triple) const;

  /// True iff Classify(...) == kPlausible.
  bool IsPlausible(const Triple& triple) const;

  /// Plausibility margin: min(head domain score, tail range score). Zero
  /// for any flagged triple; larger = more credible.
  float Margin(const Triple& triple) const;

 private:
  const RecommenderScores* scores_;
  int32_t num_relations_;
};

}  // namespace kgeval

#endif  // KGEVAL_CORE_TRIPLE_CLASSIFIER_H_

#ifndef KGEVAL_CORE_CANDIDATE_SETS_H_
#define KGEVAL_CORE_CANDIDATE_SETS_H_

#include <cstdint>
#include <vector>

#include "graph/dataset.h"
#include "recommenders/recommender.h"

namespace kgeval {

/// Narrow per-relation head/tail candidate sets (the "domains & ranges" of
/// Section 4.1). Index layout matches the score matrix: [0, |R|) domains,
/// [|R|, 2|R|) ranges.
struct CandidateSets {
  /// Per slot: sorted candidate entity ids.
  std::vector<std::vector<int32_t>> sets;
  /// Per slot: sampling weights aligned with `sets`. Empty when the sets are
  /// meant for uniform (Static) sampling.
  std::vector<std::vector<float>> weights;
  /// Per slot: the threshold chosen by the optimizer (Static only).
  std::vector<float> thresholds;
  int32_t num_entities = 0;

  int32_t num_slots() const { return static_cast<int32_t>(sets.size()); }

  /// Mean over slots of 1 - |set| / |E|.
  double MacroReductionRate() const;
};

/// Options for the Static discretization of the score matrix.
struct StaticSetOptions {
  /// Union the thresholded set with the train-observed (PT) entities, as the
  /// paper does for every method ("one naturally would do this").
  bool include_seen = true;
  /// Number of quantile thresholds tried per column when optimizing the
  /// (CR, RR) trade-off.
  int32_t threshold_grid = 24;
};

/// Static sampling sets: per-column threshold T_dr chosen to minimize the
/// l2 distance to the ideal point (CR, RR) = (1, 1), with Candidate Recall
/// measured on the *validation* pairs (test is never touched).
CandidateSets BuildStaticSets(const RecommenderScores& scores,
                              const Dataset& dataset,
                              const StaticSetOptions& options = {});

/// Probabilistic sampling sets: all positively-scored entities per column,
/// with the scores as sampling weights. Train-observed entities are always
/// included (with at least the column's minimum positive weight).
CandidateSets BuildProbabilisticSets(const RecommenderScores& scores,
                                     const Dataset& dataset,
                                     bool include_seen = true);

/// Candidate Recall / Reduction Rate measurements on the test split
/// (Table 5). "Seen" refers to (entity, slot) pairs observed in
/// train or valid.
struct SetQuality {
  double cr_test = 0.0;       // Recall over all distinct test slot-pairs.
  double cr_unseen = 0.0;     // Recall over the unseen ones only.
  double rr = 0.0;            // Query-weighted reduction rate.
  double rr_macro = 0.0;      // Mean per-slot reduction rate.
  int64_t total_pairs = 0;
  int64_t covered_pairs = 0;
  int64_t total_unseen = 0;
  int64_t covered_unseen = 0;
};

SetQuality EvaluateSetQuality(const CandidateSets& sets,
                              const Dataset& dataset);

}  // namespace kgeval

#endif  // KGEVAL_CORE_CANDIDATE_SETS_H_

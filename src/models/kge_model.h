#ifndef KGEVAL_MODELS_KGE_MODEL_H_
#define KGEVAL_MODELS_KGE_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/triple.h"
#include "la/adam.h"
#include "la/matrix.h"
#include "util/status.h"

namespace kgeval {

/// The KGC models evaluated in the paper (Section 5.2), plus TComplEx
/// (Lacroix et al.), the temporal KBC model the temporal evaluation
/// protocol is proven against.
enum class ModelType {
  kTransE = 0,
  kDistMult,
  kComplEx,
  kRescal,
  kRotatE,
  kTuckEr,
  kConvE,
  kTComplEx,
};

/// The enum's last value, for range checks on serialized model types
/// (checkpoint headers). Keep in sync when appending a model.
constexpr ModelType kLastModelType = ModelType::kTComplEx;

const char* ModelTypeName(ModelType type);
Result<ModelType> ParseModelType(const std::string& name);

/// Construction/optimization options shared by all models.
struct ModelOptions {
  int32_t dim = 32;            // Entity embedding width.
  int32_t relation_dim = 0;    // 0 = model default (dim, or dim^2 for RESCAL).
  int32_t num_timestamps = 0;  // Timestamp vocabulary (time-aware models;
                               // 0 = static / single timestamp).
  AdamOptions adam;
  float l2 = 0.0f;             // Weight decay on touched rows.
  uint64_t seed = 7;
};

/// The reduction family a model's prepared-pool scoring collapses to once
/// its per-anchor query rows are built. Every model folds (anchor, relation)
/// into query vectors (BuildKernelQueries); what remains is one of three
/// batched reductions against the candidate tile, dispatched through the
/// runtime-selected ScoreKernels table (la/kernels).
enum class BatchKernel {
  kDot = 0,         // score = q . e (+ per-entity bias when candidate_bias()).
  kNegL1,           // score = -||q - e||_1 (translational models).
  kNegComplexDist,  // score = -sum_j sqrt(dre^2 + dim^2 + eps), split re/im.
};

/// A candidate pool prepared once and scored many times. PrepareCandidates
/// fills the pool's ids plus a model-specific gathered layout: the dot- and
/// distance-kernel models store the pool's entity embeddings transposed
/// (dim x n, candidates contiguous — for ComplEx/RotatE the top/bottom
/// halves of the tile are the split re/im planes); ConvE additionally
/// gathers the per-candidate entity bias. Preparing costs one gather +
/// transpose; every subsequent ScoreBlock call against the block reuses it,
/// removing the per-call re-gather the batched engine used to pay.
///
/// QuantizeCandidateBlock (eval/screen.h) can additionally attach an int8
/// sidecar of the tile for the screening pass: per-dim symmetric
/// quantization with the exact per-dim reconstruction-error and magnitude
/// bounds the screener's conservative band test needs.
struct CandidateBlock {
  std::vector<int32_t> ids;  // The pool, in caller order.
  bool sorted = false;       // ids are non-decreasing (a pool invariant the
                             // rankers exploit; computed once here).
  bool prepared = false;     // Model-specific layout was filled in.
  Matrix gathered_t;         // Transposed candidate tile (see above).
  std::vector<float> bias;   // ConvE: per-candidate entity bias.

  bool quantized = false;       // int8 sidecar was filled in.
  std::vector<int8_t> q8;       // dim x n int8 tile, same transposed layout.
  std::vector<int8_t> q8i;      // Same values quad-interleaved for the
                                // integer dot kernel: ceil(dim/4) groups of
                                // 4 dims, n candidates x 4 bytes per group,
                                // zero-padded past dim.
  std::vector<int32_t> q8_colsum;  // Per-candidate sum of its q8 bytes
                                   // (removes the +128 query offset).
  std::vector<float> q8_scale;  // Per-dim dequantization scale.
  std::vector<float> q8_err;    // Per-dim max |exact - dequantized|.
  std::vector<float> q8_amp;    // Per-dim max |exact| (fp-slack term).
  std::vector<float> q8_lo;     // Per-dim exact min (tile-skip bound).
  std::vector<float> q8_hi;     // Per-dim exact max (tile-skip bound).
  float q8_bias_amp = 0.0f;     // max |bias| (0 when the model has none).

  size_t size() const { return ids.size(); }
};

/// A knowledge-graph embedding model: scores triples and supports per-triple
/// gradient updates. Scoring is thread-safe; UpdateTriple is hogwild-style
/// (concurrent updates race benignly on disjoint rows, as is standard for
/// CPU embedding training).
class KgeModel {
 public:
  KgeModel(ModelType type, int32_t num_entities, int32_t num_relations,
           ModelOptions options);
  virtual ~KgeModel() = default;

  KgeModel(const KgeModel&) = delete;
  KgeModel& operator=(const KgeModel&) = delete;

  ModelType type() const { return type_; }
  const char* name() const { return ModelTypeName(type_); }
  int32_t num_entities() const { return num_entities_; }
  int32_t num_relations() const { return num_relations_; }
  const ModelOptions& options() const { return options_; }

  /// The relation id the scoring/update kernels expect for a triple.
  /// Time-aware models fold the timestamp into a virtual id
  /// (relation + num_relations * time) so the kernel interface — built
  /// around a per-block relation id — carries temporal queries unchanged;
  /// static models return the relation itself. Callers that batch by
  /// relation (trainers, triple scorers, the slot-major evaluators) route
  /// through this so blocks stay kernel-homogeneous.
  virtual int32_t KernelRelation(const Triple& t) const { return t.relation; }

  /// Size of the kernel relation id space ([0, num_kernel_relations));
  /// num_relations * num_timestamps for time-aware models.
  virtual int32_t num_kernel_relations() const { return num_relations_; }

  /// --- Kernel surface -------------------------------------------------------
  /// The concrete models describe themselves to the generic scoring engine
  /// through four hooks instead of overriding the scoring methods: which
  /// batched reduction they collapse to, the embedding table candidates are
  /// gathered from, an optional per-entity bias, and how to fold
  /// (anchor, relation, direction) into per-query kernel rows. Everything
  /// else — single-query scoring, batching, pool preparation, fused blocks,
  /// screening — is implemented once in the base class on top of these.
  /// A model (e.g. a test fake) that returns nullptr from
  /// candidate_embeddings() opts out and must override ScoreCandidates;
  /// the generic engine then falls back to per-query loops over it.

  /// The reduction family the model's scoring collapses to.
  virtual BatchKernel batch_kernel() const { return BatchKernel::kDot; }

  /// Epsilon inside the per-coordinate sqrt for kNegComplexDist (RotatE).
  virtual float batch_kernel_eps() const { return 0.0f; }

  /// The table candidate rows are drawn from, or nullptr when the model has
  /// no kernel surface (fallback scoring via ScoreCandidates overrides).
  virtual const Matrix* candidate_embeddings() const { return nullptr; }

  /// Optional per-entity bias column (num_entities x 1), added to kDot
  /// scores after the reduction (ConvE). nullptr = no bias.
  virtual const Matrix* candidate_bias() const { return nullptr; }

  /// Folds each (anchors[q], relation, direction) query into one kernel row:
  /// resizes `queries` to num_queries x kernel-dim and fills row q with the
  /// vector whose batch_kernel() reduction against an entity row is the
  /// model's score. Direction-symmetric models ignore `direction`.
  virtual void BuildKernelQueries(const int32_t* anchors, size_t num_queries,
                                  int32_t relation, QueryDirection direction,
                                  Matrix* queries) const;

  /// Scores candidates[0..n) against query row q of a BuildKernelQueries
  /// matrix, reading raw embedding rows (no prepared tile). This is the
  /// scalar reference reduction: the batched tile path is bit-identical to
  /// it per cell. Requires a kernel surface.
  void ScoreWithQuery(const Matrix& queries, size_t q,
                      const int32_t* candidates, size_t n, float* out) const;

  /// Scores every query row against a prepared pool through the active
  /// dispatch kernel: pool_scores[q * block.size() + c]. Requires a kernel
  /// surface and a prepared block.
  void ScorePool(const Matrix& queries, const CandidateBlock& block,
                 float* pool_scores) const;

  /// --------------------------------------------------------------------------

  /// Scores `n` candidate entities for a query. For kTail queries the anchor
  /// is the head and candidates are tails; for kHead queries the anchor is
  /// the tail and candidates are heads. Higher = more plausible. The base
  /// implementation builds one kernel query row and reduces with
  /// ScoreWithQuery; models without a kernel surface override it.
  virtual void ScoreCandidates(int32_t anchor, int32_t relation,
                               QueryDirection direction,
                               const int32_t* candidates, size_t n,
                               float* out) const;

  /// Scores `num_queries` queries that share a (relation, direction) slot
  /// against one shared candidate pool. `out` is row-major num_queries x n:
  /// out[q * n + c] is the score of candidates[c] for anchors[q]. With a
  /// kernel surface this prepares the pool once and runs the gather-once,
  /// blocked batch kernel, whose per-cell results match ScoreCandidates
  /// bit-for-bit; without one it loops over ScoreCandidates. This is the
  /// evaluation hot path: slot-major evaluators feed whole slots here.
  virtual void ScoreBatch(const int32_t* anchors, size_t num_queries,
                          int32_t relation, QueryDirection direction,
                          const int32_t* candidates, size_t n,
                          float* out) const;

  /// Scores query q against its *own* `candidates_per_query` candidates:
  /// out[q * k + j] is the score of candidates[q * k + j] for anchors[q]
  /// (k = candidates_per_query). All queries share (relation, direction).
  /// The per-anchor query representation is built once and reused across
  /// its k candidates, so the relation-grouped triple scorers (AUC, KP)
  /// score a positive and all its corruptions in one query construction —
  /// the fusion that matters for ConvE/TuckER, whose query construction
  /// dominates per-triple cost.
  virtual void ScorePairs(const int32_t* anchors, const int32_t* candidates,
                          size_t num_queries, size_t candidates_per_query,
                          int32_t relation, QueryDirection direction,
                          float* out) const;

  /// Gathers (and transposes) the pool's embeddings once into the
  /// CandidateBlock layout (plus the bias gather when the model has one).
  /// Without a kernel surface only the ids and the pool's sortedness are
  /// recorded. Thread-safe, like all scoring.
  virtual void PrepareCandidates(const int32_t* candidates, size_t n,
                                 CandidateBlock* block) const;

  /// Fused pool + truth scoring against a prepared block: builds the
  /// per-anchor query representation ONCE and emits both the pool score
  /// matrix (pool_scores[q * block.size() + c], bit-identical to
  /// ScoreCandidates) and each query's own-truth score (truth_scores[q],
  /// bit-identical to ScorePairs). Either output may be null to skip it
  /// (`truths` may be null iff truth_scores is). Halves query construction
  /// versus a ScoreBatch + ScorePairs pair — the dominant per-query cost
  /// for ConvE (conv/FC trunk) and TuckER (core contraction).
  virtual void ScoreBlock(const int32_t* anchors, const int32_t* truths,
                          size_t num_queries, int32_t relation,
                          QueryDirection direction,
                          const CandidateBlock& block, float* pool_scores,
                          float* truth_scores) const;

  /// Scores every entity for a query (out has num_entities() slots).
  void ScoreAll(int32_t anchor, int32_t relation, QueryDirection direction,
                float* out) const;

  /// Convenience single-triple score.
  float ScoreTriple(const Triple& t) const;

  /// Applies one gradient step: parameters move so as to *decrease*
  /// `dscore * score(h, r, t)` — i.e., pass dscore = dLoss/dScore.
  /// `direction` names the side the trainer treated as the candidate; models
  /// with direction-specific parameterizations (ConvE's reciprocal
  /// relations) use it, symmetric models ignore it.
  virtual void UpdateTriple(int32_t head, int32_t relation, int32_t tail,
                            QueryDirection direction, float dscore) = 0;

  /// Upper bound on useful hogwild parallelism for UpdateTriple. Embedding
  /// models update disjoint rows and scale to any thread count; models with
  /// *shared dense* parameters (ConvE's conv/FC stack, TuckER's core
  /// tensor) hit cache-line contention beyond a few threads, so they cap it.
  virtual size_t max_training_threads() const { return SIZE_MAX; }

  /// A named view of one parameter matrix, used by checkpointing.
  struct NamedParameter {
    const char* name;
    Matrix* matrix;
  };

  /// Appends views of every parameter matrix (stable names, stable order).
  /// Optimizer state is not included: checkpoints restore the model for
  /// inference/evaluation, not mid-flight training moments.
  virtual void CollectParameters(std::vector<NamedParameter>* out) = 0;

 protected:
  /// Fills the layout-independent CandidateBlock fields (ids + sortedness)
  /// and resets the model-specific ones; every PrepareCandidates override
  /// starts here before adding its gathered tile.
  static void FillCandidateIds(const int32_t* candidates, size_t n,
                               CandidateBlock* block);

  ModelType type_;
  int32_t num_entities_;
  int32_t num_relations_;
  ModelOptions options_;
};

/// Scores triples[i] as a tail query against its own tail (the ScoreTriple
/// convention), batched: triples are grouped by relation so each group goes
/// through one ScorePairs call instead of n virtual single-triple scores.
/// out[i] corresponds to triples[i].
void ScoreTriples(const KgeModel& model, const Triple* triples, size_t n,
                  float* out);

/// Fused positive/corruption triple scoring: positives[i] and its k
/// corruptions negatives[i * k + j] — which must share positives[i]'s head
/// and relation (only the tail is corrupted) — are scored in one
/// relation-grouped pass where each positive's query representation is
/// built once and dotted with its truth and all its corruptions.
/// pos_out[i] and neg_out[i * k + j] follow the input order and are
/// bit-identical to independent ScoreTriples calls over the two lists.
void ScoreTriplesWithNegatives(const KgeModel& model, const Triple* positives,
                               size_t n, const Triple* negatives, size_t k,
                               float* pos_out, float* neg_out);

/// Creates a model of the given type. Fails on invalid options (e.g., an odd
/// dimension for the complex-valued models).
Result<std::unique_ptr<KgeModel>> CreateModel(ModelType type,
                                              int32_t num_entities,
                                              int32_t num_relations,
                                              const ModelOptions& options);

}  // namespace kgeval

#endif  // KGEVAL_MODELS_KGE_MODEL_H_

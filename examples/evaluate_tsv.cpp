// End-to-end on a real dataset directory: load train/valid/test TSVs (the
// standard FB15k-237/CoDEx layout), train a model, estimate its filtered
// metrics with the framework, verify against the exact ranking, and save a
// model checkpoint.
//
// Usage: evaluate_tsv <dataset_dir> [model] [epochs] [checkpoint_out]
//
// When no directory is given, a demo directory is synthesized first so the
// example always runs out of the box.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/framework.h"
#include "eval/full_evaluator.h"
#include "graph/io.h"
#include "models/checkpoint.h"
#include "models/trainer.h"
#include "synth/config.h"
#include "synth/generator.h"

int main(int argc, char** argv) {
  using namespace kgeval;
  std::string dir = argc > 1 ? argv[1] : "";
  const std::string model_name = argc > 2 ? argv[2] : "ComplEx";
  const int epochs = argc > 3 ? std::atoi(argv[3]) : 15;
  const std::string checkpoint = argc > 4 ? argv[4] : "";

  if (dir.empty()) {
    dir = (std::filesystem::temp_directory_path() / "kgeval_demo_tsv")
              .string();
    std::filesystem::create_directories(dir);
    const SynthOutput synth =
        GenerateDataset(
            GetPreset("codex-s", PresetScale::kScaled).ValueOrDie())
            .ValueOrDie();
    const Status saved = SaveDatasetToTsv(synth.dataset, dir);
    if (!saved.ok()) {
      std::fprintf(stderr, "cannot write demo dataset: %s\n",
                   saved.ToString().c_str());
      return 1;
    }
    std::printf("no directory given; wrote a demo dataset to %s\n",
                dir.c_str());
  }

  auto dataset_or = LoadDatasetFromTsv(dir);
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 dataset_or.status().ToString().c_str());
    return 1;
  }
  const Dataset& dataset = dataset_or.ValueOrDie();
  std::printf("loaded %s: |E|=%d |R|=%d train=%zu valid=%zu test=%zu%s\n",
              dir.c_str(), dataset.num_entities(), dataset.num_relations(),
              dataset.train().size(), dataset.valid().size(),
              dataset.test().size(),
              dataset.has_types() ? " (+types)" : "");

  auto type_or = ParseModelType(model_name);
  if (!type_or.ok()) {
    std::fprintf(stderr, "%s\n", type_or.status().ToString().c_str());
    return 1;
  }
  ModelOptions model_options;
  model_options.dim = 32;
  model_options.adam.learning_rate = 3e-3f;
  // Time-aware models need the loaded timestamp vocabulary (0 on 3-column
  // datasets = single-timestamp static behavior).
  model_options.num_timestamps = dataset.num_timestamps();
  auto model = CreateModel(type_or.ValueOrDie(), dataset.num_entities(),
                           dataset.num_relations(), model_options)
                   .ValueOrDie();
  TrainerOptions trainer_options;
  trainer_options.epochs = epochs;
  trainer_options.negatives_per_positive = 8;
  Trainer trainer(&dataset, trainer_options);
  std::printf("training %s for %d epochs...\n", model->name(), epochs);
  (void)trainer.Train(model.get());

  const FilterIndex filter(dataset);
  FrameworkOptions fw_options;
  fw_options.recommender =
      dataset.has_types() ? RecommenderType::kLwdT : RecommenderType::kLwd;
  fw_options.strategy = SamplingStrategy::kProbabilistic;
  fw_options.sample_fraction = 0.1;
  auto framework =
      EvaluationFramework::Build(&dataset, fw_options).ValueOrDie();
  const SampledEvalResult estimate =
      framework->Estimate(*model, filter, Split::kTest);
  std::printf("estimated (P, %s, 10%%): %s\n",
              RecommenderTypeName(fw_options.recommender),
              estimate.metrics.ToString().c_str());
  const FullEvalResult exact =
      EvaluateFullRanking(*model, dataset, filter, Split::kTest);
  std::printf("exact full ranking    : %s\n",
              exact.metrics.ToString().c_str());
  std::printf("MRR abs error %.4f\n",
              std::abs(estimate.metrics.mrr - exact.metrics.mrr));

  if (dataset.has_timestamps()) {
    // 4-column dataset: also rank under the time-sliced filter (only facts
    // true at the query's timestamp are removed from the candidates).
    const TemporalFilterIndex temporal_filter(dataset);
    const TemporalFilteredProtocol temporal(dataset, &temporal_filter);
    const FullEvalResult temporal_exact =
        EvaluateFullRanking(*model, dataset, temporal, Split::kTest);
    std::printf("temporal full ranking : %s\n",
                temporal_exact.metrics.ToString().c_str());
  }

  if (!checkpoint.empty()) {
    const Status saved = SaveModel(model.get(), checkpoint);
    std::printf("checkpoint %s: %s\n", checkpoint.c_str(),
                saved.ToString().c_str());
  }
  return 0;
}

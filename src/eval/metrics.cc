#include "eval/metrics.h"

#include "stats/confidence.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace kgeval {

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kMrr:
      return "MRR";
    case MetricKind::kHits1:
      return "Hits@1";
    case MetricKind::kHits3:
      return "Hits@3";
    case MetricKind::kHits10:
      return "Hits@10";
  }
  return "?";
}

double RankFromCounts(int64_t num_higher, int64_t num_tied, TieBreak tie) {
  KGEVAL_DCHECK(num_higher >= 0 && num_tied >= 0);
  switch (tie) {
    case TieBreak::kMean:
      return 1.0 + static_cast<double>(num_higher) +
             static_cast<double>(num_tied) / 2.0;
    case TieBreak::kOptimistic:
      return 1.0 + static_cast<double>(num_higher);
    case TieBreak::kPessimistic:
      return 1.0 + static_cast<double>(num_higher) +
             static_cast<double>(num_tied);
  }
  return 1.0;
}

double RankingMetrics::Get(MetricKind kind) const {
  switch (kind) {
    case MetricKind::kMrr:
      return mrr;
    case MetricKind::kHits1:
      return hits1;
    case MetricKind::kHits3:
      return hits3;
    case MetricKind::kHits10:
      return hits10;
  }
  return 0.0;
}

std::string RankingMetrics::ToString() const {
  return StrFormat(
      "MRR=%.4f Hits@1=%.4f Hits@3=%.4f Hits@10=%.4f MR=%.1f (n=%lld)", mrr,
      hits1, hits3, hits10, mean_rank,
      static_cast<long long>(num_queries));
}

RankingMetrics RankingMetrics::FromRanks(const std::vector<double>& ranks) {
  RankingMetrics m;
  m.num_queries = static_cast<int64_t>(ranks.size());
  if (ranks.empty()) return m;
  for (double rank : ranks) {
    m.mrr += 1.0 / rank;
    m.hits1 += rank <= 1.0 ? 1.0 : 0.0;
    m.hits3 += rank <= 3.0 ? 1.0 : 0.0;
    m.hits10 += rank <= 10.0 ? 1.0 : 0.0;
    m.mean_rank += rank;
  }
  const double n = static_cast<double>(ranks.size());
  m.mrr /= n;
  m.hits1 /= n;
  m.hits3 /= n;
  m.hits10 /= n;
  m.mean_rank /= n;
  return m;
}

double RankingCi::Get(MetricKind kind) const {
  switch (kind) {
    case MetricKind::kMrr:
      return mrr;
    case MetricKind::kHits1:
      return hits1;
    case MetricKind::kHits3:
      return hits3;
    case MetricKind::kHits10:
      return hits10;
  }
  return 0.0;
}

std::string RankingCi::ToString() const {
  return StrFormat(
      "+/- MRR=%.4f Hits@1=%.4f Hits@3=%.4f Hits@10=%.4f MR=%.1f "
      "(z=%.2f, n=%lld)",
      mrr, hits1, hits3, hits10, mean_rank, z,
      static_cast<long long>(num_queries));
}

namespace {

/// Maps a metric to its Welford-state index inside RankingAccumulator.
int StatIndex(MetricKind kind) {
  switch (kind) {
    case MetricKind::kMrr:
      return 0;
    case MetricKind::kHits1:
      return 1;
    case MetricKind::kHits3:
      return 2;
    case MetricKind::kHits10:
      return 3;
  }
  return 0;
}

constexpr int kMeanRankStat = 4;

}  // namespace

void RankingAccumulator::Add(double rank) {
  KGEVAL_DCHECK(rank >= 1.0);
  const double x[kNumStats] = {1.0 / rank, rank <= 1.0 ? 1.0 : 0.0,
                               rank <= 3.0 ? 1.0 : 0.0,
                               rank <= 10.0 ? 1.0 : 0.0, rank};
  ++n_;
  for (int s = 0; s < kNumStats; ++s) {
    const double delta = x[s] - mean_[s];
    mean_[s] += delta / static_cast<double>(n_);
    m2_[s] += delta * (x[s] - mean_[s]);
  }
}

void RankingAccumulator::Merge(const RankingAccumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  for (int s = 0; s < kNumStats; ++s) {
    const double delta = other.mean_[s] - mean_[s];
    mean_[s] += delta * nb / (na + nb);
    m2_[s] += other.m2_[s] + delta * delta * na * nb / (na + nb);
  }
  n_ += other.n_;
}

RankingMetrics RankingAccumulator::Metrics() const {
  RankingMetrics m;
  m.num_queries = n_;
  if (n_ == 0) return m;
  m.mrr = mean_[0];
  m.hits1 = mean_[1];
  m.hits3 = mean_[2];
  m.hits10 = mean_[3];
  m.mean_rank = mean_[kMeanRankStat];
  return m;
}

double RankingAccumulator::Mean(MetricKind kind) const {
  return n_ == 0 ? 0.0 : mean_[StatIndex(kind)];
}

double RankingAccumulator::SampleVariance(MetricKind kind) const {
  if (n_ < 2) return 0.0;
  return m2_[StatIndex(kind)] / static_cast<double>(n_ - 1);
}

double RankingAccumulator::CiHalfWidth(MetricKind kind, double z) const {
  return NormalCiHalfWidth(SampleVariance(kind), n_, z);
}

RankingCi RankingAccumulator::Ci(double z) const {
  RankingCi ci;
  ci.z = z;
  ci.num_queries = n_;
  if (n_ < 2) return ci;
  ci.mrr = CiHalfWidth(MetricKind::kMrr, z);
  ci.hits1 = CiHalfWidth(MetricKind::kHits1, z);
  ci.hits3 = CiHalfWidth(MetricKind::kHits3, z);
  ci.hits10 = CiHalfWidth(MetricKind::kHits10, z);
  ci.mean_rank =
      NormalCiHalfWidth(m2_[kMeanRankStat] / static_cast<double>(n_ - 1), n_,
                        z);
  return ci;
}

}  // namespace kgeval

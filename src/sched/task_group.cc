#include "sched/task_group.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <thread>
#include <vector>

#include "util/fault.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace kgeval {

struct TaskGroup::State {
  Mutex mutex;
  CondVar done;
  std::deque<std::function<void()>> queue KGEVAL_GUARDED_BY(mutex);
  /// Queued + currently running tasks of this group.
  size_t pending KGEVAL_GUARDED_BY(mutex) = 0;
};

TaskGroup::TaskGroup(ThreadPool* pool)
    : pool_(pool != nullptr ? pool : GlobalThreadPool()),
      state_(std::make_shared<State>()) {}

TaskGroup::~TaskGroup() { Wait(); }

void TaskGroup::Submit(std::function<void()> task) {
  if (InThreadPoolWorker()) {
    // Nested submission from a worker: run inline (see header).
    // Fault point "sched.task.delay": armed as a kDelay fault it naps
    // before the task starts, simulating a loaded or descheduled worker.
    FaultPoint("sched.task.delay");
    task();
    return;
  }
  // Copy the members BEFORE the task becomes visible: the moment it is
  // queued, another thread's help-first Wait() may drain it, see the group
  // complete, and destroy it — after which `this` is gone. The ticket
  // likewise captures the state, not the group: tickets left in the pool
  // queue after the group dies drain against an empty queue harmlessly.
  std::shared_ptr<State> state = state_;
  ThreadPool* pool = pool_;
  {
    MutexLock lock(&state->mutex);
    state->queue.push_back(std::move(task));
    ++state->pending;
  }
  pool->Submit([state] { RunOne(state); });
}

bool TaskGroup::RunOne(const std::shared_ptr<State>& state) {
  std::function<void()> task;
  {
    MutexLock lock(&state->mutex);
    if (state->queue.empty()) return false;  // Already drained elsewhere.
    task = std::move(state->queue.front());
    state->queue.pop_front();
  }
  // Same "sched.task.delay" probe as the inline path in Submit().
  FaultPoint("sched.task.delay");
  task();
  MutexLock lock(&state->mutex);
  if (--state->pending == 0) state->done.NotifyAll();
  return true;
}

void TaskGroup::Wait() {
  // Help-first: drain our own queue before blocking, so the waiting thread
  // contributes a worker's worth of progress to its own job.
  while (RunOne(state_)) {
  }
  MutexLock lock(&state_->mutex);
  while (state_->pending != 0) state_->done.Wait(lock);
}

void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t, size_t)>& fn,
                 size_t min_chunk) {
  if (begin >= end) return;
  if (InThreadPoolWorker()) {
    // Re-entrant call from a pool worker: run inline (TaskGroup::Submit
    // would inline each chunk anyway; skip the chunking overhead).
    fn(begin, end);
    return;
  }
  ThreadPool* pool = GlobalThreadPool();
  const size_t n = end - begin;
  if (pool->num_threads() <= 1 || n <= min_chunk) {
    fn(begin, end);
    return;
  }
  const size_t max_chunks = pool->num_threads() * 4;
  const size_t chunk = std::max(min_chunk, (n + max_chunks - 1) / max_chunks);
  TaskGroup group(pool);
  for (size_t lo = begin; lo < end; lo += chunk) {
    const size_t hi = std::min(end, lo + chunk);
    // `fn` outlives the group (Wait() below returns only after every chunk
    // ran), so chunks capture it by reference.
    group.Submit([&fn, lo, hi] { fn(lo, hi); });
  }
  group.Wait();
}

void RunJobsConcurrently(size_t n, const std::function<void(size_t)>& job) {
  if (n == 0) return;
  const size_t width = std::min(
      n, std::max<size_t>(1, GlobalThreadPool()->num_threads()));
  std::atomic<size_t> next{0};
  const auto run_jobs = [&next, n, &job] {
    for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      job(i);
    }
  };
  if (width == 1) {
    run_jobs();
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(width - 1);
  for (size_t t = 1; t < width; ++t) {
    threads.emplace_back(run_jobs);
  }
  run_jobs();
  for (std::thread& thread : threads) thread.join();
}

}  // namespace kgeval

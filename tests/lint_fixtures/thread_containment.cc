// Fixture: violates exactly `thread-containment` (linted as src/eval/bad.cc).
#include <thread>

void Fixture() {
  std::thread worker([] {});
  worker.join();
}

#include "models/rotate.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace kgeval {
namespace {
// Inside the per-coordinate sqrt: keeps the distance differentiable at 0.
constexpr float kEps = 1e-9f;
}

float RotatE::batch_kernel_eps() const { return kEps; }

RotatE::RotatE(int32_t num_entities, int32_t num_relations,
               ModelOptions options)
    : KgeModel(ModelType::kRotatE, num_entities, num_relations, options),
      half_(options.dim / 2),
      entities_(num_entities, options.dim),
      phases_(num_relations, options.dim / 2),
      entity_adam_(num_entities, options.dim, options.adam),
      phase_adam_(num_relations, options.dim / 2, options.adam) {
  Rng rng(options.seed);
  entities_.InitXavier(&rng, options.dim, options.dim);
  phases_.InitUniform(&rng, -static_cast<float>(M_PI),
                      static_cast<float>(M_PI));
}

void RotatE::BuildKernelQueries(const int32_t* anchors, size_t num_queries,
                                int32_t relation, QueryDirection direction,
                                Matrix* queries) const {
  const int32_t m = half_;
  const float* theta = phases_.Row(relation);
  // Rotate each anchor so the score is a plain complex distance to the
  // candidate: tail query uses q = h * r; head query uses q = t * conj(r)
  // (valid because |r_j| = 1). The rotation's cos/sin only depends on the
  // relation, so compute it once for the whole batch.
  std::vector<float> cos_theta(m), sin_theta(m);
  for (int32_t j = 0; j < m; ++j) {
    cos_theta[j] = std::cos(theta[j]);
    sin_theta[j] = direction == QueryDirection::kTail ? std::sin(theta[j])
                                                      : -std::sin(theta[j]);
  }
  queries->Resize(num_queries, static_cast<size_t>(2 * m));
  for (size_t q = 0; q < num_queries; ++q) {
    const float* a = entities_.Row(anchors[q]);
    float* row = queries->Row(q);
    for (int32_t j = 0; j < m; ++j) {
      const float re = a[j], im = a[m + j];
      row[j] = re * cos_theta[j] - im * sin_theta[j];
      row[m + j] = re * sin_theta[j] + im * cos_theta[j];
    }
  }
}

void RotatE::UpdateTriple(int32_t head, int32_t relation, int32_t tail,
                          QueryDirection /*direction*/, float dscore) {
  const int32_t m = half_;
  const float* h = entities_.Row(head);
  const float* theta = phases_.Row(relation);
  const float* t = entities_.Row(tail);
  std::vector<float> gh(2 * m), gt(2 * m), gtheta(m);
  const float l2 = options_.l2;
  for (int32_t j = 0; j < m; ++j) {
    const float c = std::cos(theta[j]);
    const float s = std::sin(theta[j]);
    const float a = h[j], b = h[m + j];
    // u = h_j * r_j - t_j.
    const float ure = a * c - b * s - t[j];
    const float uim = a * s + b * c - t[m + j];
    const float mod = std::sqrt(ure * ure + uim * uim + kEps);
    // score contribution = -|u|; d(-|u|)/d(ure) = -ure/|u|, so the loss
    // gradient w.r.t. u's components is dscore * (-u/|u|).
    const float dre = -dscore * ure / mod;
    const float dim = -dscore * uim / mod;
    // Chain rule into h, t, theta. d(ure)/da = c, d(ure)/db = -s,
    // d(uim)/da = s, d(uim)/db = c; d(u)/dt = -1.
    gh[j] = dre * c + dim * s + l2 * a;
    gh[m + j] = dre * (-s) + dim * c + l2 * b;
    gt[j] = -dre + l2 * t[j];
    gt[m + j] = -dim + l2 * t[m + j];
    // d(ure)/dtheta = -a s - b c; d(uim)/dtheta = a c - b s.
    gtheta[j] = dre * (-a * s - b * c) + dim * (a * c - b * s);
  }
  entity_adam_.UpdateRow(&entities_, head, gh.data());
  phase_adam_.UpdateRow(&phases_, relation, gtheta.data());
  entity_adam_.UpdateRow(&entities_, tail, gt.data());
}

void RotatE::CollectParameters(std::vector<NamedParameter>* out) {
  out->push_back({"entities", &entities_});
  out->push_back({"phases", &phases_});
}

}  // namespace kgeval

#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace kgeval {
namespace lint {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Small text utilities
// ---------------------------------------------------------------------------

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

/// Replaces comment text with spaces (newlines kept), so rules that must not
/// fire on prose — a comment *discussing* -ffast-math, say — see only code.
/// String and character literals pass through untouched. `cmake` switches to
/// `#`-to-end-of-line comments.
std::string StripComments(const std::string& in, bool cmake) {
  std::string out = in;
  enum class State { kCode, kString, kChar, kLine, kBlock };
  State state = State::kCode;
  for (size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '"') {
          state = State::kString;
        } else if (!cmake && c == '\'') {
          state = State::kChar;
        } else if (cmake && c == '#') {
          state = State::kLine;
          out[i] = ' ';
        } else if (!cmake && c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (!cmake && c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;  // Skip the escaped character.
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& s) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= s.size()) {
    size_t nl = s.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(s.substr(start));
      break;
    }
    lines.push_back(s.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

/// True when `token` occurs in `line` with non-identifier characters (or the
/// line edge) on both sides; `pos_out` gets the match offset.
bool FindToken(const std::string& line, const std::string& token,
               size_t* pos_out) {
  size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    const size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) {
      *pos_out = pos;
      return true;
    }
    pos = end;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

struct Suppressions {
  /// rule -> 1-based lines where it is allowed (the comment line + the next).
  std::map<std::string, std::set<int>> lines;
  std::set<std::string> whole_file;
  std::vector<Finding> findings;  // Malformed suppressions.
};

bool IsKnownRule(const std::string& id) {
  for (const RuleInfo& r : Rules()) {
    if (id == r.id) return true;
  }
  return false;
}

/// Parses `kgeval-lint: allow(rule): reason` / `allow-file` comments from the
/// raw text (they live in comments, so this runs before stripping). A missing
/// or empty reason, or an unknown rule id, is itself a finding — an
/// unexplained suppression is exactly the kind of silent drift the linter
/// exists to stop.
Suppressions ParseSuppressions(const std::string& relpath,
                               const std::vector<std::string>& raw_lines) {
  static const std::regex kAllowRe(
      R"(kgeval-lint:\s*allow(-file)?\(([A-Za-z0-9_-]+)\)(:\s*(\S.*))?)");
  Suppressions sup;
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    const int lineno = static_cast<int>(i) + 1;
    std::smatch m;
    std::string::const_iterator begin = raw_lines[i].begin();
    while (std::regex_search(begin, raw_lines[i].cend(), m, kAllowRe)) {
      const bool file_scope = m[1].matched;
      const std::string rule = m[2].str();
      const std::string reason = m[4].matched ? Trim(m[4].str()) : "";
      if (!IsKnownRule(rule)) {
        sup.findings.push_back(
            {"suppression-reason", relpath, lineno,
             "suppression names unknown rule '" + rule +
                 "' (see kgeval_lint --list for valid ids)"});
      } else if (reason.empty()) {
        sup.findings.push_back(
            {"suppression-reason", relpath, lineno,
             "suppression of '" + rule +
                 "' has no reason; write kgeval-lint: allow(" + rule +
                 "): <why this exception is sound>"});
      } else if (file_scope) {
        sup.whole_file.insert(rule);
      } else {
        sup.lines[rule].insert(lineno);
        sup.lines[rule].insert(lineno + 1);
      }
      begin = m.suffix().first;
    }
  }
  return sup;
}

bool IsSuppressed(const Suppressions& sup, const std::string& rule,
                  int lineno) {
  if (sup.whole_file.count(rule) != 0) return true;
  auto it = sup.lines.find(rule);
  return it != sup.lines.end() && it->second.count(lineno) != 0;
}

// ---------------------------------------------------------------------------
// File-scoped rules
// ---------------------------------------------------------------------------

bool IsCMakeFile(const std::string& relpath) {
  const std::string base = fs::path(relpath).filename().string();
  return base == "CMakeLists.txt" ||
         (base.size() > 6 && base.compare(base.size() - 6, 6, ".cmake") == 0);
}

bool UnderDir(const std::string& relpath, const std::string& dir) {
  return StartsWith(relpath, dir + "/");
}

void CheckSimdContainment(const std::string& relpath,
                          const std::vector<std::string>& code_lines,
                          std::vector<Finding>* findings) {
  if (!UnderDir(relpath, "src") || UnderDir(relpath, "src/la/kernels")) return;
  static const char* kHeaders[] = {"immintrin.h", "x86intrin.h", "arm_neon.h",
                                   "arm_sve.h"};
  for (size_t i = 0; i < code_lines.size(); ++i) {
    const std::string& line = code_lines[i];
    const int lineno = static_cast<int>(i) + 1;
    for (const char* header : kHeaders) {
      if (line.find(header) != std::string::npos) {
        findings->push_back(
            {"simd-containment", relpath, lineno,
             std::string("SIMD header <") + header +
                 "> outside src/la/kernels/: ISA-specific code lives only "
                 "behind the runtime kernel dispatcher"});
      }
    }
    if (line.find("__attribute__((target") != std::string::npos ||
        line.find("__attribute__((__target__") != std::string::npos ||
        line.find("#pragma GCC target") != std::string::npos ||
        line.find("#pragma clang attribute") != std::string::npos) {
      findings->push_back(
          {"simd-containment", relpath, lineno,
           "per-function target attribute outside src/la/kernels/: the "
           "dispatcher owns all ISA-gated code paths"});
    }
  }
}

void CheckThreadContainment(const std::string& relpath,
                            const std::vector<std::string>& code_lines,
                            std::vector<Finding>* findings) {
  if (!UnderDir(relpath, "src")) return;
  const bool may_spawn = UnderDir(relpath, "src/sched") ||
                         UnderDir(relpath, "src/util") ||
                         UnderDir(relpath, "src/net");
  for (size_t i = 0; i < code_lines.size(); ++i) {
    const std::string& line = code_lines[i];
    const int lineno = static_cast<int>(i) + 1;
    size_t pos = 0;
    if (!may_spawn && line.find("std::thread") != std::string::npos &&
        line.find("std::thread::id") == std::string::npos) {
      findings->push_back(
          {"thread-containment", relpath, lineno,
           "raw std::thread outside src/sched, src/util, src/net: route "
           "work through ThreadPool/TaskGroup or the event loop so every "
           "thread has an owner that joins it"});
    }
    if (FindToken(line, "detach", &pos) && pos > 0 && line[pos - 1] == '.' &&
        pos + 6 < line.size() && line[pos + 6] == '(') {
      findings->push_back(
          {"thread-containment", relpath, lineno,
           "detached thread: nothing can join it, so shutdown and "
           "sanitizer runs race against its lifetime"});
    }
  }
}

void CheckDeterminism(const std::string& relpath,
                      const std::vector<std::string>& code_lines,
                      std::vector<Finding>* findings) {
  if (!UnderDir(relpath, "src")) return;
  for (size_t i = 0; i < code_lines.size(); ++i) {
    const std::string& line = code_lines[i];
    const int lineno = static_cast<int>(i) + 1;
    size_t pos = 0;
    if (line.find("random_device") != std::string::npos) {
      findings->push_back(
          {"determinism", relpath, lineno,
           "std::random_device is nondeterministic entropy: seed a kgeval "
           "Rng from configuration instead"});
    }
    if (FindToken(line, "rand", &pos) || FindToken(line, "srand", &pos)) {
      // `rand(`/`srand(` as calls; FindToken already rejected foo_rand.
      const size_t after = line.find_first_not_of(
          ' ', pos + (line[pos] == 's' ? 5 : 4));
      if (after != std::string::npos && line[after] == '(') {
        findings->push_back(
            {"determinism", relpath, lineno,
             "C rand()/srand() is hidden global state: use a seeded kgeval "
             "Rng so runs replay bit-exactly"});
      }
    }
    if (FindToken(line, "time", &pos)) {
      const size_t after = line.find_first_not_of(' ', pos + 4);
      if (after != std::string::npos && line[after] == '(') {
        findings->push_back(
            {"determinism", relpath, lineno,
             "wall-clock time() in src/: use steady_clock for durations or "
             "thread timestamps in as data"});
      }
    }
  }
}

void CheckFpDrift(const std::string& relpath,
                  const std::vector<std::string>& code_lines,
                  std::vector<Finding>* findings) {
  if (!UnderDir(relpath, "src") && !IsCMakeFile(relpath)) return;
  for (size_t i = 0; i < code_lines.size(); ++i) {
    const std::string& line = code_lines[i];
    const int lineno = static_cast<int>(i) + 1;
    if (line.find("ffast-math") != std::string::npos ||
        line.find("funsafe-math-optimizations") != std::string::npos) {
      findings->push_back(
          {"fp-drift", relpath, lineno,
           "fast-math reorders and contracts FP: it breaks the bit-exact "
           "scalar/batched/SIMD parity the kernel tests assert"});
    }
    if (line.find("float_control") != std::string::npos ||
        line.find("FP_CONTRACT") != std::string::npos) {
      findings->push_back(
          {"fp-drift", relpath, lineno,
           "per-file FP pragmas fork the rounding model: FP behavior is set "
           "once, globally, in the top-level CMakeLists.txt"});
    }
    size_t pos = line.find("fp-contract");
    while (pos != std::string::npos) {
      const std::string rest = line.substr(pos + 11);
      if (!StartsWith(rest, "=off")) {
        findings->push_back(
            {"fp-drift", relpath, lineno,
             "fp-contract other than =off lets the compiler fuse a*b+c "
             "into FMAs, changing low bits between code paths"});
      }
      pos = line.find("fp-contract", pos + 11);
    }
  }
}

void CheckNolintReason(const std::string& relpath,
                       const std::vector<std::string>& raw_lines,
                       std::vector<Finding>* findings) {
  if (!UnderDir(relpath, "src")) return;
  // A NOLINT must name its check(s) and say why:  NOLINT(check): reason
  static const std::regex kGoodRe(
      R"(NOLINT(NEXTLINE)?\([A-Za-z0-9_.,* -]+\)\s*:\s*\S)");
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string& line = raw_lines[i];
    size_t pos = 0;
    if (!FindToken(line, "NOLINT", &pos) &&
        !FindToken(line, "NOLINTNEXTLINE", &pos) &&
        !FindToken(line, "NOLINTBEGIN", &pos) &&
        !FindToken(line, "NOLINTEND", &pos)) {
      continue;
    }
    const int lineno = static_cast<int>(i) + 1;
    if (line.find("NOLINTBEGIN") != std::string::npos ||
        line.find("NOLINTEND") != std::string::npos) {
      findings->push_back(
          {"nolint-reason", relpath, lineno,
           "NOLINTBEGIN/END block suppression: suppress per line with "
           "NOLINT(check): reason so each exception stays justified"});
      continue;
    }
    std::smatch m;
    if (!std::regex_search(line, m, kGoodRe)) {
      findings->push_back(
          {"nolint-reason", relpath, lineno,
           "bare or unexplained NOLINT: write NOLINT(check-name): reason "
           "so the suppression names what it hides and why that is sound"});
    }
  }
}

// ---------------------------------------------------------------------------
// Doc-consistency rules
// ---------------------------------------------------------------------------

bool WordInText(const std::string& text, const std::string& word) {
  size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    const size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !IsIdentChar(text[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

int LineOfOffset(const std::string& text, size_t offset) {
  return 1 + static_cast<int>(
                 std::count(text.begin(), text.begin() + offset, '\n'));
}

/// stats-doc: every `key=%...` field ExecuteStats formats must be documented
/// in docs/PROTOCOL.md, or clients discover counters by packet inspection.
void CheckStatsDoc(const std::string& root, std::vector<Finding>* findings) {
  std::string service;
  std::string protocol;
  if (!ReadFile(fs::path(root) / "src/service/eval_service.cc", &service) ||
      !ReadFile(fs::path(root) / "docs/PROTOCOL.md", &protocol)) {
    return;  // Inputs absent (fixture tree): rule not in play.
  }
  const size_t fn = service.find("ExecuteStats");
  if (fn == std::string::npos) return;
  const size_t open = service.find('{', fn);
  if (open == std::string::npos) return;
  int depth = 0;
  size_t end = open;
  for (; end < service.size(); ++end) {
    if (service[end] == '{') ++depth;
    if (service[end] == '}' && --depth == 0) break;
  }
  const std::string body = service.substr(open, end - open);
  static const std::regex kKeyRe(R"(([A-Za-z_][A-Za-z0-9_]*)=%)");
  auto begin = std::sregex_iterator(body.begin(), body.end(), kKeyRe);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::string key = it->str(1);
    if (!WordInText(protocol, key)) {
      findings->push_back(
          {"stats-doc", "src/service/eval_service.cc",
           LineOfOffset(service, open + it->position(0)),
           "STATS field '" + key +
               "' is not documented in docs/PROTOCOL.md: every emitted "
               "counter needs an entry in the STATS section"});
    }
  }
}

/// err-doc: every ERR code the service can emit must appear backticked in
/// docs/PROTOCOL.md. Codes come from three shapes: EmitError(emit, "code"),
/// literal "ERR code" sends in the server, and command.cc's
/// InvalidArgument(StrFormat("code ...")) parse failures (the service
/// forwards the status message's first word as the code).
void CheckErrDoc(const std::string& root, std::vector<Finding>* findings) {
  std::string protocol;
  if (!ReadFile(fs::path(root) / "docs/PROTOCOL.md", &protocol)) return;
  struct Source {
    std::string relpath;
    std::regex re;
  };
  const std::vector<Source> sources = {
      {"src/service/eval_service.cc",
       std::regex(R"(EmitError\(\s*emit,\s*\"([a-z][a-z0-9-]*)\")")},
      {"src/service/eval_server.cc",
       std::regex(R"(\"ERR ([a-z][a-z0-9-]*))")},
      {"src/service/command.cc",
       std::regex(R"(InvalidArgument\(\s*StrFormat\(\s*\"([a-z][a-z0-9-]*) )")},
  };
  bool any_source = false;
  for (const Source& src : sources) {
    std::string content;
    if (!ReadFile(fs::path(root) / src.relpath, &content)) continue;
    any_source = true;
    auto begin = std::sregex_iterator(content.begin(), content.end(), src.re);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      const std::string code = it->str(1);
      if (protocol.find("`" + code + "`") == std::string::npos) {
        findings->push_back(
            {"err-doc", src.relpath,
             LineOfOffset(content, it->position(0)),
             "ERR code '" + code +
                 "' is not in docs/PROTOCOL.md's error-code table: clients "
                 "dispatch on these codes, so each one is wire contract"});
      }
    }
  }
  (void)any_source;
}

/// fault-doc: every registered fault point must appear backticked in
/// docs/ARCHITECTURE.md — an undocumented injection point is untestable by
/// anyone who doesn't read fault.cc.
void CheckFaultDoc(const std::string& root, std::vector<Finding>* findings) {
  std::string fault;
  std::string arch;
  if (!ReadFile(fs::path(root) / "src/util/fault.cc", &fault) ||
      !ReadFile(fs::path(root) / "docs/ARCHITECTURE.md", &arch)) {
    return;
  }
  const size_t decl = fault.find("kFaultPoints");
  if (decl == std::string::npos) return;
  const size_t close = fault.find("};", decl);
  if (close == std::string::npos) return;
  const std::string body = fault.substr(decl, close - decl);
  static const std::regex kNameRe(R"(\"([a-z][a-z0-9_.]*)\")");
  auto begin = std::sregex_iterator(body.begin(), body.end(), kNameRe);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::string name = it->str(1);
    if (arch.find("`" + name + "`") == std::string::npos) {
      findings->push_back(
          {"fault-doc", "src/util/fault.cc",
           LineOfOffset(fault, decl + it->position(0)),
           "fault point '" + name +
               "' is not documented in docs/ARCHITECTURE.md: list it in "
               "the fault-points table with its failure mode"});
    }
  }
}

void SortFindings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
}

}  // namespace

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> kRules = {
      {"simd-containment",
       "SIMD headers and target attributes only in src/la/kernels/"},
      {"thread-containment",
       "raw std::thread only in src/sched, src/util, src/net; no detach"},
      {"determinism",
       "no rand/srand/random_device/time() in src/; seeded RNGs only"},
      {"fp-drift",
       "no fast-math or FP pragmas; fp-contract stays =off everywhere"},
      {"stats-doc", "every STATS field is documented in docs/PROTOCOL.md"},
      {"err-doc", "every ERR code is documented in docs/PROTOCOL.md"},
      {"fault-doc",
       "every fault point is documented in docs/ARCHITECTURE.md"},
      {"nolint-reason", "clang-tidy NOLINTs take the form NOLINT(check): why"},
      {"suppression-reason",
       "kgeval-lint suppressions name a known rule and carry a reason"},
  };
  return kRules;
}

std::vector<Finding> LintSourceFile(const std::string& relpath,
                                    const std::string& content) {
  const bool cmake = IsCMakeFile(relpath);
  const std::vector<std::string> raw_lines = SplitLines(content);
  const std::vector<std::string> code_lines =
      SplitLines(StripComments(content, cmake));

  Suppressions sup = ParseSuppressions(relpath, raw_lines);
  std::vector<Finding> findings;
  CheckSimdContainment(relpath, code_lines, &findings);
  CheckThreadContainment(relpath, code_lines, &findings);
  CheckDeterminism(relpath, code_lines, &findings);
  CheckFpDrift(relpath, code_lines, &findings);
  CheckNolintReason(relpath, raw_lines, &findings);

  std::vector<Finding> kept;
  for (Finding& f : findings) {
    if (!IsSuppressed(sup, f.rule, f.line)) kept.push_back(std::move(f));
  }
  for (Finding& f : sup.findings) kept.push_back(std::move(f));
  SortFindings(&kept);
  return kept;
}

std::vector<Finding> LintDocConsistency(const std::string& root) {
  std::vector<Finding> findings;
  CheckStatsDoc(root, &findings);
  CheckErrDoc(root, &findings);
  CheckFaultDoc(root, &findings);
  SortFindings(&findings);
  return findings;
}

std::vector<Finding> LintRepo(const std::string& root) {
  std::vector<Finding> findings;
  std::vector<fs::path> files;
  const fs::path src = fs::path(root) / "src";
  if (fs::exists(src)) {
    for (const auto& entry : fs::recursive_directory_iterator(src)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".cc" || ext == ".cpp") {
        files.push_back(entry.path());
      }
    }
  }
  files.push_back(fs::path(root) / "CMakeLists.txt");
  std::sort(files.begin(), files.end());

  for (const fs::path& path : files) {
    std::string content;
    if (!ReadFile(path, &content)) continue;
    const std::string rel =
        fs::relative(path, fs::path(root)).generic_string();
    std::vector<Finding> file_findings = LintSourceFile(rel, content);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  std::vector<Finding> doc_findings = LintDocConsistency(root);
  findings.insert(findings.end(),
                  std::make_move_iterator(doc_findings.begin()),
                  std::make_move_iterator(doc_findings.end()));
  SortFindings(&findings);
  return findings;
}

}  // namespace lint
}  // namespace kgeval

#include "core/triple_classifier.h"

#include <algorithm>

#include "util/logging.h"

namespace kgeval {

const char* TripleVerdictName(TripleVerdict verdict) {
  switch (verdict) {
    case TripleVerdict::kPlausible:
      return "plausible";
    case TripleVerdict::kHeadImplausible:
      return "head-implausible";
    case TripleVerdict::kTailImplausible:
      return "tail-implausible";
    case TripleVerdict::kBothImplausible:
      return "both-implausible";
  }
  return "?";
}

TripleClassifier::TripleClassifier(const RecommenderScores* scores)
    : scores_(scores) {
  KGEVAL_CHECK(scores_ != nullptr);
  num_relations_ = scores_->num_relations();
}

TripleVerdict TripleClassifier::Classify(const Triple& triple) const {
  const bool head_ok =
      scores_->scores.At(triple.head, triple.relation) > 0.0f;
  const bool tail_ok =
      scores_->scores.At(triple.tail, triple.relation + num_relations_) >
      0.0f;
  if (head_ok && tail_ok) return TripleVerdict::kPlausible;
  if (!head_ok && !tail_ok) return TripleVerdict::kBothImplausible;
  return head_ok ? TripleVerdict::kTailImplausible
                 : TripleVerdict::kHeadImplausible;
}

bool TripleClassifier::IsPlausible(const Triple& triple) const {
  return Classify(triple) == TripleVerdict::kPlausible;
}

float TripleClassifier::Margin(const Triple& triple) const {
  return std::min(
      scores_->scores.At(triple.head, triple.relation),
      scores_->scores.At(triple.tail, triple.relation + num_relations_));
}

}  // namespace kgeval

// NEON score kernels for aarch64, where ASIMD is baseline (no runtime probe
// needed). Same lane discipline as the x86 paths: candidates are
// independent 4-lane strips, each accumulating over dim with an explicit
// rounded multiply + rounded add (vmulq/vaddq, never vfmaq, on the exact
// kernels) and IEEE-exact vsqrtq/vabsq, so results match the scalar
// reference bit-for-bit.

#include "la/kernels/kernel_impls.h"

#if defined(__aarch64__)
#define KGEVAL_HAVE_NEON_KERNELS 1
#endif

#if defined(KGEVAL_HAVE_NEON_KERNELS)

#include <arm_neon.h>

#include <cmath>
#include <cstddef>

namespace kgeval {
namespace kernel_impls {
namespace {

/// Loads exactly 4 int8 lanes (no overread past the tile) and converts to
/// fp32.
inline float32x4_t LoadQ8x4(const int8_t* p) {
  int32_t bits;
  __builtin_memcpy(&bits, p, sizeof(bits));
  const int8x8_t raw = vreinterpret_s8_s32(vdup_n_s32(bits));
  const int16x8_t w = vmovl_s8(raw);
  return vcvtq_f32_s32(vmovl_s16(vget_low_s16(w)));
}

void DotNeon(const float* queries, size_t nq, size_t dim, const float* tile,
             size_t n, float* out) {
  for (size_t q = 0; q < nq; ++q) {
    const float* a = queries + q * dim;
    float* o = out + q * n;
    size_t c = 0;
    for (; c + 16 <= n; c += 16) {
      float32x4_t acc0 = vdupq_n_f32(0.0f);
      float32x4_t acc1 = vdupq_n_f32(0.0f);
      float32x4_t acc2 = vdupq_n_f32(0.0f);
      float32x4_t acc3 = vdupq_n_f32(0.0f);
      const float* g = tile + c;
      for (size_t k = 0; k < dim; ++k, g += n) {
        const float32x4_t va = vdupq_n_f32(a[k]);
        acc0 = vaddq_f32(acc0, vmulq_f32(va, vld1q_f32(g)));
        acc1 = vaddq_f32(acc1, vmulq_f32(va, vld1q_f32(g + 4)));
        acc2 = vaddq_f32(acc2, vmulq_f32(va, vld1q_f32(g + 8)));
        acc3 = vaddq_f32(acc3, vmulq_f32(va, vld1q_f32(g + 12)));
      }
      vst1q_f32(o + c, acc0);
      vst1q_f32(o + c + 4, acc1);
      vst1q_f32(o + c + 8, acc2);
      vst1q_f32(o + c + 12, acc3);
    }
    for (; c + 4 <= n; c += 4) {
      float32x4_t acc = vdupq_n_f32(0.0f);
      const float* g = tile + c;
      for (size_t k = 0; k < dim; ++k, g += n) {
        acc = vaddq_f32(acc, vmulq_f32(vdupq_n_f32(a[k]), vld1q_f32(g)));
      }
      vst1q_f32(o + c, acc);
    }
    for (; c < n; ++c) {
      float acc = 0.0f;
      for (size_t k = 0; k < dim; ++k) acc += a[k] * tile[k * n + c];
      o[c] = acc;
    }
  }
}

void NegL1Neon(const float* queries, size_t nq, size_t dim, const float* tile,
               size_t n, float* out) {
  for (size_t q = 0; q < nq; ++q) {
    const float* a = queries + q * dim;
    float* o = out + q * n;
    size_t c = 0;
    for (; c + 16 <= n; c += 16) {
      float32x4_t acc0 = vdupq_n_f32(0.0f);
      float32x4_t acc1 = vdupq_n_f32(0.0f);
      float32x4_t acc2 = vdupq_n_f32(0.0f);
      float32x4_t acc3 = vdupq_n_f32(0.0f);
      const float* g = tile + c;
      for (size_t k = 0; k < dim; ++k, g += n) {
        const float32x4_t va = vdupq_n_f32(a[k]);
        acc0 = vaddq_f32(acc0, vabsq_f32(vsubq_f32(va, vld1q_f32(g))));
        acc1 = vaddq_f32(acc1, vabsq_f32(vsubq_f32(va, vld1q_f32(g + 4))));
        acc2 = vaddq_f32(acc2, vabsq_f32(vsubq_f32(va, vld1q_f32(g + 8))));
        acc3 = vaddq_f32(acc3, vabsq_f32(vsubq_f32(va, vld1q_f32(g + 12))));
      }
      vst1q_f32(o + c, vnegq_f32(acc0));
      vst1q_f32(o + c + 4, vnegq_f32(acc1));
      vst1q_f32(o + c + 8, vnegq_f32(acc2));
      vst1q_f32(o + c + 12, vnegq_f32(acc3));
    }
    for (; c + 4 <= n; c += 4) {
      float32x4_t acc = vdupq_n_f32(0.0f);
      const float* g = tile + c;
      for (size_t k = 0; k < dim; ++k, g += n) {
        acc = vaddq_f32(acc,
                        vabsq_f32(vsubq_f32(vdupq_n_f32(a[k]), vld1q_f32(g))));
      }
      vst1q_f32(o + c, vnegq_f32(acc));
    }
    for (; c < n; ++c) {
      float acc = 0.0f;
      for (size_t k = 0; k < dim; ++k) acc += std::fabs(a[k] - tile[k * n + c]);
      o[c] = -acc;
    }
  }
}

void NegComplexDistNeon(const float* queries, size_t nq, size_t dim,
                        const float* tile, size_t n, float eps, float* out) {
  const size_t m = dim / 2;
  const float32x4_t veps = vdupq_n_f32(eps);
  for (size_t q = 0; q < nq; ++q) {
    const float* a = queries + q * dim;
    float* o = out + q * n;
    size_t c = 0;
    for (; c + 8 <= n; c += 8) {
      float32x4_t acc0 = vdupq_n_f32(0.0f);
      float32x4_t acc1 = vdupq_n_f32(0.0f);
      for (size_t j = 0; j < m; ++j) {
        const float32x4_t qre = vdupq_n_f32(a[j]);
        const float32x4_t qim = vdupq_n_f32(a[m + j]);
        const float* gre = tile + j * n + c;
        const float* gim = tile + (m + j) * n + c;
        const float32x4_t dre0 = vsubq_f32(qre, vld1q_f32(gre));
        const float32x4_t dim0 = vsubq_f32(qim, vld1q_f32(gim));
        const float32x4_t dre1 = vsubq_f32(qre, vld1q_f32(gre + 4));
        const float32x4_t dim1 = vsubq_f32(qim, vld1q_f32(gim + 4));
        const float32x4_t s0 = vaddq_f32(
            vaddq_f32(vmulq_f32(dre0, dre0), vmulq_f32(dim0, dim0)), veps);
        const float32x4_t s1 = vaddq_f32(
            vaddq_f32(vmulq_f32(dre1, dre1), vmulq_f32(dim1, dim1)), veps);
        acc0 = vaddq_f32(acc0, vsqrtq_f32(s0));
        acc1 = vaddq_f32(acc1, vsqrtq_f32(s1));
      }
      vst1q_f32(o + c, vnegq_f32(acc0));
      vst1q_f32(o + c + 4, vnegq_f32(acc1));
    }
    for (; c + 4 <= n; c += 4) {
      float32x4_t acc = vdupq_n_f32(0.0f);
      for (size_t j = 0; j < m; ++j) {
        const float32x4_t dre =
            vsubq_f32(vdupq_n_f32(a[j]), vld1q_f32(tile + j * n + c));
        const float32x4_t dim_ =
            vsubq_f32(vdupq_n_f32(a[m + j]), vld1q_f32(tile + (m + j) * n + c));
        const float32x4_t s = vaddq_f32(
            vaddq_f32(vmulq_f32(dre, dre), vmulq_f32(dim_, dim_)), veps);
        acc = vaddq_f32(acc, vsqrtq_f32(s));
      }
      vst1q_f32(o + c, vnegq_f32(acc));
    }
    for (; c < n; ++c) {
      float acc = 0.0f;
      for (size_t j = 0; j < m; ++j) {
        const float dre = a[j] - tile[j * n + c];
        const float dim_ = a[m + j] - tile[(m + j) * n + c];
        acc += std::sqrt(dre * dre + dim_ * dim_ + eps);
      }
      o[c] = -acc;
    }
  }
}

void DotQ8Neon(const uint8_t* queries, size_t nq, size_t dim_quads,
               const int8_t* tile4, size_t n, int32_t* out) {
  // Exact integer dot over the quad-interleaved tile. Kept as plain C:
  // the candidate-quad layout autovectorizes acceptably (smlal-style), the
  // arithmetic is exact s32 either way, and an sdot/usdot variant needs the
  // dotprod/i8mm extensions a baseline aarch64 target cannot assume.
  for (size_t q = 0; q < nq; ++q) {
    const uint8_t* a = queries + q * dim_quads * 4;
    int32_t* o = out + q * n;
    for (size_t c = 0; c < n; ++c) o[c] = 0;
    for (size_t g = 0; g < dim_quads; ++g) {
      const int32_t a0 = a[g * 4 + 0], a1 = a[g * 4 + 1];
      const int32_t a2 = a[g * 4 + 2], a3 = a[g * 4 + 3];
      const int8_t* t = tile4 + g * n * 4;
      for (size_t c = 0; c < n; ++c) {
        o[c] += a0 * t[c * 4 + 0] + a1 * t[c * 4 + 1] + a2 * t[c * 4 + 2] +
                a3 * t[c * 4 + 3];
      }
    }
  }
}

void NegL1Q8Neon(const float* queries, size_t nq, size_t dim,
                 const int8_t* tile, const float* scale, size_t n,
                 float* out) {
  for (size_t q = 0; q < nq; ++q) {
    const float* a = queries + q * dim;
    float* o = out + q * n;
    size_t c = 0;
    for (; c + 8 <= n; c += 8) {
      float32x4_t acc0 = vdupq_n_f32(0.0f);
      float32x4_t acc1 = vdupq_n_f32(0.0f);
      const int8_t* g = tile + c;
      for (size_t k = 0; k < dim; ++k, g += n) {
        const float32x4_t va = vdupq_n_f32(a[k]);
        const float32x4_t vs = vdupq_n_f32(scale[k]);
        acc0 = vaddq_f32(
            acc0, vabsq_f32(vsubq_f32(va, vmulq_f32(vs, LoadQ8x4(g)))));
        acc1 = vaddq_f32(
            acc1, vabsq_f32(vsubq_f32(va, vmulq_f32(vs, LoadQ8x4(g + 4)))));
      }
      vst1q_f32(o + c, vnegq_f32(acc0));
      vst1q_f32(o + c + 4, vnegq_f32(acc1));
    }
    for (; c < n; ++c) {
      float acc = 0.0f;
      for (size_t k = 0; k < dim; ++k) {
        acc += std::fabs(a[k] - scale[k] * static_cast<float>(tile[k * n + c]));
      }
      o[c] = -acc;
    }
  }
}

void NegComplexDistQ8Neon(const float* queries, size_t nq, size_t dim,
                          const int8_t* tile, const float* scale, size_t n,
                          float eps, float* out) {
  const size_t m = dim / 2;
  const float32x4_t veps = vdupq_n_f32(eps);
  for (size_t q = 0; q < nq; ++q) {
    const float* a = queries + q * dim;
    float* o = out + q * n;
    size_t c = 0;
    for (; c + 4 <= n; c += 4) {
      float32x4_t acc = vdupq_n_f32(0.0f);
      for (size_t j = 0; j < m; ++j) {
        const float32x4_t gre =
            vmulq_f32(vdupq_n_f32(scale[j]), LoadQ8x4(tile + j * n + c));
        const float32x4_t gim = vmulq_f32(vdupq_n_f32(scale[m + j]),
                                          LoadQ8x4(tile + (m + j) * n + c));
        const float32x4_t dre = vsubq_f32(vdupq_n_f32(a[j]), gre);
        const float32x4_t dim_ = vsubq_f32(vdupq_n_f32(a[m + j]), gim);
        const float32x4_t s = vaddq_f32(
            vaddq_f32(vmulq_f32(dre, dre), vmulq_f32(dim_, dim_)), veps);
        acc = vaddq_f32(acc, vsqrtq_f32(s));
      }
      vst1q_f32(o + c, vnegq_f32(acc));
    }
    for (; c < n; ++c) {
      float acc = 0.0f;
      for (size_t j = 0; j < m; ++j) {
        const float dre =
            a[j] - scale[j] * static_cast<float>(tile[j * n + c]);
        const float dim_ =
            a[m + j] - scale[m + j] * static_cast<float>(tile[(m + j) * n + c]);
        acc += std::sqrt(dre * dre + dim_ * dim_ + eps);
      }
      o[c] = -acc;
    }
  }
}

}  // namespace

const ScoreKernels* NeonKernels() {
  static const ScoreKernels kNeon = {
      "neon",      DotNeon,     NegL1Neon,        NegComplexDistNeon,
      DotQ8Neon,   NegL1Q8Neon, NegComplexDistQ8Neon,
  };
  return &kNeon;
}

}  // namespace kernel_impls
}  // namespace kgeval

#else  // !KGEVAL_HAVE_NEON_KERNELS

namespace kgeval {
namespace kernel_impls {

const ScoreKernels* NeonKernels() { return nullptr; }

}  // namespace kernel_impls
}  // namespace kgeval

#endif  // KGEVAL_HAVE_NEON_KERNELS

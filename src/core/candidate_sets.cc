#include "core/candidate_sets.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace kgeval {
namespace {

struct U64Hash {
  size_t operator()(uint64_t key) const {
    key ^= key >> 33;
    key *= 0xFF51AFD7ED558CCDULL;
    key ^= key >> 33;
    return static_cast<size_t>(key);
  }
};

/// Sorted union of a sorted set with another sorted set.
std::vector<int32_t> SortedUnion(const std::vector<int32_t>& a,
                                 const std::vector<int32_t>& b) {
  std::vector<int32_t> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

/// Validation entities observed per slot (deduplicated).
std::vector<std::vector<int32_t>> ValidEntitiesPerSlot(
    const Dataset& dataset) {
  const int32_t num_r = dataset.num_relations();
  std::vector<std::vector<int32_t>> out(2 * num_r);
  for (const Triple& t : dataset.valid()) {
    out[t.relation].push_back(t.head);
    out[t.relation + num_r].push_back(t.tail);
  }
  for (auto& v : out) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  return out;
}

}  // namespace

double CandidateSets::MacroReductionRate() const {
  if (sets.empty() || num_entities == 0) return 0.0;
  double acc = 0.0;
  for (const auto& s : sets) {
    acc += 1.0 - static_cast<double>(s.size()) /
                     static_cast<double>(num_entities);
  }
  return acc / static_cast<double>(sets.size());
}

CandidateSets BuildStaticSets(const RecommenderScores& scores,
                              const Dataset& dataset,
                              const StaticSetOptions& options) {
  const int32_t num_r = dataset.num_relations();
  const int32_t num_slots = 2 * num_r;
  const int32_t num_e = dataset.num_entities();
  const CsrMatrix& by_set = scores.by_set;
  KGEVAL_CHECK_EQ(by_set.rows(), num_slots);

  const ObservedSets seen(dataset, {Split::kTrain});
  const auto valid_per_slot = ValidEntitiesPerSlot(dataset);

  CandidateSets out;
  out.sets.resize(num_slots);
  out.thresholds.assign(num_slots, 0.0f);
  out.num_entities = num_e;

  for (int32_t slot = 0; slot < num_slots; ++slot) {
    const int64_t begin = by_set.RowBegin(slot);
    const int64_t end = by_set.RowEnd(slot);
    const int64_t nnz = end - begin;
    // Collect the column's (score, entity) entries sorted by score desc.
    std::vector<std::pair<float, int32_t>> entries;
    entries.reserve(nnz);
    for (int64_t k = begin; k < end; ++k) {
      if (by_set.values()[k] > 0.0f) {
        entries.emplace_back(by_set.values()[k], by_set.col_idx()[k]);
      }
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });

    const std::vector<int32_t>& seen_set = seen.Set(slot);
    const std::vector<int32_t>& valid_entities = valid_per_slot[slot];

    // Candidate thresholds: a quantile grid over the distinct scores.
    std::vector<float> grid;
    if (!entries.empty()) {
      const int32_t steps = std::max(1, options.threshold_grid);
      for (int32_t g = 0; g < steps; ++g) {
        const size_t idx = static_cast<size_t>(
            (static_cast<double>(g) / steps) * (entries.size() - 1));
        grid.push_back(entries[idx].first);
      }
      grid.push_back(entries.back().first);  // Keep-everything threshold.
      std::sort(grid.begin(), grid.end(), std::greater<float>());
      grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
    } else {
      grid.push_back(0.0f);
    }

    // Precompute how many seen entities sit at each score level so the
    // union size |{score >= tau} ∪ seen| is O(1) per threshold.
    std::vector<float> seen_scores;
    seen_scores.reserve(seen_set.size());
    for (int32_t e : seen_set) {
      seen_scores.push_back(scores.scores.At(e, slot));
    }
    std::sort(seen_scores.begin(), seen_scores.end(),
              std::greater<float>());
    std::vector<float> valid_scores;
    std::vector<bool> valid_seen;
    for (int32_t e : valid_entities) {
      valid_scores.push_back(scores.scores.At(e, slot));
      valid_seen.push_back(options.include_seen &&
                           std::binary_search(seen_set.begin(),
                                              seen_set.end(), e));
    }

    float best_tau = entries.empty() ? 0.0f : entries.back().first;
    double best_dist = std::numeric_limits<double>::infinity();
    for (float tau : grid) {
      // |{score >= tau}| via the sorted entries.
      const auto geq = static_cast<int64_t>(
          std::lower_bound(entries.begin(), entries.end(), tau,
                           [](const auto& entry, float value) {
                             return entry.first >= value;
                           }) -
          entries.begin());
      int64_t set_size = geq;
      if (options.include_seen) {
        // Seen entities strictly below the threshold get added back (the
        // ones at or above it are already counted in `geq`).
        const auto seen_below = static_cast<int64_t>(
            seen_scores.end() -
            std::upper_bound(seen_scores.begin(), seen_scores.end(), tau,
                             std::greater<float>()));
        set_size += seen_below;
      }
      double covered = 0.0;
      for (size_t i = 0; i < valid_scores.size(); ++i) {
        if (valid_seen[i] || valid_scores[i] >= tau) covered += 1.0;
      }
      const double cr = valid_scores.empty()
                            ? 1.0
                            : covered / static_cast<double>(
                                            valid_scores.size());
      const double rr =
          1.0 - static_cast<double>(set_size) / static_cast<double>(num_e);
      const double dist = (1.0 - cr) * (1.0 - cr) + (1.0 - rr) * (1.0 - rr);
      if (dist < best_dist) {
        best_dist = dist;
        best_tau = tau;
      }
    }

    std::vector<int32_t> members;
    for (const auto& [score, entity] : entries) {
      if (score >= best_tau) members.push_back(entity);
    }
    std::sort(members.begin(), members.end());
    if (options.include_seen) {
      members = SortedUnion(members, seen_set);
    }
    out.sets[slot] = std::move(members);
    out.thresholds[slot] = best_tau;
  }
  return out;
}

CandidateSets BuildProbabilisticSets(const RecommenderScores& scores,
                                     const Dataset& dataset,
                                     bool include_seen) {
  const int32_t num_r = dataset.num_relations();
  const int32_t num_slots = 2 * num_r;
  const CsrMatrix& by_set = scores.by_set;
  KGEVAL_CHECK_EQ(by_set.rows(), num_slots);

  const ObservedSets seen(dataset, {Split::kTrain});

  CandidateSets out;
  out.sets.resize(num_slots);
  out.weights.resize(num_slots);
  out.num_entities = dataset.num_entities();
  for (int32_t slot = 0; slot < num_slots; ++slot) {
    std::vector<int32_t> members;
    std::vector<float> weights;
    float min_positive = std::numeric_limits<float>::infinity();
    for (int64_t k = by_set.RowBegin(slot); k < by_set.RowEnd(slot); ++k) {
      const float v = by_set.values()[k];
      if (v <= 0.0f) continue;
      members.push_back(by_set.col_idx()[k]);
      weights.push_back(v);
      min_positive = std::min(min_positive, v);
    }
    if (include_seen) {
      // Entities only known from train keep at least the smallest positive
      // weight so they can always be drawn.
      const float floor_weight =
          std::isfinite(min_positive) ? min_positive : 1.0f;
      for (int32_t e : seen.Set(slot)) {
        const auto it =
            std::lower_bound(members.begin(), members.end(), e);
        if (it != members.end() && *it == e) {
          auto& w = weights[static_cast<size_t>(it - members.begin())];
          w = std::max(w, floor_weight);
        } else {
          const size_t pos = static_cast<size_t>(it - members.begin());
          members.insert(it, e);
          weights.insert(weights.begin() + pos, floor_weight);
        }
      }
    }
    out.sets[slot] = std::move(members);
    out.weights[slot] = std::move(weights);
  }
  return out;
}

SetQuality EvaluateSetQuality(const CandidateSets& sets,
                              const Dataset& dataset) {
  const int32_t num_r = dataset.num_relations();
  const ObservedSets seen(dataset, {Split::kTrain, Split::kValid});

  SetQuality q;
  std::unordered_set<uint64_t, U64Hash> visited;
  double rr_acc = 0.0;
  for (const Triple& t : dataset.test()) {
    const std::pair<int32_t, int32_t> slot_pairs[2] = {
        {t.relation, t.head},           // Domain slot.
        {t.relation + num_r, t.tail}};  // Range slot.
    for (const auto& [slot, entity] : slot_pairs) {
      if (!visited.insert(PackPair(slot, entity)).second) continue;
      const auto& members = sets.sets[slot];
      const bool covered =
          std::binary_search(members.begin(), members.end(), entity);
      const bool was_seen = slot < num_r
                                ? seen.InDomain(slot, entity)
                                : seen.InRange(slot - num_r, entity);
      ++q.total_pairs;
      if (covered) ++q.covered_pairs;
      if (!was_seen) {
        ++q.total_unseen;
        if (covered) ++q.covered_unseen;
      }
      rr_acc += 1.0 - static_cast<double>(members.size()) /
                          static_cast<double>(sets.num_entities);
    }
  }
  q.cr_test = q.total_pairs > 0 ? static_cast<double>(q.covered_pairs) /
                                      static_cast<double>(q.total_pairs)
                                : 0.0;
  q.cr_unseen = q.total_unseen > 0
                    ? static_cast<double>(q.covered_unseen) /
                          static_cast<double>(q.total_unseen)
                    : 0.0;
  q.rr = q.total_pairs > 0 ? rr_acc / static_cast<double>(q.total_pairs)
                           : 0.0;
  q.rr_macro = sets.MacroReductionRate();
  return q;
}

}  // namespace kgeval

#include "kp/persistence.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/logging.h"

namespace kgeval {
namespace {

/// Union-find tracking, per component root, the birth time of the oldest
/// member component.
class BirthUnionFind {
 public:
  explicit BirthUnionFind(const std::vector<float>& births)
      : parent_(births.size()), birth_(births) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  int32_t Find(int32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merges the components of u and v at filtration value `w`. Returns the
  /// birth of the *younger* component (the one that dies), or NaN if u and v
  /// were already connected.
  float Union(int32_t u, int32_t v, float w) {
    (void)w;
    const int32_t ru = Find(u);
    const int32_t rv = Find(v);
    if (ru == rv) return std::numeric_limits<float>::quiet_NaN();
    // Elder rule: the component with the earlier birth survives.
    int32_t survivor = ru, dying = rv;
    if (birth_[rv] < birth_[ru]) std::swap(survivor, dying);
    parent_[dying] = survivor;
    return birth_[dying];
  }

  float BirthOf(int32_t x) { return birth_[Find(x)]; }

 private:
  std::vector<int32_t> parent_;
  std::vector<float> birth_;
};

}  // namespace

PersistenceDiagram ComputeZeroDimPersistence(
    int32_t num_vertices, const std::vector<WeightedEdge>& edges) {
  PersistenceDiagram diagram;
  if (num_vertices <= 0) return diagram;

  // Lower-star vertex births: min incident edge weight. Isolated vertices
  // never appear in the filtration and are skipped.
  std::vector<float> births(num_vertices,
                            std::numeric_limits<float>::infinity());
  float max_weight = -std::numeric_limits<float>::infinity();
  for (const WeightedEdge& e : edges) {
    KGEVAL_DCHECK(e.u >= 0 && e.u < num_vertices);
    KGEVAL_DCHECK(e.v >= 0 && e.v < num_vertices);
    births[e.u] = std::min(births[e.u], e.weight);
    births[e.v] = std::min(births[e.v], e.weight);
    max_weight = std::max(max_weight, e.weight);
  }
  if (edges.empty()) return diagram;

  std::vector<size_t> order(edges.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&edges](size_t a, size_t b) {
    return edges[a].weight < edges[b].weight;
  });

  BirthUnionFind uf(births);
  for (size_t idx : order) {
    const WeightedEdge& e = edges[idx];
    const float dying_birth = uf.Union(e.u, e.v, e.weight);
    if (!std::isnan(dying_birth) && e.weight > dying_birth) {
      diagram.points.emplace_back(dying_birth, e.weight);
    }
  }
  // Essential classes: one per surviving component; closed at the maximum
  // filtration value so downstream distances stay finite.
  std::vector<bool> seen_root(num_vertices, false);
  for (int32_t v = 0; v < num_vertices; ++v) {
    if (!std::isfinite(births[v])) continue;  // Isolated.
    const int32_t root = uf.Find(v);
    if (seen_root[root]) continue;
    seen_root[root] = true;
    if (max_weight > uf.BirthOf(root)) {
      diagram.points.emplace_back(uf.BirthOf(root), max_weight);
    }
  }
  return diagram;
}

double SlicedWassersteinDistance(const PersistenceDiagram& a,
                                 const PersistenceDiagram& b,
                                 int32_t num_slices) {
  KGEVAL_CHECK_GT(num_slices, 0);
  // Diagonal augmentation: each diagram receives the projections of the
  // other's points onto the diagonal, so both multisets have equal size.
  auto diagonal = [](const std::pair<float, float>& p) {
    const float m = 0.5f * (p.first + p.second);
    return std::pair<float, float>(m, m);
  };
  std::vector<std::pair<float, float>> pa(a.points), pb(b.points);
  for (const auto& p : b.points) pa.push_back(diagonal(p));
  for (const auto& p : a.points) pb.push_back(diagonal(p));
  if (pa.empty()) return 0.0;

  double total = 0.0;
  std::vector<double> proj_a(pa.size()), proj_b(pb.size());
  for (int32_t s = 0; s < num_slices; ++s) {
    const double theta = M_PI * (static_cast<double>(s) + 0.5) / num_slices;
    const double cx = std::cos(theta), cy = std::sin(theta);
    for (size_t i = 0; i < pa.size(); ++i) {
      proj_a[i] = cx * pa[i].first + cy * pa[i].second;
    }
    for (size_t i = 0; i < pb.size(); ++i) {
      proj_b[i] = cx * pb[i].first + cy * pb[i].second;
    }
    std::sort(proj_a.begin(), proj_a.end());
    std::sort(proj_b.begin(), proj_b.end());
    double dist = 0.0;
    for (size_t i = 0; i < proj_a.size(); ++i) {
      dist += std::fabs(proj_a[i] - proj_b[i]);
    }
    total += dist;
  }
  return total / num_slices;
}

}  // namespace kgeval

// Service load bench: N concurrent clients drive kgeval-server over real
// TCP sockets with pipelined requests (a window of commands in flight per
// connection) and measure throughput plus tail latency per verb class —
// the cheap control-plane verbs (PING/STATS) and the heavy evaluation verb
// (EVAL <ckpt>) share one event loop, and the interesting number is the
// control-plane p99 while evaluations saturate the worker pool.
//
// Two gates make this a correctness harness, not just a stopwatch:
//   - zero protocol errors: any ERR reply across the whole run fails the
//     bench (CI greps the summary and checks the exit code);
//   - byte parity: every EVAL reply's metric fields must byte-match the
//     same checkpoint evaluated directly through
//     EstimateCheckpointOnPools on a locally reconstructed session (same
//     preset, same ServiceFrameworkOptions, same first pool draw). The
//     protocol's %.17g formatting makes this an exact string comparison.
//     Prints PARITY MISMATCH otherwise.
//
// Extra flags (stripped before the shared bench flags are parsed):
//   --clients=N        concurrent connections (default 8; the ISSUE floor)
//   --requests=N       requests per client (default 32; --fast halves it)
//   --pipeline=N       max requests in flight per connection (default 8)
//   --connect=HOST:PORT  drive an external kgeval-server instead of the
//                        in-process one (CI smoke starts the real binary);
//                        implies scaled presets — the parity gate assumes
//                        the server's default LOAD scale.
// --json writes BENCH_service_load.json.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/eval_session.h"
#include "models/trainer.h"
#include "service/eval_server.h"
#include "service/eval_service.h"
#include "service/line_client.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace kgeval;

struct LoadFlags {
  int clients = 8;
  int requests = 32;
  int pipeline = 8;
  std::string connect_host;
  uint16_t connect_port = 0;
  bool external = false;
};

/// Pulls this bench's own flags out of argv (bench::ParseArgs exits on
/// anything it does not recognize) and returns the rest for it.
LoadFlags ExtractLoadFlags(int* argc, char** argv) {
  LoadFlags flags;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--clients=", 0) == 0) {
      flags.clients = std::atoi(arg.c_str() + std::strlen("--clients="));
    } else if (arg.rfind("--requests=", 0) == 0) {
      flags.requests = std::atoi(arg.c_str() + std::strlen("--requests="));
    } else if (arg.rfind("--pipeline=", 0) == 0) {
      flags.pipeline = std::atoi(arg.c_str() + std::strlen("--pipeline="));
    } else if (arg.rfind("--connect=", 0) == 0) {
      const std::string target = arg.substr(std::strlen("--connect="));
      const size_t colon = target.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--connect wants HOST:PORT, got '%s'\n",
                     target.c_str());
        std::exit(2);
      }
      flags.connect_host = target.substr(0, colon);
      flags.connect_port =
          static_cast<uint16_t>(std::atoi(target.c_str() + colon + 1));
      flags.external = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  if (flags.clients < 1 || flags.requests < 1 || flags.pipeline < 1) {
    std::fprintf(stderr,
                 "--clients/--requests/--pipeline must be positive\n");
    std::exit(2);
  }
  return flags;
}

std::string Fmt17(double v) { return StrFormat("%.17g", v); }

/// "OK k1=v1 k2=v2 ..." -> {k1: v1, ...}.
std::map<std::string, std::string> ParseKeyValues(const std::string& line) {
  std::map<std::string, std::string> out;
  size_t pos = 0;
  while (pos < line.size()) {
    size_t end = line.find(' ', pos);
    if (end == std::string::npos) end = line.size();
    const std::string token = line.substr(pos, end - pos);
    const size_t eq = token.find('=');
    if (eq != std::string::npos) {
      out[token.substr(0, eq)] = token.substr(eq + 1);
    }
    pos = end + 1;
  }
  return out;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

/// One client's request schedule plus what came back.
struct ClientRun {
  std::vector<double> ping_latencies_ms;
  std::vector<double> eval_latencies_ms;
  std::vector<std::string> eval_replies;  // terminal lines, in send order
  std::vector<size_t> eval_ckpts;         // ckpt index of each reply above
  int errors = 0;
  int shed = 0;  // `ERR busy` replies: backpressure, not protocol errors
  std::string failure;  // transport-level failure, "" when clean
};

/// Drives one connection: `requests` commands with up to `pipeline` in
/// flight, strict in-order replies (the protocol guarantees it).
ClientRun RunClient(const std::string& host, uint16_t port,
                    const LoadFlags& flags,
                    const std::vector<std::string>& ckpts) {
  ClientRun run;
  auto client_or = LineClient::Connect(host, port, /*recv_timeout_s=*/120.0);
  if (!client_or.ok()) {
    run.failure = client_or.status().ToString();
    return run;
  }
  LineClient client = std::move(client_or).ValueOrDie();
  auto banner = client.ReadLine();
  if (!banner.ok() || banner.ValueOrDie().rfind("KGEVAL ", 0) != 0) {
    run.failure = banner.ok() ? "bad banner: " + banner.ValueOrDie()
                              : banner.status().ToString();
    return run;
  }

  struct Pending {
    bool is_eval = false;
    size_t ckpt = 0;
    double sent_s = 0.0;
  };
  std::vector<Pending> pending;
  WallTimer clock;
  int sent = 0, completed = 0;
  while (completed < flags.requests) {
    while (sent < flags.requests &&
           pending.size() < static_cast<size_t>(flags.pipeline)) {
      // 1 EVAL per 4 requests keeps the worker pool busy while the PINGs
      // and STATS measure control-plane responsiveness under that load.
      const int slot = sent % 4;
      std::string line;
      Pending p;
      if (slot == 0) {
        p.ckpt = static_cast<size_t>(sent / 4) % ckpts.size();
        line = "EVAL " + ckpts[p.ckpt];
        p.is_eval = true;
      } else if (slot == 2) {
        line = "STATS";
      } else {
        line = "PING";
      }
      p.sent_s = clock.Seconds();
      Status st = client.SendLine(line);
      if (!st.ok()) {
        run.failure = st.ToString();
        return run;
      }
      pending.push_back(p);
      ++sent;
    }
    auto reply = client.ReadReply();
    if (!reply.ok()) {
      run.failure = reply.status().ToString();
      return run;
    }
    const double now_s = clock.Seconds();
    const Pending p = pending.front();
    pending.erase(pending.begin());
    const std::string& terminal = reply.ValueOrDie().back();
    // A shed (`ERR busy`) is the server bounding its backlog, not a
    // protocol violation: counted separately, excluded from the parity
    // set (there is no metric reply to compare), and it does not trip
    // the zero-errors gate.
    const bool is_shed = LineClient::ErrorCode(terminal) == "busy";
    if (is_shed) {
      ++run.shed;
    } else if (terminal.rfind("ERR", 0) == 0) {
      ++run.errors;
    }
    const double latency_ms = (now_s - p.sent_s) * 1e3;
    if (p.is_eval) {
      if (!is_shed) {
        run.eval_latencies_ms.push_back(latency_ms);
        run.eval_replies.push_back(terminal);
        run.eval_ckpts.push_back(p.ckpt);
      }
    } else {
      run.ping_latencies_ms.push_back(latency_ms);
    }
    ++completed;
  }
  client.SendLine("QUIT");
  return run;
}

struct BenchResult {
  int clients = 0;
  int requests_per_client = 0;
  int pipeline = 0;
  double wall_s = 0.0;
  double req_per_s = 0.0;
  double ping_p50_ms = 0.0, ping_p99_ms = 0.0;
  double eval_p50_ms = 0.0, eval_p99_ms = 0.0;
  int64_t evals = 0;
  int errors = 0;
  int shed = 0;
  bool parity = false;
};

void WriteJson(const BenchResult& r) {
  const char* path = "BENCH_service_load.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(
      f,
      "{\n  \"service_load\": {\"clients\": %d, \"requests_per_client\": %d, "
      "\"pipeline\": %d, \"wall_s\": %.6f, \"req_per_s\": %.2f, "
      "\"ping_p50_ms\": %.3f, \"ping_p99_ms\": %.3f, \"eval_p50_ms\": %.3f, "
      "\"eval_p99_ms\": %.3f, \"evals\": %lld, \"protocol_errors\": %d, "
      "\"shed\": %d, \"parity\": %s}\n}\n",
      r.clients, r.requests_per_client, r.pipeline, r.wall_s, r.req_per_s,
      r.ping_p50_ms, r.ping_p99_ms, r.eval_p50_ms, r.eval_p99_ms,
      static_cast<long long>(r.evals), r.errors, r.shed,
      r.parity ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  LoadFlags flags = ExtractLoadFlags(&argc, argv);
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  if (flags.external && args.paper_scale) {
    std::fprintf(stderr,
                 "--connect assumes the server's default (scaled) LOAD; "
                 "--paper-scale would break the parity gate\n");
    return 2;
  }
  std::string preset = "codex-s";
  if (!args.only_dataset.empty()) preset = args.only_dataset;
  if (args.fast) flags.requests = std::max(4, flags.requests / 2);
  const int32_t epochs = args.epochs > 0 ? args.epochs : (args.fast ? 3 : 6);

  // Producer side: a short training run's snapshots are the EVAL targets.
  // The server process reads these paths, so they must be on a filesystem
  // it shares — CI runs both on one runner.
  const SynthOutput synth = bench::LoadPreset(preset, args);
  const Dataset& dataset = synth.dataset;
  const std::string ckpt_dir =
      bench::MakeScratchDir("kgeval_bench_service_load");
  {
    ModelOptions model_options;
    model_options.dim = 32;
    model_options.adam.learning_rate = 3e-3f;
    model_options.seed = 11;
    auto model = CreateModel(ModelType::kComplEx, dataset.num_entities(),
                             dataset.num_relations(), model_options)
                     .ValueOrDie();
    TrainerOptions trainer_options;
    trainer_options.epochs = epochs;
    trainer_options.negatives_per_positive = 8;
    trainer_options.checkpoint_dir = ckpt_dir;
    Trainer trainer(&dataset, trainer_options);
    KGEVAL_CHECK(trainer.Train(model.get()).ok());
  }
  std::vector<std::string> ckpts;
  for (int32_t epoch = 0; epoch < epochs; ++epoch) {
    ckpts.push_back(CheckpointPath(ckpt_dir, epoch, epochs));
  }

  // Server side: in-process by default, external via --connect.
  std::unique_ptr<EvalServer> server;
  std::string host = flags.connect_host;
  uint16_t port = flags.connect_port;
  if (!flags.external) {
    EvalServer::Options server_options;
    server_options.service.scale =
        args.paper_scale ? PresetScale::kPaper : PresetScale::kScaled;
    auto started = EvalServer::Start(server_options);
    KGEVAL_CHECK(started.ok());
    server = std::move(started).ValueOrDie();
    host = server->host();
    port = server->port();
  }

  bench::PrintHeader(StrFormat(
      "Service load: %d pipelined clients x %d requests (window %d) against "
      "%s:%u — %s, %d checkpoints, %zu worker threads",
      flags.clients, flags.requests, flags.pipeline, host.c_str(), port,
      preset.c_str(), epochs, GlobalThreadPool()->num_threads()));

  // One control connection LOADs the dataset every client will EVAL on.
  {
    auto control = LineClient::Connect(host, port);
    KGEVAL_CHECK(control.ok());
    LineClient& client = control.ValueOrDie();
    KGEVAL_CHECK(client.ReadLine().ok());  // banner
    KGEVAL_CHECK(client.SendLine("LOAD " + preset + " valid").ok());
    auto reply = client.ReadReply();
    KGEVAL_CHECK(reply.ok());
    const std::string& line = reply.ValueOrDie().back();
    if (line.rfind("OK", 0) != 0) {
      std::fprintf(stderr, "LOAD failed: %s\n", line.c_str());
      std::filesystem::remove_all(ckpt_dir);
      return 1;
    }
    std::printf("%s\n", line.c_str());
    client.SendLine("QUIT");
  }

  // Load phase: all clients at once.
  std::vector<ClientRun> runs(static_cast<size_t>(flags.clients));
  WallTimer wall;
  {
    std::vector<std::thread> threads;
    threads.reserve(runs.size());
    for (size_t i = 0; i < runs.size(); ++i) {
      threads.emplace_back([&, i] {
        runs[i] = RunClient(host, port, flags, ckpts);
      });
    }
    for (auto& t : threads) t.join();
  }
  const double wall_s = wall.Seconds();

  BenchResult result;
  result.clients = flags.clients;
  result.requests_per_client = flags.requests;
  result.pipeline = flags.pipeline;
  result.wall_s = wall_s;
  std::vector<double> ping_ms, eval_ms;
  std::vector<std::string> served;  // every EVAL terminal line, all clients
  bool transport_ok = true;
  for (const ClientRun& run : runs) {
    if (!run.failure.empty()) {
      std::fprintf(stderr, "client failed: %s\n", run.failure.c_str());
      transport_ok = false;
    }
    result.errors += run.errors;
    result.shed += run.shed;
    ping_ms.insert(ping_ms.end(), run.ping_latencies_ms.begin(),
                   run.ping_latencies_ms.end());
    eval_ms.insert(eval_ms.end(), run.eval_latencies_ms.begin(),
                   run.eval_latencies_ms.end());
    served.insert(served.end(), run.eval_replies.begin(),
                  run.eval_replies.end());
  }
  const int64_t total_requests =
      static_cast<int64_t>(ping_ms.size() + eval_ms.size());
  result.req_per_s =
      wall_s > 0.0 ? static_cast<double>(total_requests) / wall_s : 0.0;
  result.ping_p50_ms = Percentile(ping_ms, 0.50);
  result.ping_p99_ms = Percentile(ping_ms, 0.99);
  result.eval_p50_ms = Percentile(eval_ms, 0.50);
  result.eval_p99_ms = Percentile(eval_ms, 0.99);
  result.evals = static_cast<int64_t>(eval_ms.size());

  // Parity gate: rebuild the exact session LOAD built (same preset, same
  // ServiceFrameworkOptions, same seed => same first pool draw), evaluate
  // each checkpoint directly, and demand the served metric fields are the
  // same %.17g bytes. eval_s is wall time and is excluded by construction
  // (only the listed fields are compared).
  bool parity = transport_ok && result.errors == 0;
  {
    const FilterIndex filter(dataset);
    auto session =
        EvalSession::Create(&dataset, &filter,
                            EvalService::ServiceFrameworkOptions(),
                            Split::kValid)
            .ValueOrDie();
    std::map<std::string, std::string> expected;  // ckpt path -> "m|ci|..."
    for (const std::string& path : ckpts) {
      auto direct = session->framework().EstimateCheckpointOnPools(
          path, filter, Split::kValid, session->pools());
      KGEVAL_CHECK(direct.ok());
      const SampledEvalResult& r = direct.ValueOrDie();
      expected[path] = StrFormat(
          "%s|%s|%s|%s|%s|%lld|%lld", Fmt17(r.metrics.mrr).c_str(),
          Fmt17(r.ci.mrr).c_str(), Fmt17(r.metrics.hits1).c_str(),
          Fmt17(r.metrics.hits3).c_str(), Fmt17(r.metrics.hits10).c_str(),
          static_cast<long long>(r.metrics.num_queries),
          static_cast<long long>(r.scored_candidates));
    }
    // Each recorded reply carries the checkpoint index it was sent for
    // (shed EVALs recorded nothing), so the comparison survives gaps.
    for (const ClientRun& run : runs) {
      for (size_t i = 0; parity && i < run.eval_replies.size(); ++i) {
        const std::string& line = run.eval_replies[i];
        auto kv = ParseKeyValues(line);
        const std::string got = kv["mrr"] + "|" + kv["ci"] + "|" +
                                kv["hits1"] + "|" + kv["hits3"] + "|" +
                                kv["hits10"] + "|" + kv["queries"] + "|" +
                                kv["scored"];
        const std::string& want = expected[ckpts[run.eval_ckpts[i]]];
        if (got != want) {
          std::printf("PARITY MISMATCH\n  served: %s\n  direct: %s\n",
                      got.c_str(), want.c_str());
          parity = false;
        }
      }
    }
  }
  result.parity = parity;

  TextTable table({"Metric", "Value"});
  table.AddRow({"requests", std::to_string(total_requests)});
  table.AddRow({"throughput (req/s)", bench::F(result.req_per_s, 1)});
  table.AddRow({"PING/STATS p50 (ms)", bench::F(result.ping_p50_ms, 3)});
  table.AddRow({"PING/STATS p99 (ms)", bench::F(result.ping_p99_ms, 3)});
  table.AddRow({"EVAL p50 (ms)", bench::F(result.eval_p50_ms, 1)});
  table.AddRow({"EVAL p99 (ms)", bench::F(result.eval_p99_ms, 1)});
  table.AddRow({"protocol errors", std::to_string(result.errors)});
  table.AddRow({"shed (ERR busy)", std::to_string(result.shed)});
  table.AddRow({"served-vs-direct parity",
                parity ? "byte-identical" : "PARITY MISMATCH"});
  std::printf("%s", table.ToString().c_str());

  bench::PrintNote(StrFormat(
      "%lld EVALs byte-checked against direct EstimateCheckpointOnPools on "
      "a reconstructed session; control-plane p99 %.3fms while evaluations "
      "held the worker pool",
      static_cast<long long>(result.evals), result.ping_p99_ms));
  if (args.json) WriteJson(result);

  if (server != nullptr) server->Shutdown();
  std::filesystem::remove_all(ckpt_dir);
  return (parity && transport_ok && result.errors == 0) ? 0 : 1;
}

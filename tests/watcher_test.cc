// Tests for the WATCH verb's directory poller: epoch-order listing,
// at-most-once delivery, files landing between polls, and the interplay
// with CheckpointPath's zero padding.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "models/trainer.h"
#include "service/checkpoint_watcher.h"
#include "tests/temp_dir.h"

namespace kgeval {
namespace {

void Touch(const std::string& path, const std::string& contents = "x") {
  std::ofstream out(path, std::ios::binary);
  out << contents;
}

TEST(CheckpointEpochKeyTest, ParsesLastDigitRunInStem) {
  EXPECT_EQ(CheckpointEpochKey("epoch_00012.ckpt"), 12);
  EXPECT_EQ(CheckpointEpochKey("epoch_100000.ckpt"), 100000);
  // The *last* digit run in the stem wins, not the first.
  EXPECT_EQ(CheckpointEpochKey("run3_epoch_7.ckpt"), 7);
  // The extension's digits (if any) are not the stem's.
  EXPECT_EQ(CheckpointEpochKey("epoch_5.v2"), 5);
}

TEST(CheckpointEpochKeyTest, NamesWithoutDigitsSortLast) {
  EXPECT_EQ(CheckpointEpochKey("final.ckpt"), INT64_MAX);
  EXPECT_LT(CheckpointEpochKey("epoch_99999.ckpt"),
            CheckpointEpochKey("final.ckpt"));
}

TEST(ListCheckpointFilesTest, SortsNumericallyNotLexicographically) {
  TempDir dir;
  // Deliberately created out of order, and with epoch 100000 — which
  // lexicographically sorts *before* epoch_00002 under fixed-width-5
  // padding. Numeric epoch order must win.
  Touch(dir.path() + "/epoch_100000.ckpt");
  Touch(dir.path() + "/epoch_00002.ckpt");
  Touch(dir.path() + "/epoch_00010.ckpt");
  auto files = ListCheckpointFiles(dir.path());
  ASSERT_TRUE(files.ok()) << files.status().ToString();
  EXPECT_EQ(files.ValueOrDie(),
            (std::vector<std::string>{dir.path() + "/epoch_00002.ckpt",
                                      dir.path() + "/epoch_00010.ckpt",
                                      dir.path() + "/epoch_100000.ckpt"}));
}

TEST(ListCheckpointFilesTest, SkipsTmpFilesAndOtherExtensions) {
  TempDir dir;
  Touch(dir.path() + "/epoch_00001.ckpt");
  // An in-progress write the Trainer has not yet renamed into place.
  Touch(dir.path() + "/epoch_00002.ckpt.tmp");
  Touch(dir.path() + "/notes.txt");
  auto files = ListCheckpointFiles(dir.path());
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(files.ValueOrDie(),
            (std::vector<std::string>{dir.path() + "/epoch_00001.ckpt"}));
}

TEST(ListCheckpointFilesTest, MissingDirectoryIsAnError) {
  TempDir dir;
  auto files = ListCheckpointFiles(dir.path() + "/nope");
  EXPECT_FALSE(files.ok());
}

TEST(CheckpointWatcherTest, DeliversEachFileExactlyOnce) {
  TempDir dir;
  Touch(dir.path() + "/epoch_00000.ckpt");
  Touch(dir.path() + "/epoch_00001.ckpt");
  CheckpointWatcher watcher(dir.path());
  auto first = watcher.Poll();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.ValueOrDie().size(), 2u);
  EXPECT_EQ(watcher.delivered(), 2u);
  // Nothing new: the same files must not be re-delivered.
  auto second = watcher.Poll();
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.ValueOrDie().empty());
}

TEST(CheckpointWatcherTest, PicksUpFilesLandingBetweenPolls) {
  TempDir dir;
  Touch(dir.path() + "/epoch_00000.ckpt");
  CheckpointWatcher watcher(dir.path());
  ASSERT_EQ(watcher.Poll().ValueOrDie().size(), 1u);
  // The trainer publishes two more snapshots mid-watch.
  Touch(dir.path() + "/epoch_00001.ckpt");
  Touch(dir.path() + "/epoch_00002.ckpt");
  auto fresh = watcher.Poll();
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.ValueOrDie(),
            (std::vector<std::string>{dir.path() + "/epoch_00001.ckpt",
                                      dir.path() + "/epoch_00002.ckpt"}));
}

TEST(CheckpointWatcherTest, ClaimedPathStaysClaimedEvenIfUnreadable) {
  // The service reports a truncated checkpoint as ITEM ... ERR and moves
  // on; the watcher's contract backing that is: delivery is by filename,
  // once, regardless of what evaluating the file later does.
  TempDir dir;
  Touch(dir.path() + "/epoch_00000.ckpt", "garbage, not a checkpoint");
  CheckpointWatcher watcher(dir.path());
  ASSERT_EQ(watcher.Poll().ValueOrDie().size(), 1u);
  EXPECT_TRUE(watcher.Poll().ValueOrDie().empty());
  // Even after the file is replaced with valid contents under the same
  // name — at-most-once is by name, not by content.
  Touch(dir.path() + "/epoch_00000.ckpt", "different bytes");
  EXPECT_TRUE(watcher.Poll().ValueOrDie().empty());
}

TEST(CheckpointWatcherTest, DirectoryErrorClaimsNothing) {
  TempDir dir;
  const std::string sub = dir.path() + "/ckpts";
  CheckpointWatcher watcher(sub);
  // Directory does not exist yet: an error, and no state change.
  EXPECT_FALSE(watcher.Poll().ok());
  EXPECT_EQ(watcher.delivered(), 0u);
  // Once it appears, everything in it is delivered (nothing was claimed
  // during the failed polls).
  std::filesystem::create_directories(sub);
  Touch(sub + "/epoch_00000.ckpt");
  auto fresh = watcher.Poll();
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.ValueOrDie().size(), 1u);
}

TEST(CheckpointPathTest, PadWidthFollowsTotalEpochs) {
  EXPECT_EQ(CheckpointPath("d", 7), "d/epoch_00007.ckpt");
  EXPECT_EQ(CheckpointPath("d", 7, 100), "d/epoch_00007.ckpt");
  // A run whose largest epoch index needs six digits pads to six
  // everywhere, keeping the directory's lexicographic order equal to
  // epoch order.
  EXPECT_EQ(CheckpointPath("d", 7, 200000), "d/epoch_000007.ckpt");
  EXPECT_EQ(CheckpointPath("d", 199999, 200000), "d/epoch_199999.ckpt");
}

}  // namespace
}  // namespace kgeval

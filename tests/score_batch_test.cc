#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/framework.h"
#include "core/sampled_evaluator.h"
#include "core/samplers.h"
#include "eval/auc.h"
#include "eval/full_evaluator.h"
#include "models/kge_model.h"
#include "synth/config.h"
#include "synth/generator.h"
#include "util/rng.h"

namespace kgeval {
namespace {

constexpr ModelType kAllModels[] = {
    ModelType::kTransE, ModelType::kDistMult, ModelType::kComplEx,
    ModelType::kRescal, ModelType::kRotatE,   ModelType::kTuckEr,
    ModelType::kConvE,  ModelType::kTComplEx};

ModelOptions SmallOptions() {
  ModelOptions options;
  options.dim = 16;
  options.seed = 7;
  return options;
}

class ScoreBatchTest : public ::testing::TestWithParam<ModelType> {
 protected:
  std::unique_ptr<KgeModel> Make() {
    return CreateModel(GetParam(), /*num_entities=*/40, /*num_relations=*/6,
                       SmallOptions())
        .ValueOrDie();
  }
};

TEST_P(ScoreBatchTest, MatchesPerQueryScoreCandidates) {
  auto model = Make();
  // Unsorted candidates with a duplicate: ScoreBatch makes no ordering
  // assumptions about the pool.
  const std::vector<int32_t> candidates = {11, 3, 27, 3, 0, 39, 18};
  const std::vector<int32_t> anchors = {0, 5, 5, 17, 39, 2, 8, 21, 30};
  const size_t n = candidates.size();
  const size_t q = anchors.size();
  std::vector<float> batched(q * n), scalar(n);
  for (int32_t relation : {0, 5}) {
    for (QueryDirection dir :
         {QueryDirection::kTail, QueryDirection::kHead}) {
      model->ScoreBatch(anchors.data(), q, relation, dir, candidates.data(),
                        n, batched.data());
      for (size_t i = 0; i < q; ++i) {
        model->ScoreCandidates(anchors[i], relation, dir, candidates.data(),
                               n, scalar.data());
        for (size_t c = 0; c < n; ++c) {
          EXPECT_NEAR(batched[i * n + c], scalar[c], 1e-5)
              << ModelTypeName(GetParam()) << " query " << i << " candidate "
              << c;
        }
      }
    }
  }
}

TEST_P(ScoreBatchTest, ScorePairsMatchesSingleCandidateCalls) {
  auto model = Make();
  const std::vector<int32_t> anchors = {1, 4, 4, 19, 33, 0};
  const std::vector<int32_t> candidates = {7, 7, 2, 38, 0, 12};
  std::vector<float> batched(anchors.size());
  for (int32_t relation : {2, 4}) {
    for (QueryDirection dir :
         {QueryDirection::kTail, QueryDirection::kHead}) {
      model->ScorePairs(anchors.data(), candidates.data(), anchors.size(),
                        /*candidates_per_query=*/1, relation, dir,
                        batched.data());
      for (size_t i = 0; i < anchors.size(); ++i) {
        float scalar = 0.0f;
        model->ScoreCandidates(anchors[i], relation, dir, &candidates[i], 1,
                               &scalar);
        EXPECT_NEAR(batched[i], scalar, 1e-5)
            << ModelTypeName(GetParam()) << " pair " << i;
      }
    }
  }
}

TEST_P(ScoreBatchTest, ScorePairsMultiCandidateMatchesExactly) {
  auto model = Make();
  const std::vector<int32_t> anchors = {1, 4, 19, 0};
  // Three candidates per query, with repeats within and across queries.
  const std::vector<int32_t> candidates = {7, 7, 2,  38, 0, 12,
                                           3, 9, 39, 7,  1, 1};
  constexpr size_t kPer = 3;
  std::vector<float> fused(anchors.size() * kPer);
  std::vector<float> scalar(kPer);
  for (int32_t relation : {0, 3}) {
    for (QueryDirection dir :
         {QueryDirection::kTail, QueryDirection::kHead}) {
      model->ScorePairs(anchors.data(), candidates.data(), anchors.size(),
                        kPer, relation, dir, fused.data());
      for (size_t i = 0; i < anchors.size(); ++i) {
        model->ScoreCandidates(anchors[i], relation, dir,
                               candidates.data() + i * kPer, kPer,
                               scalar.data());
        for (size_t j = 0; j < kPer; ++j) {
          EXPECT_EQ(fused[i * kPer + j], scalar[j])
              << ModelTypeName(GetParam()) << " query " << i << " candidate "
              << j;
        }
      }
    }
  }
}

TEST_P(ScoreBatchTest, PreparedScoreBlockMatchesScalarExactly) {
  auto model = Make();
  // Unsorted pool with duplicate candidates: PrepareCandidates must record
  // the unsortedness and ScoreBlock must keep duplicate columns identical.
  const std::vector<int32_t> candidates = {11, 3, 27, 3, 0, 39, 18, 3};
  const std::vector<int32_t> anchors = {0, 5, 5, 17, 39, 2};
  const std::vector<int32_t> truths = {2, 9, 9, 0, 39, 24};
  const size_t n = candidates.size();
  const size_t q = anchors.size();
  CandidateBlock block;
  model->PrepareCandidates(candidates.data(), n, &block);
  EXPECT_EQ(block.ids, candidates);
  EXPECT_FALSE(block.sorted);
  EXPECT_TRUE(block.prepared);
  std::vector<float> pool_scores(q * n), truth_scores(q);
  std::vector<float> scalar(n), pair(1);
  for (int32_t relation : {0, 5}) {
    for (QueryDirection dir :
         {QueryDirection::kTail, QueryDirection::kHead}) {
      model->ScoreBlock(anchors.data(), truths.data(), q, relation, dir,
                        block, pool_scores.data(), truth_scores.data());
      for (size_t i = 0; i < q; ++i) {
        model->ScoreCandidates(anchors[i], relation, dir, candidates.data(),
                               n, scalar.data());
        for (size_t c = 0; c < n; ++c) {
          // Bit-identical, not approximately equal: the prepared kernels
          // accumulate in exactly the scalar order.
          EXPECT_EQ(pool_scores[i * n + c], scalar[c])
              << ModelTypeName(GetParam()) << " query " << i << " candidate "
              << c;
        }
        model->ScoreCandidates(anchors[i], relation, dir, &truths[i], 1,
                               pair.data());
        EXPECT_EQ(truth_scores[i], pair[0])
            << ModelTypeName(GetParam()) << " truth " << i;
      }
    }
  }
}

TEST_P(ScoreBatchTest, PreparedScoreBlockSkipsNullOutputs) {
  auto model = Make();
  const std::vector<int32_t> candidates = {0, 5, 39};
  const std::vector<int32_t> anchors = {3, 12};
  const std::vector<int32_t> truths = {8, 0};
  CandidateBlock block;
  model->PrepareCandidates(candidates.data(), candidates.size(), &block);
  EXPECT_TRUE(block.sorted);
  // Pool-only and truth-only calls must match the fused call's outputs.
  std::vector<float> fused_pool(anchors.size() * candidates.size());
  std::vector<float> fused_truth(anchors.size());
  model->ScoreBlock(anchors.data(), truths.data(), anchors.size(), 1,
                    QueryDirection::kTail, block, fused_pool.data(),
                    fused_truth.data());
  std::vector<float> only_pool(fused_pool.size());
  model->ScoreBlock(anchors.data(), nullptr, anchors.size(), 1,
                    QueryDirection::kTail, block, only_pool.data(), nullptr);
  std::vector<float> only_truth(fused_truth.size());
  model->ScoreBlock(anchors.data(), truths.data(), anchors.size(), 1,
                    QueryDirection::kTail, block, nullptr, only_truth.data());
  EXPECT_EQ(fused_pool, only_pool);
  EXPECT_EQ(fused_truth, only_truth);
}

TEST_P(ScoreBatchTest, UnpreparedBlockFallsBackToBatchedPath) {
  auto model = Make();
  const std::vector<int32_t> candidates = {11, 3, 27};
  const std::vector<int32_t> anchors = {0, 5};
  const std::vector<int32_t> truths = {2, 9};
  // A block the base class filled in (ids only, no gathered layout).
  CandidateBlock block;
  block.ids = candidates;
  std::vector<float> pool_scores(anchors.size() * candidates.size());
  std::vector<float> truth_scores(anchors.size());
  model->ScoreBlock(anchors.data(), truths.data(), anchors.size(), 0,
                    QueryDirection::kTail, block, pool_scores.data(),
                    truth_scores.data());
  std::vector<float> want_pool(pool_scores.size());
  model->ScoreBatch(anchors.data(), anchors.size(), 0, QueryDirection::kTail,
                    candidates.data(), candidates.size(), want_pool.data());
  EXPECT_EQ(pool_scores, want_pool);
  std::vector<float> want_truth(truth_scores.size());
  model->ScorePairs(anchors.data(), truths.data(), anchors.size(), 1, 0,
                    QueryDirection::kTail, want_truth.data());
  EXPECT_EQ(truth_scores, want_truth);
}

TEST_P(ScoreBatchTest, EmptyBatchAndEmptyPoolAreNoops) {
  auto model = Make();
  const int32_t candidate = 3;
  const int32_t anchor = 1;
  // No queries: must not touch out.
  model->ScoreBatch(nullptr, 0, 0, QueryDirection::kTail, &candidate, 1,
                    nullptr);
  // No candidates: must not touch out.
  model->ScoreBatch(&anchor, 1, 0, QueryDirection::kTail, nullptr, 0,
                    nullptr);
}

TEST_P(ScoreBatchTest, PreparedPoolLargerThanOneEntityTile) {
  // A pool wider than the full evaluator's default 32768-entity tile,
  // scored through one prepared block: exercises the gather/transpose and
  // kernels well past the usual tile width.
  auto model = Make();
  constexpr size_t kPool = 40000;
  std::vector<int32_t> candidates(kPool);
  for (size_t c = 0; c < kPool; ++c) {
    candidates[c] = static_cast<int32_t>((c * 7) % 40);  // Many duplicates.
  }
  const std::vector<int32_t> anchors = {4, 31};
  const std::vector<int32_t> truths = {9, 0};
  CandidateBlock block;
  model->PrepareCandidates(candidates.data(), kPool, &block);
  EXPECT_FALSE(block.sorted);
  std::vector<float> pool_scores(anchors.size() * kPool);
  std::vector<float> truth_scores(anchors.size());
  model->ScoreBlock(anchors.data(), truths.data(), anchors.size(), 2,
                    QueryDirection::kTail, block, pool_scores.data(),
                    truth_scores.data());
  std::vector<float> scalar(kPool);
  for (size_t i = 0; i < anchors.size(); ++i) {
    model->ScoreCandidates(anchors[i], 2, QueryDirection::kTail,
                           candidates.data(), kPool, scalar.data());
    for (size_t c = 0; c < kPool; ++c) {
      ASSERT_EQ(pool_scores[i * kPool + c], scalar[c])
          << ModelTypeName(GetParam()) << " query " << i << " candidate "
          << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ScoreBatchTest,
                         ::testing::ValuesIn(kAllModels),
                         [](const ::testing::TestParamInfo<ModelType>& info) {
                           return ModelTypeName(info.param);
                         });

Dataset SynthDataset() {
  SynthConfig config;
  config.num_entities = 500;
  config.num_relations = 12;
  config.num_types = 8;
  config.num_train = 6000;
  config.num_valid = 400;
  config.num_test = 400;
  config.seed = 42;
  return GenerateDataset(config).ValueOrDie().dataset;
}

TEST(SlotMajorEvaluatorTest, RanksIdenticalToScalarTripleMajorOrder) {
  const Dataset dataset = SynthDataset();
  const FilterIndex filter(dataset);
  Rng rng(13);
  const SampledCandidates pools = DrawCandidates(
      SamplingStrategy::kRandom, nullptr, dataset.num_entities(),
      /*n_s=*/60, NeededSlots(dataset, Split::kTest),
      2 * dataset.num_relations(), &rng);
  for (ModelType type : kAllModels) {
    auto model = CreateModel(type, dataset.num_entities(),
                             dataset.num_relations(), SmallOptions())
                     .ValueOrDie();
    // Default engine: pools prepared once + fused ScoreBlock.
    const SampledEvalResult prepared =
        EvaluateSampled(*model, dataset, filter, Split::kTest, pools);
    // PR 1 engine: per-block gather through ScoreBatch + ScorePairs.
    SampledEvalOptions unfused;
    unfused.prepared_pools = false;
    const SampledEvalResult batched = EvaluateSampled(
        *model, dataset, filter, Split::kTest, pools, unfused);
    const SampledEvalResult scalar =
        EvaluateSampledScalar(*model, dataset, filter, Split::kTest, pools);
    ASSERT_EQ(prepared.ranks.size(), scalar.ranks.size());
    for (size_t i = 0; i < prepared.ranks.size(); ++i) {
      EXPECT_EQ(prepared.ranks[i], scalar.ranks[i])
          << ModelTypeName(type) << " query " << i;
    }
    EXPECT_EQ(prepared.ranks, batched.ranks) << ModelTypeName(type);
    EXPECT_EQ(prepared.scored_candidates, scalar.scored_candidates);
    EXPECT_DOUBLE_EQ(prepared.metrics.mrr, scalar.metrics.mrr);
  }
}

TEST(SlotMajorEvaluatorTest, MaxTriplesPrefixMatchesScalar) {
  const Dataset dataset = SynthDataset();
  const FilterIndex filter(dataset);
  Rng rng(29);
  const SampledCandidates pools = DrawCandidates(
      SamplingStrategy::kRandom, nullptr, dataset.num_entities(),
      /*n_s=*/40, NeededSlots(dataset, Split::kTest),
      2 * dataset.num_relations(), &rng);
  auto model = CreateModel(ModelType::kDistMult, dataset.num_entities(),
                           dataset.num_relations(), SmallOptions())
                   .ValueOrDie();
  SampledEvalOptions options;
  options.max_triples = 57;
  const SampledEvalResult batched = EvaluateSampled(
      *model, dataset, filter, Split::kTest, pools, options);
  const SampledEvalResult scalar = EvaluateSampledScalar(
      *model, dataset, filter, Split::kTest, pools, options);
  EXPECT_EQ(batched.ranks, scalar.ranks);
  EXPECT_EQ(batched.ranks.size(), 2u * 57u);
}

TEST(SlotMajorEvaluatorTest, FullRankingUsesBatchedTilingConsistently) {
  // The tiled slot-major full evaluator must agree with a direct ScoreAll
  // walk; DistMult + RotatE cover the dot-product and distance kernels.
  const Dataset dataset = SynthDataset();
  const FilterIndex filter(dataset);
  for (ModelType type : {ModelType::kDistMult, ModelType::kRotatE}) {
    auto model = CreateModel(type, dataset.num_entities(),
                             dataset.num_relations(), SmallOptions())
                     .ValueOrDie();
    FullEvalOptions options;
    options.max_triples = 40;
    const FullEvalResult result =
        EvaluateFullRanking(*model, dataset, filter, Split::kTest, options);
    std::vector<float> scores(dataset.num_entities());
    for (int64_t i = 0; i < options.max_triples; ++i) {
      const Triple& triple = dataset.test()[i];
      for (QueryDirection dir :
           {QueryDirection::kTail, QueryDirection::kHead}) {
        const bool tail_dir = dir == QueryDirection::kTail;
        const int32_t anchor = tail_dir ? triple.head : triple.tail;
        const int32_t truth = tail_dir ? triple.tail : triple.head;
        model->ScoreAll(anchor, triple.relation, dir, scores.data());
        const std::vector<int32_t>* answers = filter.AnswersFor(triple, dir);
        ASSERT_NE(answers, nullptr);
        int64_t higher = 0, tied = 0;
        size_t cursor = 0;
        for (int32_t e = 0; e < dataset.num_entities(); ++e) {
          while (cursor < answers->size() && (*answers)[cursor] < e) {
            ++cursor;
          }
          if (cursor < answers->size() && (*answers)[cursor] == e) continue;
          if (scores[e] > scores[truth]) {
            ++higher;
          } else if (scores[e] == scores[truth]) {
            ++tied;
          }
        }
        EXPECT_EQ(result.ranks[i * 2 + (tail_dir ? 0 : 1)],
                  RankFromCounts(higher, tied, options.tie))
            << ModelTypeName(type) << " triple " << i;
      }
    }
  }
}

TEST(SlotMajorEvaluatorTest, SmallEntityTilesMatchDefaultTile) {
  // Forcing many small prepared tiles must not change a single rank: the
  // per-tile kernels are bit-identical and the filtered counting walk is
  // tile-order independent.
  const Dataset dataset = SynthDataset();
  const FilterIndex filter(dataset);
  for (ModelType type : {ModelType::kDistMult, ModelType::kConvE}) {
    auto model = CreateModel(type, dataset.num_entities(),
                             dataset.num_relations(), SmallOptions())
                     .ValueOrDie();
    FullEvalOptions defaults;
    defaults.max_triples = 30;
    const FullEvalResult one_tile =
        EvaluateFullRanking(*model, dataset, filter, Split::kTest, defaults);
    FullEvalOptions tiny = defaults;
    tiny.entity_tile = 64;  // 500 entities -> 8 tiles.
    const FullEvalResult many_tiles =
        EvaluateFullRanking(*model, dataset, filter, Split::kTest, tiny);
    EXPECT_EQ(one_tile.ranks, many_tiles.ranks) << ModelTypeName(type);
  }
}

TEST(ScoreTriplesTest, MatchesScoreTriple) {
  const Dataset dataset = SynthDataset();
  auto model = CreateModel(ModelType::kComplEx, dataset.num_entities(),
                           dataset.num_relations(), SmallOptions())
                   .ValueOrDie();
  const size_t n = 100;
  std::vector<float> batched(n);
  ScoreTriples(*model, dataset.test().data(), n, batched.data());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(batched[i], model->ScoreTriple(dataset.test()[i]), 1e-5)
        << "triple " << i;
  }
}

TEST(ScoreTriplesTest, WithNegativesMatchesIndependentPasses) {
  const Dataset dataset = SynthDataset();
  const size_t n = 60;
  constexpr size_t kNeg = 2;
  for (ModelType type : kAllModels) {
    auto model = CreateModel(type, dataset.num_entities(),
                             dataset.num_relations(), SmallOptions())
                     .ValueOrDie();
    // Deterministic tail corruptions sharing each positive's head/relation.
    std::vector<Triple> negatives;
    negatives.reserve(n * kNeg);
    for (size_t i = 0; i < n; ++i) {
      const Triple& t = dataset.test()[i];
      for (size_t j = 0; j < kNeg; ++j) {
        const int32_t corrupt = static_cast<int32_t>(
            (t.tail + 1 + static_cast<int32_t>(i + j)) %
            dataset.num_entities());
        negatives.push_back({t.head, t.relation, corrupt});
      }
    }
    std::vector<float> pos(n), neg(n * kNeg);
    ScoreTriplesWithNegatives(*model, dataset.test().data(), n,
                              negatives.data(), kNeg, pos.data(), neg.data());
    std::vector<float> want_pos(n), want_neg(n * kNeg);
    ScoreTriples(*model, dataset.test().data(), n, want_pos.data());
    ScoreTriples(*model, negatives.data(), negatives.size(),
                 want_neg.data());
    EXPECT_EQ(pos, want_pos) << ModelTypeName(type);
    EXPECT_EQ(neg, want_neg) << ModelTypeName(type);
  }
}

}  // namespace
}  // namespace kgeval

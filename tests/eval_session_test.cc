#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/eval_session.h"
#include "core/sampled_evaluator.h"
#include "models/checkpoint.h"
#include "models/kge_model.h"
#include "synth/config.h"
#include "synth/generator.h"
#include "tests/temp_dir.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace kgeval {
namespace {

Dataset SynthDataset(uint64_t seed = 42) {
  SynthConfig config;
  config.num_entities = 600;
  config.num_relations = 16;
  config.num_types = 12;
  config.num_train = 8000;
  config.num_valid = 600;
  config.num_test = 600;
  config.seed = seed;
  return GenerateDataset(config).ValueOrDie().dataset;
}

/// Deterministically-seeded (untrained) models: random init is all the
/// rank-determinism tests need, and it keeps the fixture fast.
std::unique_ptr<KgeModel> SeededModel(const Dataset& d, uint64_t seed) {
  ModelOptions options;
  options.dim = 16;
  options.seed = seed;
  return CreateModel(ModelType::kComplEx, d.num_entities(),
                     d.num_relations(), options)
      .ValueOrDie();
}

FrameworkOptions SessionOptions() {
  FrameworkOptions options;
  options.strategy = SamplingStrategy::kProbabilistic;
  options.recommender = RecommenderType::kLwd;
  options.sample_fraction = 0.1;
  return options;
}

class EvalSessionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(SynthDataset());
    filter_ = new FilterIndex(*dataset_);
  }
  static void TearDownTestSuite() {
    delete filter_;
    delete dataset_;
    filter_ = nullptr;
    dataset_ = nullptr;
  }
  static Dataset* dataset_;
  static FilterIndex* filter_;
};

Dataset* EvalSessionTest::dataset_ = nullptr;
FilterIndex* EvalSessionTest::filter_ = nullptr;

TEST_F(EvalSessionTest, PinnedPoolsMakeRepeatedEstimatesIdentical) {
  auto session =
      EvalSession::Create(dataset_, filter_, SessionOptions(), Split::kTest)
          .ValueOrDie();
  auto model = SeededModel(*dataset_, 7);
  const SampledEvalResult first = session->Estimate(*model);
  const SampledEvalResult second = session->Estimate(*model);
  // Same pinned pools -> bit-identical everything.
  EXPECT_EQ(first.ranks, second.ranks);
  EXPECT_EQ(first.metrics.mrr, second.metrics.mrr);
  EXPECT_EQ(first.scored_candidates, second.scored_candidates);

  // The raw framework redraws per call: on 600 entities with n_s = 60 per
  // slot, two draws collide with probability ~0 — the ranks must move.
  auto framework =
      EvaluationFramework::Build(dataset_, SessionOptions()).ValueOrDie();
  const SampledEvalResult draw1 =
      framework->Estimate(*model, *filter_, Split::kTest);
  const SampledEvalResult draw2 =
      framework->Estimate(*model, *filter_, Split::kTest);
  EXPECT_NE(draw1.ranks, draw2.ranks);
}

TEST_F(EvalSessionTest, EstimateMatchesDirectEvaluateSampledOnPinnedPools) {
  auto session =
      EvalSession::Create(dataset_, filter_, SessionOptions(), Split::kTest)
          .ValueOrDie();
  auto model = SeededModel(*dataset_, 11);
  const SampledEvalResult via_session = session->Estimate(*model);
  SampledEvalOptions eval_options;
  eval_options.tie = session->framework().options().tie;
  const SampledEvalResult direct = EvaluateSampled(
      *model, *dataset_, *filter_, Split::kTest, session->pools(),
      eval_options);
  EXPECT_EQ(via_session.ranks, direct.ranks);
  EXPECT_EQ(via_session.metrics.mrr, direct.metrics.mrr);
}

TEST_F(EvalSessionTest, EstimateManyMatchesSequentialRankForRank) {
  // The acceptance bar of the concurrent scheduler: N models evaluated
  // concurrently on the pinned draw must be bit-identical to N sequential
  // Estimate() calls on that draw — whatever interleaving the shared
  // workers produced.
  auto session =
      EvalSession::Create(dataset_, filter_, SessionOptions(), Split::kTest)
          .ValueOrDie();
  std::vector<std::unique_ptr<KgeModel>> owned;
  std::vector<const KgeModel*> models;
  for (uint64_t seed : {3u, 17u, 29u, 71u}) {
    owned.push_back(SeededModel(*dataset_, seed));
    models.push_back(owned.back().get());
  }
  const std::vector<SampledEvalResult> many = session->EstimateMany(models);
  ASSERT_EQ(many.size(), models.size());
  for (size_t m = 0; m < models.size(); ++m) {
    const SampledEvalResult sequential = session->Estimate(*models[m]);
    EXPECT_EQ(many[m].ranks, sequential.ranks) << "model " << m;
    EXPECT_EQ(many[m].metrics.mrr, sequential.metrics.mrr) << "model " << m;
    EXPECT_EQ(many[m].ci.mrr, sequential.ci.mrr) << "model " << m;
    EXPECT_EQ(many[m].scored_candidates, sequential.scored_candidates)
        << "model " << m;
  }
  // Distinct models must actually rank differently (the concurrency can't
  // have smeared one model's scores into another's buffers).
  EXPECT_NE(many[0].ranks, many[1].ranks);
}

TEST_F(EvalSessionTest, EstimateManyHonorsMaxTriples) {
  auto session =
      EvalSession::Create(dataset_, filter_, SessionOptions(), Split::kTest)
          .ValueOrDie();
  auto model = SeededModel(*dataset_, 5);
  const std::vector<SampledEvalResult> many =
      session->EstimateMany({model.get()}, /*max_triples=*/100);
  ASSERT_EQ(many.size(), 1u);
  EXPECT_EQ(many[0].ranks.size(), 200u);  // 2 queries per triple.
  const SampledEvalResult sequential =
      session->Estimate(*model, /*max_triples=*/100);
  EXPECT_EQ(many[0].ranks, sequential.ranks);
}

TEST_F(EvalSessionTest, EstimateAdaptiveManyMatchesSequential) {
  auto session =
      EvalSession::Create(dataset_, filter_, SessionOptions(), Split::kTest)
          .ValueOrDie();
  std::vector<std::unique_ptr<KgeModel>> owned;
  std::vector<const KgeModel*> models;
  for (uint64_t seed : {13u, 41u, 97u}) {
    owned.push_back(SeededModel(*dataset_, seed));
    models.push_back(owned.back().get());
  }
  AdaptiveEvalOptions adaptive;
  adaptive.target_half_width = 0.05;
  adaptive.min_queries = 256;
  adaptive.batch_queries = 256;
  const std::vector<AdaptiveEvalResult> many =
      session->EstimateAdaptiveMany(models, adaptive);
  ASSERT_EQ(many.size(), models.size());
  for (size_t m = 0; m < models.size(); ++m) {
    const AdaptiveEvalResult sequential =
        session->EstimateAdaptive(*models[m], adaptive);
    EXPECT_EQ(many[m].ranks, sequential.ranks) << "model " << m;
    EXPECT_EQ(many[m].evaluated_queries, sequential.evaluated_queries)
        << "model " << m;
    EXPECT_EQ(many[m].scored_candidates, sequential.scored_candidates)
        << "model " << m;
    EXPECT_EQ(many[m].metrics.mrr, sequential.metrics.mrr) << "model " << m;
    EXPECT_EQ(many[m].ci.mrr, sequential.ci.mrr) << "model " << m;
    EXPECT_EQ(many[m].rounds, sequential.rounds) << "model " << m;
  }
  // And the concurrent pass itself is deterministic end to end.
  const std::vector<AdaptiveEvalResult> rerun =
      session->EstimateAdaptiveMany(models, adaptive);
  for (size_t m = 0; m < models.size(); ++m) {
    EXPECT_EQ(many[m].ranks, rerun[m].ranks) << "model " << m;
  }
}

TEST_F(EvalSessionTest, RedrawPoolsReplacesThePinnedDraw) {
  auto session =
      EvalSession::Create(dataset_, filter_, SessionOptions(), Split::kTest)
          .ValueOrDie();
  const SampledCandidates before = session->pools();
  session->RedrawPools();
  EXPECT_NE(before.pools, session->pools().pools);
  // The new draw is pinned just like the first one was.
  auto model = SeededModel(*dataset_, 23);
  const SampledEvalResult first = session->Estimate(*model);
  const SampledEvalResult second = session->Estimate(*model);
  EXPECT_EQ(first.ranks, second.ranks);
}

TEST_F(EvalSessionTest, AdoptPinsTheNextFrameworkDraw) {
  // A session adopted from a framework must see the draw the framework's
  // RNG was about to produce — i.e. exactly what a twin framework draws.
  auto framework =
      EvaluationFramework::Build(dataset_, SessionOptions()).ValueOrDie();
  auto twin =
      EvaluationFramework::Build(dataset_, SessionOptions()).ValueOrDie();
  const SampledCandidates expected = twin->DrawPools(Split::kTest);
  auto session =
      EvalSession::Adopt(std::move(framework), filter_, Split::kTest);
  EXPECT_EQ(session->pools().pools, expected.pools);
  EXPECT_EQ(session->split(), Split::kTest);
}

/// Saves `count` distinctly-seeded models as checkpoint files and returns
/// their paths — a stand-in for a training run's epoch snapshots.
std::vector<std::string> SaveCheckpoints(const Dataset& dataset,
                                         const std::string& dir,
                                         size_t count) {
  std::vector<std::string> paths;
  for (size_t i = 0; i < count; ++i) {
    auto model = SeededModel(dataset, 1000 + 17 * i);
    const std::string path = dir + "/ckpt_" + std::to_string(i) + ".ckpt";
    KGEVAL_CHECK(SaveModel(model.get(), path).ok());
    paths.push_back(path);
  }
  return paths;
}

TEST_F(EvalSessionTest, EstimateCheckpointsMatchesSequentialLoadEstimate) {
  // The acceptance bar of the sweep: N checkpoint files swept concurrently
  // on the pinned draw must be rank-for-rank identical to N sequential
  // LoadModel + Estimate calls on that draw.
  auto session =
      EvalSession::Create(dataset_, filter_, SessionOptions(), Split::kTest)
          .ValueOrDie();
  TempDir dir;
  const std::vector<std::string> paths =
      SaveCheckpoints(*dataset_, dir.path(), 6);

  const std::vector<CheckpointEstimate> sweep =
      session->EstimateCheckpoints(paths);
  ASSERT_EQ(sweep.size(), paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    ASSERT_TRUE(sweep[i].status.ok()) << sweep[i].status.ToString();
    auto loaded = LoadModel(paths[i]);
    ASSERT_TRUE(loaded.ok());
    const SampledEvalResult sequential =
        session->Estimate(*loaded.ValueOrDie());
    EXPECT_EQ(sweep[i].result.ranks, sequential.ranks) << "checkpoint " << i;
    EXPECT_EQ(sweep[i].result.metrics.mrr, sequential.metrics.mrr)
        << "checkpoint " << i;
    EXPECT_EQ(sweep[i].result.ci.mrr, sequential.ci.mrr) << "checkpoint " << i;
    EXPECT_EQ(sweep[i].result.scored_candidates,
              sequential.scored_candidates)
        << "checkpoint " << i;
  }
  // Distinct checkpoints must rank differently (no cross-job smearing).
  EXPECT_NE(sweep[0].result.ranks, sweep[1].result.ranks);
}

TEST_F(EvalSessionTest, EstimateCheckpointsBoundsResidentModels) {
  auto session =
      EvalSession::Create(dataset_, filter_, SessionOptions(), Split::kTest)
          .ValueOrDie();
  TempDir dir;
  // Strictly more checkpoints than workers, so the bound (and not sweep
  // size) is what caps residency — sized off the live pool because the
  // default width is the machine's core count.
  const size_t count = GlobalThreadPool()->num_threads() + 4;
  const std::vector<std::string> paths =
      SaveCheckpoints(*dataset_, dir.path(), count);
  CheckpointSweepStats stats;
  const std::vector<CheckpointEstimate> sweep =
      session->EstimateCheckpoints(paths, /*max_triples=*/100, nullptr,
                                   &stats);
  for (const CheckpointEstimate& outcome : sweep) {
    EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  }
  EXPECT_GE(stats.max_resident_models, 1u);
  EXPECT_LE(stats.max_resident_models, GlobalThreadPool()->num_threads());
  EXPECT_LT(stats.max_resident_models, paths.size());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GT(stats.wall_seconds, 0.0);
}

TEST_F(EvalSessionTest, EstimateCheckpointsSurfacesLoadFailuresAsStatus) {
  auto session =
      EvalSession::Create(dataset_, filter_, SessionOptions(), Split::kTest)
          .ValueOrDie();
  TempDir dir;
  std::vector<std::string> paths = SaveCheckpoints(*dataset_, dir.path(), 2);

  const std::string garbage = dir.path() + "/garbage.ckpt";
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "not a checkpoint";
  }
  const std::string truncated = dir.path() + "/truncated.ckpt";
  {
    std::ifstream in(paths[0], std::ios::binary);
    std::string bytes(64, '\0');
    in.read(bytes.data(), 64);
    std::ofstream out(truncated, std::ios::binary);
    out.write(bytes.data(), 64);
  }
  // Interleave good and bad paths: failures must not disturb neighbors.
  paths.insert(paths.begin() + 1, garbage);
  paths.push_back(dir.path() + "/missing.ckpt");
  paths.push_back(truncated);

  CheckpointSweepStats stats;
  const std::vector<CheckpointEstimate> sweep =
      session->EstimateCheckpoints(paths, /*max_triples=*/50, nullptr,
                                   &stats);
  ASSERT_EQ(sweep.size(), 5u);
  EXPECT_TRUE(sweep[0].status.ok());
  EXPECT_EQ(sweep[1].status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(sweep[2].status.ok());
  EXPECT_EQ(sweep[3].status.code(), StatusCode::kIoError);
  EXPECT_FALSE(sweep[4].status.ok());
  EXPECT_EQ(stats.failed, 3u);

  // The surviving estimates still match sequential evaluation.
  auto loaded = LoadModel(paths[2]);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(sweep[2].result.ranks,
            session->Estimate(*loaded.ValueOrDie(), 50).ranks);
}

TEST_F(EvalSessionTest, EstimateCheckpointsStreamsProgress) {
  auto session =
      EvalSession::Create(dataset_, filter_, SessionOptions(), Split::kTest)
          .ValueOrDie();
  TempDir dir;
  const std::vector<std::string> paths =
      SaveCheckpoints(*dataset_, dir.path(), 5);
  std::vector<std::pair<size_t, double>> streamed;
  const std::vector<CheckpointEstimate> sweep = session->EstimateCheckpoints(
      paths, /*max_triples=*/100,
      [&](size_t index, const CheckpointEstimate& outcome) {
        // The callback contract serializes invocations, so plain vector
        // writes are safe here.
        streamed.emplace_back(index, outcome.result.metrics.mrr);
      });
  ASSERT_EQ(streamed.size(), paths.size());
  std::vector<bool> seen(paths.size(), false);
  for (const auto& [index, mrr] : streamed) {
    ASSERT_LT(index, sweep.size());
    EXPECT_FALSE(seen[index]) << "index " << index << " streamed twice";
    seen[index] = true;
    EXPECT_EQ(mrr, sweep[index].result.metrics.mrr);
  }
}

TEST_F(EvalSessionTest, EstimateAdaptiveCheckpointsMatchesSequential) {
  auto session =
      EvalSession::Create(dataset_, filter_, SessionOptions(), Split::kTest)
          .ValueOrDie();
  TempDir dir;
  const std::vector<std::string> paths =
      SaveCheckpoints(*dataset_, dir.path(), 3);
  AdaptiveEvalOptions adaptive;
  adaptive.target_half_width = 0.05;
  adaptive.min_queries = 256;
  adaptive.batch_queries = 256;
  const std::vector<CheckpointAdaptiveEstimate> sweep =
      session->EstimateAdaptiveCheckpoints(paths, adaptive);
  ASSERT_EQ(sweep.size(), paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    ASSERT_TRUE(sweep[i].status.ok()) << sweep[i].status.ToString();
    auto loaded = LoadModel(paths[i]);
    ASSERT_TRUE(loaded.ok());
    const AdaptiveEvalResult sequential =
        session->EstimateAdaptive(*loaded.ValueOrDie(), adaptive);
    EXPECT_EQ(sweep[i].result.ranks, sequential.ranks) << "checkpoint " << i;
    EXPECT_EQ(sweep[i].result.evaluated_queries,
              sequential.evaluated_queries)
        << "checkpoint " << i;
    EXPECT_EQ(sweep[i].result.metrics.mrr, sequential.metrics.mrr)
        << "checkpoint " << i;
  }
}

TEST_F(EvalSessionTest, FrameworkCheckpointOnPoolsMatchesSessionEstimate) {
  // The one-shot framework fusions must agree with loading and estimating
  // as separate steps on the same pinned pools.
  auto session =
      EvalSession::Create(dataset_, filter_, SessionOptions(), Split::kTest)
          .ValueOrDie();
  TempDir dir;
  const std::vector<std::string> paths =
      SaveCheckpoints(*dataset_, dir.path(), 1);
  auto loaded = LoadModel(paths[0]);
  ASSERT_TRUE(loaded.ok());

  auto fused = session->framework().EstimateCheckpointOnPools(
      paths[0], *filter_, Split::kTest, session->pools());
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  const SampledEvalResult direct = session->Estimate(*loaded.ValueOrDie());
  EXPECT_EQ(fused.ValueOrDie().ranks, direct.ranks);
  EXPECT_EQ(fused.ValueOrDie().metrics.mrr, direct.metrics.mrr);

  AdaptiveEvalOptions adaptive;
  adaptive.target_half_width = 0.05;
  adaptive.min_queries = 256;
  adaptive.batch_queries = 256;
  auto fused_adaptive =
      session->framework().EstimateAdaptiveCheckpointOnPools(
          paths[0], *filter_, Split::kTest, session->pools(), adaptive);
  ASSERT_TRUE(fused_adaptive.ok()) << fused_adaptive.status().ToString();
  const AdaptiveEvalResult direct_adaptive =
      session->EstimateAdaptive(*loaded.ValueOrDie(), adaptive);
  EXPECT_EQ(fused_adaptive.ValueOrDie().ranks, direct_adaptive.ranks);

  // Both fusions surface load failures as the Status.
  EXPECT_EQ(session->framework()
                .EstimateCheckpointOnPools(dir.path() + "/missing.ckpt",
                                           *filter_, Split::kTest,
                                           session->pools())
                .status()
                .code(),
            StatusCode::kIoError);
}

TEST_F(EvalSessionTest, EstimateCheckpointsRejectsDatasetMismatch) {
  // A checkpoint for a different graph shape must fail cleanly: its entity
  // ids would index past this dataset's pools.
  auto session =
      EvalSession::Create(dataset_, filter_, SessionOptions(), Split::kTest)
          .ValueOrDie();
  ModelOptions options;
  options.dim = 16;
  auto alien = CreateModel(ModelType::kComplEx, 50, 4, options).ValueOrDie();
  TempDir dir;
  const std::string path = dir.path() + "/alien.ckpt";
  ASSERT_TRUE(SaveModel(alien.get(), path).ok());
  const std::vector<CheckpointEstimate> sweep =
      session->EstimateCheckpoints({path});
  ASSERT_EQ(sweep.size(), 1u);
  EXPECT_EQ(sweep[0].status.code(), StatusCode::kInvalidArgument);
}

TEST_F(EvalSessionTest, CreateRejectsNullInputs) {
  EXPECT_FALSE(
      EvalSession::Create(nullptr, filter_, SessionOptions()).ok());
  EXPECT_FALSE(
      EvalSession::Create(dataset_, nullptr, SessionOptions()).ok());
}

}  // namespace
}  // namespace kgeval

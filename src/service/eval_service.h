#ifndef KGEVAL_SERVICE_EVAL_SERVICE_H_
#define KGEVAL_SERVICE_EVAL_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/eval_session.h"
#include "graph/dataset.h"
#include "service/command.h"
#include "synth/config.h"
#include "synth/generator.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace kgeval {

/// Service-wide counters behind the STATS verb. All atomics: command
/// execution is concurrent across connections, and the accept loop bumps
/// the connection counters from the event-loop thread.
struct ServiceCounters {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_open{0};
  std::atomic<uint64_t> commands{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> items_streamed{0};
  std::atomic<uint64_t> checkpoints_evaluated{0};
  std::atomic<uint64_t> in_flight{0};
  /// Commands answered `ERR busy` by the server's load shedder.
  std::atomic<uint64_t> shed{0};
  /// Commands abandoned because their deadline fired (`ERR
  /// deadline-exceeded`).
  std::atomic<uint64_t> deadlines_exceeded{0};
  /// Commands abandoned by a non-deadline cancellation (shutdown drain).
  std::atomic<uint64_t> cancelled{0};
  /// Connections closed by the idle reaper.
  std::atomic<uint64_t> idle_closed{0};
};

/// The verb implementations behind kgeval-server, separated from sockets:
/// Execute() consumes a parsed command and produces protocol reply lines
/// through an emit callback, so tests can drive the full command surface
/// without a connection and the server stays a thin dispatch layer.
///
/// Threading: Execute() runs on executor (job) threads, any number
/// concurrently. The loaded dataset/session state is swapped atomically
/// under a mutex and snapshotted per command as a shared_ptr, so a LOAD
/// replacing the state never invalidates an in-flight EVAL/SWEEP/WATCH —
/// the old session lives until its last command finishes.
class EvalService {
 public:
  struct Options {
    /// Dataset scale LOAD generates presets at. Scaled keeps LOAD in
    /// interactive territory; paper-scale is minutes.
    PresetScale scale = PresetScale::kScaled;
    /// WATCH's directory poll interval.
    int poll_interval_ms = 50;
    /// WATCH's default timeout when the client omits one.
    double default_watch_timeout_s = 30.0;
    /// Deadline armed by the server for each blocking command (EVAL, SWEEP,
    /// WATCH; LOAD is exempt — dataset builds are not cancellation-
    /// threaded). When it fires, the command's CancelToken trips with
    /// Reason::kDeadline, the pass winds down cooperatively, and the client
    /// sees `ERR deadline-exceeded`. 0 disables deadlines.
    double default_deadline_s = 0.0;
    /// Quantized screening for every session this service builds
    /// (FrameworkOptions::screening). Served values are bit-identical with
    /// it on or off; STATS exposes the screen_* work counters.
    bool screening = false;
  };

  /// The framework configuration LOAD builds sessions with. One definition
  /// shared by the service, bench_service_load, and the tests: the load
  /// bench's byte-parity gate reconstructs this exact session (same preset,
  /// same options, same seed, first pool draw) and demands identical
  /// metrics, which only means anything if nobody drifts.
  static FrameworkOptions ServiceFrameworkOptions();

  EvalService() : EvalService(Options()) {}
  explicit EvalService(Options options);
  ~EvalService() = default;

  EvalService(const EvalService&) = delete;
  EvalService& operator=(const EvalService&) = delete;

  /// Emits one complete reply line (no terminator; the transport appends
  /// it). Returns false when the receiver is gone — streaming verbs stop
  /// producing.
  using EmitFn = std::function<bool(const std::string& line)>;

  /// Executes any verb except QUIT (a transport concern), emitting every
  /// reply line including the terminal OK/DONE/ERR. Never throws; failures
  /// become ERR lines. `cancel` (optional; must outlive the call) lets the
  /// transport abandon a blocking verb mid-flight: a tripped token ends the
  /// command with `ERR deadline-exceeded` or `ERR cancelled` depending on
  /// its reason, never a partial OK.
  void Execute(const ParsedCommand& cmd, const EmitFn& emit,
               const CancelToken* cancel = nullptr);

  /// Makes in-flight WATCH polls return at their next wakeup (server
  /// shutdown must not wait out a client's timeout).
  void RequestShutdown() { shutting_down_.store(true); }
  bool shutting_down() const { return shutting_down_.load(); }

  ServiceCounters& counters() { return counters_; }
  const Options& options() const { return options_; }

  /// Name of the loaded dataset, or "" before the first LOAD.
  std::string loaded_name() const;

 private:
  /// Everything a LOAD produces; commands snapshot one of these. Both
  /// evaluation protocols are built eagerly at LOAD time: EVAL picks one by
  /// name per request, and the temporal one degenerates to static filter
  /// semantics on an untimestamped dataset (one timestamp slice).
  struct Loaded {
    std::string name;
    Split split = Split::kTest;
    std::unique_ptr<SynthOutput> synth;  // Owns the Dataset (stable address).
    std::unique_ptr<FilterIndex> filter;
    std::unique_ptr<TemporalFilterIndex> temporal_filter;
    std::unique_ptr<StaticFilteredProtocol> static_protocol;
    std::unique_ptr<TemporalFilteredProtocol> temporal_protocol;
    std::unique_ptr<EvalSession> session;
  };

  std::shared_ptr<const Loaded> Snapshot() const KGEVAL_EXCLUDES(state_mutex_);

  void ExecuteLoad(const ParsedCommand& cmd, const EmitFn& emit);
  void ExecuteEval(const ParsedCommand& cmd, const EmitFn& emit,
                   const CancelToken* cancel);
  void ExecuteSweep(const ParsedCommand& cmd, const EmitFn& emit,
                    const CancelToken* cancel);
  void ExecuteWatch(const ParsedCommand& cmd, const EmitFn& emit,
                    const CancelToken* cancel);
  void ExecuteStats(const EmitFn& emit);

  /// emit() + error accounting; returns emit's verdict.
  bool EmitError(const EmitFn& emit, const std::string& code,
                 const std::string& message);

  /// Terminal ERR of a cancelled command: `deadline-exceeded` or
  /// `cancelled` depending on the token's reason, each bumping its own
  /// counter. `what` describes how far the command got.
  bool EmitCancelled(const EmitFn& emit, const CancelToken& cancel,
                     const std::string& what);

  Options options_;
  ServiceCounters counters_;
  std::atomic<bool> shutting_down_{false};
  double start_seconds_;  // Monotonic epoch for uptime.

  mutable Mutex state_mutex_ KGEVAL_ACQUIRED_AFTER(load_mutex_);
  std::shared_ptr<const Loaded> state_ KGEVAL_GUARDED_BY(state_mutex_);
  /// Serializes LOAD builds, not readers; held across the whole build and
  /// therefore ordered strictly before the brief state_mutex_ publish.
  Mutex load_mutex_;
};

}  // namespace kgeval

#endif  // KGEVAL_SERVICE_EVAL_SERVICE_H_

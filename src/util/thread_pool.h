#ifndef KGEVAL_UTIL_THREAD_POOL_H_
#define KGEVAL_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace kgeval {

/// Fixed-size worker pool. Tasks are void() closures; Wait() blocks until the
/// queue drains and all in-flight tasks finish. Construction is cheap enough
/// to create one per phase, but most callers use GlobalThreadPool().
class ThreadPool {
 public:
  /// `num_threads == 0` means hardware_concurrency().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Process-wide pool, lazily created, never destroyed (leaked on purpose so
/// static-destruction order is a non-issue).
ThreadPool* GlobalThreadPool();

/// True iff the calling thread is a ThreadPool worker (any pool's). Used by
/// ParallelFor to run nested calls inline instead of deadlocking.
bool InThreadPoolWorker();

/// Splits [begin, end) into contiguous chunks and runs
/// `fn(chunk_begin, chunk_end)` on the global pool. Blocks until done.
/// Runs inline when the range is small, the pool has one thread, or the
/// caller is itself a pool worker: a worker that submitted chunks and then
/// blocked on them would occupy one of the only threads able to drain its
/// own queue, so nested/re-entrant calls would deadlock once every worker
/// is inside such a wait.
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t, size_t)>& fn,
                 size_t min_chunk = 256);

}  // namespace kgeval

#endif  // KGEVAL_UTIL_THREAD_POOL_H_

#ifndef KGEVAL_LA_KERNELS_KERNELS_H_
#define KGEVAL_LA_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace kgeval {

/// One implementation of the scoring core's hot reductions, selected once at
/// startup by a CPU-feature probe (overridable with KGEVAL_KERNELS=<name> or
/// a server/bench --kernels flag). Every binary carries every implementation
/// its compiler could emit — the wide paths live in their own translation
/// units behind `target` attributes, so even a KGEVAL_NATIVE=OFF build
/// dispatches to AVX2/AVX-512 at runtime when the CPU has them.
///
/// All kernels score `nq` query rows against a transposed candidate tile
/// (`dim` rows by `n` contiguous candidate lanes, the GatherRowsT layout):
/// out[q * n + c] is query q's score of candidate c.
///
/// Bit-exactness contract (the repo's rank-parity bar): the exact fp32
/// kernels — dot, neg_l1, neg_complex_dist — treat candidates as independent
/// lanes and accumulate over the dim axis in exactly the scalar reference's
/// order, one rounded multiply then one rounded add per step (never an FMA),
/// with IEEE-exact sqrt/fabs. Every implementation therefore produces
/// bit-identical output for every cell, so ranks, MRR, and served bytes do
/// not depend on which ISA ran.
///
/// The quantized kernels (`*_q8`) score an int8 sidecar tile. They feed only
/// the screening pass, whose correctness rests on a conservative error bound
/// rather than on reproducible arithmetic. dot_q8 is a pure integer dot
/// (exact in int32, so every implementation returns identical sums); the
/// distance q8 kernels dequantize to fp32 and may contract, reorder, and use
/// FMA freely.
struct ScoreKernels {
  const char* name;

  /// out[q * n + c] = sum_k queries[q * dim + k] * tile[k * n + c].
  void (*dot)(const float* queries, size_t nq, size_t dim, const float* tile,
              size_t n, float* out);

  /// out[q * n + c] = -sum_k |queries[q * dim + k] - tile[k * n + c]|.
  void (*neg_l1)(const float* queries, size_t nq, size_t dim,
                 const float* tile, size_t n, float* out);

  /// out[q * n + c] = -sum_j sqrt(dre^2 + dim^2 + eps) over the m = dim / 2
  /// complex coordinates, with tile rows [0, m) the real plane and [m, dim)
  /// the imaginary plane.
  void (*neg_complex_dist)(const float* queries, size_t nq, size_t dim,
                           const float* tile, size_t n, float eps, float* out);

  /// Integer dot against the quad-interleaved int8 tile (CandidateBlock::
  /// q8i): tile4 holds `dim_quads` groups of 4 consecutive dims, each group
  /// n candidates of 4 bytes (zero-padded past dim), so a 32-bit lane is one
  /// candidate's next 4 dims. `queries` rows are the pre-scaled query block
  /// quantized to uint8 with a +128 offset (4 * dim_quads bytes per row);
  /// out[q * n + c] = sum over all bytes of queries[q] x candidate c's
  /// bytes, accumulated EXACTLY in int32 — the caller removes the offset
  /// with the tile's per-candidate column sums and applies the scale.
  /// Integer arithmetic makes every implementation return identical sums.
  void (*dot_q8)(const uint8_t* queries, size_t nq, size_t dim_quads,
                 const int8_t* tile4, size_t n, int32_t* out);

  /// Approximate negative L1 distance against an int8 tile; `scale[k]`
  /// dequantizes row k.
  void (*neg_l1_q8)(const float* queries, size_t nq, size_t dim,
                    const int8_t* tile, const float* scale, size_t n,
                    float* out);

  /// Approximate negative complex distance against an int8 tile (split
  /// re/im planes like neg_complex_dist); `scale[k]` dequantizes row k.
  void (*neg_complex_dist_q8)(const float* queries, size_t nq, size_t dim,
                              const int8_t* tile, const float* scale, size_t n,
                              float eps, float* out);
};

/// The portable baseline, compiled with the build's default flags. Always
/// available; the reference every other implementation must match bit-exactly
/// on the exact kernels.
const ScoreKernels& ScalarScoreKernels();

/// Names of every implementation compiled into this binary, widest first
/// (e.g. {"avx512", "avx2", "scalar"} on an x86-64 build).
std::vector<std::string> CompiledScoreKernelNames();

/// The subset of CompiledScoreKernelNames() the running CPU supports.
std::vector<std::string> SupportedScoreKernelNames();

/// The active implementation. First use auto-selects: KGEVAL_KERNELS=<name>
/// forces a path (the process aborts on an unknown or unsupported name —
/// a forced parity run must never fall back silently), otherwise the widest
/// supported path wins.
const ScoreKernels& ActiveScoreKernels();

/// ActiveScoreKernels().name, for logs, STATS, and bench JSON.
const char* ActiveScoreKernelName();

/// Installs the named implementation ("auto" or "" re-probes the CPU and
/// takes the widest supported path, ignoring KGEVAL_KERNELS). Unknown or
/// unsupported names return InvalidArgument and leave the active table
/// unchanged. Not thread-safe against concurrent scoring: select at startup
/// (the server's --kernels flag) or in a serial test, not mid-evaluation.
Status SelectScoreKernels(const std::string& name);

}  // namespace kgeval

#endif  // KGEVAL_LA_KERNELS_KERNELS_H_

#include "service/checkpoint_watcher.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <limits>
#include <utility>

#include "util/string_util.h"

namespace kgeval {

namespace fs = std::filesystem;

int64_t CheckpointEpochKey(const std::string& filename) {
  const size_t dot = filename.rfind('.');
  const std::string stem =
      dot == std::string::npos ? filename : filename.substr(0, dot);
  // Last run of digits in the stem.
  size_t end = stem.size();
  while (end > 0 && !std::isdigit(static_cast<unsigned char>(stem[end - 1]))) {
    --end;
  }
  size_t begin = end;
  while (begin > 0 &&
         std::isdigit(static_cast<unsigned char>(stem[begin - 1]))) {
    --begin;
  }
  if (begin == end) return std::numeric_limits<int64_t>::max();
  int64_t value = 0;
  for (size_t i = begin; i < end; ++i) {
    if (value > (std::numeric_limits<int64_t>::max() - 9) / 10) {
      return std::numeric_limits<int64_t>::max();  // Absurdly long run.
    }
    value = value * 10 + (stem[i] - '0');
  }
  return value;
}

Result<std::vector<std::string>> ListCheckpointFiles(
    const std::string& dir, const std::string& extension) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IoError(StrFormat("cannot list %s: %s", dir.c_str(),
                                     ec.message().c_str()));
  }
  std::vector<std::pair<int64_t, std::string>> keyed;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() < extension.size() ||
        name.compare(name.size() - extension.size(), extension.size(),
                     extension) != 0) {
      continue;
    }
    keyed.emplace_back(CheckpointEpochKey(name), name);
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<std::string> paths;
  paths.reserve(keyed.size());
  for (auto& [key, name] : keyed) {
    paths.push_back((fs::path(dir) / name).string());
  }
  return paths;
}

CheckpointWatcher::CheckpointWatcher(std::string dir, std::string extension)
    : dir_(std::move(dir)), extension_(std::move(extension)) {}

Result<std::vector<std::string>> CheckpointWatcher::Poll() {
  auto listed = ListCheckpointFiles(dir_, extension_);
  if (!listed.ok()) return listed.status();
  std::vector<std::string> fresh;
  for (std::string& path : listed.ValueOrDie()) {
    const std::string name = fs::path(path).filename().string();
    if (seen_.count(name)) continue;
    fresh.push_back(std::move(path));
  }
  // Claim only after the full listing succeeded; order stays epoch order
  // because the listing was sorted.
  for (const std::string& path : fresh) {
    seen_.insert(fs::path(path).filename().string());
  }
  return fresh;
}

}  // namespace kgeval

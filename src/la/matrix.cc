#include "la/matrix.h"

#include <algorithm>
#include <cmath>

namespace kgeval {

void Matrix::InitXavier(Rng* rng, size_t fan_in, size_t fan_out) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  InitUniform(rng, -bound, bound);
}

void Matrix::InitUniform(Rng* rng, float lo, float hi) {
  for (auto& v : data_) v = lo + (hi - lo) * rng->NextFloat();
}

void Matrix::InitGaussian(Rng* rng, float stddev) {
  for (auto& v : data_) {
    v = static_cast<float>(rng->NextGaussian()) * stddev;
  }
}

void GatherRowsT(const Matrix& src, const int32_t* ids, size_t n,
                 Matrix* out) {
  const size_t cols = src.cols();
  out->Resize(cols, n);
  float* data = out->data();
  for (size_t c = 0; c < n; ++c) {
    const float* row = src.Row(static_cast<size_t>(ids[c]));
    for (size_t k = 0; k < cols; ++k) {
      data[k * n + c] = row[k];
    }
  }
}

void DotScoreBatch(const Matrix& queries, const Matrix& gathered_t,
                   float* out) {
  KGEVAL_CHECK(queries.cols() == gathered_t.rows());
  const size_t q = queries.rows();
  const size_t n = gathered_t.cols();
  const size_t dim = queries.cols();
  for (size_t i = 0; i < q; ++i) {
    const float* a = queries.Row(i);
    float* __restrict o = out + i * n;
    std::fill(o, o + n, 0.0f);
    for (size_t k = 0; k < dim; ++k) {
      const float ak = a[k];
      const float* __restrict g = gathered_t.Row(k);
      for (size_t c = 0; c < n; ++c) o[c] += ak * g[c];
    }
  }
}

void NegL1ScoreBatch(const Matrix& queries, const Matrix& gathered_t,
                     float* out) {
  KGEVAL_CHECK(queries.cols() == gathered_t.rows());
  const size_t q = queries.rows();
  const size_t n = gathered_t.cols();
  const size_t dim = queries.cols();
  for (size_t i = 0; i < q; ++i) {
    const float* a = queries.Row(i);
    float* __restrict o = out + i * n;
    std::fill(o, o + n, 0.0f);
    for (size_t k = 0; k < dim; ++k) {
      const float ak = a[k];
      const float* __restrict g = gathered_t.Row(k);
      for (size_t c = 0; c < n; ++c) o[c] += std::fabs(ak - g[c]);
    }
    for (size_t c = 0; c < n; ++c) o[c] = -o[c];
  }
}

void NegComplexDistScoreBatch(const Matrix& queries, const Matrix& gathered_t,
                              float eps, float* out) {
  KGEVAL_CHECK(queries.cols() == gathered_t.rows());
  KGEVAL_CHECK(queries.cols() % 2 == 0);
  const size_t q = queries.rows();
  const size_t n = gathered_t.cols();
  const size_t m = queries.cols() / 2;
  for (size_t i = 0; i < q; ++i) {
    const float* a = queries.Row(i);
    float* __restrict o = out + i * n;
    std::fill(o, o + n, 0.0f);
    for (size_t j = 0; j < m; ++j) {
      const float qre = a[j], qim = a[m + j];
      const float* __restrict gre = gathered_t.Row(j);
      const float* __restrict gim = gathered_t.Row(m + j);
      for (size_t c = 0; c < n; ++c) {
        const float dre = qre - gre[c];
        const float dim = qim - gim[c];
        o[c] += std::sqrt(dre * dre + dim * dim + eps);
      }
    }
    for (size_t c = 0; c < n; ++c) o[c] = -o[c];
  }
}

}  // namespace kgeval

#ifndef KGEVAL_MODELS_DISTMULT_H_
#define KGEVAL_MODELS_DISTMULT_H_

#include "la/matrix.h"
#include "models/kge_model.h"

namespace kgeval {

/// DistMult (Yang et al., 2014): score(h, r, t) = sum_i h_i r_i t_i.
class DistMult : public KgeModel {
 public:
  DistMult(int32_t num_entities, int32_t num_relations, ModelOptions options);

  BatchKernel batch_kernel() const override { return BatchKernel::kDot; }
  const Matrix* candidate_embeddings() const override { return &entities_; }

  /// Writes one query row per anchor: q = anchor .* relation (the score is
  /// then linear in the candidate embedding). DistMult is symmetric in h/t,
  /// so `direction` is ignored.
  void BuildKernelQueries(const int32_t* anchors, size_t num_queries,
                          int32_t relation, QueryDirection direction,
                          Matrix* queries) const override;

  void UpdateTriple(int32_t head, int32_t relation, int32_t tail,
                    QueryDirection direction, float dscore) override;

  void CollectParameters(std::vector<NamedParameter>* out) override;

 private:
  Matrix entities_;
  Matrix relations_;
  AdamState entity_adam_;
  AdamState relation_adam_;
};

}  // namespace kgeval

#endif  // KGEVAL_MODELS_DISTMULT_H_

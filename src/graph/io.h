#ifndef KGEVAL_GRAPH_IO_H_
#define KGEVAL_GRAPH_IO_H_

#include <string>

#include "graph/dataset.h"
#include "util/status.h"

namespace kgeval {

/// Loads a dataset from the standard KGC text layout used by FB15k-237,
/// CoDEx, YAGO3-10 and friends:
///
///   <dir>/train.txt   tab-separated "head<TAB>relation<TAB>tail" per line
///   <dir>/valid.txt   (optional)
///   <dir>/test.txt    (optional)
///   <dir>/types.txt   (optional) "entity<TAB>type" per line
///
/// A 4th column, when present, is parsed as a timestamp label (ICEWS-style
/// temporal datasets); the column count is locked by the first data line
/// and must be consistent across every line of every split — mixed 3/4
/// column files fail with InvalidArgument naming the offending file:line.
///
/// Entity/relation/type/timestamp vocabularies are built from the string
/// labels in order of first appearance; the labels are attached to the
/// dataset. Fails with IoError when train.txt is missing and
/// InvalidArgument on malformed lines (the offending line number is in the
/// message).
Result<Dataset> LoadDatasetFromTsv(const std::string& dir,
                                   const std::string& name = "tsv");

/// Writes the dataset back out in the same layout (labels are used when
/// present, otherwise E<i>/R<i> placeholders). Creates files in `dir`,
/// which must already exist.
Status SaveDatasetToTsv(const Dataset& dataset, const std::string& dir);

}  // namespace kgeval

#endif  // KGEVAL_GRAPH_IO_H_

#include "core/sampled_evaluator.h"

#include <algorithm>
#include <atomic>

#include "eval/slot_blocks.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace kgeval {
namespace {

/// Queries scored per fused kernel call. Bounds the qb x |pool| score block
/// (256 x n_s floats); the pool gather itself happens once per slot, not per
/// block, so the block size only trades score-matrix footprint for call
/// overhead.
constexpr size_t kQueryBlock = 256;

}  // namespace

SampledEvalResult EvaluateSampled(const KgeModel& model,
                                  const Dataset& dataset,
                                  const FilterIndex& filter, Split split,
                                  const SampledCandidates& candidates,
                                  const SampledEvalOptions& options) {
  WallTimer timer;
  const std::vector<Triple>& triples = dataset.split(split);
  int64_t num_triples = static_cast<int64_t>(triples.size());
  if (options.max_triples > 0) {
    num_triples = std::min(num_triples, options.max_triples);
  }
  const int32_t num_r = dataset.num_relations();

  SampledEvalResult result;
  result.sample_seconds = candidates.sample_seconds;
  result.ranks.assign(static_cast<size_t>(num_triples) * 2, 0.0);
  std::atomic<int64_t> scored{0};

  // Slot-major order: every query block shares one (relation, direction)
  // candidate pool, so the pool's embeddings are gathered once and whole
  // query blocks are scored per kernel call.
  const std::vector<std::vector<int32_t>> by_relation =
      GroupByRelation(triples, num_triples, num_r);
  const std::vector<SlotBlock> blocks =
      BuildSlotBlocks(by_relation, kQueryBlock);

  // Largest pool across slots: the per-thread score buffer is sized once to
  // qb_max x n_max instead of being resized inside the block loop.
  size_t max_pool = 1;
  for (const std::vector<int32_t>& pool : candidates.pools) {
    max_pool = std::max(max_pool, pool.size());
  }

  ParallelFor(
      0, blocks.size(),
      [&](size_t block_lo, size_t block_hi) {
        std::vector<int32_t> anchors(kQueryBlock), truths(kQueryBlock);
        std::vector<float> scores(kQueryBlock * max_pool),
            truth_scores(kQueryBlock);
        // Slot blocks arrive slot-major, so a slot's blocks are contiguous:
        // prepare its pool once at the first block (gather stays hot in
        // cache for the scoring call right after) and reuse the prepared
        // tile — including its allocation and precomputed sortedness — for
        // every following block of the same slot.
        CandidateBlock prepared;
        int32_t prepared_slot = -1;
        int64_t local_scored = 0;
        for (size_t b = block_lo; b < block_hi; ++b) {
          const SlotBlock& block = blocks[b];
          const bool tail_dir = block.direction == QueryDirection::kTail;
          const int32_t slot =
              tail_dir ? block.relation + num_r : block.relation;
          const std::vector<int32_t>& pool = candidates.pools[slot];
          const size_t n = pool.size();
          const size_t qb = block.end - block.begin;
          for (size_t q = 0; q < qb; ++q) {
            const Triple& triple = triples[(*block.triple_idx)[block.begin + q]];
            anchors[q] = tail_dir ? triple.head : triple.tail;
            truths[q] = tail_dir ? triple.tail : triple.head;
          }
          bool pool_sorted = false;
          if (options.prepared_pools) {
            if (slot != prepared_slot) {
              model.PrepareCandidates(pool.data(), n, &prepared);
              prepared_slot = slot;
            }
            // Fused kernel: one query construction serves the pool matrix
            // and the per-query truth scores.
            model.ScoreBlock(anchors.data(), truths.data(), qb,
                             block.relation, block.direction, prepared,
                             scores.data(), truth_scores.data());
            pool_sorted = prepared.sorted;
          } else {
            model.ScoreBatch(anchors.data(), qb, block.relation,
                             block.direction, pool.data(), n, scores.data());
            model.ScorePairs(anchors.data(), truths.data(), qb, 1,
                             block.relation, block.direction,
                             truth_scores.data());
            pool_sorted = std::is_sorted(pool.begin(), pool.end());
          }
          local_scored += static_cast<int64_t>(qb) * (n + 1);
          for (size_t q = 0; q < qb; ++q) {
            const int32_t i = (*block.triple_idx)[block.begin + q];
            const Triple& triple = triples[i];
            const std::vector<int32_t>* answers =
                filter.AnswersFor(triple, block.direction);
            KGEVAL_CHECK(answers != nullptr);
            const double rank = FilteredRank(
                pool.data(), scores.data() + q * n, n, truths[q],
                truth_scores[q], *answers, options.tie, pool_sorted);
            result.ranks[static_cast<size_t>(i) * 2 + (tail_dir ? 0 : 1)] =
                rank;
          }
        }
        scored.fetch_add(local_scored, std::memory_order_relaxed);
      },
      /*min_chunk=*/1);

  result.scored_candidates = scored.load();
  result.metrics = RankingMetrics::FromRanks(result.ranks);
  result.eval_seconds = timer.Seconds();
  return result;
}

SampledEvalResult EvaluateSampledScalar(const KgeModel& model,
                                        const Dataset& dataset,
                                        const FilterIndex& filter, Split split,
                                        const SampledCandidates& candidates,
                                        const SampledEvalOptions& options) {
  WallTimer timer;
  const std::vector<Triple>& triples = dataset.split(split);
  int64_t num_triples = static_cast<int64_t>(triples.size());
  if (options.max_triples > 0) {
    num_triples = std::min(num_triples, options.max_triples);
  }
  const int32_t num_r = dataset.num_relations();

  SampledEvalResult result;
  result.sample_seconds = candidates.sample_seconds;
  result.ranks.assign(static_cast<size_t>(num_triples) * 2, 0.0);
  std::atomic<int64_t> scored{0};

  ParallelFor(
      0, static_cast<size_t>(num_triples),
      [&](size_t lo, size_t hi) {
        std::vector<float> scores;
        int64_t local_scored = 0;
        for (size_t i = lo; i < hi; ++i) {
          const Triple& triple = triples[i];
          for (QueryDirection dir :
               {QueryDirection::kTail, QueryDirection::kHead}) {
            const bool tail_dir = dir == QueryDirection::kTail;
            const int32_t anchor = tail_dir ? triple.head : triple.tail;
            const int32_t truth = tail_dir ? triple.tail : triple.head;
            const int32_t slot =
                tail_dir ? triple.relation + num_r : triple.relation;
            const std::vector<int32_t>& pool = candidates.pools[slot];
            scores.resize(pool.size() + 1);
            // Score the pool plus the true answer in one model call.
            model.ScoreCandidates(anchor, triple.relation, dir, pool.data(),
                                  pool.size(), scores.data());
            model.ScoreCandidates(anchor, triple.relation, dir, &truth, 1,
                                  scores.data() + pool.size());
            local_scored += static_cast<int64_t>(pool.size()) + 1;
            const std::vector<int32_t>* answers =
                filter.AnswersFor(triple, dir);
            KGEVAL_CHECK(answers != nullptr);
            const double rank = FilteredRank(
                pool.data(), scores.data(), pool.size(), truth,
                scores[pool.size()], *answers, options.tie);
            result.ranks[i * 2 + (tail_dir ? 0 : 1)] = rank;
          }
        }
        scored.fetch_add(local_scored, std::memory_order_relaxed);
      },
      /*min_chunk=*/8);

  result.scored_candidates = scored.load();
  result.metrics = RankingMetrics::FromRanks(result.ranks);
  result.eval_seconds = timer.Seconds();
  return result;
}

}  // namespace kgeval

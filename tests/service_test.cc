// Protocol conformance suite: a real kgeval EvalServer on a loopback
// socket, driven through the reference LineClient, one test per protocol
// promise in docs/PROTOCOL.md — including the promise that the document
// itself covers every verb in the command table.

#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "models/checkpoint.h"
#include "models/trainer.h"
#include "net/net_util.h"
#include "service/command.h"
#include "service/eval_server.h"
#include "service/line_client.h"
#include "synth/config.h"
#include "synth/generator.h"
#include "tests/temp_dir.h"
#include "util/string_util.h"

namespace kgeval {
namespace {

std::map<std::string, std::string> ParseKeyValues(const std::string& line) {
  std::map<std::string, std::string> out;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    const size_t eq = token.find('=');
    if (eq != std::string::npos) {
      out[token.substr(0, eq)] = token.substr(eq + 1);
    }
  }
  return out;
}

/// One server + one trained checkpoint directory for the whole suite
/// (LOAD fits a recommender and training writes snapshots — once, not per
/// test). Tests that mutate checkpoint directories copy into fresh ones.
class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scratch_ = new TempDir("kgeval_service_test");
    // The EVAL targets: a short training run on the same preset the
    // server will LOAD (dataset generation is deterministic, so entity
    // ids agree).
    auto config = GetPreset(kPreset, PresetScale::kScaled);
    ASSERT_TRUE(config.ok());
    auto synth = GenerateDataset(config.ValueOrDie());
    ASSERT_TRUE(synth.ok());
    const Dataset& dataset = synth.ValueOrDie().dataset;
    ModelOptions model_options;
    model_options.dim = 16;
    model_options.seed = 7;
    auto model = CreateModel(ModelType::kComplEx, dataset.num_entities(),
                             dataset.num_relations(), model_options)
                     .ValueOrDie();
    TrainerOptions trainer_options;
    trainer_options.epochs = kEpochs;
    trainer_options.negatives_per_positive = 4;
    trainer_options.checkpoint_dir = CkptDir();
    Trainer trainer(&dataset, trainer_options);
    ASSERT_TRUE(trainer.Train(model.get()).ok());

    EvalServer::Options options;
    options.service.poll_interval_ms = 20;
    auto server = EvalServer::Start(options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).ValueOrDie().release();

    // The suite-wide LOAD every evaluation test relies on.
    LineClient client = ConnectAndGreet();
    ASSERT_TRUE(client.SendLine(StrFormat("LOAD %s valid", kPreset)).ok());
    auto reply = client.ReadReply();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_EQ(reply.ValueOrDie().back().rfind("OK ", 0), 0u)
        << reply.ValueOrDie().back();
  }

  static void TearDownTestSuite() {
    delete server_;
    server_ = nullptr;
    delete scratch_;
    scratch_ = nullptr;
  }

  static std::string CkptDir() { return scratch_->path() + "/ckpts"; }
  static std::string CkptPath(int epoch) {
    return CheckpointPath(CkptDir(), epoch, kEpochs);
  }

  /// Connects and consumes (and checks) the banner.
  static LineClient ConnectAndGreet() {
    auto client = LineClient::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    auto banner = client.ValueOrDie().ReadLine();
    EXPECT_TRUE(banner.ok()) << banner.status().ToString();
    EXPECT_EQ(banner.ValueOrDie().rfind("KGEVAL ", 0), 0u)
        << banner.ValueOrDie();
    return std::move(client).ValueOrDie();
  }

  /// Copies the trained snapshots into a fresh directory the test may
  /// mutate (add truncated files, extra snapshots) without affecting
  /// other tests.
  static std::string CloneCkptDir(const std::string& name) {
    const std::string dir = scratch_->path() + "/" + name;
    std::filesystem::create_directories(dir);
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      std::filesystem::copy_file(
          CkptPath(epoch),
          dir + "/" + std::filesystem::path(CkptPath(epoch)).filename()
                          .string());
    }
    return dir;
  }

  static std::string Request(LineClient& client, const std::string& line) {
    EXPECT_TRUE(client.SendLine(line).ok());
    auto reply = client.ReadReply();
    EXPECT_TRUE(reply.ok()) << reply.status().ToString();
    return reply.ok() ? reply.ValueOrDie().back() : std::string();
  }

  static constexpr const char* kPreset = "codex-s";
  static constexpr int kEpochs = 3;
  static TempDir* scratch_;
  static EvalServer* server_;
};

TempDir* ServiceTest::scratch_ = nullptr;
EvalServer* ServiceTest::server_ = nullptr;

TEST_F(ServiceTest, BannerCarriesProtocolVersionAndPingAnswers) {
  LineClient client = ConnectAndGreet();
  EXPECT_EQ(Request(client, "PING"), "OK pong");
  // Verbs are case-insensitive.
  EXPECT_EQ(Request(client, "ping"), "OK pong");
}

TEST_F(ServiceTest, ProtocolDocCoversEveryVerbAndErrorCode) {
  std::ifstream in(std::string(KGEVAL_SOURCE_DIR) + "/docs/PROTOCOL.md");
  ASSERT_TRUE(in.good()) << "docs/PROTOCOL.md missing";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();

  // Every command-table row needs its own section and its exact syntax
  // line in the document — adding a verb without specifying it fails here.
  for (const CommandSpec& spec : CommandTable()) {
    EXPECT_NE(doc.find("### " + std::string(spec.name)),
              std::string::npos)
        << "PROTOCOL.md lacks a section for verb " << spec.name;
    EXPECT_NE(doc.find("\n" + std::string(spec.syntax) + "\n"),
              std::string::npos)
        << "PROTOCOL.md lacks the syntax line for " << spec.name << ": "
        << spec.syntax;
  }
  // Every error code the service emits must be in the code table.
  for (const char* code :
       {"line-too-long", "unknown-verb", "arity", "bad-argument",
        "no-dataset", "unknown-protocol", "eval-failed", "io", "internal",
        "busy", "deadline-exceeded", "cancelled"}) {
    EXPECT_NE(doc.find("`" + std::string(code) + "`"), std::string::npos)
        << "PROTOCOL.md lacks error code " << code;
  }
  // The documented protocol version must match the banner the server
  // actually sends.
  auto probe = LineClient::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(probe.ok());
  auto banner = probe.ValueOrDie().ReadLine();
  ASSERT_TRUE(banner.ok());
  const std::string version = banner.ValueOrDie().substr(7);
  EXPECT_NE(doc.find("Protocol version: **" + version + "**"),
            std::string::npos)
      << "PROTOCOL.md version does not match banner " << banner.ValueOrDie();
}

TEST_F(ServiceTest, MalformedInputGetsErrNotDisconnect) {
  LineClient client = ConnectAndGreet();
  EXPECT_EQ(Request(client, "FROBNICATE now").rfind("ERR unknown-verb", 0),
            0u);
  EXPECT_EQ(Request(client, "EVAL").rfind("ERR arity", 0), 0u);
  EXPECT_EQ(Request(client, "WATCH dir 1 2 3 4").rfind("ERR arity", 0), 0u);
  EXPECT_EQ(Request(client, "LOAD codex-s sideways")
                .rfind("ERR bad-argument", 0),
            0u);
  // After all of that the connection still works.
  EXPECT_EQ(Request(client, "PING"), "OK pong");
}

TEST_F(ServiceTest, OversizedLineGetsErrAndConnectionSurvives) {
  LineClient client = ConnectAndGreet();
  ASSERT_TRUE(
      client.SendRaw(std::string(8000, 'a') + "\nPING\n").ok());
  auto first = client.ReadReply();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.ValueOrDie().back().rfind("ERR line-too-long", 0), 0u);
  auto second = client.ReadReply();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.ValueOrDie().back(), "OK pong");
}

TEST_F(ServiceTest, BlankLinesAreIgnored) {
  LineClient client = ConnectAndGreet();
  ASSERT_TRUE(client.SendRaw("\n   \n\t\nPING\n").ok());
  // The only reply is the PING's — blank lines produce nothing.
  auto reply = client.ReadReply();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.ValueOrDie(), (std::vector<std::string>{"OK pong"}));
}

TEST_F(ServiceTest, EvalReturnsMetricsAndAdaptiveVariantConverges) {
  LineClient client = ConnectAndGreet();
  const std::string fixed = Request(client, "EVAL " + CkptPath(0));
  ASSERT_EQ(fixed.rfind("OK ", 0), 0u) << fixed;
  auto kv = ParseKeyValues(fixed);
  for (const char* key :
       {"mrr", "ci", "hits1", "hits3", "hits10", "queries", "scored",
        "eval_s"}) {
    EXPECT_TRUE(kv.count(key)) << "EVAL reply lacks " << key << ": "
                               << fixed;
  }
  // Determinism on pinned pools: the same checkpoint served twice is the
  // same bytes in every field but wall time.
  auto again = ParseKeyValues(Request(client, "EVAL " + CkptPath(0)));
  EXPECT_EQ(kv["mrr"], again["mrr"]);
  EXPECT_EQ(kv["ci"], again["ci"]);
  EXPECT_EQ(kv["scored"], again["scored"]);

  const std::string adaptive =
      Request(client, "EVAL " + CkptPath(0) + " 0.5");
  ASSERT_EQ(adaptive.rfind("OK ", 0), 0u) << adaptive;
  auto akv = ParseKeyValues(adaptive);
  EXPECT_TRUE(akv.count("converged"));
  EXPECT_TRUE(akv.count("rounds"));

  EXPECT_EQ(Request(client, "EVAL " + CkptPath(0) + " 2.0")
                .rfind("ERR bad-argument", 0),
            0u);
  EXPECT_EQ(Request(client, "EVAL " + CkptDir() + "/missing.ckpt")
                .rfind("ERR eval-failed", 0),
            0u);
}

TEST_F(ServiceTest, EvalProtocolArgumentSelectsProtocolFamily) {
  LineClient client = ConnectAndGreet();
  auto base = ParseKeyValues(Request(client, "EVAL " + CkptPath(0)));
  // Naming the default protocol changes nothing.
  auto statics =
      ParseKeyValues(Request(client, "EVAL " + CkptPath(0) + " static"));
  EXPECT_EQ(base["mrr"], statics["mrr"]);
  EXPECT_EQ(base["scored"], statics["scored"]);
  // The loaded preset carries no timestamps, so the temporal protocol
  // degenerates to static semantics: identical metrics on the same pools.
  auto temporal =
      ParseKeyValues(Request(client, "EVAL " + CkptPath(0) + " temporal"));
  EXPECT_EQ(base["mrr"], temporal["mrr"]);
  EXPECT_EQ(base["scored"], temporal["scored"]);
  // half_width and protocol compose (half_width first).
  const std::string adaptive =
      Request(client, "EVAL " + CkptPath(0) + " 0.5 temporal");
  ASSERT_EQ(adaptive.rfind("OK ", 0), 0u) << adaptive;
  EXPECT_TRUE(ParseKeyValues(adaptive).count("converged"));
  // Unknown names are a dedicated error code; argument order is enforced.
  EXPECT_EQ(Request(client, "EVAL " + CkptPath(0) + " chronological")
                .rfind("ERR unknown-protocol", 0),
            0u);
  EXPECT_EQ(Request(client, "EVAL " + CkptPath(0) + " temporal 0.5")
                .rfind("ERR bad-argument", 0),
            0u);
}

TEST_F(ServiceTest, SweepStreamsEveryCheckpointThenDone) {
  LineClient client = ConnectAndGreet();
  ASSERT_TRUE(client.SendLine("SWEEP " + CkptDir()).ok());
  auto reply = client.ReadReply();
  ASSERT_TRUE(reply.ok());
  const auto& lines = reply.ValueOrDie();
  ASSERT_EQ(lines.size(), static_cast<size_t>(kEpochs) + 1);
  std::vector<bool> seen(kEpochs, false);
  for (int i = 0; i < kEpochs; ++i) {
    // Completion order is unspecified; indices must cover 0..kEpochs-1.
    std::istringstream in(lines[static_cast<size_t>(i)]);
    std::string item;
    size_t index = 999;
    in >> item >> index;
    EXPECT_EQ(item, "ITEM");
    ASSERT_LT(index, static_cast<size_t>(kEpochs));
    EXPECT_FALSE(seen[index]);
    seen[index] = true;
  }
  EXPECT_EQ(lines.back().rfind(StrFormat("DONE %d failed=0", kEpochs), 0),
            0u)
      << lines.back();
}

TEST_F(ServiceTest, SweepReportsTruncatedFileAsItemErrAndContinues) {
  LineClient client = ConnectAndGreet();
  const std::string dir = CloneCkptDir("sweep_truncated");
  {
    std::ofstream bad(dir + "/epoch_00999.ckpt", std::ios::binary);
    bad << "not a checkpoint";
  }
  ASSERT_TRUE(client.SendLine("SWEEP " + dir).ok());
  auto reply = client.ReadReply();
  ASSERT_TRUE(reply.ok());
  const auto& lines = reply.ValueOrDie();
  ASSERT_EQ(lines.size(), static_cast<size_t>(kEpochs) + 2);
  int err_items = 0, ok_items = 0;
  for (size_t i = 0; i + 1 < lines.size(); ++i) {
    if (lines[i].find(" ERR ") != std::string::npos) {
      ++err_items;
      // The bad file sorts last (epoch 999): its input-order index.
      EXPECT_EQ(lines[i].rfind(StrFormat("ITEM %d ERR", kEpochs), 0), 0u)
          << lines[i];
    } else {
      ++ok_items;
    }
  }
  EXPECT_EQ(err_items, 1);
  EXPECT_EQ(ok_items, kEpochs);
  EXPECT_EQ(
      lines.back().rfind(StrFormat("DONE %d failed=1", kEpochs + 1), 0),
      0u)
      << lines.back();
}

TEST_F(ServiceTest, WatchDeliversExistingAndMidWatchCheckpoints) {
  LineClient client = ConnectAndGreet();
  const std::string dir = scratch_->path() + "/watch_landing";
  std::filesystem::create_directories(dir);
  std::filesystem::copy_file(CkptPath(0), dir + "/epoch_00000.ckpt");
  // Ask for one more checkpoint than exists; publish it mid-watch.
  ASSERT_TRUE(client.SendLine(StrFormat("WATCH %s 2 20", dir.c_str())).ok());
  auto first = client.ReadLine();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.ValueOrDie().rfind("ITEM 0 ", 0), 0u);
  EXPECT_EQ(first.ValueOrDie().find(" ERR "), std::string::npos);
  std::filesystem::copy_file(CkptPath(1), dir + "/epoch_00001.ckpt");
  auto second = client.ReadLine();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.ValueOrDie().rfind("ITEM 1 ", 0), 0u);
  auto done = client.ReadLine();
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done.ValueOrDie(), "DONE 2 timeout=0");
}

TEST_F(ServiceTest, WatchReportsBadFileOnceAndKeepsWatching) {
  LineClient client = ConnectAndGreet();
  const std::string dir = scratch_->path() + "/watch_truncated";
  std::filesystem::create_directories(dir);
  {
    std::ofstream bad(dir + "/epoch_00000.ckpt", std::ios::binary);
    bad << "truncated";
  }
  ASSERT_TRUE(client.SendLine(StrFormat("WATCH %s 2 20", dir.c_str())).ok());
  auto first = client.ReadLine();
  ASSERT_TRUE(first.ok());
  // The truncated file: one ITEM ... ERR, claimed forever.
  EXPECT_EQ(first.ValueOrDie().rfind("ITEM 0 ERR", 0), 0u)
      << first.ValueOrDie();
  // The watch goes on: a good file published later still arrives.
  std::filesystem::copy_file(CkptPath(0), dir + "/epoch_00001.ckpt");
  auto second = client.ReadLine();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.ValueOrDie().rfind("ITEM 1 ", 0), 0u);
  EXPECT_EQ(second.ValueOrDie().find(" ERR "), std::string::npos)
      << second.ValueOrDie();
  EXPECT_EQ(client.ReadLine().ValueOrDie(), "DONE 2 timeout=0");
}

TEST_F(ServiceTest, WatchTimesOutWithPartialDelivery) {
  LineClient client = ConnectAndGreet();
  const std::string dir = scratch_->path() + "/watch_timeout";
  std::filesystem::create_directories(dir);
  std::filesystem::copy_file(CkptPath(0), dir + "/epoch_00000.ckpt");
  ASSERT_TRUE(
      client.SendLine(StrFormat("WATCH %s 5 0.5", dir.c_str())).ok());
  auto reply = client.ReadReply();
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply.ValueOrDie().size(), 2u);
  EXPECT_EQ(reply.ValueOrDie()[0].rfind("ITEM 0 ", 0), 0u);
  EXPECT_EQ(reply.ValueOrDie()[1], "DONE 1 timeout=1");
}

TEST_F(ServiceTest, WatchValidatesArguments) {
  LineClient client = ConnectAndGreet();
  EXPECT_EQ(Request(client, "WATCH /tmp 0").rfind("ERR bad-argument", 0),
            0u);
  EXPECT_EQ(
      Request(client, "WATCH /tmp 5 9999").rfind("ERR bad-argument", 0),
      0u);
}

TEST_F(ServiceTest, PipelinedBurstAnswersInRequestOrder) {
  LineClient client = ConnectAndGreet();
  // Cheap and expensive commands interleaved in one write: replies must
  // come back in exactly this order, never interleaved.
  ASSERT_TRUE(client
                  .SendRaw("PING\nSTATS\nEVAL " + CkptPath(0) +
                           "\nPING\nSWEEP " + CkptDir() + "\nPING\n")
                  .ok());
  auto r1 = client.ReadReply();
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.ValueOrDie().back(), "OK pong");
  auto r2 = client.ReadReply();
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.ValueOrDie().back().rfind("OK uptime_s=", 0), 0u);
  auto r3 = client.ReadReply();
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3.ValueOrDie().back().rfind("OK mrr=", 0), 0u);
  auto r4 = client.ReadReply();
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(r4.ValueOrDie().back(), "OK pong");
  auto r5 = client.ReadReply();
  ASSERT_TRUE(r5.ok());
  EXPECT_EQ(r5.ValueOrDie().back().rfind("DONE ", 0), 0u);
  EXPECT_EQ(r5.ValueOrDie().size(), static_cast<size_t>(kEpochs) + 1);
  auto r6 = client.ReadReply();
  ASSERT_TRUE(r6.ok());
  EXPECT_EQ(r6.ValueOrDie().back(), "OK pong");
}

TEST_F(ServiceTest, MidCommandDisconnectLeavesServerHealthy) {
  {
    LineClient client = ConnectAndGreet();
    // A streaming command, then vanish before reading any of it.
    ASSERT_TRUE(client.SendLine("SWEEP " + CkptDir()).ok());
    client.Close();
  }
  {
    LineClient client = ConnectAndGreet();
    ASSERT_TRUE(client.SendLine("WATCH " + CkptDir() + " 100 30").ok());
    client.Close();
  }
  // The server is still serving (and its counters still advance).
  LineClient client = ConnectAndGreet();
  EXPECT_EQ(Request(client, "PING"), "OK pong");
  const std::string stats = Request(client, "STATS");
  ASSERT_EQ(stats.rfind("OK ", 0), 0u);
  auto kv = ParseKeyValues(stats);
  EXPECT_TRUE(kv.count("commands"));
  EXPECT_EQ(Request(client, "EVAL " + CkptPath(0)).rfind("OK mrr=", 0), 0u);
}

TEST_F(ServiceTest, QuitRepliesThenCloses) {
  LineClient client = ConnectAndGreet();
  EXPECT_EQ(Request(client, "QUIT"), "OK bye");
  // The server closes after flushing: the next read sees EOF.
  auto eof = client.ReadLine();
  EXPECT_FALSE(eof.ok());
}

TEST(ServiceColdStartTest, EvaluationVerbsRequireLoadFirst) {
  // A fresh server with nothing loaded: every evaluation verb must say
  // so, with the documented code, without dropping the connection.
  auto server = EvalServer::Start(EvalServer::Options());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client_or =
      LineClient::Connect("127.0.0.1", server.ValueOrDie()->port());
  ASSERT_TRUE(client_or.ok());
  LineClient client = std::move(client_or).ValueOrDie();
  ASSERT_TRUE(client.ReadLine().ok());  // banner
  for (const char* line : {"EVAL /nope.ckpt", "SWEEP /nope",
                           "WATCH /nope 1 1"}) {
    ASSERT_TRUE(client.SendLine(line).ok());
    auto reply = client.ReadReply();
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.ValueOrDie().back().rfind("ERR no-dataset", 0), 0u)
        << reply.ValueOrDie().back();
  }
  ASSERT_TRUE(client.SendLine("PING").ok());
  EXPECT_EQ(client.ReadReply().ValueOrDie().back(), "OK pong");
}

TEST(ServiceStartupTest, StartFailsCleanlyWhenPortIsTaken) {
  auto taken = CreateTcpListener("127.0.0.1", 0);
  ASSERT_TRUE(taken.ok()) << taken.status().ToString();
  EvalServer::Options options;
  options.port = taken.ValueOrDie().port;
  // The failed bind must surface as a Status: the error return destroys a
  // half-initialized server (no loop thread, no executors), and its
  // Shutdown() must not post to — and wait on — a loop nobody runs.
  auto server = EvalServer::Start(options);
  EXPECT_FALSE(server.ok());
  ::close(taken.ValueOrDie().fd);
}

TEST(ServiceStartupTest, PreloadFailureFailsStart) {
  EvalServer::Options options;
  options.preload_dataset = "no-such-preset";
  auto server = EvalServer::Start(options);
  ASSERT_FALSE(server.ok());
  EXPECT_NE(server.status().ToString().find("preload"), std::string::npos)
      << server.status().ToString();
}

TEST(ServiceStartupTest, PreloadCompletesBeforeStartReturns) {
  EvalServer::Options options;
  options.preload_dataset = "codex-s";
  auto server = EvalServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  // Start() returning means the preload LOAD already finished: the first
  // client can never observe a no-dataset window.
  EXPECT_EQ(server.ValueOrDie()->service().loaded_name(), "codex-s");
}

TEST_F(ServiceTest, StatsReportsDatasetAndCounters) {
  LineClient client = ConnectAndGreet();
  auto kv = ParseKeyValues(Request(client, "STATS"));
  EXPECT_EQ(kv["dataset"], kPreset);
  for (const char* key : {"uptime_s", "connections", "accepted", "commands",
                          "errors", "items", "evals", "in_flight", "shed",
                          "deadlines", "cancelled", "idle_closed", "threads",
                          "kernels", "screen_queries", "screen_screened",
                          "screen_rescored", "screen_tiles_skipped"}) {
    EXPECT_TRUE(kv.count(key)) << "STATS lacks " << key;
  }
  EXPECT_NE(kv["kernels"], "") << "STATS must name the dispatched kernels";
}

}  // namespace
}  // namespace kgeval

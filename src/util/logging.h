#ifndef KGEVAL_UTIL_LOGGING_H_
#define KGEVAL_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace kgeval {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the global minimum level below which log statements are discarded.
/// Default is kInfo. Thread-safe (relaxed atomic).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction. LogMessage(kFatal) aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// A sink that swallows everything; used for disabled DCHECKs in release.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace kgeval

#define KGEVAL_LOG(level)                                                  \
  ::kgeval::internal::LogMessage(::kgeval::LogLevel::k##level, __FILE__,   \
                                 __LINE__)                                 \
      .stream()

/// Aborts with a message when `condition` is false. Enabled in all builds:
/// these guard data-structure invariants, Arrow/RocksDB-style.
#define KGEVAL_CHECK(condition)                                      \
  if (!(condition))                                                  \
  KGEVAL_LOG(Fatal) << "Check failed: " #condition " "

#define KGEVAL_CHECK_OP(lhs, rhs, op)                                      \
  if (!((lhs)op(rhs)))                                                     \
  KGEVAL_LOG(Fatal) << "Check failed: " #lhs " " #op " " #rhs " (" << (lhs) \
                    << " vs " << (rhs) << ") "

#define KGEVAL_CHECK_EQ(a, b) KGEVAL_CHECK_OP(a, b, ==)
#define KGEVAL_CHECK_NE(a, b) KGEVAL_CHECK_OP(a, b, !=)
#define KGEVAL_CHECK_LT(a, b) KGEVAL_CHECK_OP(a, b, <)
#define KGEVAL_CHECK_LE(a, b) KGEVAL_CHECK_OP(a, b, <=)
#define KGEVAL_CHECK_GT(a, b) KGEVAL_CHECK_OP(a, b, >)
#define KGEVAL_CHECK_GE(a, b) KGEVAL_CHECK_OP(a, b, >=)

#ifndef NDEBUG
#define KGEVAL_DCHECK(condition) KGEVAL_CHECK(condition)
#define KGEVAL_DCHECK_LT(a, b) KGEVAL_CHECK_LT(a, b)
#define KGEVAL_DCHECK_LE(a, b) KGEVAL_CHECK_LE(a, b)
#else
#define KGEVAL_DCHECK(condition) \
  if (false && !(condition)) ::kgeval::internal::NullStream()
#define KGEVAL_DCHECK_LT(a, b) \
  if (false) ::kgeval::internal::NullStream()
#define KGEVAL_DCHECK_LE(a, b) \
  if (false) ::kgeval::internal::NullStream()
#endif

#endif  // KGEVAL_UTIL_LOGGING_H_

#ifndef KGEVAL_UTIL_FAULT_H_
#define KGEVAL_UTIL_FAULT_H_

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace kgeval {

/// Fault injection: named probe points compiled into the I/O, network, and
/// scheduler layers that tests (and the KGEVAL_FAULTS environment spec) can
/// arm to simulate the failures integration tests cannot produce on demand
/// — a checkpoint vanishing mid-sweep, a socket accepting one byte per
/// send, epoll_wait returning ENOMEM. Disarmed — the production state —
/// every probe costs a single relaxed atomic load and a predicted branch.
///
/// A probe site calls FaultPoint("name") (optionally receiving an injected
/// errno) and fails itself when it returns true; kDelay faults sleep inside
/// the call and always return false, so delay probes need no handling at
/// the site. The registered names live in FaultPointNames(); arming an
/// unknown name is a programmer error. docs/ARCHITECTURE.md ("Fault
/// points") documents each probe and the chaos-test invariant behind it.
///
/// Thread-safe: probes fire from loop threads, executor threads, and pool
/// workers concurrently; arming/disarming may race with probes (the
/// registry is mutex-guarded past the armed-count fast path).
struct FaultSpec {
  enum class Kind {
    /// The probe site fails with `inject_errno` semantics.
    kFail,
    /// The probe sleeps `delay_ms` and the site proceeds normally.
    kDelay,
  };
  Kind kind = Kind::kFail;
  /// Hits skipped before the fault starts firing (`nth=N` arms skip=N-1:
  /// the Nth hit is the first to fire).
  int64_t skip = 0;
  /// Fired hits before the fault stops firing; -1 = unlimited. The default
  /// is fail-once.
  int64_t count = 1;
  /// errno reported through FaultPoint's out parameter on a fired kFail
  /// hit.
  int inject_errno = EIO;
  /// Sleep per fired kDelay hit.
  int delay_ms = 0;
};

/// Arms `point` with `spec`, replacing any previous arming (and resetting
/// its hit counters). Dies if `point` is not a registered name.
void ArmFault(const std::string& point, const FaultSpec& spec);

/// Disarms one point / every point. DisarmAllFaults is the test-teardown
/// call that guarantees no fault leaks into the next test.
void DisarmFault(const std::string& point);
void DisarmAllFaults();

/// Times `point` has actually fired (delay sleeps count) since it was last
/// armed; 0 when not armed. Lets tests assert a fault was exercised.
int64_t FaultTriggerCount(const std::string& point);

/// Arms faults from a spec string: `;`-separated `point=directives`
/// entries, each directive list `,`-separated from: `once` (default),
/// `always`, `nth=N`, `skip=N`, `count=N`, `errno=<EIO|ENOENT|EAGAIN|
/// EPIPE|ENOMEM|ECONNRESET|integer>`, `delay_ms=N` (selects kDelay).
/// Example: `io.checkpoint.read=nth=2;net.send.short_write=always`.
/// Unknown points or malformed directives return InvalidArgument with
/// nothing armed.
Status ArmFaultsFromSpec(const std::string& spec);

/// ArmFaultsFromSpec(getenv("KGEVAL_FAULTS")); OK when unset or empty.
Status ArmFaultsFromEnv();

/// Every registered probe name, sorted. The single source of truth the
/// arming validation and the ARCHITECTURE.md coverage test both check.
const std::vector<const char*>& FaultPointNames();

namespace fault_internal {
/// Count of armed points; the disarmed fast path is one relaxed load of
/// this being zero.
extern std::atomic<int> armed_points;
bool Evaluate(const char* point, int* out_errno);
}  // namespace fault_internal

/// The probe. Returns true when the site should fail (kFail fired);
/// `*out_errno` then holds the injected errno. kDelay faults sleep inside
/// and return false.
inline bool FaultPoint(const char* point, int* out_errno = nullptr) {
  if (fault_internal::armed_points.load(std::memory_order_relaxed) == 0) {
    return false;
  }
  return fault_internal::Evaluate(point, out_errno);
}

}  // namespace kgeval

#endif  // KGEVAL_UTIL_FAULT_H_

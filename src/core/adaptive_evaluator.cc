#include "core/adaptive_evaluator.h"

#include <algorithm>
#include <atomic>

#include "sched/task_group.h"
#include "stats/confidence.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace kgeval {

AdaptiveEvalResult EvaluateAdaptive(const KgeModel& model,
                                    const Dataset& dataset,
                                    const EvalProtocol& protocol, Split split,
                                    const SampledCandidates& candidates,
                                    const AdaptiveEvalOptions& options) {
  WallTimer timer;
  const std::vector<Triple>& triples = dataset.split(split);
  const int64_t num_triples = static_cast<int64_t>(triples.size());
  const int32_t num_r = dataset.num_relations();
  const int32_t num_groups = protocol.num_groups();
  ValidateQueriedPools(triples, num_triples, num_r, candidates);

  AdaptiveEvalResult result;
  result.total_queries = 2 * num_triples;
  result.ranks.assign(static_cast<size_t>(result.total_queries), 0.0);

  // The schedule is a uniform shuffle of *queries*, so every round — and
  // every prefix of rounds — is a simple random sample of the split's
  // query set: the running mean is unbiased and the iid interval honest.
  // (Shuffling slot blocks instead would make rounds cluster samples of
  // same-relation queries, whose correlated ranks bias small rounds and
  // shrink the effective sample size far below the query count.) Each
  // round's queries are regrouped by protocol group purely for scoring
  // efficiency.
  Rng rng(options.shuffle_seed);
  const std::vector<int64_t> order = ShuffledQueryOrder(num_triples, &rng);

  SampledEvalOptions eval_options;
  eval_options.tie = options.tie;
  eval_options.prepared_pools = options.prepared_pools;
  eval_options.screening = options.screening;
  eval_options.screening_min_pool = options.screening_min_pool;
  eval_options.cancel = options.cancel;

  const double z = TwoSidedZ(options.confidence);
  const int64_t query_budget = options.max_triples > 0
                                   ? std::min<int64_t>(2 * options.max_triples,
                                                       result.total_queries)
                                   : result.total_queries;
  const size_t batch_queries = std::max<size_t>(1, options.batch_queries);

  RankingAccumulator acc;
  // Per-round group buckets (head queries rank the group's domain slot,
  // tail queries its range slot); cleared and refilled each round,
  // capacity kept.
  std::vector<std::vector<int32_t>> head_buckets(num_groups);
  std::vector<std::vector<int32_t>> tail_buckets(num_groups);
  std::vector<SlotBlock> round_blocks;
  size_t next_query = 0;
  while (next_query < order.size()) {
    // The between-rounds cancellation poll; blocks inside a round bail in
    // ScoreSlotBlocks through eval_options.cancel.
    if (options.cancel != nullptr && options.cancel->cancelled()) break;
    if (acc.count() >= query_budget) break;
    // The candidate budget is checked between rounds: the round that
    // crosses it is finished (at most one round of overshoot).
    if (options.max_candidates > 0 &&
        result.scored_candidates >= options.max_candidates) {
      break;
    }
    const size_t take = std::min(
        {batch_queries, order.size() - next_query,
         static_cast<size_t>(query_budget - acc.count())});
    for (std::vector<int32_t>& bucket : head_buckets) bucket.clear();
    for (std::vector<int32_t>& bucket : tail_buckets) bucket.clear();
    const size_t round_begin = next_query;
    for (size_t k = 0; k < take; ++k) {
      const int64_t qid = order[next_query + k];
      const int64_t i = qid >> 1;
      const int32_t group = protocol.GroupOf(triples[i]);
      ((qid & 1) ? head_buckets : tail_buckets)[group].push_back(
          static_cast<int32_t>(i));
    }
    next_query += take;
    // Slot-contiguous blocks over the (now stable) round buckets; the
    // per-group buckets are small, so blocks rarely fill
    // kSampledQueryBlock. Each block's dataset relation comes from a
    // bucket triple (every triple of a group shares it).
    round_blocks.clear();
    for (int32_t g = 0; g < num_groups; ++g) {
      for (QueryDirection dir :
           {QueryDirection::kHead, QueryDirection::kTail}) {
        const std::vector<int32_t>& bucket =
            dir == QueryDirection::kHead ? head_buckets[g] : tail_buckets[g];
        if (bucket.empty()) continue;
        const int32_t relation = triples[bucket[0]].relation;
        const int32_t slot = protocol.PoolSlotOf(g, dir);
        for (size_t lo = 0; lo < bucket.size(); lo += kSampledQueryBlock) {
          round_blocks.push_back(
              {relation, dir, &bucket, lo,
               std::min(bucket.size(), lo + kSampledQueryBlock), slot});
        }
      }
    }
    std::atomic<int64_t> scored{0};
    std::atomic<int64_t> screen_queries{0}, screen_screened{0},
        screen_rescored{0};
    // Each round is its own TaskGroup: the wait at the end of the round is
    // per-pass, so concurrent adaptive passes (EstimateAdaptiveMany) stay
    // independent down to the round granularity.
    TaskGroup round_group;
    SubmitSlotChunks(&round_group, round_blocks,
                     [&](size_t lo, size_t hi) {
                       SlotBlockScratch scratch;
                       const int64_t local_scored = ScoreSlotBlocks(
                           model, triples, protocol, candidates,
                           round_blocks, lo, hi, eval_options, &scratch,
                           result.ranks.data());
                       scored.fetch_add(local_scored,
                                        std::memory_order_relaxed);
                       if (scratch.screen_stats.queries > 0) {
                         screen_queries.fetch_add(
                             scratch.screen_stats.queries,
                             std::memory_order_relaxed);
                         screen_screened.fetch_add(
                             scratch.screen_stats.screened,
                             std::memory_order_relaxed);
                         screen_rescored.fetch_add(
                             scratch.screen_stats.rescored,
                             std::memory_order_relaxed);
                         AddGlobalScreenStats(scratch.screen_stats);
                       }
                     });
    round_group.Wait();
    result.scored_candidates += scored.load();
    result.screen.queries += screen_queries.load();
    result.screen.screened += screen_screened.load();
    result.screen.rescored += screen_rescored.load();

    // A cancel that landed mid-round left part of this round's ranks
    // unscored (0.0); folding them would poison the accumulator, so the
    // whole round is dropped — the accumulator then holds only fully
    // scored rounds and the (discarded-by-callers) partial metrics below
    // stay well-defined.
    if (options.cancel != nullptr && options.cancel->cancelled()) break;

    // Fold the round's ranks in schedule order: the scored ranks are
    // bit-identical however the chunks were threaded, so the accumulator —
    // and with it the stopping decision — is reproducible.
    for (size_t k = round_begin; k < next_query; ++k) {
      acc.Add(result.ranks[static_cast<size_t>(order[k])]);
    }
    ++result.rounds;

    double half_width = acc.CiHalfWidth(options.target_metric, z);
    if (options.finite_population_correction) {
      half_width *=
          FinitePopulationCorrection(acc.count(), result.total_queries);
    }
    result.half_width_history.push_back(half_width);
    if (acc.count() >= options.min_queries &&
        half_width <= options.target_half_width) {
      result.converged = true;
      break;
    }
  }

  result.cancelled =
      options.cancel != nullptr && options.cancel->cancelled();
  if (result.cancelled) result.converged = false;
  result.evaluated_queries = acc.count();
  result.metrics = acc.Metrics();
  result.ci = acc.Ci(z);
  if (options.finite_population_correction) {
    const double fpc =
        FinitePopulationCorrection(acc.count(), result.total_queries);
    result.ci.mrr *= fpc;
    result.ci.hits1 *= fpc;
    result.ci.hits3 *= fpc;
    result.ci.hits10 *= fpc;
    result.ci.mean_rank *= fpc;
  }
  result.eval_seconds = timer.Seconds();
  return result;
}

AdaptiveEvalResult EvaluateAdaptive(const KgeModel& model,
                                    const Dataset& dataset,
                                    const FilterIndex& filter, Split split,
                                    const SampledCandidates& candidates,
                                    const AdaptiveEvalOptions& options) {
  const StaticFilteredProtocol protocol(dataset.num_relations(), &filter);
  return EvaluateAdaptive(model, dataset, protocol, split, candidates,
                          options);
}

}  // namespace kgeval

// Hard-negative training: the Section 7 future-work experiment — use the
// relation recommender's candidate sets as the *training* negative sampler
// and compare against plain uniform corruption at an equal negative budget.
//
// Usage: hard_negative_training [preset] [epochs] [guided_rate]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/framework.h"
#include "core/guided_negatives.h"
#include "eval/full_evaluator.h"
#include "models/trainer.h"
#include "synth/config.h"
#include "synth/generator.h"

int main(int argc, char** argv) {
  using namespace kgeval;
  const std::string preset = argc > 1 ? argv[1] : "codex-m";
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 25;
  const double guided_rate = argc > 3 ? std::atof(argv[3]) : 0.5;

  SynthConfig config = GetPreset(preset, PresetScale::kScaled).ValueOrDie();
  const SynthOutput synth = GenerateDataset(config).ValueOrDie();
  const Dataset& dataset = synth.dataset;
  const FilterIndex filter(dataset);

  auto recommender = CreateRecommender(RecommenderType::kLwd);
  const RecommenderScores scores = recommender->Fit(dataset).ValueOrDie();
  const CandidateSets sets = BuildProbabilisticSets(scores, dataset);

  auto run = [&](bool guided) {
    ModelOptions model_options;
    model_options.dim = 32;
    model_options.adam.learning_rate = 3e-3f;
    auto model = CreateModel(ModelType::kComplEx, dataset.num_entities(),
                             dataset.num_relations(), model_options)
                     .ValueOrDie();
    TrainerOptions trainer_options;
    trainer_options.epochs = epochs;
    trainer_options.negatives_per_positive = 8;
    if (guided) {
      trainer_options.negative_sampler =
          MakeGuidedNegativeSampler(&sets, guided_rate);
    }
    Trainer trainer(&dataset, trainer_options);
    (void)trainer.Train(model.get());
    return EvaluateFullRanking(*model, dataset, filter, Split::kTest)
        .metrics;
  };

  std::printf("dataset %s, ComplEx, %d epochs, 8 negatives/positive\n\n",
              preset.c_str(), epochs);
  const RankingMetrics uniform = run(/*guided=*/false);
  std::printf("uniform negatives : %s\n", uniform.ToString().c_str());
  const RankingMetrics guided = run(/*guided=*/true);
  std::printf("guided  negatives : %s  (guided_rate=%.2f)\n",
              guided.ToString().c_str(), guided_rate);
  std::printf(
      "\nreading: guided corruption spends the same negative budget on "
      "type- and cluster-plausible candidates. Whether that helps depends "
      "on the regime — hard negatives sharpen within-pool discrimination "
      "but raise the false-negative rate (plausible corruptions are "
      "sometimes true), so expect gains mainly at low guided rates and on "
      "graphs where the uniform negatives are overwhelmingly easy. That "
      "open trade-off is exactly why the paper leaves it as future work; "
      "sweep guided_rate to map it.\n");
  return 0;
}

#ifndef KGEVAL_SERVICE_CHECKPOINT_WATCHER_H_
#define KGEVAL_SERVICE_CHECKPOINT_WATCHER_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "util/status.h"

namespace kgeval {

/// Epoch-order sort key of a checkpoint filename: the value of the last
/// run of digits in the stem ("epoch_00123.ckpt" -> 123), or INT64_MAX for
/// names without one. Sorting by (key, name) is *numeric* epoch order, so
/// directory ordering stays correct even for snapshots whose epoch number
/// outgrew CheckpointPath's zero padding (the lexicographic trap the
/// padding alone cannot close — see CheckpointPathOrdering in io_test).
int64_t CheckpointEpochKey(const std::string& filename);

/// Lists the regular files under `dir` ending in `extension`, sorted by
/// (CheckpointEpochKey, name). Non-matching names (including the
/// in-progress "*.tmp" files Trainer renames into place) are skipped.
/// Returns full paths. The directory itself failing to open is an error;
/// an empty directory is an empty list.
Result<std::vector<std::string>> ListCheckpointFiles(
    const std::string& dir, const std::string& extension = ".ckpt");

/// The WATCH verb's directory poller, separated from sockets and
/// evaluation so its delivery rules are unit-testable: each Poll() lists
/// the directory and returns — in epoch order — only the files never
/// returned before. Delivery is at-most-once by filename: a path stays
/// claimed even if its evaluation later fails (the service reports that
/// failure as an ITEM ... ERR line; re-delivering would make a truncated
/// file spam one error per poll). Files landing between polls are picked
/// up by the next Poll().
class CheckpointWatcher {
 public:
  explicit CheckpointWatcher(std::string dir,
                             std::string extension = ".ckpt");

  /// New, never-delivered checkpoint paths in epoch order. A directory
  /// read error returns the error (already-claimed state is unchanged, so
  /// a transient failure never causes duplicate delivery later).
  Result<std::vector<std::string>> Poll();

  /// Paths delivered so far.
  size_t delivered() const { return seen_.size(); }
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  std::string extension_;
  std::set<std::string> seen_;
};

}  // namespace kgeval

#endif  // KGEVAL_SERVICE_CHECKPOINT_WATCHER_H_

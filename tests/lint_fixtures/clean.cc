// Fixture: passes every rule (linted as src/eval/good.cc). Exercises the
// near-miss patterns: tokens that look like violations but are not, plus a
// correctly-reasoned suppression and a well-formed clang-tidy marker.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <thread>

// A comment may discuss -ffast-math, std::rand(), time(), or even
// #include <immintrin.h> without tripping anything: rules run on
// comment-stripped code.
int Fixture() {
  // kgeval-lint: allow(determinism): fixture proves suppressions work.
  int noise = rand();
  // strftime/my_rand/this_thread are token near-misses, not violations.
  char buf[32];
  std::tm tm_value = {};
  std::strftime(buf, sizeof(buf), "%Y", &tm_value);
  std::this_thread::yield();
  const std::thread::id nobody{};
  (void)nobody;
  auto tick = std::chrono::steady_clock::now();
  (void)tick;
  int fine = 1;  // NOLINT(some-check): fixture shows the accepted form.
  return noise + fine;
}

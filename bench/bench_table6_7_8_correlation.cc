// Reproduces the per-epoch estimator-quality experiments:
//   Table 6  — MAE of the estimated filtered validation MRR (R / P / S)
//   Table 7  — Pearson correlation with the filtered MRR for KP (R/P/S)
//              and for the rank estimates (R/P/S)
//   Table 8  — average Kendall-Tau of the per-epoch model ordering
//   Tables 12-14 — correlations for Hits@3 / Hits@10 / Hits@1
//   Table 15 — MAEs for the Hits@X estimates
//
// Per dataset, several KGC models are trained; after every epoch the true
// filtered validation metrics are computed together with every estimator.

#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_common.h"
#include "core/framework.h"
#include "eval/full_evaluator.h"
#include "kp/kp_metric.h"
#include "stats/correlation.h"
#include "util/string_util.h"
#include "util/table.h"

namespace kgeval {
namespace {

constexpr MetricKind kMetrics[] = {MetricKind::kMrr, MetricKind::kHits1,
                                   MetricKind::kHits3, MetricKind::kHits10};
constexpr SamplingStrategy kStrategies[] = {SamplingStrategy::kRandom,
                                            SamplingStrategy::kProbabilistic,
                                            SamplingStrategy::kStatic};

/// Per-epoch series for one (dataset, model) run.
struct RunSeries {
  std::string dataset;
  std::string model;
  // truth[metric] and estimate[strategy][metric] per epoch.
  std::map<MetricKind, std::vector<double>> truth;
  std::map<SamplingStrategy, std::map<MetricKind, std::vector<double>>>
      estimate;
  std::map<SamplingStrategy, std::vector<double>> kp;
};

struct DatasetPlan {
  std::string name;
  std::vector<ModelType> models;
};

}  // namespace
}  // namespace kgeval

int main(int argc, char** argv) {
  using namespace kgeval;
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);

  // Model line-up follows the paper's Table 6 rows, trimmed to what runs in
  // minutes at the scaled sizes (ConvE is the expensive one).
  std::vector<DatasetPlan> plans = {
      {"codex-s",
       {ModelType::kTransE, ModelType::kRescal, ModelType::kComplEx,
        ModelType::kConvE}},
      {"codex-m",
       {ModelType::kComplEx, ModelType::kDistMult, ModelType::kTransE}},
      {"fb15k237",
       {ModelType::kTransE, ModelType::kRotatE, ModelType::kDistMult,
        ModelType::kComplEx}},
  };
  if (!args.only_dataset.empty()) {
    std::vector<DatasetPlan> filtered;
    for (const auto& plan : plans) {
      if (plan.name == args.only_dataset) filtered.push_back(plan);
    }
    plans = filtered;
  }
  if (args.fast) {
    plans = {{"codex-s", {ModelType::kTransE, ModelType::kComplEx}}};
  }
  const int32_t epochs =
      args.epochs > 0 ? args.epochs : (args.fast ? 4 : 14);

  std::vector<RunSeries> runs;
  for (const DatasetPlan& plan : plans) {
    const SynthOutput synth = bench::LoadPreset(plan.name, args);
    const Dataset& dataset = synth.dataset;
    const FilterIndex filter(dataset);

    // One framework per strategy, shared across the models of the dataset
    // (the framework is model-agnostic — that is the point).
    std::map<SamplingStrategy, std::unique_ptr<EvaluationFramework>>
        frameworks;
    for (SamplingStrategy strategy : kStrategies) {
      FrameworkOptions options;
      options.strategy = strategy;
      options.recommender = RecommenderType::kLwd;
      options.sample_fraction = 0.1;  // The paper's n_s = 0.1 |E|.
      options.seed = 29;
      frameworks[strategy] =
          EvaluationFramework::Build(&dataset, options).ValueOrDie();
    }

    for (ModelType type : plan.models) {
      std::fprintf(stderr, "[table6-8] %s / %s ...\n", plan.name.c_str(),
                   ModelTypeName(type));
      RunSeries series;
      series.dataset = plan.name;
      series.model = ModelTypeName(type);

      ModelOptions model_options;
      model_options.dim = 32;
      model_options.adam.learning_rate = 3e-3f;
      model_options.seed = 13;
      auto model = CreateModel(type, dataset.num_entities(),
                               dataset.num_relations(), model_options)
                       .ValueOrDie();
      TrainerOptions trainer_options;
      trainer_options.epochs = epochs;
      trainer_options.negatives_per_positive = 8;
      Trainer trainer(&dataset, trainer_options);

      FullEvalOptions full_options;
      full_options.max_triples = 2500;  // Bounds the ground-truth cost.

      const Status status = trainer.Train(
          model.get(), [&](int32_t, const KgeModel& m) {
            const FullEvalResult truth = EvaluateFullRanking(
                m, dataset, filter, Split::kValid, full_options);
            for (MetricKind metric : kMetrics) {
              series.truth[metric].push_back(truth.metrics.Get(metric));
            }
            for (SamplingStrategy strategy : kStrategies) {
              // Reuse the shared framework; each call redraws fresh pools.
              const SampledEvalResult estimate = frameworks[strategy]->Estimate(
                  m, filter, Split::kValid, full_options.max_triples);
              for (MetricKind metric : kMetrics) {
                series.estimate[strategy][metric].push_back(
                    estimate.metrics.Get(metric));
              }
              // KP with the matching negative pools (KP-R uses uniform).
              KpOptions kp_options;
              kp_options.num_samples = args.fast ? 400 : 1500;
              const SampledCandidates* pools = nullptr;
              SampledCandidates drawn;
              Rng kp_rng(91);
              if (strategy != SamplingStrategy::kRandom) {
                drawn = DrawCandidates(
                    strategy, &frameworks[strategy]->sets(),
                    dataset.num_entities(),
                    frameworks[strategy]->SampleSize(),
                    NeededSlots(dataset, Split::kValid),
                    2 * dataset.num_relations(), &kp_rng);
                pools = &drawn;
              }
              series.kp[strategy].push_back(
                  ComputeKp(m, dataset, Split::kValid, kp_options, pools)
                      .score);
            }
          });
      KGEVAL_CHECK(status.ok());
      runs.push_back(std::move(series));
    }
  }

  // ---- Table 6: MAE of the filtered validation MRR. -----------------------
  bench::PrintHeader("Table 6: MAE of estimated filtered validation MRR");
  {
    TextTable table({"Dataset", "Model", "R", "P", "S"});
    for (const RunSeries& run : runs) {
      table.AddRow(
          {run.dataset, run.model,
           bench::F(MeanAbsoluteError(
                        run.estimate.at(SamplingStrategy::kRandom)
                            .at(MetricKind::kMrr),
                        run.truth.at(MetricKind::kMrr)),
                    3),
           bench::F(MeanAbsoluteError(
                        run.estimate.at(SamplingStrategy::kProbabilistic)
                            .at(MetricKind::kMrr),
                        run.truth.at(MetricKind::kMrr)),
                    3),
           bench::F(MeanAbsoluteError(
                        run.estimate.at(SamplingStrategy::kStatic)
                            .at(MetricKind::kMrr),
                        run.truth.at(MetricKind::kMrr)),
                    3)});
    }
    std::printf("%s", table.ToString().c_str());
    bench::PrintNote(
        "paper shape: R is off by 0.1-0.3 absolute; P within ~0.01-0.1; S "
        "tightest (0.001-0.05)");
  }

  // ---- Tables 7 / 12 / 13 / 14: correlations. ------------------------------
  const std::pair<MetricKind, const char*> corr_tables[] = {
      {MetricKind::kMrr, "Table 7: correlation with the filtered MRR"},
      {MetricKind::kHits3, "Table 12: correlation with filtered Hits@3"},
      {MetricKind::kHits10, "Table 13: correlation with filtered Hits@10"},
      {MetricKind::kHits1, "Table 14: correlation with filtered Hits@1"}};
  for (const auto& [metric, title] : corr_tables) {
    bench::PrintHeader(title);
    TextTable table({"Dataset", "Model", "KP R", "KP P", "KP S", "Rank R",
                     "Rank P", "Rank S"});
    for (const RunSeries& run : runs) {
      const std::vector<double>& truth = run.truth.at(metric);
      table.AddRow(
          {run.dataset, run.model,
           bench::F(PearsonCorrelation(
                        run.kp.at(SamplingStrategy::kRandom), truth),
                    3),
           bench::F(PearsonCorrelation(
                        run.kp.at(SamplingStrategy::kProbabilistic), truth),
                    3),
           bench::F(PearsonCorrelation(
                        run.kp.at(SamplingStrategy::kStatic), truth),
                    3),
           bench::F(PearsonCorrelation(
                        run.estimate.at(SamplingStrategy::kRandom).at(metric),
                        truth),
                    3),
           bench::F(PearsonCorrelation(
                        run.estimate.at(SamplingStrategy::kProbabilistic)
                            .at(metric),
                        truth),
                    3),
           bench::F(PearsonCorrelation(
                        run.estimate.at(SamplingStrategy::kStatic).at(metric),
                        truth),
                    3)});
    }
    std::printf("%s", table.ToString().c_str());
  }
  bench::PrintNote(
      "paper shape: rank estimates correlate > 0.95 almost everywhere; KP "
      "is unstable (sign flips across models/datasets)");

  // ---- Table 15: MAE for Hits@X. -------------------------------------------
  bench::PrintHeader("Table 15: MAE of estimated Hits@X");
  {
    TextTable table({"Dataset", "Model", "H@1 P", "H@1 R", "H@1 S", "H@3 P",
                     "H@3 R", "H@3 S", "H@10 P", "H@10 R", "H@10 S"});
    for (const RunSeries& run : runs) {
      std::vector<std::string> row = {run.dataset, run.model};
      for (MetricKind metric :
           {MetricKind::kHits1, MetricKind::kHits3, MetricKind::kHits10}) {
        for (SamplingStrategy strategy :
             {SamplingStrategy::kProbabilistic, SamplingStrategy::kRandom,
              SamplingStrategy::kStatic}) {
          row.push_back(bench::F(
              MeanAbsoluteError(run.estimate.at(strategy).at(metric),
                                run.truth.at(metric)),
              3));
        }
      }
      table.AddRow(row);
    }
    std::printf("%s", table.ToString().c_str());
  }

  // ---- Table 8: Kendall-Tau of the model ordering per epoch. ----------------
  bench::PrintHeader(
      "Table 8: average Kendall-Tau of per-epoch model ranking");
  {
    TextTable table({"Dataset", "KP R", "KP P", "KP S", "Rank R", "Rank P",
                     "Rank S"});
    for (const DatasetPlan& plan : plans) {
      std::vector<const RunSeries*> members;
      for (const RunSeries& run : runs) {
        if (run.dataset == plan.name) members.push_back(&run);
      }
      if (members.size() < 3) continue;  // Tau needs >= 3 models.
      const size_t num_epochs =
          members[0]->truth.at(MetricKind::kMrr).size();
      auto mean_tau = [&](auto getter) {
        std::vector<double> taus;
        for (size_t epoch = 0; epoch < num_epochs; ++epoch) {
          std::vector<double> truth_vals, estimate_vals;
          for (const RunSeries* run : members) {
            truth_vals.push_back(
                run->truth.at(MetricKind::kMrr)[epoch]);
            estimate_vals.push_back(getter(*run, epoch));
          }
          taus.push_back(KendallTau(estimate_vals, truth_vals));
        }
        return Mean(taus);
      };
      std::vector<std::string> row = {plan.name};
      for (SamplingStrategy strategy : kStrategies) {
        row.push_back(bench::F(
            mean_tau([strategy](const RunSeries& run, size_t epoch) {
              return run.kp.at(strategy)[epoch];
            }),
            3));
      }
      for (SamplingStrategy strategy : kStrategies) {
        row.push_back(bench::F(
            mean_tau([strategy](const RunSeries& run, size_t epoch) {
              return run.estimate.at(strategy).at(MetricKind::kMrr)[epoch];
            }),
            3));
      }
      // Reorder: the header lists KP R/P/S then Rank R/P/S; kStrategies is
      // R, P, S already.
      table.AddRow(row);
    }
    std::printf("%s", table.ToString().c_str());
    bench::PrintNote(
        "paper shape: Static sampling preserves the model ordering best "
        "(tau ~0.9+), Random trails due to estimate variance, KP is weak");
  }
  return 0;
}

#include "eval/full_evaluator.h"

#include <algorithm>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace kgeval {

double FilteredRank(const int32_t* candidates, const float* scores, size_t n,
                    int32_t truth, float truth_score,
                    const std::vector<int32_t>& answers, TieBreak tie) {
  int64_t higher = 0;
  int64_t tied = 0;
  for (size_t i = 0; i < n; ++i) {
    const int32_t c = candidates[i];
    if (c == truth) continue;
    // Filtered setting: other known-true answers never demote the rank.
    if (std::binary_search(answers.begin(), answers.end(), c)) continue;
    if (scores[i] > truth_score) {
      ++higher;
    } else if (scores[i] == truth_score) {
      ++tied;
    }
  }
  return RankFromCounts(higher, tied, tie);
}

FullEvalResult EvaluateFullRanking(const KgeModel& model,
                                   const Dataset& dataset,
                                   const FilterIndex& filter, Split split,
                                   const FullEvalOptions& options) {
  const std::vector<Triple>& triples = dataset.split(split);
  int64_t num_triples = static_cast<int64_t>(triples.size());
  if (options.max_triples > 0) {
    num_triples = std::min(num_triples, options.max_triples);
  }
  const int32_t num_entities = dataset.num_entities();

  FullEvalResult result;
  result.ranks.assign(static_cast<size_t>(num_triples) * 2, 0.0);

  ParallelFor(
      0, static_cast<size_t>(num_triples),
      [&](size_t lo, size_t hi) {
        std::vector<float> scores(num_entities);
        for (size_t i = lo; i < hi; ++i) {
          const Triple& triple = triples[i];
          for (QueryDirection dir :
               {QueryDirection::kTail, QueryDirection::kHead}) {
            const bool tail_dir = dir == QueryDirection::kTail;
            const int32_t anchor = tail_dir ? triple.head : triple.tail;
            const int32_t truth = tail_dir ? triple.tail : triple.head;
            model.ScoreAll(anchor, triple.relation, dir, scores.data());
            const std::vector<int32_t>* answers =
                filter.AnswersFor(triple, dir);
            KGEVAL_CHECK(answers != nullptr);
            const float truth_score = scores[truth];
            // Walk entities in order, advancing a cursor through the sorted
            // answers list instead of binary-searching per candidate.
            int64_t higher = 0, tied = 0;
            size_t cursor = 0;
            for (int32_t e = 0; e < num_entities; ++e) {
              while (cursor < answers->size() && (*answers)[cursor] < e) {
                ++cursor;
              }
              if (cursor < answers->size() && (*answers)[cursor] == e) {
                continue;  // Filtered (includes e == truth).
              }
              if (scores[e] > truth_score) {
                ++higher;
              } else if (scores[e] == truth_score) {
                ++tied;
              }
            }
            const double rank = RankFromCounts(higher, tied, options.tie);
            result.ranks[i * 2 + (tail_dir ? 0 : 1)] = rank;
          }
        }
      },
      /*min_chunk=*/1);

  result.metrics = RankingMetrics::FromRanks(result.ranks);
  return result;
}

}  // namespace kgeval

#ifndef KGEVAL_STATS_CONFIDENCE_H_
#define KGEVAL_STATS_CONFIDENCE_H_

#include <cstdint>

namespace kgeval {

/// Quantile function (inverse CDF) of the standard normal distribution.
/// Acklam's rational approximation, |relative error| < 1.15e-9 — more than
/// enough for confidence bounds. `p` must be in (0, 1).
double NormalQuantile(double p);

/// Two-sided z-value for a confidence level, e.g. 0.95 -> 1.95996.
double TwoSidedZ(double confidence);

/// Half-width of the normal-approximation confidence interval of a mean
/// estimated from `n` observations with sample variance `variance`:
/// z * sqrt(variance / n). Returns 0 for n < 2 (no variance estimate yet).
double NormalCiHalfWidth(double variance, int64_t n, double z);

/// Finite-population correction sqrt((N - n) / (N - 1)) for a mean estimated
/// from `n` draws *without replacement* out of a population of `N`: the
/// sampled-evaluation setting, where the population is the split's full
/// query set. Shrinks to 0 as n -> N (the sample mean becomes exact).
/// Returns 1 when N <= 1; the result is clamped to [0, 1].
double FinitePopulationCorrection(int64_t n, int64_t N);

}  // namespace kgeval

#endif  // KGEVAL_STATS_CONFIDENCE_H_

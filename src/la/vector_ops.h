#ifndef KGEVAL_LA_VECTOR_OPS_H_
#define KGEVAL_LA_VECTOR_OPS_H_

#include <cmath>
#include <cstddef>

namespace kgeval {

/// Contiguous-float kernels used by the scoring and gradient code. Written as
/// simple loops; the compiler vectorizes them at -O2 with the restrict hints.

/// Returns sum_i a[i] * b[i].
inline float Dot(const float* __restrict a, const float* __restrict b,
                 size_t n) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

/// Returns sum_i a[i] * b[i] * c[i] (trilinear core of DistMult).
inline float Dot3(const float* __restrict a, const float* __restrict b,
                  const float* __restrict c, size_t n) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i] * c[i];
  return acc;
}

/// y += alpha * x.
inline void Axpy(float alpha, const float* __restrict x, float* __restrict y,
                 size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

/// y += alpha * x .* z (elementwise product), used by bilinear gradients.
inline void AxpyMul(float alpha, const float* __restrict x,
                    const float* __restrict z, float* __restrict y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i] * z[i];
}

/// x *= alpha.
inline void Scale(float alpha, float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] *= alpha;
}

/// Returns ||a - b||_2^2.
inline float SquaredL2Distance(const float* __restrict a,
                               const float* __restrict b, size_t n) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

/// Returns sum_i |a[i] - b[i]|.
inline float L1Distance(const float* __restrict a, const float* __restrict b,
                        size_t n) {
  float acc = 0.0f;
  for (size_t i = 0; i < n; ++i) acc += std::fabs(a[i] - b[i]);
  return acc;
}

/// Returns ||a||_2^2.
inline float SquaredNorm(const float* a, size_t n) { return Dot(a, a, n); }

/// Returns -sum_j sqrt((q_j - e_j)_re^2 + (q_j - e_j)_im^2 + eps) over m
/// complex coordinates stored split: real parts in [0, m), imaginary parts
/// in [m, 2m). The negative complex distance of RotatE-style scoring;
/// sequential over j, the order the batched kernel reproduces per lane.
inline float NegComplexDistance(const float* __restrict q,
                                const float* __restrict e, size_t m,
                                float eps) {
  float dist = 0.0f;
  for (size_t j = 0; j < m; ++j) {
    const float dre = q[j] - e[j];
    const float dim = q[m + j] - e[m + j];
    dist += std::sqrt(dre * dre + dim * dim + eps);
  }
  return -dist;
}

/// Numerically stable log(sigmoid(x)).
inline float LogSigmoid(float x) {
  if (x >= 0.0f) return -std::log1p(std::exp(-x));
  return x - std::log1p(std::exp(x));
}

/// Sigmoid.
inline float Sigmoid(float x) {
  if (x >= 0.0f) {
    const float e = std::exp(-x);
    return 1.0f / (1.0f + e);
  }
  const float e = std::exp(x);
  return e / (1.0f + e);
}

}  // namespace kgeval

#endif  // KGEVAL_LA_VECTOR_OPS_H_

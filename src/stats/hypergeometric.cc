#include "stats/hypergeometric.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace kgeval {
namespace {

double LogChoose(int64_t n, int64_t k) {
  if (k < 0 || k > n) return -std::numeric_limits<double>::infinity();
  return std::lgamma(static_cast<double>(n + 1)) -
         std::lgamma(static_cast<double>(k + 1)) -
         std::lgamma(static_cast<double>(n - k + 1));
}

}  // namespace

Hypergeometric::Hypergeometric(int64_t K, int64_t N, int64_t n)
    : K_(K), N_(N), n_(n) {
  KGEVAL_CHECK_GE(K, 0);
  KGEVAL_CHECK_GE(N, K);
  KGEVAL_CHECK_GE(n, 0);
  KGEVAL_CHECK_GE(N, n);
}

double Hypergeometric::Mean() const {
  if (N_ == 0) return 0.0;
  return static_cast<double>(n_) * static_cast<double>(K_) /
         static_cast<double>(N_);
}

double Hypergeometric::Variance() const {
  if (N_ <= 1) return 0.0;
  const double p = static_cast<double>(K_) / static_cast<double>(N_);
  return static_cast<double>(n_) * p * (1.0 - p) *
         static_cast<double>(N_ - n_) / static_cast<double>(N_ - 1);
}

double Hypergeometric::Pmf(int64_t k) const {
  if (k < std::max<int64_t>(0, n_ + K_ - N_) || k > std::min(n_, K_)) {
    return 0.0;
  }
  const double log_p = LogChoose(K_, k) + LogChoose(N_ - K_, n_ - k) -
                       LogChoose(N_, n_);
  return std::exp(log_p);
}

int64_t Hypergeometric::Sample(Rng* rng) const {
  int64_t successes_left = K_;
  int64_t population_left = N_;
  int64_t hits = 0;
  for (int64_t draw = 0; draw < n_; ++draw) {
    const double p =
        static_cast<double>(successes_left) / static_cast<double>(population_left);
    if (rng->NextDouble() < p) {
      ++hits;
      --successes_left;
    }
    --population_left;
  }
  return hits;
}

double ExpectedHigherRanked(int64_t higher, int64_t pool, int64_t n_s) {
  if (pool <= 0) return 0.0;
  const int64_t draws = std::min(n_s, pool);
  return static_cast<double>(draws) * static_cast<double>(higher) /
         static_cast<double>(pool);
}

double Theorem1ExpectedGain(int64_t higher, int64_t num_entities,
                            int64_t range_size, int64_t n_s) {
  // E[X_u]: uniform sampling from all entities.
  const double expected_uniform = ExpectedHigherRanked(higher, num_entities, n_s);
  // E[X_RS]: sampling restricted to the range set (draws capped at its size).
  const double expected_range = ExpectedHigherRanked(higher, range_size, n_s);
  // Y = X_RS - X_u: how many more of the truly-higher-ranked entities the
  // range-set sample observes (i.e., positions gained towards the true rank).
  return expected_range - expected_uniform;
}

}  // namespace kgeval

#ifndef KGEVAL_RECOMMENDERS_PIE_H_
#define KGEVAL_RECOMMENDERS_PIE_H_

#include "recommenders/recommender.h"

namespace kgeval {

/// Options for the PIE-style neural recommender.
struct PieOptions {
  int32_t dim = 32;          // Embedding width of the typing model.
  int32_t epochs = 20;       // Passes over the observed memberships.
  int32_t negatives = 4;     // Negative slots per positive.
  float learning_rate = 0.05f;
  /// Sparsification: predicted probabilities below this are dropped from
  /// the score matrix (they are the easy negatives anyway).
  float score_threshold = 0.05f;
};

/// PIE (Chao et al., 2022), reimplemented as the paper characterizes it: a
/// lightweight GCN-style self-supervised entity-typing model. An entity is
/// represented by the mean of learned embeddings of the domain/range slots
/// it was observed in (one propagation over the entity–slot incidence
/// graph); a logistic head predicts membership in every slot. Trained with
/// negative sampling on the observed memberships.
///
/// It exists here as the "sophisticated neural baseline": its candidate
/// quality matches the closed-form heuristics while costing orders of
/// magnitude more to fit — Table 5's point.
class PieRecommender : public RelationRecommender {
 public:
  PieRecommender(PieOptions options, uint64_t seed)
      : options_(options), seed_(seed) {}

  RecommenderType type() const override { return RecommenderType::kPie; }
  Result<RecommenderScores> Fit(const Dataset& dataset) override;

 private:
  PieOptions options_;
  uint64_t seed_;
};

}  // namespace kgeval

#endif  // KGEVAL_RECOMMENDERS_PIE_H_

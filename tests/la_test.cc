#include <gtest/gtest.h>

#include <cmath>

#include "la/adam.h"
#include "la/matrix.h"
#include "la/vector_ops.h"
#include "util/rng.h"

namespace kgeval {
namespace {

TEST(MatrixTest, ShapeAndFill) {
  Matrix m(3, 4, 1.5f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_FLOAT_EQ(m.At(2, 3), 1.5f);
  m.Fill(0.0f);
  EXPECT_FLOAT_EQ(m.At(0, 0), 0.0f);
}

TEST(MatrixTest, RowPointersAreContiguous) {
  Matrix m(4, 5);
  m.At(2, 0) = 7.0f;
  EXPECT_FLOAT_EQ(m.Row(2)[0], 7.0f);
  EXPECT_EQ(m.Row(3), m.Row(0) + 15);
}

TEST(MatrixTest, XavierBoundsRespected) {
  Matrix m(50, 64);
  Rng rng(1);
  m.InitXavier(&rng, 64, 64);
  const float bound = std::sqrt(6.0f / 128.0f);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::fabs(m.data()[i]), bound);
  }
}

TEST(MatrixTest, UniformInitWithinRange) {
  Matrix m(10, 10);
  Rng rng(2);
  m.InitUniform(&rng, -0.5f, 0.5f);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_GE(m.data()[i], -0.5f);
    EXPECT_LE(m.data()[i], 0.5f);
  }
}

TEST(MatrixTest, GaussianInitRoughMoments) {
  Matrix m(100, 100);
  Rng rng(3);
  m.InitGaussian(&rng, 2.0f);
  double sum = 0.0, sq = 0.0;
  for (size_t i = 0; i < m.size(); ++i) {
    sum += m.data()[i];
    sq += m.data()[i] * m.data()[i];
  }
  EXPECT_NEAR(sum / m.size(), 0.0, 0.05);
  EXPECT_NEAR(sq / m.size(), 4.0, 0.2);
}

TEST(VectorOpsTest, DotAndDot3) {
  const float a[3] = {1, 2, 3};
  const float b[3] = {4, 5, 6};
  const float c[3] = {1, 0, 2};
  EXPECT_FLOAT_EQ(Dot(a, b, 3), 32.0f);
  EXPECT_FLOAT_EQ(Dot3(a, b, c, 3), 4.0f + 0.0f + 36.0f);
}

TEST(VectorOpsTest, AxpyAndScale) {
  const float x[3] = {1, 2, 3};
  float y[3] = {1, 1, 1};
  Axpy(2.0f, x, y, 3);
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  EXPECT_FLOAT_EQ(y[2], 7.0f);
  Scale(0.5f, y, 3);
  EXPECT_FLOAT_EQ(y[0], 1.5f);
}

TEST(VectorOpsTest, Distances) {
  const float a[2] = {0, 3};
  const float b[2] = {4, 0};
  EXPECT_FLOAT_EQ(SquaredL2Distance(a, b, 2), 25.0f);
  EXPECT_FLOAT_EQ(L1Distance(a, b, 2), 7.0f);
  EXPECT_FLOAT_EQ(SquaredNorm(a, 2), 9.0f);
}

TEST(VectorOpsTest, SigmoidAndLogSigmoid) {
  EXPECT_FLOAT_EQ(Sigmoid(0.0f), 0.5f);
  EXPECT_NEAR(Sigmoid(10.0f), 1.0f, 1e-4);
  EXPECT_NEAR(Sigmoid(-10.0f), 0.0f, 1e-4);
  EXPECT_NEAR(LogSigmoid(0.0f), std::log(0.5f), 1e-6);
  // Stable in the tails: no -inf / nan.
  EXPECT_TRUE(std::isfinite(LogSigmoid(-100.0f)));
  EXPECT_NEAR(LogSigmoid(100.0f), 0.0f, 1e-6);
  // Identity: log sigmoid(-x) = log(1 - sigmoid(x)).
  EXPECT_NEAR(LogSigmoid(-2.0f), std::log(1.0f - Sigmoid(2.0f)), 1e-6);
}

TEST(AdamTest, DescendsQuadratic) {
  // Minimize f(w) = 0.5 * ||w - target||^2 with per-row updates.
  Matrix w(1, 4, 0.0f);
  const float target[4] = {1.0f, -2.0f, 0.5f, 3.0f};
  AdamOptions options;
  options.learning_rate = 0.05f;
  AdamState adam(1, 4, options);
  for (int step = 0; step < 500; ++step) {
    float grad[4];
    for (int i = 0; i < 4; ++i) grad[i] = w.At(0, i) - target[i];
    adam.UpdateRow(&w, 0, grad);
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(w.At(0, i), target[i], 0.05f) << "coord " << i;
  }
}

TEST(AdamTest, LazyRowsUnaffected) {
  Matrix w(3, 2, 1.0f);
  AdamState adam(3, 2, AdamOptions());
  const float grad[2] = {1.0f, 1.0f};
  adam.UpdateRow(&w, 1, grad);
  EXPECT_FLOAT_EQ(w.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(w.At(2, 0), 1.0f);
  EXPECT_LT(w.At(1, 0), 1.0f);
}

TEST(AdamTest, FirstStepMovesByLearningRate) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  Matrix w(1, 1, 0.0f);
  AdamOptions options;
  options.learning_rate = 0.1f;
  AdamState adam(1, 1, options);
  const float grad = 3.7f;
  adam.UpdateRow(&w, 0, &grad);
  EXPECT_NEAR(w.At(0, 0), -0.1f, 1e-4);
}

TEST(AdamTest, DenseUpdateTouchesAllRows) {
  Matrix w(3, 2, 0.0f);
  AdamState adam(3, 2, AdamOptions());
  Matrix grads(3, 2, 1.0f);
  adam.UpdateDense(&w, grads);
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_LT(w.At(r, 0), 0.0f);
  }
}

}  // namespace
}  // namespace kgeval

#include "la/kernels/kernels.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "la/kernels/kernel_impls.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace kgeval {
namespace {

struct Registered {
  const ScoreKernels* kernels;  // nullptr when not compiled into this binary.
  bool (*supported)();          // CPU probe; nullptr = always supported.
};

bool AlwaysSupported() { return true; }

std::string JoinNames(const std::vector<std::string>& names) {
  std::string joined;
  for (const std::string& name : names) {
    if (!joined.empty()) joined += ", ";
    joined += name;
  }
  return joined;
}

/// Widest first: auto-selection walks this in order and takes the first
/// compiled + supported entry. The scalar baseline terminates the walk.
const Registered kRegistry[] = {
    {kernel_impls::Avx512Kernels(), kernel_impls::Avx512Supported},
    {kernel_impls::Avx2Kernels(), kernel_impls::Avx2Supported},
    {kernel_impls::NeonKernels(), AlwaysSupported},
    {&ScalarScoreKernels(), AlwaysSupported},
};

const ScoreKernels* FindCompiled(const std::string& name) {
  for (const Registered& r : kRegistry) {
    if (r.kernels != nullptr && name == r.kernels->name) return r.kernels;
  }
  return nullptr;
}

bool IsSupported(const ScoreKernels* kernels) {
  for (const Registered& r : kRegistry) {
    if (r.kernels == kernels) return r.supported();
  }
  return false;
}

const ScoreKernels* ProbeWidest() {
  for (const Registered& r : kRegistry) {
    if (r.kernels != nullptr && r.supported()) return r.kernels;
  }
  return &ScalarScoreKernels();  // Unreachable: scalar is always registered.
}

/// The active table. Selection happens once (env override or CPU probe) and
/// then only via SelectScoreKernels; reads on the scoring hot path are one
/// relaxed atomic load.
std::atomic<const ScoreKernels*> g_active{nullptr};
std::once_flag g_init_once;

void InitActive() {
  const char* env = std::getenv("KGEVAL_KERNELS");
  if (env != nullptr && env[0] != '\0') {
    const Status status = SelectScoreKernels(env);
    // A forced kernel run (CI parity legs) must never fall back silently to
    // a different path than the one under test.
    KGEVAL_CHECK(status.ok())
        << "KGEVAL_KERNELS=" << env << ": " << status.message();
    return;
  }
  g_active.store(ProbeWidest(), std::memory_order_release);
}

}  // namespace

std::vector<std::string> CompiledScoreKernelNames() {
  std::vector<std::string> names;
  for (const Registered& r : kRegistry) {
    if (r.kernels != nullptr) names.push_back(r.kernels->name);
  }
  return names;
}

std::vector<std::string> SupportedScoreKernelNames() {
  std::vector<std::string> names;
  for (const Registered& r : kRegistry) {
    if (r.kernels != nullptr && r.supported()) names.push_back(r.kernels->name);
  }
  return names;
}

const ScoreKernels& ActiveScoreKernels() {
  const ScoreKernels* active = g_active.load(std::memory_order_acquire);
  if (active == nullptr) {
    std::call_once(g_init_once, InitActive);
    active = g_active.load(std::memory_order_acquire);
  }
  return *active;
}

const char* ActiveScoreKernelName() { return ActiveScoreKernels().name; }

Status SelectScoreKernels(const std::string& name) {
  if (name.empty() || name == "auto") {
    g_active.store(ProbeWidest(), std::memory_order_release);
    return Status::OK();
  }
  const ScoreKernels* kernels = FindCompiled(name);
  if (kernels == nullptr) {
    return Status::InvalidArgument(StrFormat(
        "unknown kernel path '%s' (compiled: %s)", name.c_str(),
        JoinNames(CompiledScoreKernelNames()).c_str()));
  }
  if (!IsSupported(kernels)) {
    return Status::InvalidArgument(StrFormat(
        "kernel path '%s' is compiled in but this CPU does not support it",
        name.c_str()));
  }
  g_active.store(kernels, std::memory_order_release);
  return Status::OK();
}

}  // namespace kgeval

#include "models/rescal.h"

#include <algorithm>
#include <vector>

#include "la/vector_ops.h"

namespace kgeval {

Rescal::Rescal(int32_t num_entities, int32_t num_relations,
               ModelOptions options)
    : KgeModel(ModelType::kRescal, num_entities, num_relations, options),
      entities_(num_entities, options.dim),
      relations_(num_relations,
                 static_cast<size_t>(options.dim) * options.dim),
      entity_adam_(num_entities, options.dim, options.adam),
      relation_adam_(num_relations,
                     static_cast<size_t>(options.dim) * options.dim,
                     options.adam) {
  Rng rng(options.seed);
  entities_.InitXavier(&rng, options.dim, options.dim);
  relations_.InitXavier(&rng, options.dim, options.dim);
}

void Rescal::BuildQueries(const int32_t* anchors, size_t num_queries,
                          int32_t relation, QueryDirection direction,
                          Matrix* queries) const {
  const size_t d = entities_.cols();
  const float* w = relations_.Row(relation);
  queries->Resize(num_queries, d);
  for (size_t q = 0; q < num_queries; ++q) {
    const float* a = entities_.Row(anchors[q]);
    float* row = queries->Row(q);
    if (direction == QueryDirection::kTail) {
      // score = (W^T h) . t
      std::fill(row, row + d, 0.0f);
      for (size_t i = 0; i < d; ++i) {
        Axpy(a[i], w + i * d, row, d);
      }
    } else {
      // score = (W t) . h
      for (size_t i = 0; i < d; ++i) {
        row[i] = Dot(w + i * d, a, d);
      }
    }
  }
}

void Rescal::ScoreCandidates(int32_t anchor, int32_t relation,
                             QueryDirection direction,
                             const int32_t* candidates, size_t n,
                             float* out) const {
  const size_t d = entities_.cols();
  Matrix query;
  BuildQueries(&anchor, 1, relation, direction, &query);
  for (size_t c = 0; c < n; ++c) {
    out[c] = Dot(query.Row(0), entities_.Row(candidates[c]), d);
  }
}

void Rescal::ScoreBatch(const int32_t* anchors, size_t num_queries,
                        int32_t relation, QueryDirection direction,
                        const int32_t* candidates, size_t n,
                        float* out) const {
  CandidateBlock block;
  PrepareCandidates(candidates, n, &block);
  ScoreBlock(anchors, nullptr, num_queries, relation, direction, block, out,
             nullptr);
}

void Rescal::ScorePairs(const int32_t* anchors, const int32_t* candidates,
                        size_t num_queries, size_t candidates_per_query,
                        int32_t relation, QueryDirection direction,
                        float* out) const {
  const size_t d = entities_.cols();
  const size_t k = candidates_per_query;
  Matrix queries;
  BuildQueries(anchors, num_queries, relation, direction, &queries);
  for (size_t q = 0; q < num_queries; ++q) {
    for (size_t j = 0; j < k; ++j) {
      out[q * k + j] =
          Dot(queries.Row(q), entities_.Row(candidates[q * k + j]), d);
    }
  }
}

void Rescal::PrepareCandidates(const int32_t* candidates, size_t n,
                               CandidateBlock* block) const {
  FillCandidateIds(candidates, n, block);
  GatherRowsT(entities_, candidates, n, &block->gathered_t);
  block->prepared = true;
}

void Rescal::ScoreBlock(const int32_t* anchors, const int32_t* truths,
                        size_t num_queries, int32_t relation,
                        QueryDirection direction, const CandidateBlock& block,
                        float* pool_scores, float* truth_scores) const {
  if (!block.prepared) {
    KgeModel::ScoreBlock(anchors, truths, num_queries, relation, direction,
                         block, pool_scores, truth_scores);
    return;
  }
  const size_t d = entities_.cols();
  Matrix queries;
  BuildQueries(anchors, num_queries, relation, direction, &queries);
  if (pool_scores != nullptr) {
    DotScoreBatch(queries, block.gathered_t, pool_scores);
  }
  if (truth_scores != nullptr) {
    for (size_t q = 0; q < num_queries; ++q) {
      truth_scores[q] = Dot(queries.Row(q), entities_.Row(truths[q]), d);
    }
  }
}

void Rescal::UpdateTriple(int32_t head, int32_t relation, int32_t tail,
                          QueryDirection /*direction*/, float dscore) {
  const size_t d = entities_.cols();
  const float* h = entities_.Row(head);
  const float* w = relations_.Row(relation);
  const float* t = entities_.Row(tail);
  std::vector<float> gh(d), gt(d, 0.0f), gw(d * d);
  const float l2 = options_.l2;
  for (size_t i = 0; i < d; ++i) {
    const float* w_row = w + i * d;
    gh[i] = dscore * Dot(w_row, t, d) + l2 * h[i];
    // gt accumulates dscore * h_i * W_i; gw_ij = dscore * h_i * t_j.
    for (size_t j = 0; j < d; ++j) {
      gt[j] += dscore * h[i] * w_row[j];
      gw[i * d + j] = dscore * h[i] * t[j] + l2 * w_row[j];
    }
  }
  for (size_t j = 0; j < d; ++j) gt[j] += l2 * t[j];
  entity_adam_.UpdateRow(&entities_, head, gh.data());
  relation_adam_.UpdateRow(&relations_, relation, gw.data());
  entity_adam_.UpdateRow(&entities_, tail, gt.data());
}

void Rescal::CollectParameters(std::vector<NamedParameter>* out) {
  out->push_back({"entities", &entities_});
  out->push_back({"relations", &relations_});
}

}  // namespace kgeval

// Reproduces Table 2 (easy negatives mined with L-WD) and Table 10 (the
// qualitative list of false easy negatives — test triples whose head or
// tail the recommender ruled out with score exactly 0, which in the
// synthetic data are the injected type-violating noise triples).

#include <cstdio>
#include <unordered_set>

#include "bench/bench_common.h"
#include "recommenders/easy_negatives.h"
#include "recommenders/recommender.h"
#include "util/string_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace kgeval;
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  std::vector<std::string> datasets = {"fb15k237", "yago310", "wikikg2"};
  if (!args.only_dataset.empty()) datasets = {args.only_dataset};
  if (args.fast) datasets = {"fb15k237"};

  bench::PrintHeader("Table 2: easy negatives mined with L-WD");
  TextTable table({"", "Easy negatives (%)", "Easy negatives",
                   "False easy negatives"});
  struct Kept {
    std::string dataset;
    EasyNegativeReport report;
    SynthOutput synth;
  };
  std::vector<Kept> kept;
  for (const std::string& name : datasets) {
    SynthOutput synth = bench::LoadPreset(name, args);
    auto recommender = CreateRecommender(RecommenderType::kLwd);
    const RecommenderScores scores =
        recommender->Fit(synth.dataset).ValueOrDie();
    EasyNegativeReport report = MineEasyNegatives(scores, synth.dataset, 16);
    table.AddRow({name, bench::F(100.0 * report.easy_fraction, 1),
                  FormatWithCommas(report.easy_negatives),
                  FormatWithCommas(report.false_easy)});
    kept.push_back({name, std::move(report), std::move(synth)});
  }
  std::printf("%s", table.ToString().c_str());
  bench::PrintNote(
      "paper: 58.4% / 43.2% / 5.4% easy negatives with 4 / 0 / 35 false "
      "ones; only a vanishing fraction of ruled-out cells ever contradicts "
      "a test triple");

  bench::PrintHeader("Table 10: false easy negatives produced by L-WD");
  for (const Kept& k : kept) {
    const Dataset& d = k.synth.dataset;
    std::unordered_set<int64_t> noisy(k.synth.noisy_test_indices.begin(),
                                      k.synth.noisy_test_indices.end());
    std::printf("%s (%zu examples shown, %lld total; %zu noise triples "
                "injected into test):\n",
                k.dataset.c_str(), k.report.examples.size(),
                static_cast<long long>(k.report.false_easy),
                noisy.size());
    for (const FalseEasyNegative& example : k.report.examples) {
      const Triple& t = example.triple;
      std::printf("  (%s, %s, %s)  [%s slot ruled out]\n",
                  d.EntityLabel(t.head).c_str(),
                  d.RelationLabel(t.relation).c_str(),
                  d.EntityLabel(t.tail).c_str(),
                  example.direction == QueryDirection::kHead ? "head"
                                                             : "tail");
    }
  }
  bench::PrintNote(
      "as in the paper's Table 10, the contradicted triples are KG "
      "construction noise (here: the generator's type-violating triples), "
      "not recommender mistakes");
  return 0;
}

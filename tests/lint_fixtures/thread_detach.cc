// Fixture: violates exactly `thread-containment` via detach, even inside an
// allowed directory (linted as src/sched/bad.cc).
#include <thread>

void Fixture() {
  std::thread worker([] {});
  worker.detach();
}

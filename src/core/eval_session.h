#ifndef KGEVAL_CORE_EVAL_SESSION_H_
#define KGEVAL_CORE_EVAL_SESSION_H_

#include <memory>
#include <vector>

#include "core/framework.h"

namespace kgeval {

/// A multi-model evaluation session: one EvaluationFramework plus one
/// *pinned* pool draw for one split. Every Estimate*/EstimateMany* call
/// scores against the same pinned pools, which buys two things the
/// one-shot EvaluationFramework::Estimate cannot give:
///
///  - Comparability. All models/checkpoints rank against identical
///    candidate pools, so metric differences are model differences — the
///    pool-draw noise that separates two Estimate() calls is gone. This is
///    the paper's monitoring use case (Fig. 3c): per-epoch estimates on a
///    pinned draw form a curve whose movement is training progress.
///  - Amortization. The 2|R| pool samplings are paid once per session (or
///    per RedrawPools()), not once per checkpoint.
///
/// EstimateMany/EstimateAdaptiveMany evaluate N models *concurrently*: each
/// model's pass runs as its own job on the shared worker pool (its own
/// TaskGroups, waiting only on its own chunks — no global barrier), so the
/// session behaves like a small evaluation service absorbing N requests at
/// once. Per-model results are bit-identical to a sequential Estimate()
/// call on the same pinned pools, whatever the interleaving: ranks land in
/// disjoint per-model vectors and are reduced in deterministic index order.
///
/// The session pins pools, not models: models arrive per call and are only
/// read, so one session can outlive any number of checkpoints. Pinning
/// trades the across-draw variance estimate for comparability — metrics
/// still carry the query-sampling CI, but a fresh draw (RedrawPools) is the
/// only way to see pool-draw noise.
class EvalSession {
 public:
  /// Builds a framework for `dataset` and pins its first pool draw for
  /// `split`. `dataset` and `filter` must outlive the session.
  static Result<std::unique_ptr<EvalSession>> Create(
      const Dataset* dataset, const FilterIndex* filter,
      const FrameworkOptions& options, Split split = Split::kTest);

  /// Wraps an already-built framework (taking ownership) and pins its next
  /// pool draw. Lets callers reuse an expensive recommender fit across
  /// sessions on different splits.
  static std::unique_ptr<EvalSession> Adopt(
      std::unique_ptr<EvaluationFramework> framework,
      const FilterIndex* filter, Split split);

  /// Estimates `model` on the pinned pools. Repeated calls score identical
  /// pools; `max_triples` (0 = all) as in EvaluationFramework::Estimate.
  SampledEvalResult Estimate(const KgeModel& model,
                             int64_t max_triples = 0) const;

  /// Estimates every model concurrently against the pinned pools; result i
  /// is bit-identical (rank-for-rank) to Estimate(*models[i], max_triples).
  std::vector<SampledEvalResult> EstimateMany(
      const std::vector<const KgeModel*>& models,
      int64_t max_triples = 0) const;

  /// Confidence-bounded estimate on the pinned pools (deterministic given
  /// `adaptive.shuffle_seed`; the framework's tie-break overrides
  /// `adaptive.tie`).
  AdaptiveEvalResult EstimateAdaptive(
      const KgeModel& model, const AdaptiveEvalOptions& adaptive = {}) const;

  /// Adaptive counterpart of EstimateMany: per-model results bit-identical
  /// to sequential EstimateAdaptive calls with the same options.
  std::vector<AdaptiveEvalResult> EstimateAdaptiveMany(
      const std::vector<const KgeModel*>& models,
      const AdaptiveEvalOptions& adaptive = {}) const;

  /// Replaces the pinned pools with a fresh draw (advancing the framework's
  /// RNG). Estimates before and after are *not* comparable draw-wise — call
  /// between checkpoint sweeps, not inside one. Not thread-safe against
  /// in-flight Estimate* calls.
  void RedrawPools();

  /// The pinned pools (sample_seconds is the one-time draw cost the
  /// session amortizes across its estimates).
  const SampledCandidates& pools() const { return pools_; }
  Split split() const { return split_; }
  EvaluationFramework& framework() { return *framework_; }
  const EvaluationFramework& framework() const { return *framework_; }

 private:
  EvalSession(std::unique_ptr<EvaluationFramework> framework,
              const FilterIndex* filter, Split split);

  std::unique_ptr<EvaluationFramework> framework_;
  const FilterIndex* filter_;
  Split split_;
  SampledCandidates pools_;
};

}  // namespace kgeval

#endif  // KGEVAL_CORE_EVAL_SESSION_H_

// Checkpoint-streaming sweep: train one model writing per-epoch snapshots,
// then evaluate every snapshot on disk against one pinned pool draw — the
// paper's "monitor quality across training" workload when the training run
// already happened (hyperparameter archaeology, post-hoc model selection).
//
// Two schedules over the same files and the same pinned pools:
//   sequential  load + estimate one checkpoint at a time
//   sweep       EvalSession::EstimateCheckpoints — loads on job threads,
//               interleaves each checkpoint's chunks on the shared workers,
//               frees each model as soon as its result is recorded
// Ranks must match bit-for-bit (prints PARITY MISMATCH otherwise, which CI
// greps for), and the sweep's resident-model high-water mark must stay at
// or below the worker count — a 100-epoch sweep must not hold 100 embedding
// tables (prints RESIDENT BOUND EXCEEDED otherwise). --json writes
// BENCH_checkpoint_sweep.json.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/eval_session.h"
#include "models/checkpoint.h"
#include "models/trainer.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace kgeval;

struct SweepRow {
  std::string dataset;
  int64_t checkpoints = 0;
  int64_t threads = 0;
  double sequential_s = 0.0;
  double sweep_s = 0.0;
  double speedup = 0.0;
  int64_t max_resident = 0;
  int64_t resident_bound = 0;
  bool parity = false;
  bool resident_ok = false;
};

void WriteJson(const SweepRow& r) {
  const char* path = "BENCH_checkpoint_sweep.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(
      f,
      "{\n  \"checkpoint_sweep\": {\"dataset\": \"%s\", \"checkpoints\": "
      "%lld, \"threads\": %lld, \"sequential_wall_s\": %.6f, "
      "\"sweep_wall_s\": %.6f, \"speedup\": %.4f, \"max_resident_models\": "
      "%lld, \"resident_bound\": %lld, \"resident_within_bound\": %s, "
      "\"rank_parity\": %s}\n}\n",
      r.dataset.c_str(), static_cast<long long>(r.checkpoints),
      static_cast<long long>(r.threads), r.sequential_s, r.sweep_s,
      r.speedup, static_cast<long long>(r.max_resident),
      static_cast<long long>(r.resident_bound),
      r.resident_ok ? "true" : "false", r.parity ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  std::string preset = args.fast ? "codex-s" : "codex-m";
  if (!args.only_dataset.empty()) preset = args.only_dataset;
  const int32_t epochs = args.epochs > 0 ? args.epochs : (args.fast ? 4 : 10);
  const int reps = args.fast ? 2 : 3;

  const SynthOutput synth = bench::LoadPreset(preset, args);
  const Dataset& dataset = synth.dataset;
  const FilterIndex filter(dataset);

  // Producer: one training run emitting a snapshot per epoch.
  const std::string ckpt_dir = bench::MakeScratchDir("kgeval_bench_ckpt_sweep");
  ModelOptions model_options;
  model_options.dim = 32;
  model_options.adam.learning_rate = 3e-3f;
  model_options.seed = 11;
  auto model = CreateModel(ModelType::kComplEx, dataset.num_entities(),
                           dataset.num_relations(), model_options)
                   .ValueOrDie();
  TrainerOptions trainer_options;
  trainer_options.epochs = epochs;
  trainer_options.negatives_per_positive = 8;
  trainer_options.checkpoint_dir = ckpt_dir;
  Trainer trainer(&dataset, trainer_options);
  WallTimer train_timer;
  KGEVAL_CHECK(trainer.Train(model.get()).ok());
  const double train_seconds = train_timer.Seconds();
  std::vector<std::string> paths;
  for (int32_t epoch = 0; epoch < epochs; ++epoch) {
    paths.push_back(CheckpointPath(ckpt_dir, epoch));
  }

  FrameworkOptions options;
  options.strategy = SamplingStrategy::kProbabilistic;
  options.recommender = RecommenderType::kLwd;
  options.sample_fraction = 0.1;
  auto session = EvalSession::Create(&dataset, &filter, options,
                                     Split::kValid)
                     .ValueOrDie();

  bench::PrintHeader(StrFormat(
      "Checkpoint sweep: %d epoch snapshots from disk, sequential vs "
      "streamed (%s, %zu worker threads)",
      epochs, preset.c_str(), GlobalThreadPool()->num_threads()));
  std::printf("trained %d epochs in %.3fs, snapshots in %s\n", epochs,
              train_seconds, ckpt_dir.c_str());

  // Burst-timed min-of-N on both schedules, warm-up sweep first so neither
  // side pays first-touch costs.
  std::vector<SampledEvalResult> sequential(paths.size());
  std::vector<CheckpointEstimate> sweep;
  CheckpointSweepStats stats;
  double best_sequential = 0.0, best_sweep = 0.0;
  size_t max_resident = 0;
  (void)session->EstimateCheckpoints(paths);
  for (int rep = 0; rep < reps; ++rep) {
    WallTimer seq_timer;
    for (size_t i = 0; i < paths.size(); ++i) {
      auto loaded = session->framework().LoadCheckpoint(paths[i]);
      KGEVAL_CHECK(loaded.ok());
      sequential[i] = session->Estimate(*loaded.ValueOrDie());
    }
    const double seq_s = seq_timer.Seconds();
    sweep = session->EstimateCheckpoints(paths, /*max_triples=*/0, nullptr,
                                         &stats);
    if (rep == 0 || seq_s < best_sequential) best_sequential = seq_s;
    if (rep == 0 || stats.wall_seconds < best_sweep) {
      best_sweep = stats.wall_seconds;
    }
    max_resident = std::max(max_resident, stats.max_resident_models);
  }

  bool parity = sweep.size() == sequential.size();
  for (size_t i = 0; parity && i < sweep.size(); ++i) {
    parity = sweep[i].status.ok() &&
             sweep[i].result.ranks == sequential[i].ranks &&
             sweep[i].result.metrics.mrr == sequential[i].metrics.mrr &&
             sweep[i].result.scored_candidates ==
                 sequential[i].scored_candidates;
  }
  const size_t resident_bound =
      std::max<size_t>(1, GlobalThreadPool()->num_threads());
  const bool resident_ok = max_resident <= resident_bound;

  TextTable table({"Epoch", "MRR (sequential)", "MRR (sweep)", "Ranks"});
  for (size_t i = 0; i < sweep.size(); ++i) {
    table.AddRow({std::to_string(i), bench::F(sequential[i].metrics.mrr, 4),
                  sweep[i].status.ok()
                      ? bench::F(sweep[i].result.metrics.mrr, 4)
                      : sweep[i].status.ToString(),
                  sweep[i].status.ok() &&
                          sweep[i].result.ranks == sequential[i].ranks
                      ? "bit-identical"
                      : "PARITY MISMATCH"});
  }
  std::printf("%s", table.ToString().c_str());

  SweepRow row;
  row.dataset = preset;
  row.checkpoints = static_cast<int64_t>(paths.size());
  row.threads = static_cast<int64_t>(GlobalThreadPool()->num_threads());
  row.sequential_s = best_sequential;
  row.sweep_s = best_sweep;
  row.speedup = best_sweep > 0.0 ? best_sequential / best_sweep : 0.0;
  row.max_resident = static_cast<int64_t>(max_resident);
  row.resident_bound = static_cast<int64_t>(resident_bound);
  row.parity = parity;
  row.resident_ok = resident_ok;

  bench::PrintNote(StrFormat(
      "sweep %.3fs vs sequential %.3fs (%.2fx on %lld worker threads; "
      "single-core machines run both schedules on one core); resident-model "
      "high-water %lld of bound %lld — the sweep streams snapshots through "
      "memory instead of holding the whole training run",
      best_sweep, best_sequential, row.speedup,
      static_cast<long long>(row.threads),
      static_cast<long long>(row.max_resident),
      static_cast<long long>(row.resident_bound)));
  if (!resident_ok) {
    std::printf("RESIDENT BOUND EXCEEDED: %zu models resident, bound %zu\n",
                max_resident, resident_bound);
  }
  if (args.json) WriteJson(row);
  std::filesystem::remove_all(ckpt_dir);
  return parity && resident_ok ? 0 : 1;
}

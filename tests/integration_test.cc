// End-to-end pipeline tests: generate -> fit recommender -> train model ->
// estimate vs exact ranking, across presets and the full recommender x
// strategy matrix. These are the tests that pin the paper's headline
// findings as invariants of the codebase.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/framework.h"
#include "eval/full_evaluator.h"
#include "models/trainer.h"
#include "stats/correlation.h"
#include "synth/config.h"
#include "synth/generator.h"

namespace kgeval {
namespace {

struct Pipeline {
  SynthOutput synth;
  std::unique_ptr<FilterIndex> filter;
  std::unique_ptr<KgeModel> model;
  FullEvalResult full;
};

/// One trained pipeline shared by all tests in this file (training is the
/// expensive part).
Pipeline* g_pipeline = nullptr;

class PipelineEnvironment : public ::testing::Environment {
 public:
  void SetUp() override {
    SynthConfig config;
    config.num_entities = 800;
    config.num_relations = 20;
    config.num_types = 16;
    config.num_train = 12000;
    config.num_valid = 800;
    config.num_test = 800;
    config.seed = 2024;
    auto* pipeline = new Pipeline{GenerateDataset(config).ValueOrDie(),
                                  nullptr, nullptr, FullEvalResult{}};
    pipeline->filter = std::make_unique<FilterIndex>(pipeline->synth.dataset);
    ModelOptions model_options;
    model_options.dim = 32;
    model_options.adam.learning_rate = 3e-3f;
    pipeline->model =
        CreateModel(ModelType::kComplEx, config.num_entities,
                    config.num_relations, model_options)
            .ValueOrDie();
    TrainerOptions trainer_options;
    trainer_options.epochs = 10;
    trainer_options.negatives_per_positive = 8;
    Trainer trainer(&pipeline->synth.dataset, trainer_options);
    ASSERT_TRUE(trainer.Train(pipeline->model.get()).ok());
    pipeline->full =
        EvaluateFullRanking(*pipeline->model, pipeline->synth.dataset,
                            *pipeline->filter, Split::kTest);
    g_pipeline = pipeline;
  }
  void TearDown() override {
    delete g_pipeline;
    g_pipeline = nullptr;
  }
};

const auto* const g_env =
    ::testing::AddGlobalTestEnvironment(new PipelineEnvironment());

TEST(PipelineTest, ModelLearnedSomething) {
  // A trained model must far exceed the random-guess MRR (~2 * H(n)/n).
  EXPECT_GT(g_pipeline->full.metrics.mrr, 0.05);
  EXPECT_GT(g_pipeline->full.metrics.hits10, 0.1);
}

struct MatrixCase {
  RecommenderType recommender;
  SamplingStrategy strategy;
};

class EstimatorMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(EstimatorMatrixTest, EstimateIsFiniteOptimisticAndBounded) {
  const MatrixCase& c = GetParam();
  FrameworkOptions options;
  options.recommender = c.recommender;
  options.strategy = c.strategy;
  options.sample_fraction = 0.15;
  options.seed = 5;
  auto framework =
      EvaluationFramework::Build(&g_pipeline->synth.dataset, options)
          .ValueOrDie();
  const SampledEvalResult estimate = framework->Estimate(
      *g_pipeline->model, *g_pipeline->filter, Split::kTest);
  EXPECT_TRUE(std::isfinite(estimate.metrics.mrr));
  EXPECT_GE(estimate.metrics.mrr, 0.0);
  EXPECT_LE(estimate.metrics.mrr, 1.0);
  // Subsampling can only remove competitors: per-query estimated ranks are
  // never worse than the full ranks, hence the estimate is optimistic.
  EXPECT_GE(estimate.metrics.mrr, g_pipeline->full.metrics.mrr - 1e-9);
  ASSERT_EQ(estimate.ranks.size(), g_pipeline->full.ranks.size());
  for (size_t i = 0; i < estimate.ranks.size(); ++i) {
    EXPECT_LE(estimate.ranks[i], g_pipeline->full.ranks[i] + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RecommenderByStrategy, EstimatorMatrixTest,
    ::testing::Values(
        MatrixCase{RecommenderType::kPt, SamplingStrategy::kStatic},
        MatrixCase{RecommenderType::kPt, SamplingStrategy::kProbabilistic},
        MatrixCase{RecommenderType::kDbh, SamplingStrategy::kStatic},
        MatrixCase{RecommenderType::kDbh, SamplingStrategy::kProbabilistic},
        MatrixCase{RecommenderType::kDbhT, SamplingStrategy::kStatic},
        MatrixCase{RecommenderType::kDbhT,
                   SamplingStrategy::kProbabilistic},
        MatrixCase{RecommenderType::kOntoSim, SamplingStrategy::kStatic},
        MatrixCase{RecommenderType::kOntoSim,
                   SamplingStrategy::kProbabilistic},
        MatrixCase{RecommenderType::kLwd, SamplingStrategy::kStatic},
        MatrixCase{RecommenderType::kLwd, SamplingStrategy::kProbabilistic},
        MatrixCase{RecommenderType::kLwdT, SamplingStrategy::kStatic},
        MatrixCase{RecommenderType::kLwdT,
                   SamplingStrategy::kProbabilistic},
        MatrixCase{RecommenderType::kPie, SamplingStrategy::kStatic},
        MatrixCase{RecommenderType::kPie,
                   SamplingStrategy::kProbabilistic}),
    [](const auto& info) {
      std::string name = RecommenderTypeName(info.param.recommender);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + "_" + SamplingStrategyName(info.param.strategy);
    });

TEST(PipelineTest, GuidedBeatsRandomAtEveryFraction) {
  for (double fraction : {0.05, 0.1, 0.2}) {
    std::map<SamplingStrategy, double> error;
    for (SamplingStrategy strategy :
         {SamplingStrategy::kRandom, SamplingStrategy::kStatic,
          SamplingStrategy::kProbabilistic}) {
      FrameworkOptions options;
      options.strategy = strategy;
      options.recommender = RecommenderType::kLwd;
      options.sample_fraction = fraction;
      options.seed = 11;
      auto framework =
          EvaluationFramework::Build(&g_pipeline->synth.dataset, options)
              .ValueOrDie();
      const double estimate =
          framework
              ->Estimate(*g_pipeline->model, *g_pipeline->filter,
                         Split::kTest)
              .metrics.mrr;
      error[strategy] = std::abs(estimate - g_pipeline->full.metrics.mrr);
    }
    EXPECT_GT(error[SamplingStrategy::kRandom],
              error[SamplingStrategy::kStatic])
        << "fraction " << fraction;
    EXPECT_GT(error[SamplingStrategy::kRandom],
              error[SamplingStrategy::kProbabilistic])
        << "fraction " << fraction;
  }
}

TEST(PipelineTest, HitsAtKOrderingPreserved) {
  // Hits@1 <= Hits@3 <= Hits@10 for truth and every estimator.
  auto check = [](const RankingMetrics& m) {
    EXPECT_LE(m.hits1, m.hits3 + 1e-12);
    EXPECT_LE(m.hits3, m.hits10 + 1e-12);
  };
  check(g_pipeline->full.metrics);
  for (SamplingStrategy strategy :
       {SamplingStrategy::kRandom, SamplingStrategy::kStatic,
        SamplingStrategy::kProbabilistic}) {
    FrameworkOptions options;
    options.strategy = strategy;
    options.sample_fraction = 0.1;
    auto framework =
        EvaluationFramework::Build(&g_pipeline->synth.dataset, options)
            .ValueOrDie();
    check(framework
              ->Estimate(*g_pipeline->model, *g_pipeline->filter,
                         Split::kTest)
              .metrics);
  }
}

TEST(PipelineTest, EstimateTracksTrainingProgress) {
  // Fresh model: estimates must correlate with the truth across epochs
  // (the Table 7 behaviour, in miniature).
  const Dataset& dataset = g_pipeline->synth.dataset;
  ModelOptions model_options;
  model_options.dim = 16;
  model_options.adam.learning_rate = 3e-3f;
  auto model = CreateModel(ModelType::kDistMult, dataset.num_entities(),
                           dataset.num_relations(), model_options)
                   .ValueOrDie();
  FrameworkOptions fw_options;
  fw_options.strategy = SamplingStrategy::kStatic;
  fw_options.sample_fraction = 0.1;
  auto framework =
      EvaluationFramework::Build(&dataset, fw_options).ValueOrDie();
  TrainerOptions trainer_options;
  trainer_options.epochs = 6;
  Trainer trainer(&dataset, trainer_options);
  std::vector<double> truth, estimate;
  ASSERT_TRUE(trainer
                  .Train(model.get(),
                         [&](int32_t, const KgeModel& m) {
                           truth.push_back(
                               EvaluateFullRanking(m, dataset,
                                                   *g_pipeline->filter,
                                                   Split::kValid)
                                   .metrics.mrr);
                           estimate.push_back(
                               framework
                                   ->Estimate(m, *g_pipeline->filter,
                                              Split::kValid)
                                   .metrics.mrr);
                         })
                  .ok());
  EXPECT_GT(PearsonCorrelation(estimate, truth), 0.8);
}

TEST(PipelineTest, PaperScalePresetsAreWellFormedConfigs) {
  // Generating at paper scale is too slow for a unit test, but the configs
  // must at least be internally consistent.
  for (const std::string& name : PresetNames()) {
    const SynthConfig config =
        GetPreset(name, PresetScale::kPaper).ValueOrDie();
    EXPECT_TRUE(config.Validate().ok()) << name;
    EXPECT_GT(config.num_train, config.num_valid) << name;
  }
}

}  // namespace
}  // namespace kgeval

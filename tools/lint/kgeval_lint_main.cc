/// CLI for the repo-invariant linter. Usage:
///   kgeval_lint [repo-root]     lint the tree; exit 1 on findings
///   kgeval_lint --list          print the rule table
/// Run by ctest as the `repo_lint` test and by the CI lint job.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

int main(int argc, char** argv) {
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list") == 0) {
      for (const kgeval::lint::RuleInfo& rule : kgeval::lint::Rules()) {
        std::printf("%-20s %s\n", rule.id, rule.summary);
      }
      return 0;
    }
    root = argv[i];
  }
  const std::vector<kgeval::lint::Finding> findings =
      kgeval::lint::LintRepo(root);
  for (const kgeval::lint::Finding& f : findings) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "kgeval_lint: %zu finding(s) in %s\n",
                 findings.size(), root.c_str());
    return 1;
  }
  std::printf("kgeval_lint: clean (%s)\n", root.c_str());
  return 0;
}

#ifndef KGEVAL_MODELS_CONVE_H_
#define KGEVAL_MODELS_CONVE_H_

#include <memory>
#include <vector>

#include "la/matrix.h"
#include "models/kge_model.h"

namespace kgeval {

/// ConvE (Dettmers et al., 2018): the head and relation embeddings are
/// reshaped to 2-D, stacked, convolved (C 3x3 filters), ReLU'd, flattened
/// and projected back to the embedding width; the score is the dot product
/// with the candidate embedding plus a per-entity bias.
///
/// Head queries use reciprocal relations (a second relation table entry
/// r + |R|), the standard trick that lets ConvE answer (?, r, t) as the tail
/// query (t, r_reciprocal, ?).
class ConvE : public KgeModel {
 public:
  /// Validates that options.dim is divisible by 4 (the 2-D reshape uses a
  /// fixed width of 4) and at least 12.
  static Result<std::unique_ptr<KgeModel>> Create(int32_t num_entities,
                                                  int32_t num_relations,
                                                  const ModelOptions& options);

  BatchKernel batch_kernel() const override { return BatchKernel::kDot; }
  const Matrix* candidate_embeddings() const override { return &entities_; }
  const Matrix* candidate_bias() const override { return &entity_bias_; }

  /// Runs the conv/FC trunk once per anchor (selecting the plain or
  /// reciprocal relation row from `direction`), collecting the psi query
  /// vectors as rows. The score is psi . candidate + entity bias, so
  /// batching hoists the expensive trunk out of the candidate loop.
  void BuildKernelQueries(const int32_t* anchors, size_t num_queries,
                          int32_t relation, QueryDirection direction,
                          Matrix* queries) const override;

  void UpdateTriple(int32_t head, int32_t relation, int32_t tail,
                    QueryDirection direction, float dscore) override;

  void CollectParameters(std::vector<NamedParameter>* out) override;

 private:
  ConvE(int32_t num_entities, int32_t num_relations, ModelOptions options);

  struct Activations {
    std::vector<float> img;       // (2*kh) x kw input image.
    std::vector<float> conv_pre;  // C x hc x wc pre-activation.
    std::vector<float> flat;      // ReLU'd conv output, flattened (F).
    std::vector<float> psi_pre;   // d before the final ReLU.
    std::vector<float> psi;       // d.
  };

  /// Runs the feed-forward trunk for (anchor, relation-table row).
  void Forward(int32_t anchor, int32_t rel_row, Activations* acts) const;

  static constexpr int32_t kKernel = 3;
  // 4 channels keeps the flattened FC input (and thus the per-update cost,
  // which the FC layer dominates) small while retaining the conv stack.
  static constexpr int32_t kChannels = 4;
  static constexpr int32_t kWidth = 4;  // Reshape width.

  int32_t kh_;  // Reshape height = dim / kWidth.
  int32_t hc_;  // Conv output height = 2*kh - 2.
  int32_t wc_;  // Conv output width = kWidth - 2.
  int32_t flat_size_;

  Matrix entities_;       // |E| x d
  Matrix relations_;      // 2|R| x d (reciprocal table)
  Matrix filters_;        // kChannels x 9
  Matrix conv_bias_;      // 1 x kChannels
  Matrix fc_;             // flat_size x d
  Matrix fc_bias_;        // 1 x d
  Matrix entity_bias_;    // |E| x 1

  AdamState entity_adam_;
  AdamState relation_adam_;
  AdamState filter_adam_;
  AdamState conv_bias_adam_;
  AdamState fc_adam_;
  AdamState fc_bias_adam_;
  AdamState entity_bias_adam_;
};

}  // namespace kgeval

#endif  // KGEVAL_MODELS_CONVE_H_

// Reproduces Figure 4 (and the appendix Figure 5): MAPE of the estimated
// filtered MRR against the maximum sample size, per relation recommender,
// with 95% confidence intervals over repeated samplings.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/framework.h"
#include "eval/full_evaluator.h"
#include "stats/correlation.h"
#include "util/string_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace kgeval;
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  // Figure 4 shows FB15k, CoDEx-M and YAGO3-10; Figure 5 adds FB15k-237,
  // CoDEx-S, CoDEx-L and wikikg2.
  std::vector<std::string> datasets = {"fb15k", "codex-m", "yago310",
                                       "fb15k237", "codex-s", "codex-l"};
  if (!args.only_dataset.empty()) datasets = {args.only_dataset};
  if (args.fast) datasets = {"codex-s"};
  const int reps = args.fast ? 2 : 5;
  const std::vector<double> fractions =
      args.fast ? std::vector<double>{0.05, 0.2}
                : std::vector<double>{0.01, 0.03, 0.05, 0.1, 0.2, 0.3};

  const RecommenderType recommenders[] = {
      RecommenderType::kPt,      RecommenderType::kDbhT,
      RecommenderType::kLwd,     RecommenderType::kLwdT,
      RecommenderType::kOntoSim, RecommenderType::kPie};

  for (const std::string& name : datasets) {
    const SynthOutput synth = bench::LoadPreset(name, args);
    const Dataset& dataset = synth.dataset;
    const FilterIndex filter(dataset);
    bench::TrainSpec spec;
    spec.epochs = args.epochs > 0 ? args.epochs : (args.fast ? 3 : 10);
    auto model = bench::TrainModel(dataset, spec);
    FullEvalOptions full_options;
    full_options.max_triples = 1500;  // Same prefix for truth and samples.
    const double truth =
        EvaluateFullRanking(*model, dataset, filter, Split::kTest,
                            full_options)
            .metrics.mrr;

    bench::PrintHeader(StrFormat(
        "Figure 4/5: MAPE (%%) vs sample size on %s (true MRR %.4f); "
        "cells are mean +/- 95%% CI over %d samplings",
        name.c_str(), truth, reps));
    std::vector<std::string> header = {"Recommender"};
    for (double fraction : fractions) {
      header.push_back(bench::F(100.0 * fraction, 0) + "%");
    }
    TextTable table(header);
    const std::vector<int32_t> slots = NeededSlots(dataset, Split::kTest);
    for (RecommenderType type : recommenders) {
      // Fit once per (dataset, recommender); only the sampling repeats.
      auto recommender = CreateRecommender(type);
      const RecommenderScores scores =
          recommender->Fit(dataset).ValueOrDie();
      const CandidateSets sets = BuildStaticSets(scores, dataset);
      std::vector<std::string> row = {RecommenderTypeName(type)};
      for (double fraction : fractions) {
        const int64_t n_s = static_cast<int64_t>(
            fraction * dataset.num_entities());
        std::vector<double> mapes;
        for (int rep = 0; rep < reps; ++rep) {
          Rng rng(1000 + 31 * rep);
          const SampledCandidates pools = DrawCandidates(
              SamplingStrategy::kStatic, &sets, dataset.num_entities(), n_s,
              slots, 2 * dataset.num_relations(), &rng);
          SampledEvalOptions eval_options;
          eval_options.max_triples = full_options.max_triples;
          const double estimate =
              EvaluateSampled(*model, dataset, filter, Split::kTest, pools,
                              eval_options)
                  .metrics.mrr;
          mapes.push_back(100.0 * std::abs(estimate - truth) /
                          std::max(truth, 1e-9));
        }
        row.push_back(StrFormat("%.1f+/-%.1f", Mean(mapes),
                                NormalCi95HalfWidth(mapes)));
      }
      table.AddRow(row);
    }
    std::printf("%s", table.ToString().c_str());
  }
  bench::PrintNote(
      "paper shape: all recommenders converge towards low MAPE as the "
      "sample grows and behave similarly once they catch the hard "
      "negatives; PT is the one that can fail to converge (it misses "
      "unseen candidates); PIE buys no accuracy over L-WD");
  return 0;
}

#include "eval/full_evaluator.h"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "eval/slot_blocks.h"
#include "sched/task_group.h"
#include "util/logging.h"

namespace kgeval {

double FilteredRank(const int32_t* candidates, const float* scores, size_t n,
                    int32_t truth, float truth_score,
                    const std::vector<int32_t>& answers, TieBreak tie,
                    bool candidates_sorted) {
  int64_t higher = 0;
  int64_t tied = 0;
  if (candidates_sorted) {
    // Count higher/tied over the whole pool in one vectorizable sweep, then
    // subtract the skipped candidates (truth duplicates and filtered
    // answers) located by binary search — identical counts to the reference
    // walk below, at a fraction of its branchy per-candidate cost.
    {
      int32_t h = 0, t = 0;
      for (size_t i = 0; i < n; ++i) {
        h += scores[i] > truth_score;
        t += scores[i] == truth_score;
      }
      higher = h;
      tied = t;
    }
    const auto subtract_range = [&](int32_t value) {
      const int32_t* lo = std::lower_bound(candidates, candidates + n, value);
      for (const int32_t* p = lo; p != candidates + n && *p == value; ++p) {
        const float s = scores[p - candidates];
        if (s > truth_score) {
          --higher;
        } else if (s == truth_score) {
          --tied;
        }
      }
    };
    subtract_range(truth);
    for (size_t a = 0; a < answers.size(); ++a) {
      // Filtered setting: other known-true answers never demote the rank.
      if (answers[a] == truth) continue;          // Already subtracted.
      if (a > 0 && answers[a] == answers[a - 1]) continue;  // Deduplicate.
      subtract_range(answers[a]);
    }
  } else {
    // Reference walk for unsorted candidate arrays.
    for (size_t i = 0; i < n; ++i) {
      const int32_t c = candidates[i];
      if (c == truth) continue;
      if (std::binary_search(answers.begin(), answers.end(), c)) continue;
      if (scores[i] > truth_score) {
        ++higher;
      } else if (scores[i] == truth_score) {
        ++tied;
      }
    }
  }
  return RankFromCounts(higher, tied, tie);
}

namespace {

/// Queries per batched kernel call. One score block is kQueryBlock x
/// entity_tile floats (~2 MB at the default tile). The tile is deliberately
/// large: per-query work that happens once per kernel call (TuckER's core
/// contraction, ConvE's conv/FC trunk) repeats once per tile, so small
/// tiles would multiply it.
constexpr size_t kQueryBlock = 16;

}  // namespace

FullEvalResult EvaluateFullRanking(const KgeModel& model,
                                   const Dataset& dataset,
                                   const EvalProtocol& protocol, Split split,
                                   const FullEvalOptions& options) {
  const std::vector<Triple>& triples = dataset.split(split);
  int64_t num_triples = static_cast<int64_t>(triples.size());
  if (options.max_triples > 0) {
    num_triples = std::min(num_triples, options.max_triples);
  }
  const int32_t num_entities = dataset.num_entities();

  FullEvalResult result;
  result.ranks.assign(static_cast<size_t>(num_triples) * 2, 0.0);

  // Slot-major order, sharing the fused ScoreBlock kernel with the sampled
  // evaluator: queries are grouped by the protocol and the entity range
  // acts as the shared candidate pool, swept in cache-sized tiles.
  std::vector<int32_t> all_entities(num_entities);
  std::iota(all_entities.begin(), all_entities.end(), 0);
  const EvalSchedule schedule =
      protocol.BuildSchedule(triples, num_triples, kQueryBlock);
  const std::vector<SlotBlock>& blocks = schedule.blocks;

  // Prepare every entity tile once per evaluation; each slot block then
  // sweeps the prepared tiles instead of re-gathering/transposing the same
  // entity rows per block (the dominant per-block overhead PR 1 paid).
  // One TaskGroup task per tile: the prepare is pure per-tile work, and a
  // concurrent evaluation interleaves its own tiles on the shared workers
  // instead of waiting on this pass's prepare barrier.
  const size_t tile_size = std::max<size_t>(1, options.entity_tile);
  const size_t num_tiles =
      (static_cast<size_t>(num_entities) + tile_size - 1) / tile_size;
  std::vector<CandidateBlock> tiles(num_tiles);
  TaskGroup prepare_group;
  for (size_t t = 0; t < num_tiles; ++t) {
    prepare_group.Submit([&, t] {
      const size_t e0 = t * tile_size;
      const size_t e1 =
          std::min(static_cast<size_t>(num_entities), e0 + tile_size);
      model.PrepareCandidates(all_entities.data() + e0, e1 - e0, &tiles[t]);
      // The int8 sidecar rides the same once-per-evaluation amortization
      // as the gather; models without a kernel surface never set
      // `prepared`, which keeps them on the exact unscreened sweep.
      if (options.screening && tiles[t].prepared) {
        QuantizeCandidateBlock(&tiles[t]);
      }
    });
  }
  prepare_group.Wait();
  const bool screened = num_tiles > 0 && tiles[0].quantized;

  std::atomic<int64_t> screen_queries{0}, screen_screened{0},
      screen_rescored{0}, screen_tiles_skipped{0};
  // Slot-aligned chunks on an explicit TaskGroup, like the sampled
  // evaluator: the pass waits only on its own chunks, and chunk boundaries
  // coincide with slot boundaries so per-chunk query state never straddles
  // a kernel-relation change.
  TaskGroup group;
  SubmitSlotChunks(&group, blocks, [&](size_t block_lo, size_t block_hi) {
    std::vector<int32_t> anchors(kQueryBlock), truths(kQueryBlock);
    std::vector<float> truth_scores(kQueryBlock);
    std::vector<float> scores(kQueryBlock * tile_size);
    std::vector<const std::vector<int32_t>*> answers(kQueryBlock);
    std::vector<int64_t> higher(kQueryBlock), tied(kQueryBlock);
    std::vector<size_t> cursor(kQueryBlock);
    std::vector<char> tile_dead(kQueryBlock);
    ScreenScratch screen_scratch;
    ScreenStats stats;
    for (size_t b = block_lo; b < block_hi; ++b) {
      const SlotBlock& block = blocks[b];
      const bool tail_dir = block.direction == QueryDirection::kTail;
      const size_t qb = block.end - block.begin;
      const int32_t kernel_relation = model.KernelRelation(
          triples[(*block.triple_idx)[block.begin]]);
      for (size_t q = 0; q < qb; ++q) {
        const Triple& triple =
            triples[(*block.triple_idx)[block.begin + q]];
        anchors[q] = tail_dir ? triple.head : triple.tail;
        truths[q] = tail_dir ? triple.tail : triple.head;
        answers[q] = protocol.Answers(triple, block.direction);
        KGEVAL_CHECK(answers[q] != nullptr);
        higher[q] = 0;
        tied[q] = 0;
        cursor[q] = 0;
      }
      if (screened) {
        // Screened sweep: one query construction serves the truth scores,
        // every tile's skip test, and every band re-score.
        const BatchKernel kind = model.batch_kernel();
        const float eps = model.batch_kernel_eps();
        model.BuildKernelQueries(anchors.data(), qb, kernel_relation,
                                 block.direction, &screen_scratch.queries);
        const Matrix& queries = screen_scratch.queries;
        const size_t dim = queries.cols();
        for (size_t q = 0; q < qb; ++q) {
          model.ScoreWithQuery(queries, q, &truths[q], 1,
                               &truth_scores[q]);
        }
        stats.queries += static_cast<int64_t>(qb);
        for (size_t ti = 0; ti < num_tiles; ++ti) {
          const CandidateBlock& tile = tiles[ti];
          const size_t tn = tile.size();
          // Truth-threshold early termination: a tile whose envelope upper
          // bound sits strictly below a query's truth score cannot hold a
          // higher or tied candidate for it; when that is true of every
          // query of the block, the tile is never even swept.
          size_t active = 0;
          for (size_t q = 0; q < qb; ++q) {
            const float ub =
                TileScoreUpperBound(kind, queries.Row(q), dim, tile, eps);
            tile_dead[q] = ub < truth_scores[q];
            if (!tile_dead[q]) ++active;
          }
          if (active == 0) {
            ++stats.tiles_skipped;
            continue;
          }
          ScreenApproxBlock(model, queries, qb, tile, &screen_scratch);
          stats.screened += static_cast<int64_t>(qb) * tn;
          for (size_t q = 0; q < qb; ++q) {
            if (tile_dead[q]) continue;
            const float bound =
                ScreenErrorBound(kind, queries.Row(q), dim, tile);
            const float truth_score = truth_scores[q];
            const float* approx = screen_scratch.approx.data() + q * tn;
            screen_scratch.band_ids.clear();
            for (size_t c = 0; c < tn; ++c) {
              if (approx[c] + bound >= truth_score) {
                screen_scratch.band_ids.push_back(tile.ids[c]);
              }
            }
            const size_t band = screen_scratch.band_ids.size();
            screen_scratch.band_scores.resize(band);
            model.ScoreWithQuery(queries, q,
                                 screen_scratch.band_ids.data(), band,
                                 screen_scratch.band_scores.data());
            const std::vector<int32_t>& ans = *answers[q];
            for (size_t c = 0; c < band; ++c) {
              const int32_t e = screen_scratch.band_ids[c];
              if (e == truths[q]) continue;
              if (std::binary_search(ans.begin(), ans.end(), e)) continue;
              const float s = screen_scratch.band_scores[c];
              if (s > truth_score) {
                ++higher[q];
              } else if (s == truth_score) {
                ++tied[q];
              }
            }
            stats.rescored += static_cast<int64_t>(band);
          }
        }
      } else {
        for (size_t ti = 0; ti < num_tiles; ++ti) {
          const int32_t e0 = static_cast<int32_t>(ti * tile_size);
          const int32_t e1 = std::min(
              num_entities, e0 + static_cast<int32_t>(tile_size));
          const size_t tile = static_cast<size_t>(e1 - e0);
          // The first tile's fused call also emits the truth scores, so
          // the block runs one query construction fewer than a separate
          // ScorePairs pass would.
          model.ScoreBlock(
              anchors.data(), ti == 0 ? truths.data() : nullptr, qb,
              kernel_relation, block.direction, tiles[ti], scores.data(),
              ti == 0 ? truth_scores.data() : nullptr);
          for (size_t q = 0; q < qb; ++q) {
            const std::vector<int32_t>& ans = *answers[q];
            const float truth_score = truth_scores[q];
            const float* row = scores.data() + q * tile;
            // Walk the tile in order, advancing a cursor through the
            // sorted answers list instead of binary-searching per entity.
            size_t cur = cursor[q];
            int64_t h = 0, t = 0;
            for (int32_t e = e0; e < e1; ++e) {
              while (cur < ans.size() && ans[cur] < e) ++cur;
              if (cur < ans.size() && ans[cur] == e) {
                continue;  // Filtered (includes e == truth).
              }
              const float s = row[e - e0];
              if (s > truth_score) {
                ++h;
              } else if (s == truth_score) {
                ++t;
              }
            }
            cursor[q] = cur;
            higher[q] += h;
            tied[q] += t;
          }
        }
      }
      for (size_t q = 0; q < qb; ++q) {
        const double rank =
            RankFromCounts(higher[q], tied[q], options.tie);
        const size_t i =
            static_cast<size_t>((*block.triple_idx)[block.begin + q]);
        result.ranks[i * 2 + (tail_dir ? 0 : 1)] = rank;
      }
    }
    if (stats.queries > 0) {
      screen_queries.fetch_add(stats.queries, std::memory_order_relaxed);
      screen_screened.fetch_add(stats.screened, std::memory_order_relaxed);
      screen_rescored.fetch_add(stats.rescored, std::memory_order_relaxed);
      screen_tiles_skipped.fetch_add(stats.tiles_skipped,
                                     std::memory_order_relaxed);
      AddGlobalScreenStats(stats);
    }
  });
  group.Wait();
  result.screen.queries = screen_queries.load();
  result.screen.screened = screen_screened.load();
  result.screen.rescored = screen_rescored.load();
  result.screen.tiles_skipped = screen_tiles_skipped.load();

  result.metrics = RankingMetrics::FromRanks(result.ranks);
  return result;
}

FullEvalResult EvaluateFullRanking(const KgeModel& model,
                                   const Dataset& dataset,
                                   const FilterIndex& filter, Split split,
                                   const FullEvalOptions& options) {
  const StaticFilteredProtocol protocol(dataset.num_relations(), &filter);
  return EvaluateFullRanking(model, dataset, protocol, split, options);
}

}  // namespace kgeval

#ifndef KGEVAL_GRAPH_TYPE_STORE_H_
#define KGEVAL_GRAPH_TYPE_STORE_H_

#include <cstdint>
#include <vector>

namespace kgeval {

/// Entity -> type assignments (an entity may have several types, as in
/// Freebase/Wikidata `instanceOf`). Used by the type-aware recommenders
/// (DBH-T, OntoSim, L-WD-T) and by the synthetic generator.
class TypeStore {
 public:
  TypeStore() : num_types_(0) {}
  TypeStore(int32_t num_entities, int32_t num_types);

  /// Adds type `type` to entity `entity` (idempotent).
  void Assign(int32_t entity, int32_t type);

  /// Sorts per-entity and per-type lists; call once after all Assign calls.
  void Seal();

  int32_t num_types() const { return num_types_; }
  int32_t num_entities() const {
    return static_cast<int32_t>(entity_types_.size());
  }

  /// Total number of (entity, type) assignments — the |TS| of Table 4.
  int64_t num_assignments() const { return num_assignments_; }

  bool empty() const { return num_types_ == 0; }

  const std::vector<int32_t>& TypesOf(int32_t entity) const {
    return entity_types_[entity];
  }
  const std::vector<int32_t>& EntitiesOf(int32_t type) const {
    return type_entities_[type];
  }

  /// True if `entity` carries `type`. O(log #types(entity)) after Seal().
  bool HasType(int32_t entity, int32_t type) const;

 private:
  int32_t num_types_;
  int64_t num_assignments_ = 0;
  std::vector<std::vector<int32_t>> entity_types_;
  std::vector<std::vector<int32_t>> type_entities_;
};

}  // namespace kgeval

#endif  // KGEVAL_GRAPH_TYPE_STORE_H_

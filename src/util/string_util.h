#ifndef KGEVAL_UTIL_STRING_UTIL_H_
#define KGEVAL_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace kgeval {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` on `sep` (single char); keeps empty fields.
std::vector<std::string> SplitString(std::string_view text, char sep);

/// Formats a double with `digits` significant fraction digits, trimming to a
/// compact human-readable form (used by the table printer).
std::string FormatDouble(double value, int digits = 3);

/// Formats a count with thousands separators: 1234567 -> "1,234,567".
std::string FormatWithCommas(long long value);

}  // namespace kgeval

#endif  // KGEVAL_UTIL_STRING_UTIL_H_

#ifndef KGEVAL_SERVICE_LINE_CLIENT_H_
#define KGEVAL_SERVICE_LINE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace kgeval {

/// A minimal blocking client for the kgeval wire protocol
/// (docs/PROTOCOL.md): connect, write request lines, read reply lines.
/// This is the reference client the conformance tests and the load bench
/// drive the server with; it deliberately knows nothing about verbs — only
/// the framing (LF lines) and the reply shape (ITEM* then one terminal
/// OK/DONE/ERR line).
class LineClient {
 public:
  /// Connects (blocking) and applies a receive timeout so a hung server
  /// fails a test instead of wedging it.
  static Result<LineClient> Connect(const std::string& host, uint16_t port,
                                    double recv_timeout_s = 30.0);

  LineClient() = default;
  ~LineClient();
  LineClient(LineClient&& other) noexcept;
  LineClient& operator=(LineClient&& other) noexcept;
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// Writes `line` + LF. Pipelining is just calling this repeatedly
  /// before reading.
  Status SendLine(const std::string& line);
  /// Writes raw bytes (malformed-input tests need exact control).
  Status SendRaw(const std::string& bytes);

  /// Reads one LF-terminated line (terminator stripped). IoError on
  /// timeout or peer close.
  Result<std::string> ReadLine();

  /// True for a reply-terminating line: OK / DONE / ERR as first token.
  static bool IsTerminal(const std::string& line);

  /// The machine-readable code of an `ERR <code> ...` line ("" for
  /// anything else). Lets callers branch on retryable conditions — a
  /// shed ("busy") or a fired deadline ("deadline-exceeded") is back-
  /// pressure to retry against, not a protocol failure.
  static std::string ErrorCode(const std::string& line);

  /// Reads lines up to and including the terminal line of one reply.
  Result<std::vector<std::string>> ReadReply();

  /// Closes the socket (also done on destruction).
  void Close();

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace kgeval

#endif  // KGEVAL_SERVICE_LINE_CLIENT_H_

#ifndef KGEVAL_UTIL_MUTEX_H_
#define KGEVAL_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace kgeval {

/// std::mutex with the capability attribute Clang Thread Safety Analysis
/// needs: libstdc++'s std::mutex is unannotated, so GUARDED_BY(a raw
/// std::mutex) is invisible to the analysis — every locked structure in the
/// repo holds one of these instead. Zero overhead: the wrapper is exactly a
/// std::mutex plus compile-time attributes.
///
/// Lock with MutexLock (scoped, analysis-visible); wait on a CondVar with
/// the lock held. Manual Lock()/Unlock() exist for the rare split-scope
/// case but MutexLock is the default.
class KGEVAL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() KGEVAL_ACQUIRE() { mu_.lock(); }
  void Unlock() KGEVAL_RELEASE() { mu_.unlock(); }
  bool TryLock() KGEVAL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped lock over a Mutex, visible to the analysis (SCOPED_CAPABILITY).
/// Holds a std::unique_lock underneath so CondVar::Wait can release and
/// reacquire during the wait; from the analysis's view the capability is
/// held for the whole scope — the standard treatment of condition waits
/// (the guarded invariant is re-established before Wait returns).
class KGEVAL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) KGEVAL_ACQUIRE(mu) : lock_(mu->mu_) {}
  ~MutexLock() KGEVAL_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with Mutex/MutexLock. Deliberately without the
/// predicate overload: a predicate lambda is analyzed as a separate
/// function that does not hold the capability, so guarded reads inside it
/// would warn — callers write the classic explicit loop instead, whose
/// guarded reads sit in the scope that holds the lock:
///
///   MutexLock lock(&mutex_);
///   while (!ready_) cond_.Wait(lock);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`, waits, reacquires before returning.
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace kgeval

#endif  // KGEVAL_UTIL_MUTEX_H_

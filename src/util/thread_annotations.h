#ifndef KGEVAL_UTIL_THREAD_ANNOTATIONS_H_
#define KGEVAL_UTIL_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis annotations (the capability system behind
/// -Wthread-safety), compiled to nothing on every other compiler. They move
/// the repo's locking contracts — "out_ is touched only under out_mutex_",
/// "RunAfter is loop-thread-only" — from comments into the type system, so
/// an unguarded access is a *compile error* under
/// `cmake -DKGEVAL_THREAD_SAFETY=ON` with clang (CI's thread-safety leg)
/// instead of a race TSan may or may not schedule.
///
/// Vocabulary (all applied to declarations):
///  - KGEVAL_GUARDED_BY(mu): the member may be read/written only while `mu`
///    is held.
///  - KGEVAL_PT_GUARDED_BY(mu): the pointee (not the pointer) is guarded.
///  - KGEVAL_REQUIRES(mu): callers must hold `mu` (or the named capability)
///    around the call.
///  - KGEVAL_EXCLUDES(mu): callers must NOT hold `mu` (the function
///    acquires it itself; prevents self-deadlock).
///  - KGEVAL_ACQUIRE/KGEVAL_RELEASE: the function takes/drops `mu`.
///  - KGEVAL_CAPABILITY: marks a type as a capability. Used both for real
///    mutexes and for *virtual* capabilities like EventLoop::LoopThread,
///    where "holding the lock" means "running on the loop thread".
///  - KGEVAL_ASSERT_CAPABILITY: the function dynamically checks the
///    capability and the analysis may assume it afterwards — the bridge
///    between a runtime CHECK (Debug) and the static contract (clang).
///
/// Naming: macros carry the KGEVAL_ prefix (no bare GUARDED_BY) so they can
/// never collide with another library's shim in the same TU.

#if defined(__clang__) && !defined(SWIG)
#define KGEVAL_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define KGEVAL_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

#define KGEVAL_CAPABILITY(x) \
  KGEVAL_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define KGEVAL_SCOPED_CAPABILITY \
  KGEVAL_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define KGEVAL_GUARDED_BY(x) \
  KGEVAL_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define KGEVAL_PT_GUARDED_BY(x) \
  KGEVAL_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define KGEVAL_ACQUIRED_BEFORE(...) \
  KGEVAL_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define KGEVAL_ACQUIRED_AFTER(...) \
  KGEVAL_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define KGEVAL_REQUIRES(...) \
  KGEVAL_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define KGEVAL_REQUIRES_SHARED(...) \
  KGEVAL_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

#define KGEVAL_ACQUIRE(...) \
  KGEVAL_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define KGEVAL_ACQUIRE_SHARED(...) \
  KGEVAL_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

#define KGEVAL_RELEASE(...) \
  KGEVAL_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define KGEVAL_RELEASE_SHARED(...) \
  KGEVAL_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

#define KGEVAL_TRY_ACQUIRE(...) \
  KGEVAL_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define KGEVAL_EXCLUDES(...) \
  KGEVAL_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define KGEVAL_ASSERT_CAPABILITY(x) \
  KGEVAL_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define KGEVAL_RETURN_CAPABILITY(x) \
  KGEVAL_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escapes the analysis for one function body. Reserved for code the
/// analysis cannot model (e.g. lock/unlock split across callbacks); every
/// use needs a comment saying why.
#define KGEVAL_NO_THREAD_SAFETY_ANALYSIS \
  KGEVAL_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // KGEVAL_UTIL_THREAD_ANNOTATIONS_H_

#include "util/fault.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>

#include "util/logging.h"
#include "util/mutex.h"
#include "util/string_util.h"
#include "util/thread_annotations.h"

namespace kgeval {

namespace {

/// The registered probe names. Adding a probe site means adding its name
/// here AND documenting it in docs/ARCHITECTURE.md ("Fault points") —
/// kgeval_lint's `fault-doc` rule cross-checks the two.
const char* const kFaultPoints[] = {
    "io.checkpoint.open",     // checkpoint.cc: LoadModel open fails
    "io.checkpoint.read",     // checkpoint.cc: parameter read truncated
    "io.checkpoint.write",    // checkpoint.cc: SaveModel flush fails
    "net.loop.poll",          // event_loop.cc: poller returns injected errno
    "net.recv.close",         // connection.cc: peer vanishes mid-line
    "net.send.eagain",        // connection.cc: send would block this flush
    "net.send.short_write",   // connection.cc: send accepts one byte
    "sched.task.delay",       // task_group.cc: task start delayed
};

struct PointState {
  FaultSpec spec;
  int64_t hits = 0;   // Probe evaluations since arming.
  int64_t fired = 0;  // Hits that actually triggered.
};

struct Registry {
  Mutex mutex;
  std::unordered_map<std::string, PointState> armed KGEVAL_GUARDED_BY(mutex);
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

bool IsKnownPoint(const std::string& point) {
  for (const char* name : kFaultPoints) {
    if (point == name) return true;
  }
  return false;
}

bool ParseErrnoName(const std::string& value, int* out) {
  static const std::pair<const char*, int> kNames[] = {
      {"EIO", EIO},         {"ENOENT", ENOENT}, {"EAGAIN", EAGAIN},
      {"EPIPE", EPIPE},     {"ENOMEM", ENOMEM}, {"ECONNRESET", ECONNRESET},
      {"EBADF", EBADF},     {"EINVAL", EINVAL},
  };
  for (const auto& [name, number] : kNames) {
    if (value == name) {
      *out = number;
      return true;
    }
  }
  char* end = nullptr;
  const long n = std::strtol(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || end == value.c_str() || n <= 0) {
    return false;
  }
  *out = static_cast<int>(n);
  return true;
}

bool ParseCount(const std::string& value, int64_t* out) {
  char* end = nullptr;
  const long long n = std::strtoll(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || end == value.c_str()) return false;
  *out = n;
  return true;
}

Status ParseDirectives(const std::string& point, const std::string& list,
                       FaultSpec* spec) {
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string directive = list.substr(start, comma - start);
    start = comma + 1;
    if (directive.empty()) continue;
    const size_t eq = directive.find('=');
    const std::string key =
        eq == std::string::npos ? directive : directive.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : directive.substr(eq + 1);
    int64_t n = 0;
    if (key == "once") {
      spec->count = 1;
    } else if (key == "always") {
      spec->count = -1;
    } else if (key == "nth") {
      if (!ParseCount(value, &n) || n < 1) {
        return Status::InvalidArgument(
            StrFormat("%s: nth wants a positive integer, got '%s'",
                      point.c_str(), value.c_str()));
      }
      spec->skip = n - 1;
      spec->count = 1;
    } else if (key == "skip") {
      if (!ParseCount(value, &n) || n < 0) {
        return Status::InvalidArgument(StrFormat(
            "%s: skip wants a non-negative integer, got '%s'", point.c_str(),
            value.c_str()));
      }
      spec->skip = n;
    } else if (key == "count") {
      if (!ParseCount(value, &n) || (n < 1 && n != -1)) {
        return Status::InvalidArgument(
            StrFormat("%s: count wants a positive integer or -1, got '%s'",
                      point.c_str(), value.c_str()));
      }
      spec->count = n;
    } else if (key == "errno") {
      if (!ParseErrnoName(value, &spec->inject_errno)) {
        return Status::InvalidArgument(StrFormat(
            "%s: unknown errno '%s'", point.c_str(), value.c_str()));
      }
    } else if (key == "delay_ms") {
      if (!ParseCount(value, &n) || n < 0) {
        return Status::InvalidArgument(StrFormat(
            "%s: delay_ms wants a non-negative integer, got '%s'",
            point.c_str(), value.c_str()));
      }
      spec->kind = FaultSpec::Kind::kDelay;
      spec->delay_ms = static_cast<int>(n);
    } else {
      return Status::InvalidArgument(StrFormat(
          "%s: unknown directive '%s'", point.c_str(), directive.c_str()));
    }
  }
  return Status::OK();
}

}  // namespace

namespace fault_internal {

std::atomic<int> armed_points{0};

bool Evaluate(const char* point, int* out_errno) {
  FaultSpec spec;
  {
    Registry& registry = GetRegistry();
    MutexLock lock(&registry.mutex);
    auto it = registry.armed.find(point);
    if (it == registry.armed.end()) return false;
    PointState& state = it->second;
    ++state.hits;
    if (state.hits <= state.spec.skip) return false;
    if (state.spec.count >= 0 && state.fired >= state.spec.count) {
      return false;
    }
    ++state.fired;
    spec = state.spec;
  }
  if (spec.kind == FaultSpec::Kind::kDelay) {
    // Sleep outside the registry lock: a delayed task must not serialize
    // every other probe in the process behind its nap.
    std::this_thread::sleep_for(std::chrono::milliseconds(spec.delay_ms));
    return false;
  }
  if (out_errno != nullptr) *out_errno = spec.inject_errno;
  return true;
}

}  // namespace fault_internal

void ArmFault(const std::string& point, const FaultSpec& spec) {
  KGEVAL_CHECK(IsKnownPoint(point))
      << "unknown fault point '" << point
      << "' (see FaultPointNames in util/fault.cc)";
  Registry& registry = GetRegistry();
  MutexLock lock(&registry.mutex);
  const bool fresh = registry.armed.find(point) == registry.armed.end();
  registry.armed[point] = PointState{spec, 0, 0};
  if (fresh) {
    fault_internal::armed_points.fetch_add(1, std::memory_order_relaxed);
  }
}

void DisarmFault(const std::string& point) {
  Registry& registry = GetRegistry();
  MutexLock lock(&registry.mutex);
  if (registry.armed.erase(point) > 0) {
    fault_internal::armed_points.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAllFaults() {
  Registry& registry = GetRegistry();
  MutexLock lock(&registry.mutex);
  fault_internal::armed_points.fetch_sub(
      static_cast<int>(registry.armed.size()), std::memory_order_relaxed);
  registry.armed.clear();
}

int64_t FaultTriggerCount(const std::string& point) {
  Registry& registry = GetRegistry();
  MutexLock lock(&registry.mutex);
  auto it = registry.armed.find(point);
  return it == registry.armed.end() ? 0 : it->second.fired;
}

Status ArmFaultsFromSpec(const std::string& spec) {
  // Parse everything before arming anything: a bad entry must not leave
  // half the spec live.
  std::vector<std::pair<std::string, FaultSpec>> parsed;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t semi = spec.find(';', start);
    if (semi == std::string::npos) semi = spec.size();
    const std::string entry = spec.substr(start, semi - start);
    start = semi + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(StrFormat(
          "fault entry '%s' is missing '=directives'", entry.c_str()));
    }
    const std::string point = entry.substr(0, eq);
    if (!IsKnownPoint(point)) {
      return Status::InvalidArgument(
          StrFormat("unknown fault point '%s'", point.c_str()));
    }
    FaultSpec fault;
    KGEVAL_RETURN_NOT_OK(ParseDirectives(point, entry.substr(eq + 1), &fault));
    parsed.emplace_back(point, fault);
  }
  for (const auto& [point, fault] : parsed) ArmFault(point, fault);
  return Status::OK();
}

Status ArmFaultsFromEnv() {
  const char* spec = std::getenv("KGEVAL_FAULTS");
  if (spec == nullptr || spec[0] == '\0') return Status::OK();
  return ArmFaultsFromSpec(spec);
}

const std::vector<const char*>& FaultPointNames() {
  static const std::vector<const char*>* names = [] {
    auto* v = new std::vector<const char*>(std::begin(kFaultPoints),
                                           std::end(kFaultPoints));
    std::sort(v->begin(), v->end(), [](const char* a, const char* b) {
      return std::string_view(a) < std::string_view(b);
    });
    return v;
  }();
  return *names;
}

}  // namespace kgeval

#ifndef KGEVAL_STATS_HYPERGEOMETRIC_H_
#define KGEVAL_STATS_HYPERGEOMETRIC_H_

#include <cstdint>

#include "util/rng.h"

namespace kgeval {

/// Hypergeometric distribution H(K, N, n): number of "successes" when
/// drawing n items without replacement from a population of N containing K
/// successes. This is the distribution of the paper's X_u — the number of
/// sampled entities outranking the true answer (Section 4, Eq. 1).
class Hypergeometric {
 public:
  /// K = successes in population, N = population size, n = draws.
  Hypergeometric(int64_t K, int64_t N, int64_t n);

  /// E[X] = n * K / N.
  double Mean() const;

  /// Var[X] = n * (K/N) * (1 - K/N) * (N - n)/(N - 1).
  double Variance() const;

  /// P(X = k) computed in log space for stability.
  double Pmf(int64_t k) const;

  /// One draw: sequential simulation, O(n). Adequate for test workloads.
  int64_t Sample(Rng* rng) const;

  int64_t successes() const { return K_; }
  int64_t population() const { return N_; }
  int64_t draws() const { return n_; }

 private:
  int64_t K_;
  int64_t N_;
  int64_t n_;
};

/// Expected number of entities outranking the true answer when sampling
/// n_s entities uniformly from a pool of `pool` that contains `higher`
/// entities ranked above it — the quantity compared by Theorem 1. The
/// effective draw count is min(n_s, pool).
double ExpectedHigherRanked(int64_t higher, int64_t pool, int64_t n_s);

/// Theorem 1's expected gain E[Y] = E[X_u] - E[X_RS]: the expected number of
/// positions gained (closer to the true rank) by sampling from a range set
/// of size `range_size` rather than from all `num_entities` entities, for a
/// query with `higher` entities ranked above the true answer. Non-negative
/// whenever the range set contains all of them (the theorem's assumption).
double Theorem1ExpectedGain(int64_t higher, int64_t num_entities,
                            int64_t range_size, int64_t n_s);

}  // namespace kgeval

#endif  // KGEVAL_STATS_HYPERGEOMETRIC_H_

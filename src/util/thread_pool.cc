#include "util/thread_pool.h"

#include <algorithm>

namespace kgeval {
namespace {

/// Set for the lifetime of every pool worker thread; lets ParallelFor
/// detect re-entrant calls (a worker waiting on chunks it submitted to its
/// own pool would deadlock once all workers are inside such a wait).
thread_local bool tls_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  tls_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool* GlobalThreadPool() {
  static ThreadPool* pool = new ThreadPool();
  return pool;
}

bool InThreadPoolWorker() { return tls_pool_worker; }

void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t, size_t)>& fn,
                 size_t min_chunk) {
  if (begin >= end) return;
  if (InThreadPoolWorker()) {
    // Re-entrant call from a pool worker: run inline. Submitting and
    // waiting here would block a worker on tasks that only the (possibly
    // fully occupied) workers themselves could drain.
    fn(begin, end);
    return;
  }
  ThreadPool* pool = GlobalThreadPool();
  const size_t n = end - begin;
  const size_t max_chunks = pool->num_threads() * 4;
  size_t chunk = std::max(min_chunk, (n + max_chunks - 1) / max_chunks);
  if (pool->num_threads() <= 1 || n <= min_chunk) {
    fn(begin, end);
    return;
  }
  // Per-call completion latch so concurrent ParallelFor calls (or other
  // Submit users) never wait on each other's tasks.
  struct Latch {
    std::mutex m;
    std::condition_variable cv;
    size_t pending = 0;
  } latch;
  for (size_t lo = begin; lo < end; lo += chunk) ++latch.pending;
  for (size_t lo = begin; lo < end; lo += chunk) {
    const size_t hi = std::min(end, lo + chunk);
    pool->Submit([&fn, &latch, lo, hi] {
      fn(lo, hi);
      std::unique_lock<std::mutex> lock(latch.m);
      if (--latch.pending == 0) latch.cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(latch.m);
  latch.cv.wait(lock, [&latch] { return latch.pending == 0; });
}

}  // namespace kgeval

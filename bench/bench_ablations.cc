// Ablations over the design choices DESIGN.md calls out (not tables from
// the paper, but checks that the reproduction's conclusions are not
// artifacts of a particular choice):
//   1. Tie-breaking convention (mean / optimistic / pessimistic).
//   2. Probabilistic sampling with score weights vs uniform-over-support.
//   3. Per-column threshold optimization vs a fixed global threshold.
//   4. Type-noise rate vs the number of false easy negatives.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/framework.h"
#include "eval/full_evaluator.h"
#include "recommenders/easy_negatives.h"
#include "util/string_util.h"
#include "util/table.h"

namespace kgeval {
namespace {

void TieAblation(const Dataset& dataset, const FilterIndex& filter,
                 const KgeModel& model) {
  bench::PrintHeader("Ablation 1: tie-breaking convention (full ranking)");
  TextTable table({"Convention", "MRR", "Hits@1", "Hits@10"});
  for (auto [tie, name] :
       {std::pair{TieBreak::kMean, "mean (default)"},
        std::pair{TieBreak::kOptimistic, "optimistic"},
        std::pair{TieBreak::kPessimistic, "pessimistic"}}) {
    FullEvalOptions options;
    options.tie = tie;
    options.max_triples = 1500;
    const RankingMetrics m =
        EvaluateFullRanking(model, dataset, filter, Split::kTest, options)
            .metrics;
    table.AddRow({name, bench::F(m.mrr, 4), bench::F(m.hits1, 4),
                  bench::F(m.hits10, 4)});
  }
  std::printf("%s", table.ToString().c_str());
  bench::PrintNote(
      "a large optimistic-vs-pessimistic gap would indicate score "
      "collapse; trained models should show a small one");
}

void WeightAblation(const Dataset& dataset, const FilterIndex& filter,
                    const KgeModel& model, double truth) {
  bench::PrintHeader(
      "Ablation 2: probabilistic weights vs uniform over the same support");
  TextTable table({"Sampler", "fraction", "MRR estimate", "|err|"});
  for (double fraction : {0.02, 0.05, 0.1}) {
    for (bool weighted : {true, false}) {
      FrameworkOptions options;
      options.recommender = RecommenderType::kLwd;
      options.strategy = SamplingStrategy::kProbabilistic;
      options.sample_fraction = fraction;
      auto framework =
          EvaluationFramework::Build(&dataset, options).ValueOrDie();
      double estimate;
      if (weighted) {
        estimate =
            framework->Estimate(model, filter, Split::kTest).metrics.mrr;
      } else {
        // Same support, uniform weights: rebuild pools with weight 1.
        CandidateSets uniform = framework->sets();
        for (auto& w : uniform.weights) {
          std::fill(w.begin(), w.end(), 1.0f);
        }
        Rng rng(3);
        const SampledCandidates pools = DrawCandidates(
            SamplingStrategy::kProbabilistic, &uniform,
            dataset.num_entities(), framework->SampleSize(),
            NeededSlots(dataset, Split::kTest),
            2 * dataset.num_relations(), &rng);
        estimate = EvaluateSampled(model, dataset, filter, Split::kTest,
                                   pools)
                       .metrics.mrr;
      }
      table.AddRow({weighted ? "score-weighted" : "uniform-support",
                    bench::Pct(fraction, 0), bench::F(estimate, 4),
                    bench::F(std::abs(estimate - truth), 4)});
    }
  }
  std::printf("%s", table.ToString().c_str());
  bench::PrintNote(
      "score weighting should match or beat uniform-support sampling at "
      "small fractions: hard negatives carry high scores and enter the "
      "pool first");
}

void ThresholdAblation(const Dataset& dataset, const FilterIndex& filter,
                       const KgeModel& model, double truth) {
  bench::PrintHeader(
      "Ablation 3: per-column threshold optimization vs keep-all-nonzero");
  auto recommender = CreateRecommender(RecommenderType::kLwd);
  const RecommenderScores scores = recommender->Fit(dataset).ValueOrDie();

  TextTable table({"Sets", "RR (macro)", "MRR estimate @10%", "|err|"});
  for (bool optimized : {true, false}) {
    CandidateSets sets;
    if (optimized) {
      sets = BuildStaticSets(scores, dataset);
    } else {
      // Keep every nonzero-score entity (threshold -> 0).
      StaticSetOptions options;
      options.threshold_grid = 1;
      sets = BuildStaticSets(scores, dataset, options);
      for (auto& tau : sets.thresholds) tau = 0.0f;
      sets = BuildProbabilisticSets(scores, dataset);  // Same support.
      sets.weights.clear();
      sets.weights.resize(sets.sets.size());
    }
    Rng rng(4);
    const SampledCandidates pools = DrawCandidates(
        SamplingStrategy::kStatic, &sets, dataset.num_entities(),
        dataset.num_entities() / 10, NeededSlots(dataset, Split::kTest),
        2 * dataset.num_relations(), &rng);
    const double estimate =
        EvaluateSampled(model, dataset, filter, Split::kTest, pools)
            .metrics.mrr;
    table.AddRow({optimized ? "optimized thresholds" : "all nonzero",
                  bench::F(sets.MacroReductionRate(), 3),
                  bench::F(estimate, 4),
                  bench::F(std::abs(estimate - truth), 4)});
  }
  std::printf("%s", table.ToString().c_str());
  bench::PrintNote(
      "optimized thresholds shrink the sets (higher RR) so a fixed n_s "
      "covers more of each set — tighter estimates at equal budget");
}

void NoiseAblation(const bench::BenchArgs& args) {
  bench::PrintHeader(
      "Ablation 4: type-noise rate vs false easy negatives (L-WD)");
  TextTable table({"noise_rate", "easy negatives (%)",
                   "false easy negatives", "injected noise in test"});
  for (double noise : {0.0, 0.002, 0.01, 0.05}) {
    SynthConfig config =
        GetPreset("codex-s", args.paper_scale ? PresetScale::kPaper
                                              : PresetScale::kScaled)
            .ValueOrDie();
    config.noise_rate = noise;
    const SynthOutput synth = GenerateDataset(config).ValueOrDie();
    auto recommender = CreateRecommender(RecommenderType::kLwd);
    const RecommenderScores scores =
        recommender->Fit(synth.dataset).ValueOrDie();
    const EasyNegativeReport report =
        MineEasyNegatives(scores, synth.dataset, 0);
    table.AddRow({bench::F(noise, 3),
                  bench::F(100.0 * report.easy_fraction, 1),
                  FormatWithCommas(report.false_easy),
                  FormatWithCommas(static_cast<long long>(
                      synth.noisy_test_indices.size()))});
  }
  std::printf("%s", table.ToString().c_str());
  bench::PrintNote(
      "false easy negatives scale with the injected KG noise and vanish on "
      "a clean graph — they are data errors, not recommender errors "
      "(the paper's Table 10 reading)");
}

}  // namespace
}  // namespace kgeval

int main(int argc, char** argv) {
  using namespace kgeval;
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  const std::string preset =
      args.only_dataset.empty() ? "codex-m" : args.only_dataset;

  const SynthOutput synth = bench::LoadPreset(preset, args);
  const Dataset& dataset = synth.dataset;
  const FilterIndex filter(dataset);
  bench::TrainSpec spec;
  spec.epochs = args.epochs > 0 ? args.epochs : (args.fast ? 3 : 12);
  auto model = bench::TrainModel(dataset, spec);
  const double truth =
      EvaluateFullRanking(*model, dataset, filter, Split::kTest).metrics.mrr;
  std::printf("dataset %s, ComplEx, true test MRR %.4f\n", preset.c_str(),
              truth);

  TieAblation(dataset, filter, *model);
  WeightAblation(dataset, filter, *model, truth);
  ThresholdAblation(dataset, filter, *model, truth);
  NoiseAblation(args);
  return 0;
}

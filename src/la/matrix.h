#ifndef KGEVAL_LA_MATRIX_H_
#define KGEVAL_LA_MATRIX_H_

#include <cstddef>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace kgeval {

/// Row-major dense float matrix. The embedding tables and all model
/// parameters live in these; rows are the unit of parallel/sparse access.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  float* Row(size_t r) {
    KGEVAL_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }
  const float* Row(size_t r) const {
    KGEVAL_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }

  float& At(size_t r, size_t c) {
    KGEVAL_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float At(size_t r, size_t c) const {
    KGEVAL_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void Fill(float value) { std::fill(data_.begin(), data_.end(), value); }

  /// Reshapes to rows x cols, reusing the allocation when possible. Contents
  /// are unspecified after a resize that changes the element count.
  void Resize(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// Xavier/Glorot uniform initialization with the given fan-in/fan-out.
  void InitXavier(Rng* rng, size_t fan_in, size_t fan_out);

  /// Uniform initialization in [lo, hi].
  void InitUniform(Rng* rng, float lo, float hi);

  /// Gaussian initialization with the given standard deviation.
  void InitGaussian(Rng* rng, float stddev);

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

/// Gathers rows `ids[0..n)` of `src` into `out` TRANSPOSED: out is
/// src.cols() x n with out(k, c) = src(ids[c], k). The candidate axis
/// becomes the contiguous one, which turns the batched scoring kernels into
/// independent-lane loops over candidates that the compiler vectorizes
/// without reassociating any per-candidate reduction.
void GatherRowsT(const Matrix& src, const int32_t* ids, size_t n,
                 Matrix* out);

/// out[q * n + c] = dot(queries.Row(q), column c of gathered_t), where
/// `gathered_t` is a k x n transposed candidate block from GatherRowsT.
/// Each output cell accumulates over k in exactly Dot()'s sequential order
/// (the vectorized lanes are independent candidates), so every score is
/// bit-identical to the scalar path.
void DotScoreBatch(const Matrix& queries, const Matrix& gathered_t,
                   float* out);

/// out[q * n + c] = -sum_k |queries(q, k) - gathered_t(k, c)| — the pairwise
/// negative L1 distance used by translational scoring. Same transposed
/// layout and bit-exactness guarantee as DotScoreBatch.
void NegL1ScoreBatch(const Matrix& queries, const Matrix& gathered_t,
                     float* out);

/// out[q * n + c] = -sum_j sqrt((q_re - g_re)^2 + (q_im - g_im)^2 + eps)
/// over the m = rows/2 complex coordinates: pairwise negative complex
/// distance over split re/im planes. Rows [0, m) of `gathered_t` are the
/// candidates' real plane and rows [m, 2m) the imaginary plane (the natural
/// split a transposed gather produces for the complex-valued models). Same
/// layout and bit-exactness guarantee as DotScoreBatch.
void NegComplexDistScoreBatch(const Matrix& queries, const Matrix& gathered_t,
                              float eps, float* out);

}  // namespace kgeval

#endif  // KGEVAL_LA_MATRIX_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace kgeval {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, CodesHaveDistinctNames) {
  std::set<std::string> names;
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kNotFound, StatusCode::kAlreadyExists,
        StatusCode::kFailedPrecondition, StatusCode::kInternal,
        StatusCode::kUnimplemented, StatusCode::kIoError}) {
    names.insert(StatusCodeToString(code));
  }
  EXPECT_EQ(names.size(), 9u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ReturnNotOkTest, PropagatesError) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    KGEVAL_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(31);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(77);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(3);
  Rng child = parent.Fork();
  EXPECT_NE(parent.Next(), child.Next());
}

TEST(ZipfTest, FirstRankMostProbable) {
  ZipfSampler zipf(100, 1.0);
  Rng rng(13);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[99]);
}

TEST(ZipfTest, ZeroExponentIsUniformish) {
  ZipfSampler zipf(4, 0.0);
  Rng rng(29);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c, n / 4, n / 40);
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.239), "1.24");
}

TEST(StringUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(SplitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatWithCommas(-45678), "-45,678");
}

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TextTableTest, CsvEscapesCommas) {
  TextTable table({"k", "v"});
  table.AddRow({"a,b", "x\"y"});
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"x\"\"y\""), std::string::npos);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  // The substrate has no join/wait surface of its own (grouping lives in
  // sched/task_group.h); its one completion guarantee is that destruction
  // drains the remaining queue before joining the workers.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SingleThreadPoolStillRunsTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, InThreadPoolWorkerFlag) {
  EXPECT_FALSE(InThreadPoolWorker());
  std::atomic<int> in_worker{0};
  {
    ThreadPool pool(2);
    pool.Submit([&in_worker] {
      if (InThreadPoolWorker()) in_worker.fetch_add(1);
    });
  }
  EXPECT_EQ(in_worker.load(), 1);
  EXPECT_FALSE(InThreadPoolWorker());
}

TEST(ThreadPoolTest, ConcurrentSubmitIsSafe) {
  // Hammer Submit from several producers; destruction drains whatever is
  // still queued, and every task must run exactly once.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
      producers.emplace_back([&pool, &counter] {
        for (int i = 0; i < 250; ++i) {
          pool.Submit([&counter] { counter.fetch_add(1); });
        }
      });
    }
    for (auto& producer : producers) producer.join();
  }
  EXPECT_EQ(counter.load(), 1000);
}

}  // namespace
}  // namespace kgeval

#ifndef KGEVAL_RECOMMENDERS_RECOMMENDER_H_
#define KGEVAL_RECOMMENDERS_RECOMMENDER_H_

#include <memory>
#include <string>

#include "graph/dataset.h"
#include "sparse/csr.h"
#include "util/status.h"

namespace kgeval {

/// The relation recommenders compared in the paper (Sections 2–3).
enum class RecommenderType {
  kPt = 0,    // PseudoTyped: entities seen in train.
  kDbh,       // Degree-Based Heuristic: occurrence counts.
  kDbhT,      // DBH + type propagation.
  kOntoSim,   // All entities of any type observed for the slot.
  kLwd,       // Linear WD (Algorithm 1).
  kLwdT,      // L-WD with type columns appended to B.
  kPie,       // Lightweight neural entity-typing model.
};

const char* RecommenderTypeName(RecommenderType type);
Result<RecommenderType> ParseRecommenderType(const std::string& name);

/// Output of fitting a relation recommender: the score matrix
/// X in R^{|E| x 2|R|} (sparse; absent entries score 0 and are the "easy
/// negatives"), plus its transpose for per-set access, and the fit time.
struct RecommenderScores {
  RecommenderType type = RecommenderType::kLwd;
  /// Entity-major scores: row = entity, column = domain/range index
  /// (domains [0, |R|), ranges [|R|, 2|R|)).
  CsrMatrix scores;
  /// Set-major transpose: row = domain/range index, columns = entities.
  CsrMatrix by_set;
  double fit_seconds = 0.0;

  int32_t num_relations() const {
    return static_cast<int32_t>(scores.cols() / 2);
  }
};

/// A method assigning every entity a score of being a head or tail of every
/// relation, using only the train split (and, for the type-aware variants,
/// the published TypeStore).
class RelationRecommender {
 public:
  virtual ~RelationRecommender() = default;

  virtual RecommenderType type() const = 0;
  const char* name() const { return RecommenderTypeName(type()); }

  /// True if the method requires entity types to be present.
  virtual bool requires_types() const { return false; }

  /// Fits on dataset.train() and returns the score matrix. Must be
  /// deterministic given the dataset and the recommender's own seed.
  virtual Result<RecommenderScores> Fit(const Dataset& dataset) = 0;
};

/// Factory. `seed` only affects the stochastic methods (PIE).
std::unique_ptr<RelationRecommender> CreateRecommender(RecommenderType type,
                                                       uint64_t seed = 17);

namespace internal {
/// Finalizes a score matrix: builds the transpose and stamps metadata.
RecommenderScores FinalizeScores(RecommenderType type, CsrMatrix scores,
                                 double fit_seconds);
}  // namespace internal

}  // namespace kgeval

#endif  // KGEVAL_RECOMMENDERS_RECOMMENDER_H_

#ifndef KGEVAL_UTIL_RNG_H_
#define KGEVAL_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace kgeval {

/// Deterministic, seedable pseudo-random generator (xoshiro256** seeded via
/// splitmix64). Used everywhere instead of std::mt19937 so that results are
/// bit-identical across platforms and standard-library versions.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next 64 random bits.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// nearly-divisionless method.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform float in [0, 1).
  float NextFloat();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box-Muller (caches the second value).
  double NextGaussian();

  /// Forks an independent stream; child streams are decorrelated from the
  /// parent regardless of how many values the parent draws afterwards.
  Rng Fork();

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Zipf-distributed integer sampler over {0, ..., n-1} with exponent `s`
/// (probability of rank k proportional to 1/(k+1)^s). Precomputes the CDF;
/// sampling is O(log n) via binary search.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double exponent);

  /// Draws one value in [0, n).
  size_t Sample(Rng* rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace kgeval

#endif  // KGEVAL_UTIL_RNG_H_

#ifndef KGEVAL_CORE_FRAMEWORK_H_
#define KGEVAL_CORE_FRAMEWORK_H_

#include <memory>

#include "core/adaptive_evaluator.h"
#include "core/candidate_sets.h"
#include "core/sampled_evaluator.h"
#include "core/samplers.h"
#include "recommenders/recommender.h"
#include "util/status.h"

namespace kgeval {

/// Configuration of the end-to-end evaluation framework (Figure 1 B):
/// which relation recommender guides the sampling, which sampling strategy
/// draws the pools, and how many candidates to draw per slot.
struct FrameworkOptions {
  RecommenderType recommender = RecommenderType::kLwd;
  SamplingStrategy strategy = SamplingStrategy::kProbabilistic;
  /// n_s = sample_fraction * |E| unless sample_size overrides it.
  double sample_fraction = 0.1;
  int64_t sample_size = 0;
  bool include_seen = true;
  StaticSetOptions static_options;
  TieBreak tie = TieBreak::kMean;
  uint64_t seed = 33;
  /// Quantized screening for every estimate run through the framework
  /// (SampledEvalOptions::screening): ranks are bit-identical with it on
  /// or off; it only changes how much exact fp32 work each query pays.
  bool screening = false;
};

/// The paper's contribution as a reusable object: fit a relation
/// recommender once, derive candidate sets once, then estimate the filtered
/// ranking metrics of *any* KGC model in a fraction of the full-ranking
/// cost. Each Estimate() call redraws fresh pools (2|R| samplings); to pin
/// one draw across many models/checkpoints, wrap the framework in an
/// EvalSession (core/eval_session.h) or pair DrawPools() with the
/// *OnPools() variants below.
class EvaluationFramework {
 public:
  /// Fits the recommender on dataset.train() and prepares the candidate
  /// sets. The dataset must outlive the framework.
  static Result<std::unique_ptr<EvaluationFramework>> Build(
      const Dataset* dataset, const FrameworkOptions& options);

  /// Draws one set of candidate pools for `split`, exactly the way
  /// Estimate() does internally (2|R| samplings, advancing the framework's
  /// RNG: consecutive draws differ, each is deterministic given the seed
  /// and the draw count so far).
  SampledCandidates DrawPools(Split split);

  /// Estimates the filtered metrics of `model` on `split`. `max_triples`
  /// (0 = all) evaluates only the split's deterministic prefix, matching
  /// FullEvalOptions::max_triples for apples-to-apples comparisons.
  /// Equivalent to EstimateOnPools(model, filter, split, DrawPools(split)).
  SampledEvalResult Estimate(const KgeModel& model, const FilterIndex& filter,
                             Split split, int64_t max_triples = 0);

  /// Estimate() on caller-provided pools (a pinned DrawPools() result):
  /// scores `model` against `pools` without drawing anything, so repeated
  /// calls are comparable — rank differences between models are model
  /// differences, not pool-draw noise. Const and thread-safe: concurrent
  /// calls with different models are how EvalSession::EstimateMany runs.
  /// `cancel` (optional, must outlive the call) aborts the pass at the next
  /// block boundary; the result comes back flagged `cancelled`.
  SampledEvalResult EstimateOnPools(const KgeModel& model,
                                    const FilterIndex& filter, Split split,
                                    const SampledCandidates& pools,
                                    int64_t max_triples = 0,
                                    const CancelToken* cancel = nullptr) const;

  /// Protocol-parametric EstimateOnPools: evaluates under any EvalProtocol
  /// (eval/protocol.h) instead of the implied static filtered one. Pools
  /// stay relation-keyed (2|R| slots) for every protocol, so the same
  /// DrawPools() draw serves static and temporal passes alike. With a
  /// StaticFilteredProtocol this is bit-identical to the FilterIndex
  /// overload above.
  SampledEvalResult EstimateOnPools(const KgeModel& model,
                                    const EvalProtocol& protocol, Split split,
                                    const SampledCandidates& pools,
                                    int64_t max_triples = 0,
                                    const CancelToken* cancel = nullptr) const;

  /// Confidence-bounded variant of Estimate: draws fresh pools the same way
  /// and runs EvaluateAdaptive over them, stopping as soon as the target
  /// metric's confidence half-width reaches the requested width (see
  /// AdaptiveEvalOptions). `adaptive.tie` is overridden by the framework's
  /// configured tie-break so the two estimators stay comparable.
  AdaptiveEvalResult EstimateAdaptive(const KgeModel& model,
                                      const FilterIndex& filter, Split split,
                                      const AdaptiveEvalOptions& adaptive = {});

  /// EstimateAdaptive() on caller-provided pools; same pinning semantics,
  /// thread-safety, and cancellation contract as EstimateOnPools (the
  /// `cancel` argument overrides `adaptive.cancel` when non-null).
  AdaptiveEvalResult EstimateAdaptiveOnPools(
      const KgeModel& model, const FilterIndex& filter, Split split,
      const SampledCandidates& pools, const AdaptiveEvalOptions& adaptive = {},
      const CancelToken* cancel = nullptr) const;

  /// Protocol-parametric EstimateAdaptiveOnPools; see the sampled variant
  /// for the protocol contract.
  AdaptiveEvalResult EstimateAdaptiveOnPools(
      const KgeModel& model, const EvalProtocol& protocol, Split split,
      const SampledCandidates& pools, const AdaptiveEvalOptions& adaptive = {},
      const CancelToken* cancel = nullptr) const;

  /// Loads the checkpoint at `path` (models/checkpoint.h) and validates it
  /// against the framework's dataset: mismatched entity/relation counts
  /// would index past the model's embedding tables during scoring, so they
  /// fail here as InvalidArgument instead. The building block of the
  /// checkpoint sweep — EvalSession::EstimateCheckpoints calls this
  /// directly (keeping load and estimate separate is what lets it bound
  /// model residency and free each model before streaming its result).
  /// Const and thread-safe.
  Result<std::unique_ptr<KgeModel>> LoadCheckpoint(
      const std::string& path) const;

  /// One-shot convenience fusing LoadCheckpoint + EstimateOnPools: loads
  /// the checkpoint at `path`, estimates it on caller-provided pools, and
  /// frees the model before returning — for single-checkpoint callers (a
  /// service request naming one path) that don't need a sweep's residency
  /// accounting. A load failure (missing, corrupt, or truncated file) or a
  /// dataset mismatch comes back as the Status, never a crash. Const and
  /// thread-safe like EstimateOnPools. A `cancel` token that fires before
  /// the load or during the pass turns the whole call into
  /// Status(kCancelled) — a cancelled pass's partial metrics are never
  /// returned.
  Result<SampledEvalResult> EstimateCheckpointOnPools(
      const std::string& path, const FilterIndex& filter, Split split,
      const SampledCandidates& pools, int64_t max_triples = 0,
      const CancelToken* cancel = nullptr) const;

  /// Protocol-parametric EstimateCheckpointOnPools.
  Result<SampledEvalResult> EstimateCheckpointOnPools(
      const std::string& path, const EvalProtocol& protocol, Split split,
      const SampledCandidates& pools, int64_t max_triples = 0,
      const CancelToken* cancel = nullptr) const;

  /// Adaptive counterpart of EstimateCheckpointOnPools.
  Result<AdaptiveEvalResult> EstimateAdaptiveCheckpointOnPools(
      const std::string& path, const FilterIndex& filter, Split split,
      const SampledCandidates& pools, const AdaptiveEvalOptions& adaptive = {},
      const CancelToken* cancel = nullptr) const;

  /// Protocol-parametric adaptive checkpoint estimate.
  Result<AdaptiveEvalResult> EstimateAdaptiveCheckpointOnPools(
      const std::string& path, const EvalProtocol& protocol, Split split,
      const SampledCandidates& pools, const AdaptiveEvalOptions& adaptive = {},
      const CancelToken* cancel = nullptr) const;

  /// Resolved per-slot sample count n_s.
  int64_t SampleSize() const;

  const Dataset* dataset() const { return dataset_; }
  const FrameworkOptions& options() const { return options_; }
  const RecommenderScores& scores() const { return scores_; }
  const CandidateSets& sets() const { return sets_; }
  /// Recommender fit time plus candidate-set construction time.
  double build_seconds() const { return build_seconds_; }

 private:
  EvaluationFramework(const Dataset* dataset, FrameworkOptions options);

  const Dataset* dataset_;
  FrameworkOptions options_;
  RecommenderScores scores_;
  CandidateSets sets_;
  double build_seconds_ = 0.0;
  Rng rng_;
};

}  // namespace kgeval

#endif  // KGEVAL_CORE_FRAMEWORK_H_

#ifndef KGEVAL_EVAL_AUC_H_
#define KGEVAL_EVAL_AUC_H_

#include <cstdint>
#include <vector>

#include "graph/dataset.h"
#include "models/kge_model.h"
#include "util/rng.h"

namespace kgeval {

/// ROC-AUC and area under the precision-recall curve for a set of scored
/// positives vs scored negatives. Ties are handled by the trapezoidal /
/// midpoint convention (a tied pair counts 1/2).
struct AucResult {
  double roc_auc = 0.0;
  double pr_auc = 0.0;
  int64_t num_positives = 0;
  int64_t num_negatives = 0;
};

/// Computes both areas from raw score vectors.
AucResult ComputeAuc(const std::vector<float>& positive_scores,
                     const std::vector<float>& negative_scores);

/// Triple-classification AUC for a KGC model, the sampled-evaluation
/// complement Section 7 proposes: positives are the split's triples,
/// negatives are per-triple tail corruptions — uniform when `pools` is
/// null, or drawn from the relation's range pool (hard negatives) when
/// given. With hard negatives the task stops being "nearly solved"
/// (Safavi & Koutra's CoDEx observation reproduced as an API).
struct TripleAucOptions {
  int64_t max_triples = 5000;
  int32_t negatives_per_positive = 1;
  uint64_t seed = 23;
};

AucResult ComputeTripleClassificationAuc(
    const KgeModel& model, const Dataset& dataset, Split split,
    const TripleAucOptions& options,
    const std::vector<std::vector<int32_t>>* pools = nullptr);

}  // namespace kgeval

#endif  // KGEVAL_EVAL_AUC_H_

#include "eval/protocol.h"

#include <algorithm>

namespace kgeval {

std::vector<std::vector<int32_t>> EvalProtocol::GroupQueries(
    const std::vector<Triple>& triples, int64_t num_triples) const {
  std::vector<std::vector<int32_t>> buckets(num_groups());
  for (int64_t i = 0; i < num_triples; ++i) {
    buckets[GroupOf(triples[i])].push_back(static_cast<int32_t>(i));
  }
  return buckets;
}

EvalSchedule StaticFilteredProtocol::BuildSchedule(
    const std::vector<Triple>& triples, int64_t num_triples,
    size_t query_block) const {
  // Exactly the pre-protocol GroupByRelation + BuildSlotBlocks order — the
  // schedule (and therefore every rank) is bit-identical to the evaluators
  // before the protocol seam existed.
  EvalSchedule schedule;
  schedule.buckets = GroupQueries(triples, num_triples);
  schedule.blocks =
      BuildSlotBlocks(schedule.buckets, num_relations(), query_block);
  return schedule;
}

TemporalFilteredProtocol::TemporalFilteredProtocol(
    const Dataset& dataset, const TemporalFilterIndex* filter)
    : EvalProtocol(dataset.num_relations()),
      filter_(filter),
      num_timestamps_(std::max<int32_t>(1, dataset.num_timestamps())) {}

EvalSchedule TemporalFilteredProtocol::BuildSchedule(
    const std::vector<Triple>& triples, int64_t num_triples,
    size_t query_block) const {
  EvalSchedule schedule;
  schedule.buckets = GroupQueries(triples, num_triples);
  // Pool-slot-major emission: for each relation, all timestamps of the
  // tail direction, then all timestamps of the head direction. A
  // per-group {tail, head} order would alternate the relation's two pool
  // slots |T| times and re-prepare each candidate tile per timestamp;
  // this order prepares each of the relation's two pools exactly once per
  // chunk, independent of |T|.
  for (int32_t r = 0; r < num_relations(); ++r) {
    for (QueryDirection dir :
         {QueryDirection::kTail, QueryDirection::kHead}) {
      const int32_t slot = DomainRangeIndex(r, dir, num_relations());
      for (int32_t tau = 0; tau < num_timestamps_; ++tau) {
        const std::vector<int32_t>& idx =
            schedule.buckets[r * num_timestamps_ + tau];
        if (idx.empty()) continue;
        for (size_t lo = 0; lo < idx.size(); lo += query_block) {
          schedule.blocks.push_back(
              {r, dir, &idx, lo, std::min(idx.size(), lo + query_block),
               slot});
        }
      }
    }
  }
  return schedule;
}

}  // namespace kgeval

// Fixture: violates exactly `nolint-reason` (linted as src/eval/bad.cc).
int Fixture() {
  int uninitialized;  // NOLINT
  return uninitialized;
}

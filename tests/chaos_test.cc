// Chaos suite: the real EvalServer on a loopback socket with fault points
// armed — vanishing checkpoints, short writes, EAGAIN storms, dropped
// connections, stalled workers — plus deadline, load-shed, and idle-reap
// behavior. Every test asserts the same two things from a different angle:
// an injected failure is contained to the operation it hit (one ITEM ERR,
// one ERR reply, one closed connection), and the server answers the next
// request as if nothing happened.

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/eval_session.h"
#include "models/checkpoint.h"
#include "models/trainer.h"
#include "net/net_util.h"
#include "service/checkpoint_watcher.h"
#include "service/eval_server.h"
#include "service/line_client.h"
#include "synth/config.h"
#include "synth/generator.h"
#include "tests/temp_dir.h"
#include "util/fault.h"
#include "util/string_util.h"

namespace kgeval {
namespace {

std::map<std::string, std::string> ParseKeyValues(const std::string& line) {
  std::map<std::string, std::string> out;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    const size_t eq = token.find('=');
    if (eq != std::string::npos) {
      out[token.substr(0, eq)] = token.substr(eq + 1);
    }
  }
  return out;
}

/// The metric fields of an EVAL reply, minus wall time — the comparable
/// part of the line (eval_s legitimately differs between two runs of the
/// same evaluation).
std::map<std::string, std::string> MetricFields(const std::string& line) {
  auto kv = ParseKeyValues(line);
  kv.erase("eval_s");
  return kv;
}

/// One server + one trained checkpoint directory for the whole suite, as
/// in service_test. Tests that need special server options (deadlines,
/// tiny executor pools) start their own server but share the checkpoints.
class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scratch_ = new TempDir("kgeval_chaos_test");
    auto config = GetPreset(kPreset, PresetScale::kScaled);
    ASSERT_TRUE(config.ok());
    auto synth = GenerateDataset(config.ValueOrDie());
    ASSERT_TRUE(synth.ok());
    const Dataset& dataset = synth.ValueOrDie().dataset;
    ModelOptions model_options;
    model_options.dim = 16;
    model_options.seed = 7;
    auto model = CreateModel(ModelType::kComplEx, dataset.num_entities(),
                             dataset.num_relations(), model_options)
                     .ValueOrDie();
    TrainerOptions trainer_options;
    trainer_options.epochs = kEpochs;
    trainer_options.negatives_per_positive = 4;
    trainer_options.checkpoint_dir = CkptDir();
    Trainer trainer(&dataset, trainer_options);
    ASSERT_TRUE(trainer.Train(model.get()).ok());

    EvalServer::Options options;
    options.service.poll_interval_ms = 20;
    auto server = EvalServer::Start(options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).ValueOrDie().release();

    LineClient client = ConnectAndGreet(server_);
    ASSERT_TRUE(client.SendLine(StrFormat("LOAD %s valid", kPreset)).ok());
    auto reply = client.ReadReply();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_EQ(reply.ValueOrDie().back().rfind("OK ", 0), 0u)
        << reply.ValueOrDie().back();
  }

  static void TearDownTestSuite() {
    DisarmAllFaults();
    delete server_;
    server_ = nullptr;
    delete scratch_;
    scratch_ = nullptr;
  }

  /// No fault outlives its test, whatever path the test exited through.
  void TearDown() override { DisarmAllFaults(); }

  static std::string CkptDir() { return scratch_->path() + "/ckpts"; }
  static std::string CkptPath(int epoch) {
    return CheckpointPath(CkptDir(), epoch, kEpochs);
  }

  static LineClient ConnectAndGreet(EvalServer* server) {
    auto client = LineClient::Connect("127.0.0.1", server->port(),
                                      /*recv_timeout_s=*/60.0);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    auto banner = client.ValueOrDie().ReadLine();
    EXPECT_TRUE(banner.ok()) << banner.status().ToString();
    EXPECT_EQ(banner.ValueOrDie().rfind("KGEVAL ", 0), 0u)
        << banner.ValueOrDie();
    return std::move(client).ValueOrDie();
  }

  static std::string Request(LineClient& client, const std::string& line) {
    EXPECT_TRUE(client.SendLine(line).ok());
    auto reply = client.ReadReply();
    EXPECT_TRUE(reply.ok()) << reply.status().ToString();
    return reply.ok() ? reply.ValueOrDie().back() : std::string();
  }

  static std::vector<std::string> RequestAll(LineClient& client,
                                             const std::string& line) {
    EXPECT_TRUE(client.SendLine(line).ok());
    auto reply = client.ReadReply();
    EXPECT_TRUE(reply.ok()) << reply.status().ToString();
    return reply.ok() ? reply.ValueOrDie() : std::vector<std::string>();
  }

  /// Spins until STATS reports exactly `n` commands in flight *besides*
  /// the probing STATS itself (which executes inline and counts too) —
  /// how tests sequence themselves against blocking verbs on other
  /// connections. Waiting for 0 matters after a terminal reply:
  /// in_flight decrements shortly *after* the reply is emitted, so "my
  /// LOAD replied" does not yet mean the executor is free.
  static void WaitForInFlight(EvalServer* server, int n) {
    LineClient stats = ConnectAndGreet(server);
    for (int i = 0; i < 200; ++i) {
      auto kv = ParseKeyValues(Request(stats, "STATS"));
      if (std::stoi(kv["in_flight"]) == n + 1) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    FAIL() << "in_flight never reached " << n;
  }

  static constexpr const char* kPreset = "codex-s";
  static constexpr int kEpochs = 3;
  static TempDir* scratch_;
  static EvalServer* server_;
};

TempDir* ChaosTest::scratch_ = nullptr;
EvalServer* ChaosTest::server_ = nullptr;

// ---------------------------------------------------------------------------
// The fault registry itself
// ---------------------------------------------------------------------------

TEST(FaultRegistryTest, SpecArmsCountsAndExpires) {
  DisarmAllFaults();
  // nth=2: the first hit passes, the second fires, the third passes again
  // (count defaults to fail-once).
  ASSERT_TRUE(
      ArmFaultsFromSpec("io.checkpoint.read=nth=2,errno=ENOENT").ok());
  int err = 0;
  EXPECT_FALSE(FaultPoint("io.checkpoint.read", &err));
  EXPECT_TRUE(FaultPoint("io.checkpoint.read", &err));
  EXPECT_EQ(err, ENOENT);
  EXPECT_FALSE(FaultPoint("io.checkpoint.read", &err));
  EXPECT_EQ(FaultTriggerCount("io.checkpoint.read"), 1);
  // Unrelated points are not armed.
  EXPECT_FALSE(FaultPoint("net.send.eagain"));
  DisarmAllFaults();
  EXPECT_EQ(FaultTriggerCount("io.checkpoint.read"), 0);
}

TEST(FaultRegistryTest, BadSpecsArmNothing) {
  DisarmAllFaults();
  EXPECT_FALSE(ArmFaultsFromSpec("no.such.point=once").ok());
  EXPECT_FALSE(ArmFaultsFromSpec("io.checkpoint.read=bogus-directive").ok());
  EXPECT_FALSE(ArmFaultsFromSpec("io.checkpoint.read=count=notanint").ok());
  // Parse-all-before-arm: a good entry followed by a bad one must not
  // leave the good one armed.
  EXPECT_FALSE(
      ArmFaultsFromSpec("net.send.eagain=always;no.such.point=once").ok());
  EXPECT_FALSE(FaultPoint("net.send.eagain"));
  EXPECT_FALSE(FaultPoint("io.checkpoint.read"));
}

// Fault-point <-> ARCHITECTURE.md consistency is enforced by kgeval_lint's
// `fault-doc` rule (the repo_lint ctest), which parses the registry source
// directly and so also covers probes not yet wired into FaultPointNames().

// ---------------------------------------------------------------------------
// Checkpoint I/O faults: failures stay per-item
// ---------------------------------------------------------------------------

TEST(FaultRegistryTest, WriteFaultSurfacesIoErrorWithoutPublishing) {
  DisarmAllFaults();
  TempDir scratch("kgeval_chaos_write");
  ModelOptions options;
  options.dim = 8;
  options.seed = 3;
  auto model = CreateModel(ModelType::kComplEx, 50, 4, options).ValueOrDie();
  const std::string path = scratch.path() + "/snap.ckpt";

  FaultSpec spec;
  spec.inject_errno = ENOSPC;
  ArmFault("io.checkpoint.write", spec);
  EXPECT_FALSE(SaveModel(model.get(), path).ok());
  EXPECT_EQ(FaultTriggerCount("io.checkpoint.write"), 1);
  DisarmAllFaults();

  // With the disk "fixed", the same save succeeds and round-trips.
  ASSERT_TRUE(SaveModel(model.get(), path).ok());
  EXPECT_TRUE(LoadModel(path).ok());
}

TEST_F(ChaosTest, SweepContainsReadFaultToOneItemAndParityHolds) {
  LineClient client = ConnectAndGreet(server_);
  const std::string before =
      Request(client, StrFormat("EVAL %s", CkptPath(0).c_str()));
  ASSERT_EQ(before.rfind("OK ", 0), 0u) << before;

  // The second parameter read anywhere in the sweep fails with EIO:
  // exactly one of the three concurrent loads dies, the other two and the
  // sweep itself must not notice.
  FaultSpec spec;
  spec.skip = 1;
  ArmFault("io.checkpoint.read", spec);
  const std::vector<std::string> lines =
      RequestAll(client, StrFormat("SWEEP %s", CkptDir().c_str()));
  EXPECT_EQ(FaultTriggerCount("io.checkpoint.read"), 1);
  DisarmAllFaults();

  int ok_items = 0, err_items = 0;
  for (size_t i = 0; i + 1 < lines.size(); ++i) {
    ASSERT_EQ(lines[i].rfind("ITEM ", 0), 0u) << lines[i];
    if (lines[i].find(" ERR ") != std::string::npos) {
      ++err_items;
    } else {
      ++ok_items;
    }
  }
  EXPECT_EQ(err_items, 1);
  EXPECT_EQ(ok_items, kEpochs - 1);
  ASSERT_EQ(lines.back().rfind(StrFormat("DONE %d ", kEpochs), 0), 0u)
      << lines.back();
  EXPECT_EQ(ParseKeyValues(lines.back())["failed"], "1");

  // With the fault gone, the same EVAL reproduces the pre-fault metrics
  // byte for byte: injection never corrupts, it only fails.
  const std::string after =
      Request(client, StrFormat("EVAL %s", CkptPath(0).c_str()));
  EXPECT_EQ(MetricFields(after), MetricFields(before));
}

TEST_F(ChaosTest, SweepReportsVanishedCheckpointWithoutAborting) {
  // open() returning ENOENT mid-sweep is the wire-visible shape of the
  // listing TOCTOU: a file listed a moment ago is gone by open time.
  FaultSpec spec;
  spec.inject_errno = ENOENT;
  ArmFault("io.checkpoint.open", spec);
  LineClient client = ConnectAndGreet(server_);
  const std::vector<std::string> lines =
      RequestAll(client, StrFormat("SWEEP %s", CkptDir().c_str()));
  DisarmAllFaults();

  int err_items = 0;
  for (size_t i = 0; i + 1 < lines.size(); ++i) {
    if (lines[i].find(" ERR ") != std::string::npos) ++err_items;
  }
  EXPECT_EQ(err_items, 1);
  EXPECT_EQ(ParseKeyValues(lines.back())["failed"], "1");
  EXPECT_EQ(Request(client, "PING"), "OK pong");
}

/// The same TOCTOU at the session layer, with a genuine deletion instead
/// of an injected errno: list the directory, delete one file, sweep the
/// stale list. The vanished path carries its Status in its slot; the
/// others evaluate normally.
TEST(SessionChaosTest, SweepToleratesCheckpointDeletedAfterListing) {
  TempDir scratch("kgeval_session_chaos");
  SynthConfig config;
  config.num_entities = 600;
  config.num_relations = 16;
  config.num_types = 12;
  config.num_train = 8000;
  config.num_valid = 600;
  config.num_test = 600;
  config.seed = 42;
  Dataset dataset = GenerateDataset(config).ValueOrDie().dataset;
  FilterIndex filter(dataset);

  const std::string dir = scratch.path() + "/ckpts";
  std::filesystem::create_directories(dir);
  for (int epoch = 0; epoch < 3; ++epoch) {
    ModelOptions options;
    options.dim = 16;
    options.seed = 100 + static_cast<uint64_t>(epoch);
    auto model = CreateModel(ModelType::kComplEx, dataset.num_entities(),
                             dataset.num_relations(), options)
                     .ValueOrDie();
    ASSERT_TRUE(
        SaveModel(model.get(), CheckpointPath(dir, epoch, 3)).ok());
  }

  auto paths = ListCheckpointFiles(dir);
  ASSERT_TRUE(paths.ok());
  ASSERT_EQ(paths.ValueOrDie().size(), 3u);
  // The race window: a retention policy deletes epoch 1 between the
  // listing and the sweep's open.
  ASSERT_TRUE(std::filesystem::remove(paths.ValueOrDie()[1]));

  FrameworkOptions fw;
  fw.strategy = SamplingStrategy::kProbabilistic;
  fw.recommender = RecommenderType::kLwd;
  fw.sample_fraction = 0.1;
  auto session =
      EvalSession::Create(&dataset, &filter, fw, Split::kTest).ValueOrDie();
  CheckpointSweepStats stats;
  auto outcomes = session->EstimateCheckpoints(paths.ValueOrDie(), 0,
                                               nullptr, &stats);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].status.ok()) << outcomes[0].status.ToString();
  EXPECT_FALSE(outcomes[1].status.ok());
  EXPECT_TRUE(outcomes[2].status.ok()) << outcomes[2].status.ToString();
  EXPECT_EQ(stats.failed, 1u);
}

// ---------------------------------------------------------------------------
// Network faults: framing survives pathological sends and dropped peers
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, OneByteSendsDeliverByteIdenticalReplies) {
  LineClient baseline = ConnectAndGreet(server_);
  const std::string before =
      Request(baseline, StrFormat("EVAL %s", CkptPath(1).c_str()));
  ASSERT_EQ(before.rfind("OK ", 0), 0u) << before;

  // Every send() on every connection now moves one byte: framing and
  // backpressure must reassemble identical lines, just slower.
  FaultSpec spec;
  spec.count = -1;
  ArmFault("net.send.short_write", spec);
  LineClient client = ConnectAndGreet(server_);
  const std::string during =
      Request(client, StrFormat("EVAL %s", CkptPath(1).c_str()));
  EXPECT_EQ(MetricFields(during), MetricFields(before));
  const std::vector<std::string> sweep =
      RequestAll(client, StrFormat("SWEEP %s", CkptDir().c_str()));
  EXPECT_EQ(ParseKeyValues(sweep.back())["failed"], "0");
  EXPECT_GE(FaultTriggerCount("net.send.short_write"), 1);
  DisarmAllFaults();
}

TEST_F(ChaosTest, RepliesSurviveTransientSendEagain) {
  // The first few flushes hit a "full" socket; the write-interest path
  // must finish the job once the fault expires.
  FaultSpec spec;
  spec.count = 3;
  ArmFault("net.send.eagain", spec);
  LineClient client = ConnectAndGreet(server_);
  const std::string reply =
      Request(client, StrFormat("EVAL %s", CkptPath(2).c_str()));
  EXPECT_EQ(reply.rfind("OK ", 0), 0u) << reply;
  EXPECT_GE(FaultTriggerCount("net.send.eagain"), 1);
  DisarmAllFaults();
}

TEST_F(ChaosTest, RecvCloseFaultDropsOnlyThatConnection) {
  LineClient client = ConnectAndGreet(server_);
  FaultSpec spec;
  ArmFault("net.recv.close", spec);
  // The server hits the injected hangup when this request arrives and
  // closes the connection; the reply never comes.
  ASSERT_TRUE(client.SendLine("PING").ok());
  auto reply = client.ReadReply();
  EXPECT_FALSE(reply.ok());
  DisarmAllFaults();
  // The server itself is unharmed: the next connection works end to end.
  LineClient fresh = ConnectAndGreet(server_);
  EXPECT_EQ(Request(fresh, "PING"), "OK pong");
}

// ---------------------------------------------------------------------------
// Deadlines, load shedding, idle reaping
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, DeadlineExpiresMidCommandAndConnectionStaysUsable) {
  EvalServer::Options options;
  options.service.poll_interval_ms = 20;
  options.service.default_deadline_s = 0.05;
  auto started = EvalServer::Start(options);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  std::unique_ptr<EvalServer> server = std::move(started).ValueOrDie();

  LineClient client = ConnectAndGreet(server.get());
  // LOAD is exempt from the deadline (it legitimately takes longer than
  // any sane per-command budget).
  const std::string load =
      Request(client, StrFormat("LOAD %s valid", kPreset));
  ASSERT_EQ(load.rfind("OK ", 0), 0u) << load;

  // The first task waves now stall 100 ms each, so no evaluation can
  // finish inside the 50 ms deadline; the count cap keeps the post-cancel
  // wind-down short whatever the chunk count.
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kDelay;
  spec.delay_ms = 100;
  spec.count = 64;
  ArmFault("sched.task.delay", spec);

  const std::string eval = Request(client, StrFormat("EVAL %s", CkptPath(0).c_str()));
  EXPECT_EQ(LineClient::ErrorCode(eval), "deadline-exceeded") << eval;

  ArmFault("sched.task.delay", spec);  // Re-arm: fresh hit budget.
  const std::vector<std::string> sweep =
      RequestAll(client, StrFormat("SWEEP %s", CkptDir().c_str()));
  EXPECT_EQ(LineClient::ErrorCode(sweep.back()), "deadline-exceeded")
      << sweep.back();
  // Whatever streamed before the deadline must still be well-formed ITEMs.
  for (size_t i = 0; i + 1 < sweep.size(); ++i) {
    EXPECT_EQ(sweep[i].rfind("ITEM ", 0), 0u) << sweep[i];
  }
  DisarmAllFaults();

  // A timed-out command costs neither the connection nor the server.
  EXPECT_EQ(Request(client, "PING"), "OK pong");
  auto kv = ParseKeyValues(Request(client, "STATS"));
  EXPECT_GE(std::stoi(kv["deadlines"]), 2) << Request(client, "STATS");
}

TEST_F(ChaosTest, OverloadedServerShedsWithErrBusyAndStaysResponsive) {
  EvalServer::Options options;
  options.service.poll_interval_ms = 20;
  options.executor_threads = 1;
  options.max_queued_commands = 1;
  auto started = EvalServer::Start(options);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  std::unique_ptr<EvalServer> server = std::move(started).ValueOrDie();

  LineClient loader = ConnectAndGreet(server.get());
  const std::string load = Request(loader, StrFormat("LOAD %s", kPreset));
  ASSERT_EQ(load.rfind("OK ", 0), 0u) << load;
  WaitForInFlight(server.get(), 0);  // The LOAD has fully retired.

  // Occupy the single executor with a long WATCH on an empty directory…
  const std::string empty_dir = scratch_->path() + "/watch_empty";
  std::filesystem::create_directories(empty_dir);
  LineClient busy = ConnectAndGreet(server.get());
  ASSERT_TRUE(
      busy.SendLine(StrFormat("WATCH %s 1 30", empty_dir.c_str())).ok());
  WaitForInFlight(server.get(), 1);

  // …queue one more command behind it (fills the backlog of 1)…
  LineClient queued = ConnectAndGreet(server.get());
  ASSERT_TRUE(queued.SendLine(StrFormat("EVAL %s", CkptPath(0).c_str())).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // …so the third blocking command is shed, in order, without executing.
  LineClient shed = ConnectAndGreet(server.get());
  const std::string reply =
      Request(shed, StrFormat("EVAL %s", CkptPath(0).c_str()));
  EXPECT_EQ(LineClient::ErrorCode(reply), "busy") << reply;
  // Shedding is backpressure, not failure: the connection stays usable
  // and inline verbs never shed.
  EXPECT_EQ(Request(shed, "PING"), "OK pong");
  auto kv = ParseKeyValues(Request(shed, "STATS"));
  EXPECT_GE(std::stoi(kv["shed"]), 1);
  EXPECT_EQ(kv["errors"], "0");

  // Shutdown with the WATCH still in flight (29 s of timeout left) and an
  // EVAL still queued must drain promptly: cancellation, not the timeout,
  // bounds it.
  const auto t0 = std::chrono::steady_clock::now();
  server.reset();
  const double drain_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(drain_s, 15.0);
}

TEST(IdleReapTest, IdleConnectionsAreClosedAndCounted) {
  EvalServer::Options options;
  options.service.poll_interval_ms = 20;
  options.idle_timeout_s = 0.2;
  auto started = EvalServer::Start(options);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  std::unique_ptr<EvalServer> server = std::move(started).ValueOrDie();

  auto client = LineClient::Connect("127.0.0.1", server->port(),
                                    /*recv_timeout_s=*/10.0);
  ASSERT_TRUE(client.ok());
  auto banner = client.ValueOrDie().ReadLine();
  ASSERT_TRUE(banner.ok());
  // Stay quiet past the idle timeout; the reaper closes us.
  auto line = client.ValueOrDie().ReadLine();
  EXPECT_FALSE(line.ok());
  if (!line.ok()) {
    EXPECT_NE(line.status().ToString().find("closed"), std::string::npos)
        << line.status().ToString();
  }

  // A fresh, active connection sees the reap in STATS and is itself fine.
  auto probe = LineClient::Connect("127.0.0.1", server->port(),
                                   /*recv_timeout_s=*/10.0);
  ASSERT_TRUE(probe.ok());
  ASSERT_TRUE(probe.ValueOrDie().ReadLine().ok());
  ASSERT_TRUE(probe.ValueOrDie().SendLine("STATS").ok());
  auto reply = probe.ValueOrDie().ReadLine();
  ASSERT_TRUE(reply.ok());
  auto kv = ParseKeyValues(reply.ValueOrDie());
  EXPECT_GE(std::stoi(kv["idle_closed"]), 1) << reply.ValueOrDie();
}

// ---------------------------------------------------------------------------
// LineClient failure paths (raw peer, no server)
// ---------------------------------------------------------------------------

class RawPeer {
 public:
  RawPeer() {
    auto listener = CreateTcpListener("127.0.0.1", 0);
    EXPECT_TRUE(listener.ok());
    listen_fd_ = listener.ValueOrDie().fd;
    port_ = listener.ValueOrDie().port;
  }
  ~RawPeer() {
    if (conn_fd_ >= 0) ::close(conn_fd_);
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  uint16_t port() const { return port_; }

  /// The listener is non-blocking; poll until the client's connect lands.
  bool Accept() {
    for (int i = 0; i < 500; ++i) {
      conn_fd_ = ::accept(listen_fd_, nullptr, nullptr);
      if (conn_fd_ >= 0) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  }

  void Send(const std::string& bytes) {
    ASSERT_EQ(::send(conn_fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  void CloseConnection() {
    ::close(conn_fd_);
    conn_fd_ = -1;
  }

 private:
  int listen_fd_ = -1;
  int conn_fd_ = -1;
  uint16_t port_ = 0;
};

TEST(LineClientFailureTest, RecvTimeoutMidLineSurfacesIoError) {
  RawPeer peer;
  auto client = LineClient::Connect("127.0.0.1", peer.port(),
                                    /*recv_timeout_s=*/0.3);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(peer.Accept());
  // Half a line, then silence: ReadLine must give up at the timeout with
  // a diagnosable error instead of hanging the caller.
  peer.Send("OK par");
  auto line = client.ValueOrDie().ReadLine();
  ASSERT_FALSE(line.ok());
  EXPECT_NE(line.status().ToString().find("timed out"), std::string::npos)
      << line.status().ToString();
}

TEST(LineClientFailureTest, ServerCloseMidReplySurfacesClosedError) {
  RawPeer peer;
  auto client = LineClient::Connect("127.0.0.1", peer.port(),
                                    /*recv_timeout_s=*/5.0);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(peer.Accept());
  // A stream line but never the terminal: ReadReply must report the close,
  // not return a truncated reply as success.
  peer.Send("ITEM 0 0.5 0.1\n");
  peer.CloseConnection();
  auto reply = client.ValueOrDie().ReadReply();
  ASSERT_FALSE(reply.ok());
  EXPECT_NE(reply.status().ToString().find("connection closed"),
            std::string::npos)
      << reply.status().ToString();
}

TEST(LineClientFailureTest, ErrorCodeExtractsTheCodeToken) {
  EXPECT_EQ(LineClient::ErrorCode("ERR busy server overloaded, retry later"),
            "busy");
  EXPECT_EQ(LineClient::ErrorCode("ERR busy"), "busy");
  EXPECT_EQ(LineClient::ErrorCode("ERR deadline-exceeded sweep abandoned"),
            "deadline-exceeded");
  EXPECT_EQ(LineClient::ErrorCode("OK pong"), "");
  EXPECT_EQ(LineClient::ErrorCode("ITEM 0 ERR bad"), "");
  EXPECT_EQ(LineClient::ErrorCode(""), "");
}

}  // namespace
}  // namespace kgeval

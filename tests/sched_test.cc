#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "sched/task_group.h"

namespace kgeval {
namespace {

// --- TaskGroup ----------------------------------------------------------------

TEST(TaskGroupTest, RunsAllTasksAndWaits) {
  ThreadPool pool(4);
  TaskGroup group(&pool);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    group.Submit([&counter] { counter.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(counter.load(), 100);
  // A second Wait on a drained group returns immediately.
  group.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(TaskGroupTest, NullPoolTargetsGlobalPool) {
  TaskGroup group;
  EXPECT_EQ(group.pool(), GlobalThreadPool());
  std::atomic<int> counter{0};
  group.Submit([&counter] { counter.fetch_add(1); });
  group.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(TaskGroupTest, WaitOnlyWaitsForOwnGroup) {
  // The no-global-barrier property the scheduler exists for: group A's
  // Wait() must return while group B's task is still parked on a shared
  // worker. (The old pool-wide Wait() would hang here.)
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  std::atomic<bool> parked{false};
  TaskGroup blocked(&pool);
  blocked.Submit([&] {
    parked.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!parked.load()) std::this_thread::yield();

  TaskGroup quick(&pool);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    quick.Submit([&done] { done.fetch_add(1); });
  }
  quick.Wait();
  EXPECT_EQ(done.load(), 16);
  EXPECT_FALSE(release.load());  // B never ran to completion while A waited.
  release.store(true);
  blocked.Wait();
}

TEST(TaskGroupTest, WaitHelpsDrainWhenWorkersAreBusy) {
  // A 1-worker pool whose worker is parked: the waiting thread itself must
  // drain its group's queue (help-first), not starve behind the worker.
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  std::atomic<bool> parked{false};
  TaskGroup blocker(&pool);
  blocker.Submit([&] {
    parked.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!parked.load()) std::this_thread::yield();

  TaskGroup mine(&pool);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    mine.Submit([&done] { done.fetch_add(1); });
  }
  mine.Wait();  // The only available thread is this one.
  EXPECT_EQ(done.load(), 8);
  release.store(true);
  blocker.Wait();
}

TEST(TaskGroupTest, NestedSubmitRunsInlineOnWorker) {
  // The PR 3 rule, now on the group API: a submission from a pool worker
  // runs inline on that worker instead of deadlocking the pool.
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<bool> started{false};
  std::atomic<int> nested_inline{0};
  group.Submit([&] {
    started.store(true);
    const std::thread::id worker = std::this_thread::get_id();
    TaskGroup nested(&pool);
    nested.Submit([&nested_inline, worker] {
      if (std::this_thread::get_id() == worker) nested_inline.fetch_add(1);
    });
    nested.Wait();
  });
  // Spin until the task is running on the worker so Wait()'s help-first
  // drain cannot steal it onto this (non-worker) thread.
  while (!started.load()) std::this_thread::yield();
  group.Wait();
  EXPECT_EQ(nested_inline.load(), 1);
}

TEST(TaskGroupTest, SubmitWaitCyclesAreReusable) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> counter{0};
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (int i = 0; i < 20; ++i) {
      group.Submit([&counter] { counter.fetch_add(1); });
    }
    group.Wait();
    EXPECT_EQ(counter.load(), (cycle + 1) * 20);
  }
}

TEST(TaskGroupTest, DestructorWaitsForUnfinishedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  {
    TaskGroup group(&pool);
    for (int i = 0; i < 64; ++i) {
      group.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): destruction must not abandon queued work (the counter and
    // this stack frame die right after the brace).
  }
  EXPECT_EQ(counter.load(), 64);
}

TEST(TaskGroupTest, ManyConcurrentGroupsStress) {
  // Many producer threads, each cycling through its own groups on one
  // shared pool, with re-submissions into the running group: every group
  // must see exactly its own tasks drained, exception-free, however the
  // chunks interleave on the workers. (This is the multi-tenant EvalSession
  // schedule in miniature; run under TSan in CI.)
  ThreadPool pool(3);
  std::atomic<int> grand_total{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 6; ++p) {
    producers.emplace_back([&pool, &grand_total] {
      for (int round = 0; round < 25; ++round) {
        TaskGroup group(&pool);
        std::atomic<int> local{0};
        for (int t = 0; t < 40; ++t) {
          group.Submit([&local, &group, t] {
            local.fetch_add(1);
            if (t % 8 == 0) {
              // Re-submission into the live group: inline when this task
              // runs on a worker, queued when the producer's help-first
              // Wait() ran it — both must land before Wait() returns.
              group.Submit([&local] { local.fetch_add(1); });
            }
          });
        }
        group.Wait();
        EXPECT_EQ(local.load(), 45);  // 40 tasks + 5 re-submissions.
        grand_total.fetch_add(local.load());
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  EXPECT_EQ(grand_total.load(), 6 * 25 * 45);
}

// --- ParallelFor (ported onto TaskGroup) --------------------------------------

TEST(ParallelForTest, CoversWholeRange) {
  std::vector<std::atomic<int>> hits(10000);
  ParallelFor(0, hits.size(), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(5, 5, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, ReversedRangeIsNoop) {
  bool called = false;
  ParallelFor(7, 3, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SmallRangeRunsInlineAsOneChunk) {
  // A range no larger than min_chunk must run as a single inline call on
  // the submitting thread (no pool round-trip).
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  size_t seen_lo = 99, seen_hi = 0;
  ParallelFor(
      2, 10,
      [&](size_t lo, size_t hi) {
        ++calls;
        seen_lo = lo;
        seen_hi = hi;
        EXPECT_EQ(std::this_thread::get_id(), caller);
      },
      /*min_chunk=*/8);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_lo, 2u);
  EXPECT_EQ(seen_hi, 10u);
}

TEST(ParallelForTest, ChunksRespectMinChunkAndPartitionRange) {
  std::mutex mutex;
  std::vector<std::pair<size_t, size_t>> chunks;
  ParallelFor(
      0, 10000,
      [&](size_t lo, size_t hi) {
        std::lock_guard<std::mutex> lock(mutex);
        chunks.push_back({lo, hi});
      },
      /*min_chunk=*/64);
  std::sort(chunks.begin(), chunks.end());
  size_t expected_lo = 0;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_EQ(lo, expected_lo);
    EXPECT_GT(hi, lo);
    expected_lo = hi;
  }
  EXPECT_EQ(expected_lo, 10000u);
  // Every chunk except possibly the last must carry at least min_chunk.
  for (size_t i = 0; i + 1 < chunks.size(); ++i) {
    EXPECT_GE(chunks[i].second - chunks[i].first, 64u);
  }
}

TEST(ParallelForTest, NestedCallsRunInlineInsteadOfDeadlocking) {
  // Regression (PR 3): a ParallelFor issued from inside a pool worker used
  // to submit chunks to the pool and block on them — with every worker
  // occupied by outer chunks, nobody could drain the inner tasks and the
  // call deadlocked. Nested calls on a worker run inline; outer chunks the
  // caller's help-first Wait() ran spawn sub-groups the caller drains
  // itself. Either way this completes — a deadlock hangs the test.
  std::atomic<int> inner_total{0};
  ParallelFor(
      0, 64,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          ParallelFor(
              0, 100,
              [&](size_t inner_lo, size_t inner_hi) {
                inner_total.fetch_add(static_cast<int>(inner_hi - inner_lo));
              },
              /*min_chunk=*/1);
        }
      },
      /*min_chunk=*/1);
  EXPECT_EQ(inner_total.load(), 64 * 100);
}

TEST(ParallelForTest, CallFromWorkerTaskRunsInline) {
  // The inline rule observed directly: once a task is running on a pool
  // worker, a ParallelFor inside it must stay on that worker.
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<bool> started{false};
  std::atomic<int> total{0};
  std::atomic<int> off_worker{0};
  group.Submit([&] {
    started.store(true);
    const std::thread::id worker = std::this_thread::get_id();
    ParallelFor(
        0, 50,
        [&](size_t lo, size_t hi) {
          total.fetch_add(static_cast<int>(hi - lo));
          if (std::this_thread::get_id() != worker) off_worker.fetch_add(1);
        },
        /*min_chunk=*/1);
  });
  // Pin the task to the worker before Wait() can help-run it here.
  while (!started.load()) std::this_thread::yield();
  group.Wait();
  EXPECT_EQ(total.load(), 50);
  EXPECT_EQ(off_worker.load(), 0);
}

TEST(ParallelForTest, ConcurrentCallsDoNotInterfere) {
  // Several threads issue independent ParallelFor calls against the shared
  // global pool; each must wait only for its own chunks.
  std::atomic<int> total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&total] {
      for (int round = 0; round < 20; ++round) {
        std::atomic<int> local{0};
        ParallelFor(
            0, 2000,
            [&](size_t lo, size_t hi) {
              local.fetch_add(static_cast<int>(hi - lo));
            },
            /*min_chunk=*/16);
        // The call returned, so exactly its own range must be done.
        EXPECT_EQ(local.load(), 2000);
        total.fetch_add(local.load());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(total.load(), 4 * 20 * 2000);
}

}  // namespace
}  // namespace kgeval

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <numeric>
#include <set>
#include <utility>
#include <vector>

#include "core/adaptive_evaluator.h"
#include "core/sampled_evaluator.h"
#include "core/samplers.h"
#include "eval/full_evaluator.h"
#include "eval/protocol.h"
#include "graph/dataset.h"
#include "models/kge_model.h"
#include "synth/config.h"
#include "synth/generator.h"
#include "util/rng.h"

namespace kgeval {
namespace {

constexpr ModelType kAllModels[] = {
    ModelType::kTransE, ModelType::kDistMult, ModelType::kComplEx,
    ModelType::kRescal, ModelType::kRotatE,   ModelType::kTuckEr,
    ModelType::kConvE,  ModelType::kTComplEx};

ModelOptions SmallOptions() {
  ModelOptions options;
  options.dim = 16;
  options.seed = 7;
  return options;
}

Dataset SynthDataset() {
  SynthConfig config;
  config.num_entities = 500;
  config.num_relations = 12;
  config.num_types = 8;
  config.num_train = 6000;
  config.num_valid = 400;
  config.num_test = 400;
  config.seed = 42;
  return GenerateDataset(config).ValueOrDie().dataset;
}

/// The synthetic dataset with deterministic timestamps painted on: every
/// triple gets time = f(h, r, t) % T, so slices are well-populated and the
/// same fact can recur at several timestamps across splits.
Dataset TemporalSynthDataset(int32_t num_timestamps) {
  const Dataset base = SynthDataset();
  auto stamp = [num_timestamps](std::vector<Triple> triples) {
    for (Triple& t : triples) {
      t.time = (t.head * 31 + t.tail * 7 + t.relation) % num_timestamps;
    }
    return triples;
  };
  return Dataset(base.name() + "-temporal", base.num_entities(),
                 base.num_relations(), num_timestamps, stamp(base.train()),
                 stamp(base.valid()), stamp(base.test()), base.types());
}

/// Exhaustive candidate pools: every slot ranks against all entities, so
/// sampled pool-ranks must coincide with full filtered ranks.
SampledCandidates ExhaustivePools(int32_t num_entities, int32_t num_slots) {
  SampledCandidates pools;
  std::vector<int32_t> all(num_entities);
  std::iota(all.begin(), all.end(), 0);
  pools.pools.assign(num_slots, all);
  return pools;
}

/// A model whose score is supplied by a lambda — lets tests pin exact
/// rankings.
class FakeModel : public KgeModel {
 public:
  using ScoreFn = std::function<float(int32_t, int32_t, int32_t)>;

  FakeModel(int32_t num_entities, int32_t num_relations, ScoreFn fn)
      : KgeModel(ModelType::kDistMult, num_entities, num_relations,
                 ModelOptions()),
        fn_(std::move(fn)) {}

  void ScoreCandidates(int32_t anchor, int32_t relation,
                       QueryDirection direction, const int32_t* candidates,
                       size_t n, float* out) const override {
    for (size_t i = 0; i < n; ++i) {
      const int32_t h =
          direction == QueryDirection::kTail ? anchor : candidates[i];
      const int32_t t =
          direction == QueryDirection::kTail ? candidates[i] : anchor;
      out[i] = fn_(h, relation, t);
    }
  }

  void UpdateTriple(int32_t, int32_t, int32_t, QueryDirection,
                    float) override {}

  void CollectParameters(std::vector<NamedParameter>*) override {}

 private:
  ScoreFn fn_;
};

// ---------------------------------------------------------------------------
// Static protocol: the refactor seam must be invisible. The FilterIndex
// convenience overloads (the pre-refactor API) and an explicit
// StaticFilteredProtocol must produce bit-identical ranks on every model
// and every estimator.
// ---------------------------------------------------------------------------

TEST(StaticParityTest, SampledEnginesBitExactAcrossAllModels) {
  const Dataset dataset = SynthDataset();
  const FilterIndex filter(dataset);
  const StaticFilteredProtocol protocol(dataset, &filter);
  Rng rng(13);
  const SampledCandidates pools = DrawCandidates(
      SamplingStrategy::kRandom, nullptr, dataset.num_entities(),
      /*n_s=*/60, NeededSlots(dataset, Split::kTest),
      2 * dataset.num_relations(), &rng);
  for (ModelType type : kAllModels) {
    auto model = CreateModel(type, dataset.num_entities(),
                             dataset.num_relations(), SmallOptions())
                     .ValueOrDie();
    // Pre-refactor API: FilterIndex overload, prepared engine.
    const SampledEvalResult via_filter =
        EvaluateSampled(*model, dataset, filter, Split::kTest, pools);
    // Explicit protocol, all three engines.
    const SampledEvalResult prepared =
        EvaluateSampled(*model, dataset, protocol, Split::kTest, pools);
    SampledEvalOptions unfused_options;
    unfused_options.prepared_pools = false;
    const SampledEvalResult unfused = EvaluateSampled(
        *model, dataset, protocol, Split::kTest, pools, unfused_options);
    const SampledEvalResult scalar =
        EvaluateSampledScalar(*model, dataset, protocol, Split::kTest, pools);
    EXPECT_EQ(via_filter.ranks, prepared.ranks) << ModelTypeName(type);
    EXPECT_EQ(prepared.ranks, unfused.ranks) << ModelTypeName(type);
    EXPECT_EQ(prepared.ranks, scalar.ranks) << ModelTypeName(type);
    EXPECT_EQ(via_filter.scored_candidates, scalar.scored_candidates)
        << ModelTypeName(type);
    EXPECT_DOUBLE_EQ(via_filter.metrics.mrr, scalar.metrics.mrr)
        << ModelTypeName(type);
  }
}

TEST(StaticParityTest, FullRankingBitExact) {
  const Dataset dataset = SynthDataset();
  const FilterIndex filter(dataset);
  const StaticFilteredProtocol protocol(dataset, &filter);
  FullEvalOptions options;
  options.max_triples = 60;
  for (ModelType type : {ModelType::kDistMult, ModelType::kTComplEx}) {
    auto model = CreateModel(type, dataset.num_entities(),
                             dataset.num_relations(), SmallOptions())
                     .ValueOrDie();
    const FullEvalResult via_filter =
        EvaluateFullRanking(*model, dataset, filter, Split::kTest, options);
    const FullEvalResult via_protocol =
        EvaluateFullRanking(*model, dataset, protocol, Split::kTest, options);
    EXPECT_EQ(via_filter.ranks, via_protocol.ranks) << ModelTypeName(type);
    EXPECT_DOUBLE_EQ(via_filter.metrics.mrr, via_protocol.metrics.mrr)
        << ModelTypeName(type);
  }
}

TEST(StaticParityTest, AdaptiveBitExact) {
  const Dataset dataset = SynthDataset();
  const FilterIndex filter(dataset);
  const StaticFilteredProtocol protocol(dataset, &filter);
  Rng rng(17);
  const SampledCandidates pools = DrawCandidates(
      SamplingStrategy::kRandom, nullptr, dataset.num_entities(),
      /*n_s=*/60, NeededSlots(dataset, Split::kTest),
      2 * dataset.num_relations(), &rng);
  auto model = CreateModel(ModelType::kComplEx, dataset.num_entities(),
                           dataset.num_relations(), SmallOptions())
                   .ValueOrDie();
  AdaptiveEvalOptions options;
  options.target_half_width = 0.05;
  options.min_queries = 128;
  options.batch_queries = 128;
  const AdaptiveEvalResult via_filter = EvaluateAdaptive(
      *model, dataset, filter, Split::kTest, pools, options);
  const AdaptiveEvalResult via_protocol = EvaluateAdaptive(
      *model, dataset, protocol, Split::kTest, pools, options);
  EXPECT_EQ(via_filter.ranks, via_protocol.ranks);
  EXPECT_EQ(via_filter.evaluated_queries, via_protocol.evaluated_queries);
  EXPECT_EQ(via_filter.rounds, via_protocol.rounds);
  EXPECT_EQ(via_filter.converged, via_protocol.converged);
  EXPECT_DOUBLE_EQ(via_filter.ci.mrr, via_protocol.ci.mrr);
  EXPECT_DOUBLE_EQ(via_filter.metrics.mrr, via_protocol.metrics.mrr);
}

TEST(StaticParityTest, ExhaustivePoolsReproduceFullRanking) {
  // With every entity in every pool, the sampled estimator *is* the full
  // evaluator: pool-ranks equal exhaustive filtered ranks query for query.
  const Dataset dataset = SynthDataset();
  const FilterIndex filter(dataset);
  const StaticFilteredProtocol protocol(dataset, &filter);
  const SampledCandidates pools = ExhaustivePools(
      dataset.num_entities(), 2 * dataset.num_relations());
  for (ModelType type : {ModelType::kDistMult, ModelType::kRotatE}) {
    auto model = CreateModel(type, dataset.num_entities(),
                             dataset.num_relations(), SmallOptions())
                     .ValueOrDie();
    const SampledEvalResult sampled =
        EvaluateSampled(*model, dataset, protocol, Split::kTest, pools);
    const FullEvalResult full =
        EvaluateFullRanking(*model, dataset, protocol, Split::kTest);
    EXPECT_EQ(sampled.ranks, full.ranks) << ModelTypeName(type);
    EXPECT_DOUBLE_EQ(sampled.metrics.mrr, full.metrics.mrr)
        << ModelTypeName(type);
  }
}

// ---------------------------------------------------------------------------
// Temporal protocol: time-sliced filter semantics.
// ---------------------------------------------------------------------------

/// Three entities, one relation, two timestamps. (0, 0, 1) holds at tau=0,
/// (0, 0, 2) holds at tau=1; the test query is (0, 0, ?) at tau=0.
Dataset HandTemporalDataset() {
  std::vector<Triple> train = {{0, 0, 1, 0}, {0, 0, 2, 1}};
  std::vector<Triple> test = {{0, 0, 1, 0}};
  return Dataset("hand-temporal", /*num_entities=*/3, /*num_relations=*/1,
                 /*num_timestamps=*/2, std::move(train), /*valid=*/{},
                 std::move(test), TypeStore());
}

TEST(TemporalProtocolTest, FilterIsSlicedByTimestamp) {
  const Dataset dataset = HandTemporalDataset();
  const FilterIndex static_filter(dataset);
  const TemporalFilterIndex temporal_filter(dataset);
  const StaticFilteredProtocol static_protocol(dataset, &static_filter);
  const TemporalFilteredProtocol temporal_protocol(dataset, &temporal_filter);
  const Triple& query = dataset.test()[0];

  // Static semantics: both tails are known facts, whenever they held.
  const std::vector<int32_t>* static_answers =
      static_protocol.Answers(query, QueryDirection::kTail);
  ASSERT_NE(static_answers, nullptr);
  EXPECT_EQ(*static_answers, (std::vector<int32_t>{1, 2}));

  // Temporal semantics: only the tail true *at tau=0* is filtered. Entity 2
  // is a fact at tau=1 — a valid corruption for this query.
  const std::vector<int32_t>* temporal_answers =
      temporal_protocol.Answers(query, QueryDirection::kTail);
  ASSERT_NE(temporal_answers, nullptr);
  EXPECT_EQ(*temporal_answers, (std::vector<int32_t>{1}));

  EXPECT_EQ(temporal_protocol.num_timestamps(), 2);
  EXPECT_EQ(temporal_protocol.num_groups(), 2);
  EXPECT_EQ(temporal_protocol.GroupOf({0, 0, 2, 1}), 1);
  // Pools stay at the static domain/range slots for every group.
  EXPECT_EQ(temporal_protocol.PoolSlotOf(1, QueryDirection::kTail),
            static_protocol.PoolSlotOf(0, QueryDirection::kTail));
  EXPECT_EQ(temporal_protocol.PoolSlotFor(query, QueryDirection::kHead),
            static_protocol.PoolSlotFor(query, QueryDirection::kHead));
}

TEST(TemporalProtocolTest, CorruptionTrueAtAnotherTimestampKeepsItsRank) {
  const Dataset dataset = HandTemporalDataset();
  const FilterIndex static_filter(dataset);
  const TemporalFilterIndex temporal_filter(dataset);
  const StaticFilteredProtocol static_protocol(dataset, &static_filter);
  const TemporalFilteredProtocol temporal_protocol(dataset, &temporal_filter);
  // Score by tail id: entity 2 outscores the truth (entity 1).
  const FakeModel model(dataset.num_entities(), dataset.num_relations(),
                        [](int32_t, int32_t, int32_t t) {
                          return t == 2 ? 5.0f : (t == 1 ? 3.0f : 0.0f);
                        });
  const FullEvalResult static_full = EvaluateFullRanking(
      model, dataset, static_protocol, Split::kTest);
  const FullEvalResult temporal_full = EvaluateFullRanking(
      model, dataset, temporal_protocol, Split::kTest);
  // Static filtering removes entity 2 (a fact at *some* time): rank 1.
  EXPECT_DOUBLE_EQ(static_full.ranks[0], 1.0);
  // Temporal filtering keeps it (not a fact at tau=0): it outranks the
  // truth, rank 2.
  EXPECT_DOUBLE_EQ(temporal_full.ranks[0], 2.0);

  // The sampled estimator applies the same sliced filter.
  const SampledCandidates pools = ExhaustivePools(
      dataset.num_entities(), 2 * dataset.num_relations());
  const SampledEvalResult sampled = EvaluateSampled(
      model, dataset, temporal_protocol, Split::kTest, pools);
  EXPECT_EQ(sampled.ranks, temporal_full.ranks);
}

TEST(TemporalProtocolTest, ScheduleIsGroupHomogeneousAndComplete) {
  const Dataset dataset = TemporalSynthDataset(/*num_timestamps=*/5);
  const TemporalFilterIndex filter(dataset);
  const TemporalFilteredProtocol protocol(dataset, &filter);
  const std::vector<Triple>& triples = dataset.test();
  const EvalSchedule schedule = protocol.BuildSchedule(
      triples, static_cast<int64_t>(triples.size()), /*query_block=*/16);
  // Every (triple, direction) query appears exactly once, every block is
  // (relation, timestamp)-homogeneous, and blocks sharing a pool slot are
  // contiguous (the prepare-once contract).
  std::set<std::pair<int32_t, int32_t>> seen;
  std::set<int32_t> closed_slots;
  int32_t current_slot = -1;
  for (const SlotBlock& block : schedule.blocks) {
    ASSERT_LT(block.begin, block.end);
    if (block.pool_slot != current_slot) {
      ASSERT_TRUE(closed_slots.insert(block.pool_slot).second)
          << "pool slot " << block.pool_slot << " revisited";
      current_slot = block.pool_slot;
    }
    const int32_t group = protocol.GroupOf(triples[(*block.triple_idx)[block.begin]]);
    for (size_t i = block.begin; i < block.end; ++i) {
      const int32_t idx = (*block.triple_idx)[i];
      EXPECT_EQ(protocol.GroupOf(triples[idx]), group);
      EXPECT_EQ(block.pool_slot,
                protocol.PoolSlotFor(triples[idx], block.direction));
      EXPECT_TRUE(
          seen.insert({idx, static_cast<int32_t>(block.direction)}).second)
          << "query scheduled twice";
    }
  }
  EXPECT_EQ(seen.size(), 2 * triples.size());
}

TEST(TemporalProtocolTest, EnginesBitExactOnTemporalData) {
  const Dataset dataset = TemporalSynthDataset(/*num_timestamps=*/5);
  const TemporalFilterIndex filter(dataset);
  const TemporalFilteredProtocol protocol(dataset, &filter);
  Rng rng(23);
  const SampledCandidates pools = DrawCandidates(
      SamplingStrategy::kRandom, nullptr, dataset.num_entities(),
      /*n_s=*/60, NeededSlots(dataset, Split::kTest),
      2 * dataset.num_relations(), &rng);
  ModelOptions options = SmallOptions();
  options.num_timestamps = dataset.num_timestamps();
  // One time-aware model (virtual kernel relations) and one time-ignorant
  // model (plain relations) both run the temporal schedule bit-exactly.
  for (ModelType type : {ModelType::kTComplEx, ModelType::kDistMult}) {
    auto model = CreateModel(type, dataset.num_entities(),
                             dataset.num_relations(), options)
                     .ValueOrDie();
    const SampledEvalResult prepared =
        EvaluateSampled(*model, dataset, protocol, Split::kTest, pools);
    SampledEvalOptions unfused_options;
    unfused_options.prepared_pools = false;
    const SampledEvalResult unfused = EvaluateSampled(
        *model, dataset, protocol, Split::kTest, pools, unfused_options);
    const SampledEvalResult scalar =
        EvaluateSampledScalar(*model, dataset, protocol, Split::kTest, pools);
    EXPECT_EQ(prepared.ranks, unfused.ranks) << ModelTypeName(type);
    EXPECT_EQ(prepared.ranks, scalar.ranks) << ModelTypeName(type);
    EXPECT_EQ(prepared.scored_candidates, scalar.scored_candidates)
        << ModelTypeName(type);
  }
}

TEST(TemporalProtocolTest, ExhaustivePoolsReproduceFullRanking) {
  const Dataset dataset = TemporalSynthDataset(/*num_timestamps=*/5);
  const TemporalFilterIndex filter(dataset);
  const TemporalFilteredProtocol protocol(dataset, &filter);
  const SampledCandidates pools = ExhaustivePools(
      dataset.num_entities(), 2 * dataset.num_relations());
  ModelOptions options = SmallOptions();
  options.num_timestamps = dataset.num_timestamps();
  auto model = CreateModel(ModelType::kTComplEx, dataset.num_entities(),
                           dataset.num_relations(), options)
                   .ValueOrDie();
  const SampledEvalResult sampled =
      EvaluateSampled(*model, dataset, protocol, Split::kTest, pools);
  const FullEvalResult full =
      EvaluateFullRanking(*model, dataset, protocol, Split::kTest);
  EXPECT_EQ(sampled.ranks, full.ranks);
  EXPECT_DOUBLE_EQ(sampled.metrics.mrr, full.metrics.mrr);
}

TEST(TemporalProtocolTest, AdaptiveConvergesOnTimeSlicedQueries) {
  const Dataset dataset = TemporalSynthDataset(/*num_timestamps=*/5);
  const TemporalFilterIndex filter(dataset);
  const TemporalFilteredProtocol protocol(dataset, &filter);
  Rng rng(31);
  const SampledCandidates pools = DrawCandidates(
      SamplingStrategy::kRandom, nullptr, dataset.num_entities(),
      /*n_s=*/60, NeededSlots(dataset, Split::kTest),
      2 * dataset.num_relations(), &rng);
  ModelOptions model_options = SmallOptions();
  model_options.num_timestamps = dataset.num_timestamps();
  auto model = CreateModel(ModelType::kTComplEx, dataset.num_entities(),
                           dataset.num_relations(), model_options)
                   .ValueOrDie();
  AdaptiveEvalOptions options;
  options.target_half_width = 0.05;
  options.min_queries = 128;
  options.batch_queries = 128;
  const AdaptiveEvalResult adaptive = EvaluateAdaptive(
      *model, dataset, protocol, Split::kTest, pools, options);
  EXPECT_TRUE(adaptive.converged);
  EXPECT_LE(adaptive.ci.mrr, options.target_half_width);
  EXPECT_GE(adaptive.evaluated_queries, options.min_queries);
  // Every rank the adaptive pass produced is bit-identical to the one the
  // sampled pass computes for the same query on the same pools.
  const SampledEvalResult sampled =
      EvaluateSampled(*model, dataset, protocol, Split::kTest, pools);
  ASSERT_EQ(adaptive.ranks.size(), sampled.ranks.size());
  int64_t evaluated = 0;
  for (size_t i = 0; i < adaptive.ranks.size(); ++i) {
    if (adaptive.ranks[i] == 0.0) continue;  // Never scored by the pass.
    EXPECT_EQ(adaptive.ranks[i], sampled.ranks[i]) << "query " << i;
    ++evaluated;
  }
  EXPECT_EQ(evaluated, adaptive.evaluated_queries);
}

TEST(TemporalProtocolTest, DegeneratesToStaticOnUntimestampedDataset) {
  // On a static dataset the temporal index has one time slice holding
  // exactly the static answer sets, so the two protocols rank identically.
  const Dataset dataset = SynthDataset();
  ASSERT_FALSE(dataset.has_timestamps());
  const FilterIndex static_filter(dataset);
  const TemporalFilterIndex temporal_filter(dataset);
  const TemporalFilteredProtocol protocol(dataset, &temporal_filter);
  EXPECT_EQ(protocol.num_timestamps(), 1);
  EXPECT_EQ(protocol.num_groups(), dataset.num_relations());
  Rng rng(37);
  const SampledCandidates pools = DrawCandidates(
      SamplingStrategy::kRandom, nullptr, dataset.num_entities(),
      /*n_s=*/60, NeededSlots(dataset, Split::kTest),
      2 * dataset.num_relations(), &rng);
  auto model = CreateModel(ModelType::kComplEx, dataset.num_entities(),
                           dataset.num_relations(), SmallOptions())
                   .ValueOrDie();
  const SampledEvalResult temporal =
      EvaluateSampled(*model, dataset, protocol, Split::kTest, pools);
  const SampledEvalResult statics =
      EvaluateSampled(*model, dataset, static_filter, Split::kTest, pools);
  EXPECT_EQ(temporal.ranks, statics.ranks);
  EXPECT_DOUBLE_EQ(temporal.metrics.mrr, statics.metrics.mrr);
}

}  // namespace
}  // namespace kgeval

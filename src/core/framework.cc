#include "core/framework.h"

#include <cmath>

#include "util/timer.h"

namespace kgeval {

EvaluationFramework::EvaluationFramework(const Dataset* dataset,
                                         FrameworkOptions options)
    : dataset_(dataset), options_(options), rng_(options.seed) {}

Result<std::unique_ptr<EvaluationFramework>> EvaluationFramework::Build(
    const Dataset* dataset, const FrameworkOptions& options) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("dataset is null");
  }
  if (options.sample_fraction <= 0.0 && options.sample_size <= 0) {
    return Status::InvalidArgument("sample fraction/size must be positive");
  }
  std::unique_ptr<EvaluationFramework> fw(
      new EvaluationFramework(dataset, options));
  WallTimer timer;
  if (options.strategy != SamplingStrategy::kRandom) {
    auto recommender = CreateRecommender(options.recommender, options.seed);
    if (recommender == nullptr) {
      return Status::InvalidArgument("unknown recommender");
    }
    auto scores = recommender->Fit(*dataset);
    if (!scores.ok()) return scores.status();
    fw->scores_ = std::move(scores).ValueOrDie();
    if (options.strategy == SamplingStrategy::kStatic) {
      StaticSetOptions static_options = options.static_options;
      static_options.include_seen = options.include_seen;
      fw->sets_ = BuildStaticSets(fw->scores_, *dataset, static_options);
    } else {
      fw->sets_ = BuildProbabilisticSets(fw->scores_, *dataset,
                                         options.include_seen);
    }
  }
  fw->build_seconds_ = timer.Seconds();
  return {std::move(fw)};
}

int64_t EvaluationFramework::SampleSize() const {
  if (options_.sample_size > 0) return options_.sample_size;
  return static_cast<int64_t>(std::llround(
      options_.sample_fraction * dataset_->num_entities()));
}

SampledCandidates EvaluationFramework::DrawPools(Split split) {
  const std::vector<int32_t> slots = NeededSlots(*dataset_, split);
  const CandidateSets* sets =
      options_.strategy == SamplingStrategy::kRandom ? nullptr : &sets_;
  return DrawCandidates(options_.strategy, sets, dataset_->num_entities(),
                        SampleSize(), slots, 2 * dataset_->num_relations(),
                        &rng_);
}

SampledEvalResult EvaluationFramework::Estimate(const KgeModel& model,
                                                const FilterIndex& filter,
                                                Split split,
                                                int64_t max_triples) {
  return EstimateOnPools(model, filter, split, DrawPools(split), max_triples);
}

SampledEvalResult EvaluationFramework::EstimateOnPools(
    const KgeModel& model, const FilterIndex& filter, Split split,
    const SampledCandidates& pools, int64_t max_triples) const {
  SampledEvalOptions eval_options;
  eval_options.tie = options_.tie;
  eval_options.max_triples = max_triples;
  return EvaluateSampled(model, *dataset_, filter, split, pools,
                         eval_options);
}

AdaptiveEvalResult EvaluationFramework::EstimateAdaptive(
    const KgeModel& model, const FilterIndex& filter, Split split,
    const AdaptiveEvalOptions& adaptive) {
  return EstimateAdaptiveOnPools(model, filter, split, DrawPools(split),
                                 adaptive);
}

AdaptiveEvalResult EvaluationFramework::EstimateAdaptiveOnPools(
    const KgeModel& model, const FilterIndex& filter, Split split,
    const SampledCandidates& pools,
    const AdaptiveEvalOptions& adaptive) const {
  AdaptiveEvalOptions eval_options = adaptive;
  eval_options.tie = options_.tie;
  return EvaluateAdaptive(model, *dataset_, filter, split, pools,
                          eval_options);
}

}  // namespace kgeval

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <vector>

#include "core/adaptive_evaluator.h"
#include "core/sampled_evaluator.h"
#include "core/samplers.h"
#include "eval/full_evaluator.h"
#include "eval/protocol.h"
#include "eval/screen.h"
#include "la/kernels/kernels.h"
#include "models/kge_model.h"
#include "synth/config.h"
#include "synth/generator.h"
#include "util/rng.h"

namespace kgeval {
namespace {

constexpr ModelType kAllModels[] = {
    ModelType::kTransE, ModelType::kDistMult, ModelType::kComplEx,
    ModelType::kRescal, ModelType::kRotatE,   ModelType::kTuckEr,
    ModelType::kConvE,  ModelType::kTComplEx};

ModelOptions SmallOptions() {
  ModelOptions options;
  options.dim = 16;
  options.seed = 7;
  return options;
}

Dataset SynthDataset() {
  SynthConfig config;
  config.num_entities = 500;
  config.num_relations = 12;
  config.num_types = 8;
  config.num_train = 6000;
  config.num_valid = 400;
  config.num_test = 400;
  config.seed = 42;
  return GenerateDataset(config).ValueOrDie().dataset;
}

Dataset TemporalSynthDataset(int32_t num_timestamps) {
  const Dataset base = SynthDataset();
  auto stamp = [num_timestamps](std::vector<Triple> triples) {
    for (Triple& t : triples) {
      t.time = (t.head * 31 + t.tail * 7 + t.relation) % num_timestamps;
    }
    return triples;
  };
  return Dataset(base.name() + "-temporal", base.num_entities(),
                 base.num_relations(), num_timestamps, stamp(base.train()),
                 stamp(base.valid()), stamp(base.test()), base.types());
}

/// Restores auto-selection when a test that forced a kernel path exits, so
/// test order never leaks a forced path into another test.
struct KernelGuard {
  ~KernelGuard() { SelectScoreKernels("auto"); }
};

bool Contains(const std::vector<std::string>& names,
              const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

// ---------------------------------------------------------------------------
// Registry: compiled/supported listings, selection, and error handling.

TEST(KernelRegistryTest, ScalarIsAlwaysCompiledAndSupported) {
  const std::vector<std::string> compiled = CompiledScoreKernelNames();
  const std::vector<std::string> supported = SupportedScoreKernelNames();
  EXPECT_TRUE(Contains(compiled, "scalar"));
  EXPECT_TRUE(Contains(supported, "scalar"));
  for (const std::string& name : supported) {
    EXPECT_TRUE(Contains(compiled, name))
        << name << " supported but not compiled";
  }
  EXPECT_TRUE(Contains(supported, ActiveScoreKernelName()));
}

TEST(KernelRegistryTest, UnknownNameIsInvalidArgumentAndKeepsActive) {
  KernelGuard guard;
  const std::string before = ActiveScoreKernelName();
  const Status status = SelectScoreKernels("pentium");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ActiveScoreKernelName(), before);
}

TEST(KernelRegistryTest, CompiledButUnsupportedNameFails) {
  KernelGuard guard;
  const std::vector<std::string> supported = SupportedScoreKernelNames();
  for (const std::string& name : CompiledScoreKernelNames()) {
    if (Contains(supported, name)) continue;
    EXPECT_FALSE(SelectScoreKernels(name).ok())
        << name << " is not runnable on this CPU and must not select";
  }
}

TEST(KernelRegistryTest, SelectScalarThenAutoRestoresWidestPath) {
  KernelGuard guard;
  ASSERT_TRUE(SelectScoreKernels("scalar").ok());
  EXPECT_STREQ(ActiveScoreKernelName(), "scalar");
  ASSERT_TRUE(SelectScoreKernels("auto").ok());
  // Auto re-probes the CPU: the widest supported path wins (listings are
  // widest-first).
  EXPECT_EQ(ActiveScoreKernelName(), SupportedScoreKernelNames().front());
}

// ---------------------------------------------------------------------------
// Dispatched-vs-scalar bit equality: every supported implementation must
// produce bit-identical prepared-pool and truth scores for every model and
// both query directions.

class KernelParityTest : public ::testing::TestWithParam<ModelType> {
 protected:
  std::unique_ptr<KgeModel> Make() {
    return CreateModel(GetParam(), /*num_entities=*/40, /*num_relations=*/6,
                       SmallOptions())
        .ValueOrDie();
  }
};

TEST_P(KernelParityTest, EverySupportedKernelMatchesScalarBitExactly) {
  KernelGuard guard;
  auto model = Make();
  const std::vector<int32_t> candidates = {11, 3, 27, 3, 0, 39, 18, 3};
  const std::vector<int32_t> anchors = {0, 5, 5, 17, 39, 2};
  const std::vector<int32_t> truths = {2, 9, 9, 0, 39, 24};
  const size_t n = candidates.size();
  const size_t q = anchors.size();
  CandidateBlock block;
  model->PrepareCandidates(candidates.data(), n, &block);

  struct Output {
    std::vector<float> pool, truth;
  };
  auto score_all = [&] {
    Output out;
    std::vector<float> pool(q * n), truth(q);
    for (int32_t relation : {0, 5}) {
      for (QueryDirection dir :
           {QueryDirection::kTail, QueryDirection::kHead}) {
        model->ScoreBlock(anchors.data(), truths.data(), q, relation, dir,
                          block, pool.data(), truth.data());
        out.pool.insert(out.pool.end(), pool.begin(), pool.end());
        out.truth.insert(out.truth.end(), truth.begin(), truth.end());
      }
    }
    return out;
  };

  ASSERT_TRUE(SelectScoreKernels("scalar").ok());
  const Output reference = score_all();
  for (const std::string& name : SupportedScoreKernelNames()) {
    ASSERT_TRUE(SelectScoreKernels(name).ok()) << name;
    const Output got = score_all();
    // Bit-identical, not approximately equal: the dispatch contract.
    EXPECT_EQ(got.pool, reference.pool)
        << ModelTypeName(GetParam()) << " under " << name;
    EXPECT_EQ(got.truth, reference.truth)
        << ModelTypeName(GetParam()) << " under " << name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, KernelParityTest,
                         ::testing::ValuesIn(kAllModels),
                         [](const ::testing::TestParamInfo<ModelType>& info) {
                           return ModelTypeName(info.param);
                         });

// ---------------------------------------------------------------------------
// Screening: the quantization error bound must dominate the actual
// |approx - exact| error, and the tile envelope bound must dominate every
// exact score — for each kernel family, on every supported implementation.

TEST(ScreenBoundTest, ErrorAndEnvelopeBoundsHoldForEveryKernelFamily) {
  KernelGuard guard;
  // DistMult = kDot, TransE = kNegL1, RotatE = kNegComplexDist, ConvE adds
  // the per-entity bias to the dot family.
  for (ModelType type : {ModelType::kDistMult, ModelType::kTransE,
                         ModelType::kRotatE, ModelType::kConvE}) {
    auto model = CreateModel(type, /*num_entities=*/60, /*num_relations=*/4,
                             SmallOptions())
                     .ValueOrDie();
    std::vector<int32_t> pool(60);
    std::iota(pool.begin(), pool.end(), 0);
    CandidateBlock block;
    model->PrepareCandidates(pool.data(), pool.size(), &block);
    ASSERT_TRUE(block.prepared);
    QuantizeCandidateBlock(&block);
    ASSERT_TRUE(block.quantized);

    const std::vector<int32_t> anchors = {0, 7, 31, 59, 12, 3};
    for (const std::string& name : SupportedScoreKernelNames()) {
      ASSERT_TRUE(SelectScoreKernels(name).ok()) << name;
      for (QueryDirection dir :
           {QueryDirection::kTail, QueryDirection::kHead}) {
        Matrix queries;
        model->BuildKernelQueries(anchors.data(), anchors.size(), 1, dir,
                                  &queries);
        const size_t dim = queries.cols();
        ScreenScratch scratch;
        ScreenApproxBlock(*model, queries, anchors.size(), block, &scratch);
        std::vector<float> exact(anchors.size() * pool.size());
        model->ScorePool(queries, block, exact.data());
        for (size_t i = 0; i < anchors.size(); ++i) {
          const float bound = ScreenErrorBound(model->batch_kernel(),
                                               queries.Row(i), dim, block);
          const float ub =
              TileScoreUpperBound(model->batch_kernel(), queries.Row(i), dim,
                                  block, model->batch_kernel_eps());
          EXPECT_GT(bound, 0.0f);
          for (size_t c = 0; c < pool.size(); ++c) {
            const float e = exact[i * pool.size() + c];
            const float a = scratch.approx[i * pool.size() + c];
            EXPECT_LE(std::fabs(a - e), bound)
                << ModelTypeName(type) << " kernels=" << name << " query "
                << i << " candidate " << c;
            EXPECT_LE(e, ub)
                << ModelTypeName(type) << " kernels=" << name << " query "
                << i << " candidate " << c;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ScreenRankBlock vs the exact FilteredRank, with duplicate candidates and
// an engineered score tie sitting exactly at the band edge.

TEST(ScreenRankBlockTest, MatchesFilteredRankWithDuplicatesAndTies) {
  auto model = CreateModel(ModelType::kDistMult, /*num_entities=*/40,
                           /*num_relations=*/6, SmallOptions())
                   .ValueOrDie();
  // Entity 9 becomes a bit-exact clone of entity 2: every query scores them
  // identically, so pools containing both produce exact ties — including at
  // the truth score whenever 2 is the truth (the band-edge case the screen
  // must keep, never skip).
  std::vector<KgeModel::NamedParameter> params;
  model->CollectParameters(&params);
  Matrix* entities = nullptr;
  for (const KgeModel::NamedParameter& p : params) {
    if (std::string(p.name) == "entities") entities = p.matrix;
  }
  ASSERT_NE(entities, nullptr);
  for (size_t k = 0; k < entities->cols(); ++k) {
    entities->Row(9)[k] = entities->Row(2)[k];
  }

  // Unsorted pool, duplicates of the truth (2), of its clone (9), and of an
  // unrelated candidate (3).
  const std::vector<int32_t> pool = {11, 3, 27, 3, 0,  39, 18, 2,
                                     9,  9, 2,  7, 25, 33, 1,  14};
  const std::vector<int32_t> anchors = {0, 5, 17, 39};
  const std::vector<int32_t> truths = {2, 2, 9, 24};
  const size_t n = pool.size();
  const size_t qb = anchors.size();
  CandidateBlock block;
  model->PrepareCandidates(pool.data(), n, &block);
  QuantizeCandidateBlock(&block);

  // Query 1 additionally filters the clone: its tie must vanish from the
  // screened count exactly as it does from FilteredRank's.
  const std::vector<int32_t> ans_truth2 = {2};
  const std::vector<int32_t> ans_truth2_filter9 = {2, 9};
  const std::vector<int32_t> ans_truth9 = {9};
  const std::vector<int32_t> ans_truth24 = {24};
  const std::vector<const std::vector<int32_t>*> answers = {
      &ans_truth2, &ans_truth2_filter9, &ans_truth9, &ans_truth24};

  for (QueryDirection dir : {QueryDirection::kTail, QueryDirection::kHead}) {
    for (TieBreak tie :
         {TieBreak::kMean, TieBreak::kOptimistic, TieBreak::kPessimistic}) {
      ScreenScratch scratch;
      ScreenStats stats;
      std::vector<double> screened(qb);
      ScreenRankBlock(*model, anchors.data(), truths.data(), qb, 3, dir,
                      block, answers.data(), tie, &scratch, screened.data(),
                      &stats);
      std::vector<float> scores(n), truth_score(1);
      for (size_t q = 0; q < qb; ++q) {
        model->ScoreCandidates(anchors[q], 3, dir, pool.data(), n,
                               scores.data());
        model->ScoreCandidates(anchors[q], 3, dir, &truths[q], 1,
                               truth_score.data());
        const double want =
            FilteredRank(pool.data(), scores.data(), n, truths[q],
                         truth_score[0], *answers[q], tie,
                         /*candidates_sorted=*/false);
        EXPECT_EQ(screened[q], want) << "query " << q;
      }
      EXPECT_EQ(stats.queries, static_cast<int64_t>(qb));
      EXPECT_EQ(stats.screened, static_cast<int64_t>(qb * n));
      EXPECT_GT(stats.rescored, 0);
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end rank parity: screening on vs off must be bit-identical for
// every model, every evaluator, and the temporal protocol.

TEST(ScreenedEvalTest, SampledRanksBitIdenticalForEveryModel) {
  const Dataset dataset = SynthDataset();
  const FilterIndex filter(dataset);
  Rng rng(13);
  const SampledCandidates pools = DrawCandidates(
      SamplingStrategy::kRandom, nullptr, dataset.num_entities(),
      /*n_s=*/60, NeededSlots(dataset, Split::kTest),
      2 * dataset.num_relations(), &rng);
  for (ModelType type : kAllModels) {
    auto model = CreateModel(type, dataset.num_entities(),
                             dataset.num_relations(), SmallOptions())
                     .ValueOrDie();
    const SampledEvalResult exact =
        EvaluateSampled(*model, dataset, filter, Split::kTest, pools);
    SampledEvalOptions screened_options;
    screened_options.screening = true;
    screened_options.screening_min_pool = 1;
    const SampledEvalResult screened = EvaluateSampled(
        *model, dataset, filter, Split::kTest, pools, screened_options);
    EXPECT_EQ(screened.ranks, exact.ranks) << ModelTypeName(type);
    EXPECT_DOUBLE_EQ(screened.metrics.mrr, exact.metrics.mrr)
        << ModelTypeName(type);
    EXPECT_EQ(screened.scored_candidates, exact.scored_candidates);
    EXPECT_EQ(exact.screen.queries, 0);
    EXPECT_GT(screened.screen.queries, 0) << ModelTypeName(type);
    EXPECT_GT(screened.screen.screened, 0) << ModelTypeName(type);
    // The whole point: the screen re-scores a subset of what it swept.
    EXPECT_LE(screened.screen.rescored, screened.screen.screened);
  }
}

TEST(ScreenedEvalTest, PoolsBelowMinSizeScoreExactlyUnscreened) {
  const Dataset dataset = SynthDataset();
  const FilterIndex filter(dataset);
  Rng rng(13);
  const SampledCandidates pools = DrawCandidates(
      SamplingStrategy::kRandom, nullptr, dataset.num_entities(),
      /*n_s=*/60, NeededSlots(dataset, Split::kTest),
      2 * dataset.num_relations(), &rng);
  auto model = CreateModel(ModelType::kDistMult, dataset.num_entities(),
                           dataset.num_relations(), SmallOptions())
                   .ValueOrDie();
  SampledEvalOptions options;
  options.screening = true;
  options.screening_min_pool = 1000;  // Larger than any pool: never screens.
  const SampledEvalResult result = EvaluateSampled(
      *model, dataset, filter, Split::kTest, pools, options);
  EXPECT_EQ(result.screen.queries, 0);
  EXPECT_EQ(result.screen.screened, 0);
}

TEST(ScreenedEvalTest, FullRankingBitIdenticalWithTileSkips) {
  const Dataset dataset = SynthDataset();
  const FilterIndex filter(dataset);
  for (ModelType type : {ModelType::kDistMult, ModelType::kTransE,
                         ModelType::kRotatE, ModelType::kConvE}) {
    auto model = CreateModel(type, dataset.num_entities(),
                             dataset.num_relations(), SmallOptions())
                     .ValueOrDie();
    FullEvalOptions exact_options;
    exact_options.max_triples = 40;
    exact_options.entity_tile = 64;  // 500 entities -> 8 tiles.
    const FullEvalResult exact = EvaluateFullRanking(
        *model, dataset, filter, Split::kTest, exact_options);
    FullEvalOptions screened_options = exact_options;
    screened_options.screening = true;
    const FullEvalResult screened = EvaluateFullRanking(
        *model, dataset, filter, Split::kTest, screened_options);
    EXPECT_EQ(screened.ranks, exact.ranks) << ModelTypeName(type);
    EXPECT_EQ(exact.screen.queries, 0);
    EXPECT_GT(screened.screen.queries, 0) << ModelTypeName(type);
    EXPECT_LE(screened.screen.rescored, screened.screen.screened);
  }
}

TEST(ScreenedEvalTest, AdaptiveStoppingDecisionUnchangedByScreening) {
  const Dataset dataset = SynthDataset();
  const FilterIndex filter(dataset);
  Rng rng(17);
  const SampledCandidates pools = DrawCandidates(
      SamplingStrategy::kRandom, nullptr, dataset.num_entities(),
      /*n_s=*/60, NeededSlots(dataset, Split::kTest),
      2 * dataset.num_relations(), &rng);
  auto model = CreateModel(ModelType::kComplEx, dataset.num_entities(),
                           dataset.num_relations(), SmallOptions())
                   .ValueOrDie();
  AdaptiveEvalOptions options;
  options.target_half_width = 0.05;
  options.batch_queries = 128;
  options.min_queries = 128;
  const AdaptiveEvalResult exact = EvaluateAdaptive(
      *model, dataset, filter, Split::kTest, pools, options);
  AdaptiveEvalOptions screened_options = options;
  screened_options.screening = true;
  screened_options.screening_min_pool = 1;
  const AdaptiveEvalResult screened = EvaluateAdaptive(
      *model, dataset, filter, Split::kTest, pools, screened_options);
  // Bit-identical ranks mean the accumulator, the interval, and therefore
  // the stopping round are identical too.
  EXPECT_EQ(screened.ranks, exact.ranks);
  EXPECT_EQ(screened.rounds, exact.rounds);
  EXPECT_EQ(screened.converged, exact.converged);
  EXPECT_EQ(screened.evaluated_queries, exact.evaluated_queries);
  EXPECT_DOUBLE_EQ(screened.metrics.mrr, exact.metrics.mrr);
  EXPECT_GT(screened.screen.queries, 0);
  EXPECT_EQ(exact.screen.queries, 0);
}

TEST(ScreenedEvalTest, TemporalProtocolRanksBitIdentical) {
  const Dataset dataset = TemporalSynthDataset(/*num_timestamps=*/5);
  const TemporalFilterIndex filter(dataset);
  const TemporalFilteredProtocol protocol(dataset, &filter);
  Rng rng(19);
  const SampledCandidates pools = DrawCandidates(
      SamplingStrategy::kRandom, nullptr, dataset.num_entities(),
      /*n_s=*/60, NeededSlots(dataset, Split::kTest),
      2 * dataset.num_relations(), &rng);
  ModelOptions model_options = SmallOptions();
  model_options.num_timestamps = dataset.num_timestamps();
  for (ModelType type : {ModelType::kTComplEx, ModelType::kRotatE}) {
    auto model = CreateModel(type, dataset.num_entities(),
                             dataset.num_relations(), model_options)
                     .ValueOrDie();
    const SampledEvalResult exact =
        EvaluateSampled(*model, dataset, protocol, Split::kTest, pools);
    SampledEvalOptions screened_options;
    screened_options.screening = true;
    screened_options.screening_min_pool = 1;
    const SampledEvalResult screened = EvaluateSampled(
        *model, dataset, protocol, Split::kTest, pools, screened_options);
    EXPECT_EQ(screened.ranks, exact.ranks) << ModelTypeName(type);
    EXPECT_GT(screened.screen.queries, 0) << ModelTypeName(type);
  }
}

TEST(ScreenedEvalTest, ExhaustivePoolsMatchScreenedFullRanking) {
  const Dataset dataset = SynthDataset();
  const FilterIndex filter(dataset);
  SampledCandidates pools;
  std::vector<int32_t> all(dataset.num_entities());
  std::iota(all.begin(), all.end(), 0);
  pools.pools.assign(2 * dataset.num_relations(), all);
  auto model = CreateModel(ModelType::kDistMult, dataset.num_entities(),
                           dataset.num_relations(), SmallOptions())
                   .ValueOrDie();
  SampledEvalOptions sampled_options;
  sampled_options.max_triples = 40;
  sampled_options.screening = true;
  const SampledEvalResult sampled = EvaluateSampled(
      *model, dataset, filter, Split::kTest, pools, sampled_options);
  FullEvalOptions full_options;
  full_options.max_triples = 40;
  full_options.screening = true;
  full_options.entity_tile = 128;
  const FullEvalResult full = EvaluateFullRanking(
      *model, dataset, filter, Split::kTest, full_options);
  // Exhaustive pools rank against exactly the entity set, so the screened
  // sampled pass and the screened (tiled) full pass must agree rank-for-
  // rank — and both screens must have actually engaged.
  EXPECT_EQ(sampled.ranks, full.ranks);
  EXPECT_GT(sampled.screen.queries, 0);
  EXPECT_GT(full.screen.queries, 0);
}

}  // namespace
}  // namespace kgeval

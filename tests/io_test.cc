#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/io.h"
#include "models/checkpoint.h"
#include "models/trainer.h"
#include "synth/config.h"
#include "synth/generator.h"

namespace kgeval {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    path_ = fs::temp_directory_path() /
            ("kgeval_test_" + std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string path() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

// --- TSV dataset loading --------------------------------------------------------

TEST(TsvLoadTest, BuildsVocabulariesFromLabels) {
  TempDir dir;
  WriteFile(dir.path() + "/train.txt",
            "paris\tcapital_of\tfrance\n"
            "berlin\tcapital_of\tgermany\n"
            "paris\tlocated_in\tfrance\n");
  WriteFile(dir.path() + "/test.txt", "berlin\tlocated_in\tgermany\n");
  auto result = LoadDatasetFromTsv(dir.path(), "cities");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Dataset& d = result.ValueOrDie();
  EXPECT_EQ(d.num_entities(), 4);
  EXPECT_EQ(d.num_relations(), 2);
  EXPECT_EQ(d.train().size(), 3u);
  EXPECT_EQ(d.test().size(), 1u);
  EXPECT_TRUE(d.valid().empty());
  EXPECT_EQ(d.EntityLabel(0), "paris");
  EXPECT_EQ(d.RelationLabel(0), "capital_of");
  // paris appears twice -> same id.
  EXPECT_EQ(d.train()[0].head, d.train()[2].head);
}

TEST(TsvLoadTest, LoadsTypes) {
  TempDir dir;
  WriteFile(dir.path() + "/train.txt", "a\tr\tb\n");
  WriteFile(dir.path() + "/types.txt",
            "a\tperson\n"
            "b\tcity\n"
            "a\tartist\n");
  const Dataset d = LoadDatasetFromTsv(dir.path()).ValueOrDie();
  ASSERT_TRUE(d.has_types());
  EXPECT_EQ(d.types().num_types(), 3);
  EXPECT_EQ(d.types().TypesOf(0).size(), 2u);  // a: person + artist.
}

TEST(TsvLoadTest, MissingTrainIsIoError) {
  TempDir dir;
  EXPECT_EQ(LoadDatasetFromTsv(dir.path()).status().code(),
            StatusCode::kIoError);
}

TEST(TsvLoadTest, MalformedLineIsInvalidArgument) {
  TempDir dir;
  WriteFile(dir.path() + "/train.txt", "a\tr\tb\nbroken line\n");
  const Status status = LoadDatasetFromTsv(dir.path()).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find(":2:"), std::string::npos);
}

TEST(TsvRoundTripTest, SaveThenLoadPreservesStructure) {
  SynthConfig config;
  config.num_entities = 200;
  config.num_relations = 8;
  config.num_types = 6;
  config.num_train = 2000;
  config.num_valid = 150;
  config.num_test = 150;
  config.seed = 3;
  const Dataset original = GenerateDataset(config).ValueOrDie().dataset;

  TempDir dir;
  ASSERT_TRUE(SaveDatasetToTsv(original, dir.path()).ok());
  const Dataset loaded = LoadDatasetFromTsv(dir.path()).ValueOrDie();

  EXPECT_EQ(loaded.num_entities(), original.num_entities());
  EXPECT_EQ(loaded.num_relations(), original.num_relations());
  ASSERT_EQ(loaded.train().size(), original.train().size());
  ASSERT_EQ(loaded.test().size(), original.test().size());
  // Ids get remapped by first appearance, but labels must round-trip.
  for (size_t i = 0; i < 50; ++i) {
    const Triple& a = original.train()[i];
    const Triple& b = loaded.train()[i];
    EXPECT_EQ(original.EntityLabel(a.head), loaded.EntityLabel(b.head));
    EXPECT_EQ(original.RelationLabel(a.relation),
              loaded.RelationLabel(b.relation));
    EXPECT_EQ(original.EntityLabel(a.tail), loaded.EntityLabel(b.tail));
  }
}

// --- Model checkpointing ---------------------------------------------------------

constexpr ModelType kAllModels[] = {
    ModelType::kTransE, ModelType::kDistMult, ModelType::kComplEx,
    ModelType::kRescal, ModelType::kRotatE,   ModelType::kTuckEr,
    ModelType::kConvE};

class CheckpointTest : public ::testing::TestWithParam<ModelType> {};

TEST_P(CheckpointTest, RoundTripPreservesScores) {
  ModelOptions options;
  options.dim = 16;
  options.seed = 77;
  auto model =
      CreateModel(GetParam(), 30, 6, options).ValueOrDie();
  // Perturb away from the init so the test cannot pass by re-seeding.
  for (int i = 0; i < 50; ++i) {
    model->UpdateTriple(i % 30, i % 6, (i * 7 + 1) % 30,
                        QueryDirection::kTail, -0.5f);
  }
  TempDir dir;
  const std::string path = dir.path() + "/model.ckpt";
  ASSERT_TRUE(SaveModel(model.get(), path).ok());

  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const KgeModel& restored = *loaded.ValueOrDie();
  EXPECT_EQ(restored.type(), GetParam());
  for (int32_t h = 0; h < 10; ++h) {
    for (int32_t r = 0; r < 6; ++r) {
      const Triple t{h, r, (h + 11) % 30};
      EXPECT_FLOAT_EQ(restored.ScoreTriple(t), model->ScoreTriple(t));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, CheckpointTest,
                         ::testing::ValuesIn(kAllModels),
                         [](const auto& info) {
                           return std::string(ModelTypeName(info.param));
                         });

TEST(CheckpointErrorsTest, LoadIntoMismatchedModelFails) {
  ModelOptions options;
  options.dim = 16;
  auto a = CreateModel(ModelType::kTransE, 30, 6, options).ValueOrDie();
  auto b = CreateModel(ModelType::kDistMult, 30, 6, options).ValueOrDie();
  TempDir dir;
  const std::string path = dir.path() + "/a.ckpt";
  ASSERT_TRUE(SaveModel(a.get(), path).ok());
  EXPECT_EQ(LoadModelInto(b.get(), path).code(),
            StatusCode::kInvalidArgument);
}

TEST(CheckpointErrorsTest, GarbageFileRejected) {
  TempDir dir;
  const std::string path = dir.path() + "/garbage.ckpt";
  WriteFile(path, "this is not a checkpoint");
  EXPECT_FALSE(LoadModel(path).ok());
}

TEST(CheckpointErrorsTest, MissingFileIsIoError) {
  EXPECT_EQ(LoadModel("/nonexistent/nowhere.ckpt").status().code(),
            StatusCode::kIoError);
}

TEST(CheckpointTest, LoadIntoRestoresTrainedState) {
  SynthConfig config;
  config.num_entities = 150;
  config.num_relations = 6;
  config.num_types = 6;
  config.num_train = 1500;
  config.num_valid = 50;
  config.num_test = 50;
  const Dataset dataset = GenerateDataset(config).ValueOrDie().dataset;
  ModelOptions options;
  options.dim = 16;
  auto model = CreateModel(ModelType::kComplEx, 150, 6, options)
                   .ValueOrDie();
  TrainerOptions trainer_options;
  trainer_options.epochs = 2;
  trainer_options.num_threads = 1;
  Trainer trainer(&dataset, trainer_options);
  ASSERT_TRUE(trainer.Train(model.get()).ok());

  TempDir dir;
  const std::string path = dir.path() + "/trained.ckpt";
  ASSERT_TRUE(SaveModel(model.get(), path).ok());
  const float reference = model->ScoreTriple({1, 2, 3});

  auto fresh = CreateModel(ModelType::kComplEx, 150, 6, options)
                   .ValueOrDie();
  EXPECT_NE(fresh->ScoreTriple({1, 2, 3}), reference);
  ASSERT_TRUE(LoadModelInto(fresh.get(), path).ok());
  EXPECT_FLOAT_EQ(fresh->ScoreTriple({1, 2, 3}), reference);
}

}  // namespace
}  // namespace kgeval

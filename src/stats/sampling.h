#ifndef KGEVAL_STATS_SAMPLING_H_
#define KGEVAL_STATS_SAMPLING_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace kgeval {

/// Draws `k` distinct integers uniformly from [0, n) without replacement
/// using Robert Floyd's algorithm (O(k) expected). If k >= n, returns all of
/// [0, n). Output order is unspecified.
std::vector<int32_t> SampleWithoutReplacement(int64_t n, int64_t k, Rng* rng);

/// Draws `k` distinct indices from `population` (without replacement)
/// uniformly. If k >= population size, returns the whole population.
std::vector<int32_t> SampleFrom(const std::vector<int32_t>& population,
                                int64_t k, Rng* rng);

/// Weighted sampling without replacement (Efraimidis–Spirakis A-Res): draws
/// up to `k` items with inclusion probability increasing in `weights[i]`.
/// Items with weight <= 0 are never drawn. Returns the selected indices into
/// `items`/`weights` domain values, i.e., the values of `items`.
std::vector<int32_t> WeightedSampleWithoutReplacement(
    const std::vector<int32_t>& items, const std::vector<float>& weights,
    int64_t k, Rng* rng);

}  // namespace kgeval

#endif  // KGEVAL_STATS_SAMPLING_H_

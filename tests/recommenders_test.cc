#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "recommenders/easy_negatives.h"
#include "recommenders/recommender.h"
#include "synth/config.h"
#include "synth/generator.h"

namespace kgeval {
namespace {

constexpr RecommenderType kAllRecommenders[] = {
    RecommenderType::kPt,      RecommenderType::kDbh,
    RecommenderType::kDbhT,    RecommenderType::kOntoSim,
    RecommenderType::kLwd,     RecommenderType::kLwdT,
    RecommenderType::kPie};

/// A hand-built dataset: two "people" (0, 1), two "cities" (2, 3), and a
/// never-seen person (4). Relation 0 = livesIn (person -> city), relation
/// 1 = knows (person -> person).
Dataset HandDataset() {
  std::vector<Triple> train = {
      {0, 0, 2}, {1, 0, 3}, {0, 1, 1},
  };
  std::vector<Triple> valid = {{1, 1, 0}};
  std::vector<Triple> test = {{4, 0, 2}};
  TypeStore types(5, 2);
  types.Assign(0, 0);  // person
  types.Assign(1, 0);
  types.Assign(4, 0);
  types.Assign(2, 1);  // city
  types.Assign(3, 1);
  types.Seal();
  return Dataset("hand", 5, 2, std::move(train), std::move(valid),
                 std::move(test), std::move(types));
}

Dataset SynthDataset() {
  SynthConfig config;
  config.num_entities = 500;
  config.num_relations = 15;
  config.num_types = 12;
  config.num_train = 6000;
  config.num_valid = 400;
  config.num_test = 400;
  config.seed = 99;
  return GenerateDataset(config).ValueOrDie().dataset;
}

class RecommenderParamTest
    : public ::testing::TestWithParam<RecommenderType> {};

TEST_P(RecommenderParamTest, FitProducesWellFormedScores) {
  const Dataset dataset = SynthDataset();
  auto recommender = CreateRecommender(GetParam());
  ASSERT_NE(recommender, nullptr);
  auto result = recommender->Fit(dataset);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const RecommenderScores& scores = result.ValueOrDie();
  EXPECT_EQ(scores.scores.rows(), dataset.num_entities());
  EXPECT_EQ(scores.scores.cols(), 2 * dataset.num_relations());
  EXPECT_EQ(scores.by_set.rows(), 2 * dataset.num_relations());
  EXPECT_GT(scores.scores.nnz(), 0);
  EXPECT_GE(scores.fit_seconds, 0.0);
  // All stored scores non-negative.
  for (float v : scores.scores.values()) EXPECT_GE(v, 0.0f);
}

TEST_P(RecommenderParamTest, CoversTrainObservations) {
  // Every recommender must give a positive score to every (entity, slot)
  // pair actually observed in train.
  const Dataset dataset = SynthDataset();
  auto recommender = CreateRecommender(GetParam());
  const RecommenderScores scores =
      recommender->Fit(dataset).ValueOrDie();
  const int32_t num_r = dataset.num_relations();
  int misses = 0;
  for (size_t i = 0; i < std::min<size_t>(dataset.train().size(), 500);
       ++i) {
    const Triple& t = dataset.train()[i];
    if (scores.scores.At(t.head, t.relation) <= 0.0f) ++misses;
    if (scores.scores.At(t.tail, t.relation + num_r) <= 0.0f) ++misses;
  }
  EXPECT_EQ(misses, 0) << RecommenderTypeName(GetParam());
}

TEST_P(RecommenderParamTest, TransposeConsistent) {
  const Dataset dataset = SynthDataset();
  auto recommender = CreateRecommender(GetParam());
  const RecommenderScores scores = recommender->Fit(dataset).ValueOrDie();
  // Spot-check a handful of entries against the transpose.
  int checked = 0;
  for (int64_t r = 0; r < scores.scores.rows() && checked < 200; ++r) {
    for (int64_t k = scores.scores.RowBegin(r);
         k < scores.scores.RowEnd(r) && checked < 200; ++k) {
      const int32_t c = scores.scores.col_idx()[k];
      EXPECT_FLOAT_EQ(scores.by_set.At(c, r), scores.scores.values()[k]);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllRecommenders, RecommenderParamTest,
    ::testing::ValuesIn(kAllRecommenders), [](const auto& info) {
      std::string name = RecommenderTypeName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(RecommenderTypeTest, ParseRoundTrips) {
  for (RecommenderType type : kAllRecommenders) {
    auto parsed = ParseRecommenderType(RecommenderTypeName(type));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.ValueOrDie(), type);
  }
  EXPECT_FALSE(ParseRecommenderType("GNNRec").ok());
}

TEST(PtTest, ExactlySeenEntities) {
  const Dataset d = HandDataset();
  const RecommenderScores scores =
      CreateRecommender(RecommenderType::kPt)->Fit(d).ValueOrDie();
  // Domain of livesIn (slot 0): entities 0 and 1 only.
  EXPECT_GT(scores.scores.At(0, 0), 0.0f);
  EXPECT_GT(scores.scores.At(1, 0), 0.0f);
  EXPECT_EQ(scores.scores.At(4, 0), 0.0f);  // PT is blind to unseen.
  // Range of livesIn (slot 2): cities 2, 3.
  EXPECT_GT(scores.scores.At(2, 2), 0.0f);
  EXPECT_EQ(scores.scores.At(0, 2), 0.0f);
}

TEST(DbhTest, ScoresAreCounts) {
  std::vector<Triple> train = {{0, 0, 1}, {0, 0, 2}, {3, 0, 1}};
  Dataset d("counts", 4, 1, std::move(train), {}, {}, TypeStore());
  const RecommenderScores scores =
      CreateRecommender(RecommenderType::kDbh)->Fit(d).ValueOrDie();
  EXPECT_FLOAT_EQ(scores.scores.At(0, 0), 2.0f);  // Head of r0 twice.
  EXPECT_FLOAT_EQ(scores.scores.At(3, 0), 1.0f);
  EXPECT_FLOAT_EQ(scores.scores.At(1, 1), 2.0f);  // Tail twice.
}

TEST(DbhTTest, PropagatesThroughTypes) {
  const Dataset d = HandDataset();
  const RecommenderScores scores =
      CreateRecommender(RecommenderType::kDbhT)->Fit(d).ValueOrDie();
  // Entity 4 (person, never seen in train) gets a domain score for livesIn
  // because other people were seen there.
  EXPECT_GT(scores.scores.At(4, 0), 0.0f);
  // Cities never score for the person-typed knows domain (slot 1).
  EXPECT_EQ(scores.scores.At(2, 1), 0.0f);
}

TEST(DbhTTest, RequiresTypes) {
  Dataset untyped("untyped", 4, 1, {{0, 0, 1}}, {}, {}, TypeStore());
  auto result = CreateRecommender(RecommenderType::kDbhT)->Fit(untyped);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(OntoSimTest, BinaryAndBroad) {
  const Dataset d = HandDataset();
  const RecommenderScores scores =
      CreateRecommender(RecommenderType::kOntoSim)->Fit(d).ValueOrDie();
  // All persons belong to the livesIn domain...
  for (int32_t person : {0, 1, 4}) {
    EXPECT_FLOAT_EQ(scores.scores.At(person, 0), 1.0f);
  }
  // ...and all scores are exactly 1 (binary membership).
  for (float v : scores.scores.values()) EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST(LwdTest, UnseenCandidateViaCooccurrence) {
  // Entity 4 shares no slots in this tiny graph, so L-WD keeps it at 0.
  // Entity 1 (seen as head of livesIn and both slots of knows) should get a
  // nonzero score for slots it was never observed in, via co-occurrence.
  const Dataset d = HandDataset();
  const RecommenderScores scores =
      CreateRecommender(RecommenderType::kLwd)->Fit(d).ValueOrDie();
  // Entity 0: seen as head of livesIn (slot 0) and head of knows (slot 1).
  // Entity 1: seen as head of livesIn and tail of knows (slot 3).
  // Co-occurrence links slot 1 and slot 0 (via entity 0), so entity 1
  // (in slot 0) also picks up weight for slot 1's domain.
  EXPECT_GT(scores.scores.At(1, 1), 0.0f);
  // A city never co-occurs with the person slots.
  EXPECT_EQ(scores.scores.At(2, 0), 0.0f);
}

TEST(LwdTest, ZeroForIsolatedEntities) {
  const Dataset d = HandDataset();
  const RecommenderScores scores =
      CreateRecommender(RecommenderType::kLwd)->Fit(d).ValueOrDie();
  // Entity 4 never occurs in train: its row must be structurally empty.
  EXPECT_EQ(scores.scores.RowNnz(4), 0);
}

TEST(LwdTTest, TypesRecoverUnseenEntities) {
  const Dataset d = HandDataset();
  const RecommenderScores scores =
      CreateRecommender(RecommenderType::kLwdT)->Fit(d).ValueOrDie();
  // With type columns in B, entity 4 (typed person) co-occurs with the
  // person type slot and inherits domain scores.
  EXPECT_GT(scores.scores.At(4, 0), 0.0f);
}

TEST(LwdTest, ScoreOrderingFavoursObserved) {
  const Dataset d = SynthDataset();
  const RecommenderScores scores =
      CreateRecommender(RecommenderType::kLwd)->Fit(d).ValueOrDie();
  // Mean score of observed (entity, slot) pairs should exceed the mean of
  // stored-but-unobserved pairs.
  const int32_t num_r = d.num_relations();
  double observed_total = 0.0;
  int64_t observed_count = 0;
  for (const Triple& t : d.train()) {
    observed_total += scores.scores.At(t.head, t.relation);
    observed_total += scores.scores.At(t.tail, t.relation + num_r);
    observed_count += 2;
  }
  const double mean_all =
      std::accumulate(scores.scores.values().begin(),
                      scores.scores.values().end(), 0.0) /
      static_cast<double>(scores.scores.nnz());
  EXPECT_GT(observed_total / observed_count, mean_all);
}

TEST(PieTest, DeterministicGivenSeed) {
  const Dataset d = SynthDataset();
  const RecommenderScores a =
      CreateRecommender(RecommenderType::kPie, 5)->Fit(d).ValueOrDie();
  const RecommenderScores b =
      CreateRecommender(RecommenderType::kPie, 5)->Fit(d).ValueOrDie();
  ASSERT_EQ(a.scores.nnz(), b.scores.nnz());
  for (int64_t k = 0; k < a.scores.nnz(); ++k) {
    EXPECT_FLOAT_EQ(a.scores.values()[k], b.scores.values()[k]);
  }
}

TEST(PieTest, ScoresAreProbabilities) {
  const Dataset d = SynthDataset();
  const RecommenderScores scores =
      CreateRecommender(RecommenderType::kPie)->Fit(d).ValueOrDie();
  for (float v : scores.scores.values()) {
    EXPECT_GT(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(EasyNegativesTest, CountsZeroCells) {
  const Dataset d = HandDataset();
  const RecommenderScores scores =
      CreateRecommender(RecommenderType::kPt)->Fit(d).ValueOrDie();
  const EasyNegativeReport report = MineEasyNegatives(scores, d);
  EXPECT_EQ(report.total_cells, 5 * 4);
  EXPECT_EQ(report.easy_negatives, report.total_cells - scores.scores.nnz());
  EXPECT_NEAR(report.easy_fraction,
              static_cast<double>(report.easy_negatives) / 20.0, 1e-12);
}

TEST(EasyNegativesTest, DetectsFalseEasyNegative) {
  // Test triple (4, 0, 2): PT scores 0 for head 4 in the livesIn domain ->
  // one false easy negative on the head side.
  const Dataset d = HandDataset();
  const RecommenderScores scores =
      CreateRecommender(RecommenderType::kPt)->Fit(d).ValueOrDie();
  const EasyNegativeReport report = MineEasyNegatives(scores, d);
  EXPECT_EQ(report.false_easy, 1);
  ASSERT_EQ(report.examples.size(), 1u);
  EXPECT_EQ(report.examples[0].triple.head, 4);
  EXPECT_EQ(report.examples[0].direction, QueryDirection::kHead);
}

TEST(EasyNegativesTest, MaxExamplesCap) {
  const Dataset d = SynthDataset();
  const RecommenderScores scores =
      CreateRecommender(RecommenderType::kPt)->Fit(d).ValueOrDie();
  const EasyNegativeReport report = MineEasyNegatives(scores, d, 3);
  EXPECT_LE(report.examples.size(), 3u);
}

}  // namespace
}  // namespace kgeval

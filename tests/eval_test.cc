#include <gtest/gtest.h>

#include <functional>

#include "eval/full_evaluator.h"
#include "eval/metrics.h"
#include "graph/dataset.h"
#include "models/kge_model.h"

namespace kgeval {
namespace {

/// A model whose score is supplied by a lambda — lets tests pin exact
/// rankings.
class FakeModel : public KgeModel {
 public:
  using ScoreFn = std::function<float(int32_t, int32_t, int32_t)>;

  FakeModel(int32_t num_entities, int32_t num_relations, ScoreFn fn)
      : KgeModel(ModelType::kDistMult, num_entities, num_relations,
                 ModelOptions()),
        fn_(std::move(fn)) {}

  void ScoreCandidates(int32_t anchor, int32_t relation,
                       QueryDirection direction, const int32_t* candidates,
                       size_t n, float* out) const override {
    for (size_t i = 0; i < n; ++i) {
      const int32_t h =
          direction == QueryDirection::kTail ? anchor : candidates[i];
      const int32_t t =
          direction == QueryDirection::kTail ? candidates[i] : anchor;
      out[i] = fn_(h, relation, t);
    }
  }

  void UpdateTriple(int32_t, int32_t, int32_t, QueryDirection,
                    float) override {}

  void CollectParameters(std::vector<NamedParameter>*) override {}

 private:
  ScoreFn fn_;
};

TEST(RankFromCountsTest, Conventions) {
  EXPECT_DOUBLE_EQ(RankFromCounts(0, 0, TieBreak::kMean), 1.0);
  EXPECT_DOUBLE_EQ(RankFromCounts(3, 0, TieBreak::kMean), 4.0);
  EXPECT_DOUBLE_EQ(RankFromCounts(3, 2, TieBreak::kMean), 5.0);
  EXPECT_DOUBLE_EQ(RankFromCounts(3, 2, TieBreak::kOptimistic), 4.0);
  EXPECT_DOUBLE_EQ(RankFromCounts(3, 2, TieBreak::kPessimistic), 6.0);
}

TEST(MetricsTest, FromRanksBasics) {
  const RankingMetrics m = RankingMetrics::FromRanks({1, 2, 4, 10, 100});
  EXPECT_EQ(m.num_queries, 5);
  EXPECT_NEAR(m.mrr, (1.0 + 0.5 + 0.25 + 0.1 + 0.01) / 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.hits1, 0.2);
  EXPECT_DOUBLE_EQ(m.hits3, 0.4);
  EXPECT_DOUBLE_EQ(m.hits10, 0.8);
  EXPECT_DOUBLE_EQ(m.mean_rank, 23.4);
}

TEST(MetricsTest, EmptyRanks) {
  const RankingMetrics m = RankingMetrics::FromRanks({});
  EXPECT_EQ(m.num_queries, 0);
  EXPECT_EQ(m.mrr, 0.0);
}

TEST(MetricsTest, GetByKind) {
  const RankingMetrics m = RankingMetrics::FromRanks({1, 2});
  EXPECT_DOUBLE_EQ(m.Get(MetricKind::kMrr), m.mrr);
  EXPECT_DOUBLE_EQ(m.Get(MetricKind::kHits1), m.hits1);
  EXPECT_DOUBLE_EQ(m.Get(MetricKind::kHits3), m.hits3);
  EXPECT_DOUBLE_EQ(m.Get(MetricKind::kHits10), m.hits10);
}

TEST(MetricsTest, NamesAreStable) {
  EXPECT_STREQ(MetricKindName(MetricKind::kMrr), "MRR");
  EXPECT_STREQ(MetricKindName(MetricKind::kHits10), "Hits@10");
}

TEST(FilteredRankTest, CountsHigherAndFiltered) {
  // Candidates 0..4 with scores; truth is entity 2 (score 5). Entities 0
  // (score 9) and 1 (score 7) outrank it, but 1 is a known answer ->
  // filtered. Rank = 1 + 1 higher = 2.
  const int32_t candidates[5] = {0, 1, 2, 3, 4};
  const float scores[5] = {9, 7, 5, 3, 1};
  const std::vector<int32_t> answers = {1, 2};
  EXPECT_DOUBLE_EQ(FilteredRank(candidates, scores, 5, 2, 5.0f, answers,
                                TieBreak::kMean, /*candidates_sorted=*/true),
                   2.0);
}

TEST(FilteredRankTest, TiesUseConvention) {
  const int32_t candidates[4] = {0, 1, 2, 3};
  const float scores[4] = {5, 5, 5, 1};
  const std::vector<int32_t> answers = {0};
  // Truth = 0 with score 5; candidates 1 and 2 tie with it.
  EXPECT_DOUBLE_EQ(FilteredRank(candidates, scores, 4, 0, 5.0f, answers,
                                TieBreak::kMean, /*candidates_sorted=*/true),
                   2.0);
  EXPECT_DOUBLE_EQ(FilteredRank(candidates, scores, 4, 0, 5.0f, answers,
                                TieBreak::kOptimistic,
                                /*candidates_sorted=*/true),
                   1.0);
  EXPECT_DOUBLE_EQ(FilteredRank(candidates, scores, 4, 0, 5.0f, answers,
                                TieBreak::kPessimistic,
                                /*candidates_sorted=*/true),
                   3.0);
}

TEST(FilteredRankTest, TruthDuplicatesInPoolIgnored) {
  const int32_t candidates[3] = {2, 2, 4};
  const float scores[3] = {5, 5, 9};
  const std::vector<int32_t> answers = {2};
  EXPECT_DOUBLE_EQ(FilteredRank(candidates, scores, 3, 2, 5.0f, answers,
                                TieBreak::kMean, /*candidates_sorted=*/true),
                   2.0);
}

// A 4-entity hand-checkable dataset for full-ranking tests.
Dataset HandDataset() {
  std::vector<Triple> train = {{0, 0, 1}, {2, 0, 1}, {0, 0, 3}};
  std::vector<Triple> test = {{0, 0, 2}};
  return Dataset("hand", 4, 1, std::move(train), {}, std::move(test),
                 TypeStore());
}

TEST(FullEvaluatorTest, HandComputedRanks) {
  Dataset d = HandDataset();
  FilterIndex filter(d);
  // Score(h, r, t) = 10*h + t: strictly increasing in t for fixed head.
  FakeModel model(4, 1, [](int32_t h, int32_t, int32_t t) {
    return static_cast<float>(10 * h + t);
  });
  const FullEvalResult result =
      EvaluateFullRanking(model, d, filter, Split::kTest);
  ASSERT_EQ(result.ranks.size(), 2u);
  // Tail query (0, 0, ?) with truth 2: candidates scores 0,1,2,3; filtered
  // answers {1, 2, 3} leave {0}; higher than 2: none -> rank 1.
  EXPECT_DOUBLE_EQ(result.ranks[0], 1.0);
  // Head query (?, 0, 2) with truth 0: candidate heads score 10h+2, higher
  // heads 1,2,3; filtered heads for (0, 2) = {0} only, so 1,2,3 all count
  // -> rank 4.
  EXPECT_DOUBLE_EQ(result.ranks[1], 4.0);
  EXPECT_DOUBLE_EQ(result.metrics.mrr, (1.0 + 0.25) / 2.0);
}

TEST(FullEvaluatorTest, MaxTriplesCapsWork) {
  std::vector<Triple> train = {{0, 0, 1}, {1, 0, 2}, {2, 0, 3}};
  std::vector<Triple> test = {{0, 0, 2}, {1, 0, 3}, {0, 0, 3}};
  Dataset d("cap", 4, 1, std::move(train), {}, std::move(test), TypeStore());
  FilterIndex filter(d);
  FakeModel model(4, 1,
                  [](int32_t h, int32_t, int32_t t) {
                    return static_cast<float>(h + t);
                  });
  FullEvalOptions options;
  options.max_triples = 2;
  const FullEvalResult result =
      EvaluateFullRanking(model, d, filter, Split::kTest, options);
  EXPECT_EQ(result.ranks.size(), 4u);
  EXPECT_EQ(result.metrics.num_queries, 4);
}

TEST(FullEvaluatorTest, PerfectModelGetsMrrOne) {
  Dataset d = HandDataset();
  FilterIndex filter(d);
  // Give the true test triple (0,0,2) the top score everywhere.
  FakeModel model(4, 1, [](int32_t h, int32_t, int32_t t) {
    if (h == 0 && t == 2) return 100.0f;
    return static_cast<float>(-h - t);
  });
  const FullEvalResult result =
      EvaluateFullRanking(model, d, filter, Split::kTest);
  EXPECT_DOUBLE_EQ(result.metrics.mrr, 1.0);
  EXPECT_DOUBLE_EQ(result.metrics.hits1, 1.0);
}

TEST(FullEvaluatorTest, ConstantModelMeanTieRank) {
  Dataset d = HandDataset();
  FilterIndex filter(d);
  FakeModel model(4, 1, [](int32_t, int32_t, int32_t) { return 1.0f; });
  const FullEvalResult result =
      EvaluateFullRanking(model, d, filter, Split::kTest);
  // Tail query: effective candidates {0, 2}; all tied -> rank 1.5.
  EXPECT_DOUBLE_EQ(result.ranks[0], 1.5);
  // Head query: candidates {0,1,2,3} minus filtered {0} -> 3 ties ->
  // rank 1 + 3/2 = 2.5.
  EXPECT_DOUBLE_EQ(result.ranks[1], 2.5);
}

}  // namespace
}  // namespace kgeval

/// Tests for tools/lint/kgeval_lint: every negative fixture in
/// tests/lint_fixtures/ trips exactly its one rule, the clean fixtures trip
/// nothing, suppressions behave, and the real source tree is finding-free
/// (the same check `ctest -R repo_lint` runs through the CLI).

#include "tools/lint/lint.h"

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace kgeval {
namespace lint {
namespace {

std::string RepoRoot() { return KGEVAL_SOURCE_DIR; }

std::string ReadFixture(const std::string& name) {
  const std::string path = RepoRoot() + "/tests/lint_fixtures/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string Describe(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
  }
  return out.str();
}

/// The fixture contract: exactly one finding, of exactly this rule.
void ExpectSingleFinding(const std::vector<Finding>& findings,
                         const std::string& rule) {
  ASSERT_EQ(findings.size(), 1u) << Describe(findings);
  EXPECT_EQ(findings[0].rule, rule) << Describe(findings);
  EXPECT_GT(findings[0].line, 0);
  EXPECT_FALSE(findings[0].message.empty());
}

TEST(LintRulesTest, RuleTableHasUniqueNonEmptyIds) {
  std::set<std::string> ids;
  for (const RuleInfo& rule : Rules()) {
    EXPECT_NE(rule.id[0], '\0');
    EXPECT_NE(rule.summary[0], '\0');
    EXPECT_TRUE(ids.insert(rule.id).second) << "duplicate id " << rule.id;
  }
  EXPECT_GE(ids.size(), 9u);
}

// ---------------------------------------------------------------------------
// Negative fixtures: each trips exactly its rule
// ---------------------------------------------------------------------------

TEST(LintFixtureTest, SimdContainment) {
  ExpectSingleFinding(
      LintSourceFile("src/eval/bad.cc", ReadFixture("simd_containment.cc")),
      "simd-containment");
}

TEST(LintFixtureTest, ThreadContainment) {
  ExpectSingleFinding(
      LintSourceFile("src/eval/bad.cc", ReadFixture("thread_containment.cc")),
      "thread-containment");
}

TEST(LintFixtureTest, ThreadDetachFlaggedEvenInAllowedDirs) {
  ExpectSingleFinding(
      LintSourceFile("src/sched/bad.cc", ReadFixture("thread_detach.cc")),
      "thread-containment");
}

TEST(LintFixtureTest, Determinism) {
  ExpectSingleFinding(
      LintSourceFile("src/eval/bad.cc", ReadFixture("determinism.cc")),
      "determinism");
}

TEST(LintFixtureTest, FpDrift) {
  ExpectSingleFinding(
      LintSourceFile("src/la/bad.cc", ReadFixture("fp_drift.cc")),
      "fp-drift");
}

TEST(LintFixtureTest, NolintReason) {
  ExpectSingleFinding(
      LintSourceFile("src/eval/bad.cc", ReadFixture("nolint_reason.cc")),
      "nolint-reason");
}

TEST(LintFixtureTest, SuppressionWithoutReason) {
  ExpectSingleFinding(
      LintSourceFile("src/eval/bad.cc", ReadFixture("suppression_reason.cc")),
      "suppression-reason");
}

TEST(LintFixtureTest, SuppressionOfUnknownRule) {
  ExpectSingleFinding(
      LintSourceFile("src/eval/bad.cc",
                     ReadFixture("suppression_unknown_rule.cc")),
      "suppression-reason");
}

// ---------------------------------------------------------------------------
// Clean fixtures and suppression semantics
// ---------------------------------------------------------------------------

TEST(LintFixtureTest, CleanFileHasNoFindings) {
  const std::vector<Finding> findings =
      LintSourceFile("src/eval/good.cc", ReadFixture("clean.cc"));
  EXPECT_TRUE(findings.empty()) << Describe(findings);
}

TEST(LintFixtureTest, SameContentOutsideSrcIsNotLinted) {
  // Containment rules key off the repo-relative path: the same SIMD include
  // is fine under src/la/kernels/ (and in non-src trees entirely).
  EXPECT_TRUE(LintSourceFile("src/la/kernels/bad.cc",
                             ReadFixture("simd_containment.cc"))
                  .empty());
  EXPECT_TRUE(LintSourceFile("src/net/bad.cc",
                             ReadFixture("thread_containment.cc"))
                  .empty());
}

TEST(LintSuppressionTest, AllowFileCoversTheWholeFile) {
  const std::string content =
      "// kgeval-lint: allow-file(determinism): fixture for file scope.\n"
      "#include <cstdlib>\n"
      "int A() { return rand(); }\n"
      "int B() { return rand(); }\n";
  const std::vector<Finding> findings =
      LintSourceFile("src/eval/bad.cc", content);
  EXPECT_TRUE(findings.empty()) << Describe(findings);
}

TEST(LintSuppressionTest, LineSuppressionDoesNotLeakPastNextLine) {
  const std::string content =
      "#include <cstdlib>\n"
      "// kgeval-lint: allow(determinism): covers only the next line.\n"
      "int A() { return rand(); }\n"
      "int B() { return rand(); }\n";
  ExpectSingleFinding(LintSourceFile("src/eval/bad.cc", content),
                      "determinism");
}

TEST(LintSuppressionTest, SuppressionForADifferentRuleDoesNotApply) {
  const std::string content =
      "#include <cstdlib>\n"
      "// kgeval-lint: allow(fp-drift): names the wrong rule.\n"
      "int A() { return rand(); }\n";
  ExpectSingleFinding(LintSourceFile("src/eval/bad.cc", content),
                      "determinism");
}

// ---------------------------------------------------------------------------
// CMake handling
// ---------------------------------------------------------------------------

TEST(LintCMakeTest, FastMathInCMakeIsFlagged) {
  ExpectSingleFinding(
      LintSourceFile("CMakeLists.txt", "add_compile_options(-ffast-math)\n"),
      "fp-drift");
}

TEST(LintCMakeTest, ContractOffAndCommentsAreFine) {
  const std::string content =
      "# NOT -ffast-math: parity depends on strict FP.\n"
      "add_compile_options(-ffp-contract=off)\n";
  const std::vector<Finding> findings =
      LintSourceFile("CMakeLists.txt", content);
  EXPECT_TRUE(findings.empty()) << Describe(findings);
}

TEST(LintCMakeTest, ContractFastIsFlagged) {
  ExpectSingleFinding(LintSourceFile("CMakeLists.txt",
                                     "add_compile_options(-ffp-contract=fast)\n"),
                      "fp-drift");
}

// ---------------------------------------------------------------------------
// Doc-consistency fixture trees
// ---------------------------------------------------------------------------

std::string FixtureTree(const std::string& name) {
  return RepoRoot() + "/tests/lint_fixtures/" + name;
}

TEST(LintDocTest, UndocumentedStatsFieldIsFlagged) {
  ExpectSingleFinding(LintDocConsistency(FixtureTree("stats_doc")),
                      "stats-doc");
}

TEST(LintDocTest, UndocumentedErrCodeIsFlagged) {
  ExpectSingleFinding(LintDocConsistency(FixtureTree("err_doc")), "err-doc");
}

TEST(LintDocTest, UndocumentedFaultPointIsFlagged) {
  ExpectSingleFinding(LintDocConsistency(FixtureTree("fault_doc")),
                      "fault-doc");
}

TEST(LintDocTest, ConsistentTreeIsClean) {
  const std::vector<Finding> findings =
      LintDocConsistency(FixtureTree("clean_tree"));
  EXPECT_TRUE(findings.empty()) << Describe(findings);
}

// ---------------------------------------------------------------------------
// The real tree
// ---------------------------------------------------------------------------

TEST(LintRepoTest, SourceTreeIsFindingFree) {
  const std::vector<Finding> findings = LintRepo(RepoRoot());
  EXPECT_TRUE(findings.empty()) << Describe(findings);
}

}  // namespace
}  // namespace lint
}  // namespace kgeval

// Fixture: violates exactly `suppression-reason` — the allow comment names a
// rule id that does not exist (linted as src/eval/bad.cc).

// kgeval-lint: allow(no-such-rule): misspelled rule ids must not silently
// suppress nothing.
int Fixture() { return 0; }

#include "la/adam.h"

#include <cmath>

namespace kgeval {

AdamState::AdamState(size_t rows, size_t cols, AdamOptions options)
    : options_(options),
      cols_(cols),
      m_(rows, cols, 0.0f),
      v_(rows, cols, 0.0f),
      beta1_pow_(rows, 1.0f),
      beta2_pow_(rows, 1.0f) {}

void AdamState::UpdateRow(Matrix* param, size_t r, const float* grad) {
  const float b1 = options_.beta1;
  const float b2 = options_.beta2;
  beta1_pow_[r] *= b1;
  beta2_pow_[r] *= b2;
  const float correction1 = 1.0f - beta1_pow_[r];
  const float correction2 = 1.0f - beta2_pow_[r];
  const float lr = options_.learning_rate;
  const float eps = options_.epsilon;
  float* m = m_.Row(r);
  float* v = v_.Row(r);
  float* p = param->Row(r);
  for (size_t i = 0; i < cols_; ++i) {
    m[i] = b1 * m[i] + (1.0f - b1) * grad[i];
    v[i] = b2 * v[i] + (1.0f - b2) * grad[i] * grad[i];
    const float m_hat = m[i] / correction1;
    const float v_hat = v[i] / correction2;
    p[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
  }
}

void AdamState::UpdateDense(Matrix* param, const Matrix& grads) {
  for (size_t r = 0; r < grads.rows(); ++r) {
    UpdateRow(param, r, grads.Row(r));
  }
}

}  // namespace kgeval

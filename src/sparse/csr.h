#ifndef KGEVAL_SPARSE_CSR_H_
#define KGEVAL_SPARSE_CSR_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace kgeval {

/// Compressed-sparse-row float matrix. This is the substrate for the L-WD
/// relation recommender (Algorithm 1 of the paper), which is nothing but two
/// sparse matrix products and a row normalization.
class CsrMatrix {
 public:
  CsrMatrix() : rows_(0), cols_(0) { row_ptr_.push_back(0); }
  CsrMatrix(int64_t rows, int64_t cols, std::vector<int64_t> row_ptr,
            std::vector<int32_t> col_idx, std::vector<float> values);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(col_idx_.size()); }

  /// Row r occupies [RowBegin(r), RowEnd(r)) in col_idx()/values().
  int64_t RowBegin(int64_t r) const { return row_ptr_[r]; }
  int64_t RowEnd(int64_t r) const { return row_ptr_[r + 1]; }
  int64_t RowNnz(int64_t r) const { return row_ptr_[r + 1] - row_ptr_[r]; }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int32_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }
  std::vector<float>& mutable_values() { return values_; }

  /// Returns the stored value at (r, c), or 0 if the entry is structurally
  /// absent. O(log nnz(r)) — column indices are sorted within each row.
  float At(int64_t r, int64_t c) const;

  /// Divides each row by its sum (rows summing to 0 are left untouched).
  /// This is the "Normalize W row-wise" step of Algorithm 1.
  void NormalizeRows();

  /// Returns the transpose (counting sort on columns; O(nnz + cols)).
  CsrMatrix Transpose() const;

  /// Sum of all stored values in row r.
  double RowSum(int64_t r) const;

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<int64_t> row_ptr_;
  std::vector<int32_t> col_idx_;
  std::vector<float> values_;
};

/// Accumulates (row, col, value) triplets and assembles a CsrMatrix,
/// summing duplicates and sorting columns within rows.
class CooBuilder {
 public:
  CooBuilder(int64_t rows, int64_t cols) : rows_(rows), cols_(cols) {}

  void Add(int64_t row, int64_t col, float value);
  void Reserve(size_t n);

  /// Assembles and clears the builder.
  CsrMatrix Build();

  size_t num_entries() const { return entries_.size(); }

 private:
  struct Entry {
    int64_t row;
    int32_t col;
    float value;
  };
  int64_t rows_;
  int64_t cols_;
  std::vector<Entry> entries_;
};

/// Sparse general matrix multiply C = A * B (Gustavson's algorithm with a
/// dense per-row accumulator; parallelized over rows of A).
CsrMatrix SpGemm(const CsrMatrix& a, const CsrMatrix& b);

}  // namespace kgeval

#endif  // KGEVAL_SPARSE_CSR_H_

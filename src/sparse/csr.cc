#include "sparse/csr.h"

#include <algorithm>

#include "sched/task_group.h"

namespace kgeval {

CsrMatrix::CsrMatrix(int64_t rows, int64_t cols, std::vector<int64_t> row_ptr,
                     std::vector<int32_t> col_idx, std::vector<float> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  KGEVAL_CHECK_EQ(row_ptr_.size(), static_cast<size_t>(rows_) + 1);
  KGEVAL_CHECK_EQ(col_idx_.size(), values_.size());
}

float CsrMatrix::At(int64_t r, int64_t c) const {
  KGEVAL_DCHECK(r >= 0 && r < rows_);
  const auto begin = col_idx_.begin() + RowBegin(r);
  const auto end = col_idx_.begin() + RowEnd(r);
  auto it = std::lower_bound(begin, end, static_cast<int32_t>(c));
  if (it == end || *it != c) return 0.0f;
  return values_[static_cast<size_t>(it - col_idx_.begin())];
}

void CsrMatrix::NormalizeRows() {
  for (int64_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (int64_t k = RowBegin(r); k < RowEnd(r); ++k) sum += values_[k];
    if (sum <= 0.0) continue;
    const float inv = static_cast<float>(1.0 / sum);
    for (int64_t k = RowBegin(r); k < RowEnd(r); ++k) values_[k] *= inv;
  }
}

double CsrMatrix::RowSum(int64_t r) const {
  double sum = 0.0;
  for (int64_t k = RowBegin(r); k < RowEnd(r); ++k) sum += values_[k];
  return sum;
}

CsrMatrix CsrMatrix::Transpose() const {
  std::vector<int64_t> t_row_ptr(cols_ + 2, 0);
  // Counting sort: histogram of columns, offset by one for the scan trick.
  for (int32_t c : col_idx_) ++t_row_ptr[c + 2];
  for (size_t i = 2; i < t_row_ptr.size(); ++i) t_row_ptr[i] += t_row_ptr[i - 1];
  std::vector<int32_t> t_col_idx(col_idx_.size());
  std::vector<float> t_values(values_.size());
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = RowBegin(r); k < RowEnd(r); ++k) {
      const int64_t pos = t_row_ptr[col_idx_[k] + 1]++;
      t_col_idx[pos] = static_cast<int32_t>(r);
      t_values[pos] = values_[k];
    }
  }
  t_row_ptr.pop_back();
  return CsrMatrix(cols_, rows_, std::move(t_row_ptr), std::move(t_col_idx),
                   std::move(t_values));
}

void CooBuilder::Add(int64_t row, int64_t col, float value) {
  KGEVAL_DCHECK(row >= 0 && row < rows_);
  KGEVAL_DCHECK(col >= 0 && col < cols_);
  entries_.push_back(Entry{row, static_cast<int32_t>(col), value});
}

void CooBuilder::Reserve(size_t n) { entries_.reserve(n); }

CsrMatrix CooBuilder::Build() {
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              if (a.row != b.row) return a.row < b.row;
              return a.col < b.col;
            });
  std::vector<int64_t> row_ptr(rows_ + 1, 0);
  std::vector<int32_t> col_idx;
  std::vector<float> values;
  col_idx.reserve(entries_.size());
  values.reserve(entries_.size());
  size_t i = 0;
  while (i < entries_.size()) {
    // Sum a run of duplicates.
    size_t j = i + 1;
    float sum = entries_[i].value;
    while (j < entries_.size() && entries_[j].row == entries_[i].row &&
           entries_[j].col == entries_[i].col) {
      sum += entries_[j].value;
      ++j;
    }
    col_idx.push_back(entries_[i].col);
    values.push_back(sum);
    ++row_ptr[entries_[i].row + 1];
    i = j;
  }
  for (int64_t r = 0; r < rows_; ++r) row_ptr[r + 1] += row_ptr[r];
  entries_.clear();
  entries_.shrink_to_fit();
  return CsrMatrix(rows_, cols_, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CsrMatrix SpGemm(const CsrMatrix& a, const CsrMatrix& b) {
  KGEVAL_CHECK_EQ(a.cols(), b.rows());
  const int64_t out_rows = a.rows();
  const int64_t out_cols = b.cols();
  // Per-row results computed independently, then stitched into CSR.
  std::vector<std::vector<int32_t>> row_cols(out_rows);
  std::vector<std::vector<float>> row_vals(out_rows);

  ParallelFor(0, static_cast<size_t>(out_rows), [&](size_t lo, size_t hi) {
    std::vector<float> accumulator(out_cols, 0.0f);
    std::vector<int32_t> touched;
    for (size_t r = lo; r < hi; ++r) {
      touched.clear();
      for (int64_t ka = a.RowBegin(r); ka < a.RowEnd(r); ++ka) {
        const int32_t mid = a.col_idx()[ka];
        const float av = a.values()[ka];
        for (int64_t kb = b.RowBegin(mid); kb < b.RowEnd(mid); ++kb) {
          const int32_t c = b.col_idx()[kb];
          if (accumulator[c] == 0.0f) touched.push_back(c);
          accumulator[c] += av * b.values()[kb];
        }
      }
      std::sort(touched.begin(), touched.end());
      auto& cols_out = row_cols[r];
      auto& vals_out = row_vals[r];
      cols_out.reserve(touched.size());
      vals_out.reserve(touched.size());
      for (int32_t c : touched) {
        // Keep exact zeros out of the structure (cancellation is possible
        // in principle, though not with the non-negative L-WD inputs).
        if (accumulator[c] != 0.0f) {
          cols_out.push_back(c);
          vals_out.push_back(accumulator[c]);
        }
        accumulator[c] = 0.0f;
      }
    }
  });

  std::vector<int64_t> row_ptr(out_rows + 1, 0);
  for (int64_t r = 0; r < out_rows; ++r) {
    row_ptr[r + 1] = row_ptr[r] + static_cast<int64_t>(row_cols[r].size());
  }
  std::vector<int32_t> col_idx(row_ptr[out_rows]);
  std::vector<float> values(row_ptr[out_rows]);
  ParallelFor(0, static_cast<size_t>(out_rows), [&](size_t lo, size_t hi) {
    for (size_t r = lo; r < hi; ++r) {
      std::copy(row_cols[r].begin(), row_cols[r].end(),
                col_idx.begin() + row_ptr[r]);
      std::copy(row_vals[r].begin(), row_vals[r].end(),
                values.begin() + row_ptr[r]);
    }
  });
  return CsrMatrix(out_rows, out_cols, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

}  // namespace kgeval

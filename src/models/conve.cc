#include "models/conve.h"

#include <algorithm>

#include "la/vector_ops.h"
#include "util/string_util.h"

namespace kgeval {

Result<std::unique_ptr<KgeModel>> ConvE::Create(int32_t num_entities,
                                                int32_t num_relations,
                                                const ModelOptions& options) {
  if (options.dim % kWidth != 0 || options.dim < 12) {
    return Status::InvalidArgument(
        StrFormat("ConvE dim must be >= 12 and divisible by %d, got %d",
                  kWidth, options.dim));
  }
  return {std::unique_ptr<KgeModel>(
      new ConvE(num_entities, num_relations, options))};
}

ConvE::ConvE(int32_t num_entities, int32_t num_relations,
             ModelOptions options)
    : KgeModel(ModelType::kConvE, num_entities, num_relations, options),
      kh_(options.dim / kWidth),
      hc_(2 * kh_ - (kKernel - 1)),
      wc_(kWidth - (kKernel - 1)),
      flat_size_(kChannels * hc_ * wc_),
      entities_(num_entities, options.dim),
      relations_(2 * num_relations, options.dim),
      filters_(kChannels, kKernel * kKernel),
      conv_bias_(1, kChannels, 0.0f),
      fc_(flat_size_, options.dim),
      fc_bias_(1, options.dim, 0.0f),
      entity_bias_(num_entities, 1, 0.0f),
      entity_adam_(num_entities, options.dim, options.adam),
      relation_adam_(2 * num_relations, options.dim, options.adam),
      filter_adam_(kChannels, kKernel * kKernel, options.adam),
      conv_bias_adam_(1, kChannels, options.adam),
      fc_adam_(flat_size_, options.dim, options.adam),
      fc_bias_adam_(1, options.dim, options.adam),
      entity_bias_adam_(num_entities, 1, options.adam) {
  Rng rng(options.seed);
  entities_.InitXavier(&rng, options.dim, options.dim);
  relations_.InitXavier(&rng, options.dim, options.dim);
  filters_.InitXavier(&rng, kKernel * kKernel, kChannels);
  fc_.InitXavier(&rng, flat_size_, options.dim);
}

void ConvE::Forward(int32_t anchor, int32_t rel_row,
                    Activations* acts) const {
  const int32_t d = options_.dim;
  const int32_t h_in = 2 * kh_;
  acts->img.assign(static_cast<size_t>(h_in) * kWidth, 0.0f);
  const float* a = entities_.Row(anchor);
  const float* r = relations_.Row(rel_row);
  // Top half: anchor embedding reshaped kh x kWidth; bottom half: relation.
  for (int32_t i = 0; i < d; ++i) acts->img[i] = a[i];
  for (int32_t i = 0; i < d; ++i) acts->img[d + i] = r[i];

  acts->conv_pre.assign(static_cast<size_t>(kChannels) * hc_ * wc_, 0.0f);
  acts->flat.assign(flat_size_, 0.0f);
  for (int32_t c = 0; c < kChannels; ++c) {
    const float* filt = filters_.Row(c);
    const float bias = conv_bias_.At(0, c);
    for (int32_t y = 0; y < hc_; ++y) {
      for (int32_t x = 0; x < wc_; ++x) {
        float acc = bias;
        for (int32_t dy = 0; dy < kKernel; ++dy) {
          for (int32_t dx = 0; dx < kKernel; ++dx) {
            acc += filt[dy * kKernel + dx] *
                   acts->img[(y + dy) * kWidth + (x + dx)];
          }
        }
        const int32_t f = (c * hc_ + y) * wc_ + x;
        acts->conv_pre[f] = acc;
        acts->flat[f] = acc > 0.0f ? acc : 0.0f;
      }
    }
  }

  acts->psi_pre.assign(d, 0.0f);
  for (int32_t o = 0; o < d; ++o) acts->psi_pre[o] = fc_bias_.At(0, o);
  for (int32_t f = 0; f < flat_size_; ++f) {
    const float act = acts->flat[f];
    if (act == 0.0f) continue;
    Axpy(act, fc_.Row(f), acts->psi_pre.data(), d);
  }
  acts->psi.resize(d);
  for (int32_t o = 0; o < d; ++o) {
    acts->psi[o] = acts->psi_pre[o] > 0.0f ? acts->psi_pre[o] : 0.0f;
  }
}

void ConvE::BuildKernelQueries(const int32_t* anchors, size_t num_queries,
                               int32_t relation, QueryDirection direction,
                               Matrix* queries) const {
  // Head queries use the reciprocal relation row (relation + |R|), the trick
  // that answers (?, r, t) as the tail query (t, r_reciprocal, ?).
  const int32_t rel_row = direction == QueryDirection::kTail
                              ? relation
                              : relation + num_relations_;
  const int32_t d = options_.dim;
  queries->Resize(num_queries, d);
  Activations acts;
  for (size_t q = 0; q < num_queries; ++q) {
    Forward(anchors[q], rel_row, &acts);
    std::copy(acts.psi.begin(), acts.psi.end(), queries->Row(q));
  }
}

void ConvE::UpdateTriple(int32_t head, int32_t relation, int32_t tail,
                         QueryDirection direction, float dscore) {
  // Tail queries run the trunk on (h, r) and treat t as the candidate; head
  // queries run it on (t, r_reciprocal) with h as the candidate.
  const bool tail_dir = direction == QueryDirection::kTail;
  const int32_t anchor = tail_dir ? head : tail;
  const int32_t cand = tail_dir ? tail : head;
  const int32_t rel_row = tail_dir ? relation : relation + num_relations_;

  Activations acts;
  Forward(anchor, rel_row, &acts);
  const int32_t d = options_.dim;
  const float l2 = options_.l2;

  // --- Candidate-side gradients. ------------------------------------------
  std::vector<float> gcand(d);
  const float* cand_row = entities_.Row(cand);
  for (int32_t o = 0; o < d; ++o) {
    gcand[o] = dscore * acts.psi[o] + l2 * cand_row[o];
  }
  const float gcand_bias = dscore;

  // --- Back through the final ReLU + dot product. --------------------------
  std::vector<float> dpsi(d);
  for (int32_t o = 0; o < d; ++o) {
    dpsi[o] = acts.psi_pre[o] > 0.0f ? dscore * cand_row[o] : 0.0f;
  }

  // --- FC layer. Rows whose ReLU input was clipped carry no gradient (and
  // no weight decay when l2 == 0), so they are skipped — roughly halves the
  // dominant cost of a ConvE update.
  std::vector<float> dflat(flat_size_, 0.0f);
  std::vector<float> gfc_row(d);
  for (int32_t f = 0; f < flat_size_; ++f) {
    const float act = acts.flat[f];
    if (act == 0.0f && l2 == 0.0f) continue;
    const float* fc_row = fc_.Row(f);
    dflat[f] = Dot(fc_row, dpsi.data(), d);
    for (int32_t o = 0; o < d; ++o) {
      gfc_row[o] = act * dpsi[o] + l2 * fc_row[o];
    }
    fc_adam_.UpdateRow(&fc_, f, gfc_row.data());
  }
  fc_bias_adam_.UpdateRow(&fc_bias_, 0, dpsi.data());

  // --- Conv layer (through its ReLU). ---------------------------------------
  const int32_t h_in = 2 * kh_;
  std::vector<float> dimg(static_cast<size_t>(h_in) * kWidth, 0.0f);
  std::vector<float> gconv_bias(kChannels, 0.0f);
  std::vector<float> gfilt(kKernel * kKernel);
  for (int32_t c = 0; c < kChannels; ++c) {
    std::fill(gfilt.begin(), gfilt.end(), 0.0f);
    const float* filt = filters_.Row(c);
    for (int32_t y = 0; y < hc_; ++y) {
      for (int32_t x = 0; x < wc_; ++x) {
        const int32_t f = (c * hc_ + y) * wc_ + x;
        if (acts.conv_pre[f] <= 0.0f) continue;
        const float g = dflat[f];
        if (g == 0.0f) continue;
        gconv_bias[c] += g;
        for (int32_t dy = 0; dy < kKernel; ++dy) {
          for (int32_t dx = 0; dx < kKernel; ++dx) {
            const int32_t pixel = (y + dy) * kWidth + (x + dx);
            gfilt[dy * kKernel + dx] += g * acts.img[pixel];
            dimg[pixel] += g * filt[dy * kKernel + dx];
          }
        }
      }
    }
    for (int32_t k = 0; k < kKernel * kKernel; ++k) gfilt[k] += l2 * filt[k];
    filter_adam_.UpdateRow(&filters_, c, gfilt.data());
  }
  conv_bias_adam_.UpdateRow(&conv_bias_, 0, gconv_bias.data());

  // --- Input image -> anchor and relation embeddings. ----------------------
  std::vector<float> ganchor(d), grel(d);
  const float* anchor_row = entities_.Row(anchor);
  const float* rel_row_ptr = relations_.Row(rel_row);
  for (int32_t i = 0; i < d; ++i) {
    ganchor[i] = dimg[i] + l2 * anchor_row[i];
    grel[i] = dimg[d + i] + l2 * rel_row_ptr[i];
  }

  entity_adam_.UpdateRow(&entities_, cand, gcand.data());
  entity_bias_adam_.UpdateRow(&entity_bias_, cand, &gcand_bias);
  entity_adam_.UpdateRow(&entities_, anchor, ganchor.data());
  relation_adam_.UpdateRow(&relations_, rel_row, grel.data());
}

void ConvE::CollectParameters(std::vector<NamedParameter>* out) {
  out->push_back({"entities", &entities_});
  out->push_back({"relations", &relations_});
  out->push_back({"filters", &filters_});
  out->push_back({"conv_bias", &conv_bias_});
  out->push_back({"fc", &fc_});
  out->push_back({"fc_bias", &fc_bias_});
  out->push_back({"entity_bias", &entity_bias_});
}

}  // namespace kgeval

// Training monitor: the framework's practical use case from the paper's
// intro — watch a model's validation MRR during training (and early-stop)
// without ever paying for a full ranking, then verify the final number with
// one exact evaluation at the end.
//
// The monitoring loop runs inside an EvalSession: the 2|R| candidate pools
// are drawn ONCE and pinned, so every epoch's estimate (a) skips the
// per-estimate sampling cost and (b) ranks against identical pools — the
// per-epoch curve moves only when the model does, not when the draw does.
//
// Usage: training_monitor [preset] [max_epochs] [patience]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/eval_session.h"
#include "eval/full_evaluator.h"
#include "models/trainer.h"
#include "synth/config.h"
#include "synth/generator.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace kgeval;
  const std::string preset = argc > 1 ? argv[1] : "codex-m";
  const int max_epochs = argc > 2 ? std::atoi(argv[2]) : 30;
  const int patience = argc > 3 ? std::atoi(argv[3]) : 5;

  SynthConfig config = GetPreset(preset, PresetScale::kScaled).ValueOrDie();
  SynthOutput synth = GenerateDataset(config).ValueOrDie();
  const Dataset& dataset = synth.dataset;
  const FilterIndex filter(dataset);

  FrameworkOptions fw_options;
  fw_options.recommender = RecommenderType::kLwd;
  fw_options.strategy = SamplingStrategy::kStatic;
  fw_options.sample_fraction = 0.1;
  auto session =
      EvalSession::Create(&dataset, &filter, fw_options, Split::kValid)
          .ValueOrDie();
  std::printf(
      "session ready in %.3fs (recommender fit + candidate sets) — pool "
      "draw %.3fs, paid once for the whole run\n",
      session->framework().build_seconds(),
      session->pools().sample_seconds);

  ModelOptions model_options;
  model_options.dim = 32;
  model_options.adam.learning_rate = 3e-3f;
  auto model = CreateModel(ModelType::kComplEx, dataset.num_entities(),
                           dataset.num_relations(), model_options)
                   .ValueOrDie();
  TrainerOptions trainer_options;
  trainer_options.epochs = 1;  // Driven manually below.
  trainer_options.negatives_per_positive = 8;
  Trainer trainer(&dataset, trainer_options);

  double best_estimate = -1.0;
  int epochs_since_best = 0;
  double total_estimate_seconds = 0.0;
  int estimates = 0;
  for (int epoch = 0; epoch < max_epochs; ++epoch) {
    const double loss = trainer.TrainEpoch(model.get(), epoch);
    WallTimer timer;
    const double estimate = session->Estimate(*model).metrics.mrr;
    total_estimate_seconds += timer.Seconds();
    ++estimates;
    std::printf("epoch %2d  loss %.4f  est. valid MRR %.4f%s\n", epoch, loss,
                estimate, estimate > best_estimate ? "  (best)" : "");
    if (estimate > best_estimate) {
      best_estimate = estimate;
      epochs_since_best = 0;
    } else if (++epochs_since_best >= patience) {
      std::printf("early stop: no improvement for %d epochs\n", patience);
      break;
    }
  }

  WallTimer full_timer;
  const double exact =
      EvaluateFullRanking(*model, dataset, filter, Split::kValid)
          .metrics.mrr;
  const double full_seconds = full_timer.Seconds();
  std::printf(
      "\nfinal exact valid MRR %.4f (last estimate %.4f)\n"
      "monitoring cost: %.3fs total for %d estimates vs %.3fs for ONE full "
      "evaluation\n"
      "sampling amortized: one pinned draw (%.3fs) served all %d estimates "
      "— %.4fs/epoch instead of %.3fs/epoch redrawn\n",
      exact, best_estimate, total_estimate_seconds, estimates, full_seconds,
      session->pools().sample_seconds, estimates,
      session->pools().sample_seconds / estimates,
      session->pools().sample_seconds);
  return 0;
}

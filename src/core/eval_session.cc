#include "core/eval_session.h"

#include <atomic>
#include <utility>

#include "sched/task_group.h"
#include "util/mutex.h"
#include "util/logging.h"
#include "util/timer.h"

namespace kgeval {
namespace {

/// The shared core of both checkpoint sweeps: loads each path on a job
/// thread (RunJobsConcurrently caps in-flight jobs at the worker count, so
/// with one model per job the resident-model count is bounded the same
/// way), evaluates it through `eval`, records the outcome, frees the model
/// *before* streaming progress, and tracks the resident high-water mark.
/// `Outcome` is CheckpointEstimate or its adaptive twin; `eval(model)`
/// returns the matching result type.
template <typename Outcome, typename Eval>
std::vector<Outcome> SweepCheckpoints(
    const EvaluationFramework& framework,
    const std::vector<std::string>& paths, const Eval& eval,
    const std::function<void(size_t, const Outcome&)>& progress,
    CheckpointSweepStats* stats, const CancelToken* cancel) {
  WallTimer timer;
  std::vector<Outcome> outcomes(paths.size());
  std::atomic<size_t> resident{0};
  std::atomic<size_t> high_water{0};
  std::atomic<size_t> failed{0};
  // Serializes the user's progress callback: jobs finish on
  // concurrent job threads, but the stream must never interleave.
  Mutex progress_mutex;
  RunJobsConcurrently(paths.size(), [&](size_t i) {
    // Checked before the load so a cancelled sweep stops paying the
    // expensive part immediately; passes already in flight wind down
    // through the token threaded into eval().
    if (cancel != nullptr && cancel->cancelled()) {
      outcomes[i].status = Status::Cancelled("sweep cancelled");
      failed.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Counted resident across the load itself: a model being
      // deserialized already occupies its full embedding tables, so the
      // high-water mark must see it before LoadCheckpoint returns.
      const size_t now = resident.fetch_add(1) + 1;
      size_t seen = high_water.load();
      while (now > seen && !high_water.compare_exchange_weak(seen, now)) {
      }
      auto model_or = framework.LoadCheckpoint(paths[i]);
      if (!model_or.ok()) {
        resident.fetch_sub(1);
        outcomes[i].status = model_or.status();
        failed.fetch_add(1, std::memory_order_relaxed);
      } else {
        std::unique_ptr<KgeModel> model = std::move(model_or).ValueOrDie();
        outcomes[i].result = eval(*model);
        model.reset();  // Freed before progress runs: the callback must
                        // never extend a model's residency.
        resident.fetch_sub(1);
        if (outcomes[i].result.cancelled) {
          outcomes[i].status = Status::Cancelled("evaluation cancelled");
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    if (progress) {
      MutexLock lock(&progress_mutex);
      progress(i, outcomes[i]);
    }
  });
  if (stats != nullptr) {
    stats->max_resident_models = high_water.load();
    stats->failed = failed.load();
    stats->wall_seconds = timer.Seconds();
  }
  return outcomes;
}

}  // namespace

EvalSession::EvalSession(std::unique_ptr<EvaluationFramework> framework,
                         const FilterIndex* filter, Split split,
                         const EvalProtocol* protocol)
    : framework_(std::move(framework)), filter_(filter), split_(split) {
  KGEVAL_CHECK(framework_ != nullptr);
  KGEVAL_CHECK(filter_ != nullptr);
  if (protocol == nullptr) {
    owned_protocol_ = std::make_unique<StaticFilteredProtocol>(
        framework_->dataset()->num_relations(), filter_);
    protocol_ = owned_protocol_.get();
  } else {
    protocol_ = protocol;
  }
  pools_ = framework_->DrawPools(split_);
}

Result<std::unique_ptr<EvalSession>> EvalSession::Create(
    const Dataset* dataset, const FilterIndex* filter,
    const FrameworkOptions& options, Split split,
    const EvalProtocol* protocol) {
  if (filter == nullptr) {
    return Status::InvalidArgument("filter is null");
  }
  auto framework = EvaluationFramework::Build(dataset, options);
  if (!framework.ok()) return framework.status();
  return {std::unique_ptr<EvalSession>(new EvalSession(
      std::move(framework).ValueOrDie(), filter, split, protocol))};
}

std::unique_ptr<EvalSession> EvalSession::Adopt(
    std::unique_ptr<EvaluationFramework> framework, const FilterIndex* filter,
    Split split, const EvalProtocol* protocol) {
  return std::unique_ptr<EvalSession>(
      new EvalSession(std::move(framework), filter, split, protocol));
}

SampledEvalResult EvalSession::Estimate(const KgeModel& model,
                                        int64_t max_triples,
                                        const CancelToken* cancel) const {
  return framework_->EstimateOnPools(model, *protocol_, split_, pools_,
                                     max_triples, cancel);
}

std::vector<SampledEvalResult> EvalSession::EstimateMany(
    const std::vector<const KgeModel*>& models, int64_t max_triples) const {
  std::vector<SampledEvalResult> results(models.size());
  RunJobsConcurrently(models.size(), [&](size_t i) {
    KGEVAL_CHECK(models[i] != nullptr);
    results[i] = Estimate(*models[i], max_triples);
  });
  return results;
}

AdaptiveEvalResult EvalSession::EstimateAdaptive(
    const KgeModel& model, const AdaptiveEvalOptions& adaptive,
    const CancelToken* cancel) const {
  return framework_->EstimateAdaptiveOnPools(model, *protocol_, split_,
                                             pools_, adaptive, cancel);
}

std::vector<AdaptiveEvalResult> EvalSession::EstimateAdaptiveMany(
    const std::vector<const KgeModel*>& models,
    const AdaptiveEvalOptions& adaptive) const {
  std::vector<AdaptiveEvalResult> results(models.size());
  RunJobsConcurrently(models.size(), [&](size_t i) {
    KGEVAL_CHECK(models[i] != nullptr);
    results[i] = EstimateAdaptive(*models[i], adaptive);
  });
  return results;
}

std::vector<CheckpointEstimate> EvalSession::EstimateCheckpoints(
    const std::vector<std::string>& paths, int64_t max_triples,
    const CheckpointProgressFn& progress, CheckpointSweepStats* stats,
    const CancelToken* cancel) const {
  return SweepCheckpoints<CheckpointEstimate>(
      *framework_, paths,
      [&](const KgeModel& model) {
        return Estimate(model, max_triples, cancel);
      },
      progress, stats, cancel);
}

std::vector<CheckpointAdaptiveEstimate> EvalSession::EstimateAdaptiveCheckpoints(
    const std::vector<std::string>& paths,
    const AdaptiveEvalOptions& adaptive,
    const CheckpointAdaptiveProgressFn& progress, CheckpointSweepStats* stats,
    const CancelToken* cancel) const {
  return SweepCheckpoints<CheckpointAdaptiveEstimate>(
      *framework_, paths,
      [&](const KgeModel& model) {
        return EstimateAdaptive(model, adaptive, cancel);
      },
      progress, stats, cancel);
}

void EvalSession::RedrawPools() { pools_ = framework_->DrawPools(split_); }

}  // namespace kgeval

#include "service/eval_service.h"

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "eval/screen.h"
#include "la/kernels/kernels.h"
#include "service/checkpoint_watcher.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace kgeval {

namespace {

/// Metric values are formatted with %.17g everywhere in the protocol:
/// round-trip exact for IEEE doubles, so "served value equals directly
/// computed value" is byte comparison, not epsilon comparison.
std::string Fmt(double v) { return StrFormat("%.17g", v); }

bool ParseDouble(const std::string& s, double* out) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == s.c_str()) return false;
  *out = v;
  return true;
}

bool ParseInt(const std::string& s, int64_t* out) {
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || end == s.c_str()) return false;
  *out = v;
  return true;
}

std::string SampledReply(const SampledEvalResult& r) {
  return StrFormat(
      "OK mrr=%s ci=%s hits1=%s hits3=%s hits10=%s queries=%lld scored=%lld "
      "eval_s=%.6f",
      Fmt(r.metrics.mrr).c_str(), Fmt(r.ci.mrr).c_str(),
      Fmt(r.metrics.hits1).c_str(), Fmt(r.metrics.hits3).c_str(),
      Fmt(r.metrics.hits10).c_str(),
      static_cast<long long>(r.metrics.num_queries),
      static_cast<long long>(r.scored_candidates), r.eval_seconds);
}

std::string AdaptiveReply(const AdaptiveEvalResult& r) {
  return StrFormat(
      "OK mrr=%s ci=%s hits1=%s hits3=%s hits10=%s queries=%lld scored=%lld "
      "eval_s=%.6f converged=%d rounds=%lld",
      Fmt(r.metrics.mrr).c_str(), Fmt(r.ci.mrr).c_str(),
      Fmt(r.metrics.hits1).c_str(), Fmt(r.metrics.hits3).c_str(),
      Fmt(r.metrics.hits10).c_str(),
      static_cast<long long>(r.evaluated_queries),
      static_cast<long long>(r.scored_candidates), r.eval_seconds,
      r.converged ? 1 : 0, static_cast<long long>(r.rounds));
}

}  // namespace

FrameworkOptions EvalService::ServiceFrameworkOptions() {
  // Deliberately explicit, not just FrameworkOptions{}: these values are
  // part of the service contract (PROTOCOL.md "LOAD") and the load bench's
  // parity gate reconstructs them.
  FrameworkOptions options;
  options.recommender = RecommenderType::kLwd;
  options.strategy = SamplingStrategy::kProbabilistic;
  options.sample_fraction = 0.1;
  options.seed = 33;
  return options;
}

EvalService::EvalService(Options options)
    : options_(options),
      start_seconds_(
          std::chrono::duration<double>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count()) {}

std::shared_ptr<const EvalService::Loaded> EvalService::Snapshot() const {
  MutexLock lock(&state_mutex_);
  return state_;
}

std::string EvalService::loaded_name() const {
  auto state = Snapshot();
  return state == nullptr ? std::string() : state->name;
}

bool EvalService::EmitError(const EmitFn& emit, const std::string& code,
                            const std::string& message) {
  counters_.errors.fetch_add(1, std::memory_order_relaxed);
  return emit(StrFormat("ERR %s %s", code.c_str(), message.c_str()));
}

bool EvalService::EmitCancelled(const EmitFn& emit, const CancelToken& cancel,
                                const std::string& what) {
  if (cancel.reason() == CancelToken::Reason::kDeadline) {
    counters_.deadlines_exceeded.fetch_add(1, std::memory_order_relaxed);
    return EmitError(emit, "deadline-exceeded", what);
  }
  counters_.cancelled.fetch_add(1, std::memory_order_relaxed);
  return EmitError(emit, "cancelled", what);
}

void EvalService::Execute(const ParsedCommand& cmd, const EmitFn& emit,
                          const CancelToken* cancel) {
  KGEVAL_CHECK(cmd.spec != nullptr);
  counters_.commands.fetch_add(1, std::memory_order_relaxed);
  counters_.in_flight.fetch_add(1, std::memory_order_relaxed);
  switch (cmd.spec->verb) {
    case Verb::kPing:
      emit("OK pong");
      break;
    case Verb::kLoad:
      ExecuteLoad(cmd, emit);
      break;
    case Verb::kEval:
      ExecuteEval(cmd, emit, cancel);
      break;
    case Verb::kSweep:
      ExecuteSweep(cmd, emit, cancel);
      break;
    case Verb::kWatch:
      ExecuteWatch(cmd, emit, cancel);
      break;
    case Verb::kStats:
      ExecuteStats(emit);
      break;
    case Verb::kQuit:
      // Transport-level; the server handles it before dispatch.
      EmitError(emit, "internal", "QUIT reached the service");
      break;
  }
  counters_.in_flight.fetch_sub(1, std::memory_order_relaxed);
}

void EvalService::ExecuteLoad(const ParsedCommand& cmd, const EmitFn& emit) {
  const std::string& name = cmd.args[0];
  Split split = Split::kTest;
  if (cmd.args.size() > 1) {
    std::string s = cmd.args[1];
    for (char& c : s) c = static_cast<char>(std::tolower(c));
    if (s == "valid") {
      split = Split::kValid;
    } else if (s == "test") {
      split = Split::kTest;
    } else {
      EmitError(emit, "bad-argument",
                StrFormat("split must be valid|test, got %s",
                          cmd.args[1].c_str()));
      return;
    }
  }
  auto config = GetPreset(name, options_.scale);
  if (!config.ok()) {
    EmitError(emit, "bad-argument", config.status().message());
    return;
  }
  WallTimer timer;
  // One LOAD builds at a time: two clients racing LOADs would each burn a
  // recommender fit only for one result to be dropped.
  MutexLock load_lock(&load_mutex_);
  auto loaded = std::make_shared<Loaded>();
  loaded->name = name;
  loaded->split = split;
  auto synth = GenerateDataset(config.ValueOrDie());
  if (!synth.ok()) {
    EmitError(emit, "internal", synth.status().message());
    return;
  }
  loaded->synth =
      std::make_unique<SynthOutput>(std::move(synth).ValueOrDie());
  loaded->filter = std::make_unique<FilterIndex>(loaded->synth->dataset);
  loaded->temporal_filter =
      std::make_unique<TemporalFilterIndex>(loaded->synth->dataset);
  loaded->static_protocol = std::make_unique<StaticFilteredProtocol>(
      loaded->synth->dataset, loaded->filter.get());
  loaded->temporal_protocol = std::make_unique<TemporalFilteredProtocol>(
      loaded->synth->dataset, loaded->temporal_filter.get());
  FrameworkOptions framework_options = ServiceFrameworkOptions();
  // Screening never changes served values (ranks are bit-identical with it
  // on or off), so the flag stays outside the parity-gated contract above.
  framework_options.screening = options_.screening;
  auto session =
      EvalSession::Create(&loaded->synth->dataset, loaded->filter.get(),
                          framework_options, split);
  if (!session.ok()) {
    EmitError(emit, "internal", session.status().message());
    return;
  }
  loaded->session = std::move(session).ValueOrDie();
  const Dataset& dataset = loaded->synth->dataset;
  const int64_t sample_size = loaded->session->framework().SampleSize();
  {
    MutexLock lock(&state_mutex_);
    state_ = std::move(loaded);
  }
  auto state = Snapshot();
  emit(StrFormat(
      "OK dataset=%s split=%s entities=%d relations=%d train=%lld "
      "eval_triples=%lld sample_size=%lld build_s=%.3f",
      name.c_str(), split == Split::kValid ? "valid" : "test",
      dataset.num_entities(), dataset.num_relations(),
      static_cast<long long>(dataset.train().size()),
      static_cast<long long>(split == Split::kValid ? dataset.valid().size()
                                                    : dataset.test().size()),
      static_cast<long long>(sample_size), timer.Seconds()));
}

void EvalService::ExecuteEval(const ParsedCommand& cmd, const EmitFn& emit,
                              const CancelToken* cancel) {
  auto state = Snapshot();
  if (state == nullptr) {
    EmitError(emit, "no-dataset", "LOAD a dataset before EVAL");
    return;
  }
  const std::string& path = cmd.args[0];
  const EvaluationFramework& framework = state->session->framework();
  // Optional arguments, in order: a numeric half_width (switching to the
  // adaptive estimator), then a protocol name. A lone non-numeric token is
  // a protocol name, so `EVAL <ckpt> temporal` works without a half_width.
  bool adaptive_requested = false;
  double half_width = 0.0;
  size_t arg = 1;
  if (cmd.args.size() > 1 && ParseDouble(cmd.args[1], &half_width)) {
    if (half_width <= 0.0 || half_width >= 1.0) {
      EmitError(emit, "bad-argument",
                StrFormat("half_width must be in (0, 1), got %s",
                          cmd.args[1].c_str()));
      return;
    }
    adaptive_requested = true;
    arg = 2;
  }
  const EvalProtocol* protocol = state->static_protocol.get();
  if (arg < cmd.args.size()) {
    const std::string& protocol_name = cmd.args[arg];
    if (arg + 1 < cmd.args.size()) {
      EmitError(emit, "bad-argument",
                StrFormat("unexpected argument %s (half_width must precede "
                          "the protocol name)",
                          cmd.args[arg + 1].c_str()));
      return;
    }
    if (protocol_name == "static") {
      protocol = state->static_protocol.get();
    } else if (protocol_name == "temporal") {
      protocol = state->temporal_protocol.get();
    } else {
      EmitError(emit, "unknown-protocol",
                StrFormat("protocol must be static|temporal, got %s",
                          protocol_name.c_str()));
      return;
    }
  }
  if (adaptive_requested) {
    AdaptiveEvalOptions adaptive;
    adaptive.target_half_width = half_width;
    auto result = framework.EstimateAdaptiveCheckpointOnPools(
        path, *protocol, state->split, state->session->pools(), adaptive,
        cancel);
    if (!result.ok()) {
      if (result.status().code() == StatusCode::kCancelled &&
          cancel != nullptr) {
        EmitCancelled(emit, *cancel, result.status().message());
      } else {
        EmitError(emit, "eval-failed", result.status().message());
      }
      return;
    }
    counters_.checkpoints_evaluated.fetch_add(1, std::memory_order_relaxed);
    emit(AdaptiveReply(result.ValueOrDie()));
    return;
  }
  auto result = framework.EstimateCheckpointOnPools(
      path, *protocol, state->split, state->session->pools(),
      /*max_triples=*/0, cancel);
  if (!result.ok()) {
    if (result.status().code() == StatusCode::kCancelled &&
        cancel != nullptr) {
      EmitCancelled(emit, *cancel, result.status().message());
    } else {
      EmitError(emit, "eval-failed", result.status().message());
    }
    return;
  }
  counters_.checkpoints_evaluated.fetch_add(1, std::memory_order_relaxed);
  emit(SampledReply(result.ValueOrDie()));
}

void EvalService::ExecuteSweep(const ParsedCommand& cmd, const EmitFn& emit,
                               const CancelToken* cancel) {
  auto state = Snapshot();
  if (state == nullptr) {
    EmitError(emit, "no-dataset", "LOAD a dataset before SWEEP");
    return;
  }
  auto paths = ListCheckpointFiles(cmd.args[0]);
  if (!paths.ok()) {
    EmitError(emit, "io", paths.status().message());
    return;
  }
  // ITEM lines ride the sweep's serialized progress callback: they stream
  // in completion order as snapshots finish, each tagged with its input-
  // order index. A dead client flips `live` and the remaining callbacks
  // stop emitting (the sweep itself runs to completion — evaluation work
  // is shared-pool work that cannot be yanked mid-chunk). Cancelled
  // outcomes are the sweep winding down, not per-item failures: their ITEM
  // lines are suppressed and the terminal line reports the abandonment.
  bool live = true;
  size_t emitted = 0;
  CheckpointSweepStats stats;
  state->session->EstimateCheckpoints(
      paths.ValueOrDie(), /*max_triples=*/0,
      [&](size_t index, const CheckpointEstimate& outcome) {
        if (!live) return;
        if (outcome.status.code() == StatusCode::kCancelled) return;
        counters_.items_streamed.fetch_add(1, std::memory_order_relaxed);
        ++emitted;
        if (outcome.status.ok()) {
          counters_.checkpoints_evaluated.fetch_add(1,
                                                    std::memory_order_relaxed);
          live = emit(StrFormat("ITEM %zu %s %s", index,
                                Fmt(outcome.result.metrics.mrr).c_str(),
                                Fmt(outcome.result.ci.mrr).c_str()));
        } else {
          live = emit(StrFormat("ITEM %zu ERR %s", index,
                                outcome.status.message().c_str()));
        }
      },
      &stats, cancel);
  if (!live) return;
  if (cancel != nullptr && cancel->cancelled()) {
    EmitCancelled(emit, *cancel,
                  StrFormat("sweep abandoned after %zu of %zu checkpoints",
                            emitted, paths.ValueOrDie().size()));
    return;
  }
  emit(StrFormat("DONE %zu failed=%zu max_resident=%zu wall_s=%.6f",
                 paths.ValueOrDie().size(), stats.failed,
                 stats.max_resident_models, stats.wall_seconds));
}

void EvalService::ExecuteWatch(const ParsedCommand& cmd, const EmitFn& emit,
                               const CancelToken* cancel) {
  auto state = Snapshot();
  if (state == nullptr) {
    EmitError(emit, "no-dataset", "LOAD a dataset before WATCH");
    return;
  }
  int64_t count = 0;
  if (!ParseInt(cmd.args[1], &count) || count < 1 || count > 1000000) {
    EmitError(emit, "bad-argument",
              StrFormat("count must be in [1, 1000000], got %s",
                        cmd.args[1].c_str()));
    return;
  }
  double timeout_s = options_.default_watch_timeout_s;
  if (cmd.args.size() > 2) {
    if (!ParseDouble(cmd.args[2], &timeout_s) || timeout_s <= 0.0 ||
        timeout_s > 3600.0) {
      EmitError(emit, "bad-argument",
                StrFormat("timeout_s must be in (0, 3600], got %s",
                          cmd.args[2].c_str()));
      return;
    }
  }
  const EvaluationFramework& framework = state->session->framework();
  CheckpointWatcher watcher(cmd.args[0]);
  WallTimer timer;
  int64_t delivered = 0;
  bool timed_out = false;
  while (delivered < count) {
    if (cancel != nullptr && cancel->cancelled()) {
      EmitCancelled(emit, *cancel,
                    StrFormat("watch abandoned after %lld of %lld items",
                              static_cast<long long>(delivered),
                              static_cast<long long>(count)));
      return;
    }
    if (timer.Seconds() >= timeout_s || shutting_down()) {
      timed_out = true;
      break;
    }
    auto fresh = watcher.Poll();
    if (!fresh.ok()) {
      EmitError(emit, "io", fresh.status().message());
      return;
    }
    for (const std::string& path : fresh.ValueOrDie()) {
      if (delivered >= count) break;
      auto result = framework.EstimateCheckpointOnPools(
          path, *state->filter, state->split, state->session->pools(),
          /*max_triples=*/0, cancel);
      if (!result.ok() &&
          result.status().code() == StatusCode::kCancelled &&
          cancel != nullptr) {
        EmitCancelled(emit, *cancel,
                      StrFormat("watch abandoned after %lld of %lld items",
                                static_cast<long long>(delivered),
                                static_cast<long long>(count)));
        return;
      }
      counters_.items_streamed.fetch_add(1, std::memory_order_relaxed);
      bool live;
      if (result.ok()) {
        counters_.checkpoints_evaluated.fetch_add(1,
                                                  std::memory_order_relaxed);
        live = emit(StrFormat(
            "ITEM %lld %s %s", static_cast<long long>(delivered),
            Fmt(result.ValueOrDie().metrics.mrr).c_str(),
            Fmt(result.ValueOrDie().ci.mrr).c_str()));
      } else {
        // A partially-written or corrupt snapshot: one ERR item, claimed
        // forever (the watcher never re-delivers), and the watch goes on.
        live = emit(StrFormat("ITEM %lld ERR %s",
                              static_cast<long long>(delivered),
                              result.status().message().c_str()));
      }
      ++delivered;
      if (!live) return;
    }
    if (delivered < count) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.poll_interval_ms));
    }
  }
  emit(StrFormat("DONE %lld timeout=%d", static_cast<long long>(delivered),
                 timed_out ? 1 : 0));
}

void EvalService::ExecuteStats(const EmitFn& emit) {
  const double uptime =
      std::chrono::duration<double>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count() -
      start_seconds_;
  const std::string name = loaded_name();
  const ScreenStats screen = GlobalScreenStats();
  emit(StrFormat(
      "OK uptime_s=%.3f dataset=%s connections=%llu accepted=%llu "
      "commands=%llu errors=%llu items=%llu evals=%llu in_flight=%llu "
      "shed=%llu deadlines=%llu cancelled=%llu idle_closed=%llu "
      "threads=%zu kernels=%s screen_queries=%lld screen_screened=%lld "
      "screen_rescored=%lld screen_tiles_skipped=%lld",
      uptime, name.empty() ? "-" : name.c_str(),
      static_cast<unsigned long long>(counters_.connections_open.load()),
      static_cast<unsigned long long>(counters_.connections_accepted.load()),
      static_cast<unsigned long long>(counters_.commands.load()),
      static_cast<unsigned long long>(counters_.errors.load()),
      static_cast<unsigned long long>(counters_.items_streamed.load()),
      static_cast<unsigned long long>(counters_.checkpoints_evaluated.load()),
      static_cast<unsigned long long>(counters_.in_flight.load()),
      static_cast<unsigned long long>(counters_.shed.load()),
      static_cast<unsigned long long>(counters_.deadlines_exceeded.load()),
      static_cast<unsigned long long>(counters_.cancelled.load()),
      static_cast<unsigned long long>(counters_.idle_closed.load()),
      GlobalThreadPool()->num_threads(), ActiveScoreKernelName(),
      static_cast<long long>(screen.queries),
      static_cast<long long>(screen.screened),
      static_cast<long long>(screen.rescored),
      static_cast<long long>(screen.tiles_skipped)));
}

}  // namespace kgeval

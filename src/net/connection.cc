#include "net/connection.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "util/fault.h"
#include "util/logging.h"

namespace kgeval {

Connection::Connection(EventLoop* loop, int fd, ConnectionOptions options)
    : loop_(loop), fd_(fd), options_(options) {
  KGEVAL_CHECK(options_.low_water_bytes <= options_.high_water_bytes);
}

Connection::~Connection() {
  // Close() ran unless the loop shut down with the connection still open;
  // either way the fd must not leak.
  if (!closed_.load()) ::close(fd_);
}

void Connection::Start(LineFn on_line, CloseFn on_close) {
  on_line_ = std::move(on_line);
  on_close_ = std::move(on_close);
  auto self = shared_from_this();
  loop_->Add(fd_, kEventRead, [self](uint32_t events) {
    // Callback entry: claim the loop-thread capability for the dispatch.
    self->loop_->AssertOnLoopThread();
    self->HandleReady(events);
  });
}

void Connection::HandleReady(uint32_t events) {
  if (closed_.load(std::memory_order_acquire)) return;
  if (events & kEventWrite) FlushSome();
  if (closed_.load(std::memory_order_acquire)) return;
  if (events & kEventRead) HandleReadable();
  if (closed_.load(std::memory_order_acquire)) return;
  if (events & kEventHangup) {
    // The loop delivers hangup even while reads are paused (server flow
    // control or the high-water mark), so a vanished peer cannot leave a
    // throttled connection parked forever. The peer is gone, so buffered
    // output and any unprocessed pipelined input are undeliverable work:
    // close now rather than draining them.
    Close();
  }
}

void Connection::HandleReadable() {
  // Fault point "net.recv.close": the peer vanishes mid-line. Everything
  // buffered (partial input line, queued replies) becomes undeliverable at
  // once — the same teardown path a real RST exercises.
  if (FaultPoint("net.recv.close")) {
    Close();
    return;
  }
  char buf[16 * 1024];
  while (true) {
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      input_.append(buf, static_cast<size_t>(n));
      ExtractLines();
      if (closed_.load(std::memory_order_acquire)) return;
      // A callback may have paused reads (flow control / high water):
      // stop pulling more input this round.
      if (paused_by_server_ || paused_by_high_water_ || close_when_drained_) {
        return;
      }
      continue;
    }
    if (n == 0) {  // Peer closed.
      Close();
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    Close();
    return;
  }
}

void Connection::ExtractLines() {
  size_t start = 0;
  while (true) {
    const size_t nl = input_.find('\n', start);
    if (nl == std::string::npos) break;
    if (overflow_) {
      // End of the oversized line: report it once, resume normally after.
      overflow_ = false;
      on_line_(std::string_view(), /*overflow=*/true);
    } else {
      size_t end = nl;
      if (end > start && input_[end - 1] == '\r') --end;
      const std::string_view line(input_.data() + start, end - start);
      if (line.size() > options_.max_line_bytes) {
        on_line_(std::string_view(), /*overflow=*/true);
      } else {
        on_line_(line, /*overflow=*/false);
      }
    }
    start = nl + 1;
    if (closed_.load(std::memory_order_acquire)) return;
  }
  input_.erase(0, start);
  // An unterminated line beyond the limit: discard what we have and flag,
  // so a hostile client cannot grow the input buffer without newlines.
  if (!overflow_ && input_.size() > options_.max_line_bytes) {
    overflow_ = true;
    input_.clear();
  } else if (overflow_) {
    input_.clear();
  }
}

bool Connection::Enqueue(std::string data) {
  MutexLock lock(&out_mutex_);
  if (closed_.load(std::memory_order_acquire)) return false;
  out_.append(data);
  bytes_sent_.fetch_add(data.size(), std::memory_order_relaxed);
  return true;
}

void Connection::RequestFlush() {
  auto self = shared_from_this();
  if (loop_->InLoopThread()) {
    loop_->AssertOnLoopThread();  // Claim what InLoopThread() just proved.
    FlushSome();
  } else {
    loop_->Post([self] {
      self->loop_->AssertOnLoopThread();
      if (!self->closed()) self->FlushSome();
    });
  }
}

void Connection::Send(std::string data) {
  if (!Enqueue(std::move(data))) return;
  RequestFlush();
}

bool Connection::BlockingSend(std::string data) {
  KGEVAL_CHECK(!loop_->InLoopThread())
      << "BlockingSend would deadlock the loop thread";
  {
    MutexLock lock(&out_mutex_);
    while (!closed_.load(std::memory_order_acquire) &&
           out_.size() - out_head_ > options_.high_water_bytes) {
      below_high_water_.Wait(lock);
    }
    if (closed_.load(std::memory_order_acquire)) return false;
    out_.append(data);
    bytes_sent_.fetch_add(data.size(), std::memory_order_relaxed);
  }
  RequestFlush();
  return true;
}

void Connection::FlushSome() {
  size_t pending = 0;
  {
    MutexLock lock(&out_mutex_);
    if (closed_.load(std::memory_order_acquire)) return;
    while (out_head_ < out_.size()) {
      // Fault point "net.send.eagain": the socket pretends to be full, so
      // the rest of the buffer waits for (real) write readiness — the
      // deferred-flush path a genuinely slow peer exercises.
      if (FaultPoint("net.send.eagain")) break;
      // Fault point "net.send.short_write": the kernel accepts one byte,
      // forcing the partial-progress bookkeeping through every reply byte.
      size_t chunk = out_.size() - out_head_;
      if (FaultPoint("net.send.short_write")) chunk = 1;
      // send(MSG_NOSIGNAL), not write(): a peer that vanished mid-reply
      // must surface as EPIPE here, not as a process-killing SIGPIPE —
      // the server also runs embedded in tests and benches.
      const ssize_t n =
          ::send(fd_, out_.data() + out_head_, chunk, MSG_NOSIGNAL);
      if (n > 0) {
        out_head_ += static_cast<size_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      // Broken pipe et al.: the reader is gone.
      out_.clear();
      out_head_ = 0;
      break;
    }
    if (out_head_ == out_.size()) {
      out_.clear();
      out_head_ = 0;
    } else if (out_head_ > options_.high_water_bytes) {
      // Compact occasionally so the dead prefix cannot dominate memory.
      out_.erase(0, out_head_);
      out_head_ = 0;
    }
    pending = out_.size() - out_head_;
    if (pending <= options_.low_water_bytes) {
      below_high_water_.NotifyAll();
    }
  }
  // want_write_ / paused_by_high_water_ are *loop-thread* state (read
  // lock-free by UpdateInterest/HandleReadable on the loop thread), so they
  // are written here, after out_mutex_ is dropped — writing them inside the
  // locked region above, as this function used to, gave them two competing
  // guards and no sound discipline. A BlockingSend appending between the
  // unlock and these stores only makes `pending` stale low; its own
  // RequestFlush posts another FlushSome that recomputes, exactly as with
  // the old ordering.
  want_write_ = pending > 0;
  paused_by_high_water_ = pending > options_.high_water_bytes;
  if (pending == 0 && close_when_drained_) {
    Close();
    return;
  }
  UpdateInterest();
}

void Connection::UpdateInterest() {
  if (closed_.load(std::memory_order_acquire)) return;
  uint32_t events = 0;
  if (!paused_by_server_ && !paused_by_high_water_ && !close_when_drained_) {
    events |= kEventRead;
  }
  if (want_write_) events |= kEventWrite;
  loop_->SetEvents(fd_, events);
}

void Connection::CloseWhenDrained() {
  close_when_drained_ = true;
  FlushSome();  // Close()s inline when nothing is pending.
}

void Connection::PauseReads() {
  paused_by_server_ = true;
  UpdateInterest();
}

void Connection::ResumeReads() {
  paused_by_server_ = false;
  UpdateInterest();
}

void Connection::Close() {
  if (closed_.exchange(true)) return;
  loop_->Remove(fd_);
  ::close(fd_);
  {
    // Wake BlockingSend waiters; they observe closed_ and bail.
    MutexLock lock(&out_mutex_);
    below_high_water_.NotifyAll();
  }
  if (on_close_) {
    // Moved-from first: the callback usually drops the server's owning
    // reference, which may destroy *this* on return.
    CloseFn cb = std::move(on_close_);
    on_close_ = nullptr;
    cb();
  }
}

}  // namespace kgeval

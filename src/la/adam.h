#ifndef KGEVAL_LA_ADAM_H_
#define KGEVAL_LA_ADAM_H_

#include <cstddef>
#include <vector>

#include "la/matrix.h"

namespace kgeval {

/// Hyper-parameters for Adam.
struct AdamOptions {
  float learning_rate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
};

/// Adam state for one parameter matrix with *sparse row updates*: embedding
/// training touches only a few rows per step, so moments are stored per row
/// and bias correction uses a per-row step counter (a.k.a. lazy Adam). Dense
/// parameters (e.g., ConvE filters) simply update every row each step.
class AdamState {
 public:
  AdamState(size_t rows, size_t cols, AdamOptions options);

  /// Applies one Adam update to `param`'s row `r` with gradient `grad`
  /// (length cols). Thread-safe only for disjoint rows.
  void UpdateRow(Matrix* param, size_t r, const float* grad);

  /// Dense update helper: applies UpdateRow for every row of `grads`
  /// (same shape as the parameter).
  void UpdateDense(Matrix* param, const Matrix& grads);

  const AdamOptions& options() const { return options_; }
  void set_learning_rate(float lr) { options_.learning_rate = lr; }

 private:
  AdamOptions options_;
  size_t cols_;
  Matrix m_;  // First-moment estimates.
  Matrix v_;  // Second-moment estimates.
  // Running beta powers per row (beta^t maintained incrementally instead of
  // calling pow() twice per update — the updates are hot).
  std::vector<float> beta1_pow_;
  std::vector<float> beta2_pow_;
};

}  // namespace kgeval

#endif  // KGEVAL_LA_ADAM_H_

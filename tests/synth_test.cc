#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "synth/config.h"
#include "synth/generator.h"

namespace kgeval {
namespace {

SynthConfig SmallConfig() {
  SynthConfig config;
  config.name = "unit";
  config.num_entities = 400;
  config.num_relations = 12;
  config.num_types = 10;
  config.num_train = 5000;
  config.num_valid = 400;
  config.num_test = 400;
  config.seed = 321;
  return config;
}

TEST(SynthConfigTest, DefaultsValidate) {
  EXPECT_TRUE(SynthConfig().Validate().ok());
}

TEST(SynthConfigTest, RejectsBadCounts) {
  SynthConfig config;
  config.num_entities = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(SynthConfigTest, RejectsBadCardinalityMix) {
  SynthConfig config;
  config.frac_mn = 0.9;  // Sums to 1.3 with the other defaults.
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SynthConfigTest, RejectsBadNoise) {
  SynthConfig config;
  config.noise_rate = 1.5;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(PresetTest, AllNamesResolve) {
  for (const std::string& name : PresetNames()) {
    for (PresetScale scale : {PresetScale::kScaled, PresetScale::kPaper}) {
      auto preset = GetPreset(name, scale);
      ASSERT_TRUE(preset.ok()) << name;
      EXPECT_TRUE(preset.ValueOrDie().Validate().ok()) << name;
    }
  }
}

TEST(PresetTest, UnknownNameErrors) {
  EXPECT_EQ(GetPreset("fb16k", PresetScale::kScaled).status().code(),
            StatusCode::kNotFound);
}

TEST(PresetTest, PaperScaleMatchesTable4) {
  const SynthConfig wiki =
      GetPreset("wikikg2", PresetScale::kPaper).ValueOrDie();
  EXPECT_EQ(wiki.num_entities, 2500604);
  EXPECT_EQ(wiki.num_relations, 535);
  const SynthConfig codexl =
      GetPreset("codex-l", PresetScale::kPaper).ValueOrDie();
  EXPECT_EQ(codexl.num_entities, 77951);
  EXPECT_EQ(codexl.num_relations, 69);
}

TEST(PresetTest, ScaledPreservesSizeOrdering) {
  auto entities = [](const std::string& name) {
    return GetPreset(name, PresetScale::kScaled).ValueOrDie().num_entities;
  };
  EXPECT_LT(entities("codex-s"), entities("codex-m"));
  EXPECT_LT(entities("codex-m"), entities("codex-l"));
  EXPECT_LT(entities("codex-l"), entities("wikikg2"));
}

class GeneratorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    output_ = new SynthOutput(
        GenerateDataset(SmallConfig()).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete output_;
    output_ = nullptr;
  }
  static SynthOutput* output_;
};

SynthOutput* GeneratorTest::output_ = nullptr;

TEST_F(GeneratorTest, SplitSizesMatchConfig) {
  const Dataset& d = output_->dataset;
  EXPECT_EQ(d.valid().size(), 400u);
  EXPECT_EQ(d.test().size(), 400u);
  EXPECT_EQ(d.train().size() + d.valid().size() + d.test().size(), 5800u);
}

TEST_F(GeneratorTest, IdsInRange) {
  const Dataset& d = output_->dataset;
  for (Split s : {Split::kTrain, Split::kValid, Split::kTest}) {
    for (const Triple& t : d.split(s)) {
      EXPECT_GE(t.head, 0);
      EXPECT_LT(t.head, d.num_entities());
      EXPECT_GE(t.tail, 0);
      EXPECT_LT(t.tail, d.num_entities());
      EXPECT_GE(t.relation, 0);
      EXPECT_LT(t.relation, d.num_relations());
      EXPECT_NE(t.head, t.tail);
    }
  }
}

TEST_F(GeneratorTest, NoDuplicateTriples) {
  const Dataset& d = output_->dataset;
  std::unordered_set<Triple, TripleHash> seen;
  size_t total = 0;
  for (Split s : {Split::kTrain, Split::kValid, Split::kTest}) {
    for (const Triple& t : d.split(s)) {
      seen.insert(t);
      ++total;
    }
  }
  EXPECT_EQ(seen.size(), total);
}

TEST_F(GeneratorTest, EvalEntitiesAppearInTrain) {
  // The standard KGC guarantee: every entity/relation in valid/test occurs
  // in train (otherwise embeddings would be untrained).
  const Dataset& d = output_->dataset;
  std::unordered_set<int32_t> train_entities, train_relations;
  for (const Triple& t : d.train()) {
    train_entities.insert(t.head);
    train_entities.insert(t.tail);
    train_relations.insert(t.relation);
  }
  for (Split s : {Split::kValid, Split::kTest}) {
    for (const Triple& t : d.split(s)) {
      EXPECT_TRUE(train_entities.count(t.head)) << "head " << t.head;
      EXPECT_TRUE(train_entities.count(t.tail)) << "tail " << t.tail;
      EXPECT_TRUE(train_relations.count(t.relation));
    }
  }
}

TEST_F(GeneratorTest, CardinalityConstraintsHold) {
  const Dataset& d = output_->dataset;
  for (int32_t r = 0; r < d.num_relations(); ++r) {
    const Cardinality card = output_->profiles[r].cardinality;
    std::unordered_map<int32_t, int> head_counts, tail_counts;
    for (Split s : {Split::kTrain, Split::kValid, Split::kTest}) {
      for (const Triple& t : d.split(s)) {
        if (t.relation != r) continue;
        ++head_counts[t.head];
        ++tail_counts[t.tail];
      }
    }
    if (card == Cardinality::kManyOne || card == Cardinality::kOneOne) {
      for (const auto& [head, count] : head_counts) {
        EXPECT_EQ(count, 1) << "head-unique violated for relation " << r;
      }
    }
    if (card == Cardinality::kOneMany || card == Cardinality::kOneOne) {
      for (const auto& [tail, count] : tail_counts) {
        EXPECT_EQ(count, 1) << "tail-unique violated for relation " << r;
      }
    }
  }
}

TEST_F(GeneratorTest, EveryEntityHasAPublishedType) {
  const Dataset& d = output_->dataset;
  for (int32_t e = 0; e < d.num_entities(); ++e) {
    EXPECT_FALSE(d.types().TypesOf(e).empty()) << "entity " << e;
  }
}

TEST_F(GeneratorTest, NonNoiseTriplesRespectSignatures) {
  // Every test triple that is not flagged as noise must have a head whose
  // *true* types intersect the relation's domain signature (and likewise
  // for tails).
  const Dataset& d = output_->dataset;
  std::unordered_set<int64_t> noisy(output_->noisy_test_indices.begin(),
                                    output_->noisy_test_indices.end());
  for (size_t i = 0; i < d.test().size(); ++i) {
    if (noisy.count(static_cast<int64_t>(i))) continue;
    const Triple& t = d.test()[i];
    const RelationProfile& profile = output_->profiles[t.relation];
    bool head_ok = false;
    for (int32_t type : profile.domain_types) {
      if (output_->true_types.HasType(t.head, type)) head_ok = true;
    }
    bool tail_ok = false;
    for (int32_t type : profile.range_types) {
      if (output_->true_types.HasType(t.tail, type)) tail_ok = true;
    }
    EXPECT_TRUE(head_ok) << "test triple " << i;
    EXPECT_TRUE(tail_ok) << "test triple " << i;
  }
}

TEST_F(GeneratorTest, LabelsAttached) {
  const Dataset& d = output_->dataset;
  EXPECT_EQ(d.entity_labels().size(),
            static_cast<size_t>(d.num_entities()));
  EXPECT_EQ(d.relation_labels().size(),
            static_cast<size_t>(d.num_relations()));
  EXPECT_NE(d.EntityLabel(0).find("E0"), std::string::npos);
}

TEST(GeneratorDeterminismTest, SameSeedSameData) {
  SynthConfig config = SmallConfig();
  SynthOutput a = GenerateDataset(config).ValueOrDie();
  SynthOutput b = GenerateDataset(config).ValueOrDie();
  ASSERT_EQ(a.dataset.train().size(), b.dataset.train().size());
  for (size_t i = 0; i < a.dataset.train().size(); ++i) {
    EXPECT_EQ(a.dataset.train()[i], b.dataset.train()[i]);
  }
  EXPECT_EQ(a.noisy_test_indices, b.noisy_test_indices);
}

TEST(GeneratorDeterminismTest, DifferentSeedDifferentData) {
  SynthConfig config = SmallConfig();
  SynthOutput a = GenerateDataset(config).ValueOrDie();
  config.seed = 9999;
  SynthOutput b = GenerateDataset(config).ValueOrDie();
  int differences = 0;
  const size_t n = std::min(a.dataset.train().size(),
                            b.dataset.train().size());
  for (size_t i = 0; i < n; ++i) {
    if (!(a.dataset.train()[i] == b.dataset.train()[i])) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(GeneratorNoiseTest, NoiseRateControlsFalseEasyNegatives) {
  SynthConfig clean = SmallConfig();
  clean.noise_rate = 0.0;
  const SynthOutput no_noise = GenerateDataset(clean).ValueOrDie();
  EXPECT_TRUE(no_noise.noisy_test_indices.empty());

  SynthConfig noisy = SmallConfig();
  noisy.noise_rate = 0.05;
  const SynthOutput with_noise = GenerateDataset(noisy).ValueOrDie();
  EXPECT_FALSE(with_noise.noisy_test_indices.empty());
}

TEST(GeneratorConfigTest, InvalidConfigRejected) {
  SynthConfig config = SmallConfig();
  config.num_types = 0;
  EXPECT_FALSE(GenerateDataset(config).ok());
}

}  // namespace
}  // namespace kgeval

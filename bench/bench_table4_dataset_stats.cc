// Reproduces Table 4: statistics of the datasets used in the study.
// Our numbers describe the synthetic preset standing in for each dataset
// (scaled by default; pass --paper-scale for Table 4 sizes).

#include <cstdio>

#include "bench/bench_common.h"
#include "graph/stats.h"
#include "util/string_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace kgeval;
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);

  bench::PrintHeader("Table 4: dataset statistics");
  TextTable table({"Dataset", "|E|", "|R|", "|T|", "|TS|", "Train", "Valid",
                   "Test", "(h,r)&(r,t) train", "test"});
  for (const std::string& name : PresetNames()) {
    if (!args.only_dataset.empty() && name != args.only_dataset) continue;
    const SynthOutput synth = bench::LoadPreset(name, args);
    const DatasetStats stats = ComputeDatasetStats(synth.dataset);
    table.AddRow({name, FormatWithCommas(stats.num_entities),
                  FormatWithCommas(stats.num_relations),
                  FormatWithCommas(stats.num_types),
                  FormatWithCommas(stats.num_type_assignments),
                  FormatWithCommas(stats.train_triples),
                  FormatWithCommas(stats.valid_triples),
                  FormatWithCommas(stats.test_triples),
                  FormatWithCommas(stats.train_hr_rt_pairs),
                  FormatWithCommas(stats.test_hr_rt_pairs)});
  }
  std::printf("%s", table.ToString().c_str());
  bench::PrintNote(
      "synthetic presets mirror the paper's Table 4 shapes; run with "
      "--paper-scale to generate at the published sizes");
  return 0;
}

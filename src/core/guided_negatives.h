#ifndef KGEVAL_CORE_GUIDED_NEGATIVES_H_
#define KGEVAL_CORE_GUIDED_NEGATIVES_H_

#include "core/candidate_sets.h"
#include "models/trainer.h"

namespace kgeval {

/// Builds a training-time negative sampler from relation-recommender
/// candidate sets — the Section 7 future-work extension ("relation
/// recommenders as negative sample probabilities during training").
///
/// With probability `guided_rate` the corruption is drawn from the
/// corrupted slot's candidate set (weighted by the recommender scores when
/// the sets carry weights, uniformly otherwise), producing *hard* negatives;
/// the remainder falls back to the trainer's uniform draw (return -1).
///
/// The returned closure holds a reference to `sets`: it must outlive the
/// training run.
NegativeSamplerFn MakeGuidedNegativeSampler(const CandidateSets* sets,
                                            double guided_rate);

}  // namespace kgeval

#endif  // KGEVAL_CORE_GUIDED_NEGATIVES_H_

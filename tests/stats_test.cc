#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "stats/correlation.h"
#include "stats/hypergeometric.h"
#include "stats/sampling.h"
#include "util/rng.h"

namespace kgeval {
namespace {

// --- Correlations -----------------------------------------------------------

TEST(PearsonTest, PerfectPositive) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectNegative) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {3, 2, 1}), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantSeriesGivesZero) {
  EXPECT_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(PearsonTest, InvariantToAffineTransform) {
  const std::vector<double> x = {0.3, 1.7, 2.2, 5.0, 3.3};
  const std::vector<double> y = {1.0, 0.7, 2.5, 4.0, 2.9};
  std::vector<double> y_scaled;
  for (double v : y) y_scaled.push_back(3.0 * v - 7.0);
  EXPECT_NEAR(PearsonCorrelation(x, y), PearsonCorrelation(x, y_scaled),
              1e-12);
}

TEST(SpearmanTest, MonotoneNonlinearIsOne) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {1, 8, 27, 64, 125};
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(KendallTauTest, PerfectAgreement) {
  EXPECT_NEAR(KendallTau({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0, 1e-12);
}

TEST(KendallTauTest, PerfectDisagreement) {
  EXPECT_NEAR(KendallTau({1, 2, 3, 4}, {4, 3, 2, 1}), -1.0, 1e-12);
}

TEST(KendallTauTest, SingleSwap) {
  // One discordant pair among 6: tau = (5 - 1) / 6.
  EXPECT_NEAR(KendallTau({1, 2, 3, 4}, {2, 1, 3, 4}), 4.0 / 6.0, 1e-12);
}

TEST(KendallTauTest, HandlesTies) {
  const double tau = KendallTau({1, 1, 2, 3}, {1, 2, 3, 4});
  EXPECT_GT(tau, 0.0);
  EXPECT_LE(tau, 1.0);
}

TEST(KendallTauTest, AllTiedGivesZero) {
  EXPECT_EQ(KendallTau({5, 5, 5}, {1, 2, 3}), 0.0);
}

TEST(AverageRanksTest, TiesShareMeanRank) {
  const std::vector<double> ranks = AverageRanks({10, 20, 20, 30});
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(ErrorMetricsTest, MaeBasic) {
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({1, 2, 3}, {1, 1, 5}), (0 + 1 + 2) / 3.0);
}

TEST(ErrorMetricsTest, MapeSkipsZeroTruth) {
  // Only the second entry counts: |2-4|/4 = 0.5 -> 50%.
  EXPECT_DOUBLE_EQ(MeanAbsolutePercentageError({1, 2}, {0, 4}), 50.0);
}

TEST(ErrorMetricsTest, MapePerfectIsZero) {
  EXPECT_DOUBLE_EQ(MeanAbsolutePercentageError({3, 4}, {3, 4}), 0.0);
}

TEST(DescriptiveTest, MeanAndStd) {
  EXPECT_DOUBLE_EQ(Mean({2, 4, 6}), 4.0);
  EXPECT_NEAR(StdDev({2, 4, 6}), 2.0, 1e-12);
  EXPECT_EQ(StdDev({5}), 0.0);
}

TEST(DescriptiveTest, Ci95ShrinksWithN) {
  std::vector<double> small = {1, 2, 3, 4};
  std::vector<double> large;
  for (int i = 0; i < 16; ++i) large.insert(large.end(), small.begin(),
                                            small.end());
  EXPECT_GT(NormalCi95HalfWidth(small), NormalCi95HalfWidth(large));
}

// --- Uniform sampling without replacement ------------------------------------

TEST(FloydSamplingTest, DistinctAndInRange) {
  Rng rng(3);
  const auto sample = SampleWithoutReplacement(1000, 100, &rng);
  EXPECT_EQ(sample.size(), 100u);
  std::set<int32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 100u);
  for (int32_t v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 1000);
  }
}

TEST(FloydSamplingTest, KGreaterThanNReturnsAll) {
  Rng rng(4);
  const auto sample = SampleWithoutReplacement(10, 50, &rng);
  EXPECT_EQ(sample.size(), 10u);
}

TEST(FloydSamplingTest, ApproximatelyUniform) {
  Rng rng(5);
  std::vector<int> counts(20, 0);
  for (int trial = 0; trial < 4000; ++trial) {
    for (int32_t v : SampleWithoutReplacement(20, 5, &rng)) ++counts[v];
  }
  // Each element expected 4000 * 5/20 = 1000 times.
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(SampleFromTest, DrawsFromPopulation) {
  Rng rng(6);
  const std::vector<int32_t> population = {5, 9, 12, 40, 77};
  const auto sample = SampleFrom(population, 3, &rng);
  EXPECT_EQ(sample.size(), 3u);
  for (int32_t v : sample) {
    EXPECT_TRUE(std::find(population.begin(), population.end(), v) !=
                population.end());
  }
}

TEST(SampleFromTest, WholePopulationWhenKTooLarge) {
  Rng rng(7);
  const std::vector<int32_t> population = {1, 2, 3};
  EXPECT_EQ(SampleFrom(population, 10, &rng), population);
}

// --- Weighted sampling --------------------------------------------------------

TEST(WeightedSamplingTest, ZeroWeightNeverDrawn) {
  Rng rng(8);
  const std::vector<int32_t> items = {0, 1, 2, 3};
  const std::vector<float> weights = {1.0f, 0.0f, 1.0f, 0.0f};
  for (int trial = 0; trial < 200; ++trial) {
    for (int32_t v : WeightedSampleWithoutReplacement(items, weights, 2,
                                                      &rng)) {
      EXPECT_TRUE(v == 0 || v == 2);
    }
  }
}

TEST(WeightedSamplingTest, ReturnsAllPositiveWhenKLarge) {
  Rng rng(9);
  const std::vector<int32_t> items = {10, 11, 12, 13};
  const std::vector<float> weights = {1.0f, 0.5f, 0.0f, 2.0f};
  auto sample = WeightedSampleWithoutReplacement(items, weights, 10, &rng);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<int32_t>{10, 11, 13}));
}

TEST(WeightedSamplingTest, HigherWeightDrawnMoreOften) {
  Rng rng(10);
  const std::vector<int32_t> items = {0, 1};
  const std::vector<float> weights = {10.0f, 1.0f};
  int heavy = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const auto sample =
        WeightedSampleWithoutReplacement(items, weights, 1, &rng);
    if (sample[0] == 0) ++heavy;
  }
  EXPECT_GT(heavy, 1400);
}

TEST(WeightedSamplingTest, NoDuplicates) {
  Rng rng(11);
  std::vector<int32_t> items(50);
  std::vector<float> weights(50, 1.0f);
  for (int i = 0; i < 50; ++i) items[i] = i;
  const auto sample =
      WeightedSampleWithoutReplacement(items, weights, 20, &rng);
  std::set<int32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), sample.size());
}

// --- Hypergeometric / Theorem 1 -----------------------------------------------

TEST(HypergeometricTest, MeanFormula) {
  Hypergeometric h(30, 100, 10);
  EXPECT_DOUBLE_EQ(h.Mean(), 3.0);
}

TEST(HypergeometricTest, PmfSumsToOne) {
  Hypergeometric h(12, 40, 15);
  double total = 0.0;
  for (int64_t k = 0; k <= 15; ++k) total += h.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(HypergeometricTest, PmfZeroOutsideSupport) {
  Hypergeometric h(5, 10, 8);
  // At least 3 successes must be drawn (8 draws, only 5 failures exist).
  EXPECT_EQ(h.Pmf(2), 0.0);
  EXPECT_EQ(h.Pmf(6), h.Pmf(6));  // In support.
  EXPECT_EQ(h.Pmf(9), 0.0);
}

TEST(HypergeometricTest, SampleMatchesMean) {
  Hypergeometric h(20, 80, 16);
  Rng rng(12);
  double total = 0.0;
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) total += h.Sample(&rng);
  EXPECT_NEAR(total / trials, h.Mean(), 0.1);
}

TEST(HypergeometricTest, VarianceMatchesEmpirical) {
  Hypergeometric h(25, 100, 20);
  Rng rng(13);
  std::vector<double> draws;
  for (int i = 0; i < 8000; ++i) {
    draws.push_back(static_cast<double>(h.Sample(&rng)));
  }
  const double sd = StdDev(draws);
  EXPECT_NEAR(sd * sd, h.Variance(), 0.3);
}

TEST(Equation1Test, ExpectationVanishesAsSampleShrinks) {
  // lim_{n_s -> 0} E[X_u] = 0: smaller samples observe fewer of the
  // entities that outrank the truth -> optimistic metrics.
  const double e_large = ExpectedHigherRanked(50, 10000, 5000);
  const double e_small = ExpectedHigherRanked(50, 10000, 100);
  const double e_tiny = ExpectedHigherRanked(50, 10000, 1);
  EXPECT_GT(e_large, e_small);
  EXPECT_GT(e_small, e_tiny);
  EXPECT_NEAR(e_tiny, 50.0 / 10000.0, 1e-12);
}

TEST(Equation1Test, FullSampleRecoversTruth) {
  EXPECT_DOUBLE_EQ(ExpectedHigherRanked(37, 5000, 5000), 37.0);
}

// Theorem 1: sampling from the range set is never worse in expectation,
// across a parameter sweep.
struct Theorem1Case {
  int64_t higher;
  int64_t num_entities;
  int64_t range_size;
  int64_t n_s;
};

class Theorem1Test : public ::testing::TestWithParam<Theorem1Case> {};

TEST_P(Theorem1Test, ExpectedGainNonNegative) {
  const Theorem1Case& c = GetParam();
  EXPECT_GE(Theorem1ExpectedGain(c.higher, c.num_entities, c.range_size,
                                 c.n_s),
            -1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Theorem1Test,
    ::testing::Values(Theorem1Case{10, 1000, 100, 50},
                      Theorem1Case{10, 1000, 100, 200},
                      Theorem1Case{10, 1000, 1000, 500},
                      Theorem1Case{0, 1000, 50, 25},
                      Theorem1Case{5, 100, 5, 1},
                      Theorem1Case{5, 100, 5, 100},
                      Theorem1Case{99, 100, 99, 99},
                      Theorem1Case{1, 1000000, 20, 10}));

TEST(Theorem1Test, MonteCarloAgreesWithClosedForm) {
  // Empirically verify E[X_RS] - E[X_u] with hypergeometric draws.
  const int64_t higher = 12, entities = 400, range = 60, n_s = 30;
  Rng rng(77);
  Hypergeometric uniform(higher, entities, n_s);
  Hypergeometric ranged(higher, range, std::min(n_s, range));
  double acc = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    acc += static_cast<double>(ranged.Sample(&rng) - uniform.Sample(&rng));
  }
  EXPECT_NEAR(acc / trials,
              Theorem1ExpectedGain(higher, entities, range, n_s), 0.1);
}

}  // namespace
}  // namespace kgeval

#include "graph/io.h"

#include <fstream>
#include <unordered_map>

#include "util/string_util.h"

namespace kgeval {
namespace {

/// String -> dense id vocabulary, insertion-ordered.
class Vocab {
 public:
  int32_t GetOrAdd(const std::string& label) {
    auto [it, inserted] =
        index_.emplace(label, static_cast<int32_t>(labels_.size()));
    if (inserted) labels_.push_back(label);
    return it->second;
  }

  int32_t size() const { return static_cast<int32_t>(labels_.size()); }
  std::vector<std::string> TakeLabels() { return std::move(labels_); }

 private:
  std::unordered_map<std::string, int32_t> index_;
  std::vector<std::string> labels_;
};

/// Reads one split file. `arity` is the dataset-wide column count: 0 means
/// undecided (locked by the first data line seen across all splits), after
/// which every line of every split must match — a 3-column line in a
/// 4-column dataset (or vice versa) fails loudly with its file:line rather
/// than silently misparsing a timestamp as an entity.
Status ReadTriples(const std::string& path, bool required, Vocab* entities,
                   Vocab* relations, Vocab* timestamps, int* arity,
                   std::vector<Triple>* out) {
  std::ifstream in(path);
  if (!in.is_open()) {
    if (required) {
      return Status::IoError(StrFormat("cannot open %s", path.c_str()));
    }
    return Status::OK();
  }
  std::string line;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitString(line, '\t');
    if (fields.size() != 3 && fields.size() != 4) {
      return Status::InvalidArgument(
          StrFormat("%s:%lld: expected 3 or 4 tab-separated fields, got %zu",
                    path.c_str(), static_cast<long long>(line_number),
                    fields.size()));
    }
    if (*arity == 0) *arity = static_cast<int>(fields.size());
    if (static_cast<int>(fields.size()) != *arity) {
      return Status::InvalidArgument(StrFormat(
          "%s:%lld: mixed arity: dataset uses %d-column lines but this "
          "line has %zu fields",
          path.c_str(), static_cast<long long>(line_number), *arity,
          fields.size()));
    }
    Triple t{entities->GetOrAdd(fields[0]), relations->GetOrAdd(fields[1]),
             entities->GetOrAdd(fields[2])};
    if (fields.size() == 4) t.time = timestamps->GetOrAdd(fields[3]);
    out->push_back(t);
  }
  return Status::OK();
}

}  // namespace

Result<Dataset> LoadDatasetFromTsv(const std::string& dir,
                                   const std::string& name) {
  Vocab entities, relations, timestamps, types;
  std::vector<Triple> train, valid, test;
  int arity = 0;
  KGEVAL_RETURN_NOT_OK(ReadTriples(dir + "/train.txt", /*required=*/true,
                                   &entities, &relations, &timestamps, &arity,
                                   &train));
  KGEVAL_RETURN_NOT_OK(ReadTriples(dir + "/valid.txt", /*required=*/false,
                                   &entities, &relations, &timestamps, &arity,
                                   &valid));
  KGEVAL_RETURN_NOT_OK(ReadTriples(dir + "/test.txt", /*required=*/false,
                                   &entities, &relations, &timestamps, &arity,
                                   &test));

  // Optional entity types.
  std::vector<std::pair<int32_t, int32_t>> assignments;
  {
    std::ifstream in(dir + "/types.txt");
    if (in.is_open()) {
      std::string line;
      int64_t line_number = 0;
      while (std::getline(in, line)) {
        ++line_number;
        if (line.empty()) continue;
        const std::vector<std::string> fields = SplitString(line, '\t');
        if (fields.size() != 2) {
          return Status::InvalidArgument(StrFormat(
              "%s/types.txt:%lld: expected 2 fields", dir.c_str(),
              static_cast<long long>(line_number)));
        }
        assignments.emplace_back(entities.GetOrAdd(fields[0]),
                                 types.GetOrAdd(fields[1]));
      }
    }
  }
  TypeStore store(entities.size(), types.size());
  for (const auto& [entity, type] : assignments) store.Assign(entity, type);
  store.Seal();

  Dataset dataset(name, entities.size(), relations.size(), timestamps.size(),
                  std::move(train), std::move(valid), std::move(test),
                  std::move(store));
  dataset.set_entity_labels(entities.TakeLabels());
  dataset.set_relation_labels(relations.TakeLabels());
  dataset.set_timestamp_labels(timestamps.TakeLabels());
  return dataset;
}

Status SaveDatasetToTsv(const Dataset& dataset, const std::string& dir) {
  auto write_split = [&](const std::string& file,
                         const std::vector<Triple>& triples) -> Status {
    if (triples.empty() && file != "train.txt") return Status::OK();
    const std::string path = dir + "/" + file;
    std::ofstream out(path);
    if (!out.is_open()) {
      return Status::IoError(StrFormat("cannot write %s", path.c_str()));
    }
    for (const Triple& t : triples) {
      out << dataset.EntityLabel(t.head) << '\t'
          << dataset.RelationLabel(t.relation) << '\t'
          << dataset.EntityLabel(t.tail);
      if (dataset.has_timestamps()) {
        out << '\t' << dataset.TimestampLabel(t.time);
      }
      out << '\n';
    }
    return Status::OK();
  };
  KGEVAL_RETURN_NOT_OK(write_split("train.txt", dataset.train()));
  KGEVAL_RETURN_NOT_OK(write_split("valid.txt", dataset.valid()));
  KGEVAL_RETURN_NOT_OK(write_split("test.txt", dataset.test()));
  if (dataset.has_types()) {
    const std::string path = dir + "/types.txt";
    std::ofstream out(path);
    if (!out.is_open()) {
      return Status::IoError(StrFormat("cannot write %s", path.c_str()));
    }
    for (int32_t e = 0; e < dataset.num_entities(); ++e) {
      for (int32_t type : dataset.types().TypesOf(e)) {
        out << dataset.EntityLabel(e) << '\t' << "type" << type << '\n';
      }
    }
  }
  return Status::OK();
}

}  // namespace kgeval

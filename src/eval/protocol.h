#ifndef KGEVAL_EVAL_PROTOCOL_H_
#define KGEVAL_EVAL_PROTOCOL_H_

#include <cstdint>
#include <vector>

#include "eval/slot_blocks.h"
#include "graph/dataset.h"
#include "graph/triple.h"

namespace kgeval {

/// A slot-contiguous evaluation schedule built by a protocol: `blocks`
/// point into `buckets`, whose inner vectors must stay put — the struct is
/// movable (vector moves steal the outer buffer, leaving the inner vector
/// objects in place) but must not be copied while the blocks are in use.
struct EvalSchedule {
  /// Query-triple indices bucketed by protocol group.
  std::vector<std::vector<int32_t>> buckets;
  /// Kernel-homogeneous blocks over the buckets, ordered so that blocks
  /// sharing a pool slot are contiguous (the prepared-tile reuse contract
  /// of ScoreSlotBlocks and PartitionAtSlotBoundaries).
  std::vector<SlotBlock> blocks;
};

/// An evaluation protocol owns the three decisions the evaluators used to
/// hard-code: how a split's triples become ranking queries (grouping and
/// schedule), which candidate pool each query ranks against, and which
/// known-true answers are filtered out of that ranking. The scoring
/// machinery — sampled pools, prepared tiles, fused kernels, adaptive
/// rounds and their confidence intervals — is protocol-agnostic and runs
/// unchanged over any implementation.
///
/// Queries are partitioned into *groups*: every query of a group shares a
/// dataset relation and, for time-aware protocols, a timestamp, so one
/// batched kernel call (whose kernel relation id the *model* derives from
/// any triple of the block via KgeModel::KernelRelation) serves a whole
/// block. Candidate pools stay keyed by (relation, direction) — 2|R| slots
/// — for every protocol: corruption pools are drawn from relation
/// domains/ranges regardless of how the filter slices time.
class EvalProtocol {
 public:
  virtual ~EvalProtocol() = default;

  EvalProtocol(const EvalProtocol&) = delete;
  EvalProtocol& operator=(const EvalProtocol&) = delete;

  /// Stable protocol name, as accepted by the service's EVAL command.
  virtual const char* name() const = 0;

  int32_t num_relations() const { return num_relations_; }

  /// Number of query groups (static: |R|; temporal: |R| * |T|).
  virtual int32_t num_groups() const = 0;

  /// The group of both queries derived from `triple`.
  virtual int32_t GroupOf(const Triple& triple) const = 0;

  /// The candidate pool slot (index into SampledCandidates.pools) ranked by
  /// a `direction` query of group `group`.
  virtual int32_t PoolSlotOf(int32_t group, QueryDirection direction) const = 0;

  /// Pool slot for a concrete query — always the static domain/range slot
  /// of the triple's relation, for every protocol.
  int32_t PoolSlotFor(const Triple& triple, QueryDirection direction) const {
    return DomainRangeIndex(triple.relation, direction, num_relations_);
  }

  /// Known true answers filtered out of the query's ranking (must contain
  /// the query's own truth). Never nullptr for queries derived from the
  /// protocol's dataset.
  virtual const std::vector<int32_t>* Answers(
      const Triple& triple, QueryDirection direction) const = 0;

  /// Builds the slot-contiguous schedule over the first `num_triples`
  /// triples, with at most `query_block` queries per block.
  virtual EvalSchedule BuildSchedule(const std::vector<Triple>& triples,
                                     int64_t num_triples,
                                     size_t query_block) const = 0;

 protected:
  explicit EvalProtocol(int32_t num_relations)
      : num_relations_(num_relations) {}

  /// Buckets the evaluated prefix by GroupOf. Shared by schedule builders.
  std::vector<std::vector<int32_t>> GroupQueries(
      const std::vector<Triple>& triples, int64_t num_triples) const;

 private:
  int32_t num_relations_;
};

/// The repo's established evaluation semantics, verbatim: one group per
/// relation, pools at the relation's domain/range slots, and the static
/// filtered-ranking rule — any known (h, r, t) fact, from any split and
/// whenever it held, is removed from the candidate list. Results are
/// bit-identical rank-for-rank to the pre-protocol evaluators (pinned by
/// tests/protocol_test.cc).
class StaticFilteredProtocol : public EvalProtocol {
 public:
  /// Borrows `filter`, which must outlive the protocol.
  StaticFilteredProtocol(int32_t num_relations, const FilterIndex* filter)
      : EvalProtocol(num_relations), filter_(filter) {}
  StaticFilteredProtocol(const Dataset& dataset, const FilterIndex* filter)
      : StaticFilteredProtocol(dataset.num_relations(), filter) {}

  const char* name() const override { return "static"; }
  int32_t num_groups() const override { return num_relations(); }
  int32_t GroupOf(const Triple& triple) const override {
    return triple.relation;
  }
  int32_t PoolSlotOf(int32_t group, QueryDirection direction) const override {
    return DomainRangeIndex(group, direction, num_relations());
  }
  const std::vector<int32_t>* Answers(
      const Triple& triple, QueryDirection direction) const override {
    return filter_->AnswersFor(triple, direction);
  }
  EvalSchedule BuildSchedule(const std::vector<Triple>& triples,
                             int64_t num_triples,
                             size_t query_block) const override;

 private:
  const FilterIndex* filter_;
};

/// Temporal KBC evaluation (Lacroix et al.): queries carry their triple's
/// timestamp, and only facts true *at that timestamp* are filtered — a
/// corruption that is a fact at another time keeps its place in the
/// ranking. Groups are (relation, timestamp) pairs so blocks stay
/// kernel-homogeneous for time-aware models (which fold the timestamp into
/// a virtual kernel relation id); candidate pools remain the 2|R| static
/// domain/range slots, so pool drawing, validation, and the estimators run
/// unchanged. Time-ignorant models evaluate fine under this protocol —
/// they just cannot use the timestamp to score.
class TemporalFilteredProtocol : public EvalProtocol {
 public:
  /// Borrows `filter`, which must outlive the protocol. A static dataset
  /// (num_timestamps 0) degenerates to one timestamp and static semantics.
  TemporalFilteredProtocol(const Dataset& dataset,
                           const TemporalFilterIndex* filter);

  const char* name() const override { return "temporal"; }
  int32_t num_timestamps() const { return num_timestamps_; }
  int32_t num_groups() const override {
    return num_relations() * num_timestamps_;
  }
  /// Groups are relation-major (g = r * |T| + tau): ascending group order
  /// keeps a relation's timestamps adjacent, which BuildSchedule turns into
  /// pool-slot-contiguous block runs.
  int32_t GroupOf(const Triple& triple) const override {
    return triple.relation * num_timestamps_ + triple.time;
  }
  int32_t PoolSlotOf(int32_t group, QueryDirection direction) const override {
    return DomainRangeIndex(group / num_timestamps_, direction,
                            num_relations());
  }
  const std::vector<int32_t>* Answers(
      const Triple& triple, QueryDirection direction) const override {
    return filter_->AnswersFor(triple, direction);
  }
  EvalSchedule BuildSchedule(const std::vector<Triple>& triples,
                             int64_t num_triples,
                             size_t query_block) const override;

 private:
  const TemporalFilterIndex* filter_;
  int32_t num_timestamps_;
};

}  // namespace kgeval

#endif  // KGEVAL_EVAL_PROTOCOL_H_

#ifndef KGEVAL_NET_EVENT_LOOP_H_
#define KGEVAL_NET_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace kgeval {

/// Readiness interest of a registered fd, OR-able.
enum : uint32_t {
  kEventRead = 1u << 0,
  kEventWrite = 1u << 1,
  /// Peer hangup / socket error. Not subscribable — the poller reports it
  /// unconditionally and the loop always delivers it, even to an fd whose
  /// interest set is empty. That is what lets a connection paused by flow
  /// control (no read interest) still notice a vanished peer instead of
  /// sitting parked forever; read/write readiness is never delivered
  /// unsubscribed.
  kEventHangup = 1u << 2,
};

/// A single-threaded readiness event loop over non-blocking fds: epoll on
/// Linux, poll(2) everywhere else (KGEVAL_FORCE_POLL selects the fallback on
/// Linux too, so both backends are testable on one machine). All fd
/// registration and every callback run on the loop thread; the only
/// cross-thread entry point is Post(), which enqueues a closure and wakes
/// the loop through its wakeup pipe — this is how job threads hand finished
/// command responses back to the connection they belong to.
///
/// The loop never blocks on anything but the poller: callbacks that would
/// block (evaluation, disk I/O) belong on job threads, with Post() carrying
/// their results home.
class EventLoop {
 public:
  using FdCallback = std::function<void(uint32_t ready_events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` with the given interest; `callback(ready)` fires from
  /// Run() whenever the fd is ready. One registration per fd.
  void Add(int fd, uint32_t events, FdCallback callback);
  /// Replaces the interest set of a registered fd.
  void SetEvents(int fd, uint32_t events);
  /// Deregisters `fd`. Safe to call from inside its own callback; the fd is
  /// not closed (ownership stays with the caller).
  void Remove(int fd);

  /// Runs callbacks until Stop(). Must be called from exactly one thread,
  /// which becomes the loop thread.
  void Run();
  /// Makes Run() return after the current iteration. Thread-safe.
  void Stop();

  /// Enqueues `task` to run on the loop thread and wakes the loop.
  /// Thread-safe; the only EventLoop method job threads may call (besides
  /// Stop). Tasks run in post order, after fd callbacks of the iteration.
  void Post(std::function<void()> task);

  /// Arms a one-shot monotonic timer: `fn` runs on the loop thread at (or
  /// just after) now + delay_s, after the iteration's fd callbacks. Like
  /// Add(), loop-thread only (or before Run() starts) — other threads
  /// Post() a closure that arms it. Returns an id for CancelTimer; ids are
  /// never reused. Timers drive the service's per-command deadlines and
  /// idle-connection reaping.
  uint64_t RunAfter(double delay_s, std::function<void()> fn);
  /// Cancels a pending timer. A no-op for a timer that already fired (or
  /// an unknown id), so completion paths can cancel unconditionally.
  void CancelTimer(uint64_t id);

  /// True iff the calling thread is inside Run(). Lets shared helpers
  /// assert they are (or are not) on the loop thread.
  bool InLoopThread() const;

 private:
  struct Registration {
    uint32_t events = 0;
    /// Distinguishes this registration from an earlier one on the same fd
    /// number: within one poll batch a callback may Remove()+close an fd
    /// while another callback accepts a new connection that reuses it, and
    /// a stale ready[] entry must not be dispatched to the newcomer.
    uint32_t generation = 0;
    FdCallback callback;
  };

  /// Polls once with `timeout_ms` and dispatches ready callbacks.
  void PollOnce(int timeout_ms);
  void RunPosted();
  void Wakeup();
  /// Poll timeout shrunk to the earliest pending timer, in [0, cap_ms].
  int NextTimeoutMs(int cap_ms) const;
  /// Runs (and removes) every timer whose deadline has passed.
  void FireDueTimers();

  std::unordered_map<int, Registration> fds_;
  uint32_t next_generation_ = 0;
  /// Pending timers, ordered by (deadline, id): steady_clock so a wall
  /// clock step never fires (or starves) a deadline. Loop thread only.
  std::map<std::pair<std::chrono::steady_clock::time_point, uint64_t>,
           std::function<void()>>
      timers_;
  uint64_t next_timer_id_ = 0;
  int wakeup_read_ = -1;
  int wakeup_write_ = -1;
#if defined(__linux__) && !defined(KGEVAL_FORCE_POLL)
  int epoll_fd_ = -1;
#endif

  std::mutex posted_mutex_;
  std::vector<std::function<void()>> posted_;
  bool stop_ = false;  // Loop thread only.
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::thread::id> loop_thread_{};
};

}  // namespace kgeval

#endif  // KGEVAL_NET_EVENT_LOOP_H_

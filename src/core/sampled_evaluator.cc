#include "core/sampled_evaluator.h"

#include <algorithm>
#include <atomic>

#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace kgeval {

SampledEvalResult EvaluateSampled(const KgeModel& model,
                                  const Dataset& dataset,
                                  const FilterIndex& filter, Split split,
                                  const SampledCandidates& candidates,
                                  const SampledEvalOptions& options) {
  WallTimer timer;
  const std::vector<Triple>& triples = dataset.split(split);
  int64_t num_triples = static_cast<int64_t>(triples.size());
  if (options.max_triples > 0) {
    num_triples = std::min(num_triples, options.max_triples);
  }
  const int32_t num_r = dataset.num_relations();

  SampledEvalResult result;
  result.sample_seconds = candidates.sample_seconds;
  result.ranks.assign(static_cast<size_t>(num_triples) * 2, 0.0);
  std::atomic<int64_t> scored{0};

  ParallelFor(
      0, static_cast<size_t>(num_triples),
      [&](size_t lo, size_t hi) {
        std::vector<float> scores;
        int64_t local_scored = 0;
        for (size_t i = lo; i < hi; ++i) {
          const Triple& triple = triples[i];
          for (QueryDirection dir :
               {QueryDirection::kTail, QueryDirection::kHead}) {
            const bool tail_dir = dir == QueryDirection::kTail;
            const int32_t anchor = tail_dir ? triple.head : triple.tail;
            const int32_t truth = tail_dir ? triple.tail : triple.head;
            const int32_t slot =
                tail_dir ? triple.relation + num_r : triple.relation;
            const std::vector<int32_t>& pool = candidates.pools[slot];
            scores.resize(pool.size() + 1);
            // Score the pool plus the true answer in one model call.
            model.ScoreCandidates(anchor, triple.relation, dir, pool.data(),
                                  pool.size(), scores.data());
            model.ScoreCandidates(anchor, triple.relation, dir, &truth, 1,
                                  scores.data() + pool.size());
            local_scored += static_cast<int64_t>(pool.size()) + 1;
            const std::vector<int32_t>* answers =
                filter.AnswersFor(triple, dir);
            KGEVAL_CHECK(answers != nullptr);
            const double rank = FilteredRank(
                pool.data(), scores.data(), pool.size(), truth,
                scores[pool.size()], *answers, options.tie);
            result.ranks[i * 2 + (tail_dir ? 0 : 1)] = rank;
          }
        }
        scored.fetch_add(local_scored, std::memory_order_relaxed);
      },
      /*min_chunk=*/8);

  result.scored_candidates = scored.load();
  result.metrics = RankingMetrics::FromRanks(result.ranks);
  result.eval_seconds = timer.Seconds();
  return result;
}

}  // namespace kgeval

#ifndef KGEVAL_EVAL_FULL_EVALUATOR_H_
#define KGEVAL_EVAL_FULL_EVALUATOR_H_

#include <vector>

#include "eval/metrics.h"
#include "eval/protocol.h"
#include "eval/screen.h"
#include "graph/dataset.h"
#include "models/kge_model.h"

namespace kgeval {

/// Options for the exhaustive filtered-ranking evaluation (the O(|E|^2)
/// procedure whose cost the paper's framework avoids).
struct FullEvalOptions {
  TieBreak tie = TieBreak::kMean;
  /// Cap on evaluated triples (0 = all). Deterministic prefix of the split;
  /// used by benches to bound the cost of the ground-truth computation.
  int64_t max_triples = 0;
  /// Entities per candidate tile. Each tile is prepared (gathered +
  /// transposed) once per evaluation and reused by every slot block; one
  /// score block is 16 x entity_tile floats. Small values force multi-tile
  /// sweeps (used by tests); ranks are identical for any tile size.
  size_t entity_tile = 32768;
  /// Quantized screening of the entity sweep (eval/screen.h): each tile
  /// gets an int8 sidecar; per block, tiles whose envelope score bound
  /// falls strictly below every query's truth score are skipped outright
  /// (truth-threshold early termination), surviving tiles are swept with
  /// the int8 kernel, and only each query's band is re-scored exactly.
  /// Ranks stay bit-identical to the unscreened sweep. Models without a
  /// kernel surface ignore the flag.
  bool screening = false;
};

/// Result of a full evaluation: aggregated metrics plus per-query ranks
/// (two per triple: tail query first, then head query).
struct FullEvalResult {
  RankingMetrics metrics;
  std::vector<double> ranks;
  /// Screening work counters (zero when FullEvalOptions::screening was off
  /// or the model has no kernel surface), tiles_skipped included.
  ScreenStats screen;
};

/// Ranks every entity for every (h,r,?) and (?,r,t) query of `split`,
/// with the protocol supplying the filtered answer sets (and, through its
/// schedule grouping, the kernel relation homogeneity time-aware models
/// need). Multi-threaded.
FullEvalResult EvaluateFullRanking(const KgeModel& model,
                                   const Dataset& dataset,
                                   const EvalProtocol& protocol, Split split,
                                   const FullEvalOptions& options = {});

/// Static-protocol convenience: filters known true answers
/// (train+valid+test) regardless of timestamp; bit-identical to the
/// pre-protocol evaluator.
FullEvalResult EvaluateFullRanking(const KgeModel& model,
                                   const Dataset& dataset,
                                   const FilterIndex& filter, Split split,
                                   const FullEvalOptions& options = {});

/// Rank of the true answer within a scored candidate array, with the
/// filtered candidates removed: `answers` is the sorted list of known true
/// answers for the query (must contain `truth`). `scores[i]` corresponds to
/// `candidates[i]`; candidates may contain duplicates of `truth` (skipped).
/// Fastest when `candidates` is sorted (one vectorized sweep plus binary
/// searches over `answers`, the layout candidate pools arrive in); unsorted
/// arrays stay correct. `candidates_sorted` states whether the array is
/// non-decreasing — pool sortedness is a SampledCandidates invariant, so
/// callers compute it once per pool (PrepareCandidates records it) instead
/// of paying an O(n) sweep per query.
double FilteredRank(const int32_t* candidates, const float* scores, size_t n,
                    int32_t truth, float truth_score,
                    const std::vector<int32_t>& answers, TieBreak tie,
                    bool candidates_sorted);

}  // namespace kgeval

#endif  // KGEVAL_EVAL_FULL_EVALUATOR_H_

#include "core/sampled_evaluator.h"

#include <algorithm>
#include <atomic>

#include "eval/slot_blocks.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace kgeval {
namespace {

/// Queries scored per ScoreBatch call. Bounds the qb x |pool| score block
/// (256 x n_s floats) while amortizing the per-block candidate gather — the
/// one per-call cost that doesn't scale with queries — down to noise.
constexpr size_t kQueryBlock = 256;

}  // namespace

SampledEvalResult EvaluateSampled(const KgeModel& model,
                                  const Dataset& dataset,
                                  const FilterIndex& filter, Split split,
                                  const SampledCandidates& candidates,
                                  const SampledEvalOptions& options) {
  WallTimer timer;
  const std::vector<Triple>& triples = dataset.split(split);
  int64_t num_triples = static_cast<int64_t>(triples.size());
  if (options.max_triples > 0) {
    num_triples = std::min(num_triples, options.max_triples);
  }
  const int32_t num_r = dataset.num_relations();

  SampledEvalResult result;
  result.sample_seconds = candidates.sample_seconds;
  result.ranks.assign(static_cast<size_t>(num_triples) * 2, 0.0);
  std::atomic<int64_t> scored{0};

  // Slot-major order: every query block shares one (relation, direction)
  // candidate pool, so the model gathers the pool's embeddings once and
  // scores the whole block in a single batched kernel call.
  const std::vector<std::vector<int32_t>> by_relation =
      GroupByRelation(triples, num_triples, num_r);
  const std::vector<SlotBlock> blocks =
      BuildSlotBlocks(by_relation, kQueryBlock);

  ParallelFor(
      0, blocks.size(),
      [&](size_t block_lo, size_t block_hi) {
        std::vector<int32_t> anchors(kQueryBlock), truths(kQueryBlock);
        std::vector<float> scores, truth_scores(kQueryBlock);
        int64_t local_scored = 0;
        for (size_t b = block_lo; b < block_hi; ++b) {
          const SlotBlock& block = blocks[b];
          const bool tail_dir = block.direction == QueryDirection::kTail;
          const int32_t slot =
              tail_dir ? block.relation + num_r : block.relation;
          const std::vector<int32_t>& pool = candidates.pools[slot];
          const size_t n = pool.size();
          const size_t qb = block.end - block.begin;
          for (size_t q = 0; q < qb; ++q) {
            const Triple& triple = triples[(*block.triple_idx)[block.begin + q]];
            anchors[q] = tail_dir ? triple.head : triple.tail;
            truths[q] = tail_dir ? triple.tail : triple.head;
          }
          scores.resize(qb * n);
          model.ScoreBatch(anchors.data(), qb, block.relation,
                           block.direction, pool.data(), n, scores.data());
          model.ScorePairs(anchors.data(), truths.data(), qb, block.relation,
                           block.direction, truth_scores.data());
          local_scored += static_cast<int64_t>(qb) * (n + 1);
          for (size_t q = 0; q < qb; ++q) {
            const int32_t i = (*block.triple_idx)[block.begin + q];
            const Triple& triple = triples[i];
            const std::vector<int32_t>* answers =
                filter.AnswersFor(triple, block.direction);
            KGEVAL_CHECK(answers != nullptr);
            const double rank =
                FilteredRank(pool.data(), scores.data() + q * n, n, truths[q],
                             truth_scores[q], *answers, options.tie);
            result.ranks[static_cast<size_t>(i) * 2 + (tail_dir ? 0 : 1)] =
                rank;
          }
        }
        scored.fetch_add(local_scored, std::memory_order_relaxed);
      },
      /*min_chunk=*/1);

  result.scored_candidates = scored.load();
  result.metrics = RankingMetrics::FromRanks(result.ranks);
  result.eval_seconds = timer.Seconds();
  return result;
}

SampledEvalResult EvaluateSampledScalar(const KgeModel& model,
                                        const Dataset& dataset,
                                        const FilterIndex& filter, Split split,
                                        const SampledCandidates& candidates,
                                        const SampledEvalOptions& options) {
  WallTimer timer;
  const std::vector<Triple>& triples = dataset.split(split);
  int64_t num_triples = static_cast<int64_t>(triples.size());
  if (options.max_triples > 0) {
    num_triples = std::min(num_triples, options.max_triples);
  }
  const int32_t num_r = dataset.num_relations();

  SampledEvalResult result;
  result.sample_seconds = candidates.sample_seconds;
  result.ranks.assign(static_cast<size_t>(num_triples) * 2, 0.0);
  std::atomic<int64_t> scored{0};

  ParallelFor(
      0, static_cast<size_t>(num_triples),
      [&](size_t lo, size_t hi) {
        std::vector<float> scores;
        int64_t local_scored = 0;
        for (size_t i = lo; i < hi; ++i) {
          const Triple& triple = triples[i];
          for (QueryDirection dir :
               {QueryDirection::kTail, QueryDirection::kHead}) {
            const bool tail_dir = dir == QueryDirection::kTail;
            const int32_t anchor = tail_dir ? triple.head : triple.tail;
            const int32_t truth = tail_dir ? triple.tail : triple.head;
            const int32_t slot =
                tail_dir ? triple.relation + num_r : triple.relation;
            const std::vector<int32_t>& pool = candidates.pools[slot];
            scores.resize(pool.size() + 1);
            // Score the pool plus the true answer in one model call.
            model.ScoreCandidates(anchor, triple.relation, dir, pool.data(),
                                  pool.size(), scores.data());
            model.ScoreCandidates(anchor, triple.relation, dir, &truth, 1,
                                  scores.data() + pool.size());
            local_scored += static_cast<int64_t>(pool.size()) + 1;
            const std::vector<int32_t>* answers =
                filter.AnswersFor(triple, dir);
            KGEVAL_CHECK(answers != nullptr);
            const double rank = FilteredRank(
                pool.data(), scores.data(), pool.size(), truth,
                scores[pool.size()], *answers, options.tie);
            result.ranks[i * 2 + (tail_dir ? 0 : 1)] = rank;
          }
        }
        scored.fetch_add(local_scored, std::memory_order_relaxed);
      },
      /*min_chunk=*/8);

  result.scored_candidates = scored.load();
  result.metrics = RankingMetrics::FromRanks(result.ranks);
  result.eval_seconds = timer.Seconds();
  return result;
}

}  // namespace kgeval

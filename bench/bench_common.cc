#include "bench/bench_common.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace kgeval {
namespace bench {

BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--paper-scale") {
      args.paper_scale = true;
    } else if (arg == "--fast") {
      args.fast = true;
    } else if (arg.rfind("--epochs=", 0) == 0) {
      args.epochs = std::atoi(arg.c_str() + std::strlen("--epochs="));
    } else if (arg.rfind("--dataset=", 0) == 0) {
      args.only_dataset = arg.substr(std::strlen("--dataset="));
    } else if (arg == "--json") {
      args.json = true;
    } else if (arg.rfind("--half-width=", 0) == 0) {
      args.half_width = std::atof(arg.c_str() + std::strlen("--half-width="));
      if (args.half_width <= 0.0) {
        std::fprintf(stderr, "--half-width must be positive\n");
        std::exit(2);
      }
    } else if (arg.rfind("--threads=", 0) == 0) {
      args.threads = std::atoi(arg.c_str() + std::strlen("--threads="));
      if (args.threads <= 0) {
        std::fprintf(stderr, "--threads must be positive\n");
        std::exit(2);
      }
    } else if (arg == "--from-disk") {
      args.from_disk = true;
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s' (supported: --paper-scale --fast "
                   "--epochs=N --dataset=NAME --json --half-width=X "
                   "--threads=N --from-disk)\n",
                   arg.c_str());
      std::exit(2);
    }
  }
  // ParseArgs runs first thing in every bench main(), before the lazy
  // global pool exists, so the override is still applicable. Without the
  // flag the pool falls back to KGEVAL_THREADS, then hardware_concurrency.
  if (args.threads > 0) {
    SetGlobalThreadPoolThreads(static_cast<size_t>(args.threads));
  }
  return args;
}

SynthOutput LoadPreset(const std::string& name, const BenchArgs& args) {
  const PresetScale scale =
      args.paper_scale ? PresetScale::kPaper : PresetScale::kScaled;
  SynthConfig config = GetPreset(name, scale).ValueOrDie();
  return GenerateDataset(config).ValueOrDie();
}

std::unique_ptr<KgeModel> TrainModel(const Dataset& dataset,
                                     const TrainSpec& spec) {
  ModelOptions options;
  options.dim = spec.dim;
  options.adam.learning_rate = spec.learning_rate;
  options.seed = spec.seed;
  auto model = CreateModel(spec.type, dataset.num_entities(),
                           dataset.num_relations(), options)
                   .ValueOrDie();
  TrainerOptions trainer_options;
  trainer_options.epochs = spec.epochs;
  trainer_options.negatives_per_positive = spec.negatives;
  trainer_options.seed = spec.seed * 7919;
  Trainer trainer(&dataset, trainer_options);
  KGEVAL_CHECK(trainer.Train(model.get()).ok());
  return model;
}

std::string MakeScratchDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      (name + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n\n", title.c_str());
}

void PrintNote(const std::string& text) {
  std::printf("note: %s\n", text.c_str());
}

std::string F(double value, int digits) {
  return StrFormat("%.*f", digits, value);
}

std::string Pct(double fraction, int digits) {
  return StrFormat("%.*f%%", digits, 100.0 * fraction);
}

}  // namespace bench
}  // namespace kgeval

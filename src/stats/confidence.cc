#include "stats/confidence.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace kgeval {

double NormalQuantile(double p) {
  KGEVAL_CHECK(p > 0.0 && p < 1.0);
  // Peter Acklam's rational approximation with the standard three regions.
  static const double a[6] = {-3.969683028665376e+01, 2.209460984245205e+02,
                              -2.759285104469687e+02, 1.383577518672690e+02,
                              -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[5] = {-5.447609879822406e+01, 1.615858368580409e+02,
                              -1.556989798598866e+02, 6.680131188771972e+01,
                              -1.328068155288572e+01};
  static const double c[6] = {-7.784894002430293e-03, -3.223964580411365e-01,
                              -2.400758277161838e+00, -2.549732539343734e+00,
                              4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[4] = {7.784695709041462e-03, 3.224671290700398e-01,
                              2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double TwoSidedZ(double confidence) {
  KGEVAL_CHECK(confidence > 0.0 && confidence < 1.0);
  return NormalQuantile(0.5 + confidence / 2.0);
}

double NormalCiHalfWidth(double variance, int64_t n, double z) {
  if (n < 2) return 0.0;
  return z * std::sqrt(std::max(0.0, variance) / static_cast<double>(n));
}

double FinitePopulationCorrection(int64_t n, int64_t N) {
  if (N <= 1) return 1.0;
  const double frac = static_cast<double>(N - n) / static_cast<double>(N - 1);
  return std::sqrt(std::min(1.0, std::max(0.0, frac)));
}

}  // namespace kgeval

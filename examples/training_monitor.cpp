// Training monitor: the framework's practical use case from the paper's
// intro — watch a model's validation MRR during training (and early-stop)
// without ever paying for a full ranking, then verify the final number with
// one exact evaluation at the end.
//
// The monitoring loop runs inside an EvalSession: the 2|R| candidate pools
// are drawn ONCE and pinned, so every epoch's estimate (a) skips the
// per-estimate sampling cost and (b) ranks against identical pools — the
// per-epoch curve moves only when the model does, not when the draw does.
//
// With --from-disk the same monitoring happens post-hoc: the trainer only
// writes per-epoch snapshots, then EstimateCheckpoints sweeps the files
// against the pinned pools (loading on job threads, never holding more than
// worker-count models) and streams each epoch's estimate as it completes —
// the workflow for a training run that already happened, or one monitored
// by a separate process watching the checkpoint directory.
//
// Usage: training_monitor [preset] [max_epochs] [patience] [--from-disk]

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/eval_session.h"
#include "eval/full_evaluator.h"
#include "models/trainer.h"
#include "synth/config.h"
#include "synth/generator.h"
#include "util/thread_pool.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace kgeval;
  const std::string preset = argc > 1 ? argv[1] : "codex-m";
  const int max_epochs = argc > 2 ? std::atoi(argv[2]) : 30;
  const int patience = argc > 3 ? std::atoi(argv[3]) : 5;
  const bool from_disk =
      argc > 4 && std::strcmp(argv[4], "--from-disk") == 0;

  SynthConfig config = GetPreset(preset, PresetScale::kScaled).ValueOrDie();
  SynthOutput synth = GenerateDataset(config).ValueOrDie();
  const Dataset& dataset = synth.dataset;
  const FilterIndex filter(dataset);

  FrameworkOptions fw_options;
  fw_options.recommender = RecommenderType::kLwd;
  fw_options.strategy = SamplingStrategy::kStatic;
  fw_options.sample_fraction = 0.1;
  auto session =
      EvalSession::Create(&dataset, &filter, fw_options, Split::kValid)
          .ValueOrDie();
  std::printf(
      "session ready in %.3fs (recommender fit + candidate sets) — pool "
      "draw %.3fs, paid once for the whole run\n",
      session->framework().build_seconds(),
      session->pools().sample_seconds);

  ModelOptions model_options;
  model_options.dim = 32;
  model_options.adam.learning_rate = 3e-3f;
  auto model = CreateModel(ModelType::kComplEx, dataset.num_entities(),
                           dataset.num_relations(), model_options)
                   .ValueOrDie();
  TrainerOptions trainer_options;
  trainer_options.negatives_per_positive = 8;

  double best_estimate = -1.0;
  double total_estimate_seconds = 0.0;
  int estimates = 0;

  if (from_disk) {
    // Phase 1: train to completion, writing one snapshot per epoch.
    const std::string ckpt_dir =
        (std::filesystem::temp_directory_path() /
         ("kgeval_monitor_ckpt_" + std::to_string(::getpid())))
            .string();
    std::filesystem::remove_all(ckpt_dir);
    trainer_options.epochs = max_epochs;
    trainer_options.checkpoint_dir = ckpt_dir;
    Trainer trainer(&dataset, trainer_options);
    WallTimer train_timer;
    const Status trained = trainer.Train(
        model.get(), [](int32_t epoch, const KgeModel&) {
          std::printf("epoch %2d trained (snapshot written)\n", epoch);
        });
    if (!trained.ok()) {
      std::fprintf(stderr, "training failed: %s\n",
                   trained.ToString().c_str());
      return 1;
    }
    std::printf("trained %d epochs in %.3fs; monitoring from %s\n",
                max_epochs, train_timer.Seconds(), ckpt_dir.c_str());

    // Phase 2: sweep the snapshot files against the pinned pools,
    // streaming each epoch's estimate as its job completes.
    std::vector<std::string> paths;
    for (int epoch = 0; epoch < max_epochs; ++epoch) {
      paths.push_back(CheckpointPath(ckpt_dir, epoch));
    }
    CheckpointSweepStats stats;
    const std::vector<CheckpointEstimate> curve =
        session->EstimateCheckpoints(
            paths, /*max_triples=*/0,
            [](size_t index, const CheckpointEstimate& outcome) {
              if (outcome.status.ok()) {
                std::printf("  streamed: epoch %2zu est. valid MRR %.4f\n",
                            index, outcome.result.metrics.mrr);
              } else {
                std::printf("  streamed: epoch %2zu FAILED: %s\n", index,
                            outcome.status.ToString().c_str());
              }
            },
            &stats);
    total_estimate_seconds = stats.wall_seconds;

    // Retrospective early-stop analysis over the in-order curve.
    int best_epoch = -1, stop_epoch = -1, epochs_since_best = 0;
    for (size_t epoch = 0; epoch < curve.size(); ++epoch) {
      if (!curve[epoch].status.ok()) continue;
      ++estimates;
      const double estimate = curve[epoch].result.metrics.mrr;
      if (estimate > best_estimate) {
        best_estimate = estimate;
        best_epoch = static_cast<int>(epoch);
        epochs_since_best = 0;
      } else if (++epochs_since_best >= patience && stop_epoch < 0) {
        stop_epoch = static_cast<int>(epoch);
      }
    }
    std::printf(
        "sweep: %d snapshots in %.3fs (resident high-water %zu of %zu "
        "worker threads, %zu failed)\n"
        "best epoch %d (est. MRR %.4f); early stopping would have halted "
        "%s\n",
        estimates, stats.wall_seconds, stats.max_resident_models,
        GlobalThreadPool()->num_threads(), stats.failed, best_epoch,
        best_estimate,
        stop_epoch >= 0
            ? ("at epoch " + std::to_string(stop_epoch)).c_str()
            : "never (improving to the end)");
    std::filesystem::remove_all(ckpt_dir);
  } else {
    trainer_options.epochs = 1;  // Driven manually below.
    Trainer trainer(&dataset, trainer_options);
    int epochs_since_best = 0;
    for (int epoch = 0; epoch < max_epochs; ++epoch) {
      const double loss = trainer.TrainEpoch(model.get(), epoch);
      WallTimer timer;
      const double estimate = session->Estimate(*model).metrics.mrr;
      total_estimate_seconds += timer.Seconds();
      ++estimates;
      std::printf("epoch %2d  loss %.4f  est. valid MRR %.4f%s\n", epoch,
                  loss, estimate,
                  estimate > best_estimate ? "  (best)" : "");
      if (estimate > best_estimate) {
        best_estimate = estimate;
        epochs_since_best = 0;
      } else if (++epochs_since_best >= patience) {
        std::printf("early stop: no improvement for %d epochs\n", patience);
        break;
      }
    }
  }

  WallTimer full_timer;
  const double exact =
      EvaluateFullRanking(*model, dataset, filter, Split::kValid)
          .metrics.mrr;
  const double full_seconds = full_timer.Seconds();
  std::printf(
      "\nfinal exact valid MRR %.4f (best estimate %.4f)\n"
      "monitoring cost: %.3fs total for %d estimates vs %.3fs for ONE full "
      "evaluation\n"
      "sampling amortized: one pinned draw (%.3fs) served all %d estimates "
      "— %.4fs/epoch instead of %.3fs/epoch redrawn\n",
      exact, best_estimate, total_estimate_seconds, estimates, full_seconds,
      session->pools().sample_seconds, estimates,
      session->pools().sample_seconds / estimates,
      session->pools().sample_seconds);
  return 0;
}

#ifndef KGEVAL_EVAL_SLOT_BLOCKS_H_
#define KGEVAL_EVAL_SLOT_BLOCKS_H_

#include <cstdint>
#include <vector>

#include "graph/triple.h"

namespace kgeval {

/// One unit of slot-major evaluation work: a block of same-relation query
/// indices, all scored in one (relation, direction) batched kernel call.
struct SlotBlock {
  int32_t relation;
  QueryDirection direction;
  const std::vector<int32_t>* triple_idx;  // Triples with this relation.
  size_t begin;                            // Block range within triple_idx.
  size_t end;
};

/// Buckets the evaluated prefix of a split by relation. Both directions of
/// a triple share its relation, so one bucket list serves both slots.
std::vector<std::vector<int32_t>> GroupByRelation(
    const std::vector<Triple>& triples, int64_t num_triples,
    int32_t num_relations);

/// Splits every non-empty relation bucket into per-direction blocks of at
/// most `query_block` queries. The returned blocks hold pointers into
/// `by_relation`, which must outlive them.
std::vector<SlotBlock> BuildSlotBlocks(
    const std::vector<std::vector<int32_t>>& by_relation, size_t query_block);

}  // namespace kgeval

#endif  // KGEVAL_EVAL_SLOT_BLOCKS_H_

#ifndef KGEVAL_MODELS_TRANSE_H_
#define KGEVAL_MODELS_TRANSE_H_

#include "la/matrix.h"
#include "models/kge_model.h"

namespace kgeval {

/// TransE (Bordes et al., 2013): score(h, r, t) = -|| h + r - t ||_1.
class TransE : public KgeModel {
 public:
  TransE(int32_t num_entities, int32_t num_relations, ModelOptions options);

  BatchKernel batch_kernel() const override { return BatchKernel::kNegL1; }
  const Matrix* candidate_embeddings() const override { return &entities_; }

  /// One translated query row per anchor: h + r for tail queries, t - r for
  /// head queries; scoring is then -L1(query, candidate).
  void BuildKernelQueries(const int32_t* anchors, size_t num_queries,
                          int32_t relation, QueryDirection direction,
                          Matrix* queries) const override;

  void UpdateTriple(int32_t head, int32_t relation, int32_t tail,
                    QueryDirection direction, float dscore) override;

  void CollectParameters(std::vector<NamedParameter>* out) override;

  const Matrix& entities() const { return entities_; }
  const Matrix& relations() const { return relations_; }

 private:
  Matrix entities_;
  Matrix relations_;
  AdamState entity_adam_;
  AdamState relation_adam_;
};

}  // namespace kgeval

#endif  // KGEVAL_MODELS_TRANSE_H_

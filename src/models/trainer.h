#ifndef KGEVAL_MODELS_TRAINER_H_
#define KGEVAL_MODELS_TRAINER_H_

#include <functional>
#include <string>

#include "graph/dataset.h"
#include "models/kge_model.h"
#include "util/rng.h"
#include "util/status.h"

namespace kgeval {

/// Supplies one corruption entity for a training negative, or -1 to fall
/// back to a uniform draw. Must be thread-safe for concurrent calls with
/// distinct Rng instances (hogwild training calls it from every chunk).
using NegativeSamplerFn = std::function<int32_t(
    int32_t relation, QueryDirection direction, Rng* rng)>;

/// Negative-sampling trainer options. The loss is the standard binary
/// cross-entropy with uniform entity corruption:
///   L = -log sigmoid(s_pos) - sum_neg log sigmoid(-s_neg),
/// applied in both query directions per positive (head and tail corruption).
struct TrainerOptions {
  int32_t epochs = 20;
  int32_t negatives_per_positive = 4;
  /// Hogwild parallelism: fixed chunking keeps the RNG streams deterministic
  /// per (epoch, chunk); 1 disables threading entirely.
  int32_t num_threads = 0;  // 0 = use the global pool width.
  uint64_t seed = 99;

  /// Optional custom corruption source — used for the recommender-guided
  /// negative sampling Section 7 names as future work (see
  /// MakeGuidedNegativeSampler in core/guided_negatives.h). Null = uniform.
  NegativeSamplerFn negative_sampler;

  /// When non-empty, Train() snapshots the model to
  /// CheckpointPath(checkpoint_dir, epoch) after every checkpoint_every-th
  /// epoch and always after the final epoch (the directory is created if
  /// missing) — the producer side of EvalSession::EstimateCheckpoints'
  /// from-disk monitoring loop. A failed save aborts training with its
  /// Status.
  std::string checkpoint_dir;
  int32_t checkpoint_every = 1;
};

/// The snapshot path Train() writes for `epoch`: zero-padded so a
/// lexicographic listing of the directory is the epoch order. The pad is
/// 5 digits, widened when `total_epochs` (the run's TrainerOptions::epochs;
/// 0 = unknown) needs more — a 7-digit run zero-pads to 7 everywhere, so
/// "epoch_100000" can never sort between "epoch_00001" and "epoch_00002".
/// Callers reconstructing a training run's paths must pass the same
/// total_epochs the Trainer was configured with (≤ 100000-epoch runs are
/// unaffected either way). The service's SWEEP/WATCH ordering does not
/// depend on this: it orders by parsed epoch number
/// (CheckpointEpochKey), with lexicographic order only as the tie-break.
std::string CheckpointPath(const std::string& checkpoint_dir, int32_t epoch,
                           int32_t total_epochs = 0);

/// Drives epochs of stochastic training over a dataset's train split.
class Trainer {
 public:
  Trainer(const Dataset* dataset, TrainerOptions options);

  /// Runs one epoch of updates; returns the mean per-positive loss.
  double TrainEpoch(KgeModel* model, int32_t epoch);

  /// Runs options.epochs epochs. `callback`, when given, runs after each
  /// epoch (e.g., to estimate validation metrics — the paper's per-epoch
  /// evaluation loop).
  using EpochCallback =
      std::function<void(int32_t epoch, const KgeModel& model)>;
  Status Train(KgeModel* model, const EpochCallback& callback = nullptr);

 private:
  const Dataset* dataset_;
  TrainerOptions options_;
};

}  // namespace kgeval

#endif  // KGEVAL_MODELS_TRAINER_H_

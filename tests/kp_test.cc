#include <gtest/gtest.h>

#include <cmath>

#include "core/framework.h"
#include "kp/kp_metric.h"
#include "kp/persistence.h"
#include "models/trainer.h"
#include "synth/config.h"
#include "synth/generator.h"

namespace kgeval {
namespace {

TEST(PersistenceTest, EmptyGraph) {
  const PersistenceDiagram d = ComputeZeroDimPersistence(5, {});
  EXPECT_TRUE(d.points.empty());
}

TEST(PersistenceTest, SingleEdgeHasOneEssentialClass) {
  // Two vertices joined at weight 1: one component born at 1, never dies;
  // closed at max weight 1 -> zero persistence, dropped.
  const PersistenceDiagram d =
      ComputeZeroDimPersistence(2, {{0, 1, 1.0f}});
  EXPECT_TRUE(d.points.empty());
}

TEST(PersistenceTest, ChainMergesProduceFinitePairs) {
  // Path 0-1 (w=1), 2-3 (w=2), 1-2 (w=5): components {0,1} born 1 and
  // {2,3} born 2 merge at 5 -> the younger (birth 2) dies: point (2, 5).
  const PersistenceDiagram d = ComputeZeroDimPersistence(
      4, {{0, 1, 1.0f}, {2, 3, 2.0f}, {1, 2, 5.0f}});
  ASSERT_EQ(d.points.size(), 2u);
  // One finite merge pair (2,5) and one essential class (1, max=5).
  EXPECT_FLOAT_EQ(d.points[0].first, 2.0f);
  EXPECT_FLOAT_EQ(d.points[0].second, 5.0f);
  EXPECT_FLOAT_EQ(d.points[1].first, 1.0f);
  EXPECT_FLOAT_EQ(d.points[1].second, 5.0f);
}

TEST(PersistenceTest, RedundantEdgesCreateNoPoints) {
  // A triangle: vertex 2 is born at w=2 and merges at w=2 (zero
  // persistence, dropped); the third edge closes a cycle (no 0-dim event).
  // Only the essential component (born 1, closed at max weight 3) remains.
  const PersistenceDiagram d = ComputeZeroDimPersistence(
      3, {{0, 1, 1.0f}, {1, 2, 2.0f}, {0, 2, 3.0f}});
  ASSERT_EQ(d.points.size(), 1u);
  EXPECT_FLOAT_EQ(d.points[0].first, 1.0f);
  EXPECT_FLOAT_EQ(d.points[0].second, 3.0f);
}

TEST(PersistenceTest, DisconnectedComponentsAllClosed) {
  const PersistenceDiagram d = ComputeZeroDimPersistence(
      6, {{0, 1, 1.0f}, {2, 3, 2.0f}, {4, 5, 3.0f}});
  // Three essential components born at 1, 2, 3, closed at 3; the born-at-3
  // one has zero persistence and is dropped.
  ASSERT_EQ(d.points.size(), 2u);
}

TEST(PersistenceTest, IsolatedVerticesIgnored) {
  const PersistenceDiagram with_isolated =
      ComputeZeroDimPersistence(10, {{0, 1, 1.0f}, {1, 2, 4.0f}});
  const PersistenceDiagram compact =
      ComputeZeroDimPersistence(3, {{0, 1, 1.0f}, {1, 2, 4.0f}});
  EXPECT_EQ(with_isolated.points.size(), compact.points.size());
}

TEST(SlicedWassersteinTest, IdenticalDiagramsZero) {
  PersistenceDiagram d;
  d.points = {{0.1f, 0.5f}, {0.2f, 0.9f}};
  EXPECT_NEAR(SlicedWassersteinDistance(d, d), 0.0, 1e-9);
}

TEST(SlicedWassersteinTest, Symmetric) {
  PersistenceDiagram a, b;
  a.points = {{0.0f, 1.0f}};
  b.points = {{0.2f, 0.4f}, {0.5f, 0.8f}};
  EXPECT_NEAR(SlicedWassersteinDistance(a, b),
              SlicedWassersteinDistance(b, a), 1e-9);
}

TEST(SlicedWassersteinTest, PositiveForDifferentDiagrams) {
  PersistenceDiagram a, b;
  a.points = {{0.0f, 1.0f}};
  b.points = {{0.0f, 0.1f}};
  EXPECT_GT(SlicedWassersteinDistance(a, b), 0.0);
}

TEST(SlicedWassersteinTest, GrowsWithSeparation) {
  PersistenceDiagram base, near, far;
  base.points = {{0.0f, 0.2f}};
  near.points = {{0.0f, 0.3f}};
  far.points = {{0.0f, 2.0f}};
  EXPECT_LT(SlicedWassersteinDistance(base, near),
            SlicedWassersteinDistance(base, far));
}

TEST(SlicedWassersteinTest, EmptyVsEmptyIsZero) {
  PersistenceDiagram a, b;
  EXPECT_EQ(SlicedWassersteinDistance(a, b), 0.0);
}

class KpFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SynthConfig config;
    config.num_entities = 500;
    config.num_relations = 12;
    config.num_types = 10;
    config.num_train = 6000;
    config.num_valid = 500;
    config.num_test = 500;
    config.seed = 71;
    dataset_ = new Dataset(GenerateDataset(config).ValueOrDie().dataset);
    ModelOptions options;
    options.dim = 24;
    auto model = CreateModel(ModelType::kDistMult, dataset_->num_entities(),
                             dataset_->num_relations(), options)
                     .ValueOrDie();
    TrainerOptions trainer_options;
    trainer_options.epochs = 6;
    Trainer trainer(dataset_, trainer_options);
    ASSERT_TRUE(trainer.Train(model.get()).ok());
    model_ = model.release();
  }
  static void TearDownTestSuite() {
    delete model_;
    delete dataset_;
  }
  static Dataset* dataset_;
  static KgeModel* model_;
};

Dataset* KpFixture::dataset_ = nullptr;
KgeModel* KpFixture::model_ = nullptr;

TEST_F(KpFixture, ScoreIsFiniteAndTimed) {
  KpOptions options;
  options.num_samples = 300;
  const KpResult result =
      ComputeKp(*model_, *dataset_, Split::kTest, options);
  EXPECT_TRUE(std::isfinite(result.score));
  EXPECT_GE(result.score, 0.0);
  EXPECT_GT(result.positive_edges, 0);
  EXPECT_EQ(result.positive_edges, result.negative_edges);
  EXPECT_GE(result.seconds, 0.0);
}

TEST_F(KpFixture, DeterministicGivenSeed) {
  KpOptions options;
  options.num_samples = 200;
  options.seed = 9;
  const KpResult a = ComputeKp(*model_, *dataset_, Split::kTest, options);
  const KpResult b = ComputeKp(*model_, *dataset_, Split::kTest, options);
  EXPECT_DOUBLE_EQ(a.score, b.score);
}

TEST_F(KpFixture, GuidedPoolsChangeTheScore) {
  KpOptions options;
  options.num_samples = 300;
  const KpResult uniform =
      ComputeKp(*model_, *dataset_, Split::kTest, options);

  FrameworkOptions fw_options;
  fw_options.strategy = SamplingStrategy::kProbabilistic;
  fw_options.sample_fraction = 0.2;
  auto framework =
      EvaluationFramework::Build(dataset_, fw_options).ValueOrDie();
  Rng rng(5);
  const SampledCandidates pools = DrawCandidates(
      SamplingStrategy::kProbabilistic, &framework->sets(),
      dataset_->num_entities(), framework->SampleSize(),
      NeededSlots(*dataset_, Split::kTest),
      2 * dataset_->num_relations(), &rng);
  const KpResult guided =
      ComputeKp(*model_, *dataset_, Split::kTest, options, &pools);
  EXPECT_TRUE(std::isfinite(guided.score));
  // Harder negatives make the negative graph closer to the positive one.
  EXPECT_NE(guided.score, uniform.score);
}

TEST_F(KpFixture, TrainedModelSeparatesMoreThanRandomModel) {
  ModelOptions options;
  options.dim = 24;
  options.seed = 1234;
  auto untrained =
      CreateModel(ModelType::kDistMult, dataset_->num_entities(),
                  dataset_->num_relations(), options)
          .ValueOrDie();
  KpOptions kp_options;
  kp_options.num_samples = 500;
  const double trained_score =
      ComputeKp(*model_, *dataset_, Split::kTest, kp_options).score;
  const double untrained_score =
      ComputeKp(*untrained, *dataset_, Split::kTest, kp_options).score;
  // A trained model assigns systematically different weights to true vs
  // corrupted edges, so its KP+/KP- diagrams are farther apart.
  EXPECT_GT(trained_score, untrained_score);
}

}  // namespace
}  // namespace kgeval

#include "service/line_client.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <utility>

#include "net/net_util.h"
#include "util/string_util.h"

namespace kgeval {

Result<LineClient> LineClient::Connect(const std::string& host, uint16_t port,
                                       double recv_timeout_s) {
  Result<int> fd = ConnectTcp(host, port);
  if (!fd.ok()) return fd.status();
  LineClient client;
  client.fd_ = fd.ValueOrDie();
  if (recv_timeout_s > 0) {
    struct timeval tv;
    tv.tv_sec = static_cast<time_t>(recv_timeout_s);
    tv.tv_usec = static_cast<suseconds_t>(
        (recv_timeout_s - static_cast<double>(tv.tv_sec)) * 1e6);
    if (setsockopt(client.fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) !=
        0) {
      int err = errno;
      client.Close();
      return Status::IoError(
          StrFormat("setsockopt(SO_RCVTIMEO): %s", strerror(err)));
    }
  }
  return client;
}

LineClient::~LineClient() { Close(); }

LineClient::LineClient(LineClient&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

LineClient& LineClient::operator=(LineClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

void LineClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status LineClient::SendLine(const std::string& line) {
  return SendRaw(line + "\n");
}

Status LineClient::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(StrFormat("send: %s", strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> LineClient::ReadLine() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  while (true) {
    size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IoError("recv timed out waiting for a reply line");
      }
      return Status::IoError(StrFormat("recv: %s", strerror(errno)));
    }
    if (n == 0) {
      return Status::IoError("connection closed by server");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

bool LineClient::IsTerminal(const std::string& line) {
  size_t end = line.find(' ');
  const std::string verb =
      end == std::string::npos ? line : line.substr(0, end);
  return verb == "OK" || verb == "DONE" || verb == "ERR";
}

std::string LineClient::ErrorCode(const std::string& line) {
  if (line.rfind("ERR ", 0) != 0) return std::string();
  const size_t begin = 4;
  const size_t end = line.find(' ', begin);
  return end == std::string::npos ? line.substr(begin)
                                  : line.substr(begin, end - begin);
}

Result<std::vector<std::string>> LineClient::ReadReply() {
  std::vector<std::string> lines;
  while (true) {
    Result<std::string> line = ReadLine();
    if (!line.ok()) return line.status();
    lines.push_back(std::move(line).ValueOrDie());
    if (IsTerminal(lines.back())) return lines;
  }
}

}  // namespace kgeval

#include "service/command.h"

#include <cctype>

#include "util/string_util.h"

namespace kgeval {

const std::vector<CommandSpec>& CommandTable() {
  static const std::vector<CommandSpec> kTable = {
      {Verb::kPing, "PING", 0, 0, false, "PING"},
      {Verb::kLoad, "LOAD", 1, 2, false, "LOAD <dataset> [valid|test]"},
      {Verb::kEval, "EVAL", 1, 3, false,
       "EVAL <ckpt> [half_width] [protocol]"},
      {Verb::kSweep, "SWEEP", 1, 1, true, "SWEEP <dir>"},
      {Verb::kWatch, "WATCH", 2, 3, true, "WATCH <dir> <count> [timeout_s]"},
      {Verb::kStats, "STATS", 0, 0, false, "STATS"},
      {Verb::kQuit, "QUIT", 0, 0, false, "QUIT"},
  };
  return kTable;
}

const CommandSpec* FindCommand(std::string_view name) {
  for (const CommandSpec& spec : CommandTable()) {
    const char* want = spec.name;
    size_t i = 0;
    for (; i < name.size() && want[i] != '\0'; ++i) {
      if (std::toupper(static_cast<unsigned char>(name[i])) != want[i]) break;
    }
    if (i == name.size() && want[i] == '\0') return &spec;
  }
  return nullptr;
}

Result<ParsedCommand> ParseCommandLine(std::string_view line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    const size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.emplace_back(line.substr(start, i - start));
  }
  if (tokens.empty()) return ParsedCommand{};  // Blank line: ignored.
  const CommandSpec* spec = FindCommand(tokens[0]);
  if (spec == nullptr) {
    return Status::InvalidArgument(
        StrFormat("unknown-verb %s", tokens[0].c_str()));
  }
  const int argc = static_cast<int>(tokens.size()) - 1;
  if (argc < spec->min_args || argc > spec->max_args) {
    return Status::InvalidArgument(
        StrFormat("arity %s takes %d..%d args, got %d (syntax: %s)",
                  spec->name, spec->min_args, spec->max_args, argc,
                  spec->syntax));
  }
  ParsedCommand cmd;
  cmd.spec = spec;
  cmd.args.assign(tokens.begin() + 1, tokens.end());
  return cmd;
}

}  // namespace kgeval

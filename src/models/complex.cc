#include "models/complex.h"

#include <vector>

#include "la/vector_ops.h"

namespace kgeval {

ComplEx::ComplEx(int32_t num_entities, int32_t num_relations,
                 ModelOptions options)
    : KgeModel(ModelType::kComplEx, num_entities, num_relations, options),
      half_(options.dim / 2),
      entities_(num_entities, options.dim),
      relations_(num_relations, options.dim),
      entity_adam_(num_entities, options.dim, options.adam),
      relation_adam_(num_relations, options.dim, options.adam) {
  Rng rng(options.seed);
  entities_.InitXavier(&rng, options.dim, options.dim);
  relations_.InitXavier(&rng, options.dim, options.dim);
}

void ComplEx::BuildQueries(const int32_t* anchors, size_t num_queries,
                           int32_t relation, QueryDirection direction,
                           Matrix* queries) const {
  const int32_t m = half_;
  const float* rv = relations_.Row(relation);
  // The score is linear in the candidate embedding: fold anchor and
  // relation into a single query vector (q_re, q_im) per anchor.
  queries->Resize(num_queries, static_cast<size_t>(2 * m));
  for (size_t q = 0; q < num_queries; ++q) {
    const float* av = entities_.Row(anchors[q]);
    float* row = queries->Row(q);
    if (direction == QueryDirection::kTail) {
      // score = e.(ac - bd) + f.(bc + ad) with h=(a,b), r=(c,d), t=(e,f).
      for (int32_t i = 0; i < m; ++i) {
        const float a = av[i], b = av[m + i];
        const float c = rv[i], d = rv[m + i];
        row[i] = a * c - b * d;
        row[m + i] = b * c + a * d;
      }
    } else {
      // score = a.(ce + df) + b.(cf - de) with t=(e,f) as anchor.
      for (int32_t i = 0; i < m; ++i) {
        const float e = av[i], f = av[m + i];
        const float c = rv[i], d = rv[m + i];
        row[i] = c * e + d * f;
        row[m + i] = c * f - d * e;
      }
    }
  }
}

void ComplEx::ScoreCandidates(int32_t anchor, int32_t relation,
                              QueryDirection direction,
                              const int32_t* candidates, size_t n,
                              float* out) const {
  Matrix query;
  BuildQueries(&anchor, 1, relation, direction, &query);
  for (size_t k = 0; k < n; ++k) {
    out[k] = Dot(query.Row(0), entities_.Row(candidates[k]),
                 static_cast<size_t>(2 * half_));
  }
}

void ComplEx::ScoreBatch(const int32_t* anchors, size_t num_queries,
                         int32_t relation, QueryDirection direction,
                         const int32_t* candidates, size_t n,
                         float* out) const {
  CandidateBlock block;
  PrepareCandidates(candidates, n, &block);
  ScoreBlock(anchors, nullptr, num_queries, relation, direction, block, out,
             nullptr);
}

void ComplEx::ScorePairs(const int32_t* anchors, const int32_t* candidates,
                         size_t num_queries, size_t candidates_per_query,
                         int32_t relation, QueryDirection direction,
                         float* out) const {
  const size_t d = static_cast<size_t>(2 * half_);
  const size_t k = candidates_per_query;
  Matrix queries;
  BuildQueries(anchors, num_queries, relation, direction, &queries);
  for (size_t q = 0; q < num_queries; ++q) {
    for (size_t j = 0; j < k; ++j) {
      out[q * k + j] =
          Dot(queries.Row(q), entities_.Row(candidates[q * k + j]), d);
    }
  }
}

void ComplEx::PrepareCandidates(const int32_t* candidates, size_t n,
                                CandidateBlock* block) const {
  // The folded query makes scoring a plain dot product, so the transposed
  // tile's top/bottom halves are exactly the candidates' re/im planes.
  FillCandidateIds(candidates, n, block);
  GatherRowsT(entities_, candidates, n, &block->gathered_t);
  block->prepared = true;
}

void ComplEx::ScoreBlock(const int32_t* anchors, const int32_t* truths,
                         size_t num_queries, int32_t relation,
                         QueryDirection direction,
                         const CandidateBlock& block, float* pool_scores,
                         float* truth_scores) const {
  if (!block.prepared) {
    KgeModel::ScoreBlock(anchors, truths, num_queries, relation, direction,
                         block, pool_scores, truth_scores);
    return;
  }
  const size_t d = static_cast<size_t>(2 * half_);
  Matrix queries;
  BuildQueries(anchors, num_queries, relation, direction, &queries);
  if (pool_scores != nullptr) {
    DotScoreBatch(queries, block.gathered_t, pool_scores);
  }
  if (truth_scores != nullptr) {
    for (size_t q = 0; q < num_queries; ++q) {
      truth_scores[q] = Dot(queries.Row(q), entities_.Row(truths[q]), d);
    }
  }
}

void ComplEx::UpdateTriple(int32_t head, int32_t relation, int32_t tail,
                           QueryDirection /*direction*/, float dscore) {
  const int32_t m = half_;
  const float* h = entities_.Row(head);
  const float* r = relations_.Row(relation);
  const float* t = entities_.Row(tail);
  std::vector<float> gh(2 * m), gr(2 * m), gt(2 * m);
  const float l2 = options_.l2;
  for (int32_t i = 0; i < m; ++i) {
    const float a = h[i], b = h[m + i];
    const float c = r[i], d = r[m + i];
    const float e = t[i], f = t[m + i];
    gh[i] = dscore * (c * e + d * f) + l2 * a;
    gh[m + i] = dscore * (c * f - d * e) + l2 * b;
    gr[i] = dscore * (a * e + b * f) + l2 * c;
    gr[m + i] = dscore * (a * f - b * e) + l2 * d;
    gt[i] = dscore * (a * c - b * d) + l2 * e;
    gt[m + i] = dscore * (b * c + a * d) + l2 * f;
  }
  entity_adam_.UpdateRow(&entities_, head, gh.data());
  relation_adam_.UpdateRow(&relations_, relation, gr.data());
  entity_adam_.UpdateRow(&entities_, tail, gt.data());
}

void ComplEx::CollectParameters(std::vector<NamedParameter>* out) {
  out->push_back({"entities", &entities_});
  out->push_back({"relations", &relations_});
}

}  // namespace kgeval

#include "eval/screen.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "la/kernels/kernels.h"
#include "util/logging.h"

namespace kgeval {
namespace {

/// Per-term floating-point slack multiplied by the sum of term magnitudes:
/// a length-dim reduction accumulates at most dim roundings of at most the
/// running-sum magnitude each, on BOTH sides of the comparison (the exact
/// sequential reference and the possibly fused/reordered quantized kernel),
/// so 2 x 2 x machine-epsilon per term is a safe, still-tiny allowance next
/// to the quantization term (~amp/254 per dim).
float FpSlack(size_t dim) { return 2.4e-7f * static_cast<float>(dim); }

std::atomic<int64_t> g_queries{0};
std::atomic<int64_t> g_screened{0};
std::atomic<int64_t> g_rescored{0};
std::atomic<int64_t> g_tiles_skipped{0};

/// Distance from q to the interval [lo, hi]; 0 inside it. The per-dim
/// building block of the tile-skip bounds for the distance kernels.
float GapToRange(float q, float lo, float hi) {
  if (q < lo) return lo - q;
  if (q > hi) return q - hi;
  return 0.0f;
}

/// One lane of the query-row quantization for the integer dot: the
/// round-to-nearest level of pre-scaled value `a` at inverse scale
/// `inv_qs`, clamped to the symmetric int8 range. ScreenErrorBound and
/// ScreenApproxBlock MUST quantize through this same function — the bound
/// covers the measured rounding of exactly these levels.
int32_t QuantizeQueryLane(float a, float inv_qs) {
  const long v = std::lround(a * inv_qs);
  return static_cast<int32_t>(std::min<long>(127, std::max<long>(-127, v)));
}

}  // namespace

void AddGlobalScreenStats(const ScreenStats& stats) {
  g_queries.fetch_add(stats.queries, std::memory_order_relaxed);
  g_screened.fetch_add(stats.screened, std::memory_order_relaxed);
  g_rescored.fetch_add(stats.rescored, std::memory_order_relaxed);
  g_tiles_skipped.fetch_add(stats.tiles_skipped, std::memory_order_relaxed);
}

ScreenStats GlobalScreenStats() {
  ScreenStats stats;
  stats.queries = g_queries.load(std::memory_order_relaxed);
  stats.screened = g_screened.load(std::memory_order_relaxed);
  stats.rescored = g_rescored.load(std::memory_order_relaxed);
  stats.tiles_skipped = g_tiles_skipped.load(std::memory_order_relaxed);
  return stats;
}

void QuantizeCandidateBlock(CandidateBlock* block) {
  KGEVAL_CHECK(block->prepared);
  const size_t dim = block->gathered_t.rows();
  const size_t n = block->gathered_t.cols();
  KGEVAL_CHECK(n > 0) << "cannot quantize an empty candidate tile";
  const size_t dim_quads = (dim + 3) / 4;
  block->q8.resize(dim * n);
  block->q8i.assign(dim_quads * n * 4, 0);
  block->q8_colsum.assign(n, 0);
  block->q8_scale.resize(dim);
  block->q8_err.resize(dim);
  block->q8_amp.resize(dim);
  block->q8_lo.resize(dim);
  block->q8_hi.resize(dim);
  block->q8_bias_amp = 0.0f;
  for (float b : block->bias) {
    block->q8_bias_amp = std::max(block->q8_bias_amp, std::fabs(b));
  }
  const float* tile = block->gathered_t.data();
  for (size_t k = 0; k < dim; ++k) {
    const float* row = tile + k * n;
    int8_t* qrow = block->q8.data() + k * n;
    float lo = row[0], hi = row[0];
    for (size_t c = 1; c < n; ++c) {
      lo = std::min(lo, row[c]);
      hi = std::max(hi, row[c]);
    }
    block->q8_lo[k] = lo;
    block->q8_hi[k] = hi;
    const float amp = std::max(std::fabs(lo), std::fabs(hi));
    block->q8_amp[k] = amp;
    if (amp == 0.0f) {
      block->q8_scale[k] = 0.0f;
      block->q8_err[k] = 0.0f;
      std::fill(qrow, qrow + n, static_cast<int8_t>(0));
      continue;
    }
    const float scale = amp / 127.0f;
    const float inv = 127.0f / amp;
    // q8_err records the tile's ACTUAL max reconstruction error — measured
    // against the same q * scale product the dequantizing kernels compute —
    // which is what makes the bound both tight and airtight.
    float err = 0.0f;
    int8_t* irow = block->q8i.data() + ((k / 4) * n) * 4 + (k % 4);
    for (size_t c = 0; c < n; ++c) {
      const long q = std::lround(row[c] * inv);
      const int8_t q8 = static_cast<int8_t>(
          std::min<long>(127, std::max<long>(-127, q)));
      qrow[c] = q8;
      irow[c * 4] = q8;
      block->q8_colsum[c] += q8;
      err = std::max(err,
                     std::fabs(row[c] - static_cast<float>(q8) * scale));
    }
    block->q8_scale[k] = scale;
    block->q8_err[k] = err;
  }
  block->quantized = true;
}

float ScreenErrorBound(BatchKernel kind, const float* qrow, size_t dim,
                       const CandidateBlock& block) {
  const float* err = block.q8_err.data();
  const float* amp = block.q8_amp.data();
  const float bias_amp = block.q8_bias_amp;
  const float slack = FpSlack(dim);
  switch (kind) {
    case BatchKernel::kDot: {
      // Two rounding sources, both measured rather than worst-cased:
      // the tile's |q_k| err_k per dim, and the query row's own int8
      // levels — approx substitutes a'_k = qs * round(a_k / qs) for
      // a_k = q_k scale_k, and each |a'_k - a_k| meets a tile byte of
      // magnitude at most 127. The integer sum itself is exact; the slack
      // covers only the final int->float convert, scale, and bias add
      // (the sum's magnitude is at most 127 * 127 * dim in query-scale
      // units, hence the 16129 qs term).
      const float* scale = block.q8_scale.data();
      float quant = 0.0f, mag = 0.0f, maxa = 0.0f;
      for (size_t k = 0; k < dim; ++k) {
        const float a = std::fabs(qrow[k]);
        quant += a * err[k];
        mag += a * amp[k];
        maxa = std::max(maxa, std::fabs(qrow[k] * scale[k]));
      }
      float qs = 0.0f;
      if (maxa > 0.0f) {
        qs = maxa / 127.0f;
        const float inv = 127.0f / maxa;
        float dqsum = 0.0f;
        for (size_t k = 0; k < dim; ++k) {
          const float a = qrow[k] * scale[k];
          dqsum += std::fabs(
              qs * static_cast<float>(QuantizeQueryLane(a, inv)) - a);
        }
        quant += 127.0f * dqsum;
      }
      return quant + slack * (mag + bias_amp + 16129.0f * qs);
    }
    case BatchKernel::kNegL1: {
      // | |q-e| - |q-deq| | <= |e - deq| per dim: the quantization term is
      // query-independent.
      float quant = 0.0f, mag = 0.0f;
      for (size_t k = 0; k < dim; ++k) {
        quant += err[k];
        mag += std::fabs(qrow[k]) + amp[k];
      }
      return quant + slack * mag;
    }
    case BatchKernel::kNegComplexDist: {
      // sqrt(dre^2 + dim^2 + eps) is 1-Lipschitz in each coordinate for any
      // eps >= 0, so per complex coordinate the error is at most
      // err_re + err_im; summing gives the same query-independent bound as
      // L1. The +1 term covers the sqrt's own rounding around small values.
      float quant = 0.0f, mag = 0.0f;
      for (size_t k = 0; k < dim; ++k) {
        quant += err[k];
        mag += std::fabs(qrow[k]) + amp[k];
      }
      return quant + slack * (mag + 1.0f);
    }
  }
  return 0.0f;
}

float TileScoreUpperBound(BatchKernel kind, const float* qrow, size_t dim,
                          const CandidateBlock& block, float eps) {
  const float* lo = block.q8_lo.data();
  const float* hi = block.q8_hi.data();
  const float* amp = block.q8_amp.data();
  const float slack = FpSlack(dim);
  switch (kind) {
    case BatchKernel::kDot: {
      // Per dim, q_k e_k is maximized at whichever envelope end the sign of
      // q_k points to; the sum of those maxima bounds every candidate's dot
      // (the candidates' coordinates are independent within the envelope,
      // so this is loose exactly when it is safe to be).
      float ub = block.q8_bias_amp, mag = 0.0f;
      for (size_t k = 0; k < dim; ++k) {
        ub += std::max(qrow[k] * lo[k], qrow[k] * hi[k]);
        mag += std::fabs(qrow[k]) * amp[k];
      }
      return ub + slack * (mag + block.q8_bias_amp);
    }
    case BatchKernel::kNegL1: {
      // |q_k - e_k| >= distance from q_k to [lo_k, hi_k], so the negated
      // sum of gaps bounds every candidate's score from above.
      float ub = 0.0f, mag = 0.0f;
      for (size_t k = 0; k < dim; ++k) {
        ub -= GapToRange(qrow[k], lo[k], hi[k]);
        mag += std::fabs(qrow[k]) + amp[k];
      }
      return ub + slack * mag;
    }
    case BatchKernel::kNegComplexDist: {
      // sqrt(dre^2 + dim^2 + eps) >= max(|dre|, |dim|) >= the larger of the
      // two per-coordinate gaps, for any eps >= 0.
      (void)eps;
      const size_t m = dim / 2;
      float ub = 0.0f, mag = 0.0f;
      for (size_t j = 0; j < m; ++j) {
        const float gr = GapToRange(qrow[j], lo[j], hi[j]);
        const float gi = GapToRange(qrow[m + j], lo[m + j], hi[m + j]);
        ub -= std::max(gr, gi);
      }
      for (size_t k = 0; k < dim; ++k) {
        mag += std::fabs(qrow[k]) + amp[k];
      }
      return ub + slack * (mag + 1.0f);
    }
  }
  return 0.0f;
}

void ScreenApproxBlock(const KgeModel& model, const Matrix& queries,
                       size_t num_queries, const CandidateBlock& block,
                       ScreenScratch* scratch) {
  KGEVAL_CHECK(block.prepared && block.quantized);
  const ScoreKernels& kern = ActiveScoreKernels();
  const size_t n = block.size();
  const size_t dim = queries.cols();
  KGEVAL_DCHECK(dim == block.gathered_t.rows());
  scratch->approx.resize(num_queries * n);
  switch (model.batch_kernel()) {
    case BatchKernel::kDot: {
      // Fold the dequantization scales into the query row, then quantize the
      // scaled row itself to 127 signed levels stored offset-binary (+128):
      // pass 1 becomes a pure u8 x s8 integer dot, identical on every ISA.
      // Padding quads of the tile are zero bytes, so the query's pad bytes
      // (128 = value 0) contribute nothing either way.
      const size_t dim_quads = (dim + 3) / 4;
      scratch->q8_queries.assign(num_queries * dim_quads * 4, 128);
      scratch->q8_query_scale.resize(num_queries);
      scratch->iapprox.resize(num_queries * n);
      const float* scale = block.q8_scale.data();
      for (size_t q = 0; q < num_queries; ++q) {
        const float* src = queries.Row(q);
        uint8_t* dst = scratch->q8_queries.data() + q * dim_quads * 4;
        float maxa = 0.0f;
        for (size_t k = 0; k < dim; ++k) {
          maxa = std::max(maxa, std::fabs(src[k] * scale[k]));
        }
        const float qs = maxa / 127.0f;
        scratch->q8_query_scale[q] = qs;
        if (maxa > 0.0f) {
          const float inv = 127.0f / maxa;
          for (size_t k = 0; k < dim; ++k) {
            dst[k] = static_cast<uint8_t>(
                QuantizeQueryLane(src[k] * scale[k], inv) + 128);
          }
        }
      }
      kern.dot_q8(scratch->q8_queries.data(), num_queries, dim_quads,
                  block.q8i.data(), n, scratch->iapprox.data());
      const float* bias = block.bias.empty() ? nullptr : block.bias.data();
      const int32_t* colsum = block.q8_colsum.data();
      for (size_t q = 0; q < num_queries; ++q) {
        const float qs = scratch->q8_query_scale[q];
        const int32_t* irow = scratch->iapprox.data() + q * n;
        float* row = scratch->approx.data() + q * n;
        for (size_t c = 0; c < n; ++c) {
          row[c] = qs * static_cast<float>(irow[c] - 128 * colsum[c]) +
                   (bias ? bias[c] : 0.0f);
        }
      }
      break;
    }
    case BatchKernel::kNegL1:
      kern.neg_l1_q8(queries.data(), num_queries, dim, block.q8.data(),
                     block.q8_scale.data(), n, scratch->approx.data());
      break;
    case BatchKernel::kNegComplexDist:
      kern.neg_complex_dist_q8(queries.data(), num_queries, dim,
                               block.q8.data(), block.q8_scale.data(), n,
                               model.batch_kernel_eps(),
                               scratch->approx.data());
      break;
  }
}

void ScreenRankBlock(const KgeModel& model, const int32_t* anchors,
                     const int32_t* truths, size_t num_queries,
                     int32_t relation, QueryDirection direction,
                     const CandidateBlock& block,
                     const std::vector<int32_t>* const* answers, TieBreak tie,
                     ScreenScratch* scratch, double* ranks,
                     ScreenStats* stats) {
  KGEVAL_CHECK(block.prepared && block.quantized);
  const BatchKernel kind = model.batch_kernel();
  const size_t n = block.size();

  model.BuildKernelQueries(anchors, num_queries, relation, direction,
                           &scratch->queries);
  const Matrix& queries = scratch->queries;
  const size_t dim = queries.cols();
  KGEVAL_DCHECK(dim == block.gathered_t.rows());

  // Exact truth scores: the same per-lane reference reduction the batched
  // kernels match bit-for-bit, so the band test compares against exactly
  // the truth score the unscreened path would use.
  scratch->truth_scores.resize(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    model.ScoreWithQuery(queries, q, &truths[q], 1,
                         &scratch->truth_scores[q]);
  }

  // Pass 1: every candidate through the int8 kernel.
  ScreenApproxBlock(model, queries, num_queries, block, scratch);

  // Pass 2: per query, re-score only the band that can still reach the
  // truth, then count higher/tied over it with the filtered-rank rules.
  for (size_t q = 0; q < num_queries; ++q) {
    const float bound = ScreenErrorBound(kind, queries.Row(q), dim, block);
    const float truth_score = scratch->truth_scores[q];
    const float* approx = scratch->approx.data() + q * n;
    scratch->band_ids.clear();
    for (size_t c = 0; c < n; ++c) {
      // Keep iff approx + bound >= truth: a skipped candidate has
      // exact <= approx + bound < truth, strictly below — it could not
      // have raised `higher` or `tied`, so the rank cannot move.
      if (approx[c] + bound >= truth_score) {
        scratch->band_ids.push_back(block.ids[c]);
      }
    }
    const size_t band = scratch->band_ids.size();
    scratch->band_scores.resize(band);
    model.ScoreWithQuery(queries, q, scratch->band_ids.data(), band,
                         scratch->band_scores.data());
    const std::vector<int32_t>& ans = *answers[q];
    int64_t higher = 0, tied = 0;
    for (size_t i = 0; i < band; ++i) {
      const int32_t c = scratch->band_ids[i];
      if (c == truths[q]) continue;
      if (std::binary_search(ans.begin(), ans.end(), c)) continue;
      const float s = scratch->band_scores[i];
      if (s > truth_score) {
        ++higher;
      } else if (s == truth_score) {
        ++tied;
      }
    }
    ranks[q] = RankFromCounts(higher, tied, tie);
    stats->rescored += static_cast<int64_t>(band);
  }
  stats->queries += static_cast<int64_t>(num_queries);
  stats->screened += static_cast<int64_t>(num_queries) * n;
}

}  // namespace kgeval

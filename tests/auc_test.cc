#include <gtest/gtest.h>

#include "eval/auc.h"
#include "models/trainer.h"
#include "recommenders/recommender.h"
#include "core/candidate_sets.h"
#include "synth/config.h"
#include "synth/generator.h"

namespace kgeval {
namespace {

TEST(AucTest, PerfectSeparation) {
  const AucResult r = ComputeAuc({3.0f, 4.0f, 5.0f}, {0.0f, 1.0f, 2.0f});
  EXPECT_DOUBLE_EQ(r.roc_auc, 1.0);
  EXPECT_DOUBLE_EQ(r.pr_auc, 1.0);
}

TEST(AucTest, PerfectInversion) {
  const AucResult r = ComputeAuc({0.0f, 1.0f}, {2.0f, 3.0f});
  EXPECT_DOUBLE_EQ(r.roc_auc, 0.0);
  EXPECT_LT(r.pr_auc, 0.6);
}

TEST(AucTest, AllTiedIsHalf) {
  const AucResult r = ComputeAuc({1.0f, 1.0f}, {1.0f, 1.0f, 1.0f});
  EXPECT_DOUBLE_EQ(r.roc_auc, 0.5);
}

TEST(AucTest, HandComputedMix) {
  // pos = {3, 1}, neg = {2, 0}. Pairs: (3>2),(3>0),(1<2),(1>0) -> 3/4.
  const AucResult r = ComputeAuc({3.0f, 1.0f}, {2.0f, 0.0f});
  EXPECT_DOUBLE_EQ(r.roc_auc, 0.75);
}

TEST(AucTest, EmptyInputsGiveZero) {
  EXPECT_DOUBLE_EQ(ComputeAuc({}, {1.0f}).roc_auc, 0.0);
  EXPECT_DOUBLE_EQ(ComputeAuc({1.0f}, {}).roc_auc, 0.0);
}

TEST(AucTest, RocAucMatchesBruteForce) {
  Rng rng(9);
  std::vector<float> pos, neg;
  for (int i = 0; i < 200; ++i) {
    pos.push_back(static_cast<float>(rng.NextGaussian()) + 0.5f);
    neg.push_back(static_cast<float>(rng.NextGaussian()));
  }
  double wins = 0.0;
  for (float p : pos) {
    for (float n : neg) {
      if (p > n) {
        wins += 1.0;
      } else if (p == n) {
        wins += 0.5;
      }
    }
  }
  const double brute = wins / (pos.size() * neg.size());
  EXPECT_NEAR(ComputeAuc(pos, neg).roc_auc, brute, 1e-9);
}

class TripleAucFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SynthConfig config;
    config.num_entities = 600;
    config.num_relations = 14;
    config.num_types = 12;
    config.num_train = 8000;
    config.num_valid = 400;
    config.num_test = 400;
    config.seed = 88;
    dataset_ = new Dataset(GenerateDataset(config).ValueOrDie().dataset);
    ModelOptions options;
    options.dim = 24;
    options.adam.learning_rate = 3e-3f;
    auto model = CreateModel(ModelType::kComplEx, dataset_->num_entities(),
                             dataset_->num_relations(), options)
                     .ValueOrDie();
    TrainerOptions trainer_options;
    trainer_options.epochs = 8;
    Trainer trainer(dataset_, trainer_options);
    ASSERT_TRUE(trainer.Train(model.get()).ok());
    model_ = model.release();
  }
  static void TearDownTestSuite() {
    delete model_;
    delete dataset_;
  }
  static Dataset* dataset_;
  static KgeModel* model_;
};

Dataset* TripleAucFixture::dataset_ = nullptr;
KgeModel* TripleAucFixture::model_ = nullptr;

TEST_F(TripleAucFixture, UniformNegativesAreNearlySolved) {
  // The CoDEx observation (Section 2): classification against random
  // negatives is easy for a trained model.
  const AucResult r = ComputeTripleClassificationAuc(
      *model_, *dataset_, Split::kTest, TripleAucOptions{});
  EXPECT_GT(r.roc_auc, 0.8);
}

TEST_F(TripleAucFixture, HardNegativesAreHarder) {
  const AucResult uniform = ComputeTripleClassificationAuc(
      *model_, *dataset_, Split::kTest, TripleAucOptions{});
  // Hard negatives from the recommender's range pools.
  const RecommenderScores scores =
      CreateRecommender(RecommenderType::kLwd)->Fit(*dataset_).ValueOrDie();
  const CandidateSets sets = BuildProbabilisticSets(scores, *dataset_);
  const AucResult hard = ComputeTripleClassificationAuc(
      *model_, *dataset_, Split::kTest, TripleAucOptions{}, &sets.sets);
  EXPECT_LT(hard.roc_auc, uniform.roc_auc);
  EXPECT_GT(hard.roc_auc, 0.4);  // Still informative, not broken.
}

TEST_F(TripleAucFixture, DeterministicGivenSeed) {
  const AucResult a = ComputeTripleClassificationAuc(
      *model_, *dataset_, Split::kTest, TripleAucOptions{});
  const AucResult b = ComputeTripleClassificationAuc(
      *model_, *dataset_, Split::kTest, TripleAucOptions{});
  EXPECT_DOUBLE_EQ(a.roc_auc, b.roc_auc);
  EXPECT_DOUBLE_EQ(a.pr_auc, b.pr_auc);
}

TEST_F(TripleAucFixture, CountsMatchOptions) {
  TripleAucOptions options;
  options.max_triples = 100;
  options.negatives_per_positive = 3;
  const AucResult r = ComputeTripleClassificationAuc(
      *model_, *dataset_, Split::kTest, options);
  EXPECT_EQ(r.num_positives, 100);
  EXPECT_EQ(r.num_negatives, 300);
}

}  // namespace
}  // namespace kgeval

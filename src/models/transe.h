#ifndef KGEVAL_MODELS_TRANSE_H_
#define KGEVAL_MODELS_TRANSE_H_

#include "la/matrix.h"
#include "models/kge_model.h"

namespace kgeval {

/// TransE (Bordes et al., 2013): score(h, r, t) = -|| h + r - t ||_1.
class TransE : public KgeModel {
 public:
  TransE(int32_t num_entities, int32_t num_relations, ModelOptions options);

  void ScoreCandidates(int32_t anchor, int32_t relation,
                       QueryDirection direction, const int32_t* candidates,
                       size_t n, float* out) const override;

  void UpdateTriple(int32_t head, int32_t relation, int32_t tail,
                    QueryDirection direction, float dscore) override;

  void CollectParameters(std::vector<NamedParameter>* out) override;

  const Matrix& entities() const { return entities_; }
  const Matrix& relations() const { return relations_; }

 private:
  Matrix entities_;
  Matrix relations_;
  AdamState entity_adam_;
  AdamState relation_adam_;
};

}  // namespace kgeval

#endif  // KGEVAL_MODELS_TRANSE_H_

#ifndef KGEVAL_GRAPH_STATS_H_
#define KGEVAL_GRAPH_STATS_H_

#include <cstdint>

#include "graph/dataset.h"

namespace kgeval {

/// The descriptive statistics reported in Table 4 plus the quantities the
/// sampling-complexity analysis of Table 3 needs.
struct DatasetStats {
  int64_t num_entities = 0;
  int64_t num_relations = 0;
  int64_t num_types = 0;
  int64_t num_type_assignments = 0;
  int64_t train_triples = 0;
  int64_t valid_triples = 0;
  int64_t test_triples = 0;
  /// Distinct (h,r) plus distinct (r,t) pairs in the split.
  int64_t train_hr_rt_pairs = 0;
  int64_t test_hr_rt_pairs = 0;
  /// Distinct relations occurring in the test split (Table 3's
  /// "(.,r,.)-instances").
  int64_t test_relations = 0;
};

/// Computes all statistics in one pass over the dataset.
DatasetStats ComputeDatasetStats(const Dataset& dataset);

/// Table 3 arithmetic: total negative samples needed during a test-set
/// evaluation at sampling fraction `fraction`.
///
/// A query-dependent candidate generator samples once per distinct (h,r) and
/// (r,t) pair; a relational recommender samples once per relation per
/// direction.
struct SamplingComplexity {
  int64_t query_pairs = 0;          // distinct (h,r)+(r,t) pairs in test
  int64_t query_samples = 0;        // pairs * fraction * |E|
  int64_t relation_instances = 0;   // distinct relations in test
  int64_t relation_samples = 0;     // 2 * relations * fraction * |E|
  double reduction_factor = 0.0;    // query_samples / relation_samples
};

SamplingComplexity ComputeSamplingComplexity(const Dataset& dataset,
                                             double fraction);

}  // namespace kgeval

#endif  // KGEVAL_GRAPH_STATS_H_

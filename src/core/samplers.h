#ifndef KGEVAL_CORE_SAMPLERS_H_
#define KGEVAL_CORE_SAMPLERS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/candidate_sets.h"
#include "graph/dataset.h"
#include "util/rng.h"

namespace kgeval {

/// The three candidate-sampling strategies compared throughout the paper:
/// uniform Random over all entities, Static (uniform over the thresholded
/// candidate sets, capped at the set size as in Theorem 1), and
/// Probabilistic (score-weighted, without replacement).
enum class SamplingStrategy { kRandom = 0, kStatic = 1, kProbabilistic = 2 };

const char* SamplingStrategyName(SamplingStrategy strategy);

/// The candidate pools drawn for one evaluation pass: one pool per
/// domain/range slot, drawn once (the framework's 2|R| samplings).
struct SampledCandidates {
  /// Per slot: sorted, deduplicated sampled entity ids (empty for slots that
  /// were not requested).
  std::vector<std::vector<int32_t>> pools;
  double sample_seconds = 0.0;
  int64_t total_sampled = 0;
};

/// Slots actually needed to evaluate `split` (both directions of every test
/// relation). Sampling only these is what turns the per-query sampling cost
/// into the per-relation cost of Table 3.
std::vector<int32_t> NeededSlots(const Dataset& dataset, Split split);

/// Draws candidate pools of size `n_s` for the requested slots.
/// - kRandom ignores `sets` (may be null) and samples uniformly from all
///   entities.
/// - kStatic requires `sets` (thresholded) and draws min(n_s, |set|)
///   uniformly within each set.
/// - kProbabilistic requires `sets` with weights and draws up to n_s
///   entities without replacement, proportional to the recommender scores.
SampledCandidates DrawCandidates(SamplingStrategy strategy,
                                 const CandidateSets* sets,
                                 int32_t num_entities, int64_t n_s,
                                 const std::vector<int32_t>& slots,
                                 int32_t num_slots_total, Rng* rng);

}  // namespace kgeval

#endif  // KGEVAL_CORE_SAMPLERS_H_

#include "graph/stats.h"

#include <cmath>
#include <unordered_set>

namespace kgeval {
namespace {

struct U64Hash {
  size_t operator()(uint64_t key) const {
    key ^= key >> 33;
    key *= 0xFF51AFD7ED558CCDULL;
    key ^= key >> 33;
    return static_cast<size_t>(key);
  }
};

int64_t CountDistinctPairs(const std::vector<Triple>& triples) {
  std::unordered_set<uint64_t, U64Hash> hr, rt;
  hr.reserve(triples.size() * 2);
  rt.reserve(triples.size() * 2);
  for (const Triple& t : triples) {
    hr.insert(PackPair(t.head, t.relation));
    rt.insert(PackPair(t.relation, t.tail));
  }
  return static_cast<int64_t>(hr.size()) + static_cast<int64_t>(rt.size());
}

int64_t CountDistinctRelations(const std::vector<Triple>& triples) {
  std::unordered_set<int32_t> rels;
  for (const Triple& t : triples) rels.insert(t.relation);
  return static_cast<int64_t>(rels.size());
}

}  // namespace

DatasetStats ComputeDatasetStats(const Dataset& dataset) {
  DatasetStats stats;
  stats.num_entities = dataset.num_entities();
  stats.num_relations = dataset.num_relations();
  stats.num_types = dataset.types().num_types();
  stats.num_type_assignments = dataset.types().num_assignments();
  stats.train_triples = static_cast<int64_t>(dataset.train().size());
  stats.valid_triples = static_cast<int64_t>(dataset.valid().size());
  stats.test_triples = static_cast<int64_t>(dataset.test().size());
  stats.train_hr_rt_pairs = CountDistinctPairs(dataset.train());
  stats.test_hr_rt_pairs = CountDistinctPairs(dataset.test());
  stats.test_relations = CountDistinctRelations(dataset.test());
  return stats;
}

SamplingComplexity ComputeSamplingComplexity(const Dataset& dataset,
                                             double fraction) {
  SamplingComplexity sc;
  const DatasetStats stats = ComputeDatasetStats(dataset);
  const double per_sampling =
      fraction * static_cast<double>(stats.num_entities);
  sc.query_pairs = stats.test_hr_rt_pairs;
  sc.query_samples = static_cast<int64_t>(
      std::llround(static_cast<double>(sc.query_pairs) * per_sampling));
  sc.relation_instances = stats.test_relations;
  // One head-set and one tail-set sampling per relation in the test split.
  sc.relation_samples = static_cast<int64_t>(
      std::llround(2.0 * static_cast<double>(sc.relation_instances) *
                   per_sampling));
  sc.reduction_factor =
      sc.relation_samples > 0
          ? static_cast<double>(sc.query_samples) /
                static_cast<double>(sc.relation_samples)
          : 0.0;
  return sc;
}

}  // namespace kgeval

#ifndef KGEVAL_LA_KERNELS_KERNEL_IMPLS_H_
#define KGEVAL_LA_KERNELS_KERNEL_IMPLS_H_

#include "la/kernels/kernels.h"

namespace kgeval {
namespace kernel_impls {

/// Per-ISA kernel tables for the registry. Each accessor returns nullptr
/// when its translation unit could not compile the implementation (wrong
/// architecture or a toolchain without the target attribute) — the registry
/// just skips nulls, so adding an ISA is one TU plus one line in kernels.cc.
/// "Compiled in" is independent of "supported on this CPU"; the registry
/// probes support separately before dispatching.

const ScoreKernels* Avx2Kernels();    // x86-64, 8-lane AVX2.
const ScoreKernels* Avx512Kernels();  // x86-64, 16-lane AVX-512F.
const ScoreKernels* NeonKernels();    // aarch64, 4-lane NEON.

/// True when the running CPU can execute the named table. Tables that are
/// baseline for their architecture (NEON on aarch64) always return true.
bool Avx2Supported();
bool Avx512Supported();

}  // namespace kernel_impls
}  // namespace kgeval

#endif  // KGEVAL_LA_KERNELS_KERNEL_IMPLS_H_

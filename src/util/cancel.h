#ifndef KGEVAL_UTIL_CANCEL_H_
#define KGEVAL_UTIL_CANCEL_H_

#include <atomic>

namespace kgeval {

/// A cooperative cancellation flag threaded through long-running work
/// (EvalSession sweeps, ScoreSlotBlocks chunk loops, the service's EVAL and
/// SWEEP commands). Producers call Cancel() once; workers poll cancelled()
/// at chunk boundaries and wind down instead of being torn down — no task
/// is ever orphaned, no lock is ever abandoned.
///
/// The token carries *why* it fired so the service can report
/// `deadline-exceeded` versus `cancelled` on the wire. The first Cancel()
/// wins: a deadline firing during a shutdown (or vice versa) keeps the
/// reason that arrived first.
///
/// Thread-safe: Cancel() and the readers may race freely. cancelled() is a
/// single relaxed load, cheap enough for per-block polling in scoring
/// loops.
class CancelToken {
 public:
  enum class Reason : int {
    kNone = 0,
    /// Generic abandonment: server shutdown, client gone.
    kCancelled = 1,
    /// A per-command deadline expired.
    kDeadline = 2,
  };

  /// Requests cancellation. Idempotent; the first reason sticks.
  void Cancel(Reason reason = Reason::kCancelled) {
    int expected = 0;
    reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire);
  }

  bool cancelled() const {
    return reason_.load(std::memory_order_relaxed) != 0;
  }

  Reason reason() const {
    return static_cast<Reason>(reason_.load(std::memory_order_acquire));
  }

 private:
  std::atomic<int> reason_{0};
};

}  // namespace kgeval

#endif  // KGEVAL_UTIL_CANCEL_H_

#include "recommenders/lwd.h"

#include "util/timer.h"

namespace kgeval {
namespace {

/// Keeps only columns [0, keep_cols) of `m` (drops the type columns from the
/// L-WD-T output so the score matrix is always |E| x 2|R|).
CsrMatrix SliceColumns(const CsrMatrix& m, int64_t keep_cols) {
  std::vector<int64_t> row_ptr(m.rows() + 1, 0);
  std::vector<int32_t> col_idx;
  std::vector<float> values;
  col_idx.reserve(m.nnz());
  values.reserve(m.nnz());
  for (int64_t r = 0; r < m.rows(); ++r) {
    for (int64_t k = m.RowBegin(r); k < m.RowEnd(r); ++k) {
      if (m.col_idx()[k] < keep_cols) {
        col_idx.push_back(m.col_idx()[k]);
        values.push_back(m.values()[k]);
      }
    }
    row_ptr[r + 1] = static_cast<int64_t>(col_idx.size());
  }
  return CsrMatrix(m.rows(), keep_cols, std::move(row_ptr),
                   std::move(col_idx), std::move(values));
}

}  // namespace

Result<RecommenderScores> LwdRecommender::Fit(const Dataset& dataset) {
  if (use_types_ && !dataset.has_types()) {
    return Status::FailedPrecondition("L-WD-T needs entity types");
  }
  WallTimer timer;
  const int32_t num_r = dataset.num_relations();
  const int64_t dr_cols = 2LL * num_r;
  const int64_t type_cols =
      use_types_ ? static_cast<int64_t>(dataset.types().num_types()) : 0;
  const int64_t total_cols = dr_cols + type_cols;

  // B: binary membership of entities in observed domains/ranges (+ types).
  CooBuilder builder(dataset.num_entities(), total_cols);
  builder.Reserve(dataset.train().size() * 2);
  for (const Triple& t : dataset.train()) {
    builder.Add(t.head, t.relation, 1.0f);
    builder.Add(t.tail, t.relation + num_r, 1.0f);
  }
  if (use_types_) {
    const TypeStore& types = dataset.types();
    for (int32_t e = 0; e < dataset.num_entities(); ++e) {
      for (int32_t type : types.TypesOf(e)) {
        builder.Add(e, dr_cols + type, 1.0f);
      }
    }
  }
  CsrMatrix b = builder.Build();
  for (float& v : b.mutable_values()) v = 1.0f;  // Counts -> membership.

  // W = B^T B, row-normalized: co-occurrence confidences between slots.
  CsrMatrix w = SpGemm(b.Transpose(), b);
  w.NormalizeRows();

  // X = B W: per-entity aggregated confidence of belonging to each slot.
  CsrMatrix x = SpGemm(b, w);
  if (type_cols > 0) x = SliceColumns(x, dr_cols);

  return internal::FinalizeScores(type(), std::move(x), timer.Seconds());
}

}  // namespace kgeval

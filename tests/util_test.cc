#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace kgeval {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, CodesHaveDistinctNames) {
  std::set<std::string> names;
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kNotFound, StatusCode::kAlreadyExists,
        StatusCode::kFailedPrecondition, StatusCode::kInternal,
        StatusCode::kUnimplemented, StatusCode::kIoError}) {
    names.insert(StatusCodeToString(code));
  }
  EXPECT_EQ(names.size(), 9u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ReturnNotOkTest, PropagatesError) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    KGEVAL_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(31);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(77);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(3);
  Rng child = parent.Fork();
  EXPECT_NE(parent.Next(), child.Next());
}

TEST(ZipfTest, FirstRankMostProbable) {
  ZipfSampler zipf(100, 1.0);
  Rng rng(13);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[99]);
}

TEST(ZipfTest, ZeroExponentIsUniformish) {
  ZipfSampler zipf(4, 0.0);
  Rng rng(29);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c, n / 4, n / 40);
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.239), "1.24");
}

TEST(StringUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(SplitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatWithCommas(-45678), "-45,678");
}

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TextTableTest, CsvEscapesCommas) {
  TextTable table({"k", "v"});
  table.AddRow({"a,b", "x\"y"});
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"x\"\"y\""), std::string::npos);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelForTest, CoversWholeRange) {
  std::vector<std::atomic<int>> hits(10000);
  ParallelFor(0, hits.size(), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(5, 5, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, ReversedRangeIsNoop) {
  bool called = false;
  ParallelFor(7, 3, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SmallRangeRunsInlineAsOneChunk) {
  // A range no larger than min_chunk must run as a single inline call on
  // the submitting thread (no pool round-trip).
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  size_t seen_lo = 99, seen_hi = 0;
  ParallelFor(
      2, 10,
      [&](size_t lo, size_t hi) {
        ++calls;
        seen_lo = lo;
        seen_hi = hi;
        EXPECT_EQ(std::this_thread::get_id(), caller);
      },
      /*min_chunk=*/8);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_lo, 2u);
  EXPECT_EQ(seen_hi, 10u);
}

TEST(ParallelForTest, ChunksRespectMinChunkAndPartitionRange) {
  std::mutex mutex;
  std::vector<std::pair<size_t, size_t>> chunks;
  ParallelFor(
      0, 10000,
      [&](size_t lo, size_t hi) {
        std::lock_guard<std::mutex> lock(mutex);
        chunks.push_back({lo, hi});
      },
      /*min_chunk=*/64);
  std::sort(chunks.begin(), chunks.end());
  size_t expected_lo = 0;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_EQ(lo, expected_lo);
    EXPECT_GT(hi, lo);
    expected_lo = hi;
  }
  EXPECT_EQ(expected_lo, 10000u);
  // Every chunk except possibly the last must carry at least min_chunk.
  for (size_t i = 0; i + 1 < chunks.size(); ++i) {
    EXPECT_GE(chunks[i].second - chunks[i].first, 64u);
  }
}

TEST(ParallelForTest, NestedCallsRunInlineInsteadOfDeadlocking) {
  // Regression: a ParallelFor issued from inside a pool worker used to
  // submit chunks to the pool and block on them — with every worker
  // occupied by outer chunks, nobody could drain the inner tasks and the
  // call deadlocked. Nested calls must now run inline on the worker.
  std::atomic<int> inner_total{0};
  std::atomic<int> inline_calls{0};
  ParallelFor(
      0, 64,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          const std::thread::id outer_thread = std::this_thread::get_id();
          ParallelFor(
              0, 100,
              [&](size_t inner_lo, size_t inner_hi) {
                inner_total.fetch_add(static_cast<int>(inner_hi - inner_lo));
                if (std::this_thread::get_id() == outer_thread) {
                  inline_calls.fetch_add(1);
                }
              },
              /*min_chunk=*/1);
        }
      },
      /*min_chunk=*/1);
  EXPECT_EQ(inner_total.load(), 64 * 100);
  // Inner calls that landed on a pool worker must have stayed there (on a
  // single-thread pool everything already ran inline on this thread).
  if (GlobalThreadPool()->num_threads() > 1) {
    EXPECT_GT(inline_calls.load(), 0);
  }
}

TEST(ParallelForTest, CallFromSubmittedTaskRunsInline) {
  // Same hazard via raw Submit: a task on the global pool calling
  // ParallelFor must not wait on the pool it is running on.
  ThreadPool* pool = GlobalThreadPool();
  std::atomic<int> total{0};
  for (int t = 0; t < 64; ++t) {
    pool->Submit([&total] {
      ParallelFor(
          0, 50,
          [&total](size_t lo, size_t hi) {
            total.fetch_add(static_cast<int>(hi - lo));
          },
          /*min_chunk=*/1);
    });
  }
  pool->Wait();
  EXPECT_EQ(total.load(), 64 * 50);
}

TEST(ThreadPoolTest, InThreadPoolWorkerFlag) {
  EXPECT_FALSE(InThreadPoolWorker());
  ThreadPool pool(2);
  std::atomic<int> in_worker{0};
  pool.Submit([&in_worker] {
    if (InThreadPoolWorker()) in_worker.fetch_add(1);
  });
  pool.Wait();
  EXPECT_EQ(in_worker.load(), 1);
  EXPECT_FALSE(InThreadPoolWorker());
}

TEST(ParallelForTest, ConcurrentCallsDoNotInterfere) {
  // Two threads issue independent ParallelFor calls against the shared
  // global pool; each must wait only for its own chunks.
  std::atomic<int> total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&total] {
      for (int round = 0; round < 20; ++round) {
        std::atomic<int> local{0};
        ParallelFor(
            0, 2000,
            [&](size_t lo, size_t hi) {
              local.fetch_add(static_cast<int>(hi - lo));
            },
            /*min_chunk=*/16);
        // The call returned, so exactly its own range must be done.
        EXPECT_EQ(local.load(), 2000);
        total.fetch_add(local.load());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(total.load(), 4 * 20 * 2000);
}

TEST(ThreadPoolTest, ConcurrentSubmitAndWaitDrains) {
  // Hammer Submit from several producers while another thread Waits; Wait
  // must return only once the queue is drained, and every task must run
  // exactly once.
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &counter] {
      for (int i = 0; i < 250; ++i) {
        pool.Submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (auto& producer : producers) producer.join();
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
  // A second Wait on an idle pool returns immediately.
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, SingleThreadPoolStillRunsTasks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace kgeval

#include "graph/dataset.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace kgeval {

Dataset::Dataset(std::string name, int32_t num_entities, int32_t num_relations,
                 std::vector<Triple> train, std::vector<Triple> valid,
                 std::vector<Triple> test, TypeStore types)
    : Dataset(std::move(name), num_entities, num_relations,
              /*num_timestamps=*/0, std::move(train), std::move(valid),
              std::move(test), std::move(types)) {}

Dataset::Dataset(std::string name, int32_t num_entities, int32_t num_relations,
                 int32_t num_timestamps, std::vector<Triple> train,
                 std::vector<Triple> valid, std::vector<Triple> test,
                 TypeStore types)
    : name_(std::move(name)),
      num_entities_(num_entities),
      num_relations_(num_relations),
      num_timestamps_(num_timestamps),
      train_(std::move(train)),
      valid_(std::move(valid)),
      test_(std::move(test)),
      types_(std::move(types)) {
  KGEVAL_CHECK(num_timestamps_ >= 0);
  // Static datasets carry time 0 on every triple; temporal ones must stay
  // inside the declared vocabulary.
  const int32_t time_bound = num_timestamps_ > 0 ? num_timestamps_ : 1;
  for (const auto* split : {&train_, &valid_, &test_}) {
    for (const Triple& t : *split) {
      KGEVAL_CHECK(t.head >= 0 && t.head < num_entities_);
      KGEVAL_CHECK(t.tail >= 0 && t.tail < num_entities_);
      KGEVAL_CHECK(t.relation >= 0 && t.relation < num_relations_);
      KGEVAL_CHECK(t.time >= 0 && t.time < time_bound);
    }
  }
}

std::string Dataset::EntityLabel(int32_t e) const {
  if (e >= 0 && e < static_cast<int32_t>(entity_labels_.size())) {
    return entity_labels_[e];
  }
  return StrFormat("E%d", e);
}

std::string Dataset::RelationLabel(int32_t r) const {
  if (r >= 0 && r < static_cast<int32_t>(relation_labels_.size())) {
    return relation_labels_[r];
  }
  return StrFormat("R%d", r);
}

std::string Dataset::TimestampLabel(int32_t t) const {
  if (t >= 0 && t < static_cast<int32_t>(timestamp_labels_.size())) {
    return timestamp_labels_[t];
  }
  return StrFormat("T%d", t);
}

FilterIndex::FilterIndex(const Dataset& dataset) {
  for (Split s : {Split::kTrain, Split::kValid, Split::kTest}) {
    for (const Triple& t : dataset.split(s)) {
      tails_[PackPair(t.head, t.relation)].push_back(t.tail);
      heads_[PackPair(t.relation, t.tail)].push_back(t.head);
    }
  }
  auto sort_dedup = [](std::vector<int32_t>* v) {
    std::sort(v->begin(), v->end());
    v->erase(std::unique(v->begin(), v->end()), v->end());
  };
  for (auto& [key, v] : tails_) sort_dedup(&v);
  for (auto& [key, v] : heads_) sort_dedup(&v);
}

const std::vector<int32_t>* FilterIndex::TailsFor(int32_t head,
                                                  int32_t relation) const {
  auto it = tails_.find(PackPair(head, relation));
  return it == tails_.end() ? nullptr : &it->second;
}

const std::vector<int32_t>* FilterIndex::HeadsFor(int32_t relation,
                                                  int32_t tail) const {
  auto it = heads_.find(PackPair(relation, tail));
  return it == heads_.end() ? nullptr : &it->second;
}

bool FilterIndex::ContainsTail(int32_t head, int32_t relation,
                               int32_t tail) const {
  const auto* v = TailsFor(head, relation);
  return v != nullptr && std::binary_search(v->begin(), v->end(), tail);
}

bool FilterIndex::ContainsHead(int32_t head, int32_t relation,
                               int32_t tail) const {
  const auto* v = HeadsFor(relation, tail);
  return v != nullptr && std::binary_search(v->begin(), v->end(), head);
}

const std::vector<int32_t>* FilterIndex::AnswersFor(
    const Triple& triple, QueryDirection direction) const {
  if (direction == QueryDirection::kTail) {
    return TailsFor(triple.head, triple.relation);
  }
  return HeadsFor(triple.relation, triple.tail);
}

TemporalFilterIndex::TemporalFilterIndex(const Dataset& dataset) {
  for (Split s : {Split::kTrain, Split::kValid, Split::kTest}) {
    for (const Triple& t : dataset.split(s)) {
      tails_[Key{t.head, t.relation, t.time}].push_back(t.tail);
      heads_[Key{t.relation, t.tail, t.time}].push_back(t.head);
    }
  }
  auto sort_dedup = [](std::vector<int32_t>* v) {
    std::sort(v->begin(), v->end());
    v->erase(std::unique(v->begin(), v->end()), v->end());
  };
  for (auto& [key, v] : tails_) sort_dedup(&v);
  for (auto& [key, v] : heads_) sort_dedup(&v);
}

const std::vector<int32_t>* TemporalFilterIndex::TailsAt(
    int32_t head, int32_t relation, int32_t time) const {
  auto it = tails_.find(Key{head, relation, time});
  return it == tails_.end() ? nullptr : &it->second;
}

const std::vector<int32_t>* TemporalFilterIndex::HeadsAt(
    int32_t relation, int32_t tail, int32_t time) const {
  auto it = heads_.find(Key{relation, tail, time});
  return it == heads_.end() ? nullptr : &it->second;
}

const std::vector<int32_t>* TemporalFilterIndex::AnswersFor(
    const Triple& triple, QueryDirection direction) const {
  if (direction == QueryDirection::kTail) {
    return TailsAt(triple.head, triple.relation, triple.time);
  }
  return HeadsAt(triple.relation, triple.tail, triple.time);
}

ObservedSets::ObservedSets(const Dataset& dataset,
                           const std::vector<Split>& splits)
    : domains_(dataset.num_relations()), ranges_(dataset.num_relations()) {
  for (Split s : splits) {
    for (const Triple& t : dataset.split(s)) {
      domains_[t.relation].push_back(t.head);
      ranges_[t.relation].push_back(t.tail);
    }
  }
  auto sort_dedup = [](std::vector<int32_t>* v) {
    std::sort(v->begin(), v->end());
    v->erase(std::unique(v->begin(), v->end()), v->end());
  };
  for (auto& v : domains_) sort_dedup(&v);
  for (auto& v : ranges_) sort_dedup(&v);
}

const std::vector<int32_t>& ObservedSets::Set(int32_t dr_index) const {
  const int32_t num_r = num_relations();
  KGEVAL_DCHECK(dr_index >= 0 && dr_index < 2 * num_r);
  if (dr_index < num_r) return domains_[dr_index];
  return ranges_[dr_index - num_r];
}

bool ObservedSets::InDomain(int32_t relation, int32_t entity) const {
  const auto& v = domains_[relation];
  return std::binary_search(v.begin(), v.end(), entity);
}

bool ObservedSets::InRange(int32_t relation, int32_t entity) const {
  const auto& v = ranges_[relation];
  return std::binary_search(v.begin(), v.end(), entity);
}

}  // namespace kgeval

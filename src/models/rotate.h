#ifndef KGEVAL_MODELS_ROTATE_H_
#define KGEVAL_MODELS_ROTATE_H_

#include "la/matrix.h"
#include "models/kge_model.h"

namespace kgeval {

/// RotatE (Sun et al., 2019): entities in C^{d/2} (first half real parts,
/// second half imaginary), relations are unit rotations parameterized by a
/// phase vector theta. score(h, r, t) = -sum_j | h_j * e^{i theta_j} - t_j |.
class RotatE : public KgeModel {
 public:
  RotatE(int32_t num_entities, int32_t num_relations, ModelOptions options);

  BatchKernel batch_kernel() const override {
    return BatchKernel::kNegComplexDist;
  }
  float batch_kernel_eps() const override;
  const Matrix* candidate_embeddings() const override { return &entities_; }

  /// Rotates each anchor by the relation's phases (conjugated for head
  /// queries), making the score a plain complex distance to the candidate
  /// (the transposed tile's top/bottom halves are the re/im planes). The
  /// cos/sin of the shared phase vector is computed once per call instead
  /// of once per query — RotatE's biggest batching win.
  void BuildKernelQueries(const int32_t* anchors, size_t num_queries,
                          int32_t relation, QueryDirection direction,
                          Matrix* queries) const override;

  void UpdateTriple(int32_t head, int32_t relation, int32_t tail,
                    QueryDirection direction, float dscore) override;

  void CollectParameters(std::vector<NamedParameter>* out) override;

 private:
  int32_t half_;     // d / 2 complex coordinates.
  Matrix entities_;  // |E| x d.
  Matrix phases_;    // |R| x d/2.
  AdamState entity_adam_;
  AdamState phase_adam_;
};

}  // namespace kgeval

#endif  // KGEVAL_MODELS_ROTATE_H_

#ifndef KGEVAL_BENCH_BENCH_COMMON_H_
#define KGEVAL_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>

#include "models/kge_model.h"
#include "models/trainer.h"
#include "synth/config.h"
#include "synth/generator.h"

namespace kgeval {
namespace bench {

/// Flags shared by every bench binary:
///   --paper-scale     use Table 4 dataset sizes instead of the scaled ones
///   --fast            trim epochs/repetitions for a smoke run
///   --epochs=N        override the training epoch count
///   --dataset=NAME    restrict multi-dataset benches to one preset
///   --json            also write the bench's BENCH_<name>.json (machine-
///                     readable results; only benches that support it)
///   --half-width=X    adaptive evaluation's target confidence half-width
///                     (benches with an adaptive mode; default 0.01)
///   --threads=N       worker-pool size (default: KGEVAL_THREADS env var,
///                     then hardware_concurrency) — makes bench numbers
///                     comparable across machines and CI runners
///   --from-disk       checkpoint-streaming mode (benches that support it):
///                     train once writing per-epoch snapshots, then sweep
///                     the files with EstimateCheckpoints instead of
///                     estimating models resident in memory
struct BenchArgs {
  bool paper_scale = false;
  bool fast = false;
  int32_t epochs = -1;
  std::string only_dataset;
  bool json = false;
  double half_width = 0.01;
  int32_t threads = 0;
  bool from_disk = false;
};

/// Parses the shared flags. Applies --threads (or its KGEVAL_THREADS
/// fallback) to the global worker pool immediately, so call this before any
/// parallel work.
BenchArgs ParseArgs(int argc, char** argv);

/// Generates the named preset at the scale selected by `args`.
SynthOutput LoadPreset(const std::string& name, const BenchArgs& args);

/// A model + training recipe used by the benches.
struct TrainSpec {
  ModelType type = ModelType::kComplEx;
  int32_t dim = 32;
  float learning_rate = 3e-3f;
  int32_t epochs = 12;
  int32_t negatives = 8;
  uint64_t seed = 11;
};

/// Trains a fresh model on dataset.train(). Dies on invalid specs (benches
/// are not recoverable anyway).
std::unique_ptr<KgeModel> TrainModel(const Dataset& dataset,
                                     const TrainSpec& spec);

/// Fresh pid-suffixed scratch directory under the system temp dir (any
/// previous contents removed): concurrent bench runs on one machine —
/// parallel CI jobs, say — must not clobber each other's files. Callers
/// remove it when done.
std::string MakeScratchDir(const std::string& name);

/// Section header: "==== title ====".
void PrintHeader(const std::string& title);

/// Wrapped free-text note under a table.
void PrintNote(const std::string& text);

/// Compact numeric formatting for table cells.
std::string F(double value, int digits = 3);
std::string Pct(double fraction, int digits = 1);

}  // namespace bench
}  // namespace kgeval

#endif  // KGEVAL_BENCH_BENCH_COMMON_H_

// Fixture tree: fully consistent with its docs — zero findings.
const char* const kFaultPoints[] = {
    "io.documented.probe",
};

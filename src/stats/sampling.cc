#include "stats/sampling.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <unordered_set>

#include "util/logging.h"

namespace kgeval {

std::vector<int32_t> SampleWithoutReplacement(int64_t n, int64_t k, Rng* rng) {
  KGEVAL_CHECK_GE(n, 0);
  if (k >= n) {
    std::vector<int32_t> all(n);
    std::iota(all.begin(), all.end(), 0);
    return all;
  }
  std::vector<int32_t> out;
  out.reserve(k);
  std::unordered_set<int32_t> chosen;
  chosen.reserve(static_cast<size_t>(k) * 2);
  // Floyd's algorithm: for j in [n-k, n), draw t in [0, j]; take t unless
  // already chosen, in which case take j.
  for (int64_t j = n - k; j < n; ++j) {
    const int32_t t = static_cast<int32_t>(rng->NextBounded(j + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(static_cast<int32_t>(j));
      out.push_back(static_cast<int32_t>(j));
    }
  }
  return out;
}

std::vector<int32_t> SampleFrom(const std::vector<int32_t>& population,
                                int64_t k, Rng* rng) {
  if (k >= static_cast<int64_t>(population.size())) return population;
  std::vector<int32_t> idx =
      SampleWithoutReplacement(static_cast<int64_t>(population.size()), k, rng);
  std::vector<int32_t> out;
  out.reserve(idx.size());
  for (int32_t i : idx) out.push_back(population[i]);
  return out;
}

std::vector<int32_t> WeightedSampleWithoutReplacement(
    const std::vector<int32_t>& items, const std::vector<float>& weights,
    int64_t k, Rng* rng) {
  KGEVAL_CHECK_EQ(items.size(), weights.size());
  if (k <= 0) return {};
  // Efraimidis–Spirakis: key_i = u^(1/w_i); keep the k largest keys.
  // Implemented with a min-heap of (key, index).
  using HeapEntry = std::pair<double, int32_t>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;
  for (size_t i = 0; i < items.size(); ++i) {
    const double w = static_cast<double>(weights[i]);
    if (w <= 0.0) continue;
    double u = rng->NextDouble();
    if (u <= 0.0) u = 1e-300;
    const double key = std::log(u) / w;  // log-space u^(1/w) comparison.
    if (static_cast<int64_t>(heap.size()) < k) {
      heap.emplace(key, items[i]);
    } else if (key > heap.top().first) {
      heap.pop();
      heap.emplace(key, items[i]);
    }
  }
  std::vector<int32_t> out;
  out.reserve(heap.size());
  while (!heap.empty()) {
    out.push_back(heap.top().second);
    heap.pop();
  }
  return out;
}

}  // namespace kgeval

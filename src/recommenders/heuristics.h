#ifndef KGEVAL_RECOMMENDERS_HEURISTICS_H_
#define KGEVAL_RECOMMENDERS_HEURISTICS_H_

#include "recommenders/recommender.h"

namespace kgeval {

/// PseudoTyped (PT): an entity scores 1 for a domain/range iff it was seen
/// in that slot in the train split. Cheap, but by construction blind to
/// unseen candidates — the limitation Section 2 dwells on.
class PtRecommender : public RelationRecommender {
 public:
  RecommenderType type() const override { return RecommenderType::kPt; }
  Result<RecommenderScores> Fit(const Dataset& dataset) override;
};

/// Degree-Based Heuristic (DBH, Chen et al. 2022): the score is the number
/// of times the entity occupied the slot in train. With `use_types`, the
/// DBH-T extension of Section 3.2 adds, for every type t observed in a
/// slot, +1 to every entity of type t — which is what lets it propose
/// candidates PT has never seen.
class DbhRecommender : public RelationRecommender {
 public:
  explicit DbhRecommender(bool use_types) : use_types_(use_types) {}
  RecommenderType type() const override {
    return use_types_ ? RecommenderType::kDbhT : RecommenderType::kDbh;
  }
  bool requires_types() const override { return use_types_; }
  Result<RecommenderScores> Fit(const Dataset& dataset) override;

 private:
  bool use_types_;
};

/// OntoSim (Section 3.2): every entity of type t belongs to a slot if *any*
/// entity of type t was observed there. Binary scores; recall-oriented and
/// deliberately broad (low reduction rate).
class OntoSimRecommender : public RelationRecommender {
 public:
  RecommenderType type() const override { return RecommenderType::kOntoSim; }
  bool requires_types() const override { return true; }
  Result<RecommenderScores> Fit(const Dataset& dataset) override;
};

}  // namespace kgeval

#endif  // KGEVAL_RECOMMENDERS_HEURISTICS_H_

#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace kgeval {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void DieOnBadResult(const Status& status) {
  std::fprintf(stderr, "FATAL: ValueOrDie on errored Result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace kgeval

#include "models/trainer.h"

#include <atomic>
#include <cmath>
#include <filesystem>
#include <system_error>
#include <vector>

#include "la/vector_ops.h"
#include "models/checkpoint.h"
#include "sched/task_group.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace kgeval {
namespace {

/// Processes triples [lo, hi) of the shuffled order; returns the summed loss.
double RunChunk(const Dataset& dataset, const std::vector<int32_t>& order,
                size_t lo, size_t hi, const TrainerOptions& options,
                uint64_t seed, KgeModel* model) {
  Rng rng(seed);
  const int32_t num_negatives = options.negatives_per_positive;
  const int32_t num_entities = dataset.num_entities();
  std::vector<int32_t> candidates(1 + num_negatives);
  std::vector<float> scores(1 + num_negatives);
  double loss = 0.0;
  for (size_t idx = lo; idx < hi; ++idx) {
    const Triple& pos = dataset.train()[order[idx]];
    // The kernel relation id: the plain relation for static models, the
    // virtual (relation, time) id for time-aware ones. Corruptions keep
    // the positive's relation and timestamp, so one id serves them all.
    const int32_t kernel_relation = model->KernelRelation(pos);
    for (QueryDirection dir : {QueryDirection::kTail, QueryDirection::kHead}) {
      const bool tail_dir = dir == QueryDirection::kTail;
      const int32_t anchor = tail_dir ? pos.head : pos.tail;
      const int32_t truth = tail_dir ? pos.tail : pos.head;
      candidates[0] = truth;
      for (int32_t k = 0; k < num_negatives; ++k) {
        int32_t neg = -1;
        if (options.negative_sampler) {
          neg = options.negative_sampler(pos.relation, dir, &rng);
        }
        if (neg < 0) {
          neg = static_cast<int32_t>(rng.NextBounded(num_entities));
        }
        if (neg == truth) {
          neg = static_cast<int32_t>((neg + 1) % num_entities);
        }
        candidates[1 + k] = neg;
      }
      model->ScoreCandidates(anchor, kernel_relation, dir, candidates.data(),
                             candidates.size(), scores.data());
      // Positive term.
      loss -= LogSigmoid(scores[0]);
      const float dpos = Sigmoid(scores[0]) - 1.0f;
      model->UpdateTriple(pos.head, kernel_relation, pos.tail, dir, dpos);
      // Negative terms.
      for (int32_t k = 0; k < num_negatives; ++k) {
        const float s_neg = scores[1 + k];
        loss -= LogSigmoid(-s_neg);
        const float dneg = Sigmoid(s_neg);
        Triple neg = pos;
        if (tail_dir) {
          neg.tail = candidates[1 + k];
        } else {
          neg.head = candidates[1 + k];
        }
        model->UpdateTriple(neg.head, kernel_relation, neg.tail, dir, dneg);
      }
    }
  }
  return loss;
}

}  // namespace

Trainer::Trainer(const Dataset* dataset, TrainerOptions options)
    : dataset_(dataset), options_(options) {
  KGEVAL_CHECK(dataset_ != nullptr);
  KGEVAL_CHECK_GT(options_.negatives_per_positive, 0);
}

double Trainer::TrainEpoch(KgeModel* model, int32_t epoch) {
  const size_t n = dataset_->train().size();
  if (n == 0) return 0.0;
  std::vector<int32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<int32_t>(i);
  Rng shuffle_rng(options_.seed + 0x9E37 * static_cast<uint64_t>(epoch + 1));
  shuffle_rng.Shuffle(&order);

  size_t threads = options_.num_threads > 0
                       ? static_cast<size_t>(options_.num_threads)
                       : GlobalThreadPool()->num_threads();
  threads = std::min(threads, model->max_training_threads());
  threads = std::max<size_t>(1, std::min(threads, n));
  const size_t num_chunks = threads;
  const size_t chunk = (n + num_chunks - 1) / num_chunks;

  // Guards the scalar loss reduction across chunk tasks. The
  // accumulation order is chunk-completion order — total_loss is
  // reported, never fed back into training, so this is the one
  // float sum in the repo allowed to be non-deterministic.
  Mutex loss_mutex;
  double total_loss = 0.0;
  if (num_chunks == 1) {
    total_loss = RunChunk(*dataset_, order, 0, n, options_,
                          options_.seed ^ (epoch * 0x517CC1B7ULL), model);
  } else {
    // One TaskGroup per epoch: the epoch waits only on its own chunks, so
    // training can share the worker pool with concurrent evaluations (a
    // monitoring session estimating the previous checkpoint, say).
    TaskGroup group;
    for (size_t lo = 0; lo < n; lo += chunk) {
      const size_t hi = std::min(n, lo + chunk);
      const uint64_t seed = options_.seed ^ (epoch * 0x517CC1B7ULL) ^
                            (lo * 0x2545F4914F6CDD1DULL);
      group.Submit([&, lo, hi, seed] {
        const double loss =
            RunChunk(*dataset_, order, lo, hi, options_, seed, model);
        MutexLock lock(&loss_mutex);
        total_loss += loss;
      });
    }
    group.Wait();
  }
  return total_loss / static_cast<double>(n);
}

std::string CheckpointPath(const std::string& checkpoint_dir, int32_t epoch,
                           int32_t total_epochs) {
  // Width follows the run's largest epoch index, floored at the historical
  // 5 so existing sub-100000-epoch layouts keep their file names.
  int32_t width = 5;
  for (int64_t largest = static_cast<int64_t>(total_epochs) - 1;
       largest >= 100000; largest /= 10) {
    ++width;
  }
  return StrFormat("%s/epoch_%0*d.ckpt", checkpoint_dir.c_str(), width,
                   epoch);
}

Status Trainer::Train(KgeModel* model, const EpochCallback& callback) {
  if (model == nullptr) return Status::InvalidArgument("model is null");
  if (!options_.checkpoint_dir.empty()) {
    if (options_.checkpoint_every <= 0) {
      return Status::InvalidArgument("checkpoint_every must be positive");
    }
    std::error_code ec;
    std::filesystem::create_directories(options_.checkpoint_dir, ec);
    if (ec) {
      return Status::IoError(StrFormat("cannot create checkpoint dir %s: %s",
                                       options_.checkpoint_dir.c_str(),
                                       ec.message().c_str()));
    }
  }
  for (int32_t epoch = 0; epoch < options_.epochs; ++epoch) {
    const double loss = TrainEpoch(model, epoch);
    KGEVAL_LOG(Debug) << model->name() << " epoch " << epoch
                      << " loss=" << loss;
    // The final epoch is always snapshotted regardless of cadence: it is
    // the model training actually produced, and post-hoc selection over
    // the checkpoint directory must be able to see it.
    if (!options_.checkpoint_dir.empty() &&
        (epoch % options_.checkpoint_every == 0 ||
         epoch == options_.epochs - 1)) {
      // Written to a .tmp name and renamed into place: a WATCHer polling
      // the directory must never observe a half-written .ckpt file
      // (rename within one directory is atomic on POSIX filesystems).
      const std::string path =
          CheckpointPath(options_.checkpoint_dir, epoch, options_.epochs);
      const std::string tmp = path + ".tmp";
      KGEVAL_RETURN_NOT_OK(SaveModel(model, tmp));
      std::error_code rename_ec;
      std::filesystem::rename(tmp, path, rename_ec);
      if (rename_ec) {
        return Status::IoError(StrFormat("cannot rename %s to %s: %s",
                                         tmp.c_str(), path.c_str(),
                                         rename_ec.message().c_str()));
      }
    }
    if (callback) callback(epoch, *model);
  }
  return Status::OK();
}

}  // namespace kgeval

// KG quality audit: uses the TripleClassifier (the near-closed-world screen
// built from L-WD's zero scores — the paper's Section 7 triplet-classifier
// suggestion) to hunt for corrupted facts in a noisy KG, and scores the
// screen against the generator's ground-truth noise flags.
//
// Usage: kg_quality_audit [preset] [noise_rate]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_set>

#include "core/triple_classifier.h"
#include "recommenders/recommender.h"
#include "synth/config.h"
#include "synth/generator.h"

int main(int argc, char** argv) {
  using namespace kgeval;
  // Larger presets give L-WD a sparser co-occurrence graph and therefore a
  // sharper screen (small KGs with heavy noise are fully bridged).
  const std::string preset = argc > 1 ? argv[1] : "codex-l";
  const double noise_rate = argc > 2 ? std::atof(argv[2]) : 0.005;

  SynthConfig config = GetPreset(preset, PresetScale::kScaled).ValueOrDie();
  config.noise_rate = noise_rate;
  const SynthOutput synth = GenerateDataset(config).ValueOrDie();
  const Dataset& dataset = synth.dataset;
  std::printf("dataset %s with %.1f%% injected noise; %zu noisy test "
              "triples\n\n",
              preset.c_str(), 100.0 * noise_rate,
              synth.noisy_test_indices.size());

  auto recommender = CreateRecommender(RecommenderType::kLwd);
  const RecommenderScores scores = recommender->Fit(dataset).ValueOrDie();
  const TripleClassifier classifier(&scores);

  const std::unordered_set<int64_t> noisy(synth.noisy_test_indices.begin(),
                                          synth.noisy_test_indices.end());
  int64_t flagged = 0, flagged_noisy = 0, flagged_clean = 0;
  for (size_t i = 0; i < dataset.test().size(); ++i) {
    const Triple& t = dataset.test()[i];
    const TripleVerdict verdict = classifier.Classify(t);
    if (verdict == TripleVerdict::kPlausible) continue;
    ++flagged;
    const bool is_noise = noisy.count(static_cast<int64_t>(i)) > 0;
    if (is_noise) {
      ++flagged_noisy;
    } else {
      ++flagged_clean;
    }
    if (flagged <= 12) {
      std::printf("  %-18s (%s, %s, %s)%s\n", TripleVerdictName(verdict),
                  dataset.EntityLabel(t.head).c_str(),
                  dataset.RelationLabel(t.relation).c_str(),
                  dataset.EntityLabel(t.tail).c_str(),
                  is_noise ? "  [injected noise]" : "  [clean]");
    }
  }
  const double precision =
      flagged > 0 ? static_cast<double>(flagged_noisy) /
                        static_cast<double>(flagged)
                  : 0.0;
  const double recall =
      noisy.empty() ? 0.0
                    : static_cast<double>(flagged_noisy) /
                          static_cast<double>(noisy.size());
  std::printf(
      "\nscreen results on the test split:\n"
      "  flagged %lld triples (%lld injected noise, %lld clean)\n"
      "  precision vs ground-truth noise: %.3f\n"
      "  recall of injected noise:        %.3f\n",
      static_cast<long long>(flagged),
      static_cast<long long>(flagged_noisy),
      static_cast<long long>(flagged_clean), precision, recall);
  std::printf(
      "\nreading: recall is bounded by how far a noise triple strays from "
      "the type structure — corruptions that land inside a compatible slot "
      "are invisible to a structural screen (and to the paper's Table 10).\n");
  return 0;
}

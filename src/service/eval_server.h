#ifndef KGEVAL_SERVICE_EVAL_SERVER_H_
#define KGEVAL_SERVICE_EVAL_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>

#include "net/connection.h"
#include "net/event_loop.h"
#include "service/eval_service.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace kgeval {

/// The kgeval evaluation service over TCP: one event-loop thread owning
/// every socket, a small executor pool running commands, and the shared
/// worker pool underneath doing the actual scoring. docs/PROTOCOL.md is
/// the wire contract; docs/ARCHITECTURE.md places this layer in the stack.
///
/// Division of labor:
///  - Loop thread: accept, read, line framing, reply ordering, flushes.
///    It never evaluates anything, so the server stays responsive (PING,
///    STATS, new connections) while hours of SWEEP are in flight.
///  - Executor threads: one in-flight command per connection at most, so
///    pipelined requests on one connection answer strictly in request
///    order while different connections' commands run concurrently. The
///    evaluation inside fans out to the shared worker pool through the
///    scheduler's TaskGroups exactly like any other job.
///  - Streaming replies (SWEEP/WATCH ITEM lines) go through the
///    connection's blocking send: above the high-water mark the *job*
///    waits, never the loop.
class EvalServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    /// 0 binds an ephemeral port; read the real one from port().
    uint16_t port = 0;
    /// 0 = max(2, worker-pool width). The cap on concurrently executing
    /// commands across all connections.
    size_t executor_threads = 0;
    /// Load-shedding cap on the executor backlog: a blocking command
    /// reaching the head of its connection's queue while this many
    /// commands already wait for an executor is answered `ERR busy`
    /// in-order instead of queued (0 = never shed). Keeps the backlog —
    /// and every client's worst-case wait — bounded under overload.
    size_t max_queued_commands = 256;
    /// Pipelined requests buffered per connection before its reads pause
    /// (the request-side counterpart of the byte high-water mark).
    size_t max_pending_per_connection = 1024;
    /// Close connections idle this long — no traffic, nothing queued,
    /// nothing in flight (0 = never). Reaped connections count into the
    /// STATS `idle_closed` counter.
    double idle_timeout_s = 0.0;
    /// When non-empty, Start() runs `LOAD <preload_dataset>` to completion
    /// before the accept loop exists, so the first client can never
    /// observe a no-dataset window; a failed preload fails Start().
    std::string preload_dataset;
    ConnectionOptions connection;
    EvalService::Options service;
  };

  /// Binds, starts the loop thread and executors, and begins accepting.
  static Result<std::unique_ptr<EvalServer>> Start(Options options);

  /// Stops accepting, closes every connection, interrupts in-flight
  /// WATCHes, and joins all threads. Idempotent; also run by ~EvalServer.
  void Shutdown();
  ~EvalServer();

  EvalServer(const EvalServer&) = delete;
  EvalServer& operator=(const EvalServer&) = delete;

  /// The bound port (the resolved one when Options::port was 0).
  uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }
  EvalService& service() { return *service_; }

 private:
  struct Client;
  class Executor;

  explicit EvalServer(Options options);
  Status Init();

  void HandleAccept() KGEVAL_REQUIRES(loop_.loop_cap);
  void OnLine(const std::shared_ptr<Client>& client, std::string_view line,
              bool overflow) KGEVAL_REQUIRES(loop_.loop_cap);
  void OnClose(const std::shared_ptr<Client>& client)
      KGEVAL_REQUIRES(loop_.loop_cap);
  /// Starts queued requests until one dispatches to an executor (or the
  /// queue drains). Loop thread only.
  void PumpClient(const std::shared_ptr<Client>& client)
      KGEVAL_REQUIRES(loop_.loop_cap);
  void UpdateClientFlowControl(const std::shared_ptr<Client>& client)
      KGEVAL_REQUIRES(loop_.loop_cap);
  /// Self-rearming idle-connection sweep (loop thread only); runs every
  /// idle_timeout_s / 2 while the loop is alive.
  void ScheduleIdleSweep() KGEVAL_REQUIRES(loop_.loop_cap);
  void ReapIdleClients() KGEVAL_REQUIRES(loop_.loop_cap);

  Options options_;
  /// Written once in Init() (before the loop thread exists), read-only
  /// afterwards: port() is callable from any thread.
  uint16_t port_ = 0;
  EventLoop loop_;
  int listen_fd_ KGEVAL_GUARDED_BY(loop_.loop_cap) = -1;
  std::unique_ptr<EvalService> service_;
  // kgeval-lint: allow(thread-containment): owned here; Shutdown() joins it.
  std::thread loop_thread_;
  std::unique_ptr<Executor> executor_;
  /// Live clients; loop thread only. Shutdown closes them all (which is
  /// what wakes executors blocked on a slow client's backpressure).
  std::unordered_set<std::shared_ptr<Client>> clients_
      KGEVAL_GUARDED_BY(loop_.loop_cap);
  std::atomic<bool> shut_down_{false};
};

}  // namespace kgeval

#endif  // KGEVAL_SERVICE_EVAL_SERVER_H_

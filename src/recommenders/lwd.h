#ifndef KGEVAL_RECOMMENDERS_LWD_H_
#define KGEVAL_RECOMMENDERS_LWD_H_

#include "recommenders/recommender.h"

namespace kgeval {

/// Linear WD (Algorithm 1 of the paper): a parameter-free association-rule
/// recommender.
///
///   B in {0,1}^{|E| x 2|R|}   (membership of entities in observed
///                              domains/ranges; L-WD-T appends |T| type
///                              columns)
///   W = B^T B, row-normalized (the domain/range co-occurrence graph)
///   X = B W                    (aggregated confidence scores)
///
/// Two sparse products and a normalization — the whole point is that this
/// runs in (milli)seconds on a CPU while matching neural recommenders for
/// guiding evaluation sampling.
class LwdRecommender : public RelationRecommender {
 public:
  explicit LwdRecommender(bool use_types) : use_types_(use_types) {}

  RecommenderType type() const override {
    return use_types_ ? RecommenderType::kLwdT : RecommenderType::kLwd;
  }
  bool requires_types() const override { return use_types_; }

  Result<RecommenderScores> Fit(const Dataset& dataset) override;

 private:
  bool use_types_;
};

}  // namespace kgeval

#endif  // KGEVAL_RECOMMENDERS_LWD_H_

#include "recommenders/easy_negatives.h"

namespace kgeval {

EasyNegativeReport MineEasyNegatives(const RecommenderScores& scores,
                                     const Dataset& dataset,
                                     int64_t max_examples) {
  EasyNegativeReport report;
  const CsrMatrix& x = scores.scores;
  report.total_cells = x.rows() * x.cols();
  // Structurally absent cells score exactly 0; stored zeros (possible in
  // principle) are counted too.
  int64_t stored_zeros = 0;
  for (float v : x.values()) {
    if (v == 0.0f) ++stored_zeros;
  }
  report.easy_negatives = report.total_cells - x.nnz() + stored_zeros;
  report.easy_fraction =
      report.total_cells > 0
          ? static_cast<double>(report.easy_negatives) /
                static_cast<double>(report.total_cells)
          : 0.0;

  const int32_t num_r = dataset.num_relations();
  for (const Triple& t : dataset.test()) {
    // Head in the relation's domain column; tail in its range column.
    if (x.At(t.head, t.relation) == 0.0f) {
      ++report.false_easy;
      if (max_examples == 0 ||
          static_cast<int64_t>(report.examples.size()) < max_examples) {
        report.examples.push_back({t, QueryDirection::kHead});
      }
    }
    if (x.At(t.tail, t.relation + num_r) == 0.0f) {
      ++report.false_easy;
      if (max_examples == 0 ||
          static_cast<int64_t>(report.examples.size()) < max_examples) {
        report.examples.push_back({t, QueryDirection::kTail});
      }
    }
  }
  return report;
}

}  // namespace kgeval

#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "util/logging.h"

namespace kgeval {
namespace {

/// Set for the lifetime of every pool worker thread; lets the scheduler
/// detect re-entrant submissions (a worker waiting on tasks it submitted to
/// its own pool would deadlock once all workers are inside such a wait).
thread_local bool tls_pool_worker = false;

std::atomic<size_t> g_global_pool_threads{0};
std::atomic<bool> g_global_pool_created{false};

/// Resolved size of the global pool at creation: the explicit override,
/// else KGEVAL_THREADS, else 0 (the constructor's hardware_concurrency
/// default).
size_t GlobalPoolSize() {
  const size_t overridden = g_global_pool_threads.load();
  if (overridden > 0) return overridden;
  if (const char* env = std::getenv("KGEVAL_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return 0;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mutex_);
    queue_.push(std::move(task));
  }
  work_available_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  tls_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mutex_);
      while (!shutting_down_ && queue_.empty()) work_available_.Wait(lock);
      // Shutdown still drains queued work: only an *empty* queue lets a
      // worker exit, so the destructor's contract ("drains the remaining
      // queue, then joins") holds.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

ThreadPool* GlobalThreadPool() {
  static ThreadPool* pool = [] {
    g_global_pool_created.store(true);
    return new ThreadPool(GlobalPoolSize());
  }();
  return pool;
}

void SetGlobalThreadPoolThreads(size_t num_threads) {
  KGEVAL_CHECK(!g_global_pool_created.load())
      << "SetGlobalThreadPoolThreads must run before the first "
      << "GlobalThreadPool() use: the pool's workers are already live";
  g_global_pool_threads.store(num_threads);
}

bool InThreadPoolWorker() { return tls_pool_worker; }

}  // namespace kgeval

#ifndef KGEVAL_SYNTH_GENERATOR_H_
#define KGEVAL_SYNTH_GENERATOR_H_

#include "graph/dataset.h"
#include "synth/config.h"
#include "util/status.h"

namespace kgeval {

/// Cardinality class of a relation (Section 2's 1-1 / 1-M / M-1 discussion:
/// PT-style candidate generation fails exactly on the classes where an
/// entity participates at most once).
enum class Cardinality { kManyMany = 0, kOneMany = 1, kManyOne = 2, kOneOne = 3 };

/// The generator's ground truth about one relation, exposed for tests and
/// for the oracle "ontology" experiments.
struct RelationProfile {
  std::vector<int32_t> domain_types;
  std::vector<int32_t> range_types;
  Cardinality cardinality = Cardinality::kManyMany;
};

/// A generated dataset plus the latent ground truth it was sampled from.
struct SynthOutput {
  Dataset dataset;
  /// Per-relation latent signatures (index = relation id).
  std::vector<RelationProfile> profiles;
  /// Structurally true (entity, type) assignments *before* the
  /// missing/spurious noise was applied to the published TypeStore.
  TypeStore true_types;
  /// Indices into dataset.test() of noise (type-violating) triples — the
  /// ground truth behind the paper's "false easy negatives" analysis.
  std::vector<int64_t> noisy_test_indices;
};

/// Samples a complete typed KG per `config`. Deterministic given
/// config.seed. Fails on invalid configs; logs a warning and shrinks the
/// splits proportionally if cardinality constraints make the requested
/// triple count unreachable.
Result<SynthOutput> GenerateDataset(const SynthConfig& config);

}  // namespace kgeval

#endif  // KGEVAL_SYNTH_GENERATOR_H_

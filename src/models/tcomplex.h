#ifndef KGEVAL_MODELS_TCOMPLEX_H_
#define KGEVAL_MODELS_TCOMPLEX_H_

#include "la/matrix.h"
#include "models/kge_model.h"

namespace kgeval {

/// TComplEx (Lacroix et al., Temporal Knowledge Base Completion): ComplEx
/// with the relation embedding replaced by the complex elementwise product
/// of relation and timestamp embeddings,
///   score(h, r, t, tau) = Re(<h, r (.) w_tau, conj(t)>).
///
/// The model speaks the repo's static kernel interface through *virtual
/// relation ids*: KernelRelation folds (relation, time) into
/// relation + num_relations * time, and every kernel decodes that id back.
/// num_relations() stays the dataset's |R| (framework shape checks, pool
/// slots, and checkpoint headers are unchanged); the virtual id space is
/// num_kernel_relations() = |R| * |T|. Ids below |R| are plain relations
/// at timestamp 0, so time-oblivious callers remain well-defined.
class TComplEx : public KgeModel {
 public:
  TComplEx(int32_t num_entities, int32_t num_relations, ModelOptions options);

  int32_t num_timestamps() const { return num_timestamps_; }
  int32_t KernelRelation(const Triple& t) const override {
    return t.relation + num_relations_ * t.time;
  }
  int32_t num_kernel_relations() const override {
    return num_relations_ * num_timestamps_;
  }

  BatchKernel batch_kernel() const override { return BatchKernel::kDot; }
  const Matrix* candidate_embeddings() const override { return &entities_; }

  /// Folds anchor and the (relation (.) timestamp) product into one complex
  /// query row per anchor, exactly like ComplEx with the composed relation;
  /// the score is then a plain dot product with the candidate embedding.
  /// `relation` is a virtual kernel id. The candidate tile is
  /// time-independent, which is what lets one prepared pool serve every
  /// timestamp of a relation's schedule run.
  void BuildKernelQueries(const int32_t* anchors, size_t num_queries,
                          int32_t relation, QueryDirection direction,
                          Matrix* queries) const override;

  void UpdateTriple(int32_t head, int32_t relation, int32_t tail,
                    QueryDirection direction, float dscore) override;

  void CollectParameters(std::vector<NamedParameter>* out) override;

 private:
  int32_t half_;            // d / 2
  int32_t num_timestamps_;  // |T| >= 1
  Matrix entities_;
  Matrix relations_;
  Matrix timestamps_;
  AdamState entity_adam_;
  AdamState relation_adam_;
  AdamState timestamp_adam_;
};

}  // namespace kgeval

#endif  // KGEVAL_MODELS_TCOMPLEX_H_

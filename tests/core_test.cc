#include <gtest/gtest.h>

#include <numeric>

#include "core/candidate_sets.h"
#include "core/framework.h"
#include "core/sampled_evaluator.h"
#include "core/samplers.h"
#include "eval/full_evaluator.h"
#include "models/trainer.h"
#include "synth/config.h"
#include "synth/generator.h"

namespace kgeval {
namespace {

Dataset SynthDataset(uint64_t seed = 42) {
  SynthConfig config;
  config.num_entities = 600;
  config.num_relations = 16;
  config.num_types = 12;
  config.num_train = 8000;
  config.num_valid = 600;
  config.num_test = 600;
  config.seed = seed;
  return GenerateDataset(config).ValueOrDie().dataset;
}

RecommenderScores LwdScores(const Dataset& dataset) {
  return CreateRecommender(RecommenderType::kLwd)->Fit(dataset).ValueOrDie();
}

// --- Candidate sets -----------------------------------------------------------

TEST(StaticSetsTest, SetsAreSortedSubsets) {
  const Dataset d = SynthDataset();
  const CandidateSets sets = BuildStaticSets(LwdScores(d), d);
  ASSERT_EQ(sets.num_slots(), 2 * d.num_relations());
  for (const auto& set : sets.sets) {
    EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
    if (!set.empty()) {
      EXPECT_GE(set.front(), 0);
      EXPECT_LT(set.back(), d.num_entities());
    }
  }
}

TEST(StaticSetsTest, IncludeSeenCoversTrain) {
  const Dataset d = SynthDataset();
  const CandidateSets sets = BuildStaticSets(LwdScores(d), d);
  const int32_t num_r = d.num_relations();
  for (size_t i = 0; i < std::min<size_t>(d.train().size(), 300); ++i) {
    const Triple& t = d.train()[i];
    EXPECT_TRUE(std::binary_search(sets.sets[t.relation].begin(),
                                   sets.sets[t.relation].end(), t.head));
    EXPECT_TRUE(std::binary_search(sets.sets[t.relation + num_r].begin(),
                                   sets.sets[t.relation + num_r].end(),
                                   t.tail));
  }
}

TEST(StaticSetsTest, ReductionRatePositive) {
  const Dataset d = SynthDataset();
  const CandidateSets sets = BuildStaticSets(LwdScores(d), d);
  // Thresholding must cut the space meaningfully on typed data.
  EXPECT_GT(sets.MacroReductionRate(), 0.3);
}

TEST(ProbabilisticSetsTest, WeightsAlignedAndPositive) {
  const Dataset d = SynthDataset();
  const CandidateSets sets = BuildProbabilisticSets(LwdScores(d), d);
  for (int32_t slot = 0; slot < sets.num_slots(); ++slot) {
    ASSERT_EQ(sets.sets[slot].size(), sets.weights[slot].size());
    for (float w : sets.weights[slot]) EXPECT_GT(w, 0.0f);
    EXPECT_TRUE(std::is_sorted(sets.sets[slot].begin(),
                               sets.sets[slot].end()));
  }
}

TEST(ProbabilisticSetsTest, SeenEntitiesAlwaysPresent) {
  const Dataset d = SynthDataset();
  const CandidateSets sets = BuildProbabilisticSets(LwdScores(d), d);
  const ObservedSets seen(d, {Split::kTrain});
  for (int32_t slot = 0; slot < sets.num_slots(); ++slot) {
    for (int32_t e : seen.Set(slot)) {
      EXPECT_TRUE(std::binary_search(sets.sets[slot].begin(),
                                     sets.sets[slot].end(), e))
          << "slot " << slot << " entity " << e;
    }
  }
}

TEST(SetQualityTest, PerfectSetsScorePerfectly) {
  const Dataset d = SynthDataset();
  CandidateSets all;
  all.num_entities = d.num_entities();
  all.sets.resize(2 * d.num_relations());
  std::vector<int32_t> everyone(d.num_entities());
  std::iota(everyone.begin(), everyone.end(), 0);
  for (auto& set : all.sets) set = everyone;
  const SetQuality q = EvaluateSetQuality(all, d);
  EXPECT_DOUBLE_EQ(q.cr_test, 1.0);
  EXPECT_DOUBLE_EQ(q.rr, 0.0);  // No reduction.
}

TEST(SetQualityTest, EmptySetsScoreZeroRecall) {
  const Dataset d = SynthDataset();
  CandidateSets none;
  none.num_entities = d.num_entities();
  none.sets.resize(2 * d.num_relations());
  const SetQuality q = EvaluateSetQuality(none, d);
  EXPECT_DOUBLE_EQ(q.cr_test, 0.0);
  EXPECT_DOUBLE_EQ(q.rr, 1.0);
}

TEST(SetQualityTest, CrTestAtLeastCrUnseen) {
  // Seen pairs are always covered when include_seen is on, so the overall
  // recall dominates the unseen recall.
  const Dataset d = SynthDataset();
  const CandidateSets sets = BuildStaticSets(LwdScores(d), d);
  const SetQuality q = EvaluateSetQuality(sets, d);
  EXPECT_GE(q.cr_test, q.cr_unseen);
  EXPECT_GT(q.cr_test, 0.5);
}

// --- Samplers -----------------------------------------------------------------

TEST(NeededSlotsTest, BothDirectionsPerRelation) {
  std::vector<Triple> train = {{0, 0, 1}, {1, 1, 2}, {2, 2, 0}};
  std::vector<Triple> test = {{0, 1, 2}};
  Dataset d("slots", 3, 3, std::move(train), {}, std::move(test),
            TypeStore());
  const std::vector<int32_t> slots = NeededSlots(d, Split::kTest);
  // Relation 1 in test -> slots 1 (domain) and 4 (range, offset |R|=3).
  EXPECT_EQ(slots, (std::vector<int32_t>{1, 4}));
}

TEST(DrawCandidatesTest, RandomPoolsHaveRequestedSize) {
  Rng rng(1);
  const SampledCandidates pools = DrawCandidates(
      SamplingStrategy::kRandom, nullptr, 1000, 50, {0, 3}, 6, &rng);
  EXPECT_EQ(pools.pools[0].size(), 50u);
  EXPECT_EQ(pools.pools[3].size(), 50u);
  EXPECT_TRUE(pools.pools[1].empty());  // Not requested.
  EXPECT_EQ(pools.total_sampled, 100);
}

TEST(DrawCandidatesTest, StaticCapsAtSetSize) {
  CandidateSets sets;
  sets.num_entities = 100;
  sets.sets = {{1, 2, 3}, {4, 5, 6, 7}};
  Rng rng(2);
  const SampledCandidates pools = DrawCandidates(
      SamplingStrategy::kStatic, &sets, 100, 10, {0, 1}, 2, &rng);
  // Theorem 1 restriction: the whole set when n_s exceeds it.
  EXPECT_EQ(pools.pools[0], (std::vector<int32_t>{1, 2, 3}));
  EXPECT_EQ(pools.pools[1], (std::vector<int32_t>{4, 5, 6, 7}));
}

TEST(DrawCandidatesTest, StaticSubsamplesLargeSets) {
  CandidateSets sets;
  sets.num_entities = 100;
  sets.sets.push_back(std::vector<int32_t>(60));
  std::iota(sets.sets[0].begin(), sets.sets[0].end(), 0);
  Rng rng(3);
  const SampledCandidates pools = DrawCandidates(
      SamplingStrategy::kStatic, &sets, 100, 20, {0}, 1, &rng);
  EXPECT_EQ(pools.pools[0].size(), 20u);
  for (int32_t e : pools.pools[0]) EXPECT_LT(e, 60);
}

TEST(DrawCandidatesTest, ProbabilisticRespectsSupport) {
  CandidateSets sets;
  sets.num_entities = 100;
  sets.sets = {{10, 20, 30, 40}};
  sets.weights = {{1.0f, 2.0f, 0.0f, 4.0f}};
  Rng rng(4);
  const SampledCandidates pools = DrawCandidates(
      SamplingStrategy::kProbabilistic, &sets, 100, 10, {0}, 1, &rng);
  // Weight-0 entity 30 can never be drawn; the others all fit in n_s.
  EXPECT_EQ(pools.pools[0], (std::vector<int32_t>{10, 20, 40}));
}

TEST(SamplingStrategyTest, Names) {
  EXPECT_STREQ(SamplingStrategyName(SamplingStrategy::kRandom), "Random");
  EXPECT_STREQ(SamplingStrategyName(SamplingStrategy::kStatic), "Static");
  EXPECT_STREQ(SamplingStrategyName(SamplingStrategy::kProbabilistic),
               "Probabilistic");
}

// --- Sampled evaluator ---------------------------------------------------------

class TrainedFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(SynthDataset());
    filter_ = new FilterIndex(*dataset_);
    ModelOptions options;
    options.dim = 24;
    options.adam.learning_rate = 3e-3f;
    auto model = CreateModel(ModelType::kComplEx, dataset_->num_entities(),
                             dataset_->num_relations(), options)
                     .ValueOrDie();
    TrainerOptions trainer_options;
    trainer_options.epochs = 8;
    Trainer trainer(dataset_, trainer_options);
    ASSERT_TRUE(trainer.Train(model.get()).ok());
    model_ = model.release();
  }
  static void TearDownTestSuite() {
    delete model_;
    delete filter_;
    delete dataset_;
  }

  static Dataset* dataset_;
  static FilterIndex* filter_;
  static KgeModel* model_;
};

Dataset* TrainedFixture::dataset_ = nullptr;
FilterIndex* TrainedFixture::filter_ = nullptr;
KgeModel* TrainedFixture::model_ = nullptr;

TEST_F(TrainedFixture, FullPoolRecoversExactMetrics) {
  // Sampling *all* entities must reproduce the full filtered ranking
  // exactly — the key equivalence property of the sampled evaluator.
  SampledCandidates pools;
  pools.pools.resize(2 * dataset_->num_relations());
  std::vector<int32_t> everyone(dataset_->num_entities());
  std::iota(everyone.begin(), everyone.end(), 0);
  for (int32_t slot : NeededSlots(*dataset_, Split::kTest)) {
    pools.pools[slot] = everyone;
  }
  const SampledEvalResult sampled =
      EvaluateSampled(*model_, *dataset_, *filter_, Split::kTest, pools);
  const FullEvalResult full =
      EvaluateFullRanking(*model_, *dataset_, *filter_, Split::kTest);
  ASSERT_EQ(sampled.ranks.size(), full.ranks.size());
  for (size_t i = 0; i < full.ranks.size(); ++i) {
    EXPECT_DOUBLE_EQ(sampled.ranks[i], full.ranks[i]) << "query " << i;
  }
  EXPECT_DOUBLE_EQ(sampled.metrics.mrr, full.metrics.mrr);
}

TEST_F(TrainedFixture, SampledRanksNeverExceedFullRanks) {
  // A subsample can only remove potential higher-ranked competitors, so the
  // estimated rank is optimistic per query (the heart of Section 4).
  FrameworkOptions options;
  options.strategy = SamplingStrategy::kRandom;
  options.sample_fraction = 0.1;
  auto framework =
      EvaluationFramework::Build(dataset_, options).ValueOrDie();
  const SampledEvalResult sampled =
      framework->Estimate(*model_, *filter_, Split::kTest);
  const FullEvalResult full =
      EvaluateFullRanking(*model_, *dataset_, *filter_, Split::kTest);
  ASSERT_EQ(sampled.ranks.size(), full.ranks.size());
  for (size_t i = 0; i < full.ranks.size(); ++i) {
    EXPECT_LE(sampled.ranks[i], full.ranks[i] + 1e-9) << "query " << i;
  }
}

TEST_F(TrainedFixture, RandomOverestimatesMoreThanGuided) {
  const FullEvalResult full =
      EvaluateFullRanking(*model_, *dataset_, *filter_, Split::kTest);
  auto estimate_mrr = [&](SamplingStrategy strategy) {
    FrameworkOptions options;
    options.strategy = strategy;
    options.recommender = RecommenderType::kLwd;
    options.sample_fraction = 0.1;
    auto framework =
        EvaluationFramework::Build(dataset_, options).ValueOrDie();
    return framework->Estimate(*model_, *filter_, Split::kTest).metrics.mrr;
  };
  const double random_err =
      std::abs(estimate_mrr(SamplingStrategy::kRandom) - full.metrics.mrr);
  const double static_err =
      std::abs(estimate_mrr(SamplingStrategy::kStatic) - full.metrics.mrr);
  const double prob_err = std::abs(
      estimate_mrr(SamplingStrategy::kProbabilistic) - full.metrics.mrr);
  // The paper's headline finding.
  EXPECT_GT(random_err, static_err);
  EXPECT_GT(random_err, prob_err);
}

TEST_F(TrainedFixture, LargerSamplesImproveRandomEstimates) {
  const FullEvalResult full =
      EvaluateFullRanking(*model_, *dataset_, *filter_, Split::kTest);
  double previous_error = 1e9;
  for (double fraction : {0.02, 0.2, 0.9}) {
    FrameworkOptions options;
    options.strategy = SamplingStrategy::kRandom;
    options.sample_fraction = fraction;
    options.seed = 7;
    auto framework =
        EvaluationFramework::Build(dataset_, options).ValueOrDie();
    const double err = std::abs(
        framework->Estimate(*model_, *filter_, Split::kTest).metrics.mrr -
        full.metrics.mrr);
    EXPECT_LT(err, previous_error + 0.02);
    previous_error = err;
  }
}

TEST_F(TrainedFixture, EstimatesAreReproducibleGivenSeed) {
  FrameworkOptions options;
  options.strategy = SamplingStrategy::kProbabilistic;
  options.sample_fraction = 0.05;
  options.seed = 123;
  auto fw1 = EvaluationFramework::Build(dataset_, options).ValueOrDie();
  auto fw2 = EvaluationFramework::Build(dataset_, options).ValueOrDie();
  EXPECT_DOUBLE_EQ(fw1->Estimate(*model_, *filter_, Split::kTest).metrics.mrr,
                   fw2->Estimate(*model_, *filter_, Split::kTest).metrics.mrr);
}

// --- Framework construction -----------------------------------------------------

TEST(FrameworkTest, RejectsNullDataset) {
  EXPECT_FALSE(EvaluationFramework::Build(nullptr, FrameworkOptions()).ok());
}

TEST(FrameworkTest, RejectsBadSampleSize) {
  const Dataset d = SynthDataset();
  FrameworkOptions options;
  options.sample_fraction = 0.0;
  options.sample_size = 0;
  EXPECT_FALSE(EvaluationFramework::Build(&d, options).ok());
}

TEST(FrameworkTest, SampleSizeOverridesFraction) {
  const Dataset d = SynthDataset();
  FrameworkOptions options;
  options.sample_fraction = 0.5;
  options.sample_size = 17;
  auto framework = EvaluationFramework::Build(&d, options).ValueOrDie();
  EXPECT_EQ(framework->SampleSize(), 17);
}

TEST(FrameworkTest, FractionResolvesAgainstEntities) {
  const Dataset d = SynthDataset();
  FrameworkOptions options;
  options.sample_fraction = 0.1;
  auto framework = EvaluationFramework::Build(&d, options).ValueOrDie();
  EXPECT_EQ(framework->SampleSize(), 60);  // 600 entities * 0.1.
}

TEST(FrameworkTest, RandomStrategySkipsRecommenderFit) {
  const Dataset d = SynthDataset();
  FrameworkOptions options;
  options.strategy = SamplingStrategy::kRandom;
  auto framework = EvaluationFramework::Build(&d, options).ValueOrDie();
  EXPECT_EQ(framework->scores().scores.nnz(), 0);
}

}  // namespace
}  // namespace kgeval

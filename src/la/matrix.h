#ifndef KGEVAL_LA_MATRIX_H_
#define KGEVAL_LA_MATRIX_H_

#include <cstddef>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace kgeval {

/// Row-major dense float matrix. The embedding tables and all model
/// parameters live in these; rows are the unit of parallel/sparse access.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  float* Row(size_t r) {
    KGEVAL_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }
  const float* Row(size_t r) const {
    KGEVAL_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }

  float& At(size_t r, size_t c) {
    KGEVAL_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float At(size_t r, size_t c) const {
    KGEVAL_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void Fill(float value) { std::fill(data_.begin(), data_.end(), value); }

  /// Xavier/Glorot uniform initialization with the given fan-in/fan-out.
  void InitXavier(Rng* rng, size_t fan_in, size_t fan_out);

  /// Uniform initialization in [lo, hi].
  void InitUniform(Rng* rng, float lo, float hi);

  /// Gaussian initialization with the given standard deviation.
  void InitGaussian(Rng* rng, float stddev);

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

}  // namespace kgeval

#endif  // KGEVAL_LA_MATRIX_H_

#ifndef KGEVAL_CORE_ADAPTIVE_EVALUATOR_H_
#define KGEVAL_CORE_ADAPTIVE_EVALUATOR_H_

#include "core/sampled_evaluator.h"

namespace kgeval {

/// Options for the confidence-bounded adaptive evaluation pass.
struct AdaptiveEvalOptions {
  TieBreak tie = TieBreak::kMean;
  /// Stop once the confidence half-width of this metric's estimate drops to
  /// `target_half_width` or below.
  MetricKind target_metric = MetricKind::kMrr;
  double target_half_width = 0.01;
  /// Two-sided confidence level of the stopping interval (and the reported
  /// RankingCi).
  double confidence = 0.95;
  /// Shrink the interval by the finite-population correction
  /// sqrt((N - n) / (N - 1)): the rounds sample the split's query set
  /// without replacement, so the uncertainty about the full-pass estimate
  /// vanishes as coverage approaches 100%. Disable for the (conservative)
  /// iid interval.
  bool finite_population_correction = true;
  /// Queries scored per round, between convergence checks. Smaller rounds
  /// stop closer to the exact crossing point but re-prepare the pools of
  /// the slots they touch more often.
  size_t batch_queries = 2048;
  /// Never stop on the confidence test before this many queries: the
  /// variance estimate itself needs support before it can be trusted.
  int64_t min_queries = 1024;
  /// Hard budgets that force a stop even if the interval is still wide:
  /// max evaluated triples (0 = all of the split; the query budget is
  /// 2 * max_triples, enforced exactly) and max scored candidates (0 =
  /// unlimited; checked between rounds, so at most one round of
  /// overshoot). Budgets end the pass *unconverged*.
  int64_t max_triples = 0;
  int64_t max_candidates = 0;
  /// Seed of the schedule shuffle. The whole pass is deterministic given
  /// this seed, the pools, and the model.
  uint64_t shuffle_seed = 29;
  /// Same engine switch as SampledEvalOptions::prepared_pools.
  bool prepared_pools = true;
  /// Same switches as SampledEvalOptions::screening /
  /// screening_min_pool: bit-identical ranks, so the stopping decision —
  /// and the returned estimate — are unchanged by screening.
  bool screening = false;
  size_t screening_min_pool = 64;
  /// Cooperative cancellation, polled between rounds and (through the
  /// shared ScoreSlotBlocks) between query blocks within a round. A
  /// cancelled pass reports `cancelled` on its result; its metrics are
  /// partial and must be discarded.
  const CancelToken* cancel = nullptr;
};

/// Result of an adaptive evaluation pass. `metrics`/`ci` cover the queries
/// actually evaluated — a uniformly shuffled subset of the split's query
/// set, so they estimate the full sampled pass the same way a poll
/// estimates an election.
struct AdaptiveEvalResult {
  RankingMetrics metrics;
  /// Half-widths at AdaptiveEvalOptions::confidence, with the finite-
  /// population correction applied when enabled (the stopping rule and the
  /// report use the same interval).
  RankingCi ci;
  /// Per-query ranks, indexed like SampledEvalResult::ranks (2 slots per
  /// triple of the split: tail then head). Queries the pass never scored
  /// hold 0.0.
  std::vector<double> ranks;
  int64_t evaluated_queries = 0;
  /// Always 2 x the split's triple count (the population the estimate and
  /// the finite-population correction refer to), regardless of budgets.
  int64_t total_queries = 0;
  int64_t scored_candidates = 0;
  /// Screening work counters over the evaluated rounds (zero when
  /// screening was off or never applicable).
  ScreenStats screen;
  int64_t rounds = 0;
  /// True iff the pass stopped because the confidence test was met. A pass
  /// that consumes the whole split converges trivially when the finite-
  /// population correction is on (the interval collapses to zero at full
  /// coverage — the estimate *is* the full pass); a budget stop always
  /// reports false.
  bool converged = false;
  /// True when AdaptiveEvalOptions::cancel fired mid-pass (never converged
  /// in that case); the partial result must be discarded.
  bool cancelled = false;
  double eval_seconds = 0.0;
  /// The target metric's half-width after every round; shrinks ~1/sqrt(n)
  /// as rounds accumulate. Useful for convergence plots and tests.
  std::vector<double> half_width_history;
};

/// Confidence-bounded sampled evaluation: consumes the split's query set in
/// uniformly shuffled rounds — each round a simple random sample of the
/// remaining queries, regrouped by slot and scored through the same
/// prepared/fused kernels as EvaluateSampled —
/// maintains running metrics in a RankingAccumulator, and
/// stops as soon as the target metric's confidence half-width reaches
/// `target_half_width` (or a budget runs out). This is the paper's thesis
/// made operational: the sampled estimate stabilizes long before every test
/// query is scored, so the evaluator stops *early* instead of just running
/// fast — and every estimate carries the interval that justified stopping.
/// Deterministic given options.shuffle_seed; evaluated queries' ranks are
/// bit-identical to what EvaluateSampled computes for them on the same
/// pools.
AdaptiveEvalResult EvaluateAdaptive(const KgeModel& model,
                                    const Dataset& dataset,
                                    const EvalProtocol& protocol, Split split,
                                    const SampledCandidates& candidates,
                                    const AdaptiveEvalOptions& options = {});

/// Static-protocol convenience: wraps `filter` in a StaticFilteredProtocol
/// and evaluates; bit-identical to the pre-protocol evaluator.
AdaptiveEvalResult EvaluateAdaptive(const KgeModel& model,
                                    const Dataset& dataset,
                                    const FilterIndex& filter, Split split,
                                    const SampledCandidates& candidates,
                                    const AdaptiveEvalOptions& options = {});

}  // namespace kgeval

#endif  // KGEVAL_CORE_ADAPTIVE_EVALUATOR_H_

#ifndef KGEVAL_NET_EVENT_LOOP_H_
#define KGEVAL_NET_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace kgeval {

/// Readiness interest of a registered fd, OR-able.
enum : uint32_t {
  kEventRead = 1u << 0,
  kEventWrite = 1u << 1,
  /// Peer hangup / socket error. Not subscribable — the poller reports it
  /// unconditionally and the loop always delivers it, even to an fd whose
  /// interest set is empty. That is what lets a connection paused by flow
  /// control (no read interest) still notice a vanished peer instead of
  /// sitting parked forever; read/write readiness is never delivered
  /// unsubscribed.
  kEventHangup = 1u << 2,
};

/// A single-threaded readiness event loop over non-blocking fds: epoll on
/// Linux, poll(2) everywhere else (KGEVAL_FORCE_POLL selects the fallback on
/// Linux too, so both backends are testable on one machine). All fd
/// registration and every callback run on the loop thread; the only
/// cross-thread entry point is Post(), which enqueues a closure and wakes
/// the loop through its wakeup pipe — this is how job threads hand finished
/// command responses back to the connection they belong to.
///
/// The loop never blocks on anything but the poller: callbacks that would
/// block (evaluation, disk I/O) belong on job threads, with Post() carrying
/// their results home.
class EventLoop {
 public:
  using FdCallback = std::function<void(uint32_t ready_events)>;

  /// The loop-thread *capability*: a virtual lock that is "held" exactly
  /// when the calling thread may touch loop-owned state — it is the loop
  /// thread, or the loop is not running (single-threaded setup/teardown).
  /// Nothing is ever locked; the capability exists so clang's thread-safety
  /// analysis can enforce "loop-thread only" the same way it enforces
  /// "mutex held": methods marked KGEVAL_REQUIRES(loop_cap) are callable
  /// only from code that proved the capability via AssertOnLoopThread() or
  /// inherited it from an annotated caller.
  class KGEVAL_CAPABILITY("EventLoop::LoopThread") LoopThread {};

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` with the given interest; `callback(ready)` fires from
  /// Run() whenever the fd is ready. One registration per fd. Loop-thread
  /// only (or before Run() starts) — compile-enforced under clang.
  void Add(int fd, uint32_t events, FdCallback callback)
      KGEVAL_REQUIRES(loop_cap);
  /// Replaces the interest set of a registered fd. Loop-thread only.
  void SetEvents(int fd, uint32_t events) KGEVAL_REQUIRES(loop_cap);
  /// Deregisters `fd`. Safe to call from inside its own callback; the fd is
  /// not closed (ownership stays with the caller). Loop-thread only.
  void Remove(int fd) KGEVAL_REQUIRES(loop_cap);

  /// Runs callbacks until Stop(). Must be called from exactly one thread,
  /// which becomes the loop thread.
  void Run();
  /// Makes Run() return after the current iteration. Thread-safe.
  void Stop();

  /// Enqueues `task` to run on the loop thread and wakes the loop.
  /// Thread-safe; the only EventLoop method job threads may call (besides
  /// Stop). Tasks run in post order, after fd callbacks of the iteration.
  void Post(std::function<void()> task) KGEVAL_EXCLUDES(posted_mutex_);

  /// Arms a one-shot monotonic timer: `fn` runs on the loop thread at (or
  /// just after) now + delay_s, after the iteration's fd callbacks. Like
  /// Add(), loop-thread only (or before Run() starts) — other threads
  /// Post() a closure that arms it. Returns an id for CancelTimer; ids are
  /// never reused. Timers drive the service's per-command deadlines and
  /// idle-connection reaping.
  uint64_t RunAfter(double delay_s, std::function<void()> fn)
      KGEVAL_REQUIRES(loop_cap);
  /// Cancels a pending timer. A no-op for a timer that already fired (or
  /// an unknown id), so completion paths can cancel unconditionally.
  /// Loop-thread only.
  void CancelTimer(uint64_t id) KGEVAL_REQUIRES(loop_cap);

  /// True iff the calling thread is inside Run(). Lets shared helpers
  /// assert they are (or are not) on the loop thread.
  bool InLoopThread() const;

  /// Claims the loop-thread capability: callback entry points (fd
  /// callbacks, timers, posted tasks) call this first, which (a) CHECKs in
  /// Debug builds that the caller really is the loop thread — or that the
  /// loop is not running, covering pre-Run() registration and post-Run()
  /// teardown — and (b) tells the static analysis the capability is held
  /// for the rest of the scope.
  void AssertOnLoopThread() const KGEVAL_ASSERT_CAPABILITY(loop_cap);

  /// The capability object itself (never locked, zero size in practice).
  /// Public so other classes can guard their own loop-owned members with
  /// KGEVAL_GUARDED_BY(loop_->loop_cap).
  LoopThread loop_cap;

 private:
  struct Registration {
    uint32_t events = 0;
    /// Distinguishes this registration from an earlier one on the same fd
    /// number: within one poll batch a callback may Remove()+close an fd
    /// while another callback accepts a new connection that reuses it, and
    /// a stale ready[] entry must not be dispatched to the newcomer.
    uint32_t generation = 0;
    FdCallback callback;
  };

  /// Polls once with `timeout_ms` and dispatches ready callbacks.
  void PollOnce(int timeout_ms) KGEVAL_REQUIRES(loop_cap);
  void RunPosted() KGEVAL_REQUIRES(loop_cap) KGEVAL_EXCLUDES(posted_mutex_);
  void Wakeup();
  /// Poll timeout shrunk to the earliest pending timer, in [0, cap_ms].
  int NextTimeoutMs(int cap_ms) const KGEVAL_REQUIRES(loop_cap);
  /// Runs (and removes) every timer whose deadline has passed.
  void FireDueTimers() KGEVAL_REQUIRES(loop_cap);

  std::unordered_map<int, Registration> fds_ KGEVAL_GUARDED_BY(loop_cap);
  uint32_t next_generation_ KGEVAL_GUARDED_BY(loop_cap) = 0;
  /// Pending timers, ordered by (deadline, id): steady_clock so a wall
  /// clock step never fires (or starves) a deadline.
  std::map<std::pair<std::chrono::steady_clock::time_point, uint64_t>,
           std::function<void()>>
      timers_ KGEVAL_GUARDED_BY(loop_cap);
  uint64_t next_timer_id_ KGEVAL_GUARDED_BY(loop_cap) = 0;
  /// The wakeup pipe and epoll fds are set in the constructor and never
  /// change: reads from any thread (Wakeup) need no guard.
  int wakeup_read_ = -1;
  int wakeup_write_ = -1;
#if defined(__linux__) && !defined(KGEVAL_FORCE_POLL)
  int epoll_fd_ = -1;
#endif

  Mutex posted_mutex_;
  std::vector<std::function<void()>> posted_ KGEVAL_GUARDED_BY(posted_mutex_);
  bool stop_ KGEVAL_GUARDED_BY(loop_cap) = false;
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::thread::id> loop_thread_{};
};

}  // namespace kgeval

#endif  // KGEVAL_NET_EVENT_LOOP_H_

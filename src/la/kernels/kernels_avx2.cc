// AVX2 score kernels. Compiled into every x86-64 binary via function-level
// `target` attributes (no special build flags), so a KGEVAL_NATIVE=OFF
// build still carries this path; the registry only dispatches here when the
// running CPU reports AVX2.
//
// Bit-exactness: the exact kernels keep candidates in independent SIMD
// lanes and accumulate over the dim axis with an explicit rounded multiply
// followed by a rounded add — never an FMA — in the scalar reference's
// order. Together with IEEE-exact VSQRTPS and bitmask fabs/negation, every
// lane reproduces the scalar result bit-for-bit. The quantized kernels have
// no such obligation (screening corrects them with a conservative bound).

#include "la/kernels/kernel_impls.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define KGEVAL_HAVE_AVX2_KERNELS 1
#endif

#if defined(KGEVAL_HAVE_AVX2_KERNELS)

#include <immintrin.h>

#include <cmath>
#include <cstddef>

namespace kgeval {
namespace kernel_impls {
namespace {

#define KGEVAL_TARGET_AVX2 __attribute__((target("avx2")))

KGEVAL_TARGET_AVX2 inline __m256 AbsPs(__m256 x) {
  return _mm256_and_ps(x, _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff)));
}

KGEVAL_TARGET_AVX2 inline __m256 NegPs(__m256 x) {
  return _mm256_xor_ps(x, _mm256_set1_ps(-0.0f));
}

/// Loads 8 int8 lanes and converts to fp32.
KGEVAL_TARGET_AVX2 inline __m256 LoadQ8(const int8_t* p) {
  const __m128i raw = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  return _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(raw));
}

KGEVAL_TARGET_AVX2
void DotAvx2(const float* queries, size_t nq, size_t dim, const float* tile,
             size_t n, float* out) {
  for (size_t q = 0; q < nq; ++q) {
    const float* a = queries + q * dim;
    float* o = out + q * n;
    size_t c = 0;
    // 32-lane strips: four accumulators live in registers across the whole
    // dim loop, so the tile is streamed once with no per-k output traffic.
    for (; c + 32 <= n; c += 32) {
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      const float* g = tile + c;
      for (size_t k = 0; k < dim; ++k, g += n) {
        const __m256 va = _mm256_set1_ps(a[k]);
        acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(va, _mm256_loadu_ps(g)));
        acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(va, _mm256_loadu_ps(g + 8)));
        acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(va, _mm256_loadu_ps(g + 16)));
        acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(va, _mm256_loadu_ps(g + 24)));
      }
      _mm256_storeu_ps(o + c, acc0);
      _mm256_storeu_ps(o + c + 8, acc1);
      _mm256_storeu_ps(o + c + 16, acc2);
      _mm256_storeu_ps(o + c + 24, acc3);
    }
    for (; c + 8 <= n; c += 8) {
      __m256 acc = _mm256_setzero_ps();
      const float* g = tile + c;
      for (size_t k = 0; k < dim; ++k, g += n) {
        acc = _mm256_add_ps(acc,
                            _mm256_mul_ps(_mm256_set1_ps(a[k]),
                                          _mm256_loadu_ps(g)));
      }
      _mm256_storeu_ps(o + c, acc);
    }
    for (; c < n; ++c) {
      float acc = 0.0f;
      for (size_t k = 0; k < dim; ++k) acc += a[k] * tile[k * n + c];
      o[c] = acc;
    }
  }
}

KGEVAL_TARGET_AVX2
void NegL1Avx2(const float* queries, size_t nq, size_t dim, const float* tile,
               size_t n, float* out) {
  for (size_t q = 0; q < nq; ++q) {
    const float* a = queries + q * dim;
    float* o = out + q * n;
    size_t c = 0;
    for (; c + 32 <= n; c += 32) {
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      const float* g = tile + c;
      for (size_t k = 0; k < dim; ++k, g += n) {
        const __m256 va = _mm256_set1_ps(a[k]);
        acc0 = _mm256_add_ps(acc0, AbsPs(_mm256_sub_ps(va, _mm256_loadu_ps(g))));
        acc1 = _mm256_add_ps(
            acc1, AbsPs(_mm256_sub_ps(va, _mm256_loadu_ps(g + 8))));
        acc2 = _mm256_add_ps(
            acc2, AbsPs(_mm256_sub_ps(va, _mm256_loadu_ps(g + 16))));
        acc3 = _mm256_add_ps(
            acc3, AbsPs(_mm256_sub_ps(va, _mm256_loadu_ps(g + 24))));
      }
      _mm256_storeu_ps(o + c, NegPs(acc0));
      _mm256_storeu_ps(o + c + 8, NegPs(acc1));
      _mm256_storeu_ps(o + c + 16, NegPs(acc2));
      _mm256_storeu_ps(o + c + 24, NegPs(acc3));
    }
    for (; c + 8 <= n; c += 8) {
      __m256 acc = _mm256_setzero_ps();
      const float* g = tile + c;
      for (size_t k = 0; k < dim; ++k, g += n) {
        acc = _mm256_add_ps(
            acc, AbsPs(_mm256_sub_ps(_mm256_set1_ps(a[k]), _mm256_loadu_ps(g))));
      }
      _mm256_storeu_ps(o + c, NegPs(acc));
    }
    for (; c < n; ++c) {
      float acc = 0.0f;
      for (size_t k = 0; k < dim; ++k) acc += std::fabs(a[k] - tile[k * n + c]);
      o[c] = -acc;
    }
  }
}

KGEVAL_TARGET_AVX2
void NegComplexDistAvx2(const float* queries, size_t nq, size_t dim,
                        const float* tile, size_t n, float eps, float* out) {
  const size_t m = dim / 2;
  const __m256 veps = _mm256_set1_ps(eps);
  for (size_t q = 0; q < nq; ++q) {
    const float* a = queries + q * dim;
    float* o = out + q * n;
    size_t c = 0;
    // 16-lane strips: each coordinate needs two plane loads plus a sqrt, so
    // two accumulators balance register pressure against strip overhead.
    for (; c + 16 <= n; c += 16) {
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      for (size_t j = 0; j < m; ++j) {
        const __m256 qre = _mm256_set1_ps(a[j]);
        const __m256 qim = _mm256_set1_ps(a[m + j]);
        const float* gre = tile + j * n + c;
        const float* gim = tile + (m + j) * n + c;
        const __m256 dre0 = _mm256_sub_ps(qre, _mm256_loadu_ps(gre));
        const __m256 dim0 = _mm256_sub_ps(qim, _mm256_loadu_ps(gim));
        const __m256 dre1 = _mm256_sub_ps(qre, _mm256_loadu_ps(gre + 8));
        const __m256 dim1 = _mm256_sub_ps(qim, _mm256_loadu_ps(gim + 8));
        // (dre*dre + dim*dim) + eps in the scalar expression's order.
        const __m256 s0 = _mm256_add_ps(
            _mm256_add_ps(_mm256_mul_ps(dre0, dre0), _mm256_mul_ps(dim0, dim0)),
            veps);
        const __m256 s1 = _mm256_add_ps(
            _mm256_add_ps(_mm256_mul_ps(dre1, dre1), _mm256_mul_ps(dim1, dim1)),
            veps);
        acc0 = _mm256_add_ps(acc0, _mm256_sqrt_ps(s0));
        acc1 = _mm256_add_ps(acc1, _mm256_sqrt_ps(s1));
      }
      _mm256_storeu_ps(o + c, NegPs(acc0));
      _mm256_storeu_ps(o + c + 8, NegPs(acc1));
    }
    for (; c + 8 <= n; c += 8) {
      __m256 acc = _mm256_setzero_ps();
      for (size_t j = 0; j < m; ++j) {
        const __m256 dre = _mm256_sub_ps(_mm256_set1_ps(a[j]),
                                         _mm256_loadu_ps(tile + j * n + c));
        const __m256 dim_ = _mm256_sub_ps(
            _mm256_set1_ps(a[m + j]), _mm256_loadu_ps(tile + (m + j) * n + c));
        const __m256 s = _mm256_add_ps(
            _mm256_add_ps(_mm256_mul_ps(dre, dre), _mm256_mul_ps(dim_, dim_)),
            veps);
        acc = _mm256_add_ps(acc, _mm256_sqrt_ps(s));
      }
      _mm256_storeu_ps(o + c, NegPs(acc));
    }
    for (; c < n; ++c) {
      float acc = 0.0f;
      for (size_t j = 0; j < m; ++j) {
        const float dre = a[j] - tile[j * n + c];
        const float dim_ = a[m + j] - tile[(m + j) * n + c];
        acc += std::sqrt(dre * dre + dim_ * dim_ + eps);
      }
      o[c] = -acc;
    }
  }
}

KGEVAL_TARGET_AVX2
void DotQ8Avx2(const uint8_t* queries, size_t nq, size_t dim_quads,
               const int8_t* tile4, size_t n, int32_t* out) {
  // 8 candidates (32 tile bytes) per step: sign-extend the quads to s16 and
  // madd against the query quad repeated as s16 pairs. Every product pair
  // fits s32 exactly (255 * 127 * 2 per pair, dim_quads * 2 pairs summed),
  // so the result is the exact integer dot, matching the scalar kernel
  // bit-for-bit.
  for (size_t q = 0; q < nq; ++q) {
    const uint8_t* a = queries + q * dim_quads * 4;
    int32_t* o = out + q * n;
    size_t c = 0;
    for (; c + 8 <= n; c += 8) {
      __m256i acc_lo = _mm256_setzero_si256();  // 2 partial s32 per cand 0-3.
      __m256i acc_hi = _mm256_setzero_si256();  // ... per cand 4-7.
      for (size_t g = 0; g < dim_quads; ++g) {
        const int64_t qq =
            static_cast<int64_t>(a[g * 4 + 0]) |
            (static_cast<int64_t>(a[g * 4 + 1]) << 16) |
            (static_cast<int64_t>(a[g * 4 + 2]) << 32) |
            (static_cast<int64_t>(a[g * 4 + 3]) << 48);
        const __m256i qv = _mm256_set1_epi64x(qq);
        const __m256i chunk = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(tile4 + (g * n + c) * 4));
        const __m256i lo16 =
            _mm256_cvtepi8_epi16(_mm256_castsi256_si128(chunk));
        const __m256i hi16 =
            _mm256_cvtepi8_epi16(_mm256_extracti128_si256(chunk, 1));
        acc_lo = _mm256_add_epi32(acc_lo, _mm256_madd_epi16(lo16, qv));
        acc_hi = _mm256_add_epi32(acc_hi, _mm256_madd_epi16(hi16, qv));
      }
      alignas(32) int32_t tmp[16];
      _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), acc_lo);
      _mm256_store_si256(reinterpret_cast<__m256i*>(tmp + 8), acc_hi);
      for (size_t i = 0; i < 8; ++i) o[c + i] = tmp[2 * i] + tmp[2 * i + 1];
    }
    for (; c < n; ++c) {
      int32_t acc = 0;
      for (size_t g = 0; g < dim_quads; ++g) {
        const int8_t* t = tile4 + (g * n + c) * 4;
        acc += static_cast<int32_t>(a[g * 4 + 0]) * t[0] +
               static_cast<int32_t>(a[g * 4 + 1]) * t[1] +
               static_cast<int32_t>(a[g * 4 + 2]) * t[2] +
               static_cast<int32_t>(a[g * 4 + 3]) * t[3];
      }
      o[c] = acc;
    }
  }
}

KGEVAL_TARGET_AVX2
void NegL1Q8Avx2(const float* queries, size_t nq, size_t dim,
                 const int8_t* tile, const float* scale, size_t n,
                 float* out) {
  for (size_t q = 0; q < nq; ++q) {
    const float* a = queries + q * dim;
    float* o = out + q * n;
    size_t c = 0;
    for (; c + 16 <= n; c += 16) {
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      const int8_t* g = tile + c;
      for (size_t k = 0; k < dim; ++k, g += n) {
        const __m256 va = _mm256_set1_ps(a[k]);
        const __m256 vs = _mm256_set1_ps(scale[k]);
        acc0 = _mm256_add_ps(
            acc0, AbsPs(_mm256_sub_ps(va, _mm256_mul_ps(vs, LoadQ8(g)))));
        acc1 = _mm256_add_ps(
            acc1, AbsPs(_mm256_sub_ps(va, _mm256_mul_ps(vs, LoadQ8(g + 8)))));
      }
      _mm256_storeu_ps(o + c, NegPs(acc0));
      _mm256_storeu_ps(o + c + 8, NegPs(acc1));
    }
    for (; c < n; ++c) {
      float acc = 0.0f;
      for (size_t k = 0; k < dim; ++k) {
        acc += std::fabs(a[k] - scale[k] * static_cast<float>(tile[k * n + c]));
      }
      o[c] = -acc;
    }
  }
}

KGEVAL_TARGET_AVX2
void NegComplexDistQ8Avx2(const float* queries, size_t nq, size_t dim,
                          const int8_t* tile, const float* scale, size_t n,
                          float eps, float* out) {
  const size_t m = dim / 2;
  const __m256 veps = _mm256_set1_ps(eps);
  for (size_t q = 0; q < nq; ++q) {
    const float* a = queries + q * dim;
    float* o = out + q * n;
    size_t c = 0;
    for (; c + 8 <= n; c += 8) {
      __m256 acc = _mm256_setzero_ps();
      for (size_t j = 0; j < m; ++j) {
        const __m256 gre =
            _mm256_mul_ps(_mm256_set1_ps(scale[j]), LoadQ8(tile + j * n + c));
        const __m256 gim = _mm256_mul_ps(_mm256_set1_ps(scale[m + j]),
                                         LoadQ8(tile + (m + j) * n + c));
        const __m256 dre = _mm256_sub_ps(_mm256_set1_ps(a[j]), gre);
        const __m256 dim_ = _mm256_sub_ps(_mm256_set1_ps(a[m + j]), gim);
        const __m256 s = _mm256_add_ps(
            _mm256_add_ps(_mm256_mul_ps(dre, dre), _mm256_mul_ps(dim_, dim_)),
            veps);
        acc = _mm256_add_ps(acc, _mm256_sqrt_ps(s));
      }
      _mm256_storeu_ps(o + c, NegPs(acc));
    }
    for (; c < n; ++c) {
      float acc = 0.0f;
      for (size_t j = 0; j < m; ++j) {
        const float dre =
            a[j] - scale[j] * static_cast<float>(tile[j * n + c]);
        const float dim_ =
            a[m + j] - scale[m + j] * static_cast<float>(tile[(m + j) * n + c]);
        acc += std::sqrt(dre * dre + dim_ * dim_ + eps);
      }
      o[c] = -acc;
    }
  }
}

#undef KGEVAL_TARGET_AVX2

}  // namespace

const ScoreKernels* Avx2Kernels() {
  static const ScoreKernels kAvx2 = {
      "avx2",           DotAvx2,   NegL1Avx2,    NegComplexDistAvx2,
      DotQ8Avx2,        NegL1Q8Avx2, NegComplexDistQ8Avx2,
  };
  return &kAvx2;
}

bool Avx2Supported() { return __builtin_cpu_supports("avx2") != 0; }

}  // namespace kernel_impls
}  // namespace kgeval

#else  // !KGEVAL_HAVE_AVX2_KERNELS

namespace kgeval {
namespace kernel_impls {

const ScoreKernels* Avx2Kernels() { return nullptr; }
bool Avx2Supported() { return false; }

}  // namespace kernel_impls
}  // namespace kgeval

#endif  // KGEVAL_HAVE_AVX2_KERNELS

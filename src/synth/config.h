#ifndef KGEVAL_SYNTH_CONFIG_H_
#define KGEVAL_SYNTH_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace kgeval {

/// Parameters of the typed synthetic KG generator. The generator substitutes
/// for the paper's downloaded benchmarks (see DESIGN.md): entities carry
/// types, relations have typed domain/range signatures plus a cardinality
/// class, entity usage is Zipf-distributed, and a small noise rate creates
/// type-violating triples (the "false easy negatives" of Table 10).
struct SynthConfig {
  std::string name = "synthetic";

  int32_t num_entities = 2000;
  int32_t num_relations = 40;
  int32_t num_types = 25;

  int64_t num_train = 30000;
  int64_t num_valid = 2000;
  int64_t num_test = 2000;

  /// Skew of entity-per-type sizes (primary type sampled Zipf(s)).
  double type_zipf = 0.5;
  /// Skew of the per-relation signature's type choice. Kept flatter than
  /// type_zipf so relations do not all share the few biggest types — that is
  /// what keeps candidate sets narrow relative to |E| (high Reduction Rate,
  /// as in the paper's datasets).
  double signature_zipf = 0.4;
  /// Skew of relation frequencies.
  double relation_zipf = 0.85;
  /// Skew of entity popularity within a type.
  double entity_zipf = 1.3;

  /// Probability an entity gets a second / third type.
  double extra_type_prob = 0.25;

  /// Latent affinity structure that makes link prediction *learnable*:
  /// entities carry a hidden cluster id, each relation maps head clusters to
  /// preferred tail clusters, and `affinity_rate` of the triples draw their
  /// tail from the preferred sub-pool. This is what gives trained models
  /// realistic MRRs and creates genuinely hard negatives (right type, right
  /// cluster) alongside the easy type-incompatible ones.
  int32_t num_clusters = 12;
  double affinity_rate = 0.9;

  /// Max number of types in a relation's domain (and range) signature.
  int32_t max_signature_types = 2;

  /// Types are organized into disjoint *groups* (Freebase-style domains:
  /// people, film, geography, ...). Entities' extra types stay within their
  /// primary type's group and relation signatures are group-coherent
  /// (ranges cross into another group with cross_group_rate, like
  /// person->location relations). This block structure is what makes the
  /// slot co-occurrence matrix sparse — i.e., what gives L-WD its large
  /// population of exact-zero easy negatives (Table 2).
  int32_t num_type_groups = 8;
  double cross_group_rate = 0.25;

  /// Fraction of generated triples whose head or tail is replaced by a
  /// uniformly random entity of any type (KG construction noise).
  double noise_rate = 0.004;

  /// Fractions modelling incomplete / noisy published type metadata: a
  /// type assignment is dropped from (or spuriously added to) the TypeStore
  /// with these probabilities. The *structure* of the graph is unaffected —
  /// only what the type-aware recommenders get to see.
  double type_missing_rate = 0.05;
  double type_spurious_rate = 0.02;

  /// Mix of relation cardinality classes; must sum to 1. Order:
  /// many-many, one-many, many-one, one-one.
  double frac_mn = 0.6;
  double frac_1m = 0.15;
  double frac_m1 = 0.15;
  double frac_11 = 0.1;

  uint64_t seed = 0xC0FFEEULL;

  /// Validates ranges and proportions.
  Status Validate() const;
};

/// Scaled-down (default, minutes on CPU) vs paper-scale (Table 4 sizes).
enum class PresetScale { kScaled = 0, kPaper = 1 };

/// Names of the seven datasets used in the paper's experiments:
/// "fb15k", "fb15k237", "yago310", "wikikg2", "codex-s", "codex-m",
/// "codex-l".
std::vector<std::string> PresetNames();

/// Returns the generator configuration mimicking the named dataset at the
/// requested scale. Errors on unknown names.
Result<SynthConfig> GetPreset(const std::string& name, PresetScale scale);

}  // namespace kgeval

#endif  // KGEVAL_SYNTH_CONFIG_H_

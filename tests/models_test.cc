#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "models/kge_model.h"
#include "models/trainer.h"
#include "synth/config.h"
#include "synth/generator.h"

namespace kgeval {
namespace {

constexpr ModelType kAllModels[] = {
    ModelType::kTransE, ModelType::kDistMult, ModelType::kComplEx,
    ModelType::kRescal, ModelType::kRotatE,   ModelType::kTuckEr,
    ModelType::kConvE,  ModelType::kTComplEx};

ModelOptions SmallOptions(uint64_t seed = 7) {
  ModelOptions options;
  options.dim = 16;
  options.seed = seed;
  return options;
}

class ModelTest : public ::testing::TestWithParam<ModelType> {
 protected:
  std::unique_ptr<KgeModel> Make(uint64_t seed = 7) {
    return CreateModel(GetParam(), /*num_entities=*/20, /*num_relations=*/5,
                       SmallOptions(seed))
        .ValueOrDie();
  }
};

TEST_P(ModelTest, CreateSucceeds) {
  auto model = Make();
  EXPECT_EQ(model->type(), GetParam());
  EXPECT_EQ(model->num_entities(), 20);
  EXPECT_EQ(model->num_relations(), 5);
}

TEST_P(ModelTest, ScoresAreFinite) {
  auto model = Make();
  for (int32_t h = 0; h < 5; ++h) {
    for (int32_t r = 0; r < 5; ++r) {
      for (int32_t t = 0; t < 5; ++t) {
        if (h == t) continue;
        const float s = model->ScoreTriple({h, r, t});
        EXPECT_TRUE(std::isfinite(s)) << h << " " << r << " " << t;
      }
    }
  }
}

TEST_P(ModelTest, ScoreTripleMatchesTailCandidates) {
  auto model = Make();
  const int32_t candidates[3] = {2, 7, 11};
  float scores[3];
  model->ScoreCandidates(1, 3, QueryDirection::kTail, candidates, 3, scores);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(scores[i], model->ScoreTriple({1, 3, candidates[i]}));
  }
}

TEST_P(ModelTest, HeadDirectionConsistent) {
  // For every model except ConvE (which uses reciprocal relations for head
  // queries), scoring h as a head-candidate of (?, r, t) must equal the
  // plain triple score.
  if (GetParam() == ModelType::kConvE) GTEST_SKIP();
  auto model = Make();
  const int32_t heads[2] = {4, 9};
  float scores[2];
  model->ScoreCandidates(12, 2, QueryDirection::kHead, heads, 2, scores);
  for (int i = 0; i < 2; ++i) {
    EXPECT_NEAR(scores[i], model->ScoreTriple({heads[i], 2, 12}), 1e-4);
  }
}

TEST_P(ModelTest, ScoreAllMatchesPerCandidate) {
  auto model = Make();
  std::vector<float> all(20);
  model->ScoreAll(3, 1, QueryDirection::kTail, all.data());
  for (int32_t t = 0; t < 20; ++t) {
    EXPECT_FLOAT_EQ(all[t], model->ScoreTriple({3, 1, t}));
  }
}

TEST_P(ModelTest, DeterministicInit) {
  auto a = Make(42);
  auto b = Make(42);
  EXPECT_FLOAT_EQ(a->ScoreTriple({1, 2, 3}), b->ScoreTriple({1, 2, 3}));
}

TEST_P(ModelTest, DifferentSeedsDiffer) {
  auto a = Make(1);
  auto b = Make(2);
  EXPECT_NE(a->ScoreTriple({1, 2, 3}), b->ScoreTriple({1, 2, 3}));
}

TEST_P(ModelTest, NegativeDscoreRaisesScore) {
  // UpdateTriple with dscore < 0 (a positive example in BCE terms) must push
  // the triple's score up — the black-box gradient-direction check that
  // catches sign errors in every model's backward pass.
  auto model = Make();
  const Triple triple{2, 1, 9};
  const float before = model->ScoreTriple(triple);
  for (int step = 0; step < 30; ++step) {
    model->UpdateTriple(triple.head, triple.relation, triple.tail,
                        QueryDirection::kTail, -1.0f);
  }
  EXPECT_GT(model->ScoreTriple(triple), before);
}

TEST_P(ModelTest, PositiveDscoreLowersScore) {
  auto model = Make();
  const Triple triple{5, 0, 14};
  const float before = model->ScoreTriple(triple);
  for (int step = 0; step < 30; ++step) {
    model->UpdateTriple(triple.head, triple.relation, triple.tail,
                        QueryDirection::kTail, 1.0f);
  }
  EXPECT_LT(model->ScoreTriple(triple), before);
}

TEST_P(ModelTest, HeadDirectionUpdateRaisesHeadScore) {
  // The head-direction update must improve the head-query score (this
  // exercises ConvE's reciprocal-relation path).
  auto model = Make();
  const Triple triple{6, 2, 17};
  float before = 0.0f, after = 0.0f;
  model->ScoreCandidates(triple.tail, triple.relation, QueryDirection::kHead,
                         &triple.head, 1, &before);
  for (int step = 0; step < 30; ++step) {
    model->UpdateTriple(triple.head, triple.relation, triple.tail,
                        QueryDirection::kHead, -1.0f);
  }
  model->ScoreCandidates(triple.tail, triple.relation, QueryDirection::kHead,
                         &triple.head, 1, &after);
  EXPECT_GT(after, before);
}

TEST_P(ModelTest, UpdateLeavesUntouchedEntitiesAlone) {
  // Only meaningful for models whose parameters are all per-entity /
  // per-relation rows; TuckER's shared core tensor, ConvE's shared
  // conv/FC stack, and TComplEx's per-timestamp embedding (shared by
  // every triple at that timestamp) legitimately shift every score.
  if (GetParam() == ModelType::kTuckEr || GetParam() == ModelType::kConvE ||
      GetParam() == ModelType::kTComplEx) {
    GTEST_SKIP();
  }
  auto model = Make();
  // Entity 19 and relation 4 are untouched by updates on (2, 1, 9).
  const float before = model->ScoreTriple({18, 4, 19});
  for (int step = 0; step < 10; ++step) {
    model->UpdateTriple(2, 1, 9, QueryDirection::kTail, -1.0f);
  }
  EXPECT_FLOAT_EQ(model->ScoreTriple({18, 4, 19}), before);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelTest, ::testing::ValuesIn(kAllModels),
                         [](const auto& info) {
                           return std::string(ModelTypeName(info.param));
                         });

TEST(ModelFactoryTest, RejectsOddDimComplex) {
  ModelOptions options;
  options.dim = 15;
  EXPECT_FALSE(CreateModel(ModelType::kComplEx, 10, 2, options).ok());
  EXPECT_FALSE(CreateModel(ModelType::kRotatE, 10, 2, options).ok());
}

TEST(ModelFactoryTest, RejectsBadConvEDim) {
  ModelOptions options;
  options.dim = 10;  // Not divisible by 4.
  EXPECT_FALSE(CreateModel(ModelType::kConvE, 10, 2, options).ok());
}

TEST(ModelFactoryTest, RejectsNonPositiveCounts) {
  EXPECT_FALSE(CreateModel(ModelType::kTransE, 0, 2, ModelOptions()).ok());
  EXPECT_FALSE(CreateModel(ModelType::kTransE, 10, -1, ModelOptions()).ok());
}

TEST(ModelTypeTest, ParseRoundTrips) {
  for (ModelType type : kAllModels) {
    auto parsed = ParseModelType(ModelTypeName(type));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.ValueOrDie(), type);
  }
  EXPECT_FALSE(ParseModelType("GPT").ok());
}

class TrainerModelTest : public ::testing::TestWithParam<ModelType> {};

TEST_P(TrainerModelTest, LossDecreases) {
  SynthConfig config;
  config.num_entities = 120;
  config.num_relations = 6;
  config.num_types = 6;
  config.num_train = 1500;
  config.num_valid = 50;
  config.num_test = 50;
  config.seed = 5;
  const SynthOutput synth = GenerateDataset(config).ValueOrDie();

  ModelOptions model_options = SmallOptions();
  model_options.adam.learning_rate = 3e-3f;
  auto model = CreateModel(GetParam(), synth.dataset.num_entities(),
                           synth.dataset.num_relations(), model_options)
                   .ValueOrDie();
  TrainerOptions trainer_options;
  trainer_options.num_threads = 1;  // Deterministic.
  trainer_options.negatives_per_positive = 4;
  Trainer trainer(&synth.dataset, trainer_options);
  const double first = trainer.TrainEpoch(model.get(), 0);
  double last = first;
  for (int epoch = 1; epoch < 5; ++epoch) {
    last = trainer.TrainEpoch(model.get(), epoch);
  }
  EXPECT_LT(last, first) << ModelTypeName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllModels, TrainerModelTest,
                         ::testing::ValuesIn(kAllModels),
                         [](const auto& info) {
                           return std::string(ModelTypeName(info.param));
                         });

TEST(TrainerTest, NullModelRejected) {
  SynthConfig config;
  config.num_entities = 50;
  config.num_relations = 4;
  config.num_types = 4;
  config.num_train = 300;
  config.num_valid = 10;
  config.num_test = 10;
  const SynthOutput synth = GenerateDataset(config).ValueOrDie();
  Trainer trainer(&synth.dataset, TrainerOptions());
  EXPECT_FALSE(trainer.Train(nullptr).ok());
}

TEST(TrainerTest, CallbackRunsEveryEpoch) {
  SynthConfig config;
  config.num_entities = 50;
  config.num_relations = 4;
  config.num_types = 4;
  config.num_train = 300;
  config.num_valid = 10;
  config.num_test = 10;
  const SynthOutput synth = GenerateDataset(config).ValueOrDie();
  auto model = CreateModel(ModelType::kDistMult, 50, 4, SmallOptions())
                   .ValueOrDie();
  TrainerOptions options;
  options.epochs = 3;
  options.num_threads = 1;
  Trainer trainer(&synth.dataset, options);
  int calls = 0;
  ASSERT_TRUE(trainer
                  .Train(model.get(),
                         [&calls](int32_t epoch, const KgeModel&) {
                           EXPECT_EQ(epoch, calls);
                           ++calls;
                         })
                  .ok());
  EXPECT_EQ(calls, 3);
}

}  // namespace
}  // namespace kgeval

// Reproduces Figure 3a: evaluation time (log scale in the paper) against
// the sample size on the wikikg2 test set, for Random / Static /
// Probabilistic sampling, with the full-evaluation time as the reference
// line.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/adaptive_evaluator.h"
#include "core/framework.h"
#include "eval/full_evaluator.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace kgeval;
  const bench::BenchArgs args = bench::ParseArgs(argc, argv);
  const std::string preset =
      args.only_dataset.empty() ? "wikikg2" : args.only_dataset;

  const SynthOutput synth = bench::LoadPreset(preset, args);
  const Dataset& dataset = synth.dataset;
  const FilterIndex filter(dataset);
  bench::TrainSpec spec;
  spec.epochs = args.epochs > 0 ? args.epochs : (args.fast ? 2 : 5);
  auto model = bench::TrainModel(dataset, spec);

  WallTimer full_timer;
  const FullEvalResult full =
      EvaluateFullRanking(*model, dataset, filter, Split::kTest);
  const double full_seconds = full_timer.Seconds();

  bench::PrintHeader(
      StrFormat("Figure 3a: evaluation time vs sample size (%s)",
                preset.c_str()));
  std::printf("full evaluation: %.3f s (true MRR %.4f)\n\n", full_seconds,
              full.metrics.mrr);

  TextTable table({"Sample size (% of |E|)", "Random (s)", "Static (s)",
                   "Probabilistic (s)", "Adaptive (s)"});
  const std::vector<double> fractions =
      args.fast ? std::vector<double>{0.025, 0.1}
                : std::vector<double>{0.01, 0.025, 0.05, 0.1, 0.2, 0.4};
  for (double fraction : fractions) {
    std::vector<std::string> row = {bench::F(100.0 * fraction, 1)};
    for (SamplingStrategy strategy :
         {SamplingStrategy::kRandom, SamplingStrategy::kStatic,
          SamplingStrategy::kProbabilistic}) {
      FrameworkOptions options;
      options.strategy = strategy;
      options.recommender = RecommenderType::kLwd;
      options.sample_fraction = fraction;
      auto framework =
          EvaluationFramework::Build(&dataset, options).ValueOrDie();
      WallTimer timer;
      const SampledEvalResult estimate =
          framework->Estimate(*model, filter, Split::kTest);
      (void)estimate;
      row.push_back(bench::F(timer.Seconds(), 3));
    }
    // Adaptive mode: Probabilistic pools at the same fraction, but the pass
    // stops as soon as its MRR half-width reaches --half-width.
    {
      FrameworkOptions options;
      options.strategy = SamplingStrategy::kProbabilistic;
      options.recommender = RecommenderType::kLwd;
      options.sample_fraction = fraction;
      auto framework =
          EvaluationFramework::Build(&dataset, options).ValueOrDie();
      AdaptiveEvalOptions adaptive_options;
      adaptive_options.target_half_width = args.half_width;
      WallTimer timer;
      const AdaptiveEvalResult adaptive = framework->EstimateAdaptive(
          *model, filter, Split::kTest, adaptive_options);
      (void)adaptive;
      row.push_back(bench::F(timer.Seconds(), 3));
    }
    table.AddRow(row);
  }
  std::printf("%s", table.ToString().c_str());
  bench::PrintNote(
      "paper shape: all strategies sit far below the full-evaluation line; "
      "Static grows sub-linearly because its pools are capped at the "
      "candidate-set size, Probabilistic stays flat once the positive-score "
      "support is exhausted; Adaptive undercuts Probabilistic by stopping "
      "at the confidence target instead of scoring every query");
  return 0;
}

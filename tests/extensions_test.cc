#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/guided_negatives.h"
#include "core/triple_classifier.h"
#include "models/trainer.h"
#include "recommenders/recommender.h"
#include "synth/config.h"
#include "synth/generator.h"

namespace kgeval {
namespace {

SynthOutput SmallSynth(uint64_t seed = 51) {
  SynthConfig config;
  config.num_entities = 400;
  config.num_relations = 10;
  config.num_types = 10;
  config.num_train = 5000;
  config.num_valid = 300;
  config.num_test = 300;
  config.seed = seed;
  return GenerateDataset(config).ValueOrDie();
}

// --- Guided negative sampling --------------------------------------------------

class GuidedNegativesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    synth_ = SmallSynth();
    scores_ = CreateRecommender(RecommenderType::kLwd)
                  ->Fit(synth_.dataset)
                  .ValueOrDie();
    sets_ = BuildProbabilisticSets(scores_, synth_.dataset);
  }
  SynthOutput synth_;
  RecommenderScores scores_;
  CandidateSets sets_;
};

TEST_F(GuidedNegativesTest, FullGuidanceDrawsFromSets) {
  NegativeSamplerFn sampler = MakeGuidedNegativeSampler(&sets_, 1.0);
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    const int32_t relation = static_cast<int32_t>(rng.NextBounded(10));
    for (QueryDirection dir :
         {QueryDirection::kTail, QueryDirection::kHead}) {
      const int32_t neg = sampler(relation, dir, &rng);
      const int32_t slot = DomainRangeIndex(relation, dir, 10);
      if (sets_.sets[slot].empty()) {
        EXPECT_EQ(neg, -1);
      } else {
        ASSERT_GE(neg, 0);
        EXPECT_TRUE(std::binary_search(sets_.sets[slot].begin(),
                                       sets_.sets[slot].end(), neg));
      }
    }
  }
}

TEST_F(GuidedNegativesTest, ZeroGuidanceAlwaysFallsBack) {
  NegativeSamplerFn sampler = MakeGuidedNegativeSampler(&sets_, 0.0);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sampler(3, QueryDirection::kTail, &rng), -1);
  }
}

TEST_F(GuidedNegativesTest, PartialGuidanceMixes) {
  NegativeSamplerFn sampler = MakeGuidedNegativeSampler(&sets_, 0.5);
  Rng rng(3);
  int guided = 0, fallback = 0;
  for (int i = 0; i < 1000; ++i) {
    if (sampler(1, QueryDirection::kTail, &rng) >= 0) {
      ++guided;
    } else {
      ++fallback;
    }
  }
  EXPECT_GT(guided, 300);
  EXPECT_GT(fallback, 300);
}

TEST_F(GuidedNegativesTest, TournamentPrefersHighWeights) {
  // With weights, the two-way tournament draw must skew towards
  // higher-scored members relative to a uniform draw.
  NegativeSamplerFn sampler = MakeGuidedNegativeSampler(&sets_, 1.0);
  Rng rng(4);
  const int32_t slot_relation = 0;
  const int32_t slot =
      DomainRangeIndex(slot_relation, QueryDirection::kTail, 10);
  const auto& members = sets_.sets[slot];
  const auto& weights = sets_.weights[slot];
  if (members.size() < 10) GTEST_SKIP();
  // Median weight of drawn entities should exceed the set's median weight.
  double drawn_total = 0.0;
  const int draws = 2000;
  for (int i = 0; i < draws; ++i) {
    const int32_t neg = sampler(slot_relation, QueryDirection::kTail, &rng);
    const auto it = std::lower_bound(members.begin(), members.end(), neg);
    drawn_total += weights[static_cast<size_t>(it - members.begin())];
  }
  double uniform_total = 0.0;
  for (float w : weights) uniform_total += w;
  EXPECT_GT(drawn_total / draws,
            uniform_total / static_cast<double>(weights.size()));
}

TEST_F(GuidedNegativesTest, TrainerAcceptsGuidedSampler) {
  const Dataset& dataset = synth_.dataset;
  ModelOptions model_options;
  model_options.dim = 16;
  auto model = CreateModel(ModelType::kDistMult, dataset.num_entities(),
                           dataset.num_relations(), model_options)
                   .ValueOrDie();
  TrainerOptions options;
  options.num_threads = 1;
  options.negative_sampler = MakeGuidedNegativeSampler(&sets_, 0.7);
  Trainer trainer(&dataset, options);
  const double first = trainer.TrainEpoch(model.get(), 0);
  double last = first;
  for (int epoch = 1; epoch < 4; ++epoch) {
    last = trainer.TrainEpoch(model.get(), epoch);
  }
  EXPECT_LT(last, first);
  EXPECT_TRUE(std::isfinite(last));
}

// --- Triple classifier ----------------------------------------------------------

class TripleClassifierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    synth_ = SmallSynth(77);
    scores_ = CreateRecommender(RecommenderType::kLwd)
                  ->Fit(synth_.dataset)
                  .ValueOrDie();
  }
  SynthOutput synth_;
  RecommenderScores scores_;
};

TEST_F(TripleClassifierTest, TrainTriplesArePlausible) {
  TripleClassifier classifier(&scores_);
  for (size_t i = 0; i < std::min<size_t>(synth_.dataset.train().size(), 500);
       ++i) {
    EXPECT_TRUE(classifier.IsPlausible(synth_.dataset.train()[i]));
  }
}

TEST_F(TripleClassifierTest, MarginPositiveIffPlausible) {
  TripleClassifier classifier(&scores_);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    Triple t{static_cast<int32_t>(rng.NextBounded(400)),
             static_cast<int32_t>(rng.NextBounded(10)),
             static_cast<int32_t>(rng.NextBounded(400))};
    if (classifier.IsPlausible(t)) {
      EXPECT_GT(classifier.Margin(t), 0.0f);
    } else {
      EXPECT_EQ(classifier.Margin(t), 0.0f);
    }
  }
}

TEST_F(TripleClassifierTest, VerdictNamesStable) {
  EXPECT_STREQ(TripleVerdictName(TripleVerdict::kPlausible), "plausible");
  EXPECT_STREQ(TripleVerdictName(TripleVerdict::kBothImplausible),
               "both-implausible");
}

TEST_F(TripleClassifierTest, RandomCorruptionsOftenFlagged) {
  // Uniform corruptions are mostly easy negatives (the paper's premise), so
  // a meaningful share must be flagged.
  TripleClassifier classifier(&scores_);
  Rng rng(6);
  int flagged = 0;
  const int trials = 1000;
  for (int i = 0; i < trials; ++i) {
    Triple t = synth_.dataset.train()[rng.NextBounded(
        synth_.dataset.train().size())];
    t.tail = static_cast<int32_t>(rng.NextBounded(400));
    if (!classifier.IsPlausible(t)) ++flagged;
  }
  // The zero-score fraction grows with dataset scale (Table 2: 5-58% at the
  // paper's sizes); this unit-test KG is tiny, so a low bar suffices.
  EXPECT_GT(flagged, trials / 50);
}

TEST_F(TripleClassifierTest, DetectsVerdictSides) {
  // Construct a triple whose head is fine (seen in train for that slot) but
  // whose tail has zero range score, and check the verdict side.
  TripleClassifier classifier(&scores_);
  const int32_t num_r = synth_.dataset.num_relations();
  bool found = false;
  for (const Triple& base : synth_.dataset.train()) {
    for (int32_t tail = 0; tail < 400 && !found; ++tail) {
      if (scores_.scores.At(tail, base.relation + num_r) == 0.0f) {
        const Triple corrupted{base.head, base.relation, tail};
        EXPECT_EQ(classifier.Classify(corrupted),
                  TripleVerdict::kTailImplausible);
        found = true;
      }
    }
    if (found) break;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace kgeval

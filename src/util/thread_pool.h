#ifndef KGEVAL_UTIL_THREAD_POOL_H_
#define KGEVAL_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace kgeval {

/// Fixed-size worker substrate: a FIFO of void() closures drained by
/// `num_threads` workers. This is deliberately *all* it is — joining,
/// grouping, and chunking live in sched/task_group.h, whose per-group waits
/// replace the process-wide barrier the pool used to expose; callers that
/// need completion tracking submit through a TaskGroup.
class ThreadPool {
 public:
  /// `num_threads == 0` means hardware_concurrency().
  explicit ThreadPool(size_t num_threads = 0);
  /// Drains the remaining queue, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task) KGEVAL_EXCLUDES(mutex_);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop() KGEVAL_EXCLUDES(mutex_);

  /// Immutable after the constructor returns (workers join in ~ThreadPool,
  /// after every queue access has ceased), so reads need no lock.
  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::queue<std::function<void()>> queue_ KGEVAL_GUARDED_BY(mutex_);
  CondVar work_available_;
  bool shutting_down_ KGEVAL_GUARDED_BY(mutex_) = false;
};

/// Process-wide pool, lazily created, never destroyed (leaked on purpose so
/// static-destruction order is a non-issue). Sized by the first of:
/// SetGlobalThreadPoolThreads(), the KGEVAL_THREADS environment variable,
/// hardware_concurrency().
ThreadPool* GlobalThreadPool();

/// Overrides the global pool's worker count (0 restores the
/// KGEVAL_THREADS / hardware_concurrency default). Must be called before
/// the pool's lazy creation — dies if GlobalThreadPool() already ran,
/// because live workers (and work queued to them) cannot be resized.
void SetGlobalThreadPoolThreads(size_t num_threads);

/// True iff the calling thread is a ThreadPool worker (any pool's). Used by
/// the scheduler to run nested submissions inline instead of deadlocking.
bool InThreadPoolWorker();

}  // namespace kgeval

#endif  // KGEVAL_UTIL_THREAD_POOL_H_

#include "models/rescal.h"

#include <algorithm>
#include <vector>

#include "la/vector_ops.h"

namespace kgeval {

Rescal::Rescal(int32_t num_entities, int32_t num_relations,
               ModelOptions options)
    : KgeModel(ModelType::kRescal, num_entities, num_relations, options),
      entities_(num_entities, options.dim),
      relations_(num_relations,
                 static_cast<size_t>(options.dim) * options.dim),
      entity_adam_(num_entities, options.dim, options.adam),
      relation_adam_(num_relations,
                     static_cast<size_t>(options.dim) * options.dim,
                     options.adam) {
  Rng rng(options.seed);
  entities_.InitXavier(&rng, options.dim, options.dim);
  relations_.InitXavier(&rng, options.dim, options.dim);
}

void Rescal::BuildKernelQueries(const int32_t* anchors, size_t num_queries,
                                int32_t relation, QueryDirection direction,
                                Matrix* queries) const {
  const size_t d = entities_.cols();
  const float* w = relations_.Row(relation);
  queries->Resize(num_queries, d);
  for (size_t q = 0; q < num_queries; ++q) {
    const float* a = entities_.Row(anchors[q]);
    float* row = queries->Row(q);
    if (direction == QueryDirection::kTail) {
      // score = (W^T h) . t
      std::fill(row, row + d, 0.0f);
      for (size_t i = 0; i < d; ++i) {
        Axpy(a[i], w + i * d, row, d);
      }
    } else {
      // score = (W t) . h
      for (size_t i = 0; i < d; ++i) {
        row[i] = Dot(w + i * d, a, d);
      }
    }
  }
}

void Rescal::UpdateTriple(int32_t head, int32_t relation, int32_t tail,
                          QueryDirection /*direction*/, float dscore) {
  const size_t d = entities_.cols();
  const float* h = entities_.Row(head);
  const float* w = relations_.Row(relation);
  const float* t = entities_.Row(tail);
  std::vector<float> gh(d), gt(d, 0.0f), gw(d * d);
  const float l2 = options_.l2;
  for (size_t i = 0; i < d; ++i) {
    const float* w_row = w + i * d;
    gh[i] = dscore * Dot(w_row, t, d) + l2 * h[i];
    // gt accumulates dscore * h_i * W_i; gw_ij = dscore * h_i * t_j.
    for (size_t j = 0; j < d; ++j) {
      gt[j] += dscore * h[i] * w_row[j];
      gw[i * d + j] = dscore * h[i] * t[j] + l2 * w_row[j];
    }
  }
  for (size_t j = 0; j < d; ++j) gt[j] += l2 * t[j];
  entity_adam_.UpdateRow(&entities_, head, gh.data());
  relation_adam_.UpdateRow(&relations_, relation, gw.data());
  entity_adam_.UpdateRow(&entities_, tail, gt.data());
}

void Rescal::CollectParameters(std::vector<NamedParameter>* out) {
  out->push_back({"entities", &entities_});
  out->push_back({"relations", &relations_});
}

}  // namespace kgeval

#include "core/sampled_evaluator.h"

#include <algorithm>
#include <atomic>

#include "sched/task_group.h"
#include "stats/confidence.h"
#include "util/logging.h"
#include "util/timer.h"

namespace kgeval {
namespace {

/// Folds every rank into an accumulator (in index order, so the CI is
/// deterministic) and stamps the result's confidence half-widths.
void FillCi(double confidence, SampledEvalResult* result) {
  RankingAccumulator acc;
  for (double rank : result->ranks) acc.Add(rank);
  result->ci = acc.Ci(TwoSidedZ(confidence));
}

}  // namespace

void ValidateQueriedPools(const std::vector<Triple>& triples,
                          int64_t num_triples, int32_t num_relations,
                          const SampledCandidates& candidates) {
  // One flag per slot so each pool is checked once, not once per triple.
  std::vector<char> queried(2 * static_cast<size_t>(num_relations), 0);
  for (int64_t i = 0; i < num_triples; ++i) {
    queried[triples[i].relation] = 1;                  // Head query slot.
    queried[triples[i].relation + num_relations] = 1;  // Tail query slot.
  }
  for (size_t slot = 0; slot < queried.size(); ++slot) {
    if (!queried[slot]) continue;
    const size_t n = candidates.pools[slot].size();
    const size_t relation = slot < static_cast<size_t>(num_relations)
                                ? slot
                                : slot - num_relations;
    KGEVAL_CHECK(n > 0)
        << "empty candidate pool for queried slot " << slot << " (relation "
        << relation << ", "
        << (slot < static_cast<size_t>(num_relations) ? "head" : "tail")
        << " queries): ranking against an empty pool would report rank 1 "
        << "for every query of the slot";
  }
}

int64_t ScoreSlotBlocks(const KgeModel& model,
                        const std::vector<Triple>& triples,
                        const EvalProtocol& protocol,
                        const SampledCandidates& candidates,
                        const std::vector<SlotBlock>& blocks, size_t begin,
                        size_t end, const SampledEvalOptions& options,
                        SlotBlockScratch* scratch, double* ranks) {
  int64_t scored = 0;
  for (size_t b = begin; b < end; ++b) {
    // The cancellation poll: one relaxed load per ~256-query block. A
    // cancelled pass stops scoring here — worker tasks drain in one block
    // instead of being orphaned mid-evaluation.
    if (options.cancel != nullptr && options.cancel->cancelled()) break;
    const SlotBlock& block = blocks[b];
    const bool tail_dir = block.direction == QueryDirection::kTail;
    const int32_t slot = block.pool_slot;
    const std::vector<int32_t>& pool = candidates.pools[slot];
    const size_t n = pool.size();
    const size_t qb = block.end - block.begin;
    // Protocol blocks are kernel-homogeneous (same relation and, for
    // temporal groups, same timestamp), so any block triple yields the
    // block's kernel relation id — the plain relation for static models,
    // the virtual (relation, time) id for time-aware ones.
    const int32_t kernel_relation =
        model.KernelRelation(triples[(*block.triple_idx)[block.begin]]);
    if (scratch->anchors.size() < qb) {
      scratch->anchors.resize(qb);
      scratch->truths.resize(qb);
      scratch->truth_scores.resize(qb);
    }
    if (scratch->scores.size() < qb * n) scratch->scores.resize(qb * n);
    for (size_t q = 0; q < qb; ++q) {
      const Triple& triple = triples[(*block.triple_idx)[block.begin + q]];
      scratch->anchors[q] = tail_dir ? triple.head : triple.tail;
      scratch->truths[q] = tail_dir ? triple.tail : triple.head;
    }
    bool pool_sorted = false;
    if (options.prepared_pools) {
      // Slot-contiguous schedules keep a slot's blocks adjacent, so the
      // pool is prepared at its first block (the gather stays hot in cache
      // for the scoring call right after) and the prepared tile — its
      // allocation and precomputed sortedness included — is reused by
      // every following block of the same slot.
      if (slot != scratch->prepared_slot) {
        model.PrepareCandidates(pool.data(), n, &scratch->prepared);
        // The int8 sidecar rides the same once-per-slot amortization as
        // the gather; models without a kernel surface never set
        // `prepared`, so they keep the exact unscreened path below.
        if (options.screening && scratch->prepared.prepared &&
            n >= options.screening_min_pool) {
          QuantizeCandidateBlock(&scratch->prepared);
        }
        scratch->prepared_slot = slot;
      }
      if (scratch->prepared.quantized) {
        // Screened path: int8 sweep of the whole pool, exact re-scoring of
        // each query's band only. Ranks are bit-identical to the fused
        // ScoreBlock + FilteredRank path below (see eval/screen.h).
        scratch->answers.resize(qb);
        scratch->block_ranks.resize(qb);
        for (size_t q = 0; q < qb; ++q) {
          const Triple& triple =
              triples[(*block.triple_idx)[block.begin + q]];
          const std::vector<int32_t>* answers =
              protocol.Answers(triple, block.direction);
          KGEVAL_CHECK(answers != nullptr);
          scratch->answers[q] = answers;
        }
        ScreenRankBlock(model, scratch->anchors.data(),
                        scratch->truths.data(), qb, kernel_relation,
                        block.direction, scratch->prepared,
                        scratch->answers.data(), options.tie,
                        &scratch->screen, scratch->block_ranks.data(),
                        &scratch->screen_stats);
        // Budget accounting stays in full-pool units — the screen changes
        // how the scores are computed, not how many candidates each query
        // is ranked against.
        scored += static_cast<int64_t>(qb) * (n + 1);
        for (size_t q = 0; q < qb; ++q) {
          const int32_t i = (*block.triple_idx)[block.begin + q];
          ranks[static_cast<size_t>(i) * 2 + (tail_dir ? 0 : 1)] =
              scratch->block_ranks[q];
        }
        continue;
      }
      // Fused kernel: one query construction serves the pool matrix and
      // the per-query truth scores.
      model.ScoreBlock(scratch->anchors.data(), scratch->truths.data(), qb,
                       kernel_relation, block.direction, scratch->prepared,
                       scratch->scores.data(),
                       scratch->truth_scores.data());
      pool_sorted = scratch->prepared.sorted;
    } else {
      model.ScoreBatch(scratch->anchors.data(), qb, kernel_relation,
                       block.direction, pool.data(), n,
                       scratch->scores.data());
      model.ScorePairs(scratch->anchors.data(), scratch->truths.data(), qb,
                       1, kernel_relation, block.direction,
                       scratch->truth_scores.data());
      pool_sorted = std::is_sorted(pool.begin(), pool.end());
    }
    scored += static_cast<int64_t>(qb) * (n + 1);
    for (size_t q = 0; q < qb; ++q) {
      const int32_t i = (*block.triple_idx)[block.begin + q];
      const Triple& triple = triples[i];
      const std::vector<int32_t>* answers =
          protocol.Answers(triple, block.direction);
      KGEVAL_CHECK(answers != nullptr);
      const double rank = FilteredRank(
          pool.data(), scratch->scores.data() + q * n, n,
          scratch->truths[q], scratch->truth_scores[q], *answers,
          options.tie, pool_sorted);
      ranks[static_cast<size_t>(i) * 2 + (tail_dir ? 0 : 1)] = rank;
    }
  }
  return scored;
}

SampledEvalResult EvaluateSampled(const KgeModel& model,
                                  const Dataset& dataset,
                                  const EvalProtocol& protocol, Split split,
                                  const SampledCandidates& candidates,
                                  const SampledEvalOptions& options) {
  WallTimer timer;
  const std::vector<Triple>& triples = dataset.split(split);
  int64_t num_triples = static_cast<int64_t>(triples.size());
  if (options.max_triples > 0) {
    num_triples = std::min(num_triples, options.max_triples);
  }
  const int32_t num_r = dataset.num_relations();
  ValidateQueriedPools(triples, num_triples, num_r, candidates);

  SampledEvalResult result;
  result.sample_seconds = candidates.sample_seconds;
  result.ranks.assign(static_cast<size_t>(num_triples) * 2, 0.0);
  std::atomic<int64_t> scored{0};

  // Slot-major order: every query block shares one (relation, direction)
  // candidate pool, so the pool's embeddings are gathered once and whole
  // query blocks are scored per kernel call. The protocol owns the
  // grouping and emission order; its contract is only that blocks sharing
  // a pool slot are contiguous.
  const EvalSchedule schedule =
      protocol.BuildSchedule(triples, num_triples, kSampledQueryBlock);
  // Parallelism is over slot-aligned chunks, not raw block ranges: a chunk
  // boundary inside a slot would make both sides prepare the slot's pool.
  // The pass is its own TaskGroup, so a concurrent evaluation (another
  // model in an EvalSession, another session entirely) interleaves chunks
  // on the shared workers and neither pass waits on the other's work.
  std::atomic<int64_t> screen_queries{0}, screen_screened{0},
      screen_rescored{0};
  TaskGroup group;
  SubmitSlotChunks(&group, schedule.blocks, [&](size_t lo, size_t hi) {
    SlotBlockScratch scratch;
    const int64_t local_scored =
        ScoreSlotBlocks(model, triples, protocol, candidates,
                        schedule.blocks, lo, hi, options, &scratch,
                        result.ranks.data());
    scored.fetch_add(local_scored, std::memory_order_relaxed);
    if (scratch.screen_stats.queries > 0) {
      screen_queries.fetch_add(scratch.screen_stats.queries,
                               std::memory_order_relaxed);
      screen_screened.fetch_add(scratch.screen_stats.screened,
                                std::memory_order_relaxed);
      screen_rescored.fetch_add(scratch.screen_stats.rescored,
                                std::memory_order_relaxed);
      AddGlobalScreenStats(scratch.screen_stats);
    }
  });
  group.Wait();
  result.screen.queries = screen_queries.load();
  result.screen.screened = screen_screened.load();
  result.screen.rescored = screen_rescored.load();

  result.cancelled =
      options.cancel != nullptr && options.cancel->cancelled();
  result.scored_candidates = scored.load();
  // A cancelled pass abandoned some blocks, leaving their ranks at 0.0 —
  // metrics over partial ranks would be garbage (and rank 0 is outside the
  // accumulator's domain), so they stay zeroed; callers discard a
  // cancelled result.
  if (!result.cancelled) {
    result.metrics = RankingMetrics::FromRanks(result.ranks);
    FillCi(options.ci_confidence, &result);
  }
  result.eval_seconds = timer.Seconds();
  return result;
}

SampledEvalResult EvaluateSampledScalar(const KgeModel& model,
                                        const Dataset& dataset,
                                        const EvalProtocol& protocol,
                                        Split split,
                                        const SampledCandidates& candidates,
                                        const SampledEvalOptions& options) {
  WallTimer timer;
  const std::vector<Triple>& triples = dataset.split(split);
  int64_t num_triples = static_cast<int64_t>(triples.size());
  if (options.max_triples > 0) {
    num_triples = std::min(num_triples, options.max_triples);
  }
  const int32_t num_r = dataset.num_relations();
  ValidateQueriedPools(triples, num_triples, num_r, candidates);

  SampledEvalResult result;
  result.sample_seconds = candidates.sample_seconds;
  result.ranks.assign(static_cast<size_t>(num_triples) * 2, 0.0);
  std::atomic<int64_t> scored{0};

  ParallelFor(
      0, static_cast<size_t>(num_triples),
      [&](size_t lo, size_t hi) {
        std::vector<float> scores;
        int64_t local_scored = 0;
        for (size_t i = lo; i < hi; ++i) {
          const Triple& triple = triples[i];
          const int32_t kernel_relation = model.KernelRelation(triple);
          for (QueryDirection dir :
               {QueryDirection::kTail, QueryDirection::kHead}) {
            const bool tail_dir = dir == QueryDirection::kTail;
            const int32_t anchor = tail_dir ? triple.head : triple.tail;
            const int32_t truth = tail_dir ? triple.tail : triple.head;
            const int32_t slot = protocol.PoolSlotFor(triple, dir);
            const std::vector<int32_t>& pool = candidates.pools[slot];
            scores.resize(pool.size() + 1);
            // Score the pool plus the true answer in one model call.
            model.ScoreCandidates(anchor, kernel_relation, dir, pool.data(),
                                  pool.size(), scores.data());
            model.ScoreCandidates(anchor, kernel_relation, dir, &truth, 1,
                                  scores.data() + pool.size());
            local_scored += static_cast<int64_t>(pool.size()) + 1;
            const std::vector<int32_t>* answers =
                protocol.Answers(triple, dir);
            KGEVAL_CHECK(answers != nullptr);
            const double rank = FilteredRank(
                pool.data(), scores.data(), pool.size(), truth,
                scores[pool.size()], *answers, options.tie,
                std::is_sorted(pool.begin(), pool.end()));
            result.ranks[i * 2 + (tail_dir ? 0 : 1)] = rank;
          }
        }
        scored.fetch_add(local_scored, std::memory_order_relaxed);
      },
      /*min_chunk=*/8);

  result.scored_candidates = scored.load();
  result.metrics = RankingMetrics::FromRanks(result.ranks);
  FillCi(options.ci_confidence, &result);
  result.eval_seconds = timer.Seconds();
  return result;
}

SampledEvalResult EvaluateSampled(const KgeModel& model,
                                  const Dataset& dataset,
                                  const FilterIndex& filter, Split split,
                                  const SampledCandidates& candidates,
                                  const SampledEvalOptions& options) {
  const StaticFilteredProtocol protocol(dataset.num_relations(), &filter);
  return EvaluateSampled(model, dataset, protocol, split, candidates,
                         options);
}

SampledEvalResult EvaluateSampledScalar(const KgeModel& model,
                                        const Dataset& dataset,
                                        const FilterIndex& filter, Split split,
                                        const SampledCandidates& candidates,
                                        const SampledEvalOptions& options) {
  const StaticFilteredProtocol protocol(dataset.num_relations(), &filter);
  return EvaluateSampledScalar(model, dataset, protocol, split, candidates,
                               options);
}

}  // namespace kgeval
